//! Golden end-to-end regression: the full pipeline on the paper's
//! *social30* synthetic dataset at a fixed seed, with the headline
//! quality numbers pinned inside a tolerance band.
//!
//! The pipeline is deterministic (see `determinism.rs`), so on any one
//! toolchain these numbers are exact; the band absorbs legitimate churn
//! (e.g. a reworked tie-break or float-summation order in a refactor)
//! while still catching real quality regressions. Measured at pinning
//! time: accuracy 0.7919, demographic-parity bias 0.1181 against a label
//! bias of 0.1654 (test split of 2 100 rows).

use falcc::{FairClassifier, FalccConfig, FalccModel};
use falcc_dataset::{synthetic, SplitRatios, ThreeWaySplit};
use falcc_metrics::{accuracy, FairnessMetric};

#[test]
fn social30_quality_stays_in_the_pinned_band() {
    let ds = synthetic::social30(17).expect("generate");
    let split = ThreeWaySplit::split(&ds, SplitRatios::PAPER, 17).expect("split");
    let mut cfg = FalccConfig::default();
    cfg.scale_for_tests();
    cfg.seed = 17;
    let model = FalccModel::fit(&split.train, &split.validation, &cfg).expect("fit");
    let preds = model.predict_dataset(&split.test);

    let acc = accuracy(split.test.labels(), &preds);
    let bias = FairnessMetric::DemographicParity.bias(
        split.test.labels(),
        &preds,
        split.test.groups(),
        2,
    );
    let label_bias = FairnessMetric::DemographicParity.bias(
        split.test.labels(),
        split.test.labels(),
        split.test.groups(),
        2,
    );

    assert!(
        (0.76..=0.82).contains(&acc),
        "accuracy {acc:.4} left the golden band [0.76, 0.82]"
    );
    assert!(
        (0.09..=0.15).contains(&bias),
        "DP bias {bias:.4} left the golden band [0.09, 0.15]"
    );
    // The headline claim in absolute terms: FALCC's predictions are fairer
    // than the (30-point-gap) labels they were trained on.
    assert!(
        bias < label_bias,
        "prediction bias {bias:.4} did not undercut label bias {label_bias:.4}"
    );
}
