//! Observation never perturbs results: the whole pipeline — fit, persist,
//! restore, batch classify — must be **bit-identical** with telemetry
//! recording on and off. Telemetry only reads what the pipeline already
//! computes; any counter or span whose presence changes a centroid bit or
//! a prediction is a hard failure here.
//!
//! The span-tree *structure* has its own determinism contract (same tree
//! for every thread count — see `falcc-telemetry`'s unit tests); this
//! suite covers the pipeline side, plus the trace-export invariants the
//! CI artifact relies on.

use falcc::{FairClassifier, FalccConfig, FalccModel, SavedFalccModel};
use falcc_dataset::{synthetic, SplitRatios, ThreeWaySplit};
use std::sync::Mutex;

// Telemetry state is process-global; these tests toggle it, so they
// serialize on this lock against cargo's parallel test threads.
static TELEMETRY_LOCK: Mutex<()> = Mutex::new(());

struct Fitted {
    centroid_bits: Vec<Vec<u64>>,
    combos: Vec<Vec<usize>>,
    preds: Vec<u8>,
    restored_preds: Vec<u8>,
}

fn fit(seed: u64, threads: usize) -> Fitted {
    let ds = synthetic::social30(seed).expect("generate");
    let ds = ds.subset(&(0..1500).collect::<Vec<_>>()).expect("subset");
    let split = ThreeWaySplit::split(&ds, SplitRatios::PAPER, seed).expect("split");
    let mut cfg = FalccConfig::default();
    cfg.scale_for_tests();
    cfg.seed = seed;
    cfg.threads = threads;
    let model = FalccModel::fit(&split.train, &split.validation, &cfg).expect("fit");
    let json = SavedFalccModel::capture(&model).expect("capture").to_json().expect("json");
    let restored = SavedFalccModel::from_json(&json).expect("parse").restore();
    Fitted {
        centroid_bits: model
            .centroids()
            .iter()
            .map(|c| c.iter().map(|v| v.to_bits()).collect())
            .collect(),
        combos: (0..model.n_regions()).map(|c| model.combo(c).to_vec()).collect(),
        preds: model.predict_dataset(&split.test),
        restored_preds: restored.predict_dataset(&split.test),
    }
}

#[test]
fn pipeline_is_bit_identical_with_telemetry_on_and_off() {
    let _guard = TELEMETRY_LOCK.lock().unwrap();
    falcc_telemetry::disable();
    falcc_telemetry::reset();
    let off = fit(31, 1);
    assert!(
        falcc_telemetry::snapshot().spans.is_empty(),
        "disabled run must record nothing"
    );

    falcc_telemetry::enable();
    falcc_telemetry::reset();
    let on = fit(31, 1);
    let snap = falcc_telemetry::snapshot();
    falcc_telemetry::disable();
    falcc_telemetry::reset();

    assert!(!snap.spans.is_empty(), "enabled run must record spans");
    assert!(snap.counter("offline.lloyd_iterations") > 0);
    assert_eq!(off.centroid_bits, on.centroid_bits, "telemetry changed centroids");
    assert_eq!(off.combos, on.combos, "telemetry changed region combinations");
    assert_eq!(off.preds, on.preds, "telemetry changed predictions");
    assert_eq!(off.restored_preds, on.restored_preds);
    assert_eq!(off.preds, off.restored_preds, "persistence round trip diverged");
}

#[test]
fn recorded_trace_is_deterministic_in_structure() {
    let _guard = TELEMETRY_LOCK.lock().unwrap();
    // Durations vary run to run, but names, nesting, ordinals, and metric
    // values must not: two identical runs produce the same skeleton even
    // at different thread counts.
    type Skeleton = (Vec<(String, u64)>, Vec<(String, u64)>);
    let skeleton = |threads: usize| -> Skeleton {
        falcc_telemetry::enable();
        falcc_telemetry::reset();
        let _ = fit(32, threads);
        let snap = falcc_telemetry::snapshot();
        falcc_telemetry::disable();
        falcc_telemetry::reset();
        let mut shape = Vec::new();
        fn walk(
            snap: &falcc_telemetry::Snapshot,
            id: u64,
            depth: u64,
            out: &mut Vec<(String, u64)>,
        ) {
            for child in snap.children_of(id) {
                out.push((child.name.to_string(), depth));
                walk(snap, child.id, depth + 1, out);
            }
        }
        walk(&snap, 0, 0, &mut shape);
        (shape, snap.counters.clone())
    };
    let (shape_ref, counters_ref) = skeleton(1);
    assert!(!shape_ref.is_empty());
    for threads in [2, 8] {
        let (shape, counters) = skeleton(threads);
        assert_eq!(shape, shape_ref, "span tree differs at {threads} threads");
        assert_eq!(counters, counters_ref, "counters differ at {threads} threads");
    }
}

#[test]
fn jsonl_export_round_trips_the_span_count() {
    let _guard = TELEMETRY_LOCK.lock().unwrap();
    falcc_telemetry::enable();
    falcc_telemetry::reset();
    let _ = fit(33, 2);
    let snap = falcc_telemetry::snapshot();
    falcc_telemetry::disable();
    falcc_telemetry::reset();

    let jsonl = snap.to_jsonl();
    let span_lines = jsonl
        .lines()
        .filter(|l| l.starts_with("{\"type\":\"span\"") || l.starts_with("{\"type\":\"event\""))
        .count();
    assert_eq!(span_lines, snap.spans.len(), "every span exports exactly one line");
    for line in jsonl.lines() {
        assert!(line.starts_with('{') && line.ends_with('}'), "bad line: {line}");
        assert!(line.contains("\"type\":\""), "untyped line: {line}");
    }
}
