//! Property-based tests (proptest) over the framework's core invariants:
//! metric bounds, degenerate-region equivalences, loss algebra, Pareto
//! semantics, and the kd-tree's agreement with brute force.

use falcc_dataset::dataset::ProjectedMatrix;
use falcc_dataset::stats;
use falcc_dataset::GroupId;
use falcc_metrics::individual::consistency;
use falcc_metrics::{
    accuracy, l_hat, local_bias, pareto_front, rank_by_l_hat, FairnessMetric,
    QualityPoint,
};
use proptest::prelude::*;

/// Strategy: parallel (labels, predictions, binary groups) of length 4–64.
fn labeled_predictions() -> impl Strategy<Value = (Vec<u8>, Vec<u8>, Vec<GroupId>)> {
    (4usize..64).prop_flat_map(|n| {
        (
            prop::collection::vec(0u8..=1, n),
            prop::collection::vec(0u8..=1, n),
            prop::collection::vec((0u16..2).prop_map(GroupId), n),
        )
    })
}

proptest! {
    #[test]
    fn fairness_metrics_are_bounded((y, z, g) in labeled_predictions()) {
        for metric in FairnessMetric::ALL {
            let b = metric.bias(&y, &z, &g, 2);
            prop_assert!((0.0..=1.0).contains(&b), "{metric}: {b}");
        }
    }

    #[test]
    fn perfect_predictions_have_max_accuracy((y, _, g) in labeled_predictions()) {
        prop_assert_eq!(accuracy(&y, &y), 1.0);
        // Equal-opportunity bias of perfect predictions is 0: TPR is 1 in
        // every group with positives.
        let b = FairnessMetric::EqualOpportunity.bias(&y, &y, &g, 2);
        prop_assert!(b.abs() < 1e-12);
    }

    #[test]
    fn single_region_local_bias_equals_global((y, z, g) in labeled_predictions()) {
        let regions = vec![0usize; y.len()];
        for metric in FairnessMetric::ALL {
            let local = local_bias(metric, &y, &z, &g, 2, &regions, 1);
            let global = metric.bias(&y, &z, &g, 2);
            prop_assert!((local - global).abs() < 1e-12, "{metric}");
        }
    }

    #[test]
    fn local_bias_is_a_convex_combination((y, z, g) in labeled_predictions(),
                                          split_at in 1usize..3) {
        // Regions partition the data; the weighted average must lie within
        // the min/max of the per-region biases.
        let n = y.len();
        let cut = n * split_at / 3;
        let regions: Vec<usize> = (0..n).map(|i| usize::from(i >= cut.max(1))).collect();
        let metric = FairnessMetric::DemographicParity;
        let local = local_bias(metric, &y, &z, &g, 2, &regions, 2);
        prop_assert!((0.0..=1.0).contains(&local));
    }

    #[test]
    fn l_hat_is_monotone_in_both_terms(
        lambda in 0.0f64..=1.0,
        inacc in 0.0f64..=1.0,
        bias in 0.0f64..=1.0,
        delta in 0.0f64..=0.5,
    ) {
        let base = l_hat(lambda, inacc, bias);
        let worse_acc = l_hat(lambda, (inacc + delta).min(1.0), bias);
        let worse_bias = l_hat(lambda, inacc, (bias + delta).min(1.0));
        prop_assert!(worse_acc >= base - 1e-12);
        prop_assert!(worse_bias >= base - 1e-12);
    }

    #[test]
    fn pareto_front_is_never_empty_and_never_dominated(
        points in prop::collection::vec((0.0f64..=1.0, 0.0f64..=1.0), 1..20)
    ) {
        let qp: Vec<QualityPoint> = points
            .iter()
            .enumerate()
            .map(|(i, &(a, b))| QualityPoint { name: format!("p{i}"), accuracy: a, bias: b })
            .collect();
        let front = pareto_front(&qp);
        prop_assert!(!front.is_empty());
        // No front member is dominated by any point.
        for &i in &front {
            for (j, p) in qp.iter().enumerate() {
                if i != j {
                    prop_assert!(!p.dominates(&qp[i]));
                }
            }
        }
        // The L̂ winner is always on the front.
        let best = rank_by_l_hat(&qp, 0.5)[0];
        prop_assert!(front.contains(&best));
    }

    #[test]
    fn consistency_is_bounded_and_perfect_for_constant_predictions(
        coords in prop::collection::vec(-10.0f64..10.0, 6..40),
        bits in prop::collection::vec(0u8..=1, 6..40),
    ) {
        let n = coords.len().min(bits.len());
        let x = ProjectedMatrix { data: coords[..n].to_vec(), n_cols: 1, n_rows: n };
        let z = &bits[..n];
        let c = consistency(&x, z, 3);
        prop_assert!((0.0..=1.0 + 1e-12).contains(&c), "c = {c}");
        let ones = vec![1u8; n];
        prop_assert!((consistency(&x, &ones, 3) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn pearson_is_symmetric_and_bounded(
        pairs in prop::collection::vec((-100.0f64..100.0, -100.0f64..100.0), 3..50)
    ) {
        let a: Vec<f64> = pairs.iter().map(|p| p.0).collect();
        let b: Vec<f64> = pairs.iter().map(|p| p.1).collect();
        let r1 = stats::pearson(&a, &b);
        let r2 = stats::pearson(&b, &a);
        prop_assert!((r1 - r2).abs() < 1e-12);
        prop_assert!((-1.0..=1.0).contains(&r1));
        // Affine invariance: corr(a, 2a + 3) = 1 for non-constant a.
        if stats::variance(&a) > 1e-9 {
            let scaled: Vec<f64> = a.iter().map(|x| 2.0 * x + 3.0).collect();
            prop_assert!((stats::pearson(&a, &scaled) - 1.0).abs() < 1e-9);
        }
    }

    #[test]
    fn incomplete_beta_is_monotone_in_x(
        a in 0.5f64..5.0,
        b in 0.5f64..5.0,
        x1 in 0.0f64..=1.0,
        x2 in 0.0f64..=1.0,
    ) {
        let (lo, hi) = if x1 <= x2 { (x1, x2) } else { (x2, x1) };
        let i_lo = stats::regularized_incomplete_beta(a, b, lo);
        let i_hi = stats::regularized_incomplete_beta(a, b, hi);
        prop_assert!(i_lo <= i_hi + 1e-9, "I_x must be a CDF");
    }
}

#[test]
fn kdtree_matches_brute_force_on_random_data() {
    use falcc_clustering::KdTree;
    use rand::rngs::StdRng;
    use rand::Rng;
    use rand::SeedableRng;
    let mut rng = StdRng::seed_from_u64(17);
    let n = 300;
    let d = 4;
    let data: Vec<f64> = (0..n * d).map(|_| rng.gen_range(-5.0..5.0)).collect();
    let x = ProjectedMatrix { data, n_cols: d, n_rows: n };
    let tree = KdTree::build(x.clone());
    for _ in 0..25 {
        let q: Vec<f64> = (0..d).map(|_| rng.gen_range(-6.0..6.0)).collect();
        let got = tree.nearest(&q, 5);
        let mut brute: Vec<(usize, f64)> = (0..n)
            .map(|i| {
                let dist: f64 = x
                    .row(i)
                    .iter()
                    .zip(&q)
                    .map(|(a, b)| (a - b) * (a - b))
                    .sum();
                (i, dist)
            })
            .collect();
        brute.sort_by(|a, b| a.1.partial_cmp(&b.1).unwrap());
        for (g, e) in got.iter().zip(&brute[..5]) {
            assert!((g.1 - e.1).abs() < 1e-9);
        }
    }
}
