//! Thread-count invariance of the whole pipeline: fitting and batch
//! classification must produce **bit-identical** results whether they run
//! on 1, 2, or 8 worker threads.
//!
//! This is the contract of `falcc_models::parallel`: work items are pure
//! functions of their index (seeds derived from the master seed + index,
//! never from a thread id), and outputs merge in input order. Any
//! violation — a racing shared RNG, a scheduling-dependent reduction — is
//! a hard failure here, not noise.

use falcc::{FairClassifier, FalccConfig, FalccModel};
use falcc_dataset::{synthetic, SplitRatios, ThreeWaySplit};

struct Fitted {
    combos: Vec<Vec<usize>>,
    centroid_bits: Vec<Vec<u64>>,
    batch_preds: Vec<u8>,
    dataset_preds: Vec<u8>,
}

fn fit_with_threads(threads: usize, split_by_group: bool) -> Fitted {
    let ds = synthetic::social30(21).expect("generate");
    let ds = ds.subset(&(0..1500).collect::<Vec<_>>()).expect("subset");
    let split = ThreeWaySplit::split(&ds, SplitRatios::PAPER, 21).expect("split");

    let mut cfg = FalccConfig::default();
    cfg.scale_for_tests();
    cfg.seed = 21;
    cfg.threads = threads;
    cfg.pool.split_by_group = split_by_group;
    let model = FalccModel::fit(&split.train, &split.validation, &cfg).expect("fit");

    let rows: Vec<Vec<f64>> =
        (0..split.test.len()).map(|i| split.test.row(i).to_vec()).collect();
    Fitted {
        combos: (0..model.n_regions()).map(|c| model.combo(c).to_vec()).collect(),
        // Compare centroids at the bit level: "close enough" floats would
        // mask exactly the nondeterminism this test exists to catch.
        centroid_bits: model
            .centroids()
            .iter()
            .map(|c| c.iter().map(|v| v.to_bits()).collect())
            .collect(),
        batch_preds: model
            .classify_batch(&rows)
            .into_iter()
            .map(|r| r.expect("valid test rows classify"))
            .collect(),
        dataset_preds: model.predict_dataset(&split.test),
    }
}

#[test]
fn fit_and_batch_classify_are_invariant_across_thread_counts() {
    let reference = fit_with_threads(1, false);
    assert!(!reference.batch_preds.is_empty());
    for threads in [2, 8] {
        let run = fit_with_threads(threads, false);
        assert_eq!(run.combos, reference.combos, "combos differ at {threads} threads");
        assert_eq!(
            run.centroid_bits, reference.centroid_bits,
            "centroids differ at {threads} threads"
        );
        assert_eq!(
            run.batch_preds, reference.batch_preds,
            "batch predictions differ at {threads} threads"
        );
        assert_eq!(
            run.dataset_preds, reference.dataset_preds,
            "dataset predictions differ at {threads} threads"
        );
    }
}

#[test]
fn split_by_group_training_is_also_invariant() {
    // The split-training path fans out per-group fits; its per-group seeds
    // must come from the group id, never the worker.
    let reference = fit_with_threads(1, true);
    for threads in [2, 8] {
        let run = fit_with_threads(threads, true);
        assert_eq!(run.combos, reference.combos, "combos differ at {threads} threads");
        assert_eq!(run.batch_preds, reference.batch_preds);
    }
}

#[test]
fn log_means_pipeline_is_invariant_across_thread_counts() {
    // Same contract as above, but with LOG-Means k estimation instead of
    // the fixed test k — this exercises the warm-started probe cache, the
    // bounded Lloyd kernel, and the norm-pruned online path end to end.
    let fit = |threads: usize| -> (usize, Vec<Vec<u64>>, Vec<u8>) {
        let ds = synthetic::social30(23).expect("generate");
        let ds = ds.subset(&(0..1500).collect::<Vec<_>>()).expect("subset");
        let split = ThreeWaySplit::split(&ds, SplitRatios::PAPER, 23).expect("split");
        let mut cfg = FalccConfig::default();
        cfg.scale_for_tests();
        cfg.clustering = falcc::ClusterSpec::LogMeans;
        cfg.seed = 23;
        cfg.threads = threads;
        let model = FalccModel::fit(&split.train, &split.validation, &cfg).expect("fit");
        let centroid_bits = model
            .centroids()
            .iter()
            .map(|c| c.iter().map(|v| v.to_bits()).collect())
            .collect();
        (model.n_regions(), centroid_bits, model.predict_dataset(&split.test))
    };
    let (k_ref, centroids_ref, preds_ref) = fit(1);
    assert!(k_ref >= 1);
    for threads in [2, 8] {
        let (k, centroids, preds) = fit(threads);
        assert_eq!(k, k_ref, "LOG-Means k differs at {threads} threads");
        assert_eq!(centroids, centroids_ref, "centroids differ at {threads} threads");
        assert_eq!(preds, preds_ref, "predictions differ at {threads} threads");
    }
}

#[test]
fn classify_batch_equals_sequential_classification() {
    let ds = synthetic::social30(22).expect("generate");
    let ds = ds.subset(&(0..1200).collect::<Vec<_>>()).expect("subset");
    let split = ThreeWaySplit::split(&ds, SplitRatios::PAPER, 22).expect("split");
    let mut cfg = FalccConfig::default();
    cfg.scale_for_tests();
    cfg.seed = 22;
    let mut model = FalccModel::fit(&split.train, &split.validation, &cfg).expect("fit");

    let rows: Vec<Vec<f64>> =
        (0..split.test.len()).map(|i| split.test.row(i).to_vec()).collect();
    let sequential: Vec<u8> = rows.iter().map(|r| model.classify(r)).collect();
    for threads in [0, 1, 2, 8] {
        model.set_threads(threads);
        let batched: Vec<u8> = model
            .classify_batch(&rows)
            .into_iter()
            .map(|r| r.expect("valid test rows classify"))
            .collect();
        assert_eq!(batched, sequential, "batched ≠ sequential at {threads} threads");
    }
}
