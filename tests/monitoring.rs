//! Live serving monitor contracts, end to end:
//!
//! * **Determinism** — the windowed JSONL stream (and the exposition
//!   text, latency lines excluded) is byte-identical across worker
//!   thread counts *and* across the interpreted and compiled serving
//!   planes. Window boundaries key on row ordinals, never wall clock.
//! * **Non-perturbation** — predictions are bit-identical with monitors
//!   installed or not, on both planes.
//! * **Fault accounting** — a row rejected with a typed `RowFault` is
//!   counted exactly once: once on the `online.rows_rejected` counter
//!   and once in its window's rejection tally, per plane, for every
//!   thread count.
//! * **Metric fidelity** — the count-derived per-window demographic
//!   parity gap equals `FairnessMetric::DemographicParity` recomputed
//!   on reconstructed slices.
//! * **Baseline persistence** — `MonitorBaseline` survives the v2
//!   snapshot round trip bit-for-bit.

use falcc::{FairClassifier, FalccConfig, FalccModel, FaultPlan, SavedFalccModel};
use falcc_dataset::{synthetic, Dataset, GroupId, SplitRatios, ThreeWaySplit};
use falcc_metrics::FairnessMetric;
use std::sync::Mutex;

// Monitor installation is process-global; every test that installs one
// (or reads telemetry counters) serializes on this lock against cargo's
// parallel test threads.
static MONITOR_LOCK: Mutex<()> = Mutex::new(());

/// Small windows so a ~300-row test split spans several of them.
const WINDOW_LEN: u64 = 64;

fn fit(seed: u64, threads: usize, faults: FaultPlan) -> (FalccModel, Dataset) {
    let ds = synthetic::social30(seed).expect("generate");
    let ds = ds.subset(&(0..1500).collect::<Vec<_>>()).expect("subset");
    let split = ThreeWaySplit::split(&ds, SplitRatios::PAPER, seed).expect("split");
    let mut cfg = FalccConfig::default();
    cfg.scale_for_tests();
    cfg.seed = seed;
    cfg.threads = threads;
    cfg.faults = faults;
    let model = FalccModel::fit(&split.train, &split.validation, &cfg).expect("fit");
    (model, split.test)
}

fn exposition_without_latency(snap: &falcc_telemetry::MonitorSnapshot) -> String {
    // Latency lines are the one sanctioned nondeterministic signal.
    snap.render_exposition()
        .lines()
        .filter(|l| !l.contains("latency"))
        .collect::<Vec<_>>()
        .join("\n")
}

#[test]
fn monitor_streams_identical_across_planes_and_threads() {
    let _guard = MONITOR_LOCK.lock().unwrap();
    falcc_telemetry::monitor::uninstall();
    let (mut model, test) = fit(41, 2, FaultPlan::default());
    let unmonitored = model.predict_dataset(&test);
    assert_eq!(unmonitored, model.compile().predict_dataset(&test));

    // Ring of 4 so the run also exercises eviction (~5 windows pass by).
    let mut runs: Vec<(String, String, Vec<u8>)> = Vec::new();
    for threads in [1usize, 2, 8] {
        model.set_threads(threads);
        for compiled in [false, true] {
            let state = falcc_telemetry::monitor::install(model.monitor_spec(WINDOW_LEN, 4));
            let preds = if compiled {
                model.compile().predict_dataset(&test)
            } else {
                model.predict_dataset(&test)
            };
            falcc_telemetry::monitor::uninstall();
            let snap = state.snapshot();
            assert_eq!(snap.rows_seen, test.len() as u64);
            runs.push((snap.to_jsonl(), exposition_without_latency(&snap), preds));
        }
    }
    let (jsonl, exposition, preds) = &runs[0];
    assert!(jsonl.contains("\"type\":\"monitor_baseline\""));
    assert!(jsonl.contains("\"type\":\"monitor_region\""));
    for (other_jsonl, other_exposition, other_preds) in &runs[1..] {
        assert_eq!(other_jsonl, jsonl, "windowed JSONL diverged between runs");
        assert_eq!(other_exposition, exposition, "exposition diverged between runs");
        assert_eq!(other_preds, preds, "predictions diverged between runs");
    }
    // Observation never perturbs: monitored output == unmonitored output.
    assert_eq!(*preds, unmonitored, "monitors changed predictions");
}

#[test]
fn injected_row_faults_count_once_per_row_on_both_planes() {
    let _guard = MONITOR_LOCK.lock().unwrap();
    let mut plan = FaultPlan::default();
    plan.poison_row(3).poison_row(17);
    let (mut model, test) = fit(42, 2, plan);
    let rows: Vec<Vec<f64>> = (0..test.len()).map(|i| test.row(i).to_vec()).collect();
    assert!(rows.len() > 18, "need both poisoned ordinals in range");

    let mut streams: Vec<String> = Vec::new();
    for threads in [1usize, 2, 8] {
        model.set_threads(threads);
        for compiled in [false, true] {
            falcc_telemetry::enable();
            falcc_telemetry::reset();
            // Ring of 8 so the rejection window (id 0) is retained.
            let state = falcc_telemetry::monitor::install(model.monitor_spec(WINDOW_LEN, 8));
            let out = if compiled {
                model.compile().classify_batch(&rows)
            } else {
                model.classify_batch(&rows)
            };
            falcc_telemetry::monitor::uninstall();
            let counted = falcc_telemetry::snapshot().counter("online.rows_rejected");
            falcc_telemetry::disable();
            falcc_telemetry::reset();

            assert!(out[3].is_err() && out[17].is_err(), "poisoned rows must fault");
            assert_eq!(out.iter().filter(|r| r.is_err()).count(), 2);
            assert_eq!(counted, 2, "counter must tick exactly once per rejected row");

            let snap = state.snapshot();
            let window_rejections: u64 = snap.windows.iter().map(|w| w.rejected).sum();
            let observed: u64 = snap.windows.iter().map(|w| w.observed).sum();
            assert_eq!(window_rejections, 2, "window tally must match the fault count");
            assert_eq!(observed, rows.len() as u64);
            streams.push(snap.to_jsonl());
        }
    }
    for stream in &streams[1..] {
        assert_eq!(stream, &streams[0], "fault accounting diverged between runs");
    }
}

#[test]
fn window_dp_gap_matches_fairness_metric_on_reconstructed_slices() {
    let _guard = MONITOR_LOCK.lock().unwrap();
    let (model, test) = fit(43, 2, FaultPlan::default());
    let state = falcc_telemetry::monitor::install(model.monitor_spec(WINDOW_LEN, 8));
    let _ = model.predict_dataset(&test);
    falcc_telemetry::monitor::uninstall();
    let snap = state.snapshot();

    let spec = &snap.spec;
    let mut multi_group_cells = 0usize;
    for w in &snap.windows {
        for r in 0..spec.n_regions {
            // Rebuild the (prediction, group) slice the window counted
            // and hand it to the metrics crate's reference definition.
            let mut z: Vec<u8> = Vec::new();
            let mut g: Vec<GroupId> = Vec::new();
            for group in 0..spec.n_groups {
                let rows = w.rows[r * spec.n_groups + group];
                let positives = w.positives[r * spec.n_groups + group];
                for i in 0..rows {
                    z.push(u8::from(i < positives));
                    g.push(GroupId(group as u16));
                }
            }
            let y = vec![0u8; z.len()];
            let reference =
                FairnessMetric::DemographicParity.bias(&y, &z, &g, spec.n_groups);
            let live = w.dp_gap(spec.n_groups, r);
            assert!(
                (live - reference).abs() < 1e-12,
                "window {} region {r}: live gap {live} != reference {reference}",
                w.id
            );
            if g.iter().map(|id| id.index()).collect::<std::collections::BTreeSet<_>>().len()
                > 1
            {
                multi_group_cells += 1;
            }
        }
    }
    assert!(multi_group_cells > 0, "cross-check never saw a multi-group cell");
}

#[test]
fn monitor_baseline_survives_persistence_round_trip() {
    let (model, _test) = fit(44, 2, FaultPlan::default());
    let json = SavedFalccModel::capture(&model)
        .expect("capture")
        .to_json()
        .expect("serialise");
    let restored = SavedFalccModel::from_json(&json).expect("parse").restore();
    assert_eq!(model.monitor_baseline(), restored.monitor_baseline());
    assert_eq!(model.monitor_spec(WINDOW_LEN, 8), restored.monitor_spec(WINDOW_LEN, 8));

    let baseline = model.monitor_baseline();
    assert_eq!(baseline.n_regions, model.n_regions());
    assert_eq!(baseline.occupancy.len(), model.n_regions());
    assert_eq!(baseline.dp.len(), model.n_regions());
    assert_eq!(baseline.group_mix.len(), baseline.n_regions * baseline.n_groups);
    assert!(
        (baseline.occupancy.iter().sum::<f64>() - 1.0).abs() < 1e-9,
        "validation occupancy must sum to 1"
    );
}

#[test]
fn serve_counters_reconcile_with_accepted_rows() {
    let _guard = MONITOR_LOCK.lock().unwrap();
    let (model, test) = fit(45, 2, FaultPlan::default());
    let rows: Vec<Vec<f64>> = (0..test.len()).map(|i| test.row(i).to_vec()).collect();

    falcc_telemetry::enable();
    falcc_telemetry::reset();
    let out = model.compile().classify_batch(&rows);
    let snap = falcc_telemetry::snapshot();
    falcc_telemetry::disable();
    falcc_telemetry::reset();

    let accepted = out.iter().filter(|r| r.is_ok()).count() as u64;
    assert_eq!(accepted, rows.len() as u64);
    // Every accepted row is served exactly once, through exactly one of
    // the two dispatch layouts.
    assert_eq!(
        snap.counter("serve.bucket_rows") + snap.counter("serve.ordered_rows"),
        accepted
    );
}
