//! End-to-end integration tests: the full FALCC pipeline (and the
//! baselines) on every bundled dataset emulator, exercised across crate
//! boundaries exactly the way the experiment harness uses them.

use falcc::{FairClassifier, FalccConfig, FalccModel, ProxyStrategy};
use falcc_dataset::real;
use falcc_dataset::synthetic;
use falcc_dataset::{SplitRatios, ThreeWaySplit};
use falcc_metrics::{accuracy, FairnessMetric};

fn fit_on(ds: falcc_dataset::Dataset, seed: u64) -> (FalccModel, ThreeWaySplit) {
    let split = ThreeWaySplit::split(&ds, SplitRatios::PAPER, seed).expect("split");
    let mut cfg = FalccConfig::default();
    cfg.scale_for_tests();
    cfg.seed = seed;
    let model = FalccModel::fit(&split.train, &split.validation, &cfg).expect("fit");
    (model, split)
}

#[test]
fn falcc_runs_on_every_real_dataset_emulator() {
    for spec in real::all_specs() {
        // Scale each emulator down for speed, but keep a minimum row
        // count: the smallest datasets (Communities) otherwise leave a
        // test split too tiny to measure accuracy against.
        let scale = (500.0 / spec.n as f64).max(0.02);
        let ds = spec.generate(1, scale);
        let ds = match ds {
            Ok(d) => d,
            Err(e) => panic!("{}: {e}", spec.name),
        };
        let (model, split) = fit_on(ds, 1);
        let preds = model.predict_dataset(&split.test);
        assert_eq!(preds.len(), split.test.len(), "{}", spec.name);
        let acc = accuracy(split.test.labels(), &preds);
        assert!(acc > 0.5, "{}: accuracy {acc}", spec.name);
    }
}

#[test]
fn falcc_handles_four_sensitive_groups() {
    let ds = real::adult_sex_race().generate(2, 0.05).expect("generate");
    assert_eq!(ds.group_index().len(), 4);
    let (model, split) = fit_on(ds, 2);
    // Every cluster must carry a 4-entry combination.
    for c in 0..model.n_regions() {
        assert_eq!(model.combo(c).len(), 4);
    }
    let preds = model.predict_dataset(&split.test);
    assert!(accuracy(split.test.labels(), &preds) > 0.5);
}

#[test]
fn pipeline_is_deterministic_end_to_end() {
    let make = || {
        let ds = synthetic::social30(9).expect("generate");
        let ds = ds.subset(&(0..2000).collect::<Vec<_>>()).expect("subset");
        let (model, split) = fit_on(ds, 9);
        model.predict_dataset(&split.test)
    };
    assert_eq!(make(), make());
}

#[test]
fn proxy_mitigation_reduces_global_bias_on_implicit_data() {
    // The Fig. 5 headline claim as an invariant: with strong proxy bias,
    // mitigation must not *increase* global bias, and usually decreases it.
    let mut dcfg = falcc_dataset::synthetic::SyntheticConfig::implicit(0.40);
    dcfg.n = 3000;
    let ds = falcc_dataset::synthetic::generate(&dcfg, 11).expect("generate");
    let split = ThreeWaySplit::split(&ds, SplitRatios::PAPER, 11).expect("split");

    let bias_with = |strategy: ProxyStrategy| {
        let mut cfg = FalccConfig::default();
        cfg.scale_for_tests();
        cfg.proxy = strategy;
        cfg.seed = 11;
        let model =
            FalccModel::fit(&split.train, &split.validation, &cfg).expect("fit");
        let preds = model.predict_dataset(&split.test);
        FairnessMetric::DemographicParity.bias(
            split.test.labels(),
            &preds,
            split.test.groups(),
            2,
        )
    };
    let none = bias_with(ProxyStrategy::None);
    let reweigh = bias_with(ProxyStrategy::Reweigh);
    let remove = bias_with(ProxyStrategy::PAPER_REMOVE);
    // Allow a small tolerance: mitigation trades bias for accuracy and the
    // clusters shift, but it must not blow the bias up.
    assert!(reweigh <= none + 0.05, "reweigh {reweigh} vs none {none}");
    assert!(remove <= none + 0.05, "remove {remove} vs none {none}");
}

#[test]
fn all_baselines_run_on_compas_emulation() {
    use falcc_baselines::*;
    use falcc_metrics::LossConfig;
    use falcc_models::ModelPool;

    let ds = real::compas().generate(4, 0.1).expect("generate");
    let split = ThreeWaySplit::split(&ds, SplitRatios::PAPER, 4).expect("split");
    let loss = LossConfig::balanced(FairnessMetric::DemographicParity);

    let pool = ModelPool::standard_five(&split.train, 4);
    let models: Vec<Box<dyn FairClassifier>> = vec![
        Box::new(FairBoost::fit(&split.train, &FairBoostParams::default(), 4)),
        Box::new(Lfr::fit(&split.train, &LfrParams::default(), 4)),
        Box::new(IFair::fit(&split.train, &IFairParams::default(), 4)),
        Box::new(Fax::fit(&split.train, &FaxParams::default(), 4)),
        Box::new(FairSmote::fit(&split.train, &FairSmoteParams::default(), 4)),
        Box::new(Decouple::fit(pool.clone(), &split.validation, loss).expect("decouple")),
        Box::new(
            Falces::fit(pool, &split.validation, &FalcesConfig::default())
                .expect("falces"),
        ),
    ];
    for model in &models {
        let preds = model.predict_dataset(&split.test);
        assert_eq!(preds.len(), split.test.len(), "{}", model.name());
        let acc = accuracy(split.test.labels(), &preds);
        assert!(acc > 0.4, "{}: accuracy {acc} not plausible", model.name());
    }
}

#[test]
fn csv_round_trip_feeds_the_pipeline() {
    // Export an emulated dataset to CSV, re-import it, and train on the
    // re-imported copy — the drop-in path for externally obtained data.
    let ds = real::compas().generate(6, 0.05).expect("generate");
    let mut buf = Vec::new();
    falcc_dataset::csv::write_csv(&ds, &mut buf).expect("write");
    let again = falcc_dataset::csv::read_csv(buf.as_slice(), &[("race", vec![0.0, 1.0])])
        .expect("read");
    assert_eq!(again.len(), ds.len());
    let (model, split) = fit_on(again, 6);
    assert_eq!(model.predict_dataset(&split.test).len(), split.test.len());
}
