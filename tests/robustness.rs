//! Fault-tolerance suite: deterministic fault injection, graceful
//! degradation, and hardened persistence.
//!
//! Three claims are exercised end to end:
//!
//! 1. **No panics** — the pipeline never panics on malformed input:
//!    arbitrary finite/non-finite rows degrade to typed per-row errors,
//!    and every injected fault either degrades gracefully or surfaces a
//!    typed `FalccError`.
//! 2. **Deterministic degradation** — the same `FaultPlan` produces
//!    bit-identical degraded models and predictions at 1, 2, and 8 worker
//!    threads (run in CI under all three via `FALCC_TEST_THREADS`).
//! 3. **Hardened persistence** — a corruption matrix (bit flips at many
//!    offsets, truncations at many lengths, version skew) is always
//!    caught by the snapshot envelope and rejected with a typed error.
//! 4. **Crash-consistent checkpoints** — the same corruption matrix
//!    applied to a checkpoint journal never poisons a resumed fit: every
//!    damaged record or manifest line is detected and the resume falls
//!    back to the last valid prefix, reproducing the uninterrupted model
//!    bit for bit (stale-generation journals are rejected typed instead).
//! 5. **Hardened binary artifacts** — the same corruption matrix applied
//!    to the v3 binary serving artifact (bit flips across header,
//!    section table, and slab bytes; truncation buckets; alignment
//!    violations; version skew; stale fingerprints) is always rejected
//!    with a typed error — never UB, never a panic, never a silently
//!    different model.

use falcc::checkpoint::MANIFEST;
use falcc::faults::{flip_byte, truncate_bytes};
use falcc::{
    CheckpointSpec, FairClassifier, FalccConfig, FalccError, FalccModel, FaultPlan,
    RowFault, SavedFalccModel,
};
use falcc_dataset::{synthetic, SplitRatios, ThreeWaySplit};
use std::path::Path;

/// Thread counts to exercise. CI pins `FALCC_TEST_THREADS` to 1, 2, and 8
/// in separate jobs; locally every count runs in-process too.
const THREAD_COUNTS: [usize; 3] = [1, 2, 8];

fn fixture(n: usize, seed: u64) -> ThreeWaySplit {
    let ds = synthetic::social30(seed).expect("generate");
    let ds = ds.subset(&(0..n).collect::<Vec<_>>()).expect("subset");
    ThreeWaySplit::split(&ds, SplitRatios::PAPER, seed).expect("split")
}

fn config(seed: u64, threads: usize) -> FalccConfig {
    let mut cfg = FalccConfig::default();
    cfg.scale_for_tests();
    cfg.seed = seed;
    cfg.threads = threads;
    cfg
}

/// A plan touching every offline fault site at once.
fn stacked_plan() -> FaultPlan {
    let mut plan = FaultPlan::default();
    plan.fail_pool_member(1)
        .empty_cluster(0)
        .drop_group_in_region(1, 0)
        .drop_group_in_region(2, 1)
        .poison_row(5);
    plan
}

#[test]
fn degraded_pipeline_is_bit_identical_across_thread_counts() {
    let split = fixture(1200, 31);
    let run = |threads: usize| {
        let mut cfg = config(31, threads);
        cfg.faults = stacked_plan();
        let model =
            FalccModel::fit(&split.train, &split.validation, &cfg).expect("degraded fit");
        let rows: Vec<Vec<f64>> =
            (0..split.test.len()).map(|i| split.test.row(i).to_vec()).collect();
        let combos: Vec<Vec<usize>> =
            (0..model.n_regions()).map(|c| model.combo(c).to_vec()).collect();
        let preds = model.classify_batch(&rows);
        (model.pool().len(), combos, preds)
    };
    let env_threads: Option<usize> =
        std::env::var("FALCC_TEST_THREADS").ok().and_then(|v| v.parse().ok());
    let reference = run(1);
    // Row 5 is injected as poisoned; everything else classifies.
    assert!(reference.2[5].is_err(), "injected row fault must fire");
    assert!(
        reference.2.iter().enumerate().all(|(i, r)| r.is_ok() || i == 5),
        "only the injected row degrades"
    );
    for threads in THREAD_COUNTS.into_iter().chain(env_threads) {
        let run_t = run(threads);
        assert_eq!(run_t.0, reference.0, "pool size differs at {threads} threads");
        assert_eq!(run_t.1, reference.1, "combos differ at {threads} threads");
        assert_eq!(run_t.2, reference.2, "degraded predictions differ at {threads} threads");
    }
}

#[test]
fn seeded_plans_reproduce_their_degradation() {
    let split = fixture(900, 32);
    let fit = |plan: FaultPlan| {
        let mut cfg = config(32, 1);
        cfg.faults = plan;
        FalccModel::fit(&split.train, &split.validation, &cfg)
            .map(|m| (0..m.n_regions()).map(|c| m.combo(c).to_vec()).collect::<Vec<_>>())
    };
    let a = fit(FaultPlan::seeded(99, 3, 4, 0));
    let b = fit(FaultPlan::seeded(99, 3, 4, 0));
    match (a, b) {
        (Ok(x), Ok(y)) => assert_eq!(x, y),
        (Err(x), Err(y)) => assert_eq!(x.to_string(), y.to_string()),
        _ => panic!("same seeded plan must degrade identically"),
    }
}

#[test]
fn pool_depletion_is_typed_and_total_depletion_never_panics() {
    let split = fixture(800, 33);
    // Quarantine the whole 3-member pool.
    let mut cfg = config(33, 0);
    for i in 0..3 {
        cfg.faults.fail_pool_member(i);
    }
    match FalccModel::fit(&split.train, &split.validation, &cfg) {
        Err(FalccError::PoolDepleted { survivors, quarantined, min_pool_size }) => {
            assert_eq!((survivors, quarantined, min_pool_size), (0, 3, 1));
        }
        Err(other) => panic!("expected PoolDepleted, got {other}"),
        Ok(_) => panic!("a fully quarantined pool cannot fit"),
    }
}

/// Shared fixture for the property test below: fit once, probe many times.
fn arbitrary_row_fixture() -> &'static (FalccModel, Vec<f64>) {
    use std::sync::OnceLock;
    static FIXTURE: OnceLock<(FalccModel, Vec<f64>)> = OnceLock::new();
    FIXTURE.get_or_init(|| {
        let split = fixture(800, 34);
        let model = FalccModel::fit(&split.train, &split.validation, &config(34, 0))
            .expect("fit");
        let good = split.test.row(0).to_vec();
        (model, good)
    })
}

proptest::proptest! {
    #![proptest_config(proptest::prelude::ProptestConfig::with_cases(128))]

    // Rows span empty to over-wide, with a cell optionally poisoned by
    // NaN, infinities, or an out-of-domain sensitive code. The online
    // phase must answer every one with a typed result — never a panic —
    // and a bad row in a batch must not disturb its neighbours.
    #[test]
    fn online_phase_never_panics_on_arbitrary_rows(
        width in 0usize..20,
        cells in proptest::collection::vec(-1e6f64..1e6, 20usize),
        poison_col in 0usize..20,
        poison_kind in 0u8..5,
    ) {
        let (model, good) = arbitrary_row_fixture();
        let mut r: Vec<f64> = cells[..width].to_vec();
        if poison_col < width {
            r[poison_col] = match poison_kind {
                0 => f64::NAN,
                1 => f64::INFINITY,
                2 => f64::NEG_INFINITY,
                3 => 7.5, // out of domain when it lands on a sensitive column
                _ => r[poison_col], // leave the finite draw in place
            };
        }
        // try_classify: typed result, never a panic.
        let single = model.try_classify(&r);
        if let Ok(z) = single {
            proptest::prop_assert!(z <= 1);
        }
        // Batched alongside known-good rows: the good rows' results
        // are unaffected by the arbitrary neighbour.
        let batch = model.classify_batch(&[good.clone(), r.clone(), good.clone()]);
        proptest::prop_assert_eq!(batch.len(), 3);
        proptest::prop_assert!(batch[0].is_ok() && batch[2].is_ok());
        proptest::prop_assert_eq!(batch[0].clone(), batch[2].clone());
        match (&single, &batch[1]) {
            (Ok(a), Ok(b)) => proptest::prop_assert_eq!(a, b),
            (Err(a), Err(b)) => proptest::prop_assert_eq!(a.clone(), b.clone()),
            _ => proptest::prop_assert!(false, "single and batched verdicts disagree"),
        }
    }
}

#[test]
fn row_faults_carry_actionable_context() {
    let split = fixture(700, 35);
    let model = FalccModel::fit(&split.train, &split.validation, &config(35, 0))
        .expect("fit");
    let d = split.test.n_attrs();
    let good = split.test.row(0).to_vec();

    assert!(matches!(
        model.try_classify(&[]),
        Err(RowFault::WrongWidth { found: 0, expected }) if expected == d
    ));
    let mut bad = good.clone();
    bad[d - 1] = f64::NAN;
    assert_eq!(model.try_classify(&bad), Err(RowFault::NonFinite { column: d - 1 }));
    let mut alien = good;
    alien[0] = -3.0;
    assert_eq!(model.try_classify(&alien), Err(RowFault::GroupOutOfDomain));
}

#[test]
fn snapshot_corruption_matrix_is_always_caught() {
    let split = fixture(800, 36);
    let model = FalccModel::fit(&split.train, &split.validation, &config(36, 0))
        .expect("fit");
    let saved = SavedFalccModel::capture(&model).expect("capture");
    let json = saved.to_json().expect("serialise");
    let reference = SavedFalccModel::from_json(&json)
        .expect("pristine snapshot loads")
        .restore()
        .predict_dataset(&split.test);

    // Bit flips across the whole snapshot, via the fault harness. Every
    // mangled snapshot either fails typed, or — when the flip lands in
    // JSON whitespace/structure that serde normalises away — restores to
    // the identical model. It must never load as a *different* model.
    let stride = (json.len() / 97).max(1);
    for offset in (0..json.len()).step_by(stride) {
        let mut plan = FaultPlan::default();
        plan.flip_snapshot_byte(offset);
        let mut bytes = json.clone().into_bytes();
        plan.mangle_snapshot(&mut bytes);
        let mangled = String::from_utf8_lossy(&bytes).into_owned();
        match SavedFalccModel::from_json(&mangled) {
            Err(
                FalccError::SnapshotCorrupt { .. } | FalccError::SnapshotVersionSkew { .. },
            ) => {}
            Err(other) => panic!("flip at {offset}: wrong error type {other}"),
            Ok(loaded) => {
                assert_eq!(
                    loaded.restore().predict_dataset(&split.test),
                    reference,
                    "flip at {offset} silently changed the model"
                );
            }
        }
    }

    // Truncations at every length bucket.
    for keep in [0, 1, 2, json.len() / 4, json.len() / 2, json.len() - 2, json.len() - 1] {
        let mut plan = FaultPlan::default();
        plan.truncate_snapshot(keep);
        let mut bytes = json.clone().into_bytes();
        plan.mangle_snapshot(&mut bytes);
        let mangled = String::from_utf8_lossy(&bytes).into_owned();
        assert!(
            matches!(
                SavedFalccModel::from_json(&mangled),
                Err(FalccError::SnapshotCorrupt { .. })
            ),
            "truncation to {keep} bytes must be SnapshotCorrupt"
        );
    }
}

#[test]
fn artifact_corruption_matrix_is_always_caught() {
    let split = fixture(800, 38);
    let model = FalccModel::fit(&split.train, &split.validation, &config(38, 0))
        .expect("fit");
    let compiled = model.compile();
    const FP: u64 = 0xdead_beef_cafe_f00d;
    let bytes = compiled.to_artifact_bytes(FP).expect("serialise");
    let reference = falcc::CompiledModelBuf::from_bytes(bytes.clone())
        .expect("pristine artifact validates")
        .load_if_fresh(FP)
        .expect("pristine artifact loads")
        .predict_dataset(&split.test);
    assert_eq!(reference, compiled.predict_dataset(&split.test));

    // Bit flips at a stride across the whole file: header, section
    // table, slab bytes, and inter-section padding. Unlike the JSON
    // envelope (where serde may normalise whitespace damage away), the
    // binary envelope has no slack: every flipped byte must be rejected
    // typed, with the error variant determined by where the flip landed.
    let stride = (bytes.len() / 97).max(1);
    for offset in (0..bytes.len()).step_by(stride).chain([8, 16, 24]) {
        let mut mangled = bytes.clone();
        flip_byte(&mut mangled, offset);
        let outcome = falcc::CompiledModelBuf::from_bytes(mangled)
            .and_then(|buf| buf.load_if_fresh(FP));
        match outcome {
            Err(FalccError::ArtifactCorrupt { .. }) => {}
            Err(FalccError::ArtifactVersionSkew { .. }) => {
                assert!(
                    (8..12).contains(&offset),
                    "flip at {offset} misreported as version skew"
                );
            }
            Err(FalccError::ArtifactStale { .. }) => {
                assert!(
                    (16..24).contains(&offset),
                    "flip at {offset} misreported as stale"
                );
            }
            Err(other) => panic!("flip at {offset}: wrong error type {other}"),
            Ok(_) => panic!("flip at {offset} loaded anyway"),
        }
    }

    // Truncations at every length bucket, including mid-header and
    // mid-slab cuts.
    for keep in
        [0, 1, 2, 31, 100, bytes.len() / 4, bytes.len() / 2, bytes.len() - 2, bytes.len() - 1]
    {
        let mut mangled = bytes.clone();
        truncate_bytes(&mut mangled, keep);
        assert!(
            matches!(
                falcc::CompiledModelBuf::from_bytes(mangled),
                Err(FalccError::ArtifactCorrupt { .. })
            ),
            "truncation to {keep} bytes must be ArtifactCorrupt"
        );
    }

    // Alignment violation with *valid* checksums: shift a section offset
    // off the 8-byte grid and re-seal both the section checksum and the
    // whole-file checksum, so only the alignment rule can catch it.
    let mut mangled = bytes.clone();
    let entry = 32 + 32; // section 1's table entry
    let offset =
        u64::from_le_bytes(mangled[entry + 8..entry + 16].try_into().expect("8 bytes"));
    let len =
        u64::from_le_bytes(mangled[entry + 16..entry + 24].try_into().expect("8 bytes"));
    mangled[entry + 8..entry + 16].copy_from_slice(&(offset + 4).to_le_bytes());
    let body = &mangled[(offset + 4) as usize..(offset + 4 + len) as usize];
    let reseal = falcc::io::fnv1a64(body);
    mangled[entry + 24..entry + 32].copy_from_slice(&reseal.to_le_bytes());
    let file_checksum = falcc::io::fnv1a64(&mangled[32..]);
    mangled[24..32].copy_from_slice(&file_checksum.to_le_bytes());
    match falcc::CompiledModelBuf::from_bytes(mangled) {
        Err(FalccError::ArtifactCorrupt { detail }) => {
            assert!(detail.contains("misaligned"), "{detail}");
        }
        Err(other) => panic!("misalignment: wrong error type {other}"),
        Ok(_) => panic!("misaligned section validated anyway"),
    }

    // Version skew on an otherwise intact file is its own typed variant.
    let mut skewed = bytes.clone();
    skewed[8] = 9;
    assert!(matches!(
        falcc::CompiledModelBuf::from_bytes(skewed),
        Err(FalccError::ArtifactVersionSkew { found: 9, expected: 3 })
    ));

    // Stale fingerprint: the buffer validates but refuses to serve a
    // model compiled from a different snapshot.
    let rejected_before = falcc_telemetry::counters::ARTIFACTS_REJECTED.get();
    let buf = falcc::CompiledModelBuf::from_bytes(bytes).expect("validate");
    assert!(matches!(
        buf.load_if_fresh(FP ^ 1),
        Err(FalccError::ArtifactStale { found: FP, .. })
    ));
    if falcc_telemetry::enabled() {
        let rejected_after = falcc_telemetry::counters::ARTIFACTS_REJECTED.get();
        assert!(
            rejected_after > rejected_before,
            "typed artifact rejections must tick artifact.rejected"
        );
    }
    // The same buffer still serves the matching fingerprint.
    let again = buf.load_if_fresh(FP).expect("fresh load").predict_dataset(&split.test);
    assert_eq!(again, reference);
}

#[test]
fn corrupted_artifact_files_are_rejected_on_load() {
    let split = fixture(700, 39);
    let model = FalccModel::fit(&split.train, &split.validation, &config(39, 0))
        .expect("fit");
    let dir = std::env::temp_dir().join("falcc_artifact_robustness_test");
    std::fs::create_dir_all(&dir).expect("mkdir");
    let path = dir.join("model.falccb");

    let compiled = model.compile();
    compiled.save_artifact(&path, 5).expect("save");
    let loaded = falcc::CompiledModel::load_artifact(&path).expect("pristine file loads");
    assert_eq!(
        loaded.predict_dataset(&split.test),
        compiled.predict_dataset(&split.test)
    );

    // Corrupt the file on disk, as a crash/bad-disk stand-in, and reload.
    let mut bytes = std::fs::read(&path).expect("read");
    let mid = bytes.len() / 2;
    flip_byte(&mut bytes, mid);
    std::fs::write(&path, &bytes).expect("write");
    assert!(matches!(
        falcc::CompiledModel::load_artifact(&path),
        Err(FalccError::ArtifactCorrupt { .. })
    ));

    // Arbitrary garbage is corruption too, not a panic.
    std::fs::write(&path, [0x00u8, 0x11, 0x22]).expect("write");
    assert!(matches!(
        falcc::CompiledModel::load_artifact(&path),
        Err(FalccError::ArtifactCorrupt { .. })
    ));

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn corrupted_snapshot_files_are_rejected_on_load() {
    let split = fixture(700, 37);
    let model = FalccModel::fit(&split.train, &split.validation, &config(37, 0))
        .expect("fit");
    let dir = std::env::temp_dir().join("falcc_robustness_test");
    std::fs::create_dir_all(&dir).expect("mkdir");
    let path = dir.join("model.json");

    let saved = SavedFalccModel::capture(&model).expect("capture");
    saved.save_file(&path).expect("save");
    assert!(SavedFalccModel::load_file(&path).is_ok(), "pristine file loads");

    // Corrupt the file on disk through the harness, as a crash/bad-disk
    // stand-in, and reload.
    let mut bytes = std::fs::read(&path).expect("read");
    let mut plan = FaultPlan::default();
    plan.flip_snapshot_byte(bytes.len() / 2).truncate_snapshot(bytes.len() - 7);
    plan.mangle_snapshot(&mut bytes);
    std::fs::write(&path, &bytes).expect("write");
    assert!(matches!(
        SavedFalccModel::load_file(&path),
        Err(FalccError::SnapshotCorrupt { .. })
    ));

    // Non-UTF-8 garbage is corruption too, not an I/O panic.
    std::fs::write(&path, [0xFFu8, 0xFE, 0x00, 0x9F]).expect("write");
    assert!(matches!(
        SavedFalccModel::load_file(&path),
        Err(FalccError::SnapshotCorrupt { .. })
    ));

    std::fs::remove_dir_all(&dir).ok();
}

/// Fits on `split`, optionally journaling into `ckpt`, and returns the
/// serialised snapshot — the byte string all resumed runs must reproduce.
fn fit_snapshot(
    split: &ThreeWaySplit,
    seed: u64,
    ckpt: Option<(&Path, bool)>,
) -> Result<String, FalccError> {
    let mut cfg = config(seed, 0);
    if let Some((dir, resume)) = ckpt {
        let mut spec = CheckpointSpec::new(dir);
        spec.resume = resume;
        cfg.checkpoint = Some(spec);
    }
    let model = FalccModel::fit(&split.train, &split.validation, &cfg)?;
    SavedFalccModel::capture(&model).and_then(|s| s.to_json())
}

/// The snapshot corruption matrix, extended to checkpoint journals: bit
/// flips in every record file, manifest truncation buckets, and a
/// manifest-chain break all degrade to a shorter valid prefix — the
/// resumed model stays bit-identical to the uninterrupted run.
#[test]
fn checkpoint_journal_corruption_matrix_resumes_from_last_valid_prefix() {
    let split = fixture(700, 41);
    let root = std::env::temp_dir().join("falcc_journal_matrix");
    std::fs::remove_dir_all(&root).ok();
    std::fs::create_dir_all(&root).expect("mkdir");

    // Reference: one journaled run, equal to the journal-less fit, whose
    // journal files become the pristine state every case damages.
    let pristine_dir = root.join("pristine");
    let reference =
        fit_snapshot(&split, 41, Some((&pristine_dir, false))).expect("journaled fit");
    assert_eq!(
        reference,
        fit_snapshot(&split, 41, None).expect("plain fit"),
        "journaling must not change the fitted model"
    );
    let mut pristine: Vec<(String, Vec<u8>)> = std::fs::read_dir(&pristine_dir)
        .expect("read journal dir")
        .map(|e| {
            let e = e.expect("dir entry");
            let name = e.file_name().to_string_lossy().into_owned();
            (name.clone(), std::fs::read(e.path()).expect("read journal file"))
        })
        .collect();
    pristine.sort();
    let records: Vec<String> = pristine
        .iter()
        .map(|(n, _)| n.clone())
        .filter(|n| n.starts_with("ck_"))
        .collect();
    assert!(records.len() >= 10, "expected a multi-record journal, got {records:?}");

    let scratch = root.join("scratch");
    let restore = || {
        std::fs::remove_dir_all(&scratch).ok();
        std::fs::create_dir_all(&scratch).expect("mkdir scratch");
        for (name, bytes) in &pristine {
            std::fs::write(scratch.join(name), bytes).expect("restore journal file");
        }
    };
    let resume = || fit_snapshot(&split, 41, Some((&scratch, true)));

    // Bit-flip sweep: damage each record file in turn, once a third of
    // the way in and once near the tail. The manifest's record checksum
    // catches the flip and the prefix ends just before it.
    for name in &records {
        for offset_num in [3usize, 1usize] {
            restore();
            let path = scratch.join(name);
            let mut bytes = std::fs::read(&path).expect("read record");
            let offset = bytes.len() / offset_num - 3;
            assert!(flip_byte(&mut bytes, offset), "record files are never empty");
            std::fs::write(&path, &bytes).expect("write mangled record");
            assert_eq!(
                resume().expect("resume over flipped record"),
                reference,
                "flip in {name} at {offset} must fall back to the valid prefix"
            );
        }
    }

    // Truncation buckets on the manifest: empty file, mid-first-line tear,
    // quarter/half tears, and a torn final line (the mid-manifest crash
    // shape). Each yields a shorter valid prefix, never a wrong model.
    let manifest_len = pristine
        .iter()
        .find(|(n, _)| n == MANIFEST)
        .map(|(_, b)| b.len())
        .expect("manifest in pristine journal");
    for keep in [0, 10, manifest_len / 4, manifest_len / 2, manifest_len - 5] {
        restore();
        let path = scratch.join(MANIFEST);
        let mut bytes = std::fs::read(&path).expect("read manifest");
        assert!(truncate_bytes(&mut bytes, keep));
        std::fs::write(&path, &bytes).expect("write truncated manifest");
        assert_eq!(
            resume().expect("resume over truncated manifest"),
            reference,
            "manifest truncated to {keep} bytes must fall back to the valid prefix"
        );
    }

    // Chain break: splice out a middle manifest line. The successor's
    // predecessor-checksum no longer matches, so the prefix ends at the
    // splice even though every remaining line is individually pristine.
    restore();
    let path = scratch.join(MANIFEST);
    let text = std::fs::read_to_string(&path).expect("read manifest");
    let lines: Vec<&str> = text.lines().collect();
    let spliced: Vec<&str> = lines
        .iter()
        .enumerate()
        .filter(|(i, _)| *i != lines.len() / 2)
        .map(|(_, l)| *l)
        .collect();
    std::fs::write(&path, spliced.join("\n") + "\n").expect("write spliced manifest");
    assert_eq!(
        resume().expect("resume over spliced manifest"),
        reference,
        "a manifest-chain break must fall back to the valid prefix"
    );

    // Stale generation: a journal written under one seed must be rejected
    // typed when resumed under another — never spliced in.
    restore();
    match fit_snapshot(&split, 42, Some((&scratch, true))) {
        Err(FalccError::CheckpointStale { found, expected }) => {
            assert_ne!(found, expected);
        }
        Err(other) => panic!("expected CheckpointStale, got {other}"),
        Ok(_) => panic!("a foreign-generation journal must not resume"),
    }
    // ... while a fresh (non-resume) fit wipes it and proceeds.
    assert!(fit_snapshot(&split, 42, Some((&scratch, false))).is_ok());

    std::fs::remove_dir_all(&root).ok();
}

#[test]
fn degraded_models_survive_a_persistence_round_trip() {
    // Degradation (quarantine + fallbacks) must not produce a model that
    // fails to serialise or round-trips to different predictions.
    let split = fixture(900, 38);
    let mut cfg = config(38, 0);
    cfg.faults = stacked_plan();
    let model = FalccModel::fit(&split.train, &split.validation, &cfg).expect("fit");
    let json = SavedFalccModel::capture(&model)
        .expect("capture degraded model")
        .to_json()
        .expect("serialise");
    let revived = SavedFalccModel::from_json(&json).expect("reload").restore();
    assert_eq!(
        revived.predict_dataset(&split.test),
        model.predict_dataset(&split.test),
        "degraded model round-trips bit-identically"
    );
    // Restored models carry no fault schedule.
    assert!(revived.fault_plan().is_empty());
}
