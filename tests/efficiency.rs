//! Efficiency integration tests — the paper's headline claim (Fig. 6) as a
//! testable invariant: FALCC's online phase must be substantially cheaper
//! than FALCES's, because FALCC replaces per-sample kNN + combination
//! assessment with a nearest-centroid lookup.
//!
//! Wall-clock assertions are inherently jittery; the margins here are an
//! order of magnitude below the real gap (typically 10–100×), so the tests
//! stay robust on loaded machines.

use falcc::{FairClassifier, FalccConfig, FalccModel};
use falcc_baselines::{Falces, FalcesConfig};
use falcc_dataset::synthetic;
use falcc_dataset::{SplitRatios, ThreeWaySplit};
use falcc_models::ModelPool;
use std::time::Instant;

fn timed_predict(model: &dyn FairClassifier, test: &falcc_dataset::Dataset) -> f64 {
    // Warm up once, then take the best of three (noise-resistant).
    let _ = model.predict_dataset(test);
    (0..3)
        .map(|_| {
            let start = Instant::now();
            let _ = model.predict_dataset(test);
            start.elapsed().as_secs_f64()
        })
        .fold(f64::INFINITY, f64::min)
}

#[test]
fn falcc_online_phase_is_faster_than_falces() {
    let ds = synthetic::social30(1).expect("generate");
    let ds = ds.subset(&(0..4000).collect::<Vec<_>>()).expect("subset");
    let split = ThreeWaySplit::split(&ds, SplitRatios::PAPER, 1).expect("split");

    let mut cfg = FalccConfig::default();
    cfg.scale_for_tests();
    let falcc = FalccModel::fit(&split.train, &split.validation, &cfg).expect("falcc");

    let pool = ModelPool::standard_five(&split.train, 1);
    let falces =
        Falces::fit(pool, &split.validation, &FalcesConfig::default()).expect("falces");

    let t_falcc = timed_predict(&falcc, &split.test);
    let t_falces = timed_predict(&falces, &split.test);
    assert!(
        t_falcc < t_falces,
        "FALCC online ({t_falcc:.4}s) must beat FALCES ({t_falces:.4}s)"
    );
}

#[test]
fn falcc_online_cost_does_not_explode_with_group_count() {
    // Fit on 2-group and 4-group data of identical size; FALCC's online
    // cost is O(k·d) + one model call regardless of |G| (combination
    // lookup is O(1)), so the per-sample cost should stay within a small
    // factor. (FALCES, by contrast, scales its combination assessment with
    // |combos| = |M|^|G| — the paper's Adult(2) vs Adult(4) observation.)
    use falcc_dataset::real;
    let two = real::adult_sex().generate(2, 0.03).expect("2-group");
    let four = real::adult_sex_race().generate(2, 0.03).expect("4-group");

    let per_sample = |ds: falcc_dataset::Dataset| {
        let split = ThreeWaySplit::split(&ds, SplitRatios::PAPER, 2).expect("split");
        let mut cfg = FalccConfig::default();
        cfg.scale_for_tests();
        let model = FalccModel::fit(&split.train, &split.validation, &cfg).expect("fit");
        timed_predict(&model, &split.test) / split.test.len() as f64
    };
    let t2 = per_sample(two);
    let t4 = per_sample(four);
    assert!(
        t4 < t2 * 10.0,
        "4-group per-sample cost {t4:.2e}s vs 2-group {t2:.2e}s — should not explode"
    );
}

#[test]
fn offline_phase_is_where_the_cost_lives() {
    // Sanity on the design: offline fit >> total online pass (on equal
    // data). This is the trade the paper's architecture makes explicit.
    let ds = synthetic::social30(2).expect("generate");
    let ds = ds.subset(&(0..3000).collect::<Vec<_>>()).expect("subset");
    let split = ThreeWaySplit::split(&ds, SplitRatios::PAPER, 2).expect("split");
    let mut cfg = FalccConfig::default();
    cfg.scale_for_tests();

    let start = Instant::now();
    let model = FalccModel::fit(&split.train, &split.validation, &cfg).expect("fit");
    let offline = start.elapsed().as_secs_f64();
    let online = timed_predict(&model, &split.test);
    assert!(
        offline > online,
        "offline ({offline:.4}s) should dominate one online pass ({online:.4}s)"
    );
}
