#![allow(clippy::field_reassign_with_default)] // config mutation reads clearer in experiment scripts

//! Criterion micro-benchmarks of the **offline phase** components: diverse
//! model training, clustering with LOG-Means, and model assessment. The
//! offline phase runs once per deployment (paper §3.1), so these benches
//! document the cost FALCC pays up front to buy its online speed.

use criterion::{criterion_group, criterion_main, Criterion};
use falcc::{ClusterSpec, FalccConfig, FalccModel};
use falcc_bench::BenchDataset;
use falcc_clustering::{log_means, KEstimateConfig, KMeans};
use falcc_dataset::{SplitRatios, ThreeWaySplit};
use falcc_models::{ModelPool, PoolConfig};
use std::hint::black_box;

fn offline_phase(c: &mut Criterion) {
    let seed = 11;
    let ds = BenchDataset::Compas.generate(seed, 0.15);
    let split = ThreeWaySplit::split(&ds, SplitRatios::PAPER, seed).expect("split");

    let mut group = c.benchmark_group("offline_phase");
    group.sample_size(10);

    group.bench_function("diverse_model_training", |b| {
        b.iter(|| {
            black_box(ModelPool::train_diverse(
                &split.train,
                &split.validation,
                &PoolConfig { pool_size: 5, seed, ..Default::default() },
            ))
        })
    });

    let attrs = split.validation.schema().non_sensitive_attrs();
    let projected = split.validation.project(&attrs, None);
    group.bench_function("log_means_estimation", |b| {
        b.iter(|| {
            let est = KEstimateConfig::for_rows(projected.n_rows, seed);
            black_box(log_means(&projected, &est))
        })
    });

    group.bench_function("kmeans_k8", |b| {
        b.iter(|| black_box(KMeans::new(8, seed).fit(&projected)))
    });

    let pool = ModelPool::train_diverse(
        &split.train,
        &split.validation,
        &PoolConfig { pool_size: 5, seed, ..Default::default() },
    );
    group.bench_function("assessment_with_fixed_pool", |b| {
        b.iter(|| {
            let mut cfg = FalccConfig::default();
            cfg.clustering = ClusterSpec::FixedK(8);
            cfg.seed = seed;
            black_box(
                FalccModel::fit_with_pool(&split.validation, pool.clone(), &cfg)
                    .expect("fit"),
            )
        })
    });

    group.finish();
}

criterion_group!(benches, offline_phase);
criterion_main!(benches);
