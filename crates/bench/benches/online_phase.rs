#![allow(clippy::field_reassign_with_default)] // config mutation reads clearer in experiment scripts

//! Criterion micro-benchmarks of the **online phase** (paper Fig. 6): the
//! per-sample classification latency of FALCC against the FALCES variants
//! and the fastest single-model baseline. The shape to expect: FALCC sits
//! within a small factor of a bare model invocation, while FALCES pays the
//! per-sample kNN + combination-assessment cost.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use falcc::{FairClassifier, FalccConfig, FalccModel};
use falcc_baselines::{Falces, FalcesConfig, FalcesVariant, Fax, FaxParams};
use falcc_bench::BenchDataset;
use falcc_dataset::{SplitRatios, ThreeWaySplit};
use falcc_metrics::{FairnessMetric, LossConfig};
use falcc_models::ModelPool;
use std::hint::black_box;

fn online_phase(c: &mut Criterion) {
    let mut group = c.benchmark_group("online_phase");
    for (dataset, scale) in [(BenchDataset::Compas, 0.2), (BenchDataset::AdultSexRace, 0.05)] {
        let seed = 11;
        let ds = dataset.generate(seed, scale);
        let split = ThreeWaySplit::split(&ds, SplitRatios::PAPER, seed).expect("split");

        let mut cfg = FalccConfig::default();
        cfg.loss = LossConfig::balanced(FairnessMetric::DemographicParity);
        cfg.seed = seed;
        let falcc = FalccModel::fit(&split.train, &split.validation, &cfg).expect("falcc");

        let pool = ModelPool::standard_five(&split.train, seed);
        let falces_plain = Falces::fit(
            pool.clone(),
            &split.validation,
            &FalcesConfig { variant: FalcesVariant::Plain, ..Default::default() },
        )
        .expect("falces");
        let falces_pfa = Falces::fit(
            pool,
            &split.validation,
            &FalcesConfig { variant: FalcesVariant::Pfa, ..Default::default() },
        )
        .expect("falces-pfa");
        let fax = Fax::fit(&split.train, &FaxParams::default(), seed);

        let rows: Vec<&[f64]> = (0..split.test.len().min(256)).map(|i| split.test.row(i)).collect();
        let contenders: [(&str, &dyn FairClassifier); 4] = [
            ("FALCC", &falcc),
            ("FALCES", &falces_plain),
            ("FALCES-PFA", &falces_pfa),
            ("FaX", &fax),
        ];
        for (name, model) in contenders {
            group.bench_with_input(
                BenchmarkId::new(name, dataset.name()),
                &rows,
                |b, rows| {
                    let mut i = 0usize;
                    b.iter(|| {
                        let row = rows[i % rows.len()];
                        i += 1;
                        black_box(model.predict_row(black_box(row)))
                    })
                },
            );
        }
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = online_phase
}
criterion_main!(benches);
