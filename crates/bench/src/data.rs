//! The dataset registry: every dataset configuration of the paper's
//! evaluation (Tab. 4 + the two synthetic generators).

use falcc_dataset::real;
use falcc_dataset::synthetic::{self, SyntheticConfig};
use falcc_dataset::Dataset;

/// A dataset configuration of the evaluation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BenchDataset {
    /// ACS2017 (race).
    Acs2017,
    /// Adult (sex).
    AdultSex,
    /// Adult (race).
    AdultRace,
    /// Adult (sex, race) — 4 sensitive groups.
    AdultSexRace,
    /// Communities & Crime (race).
    Communities,
    /// COMPAS (race).
    Compas,
    /// Credit Card Clients (sex).
    CreditCard,
    /// Synthetic, 30% social (direct) bias.
    Social30,
    /// Synthetic, 30% implicit (proxy) bias.
    Implicit30,
}

impl BenchDataset {
    /// All nine configurations of the Tab. 5 summary (9 × 3 metrics = the
    /// paper's 27 experiment configurations).
    pub const SUMMARY_SET: [Self; 9] = [
        Self::Acs2017,
        Self::AdultSex,
        Self::AdultRace,
        Self::AdultSexRace,
        Self::Communities,
        Self::Compas,
        Self::CreditCard,
        Self::Social30,
        Self::Implicit30,
    ];

    /// The seven real-world rows of Tab. 4.
    pub const TAB4_SET: [Self; 7] = [
        Self::Acs2017,
        Self::AdultSex,
        Self::AdultRace,
        Self::AdultSexRace,
        Self::Communities,
        Self::Compas,
        Self::CreditCard,
    ];

    /// Dataset name as printed in the paper.
    pub fn name(self) -> &'static str {
        match self {
            Self::Acs2017 => "ACS2017",
            Self::AdultSex => "Adult (sex)",
            Self::AdultRace => "Adult (race)",
            Self::AdultSexRace => "Adult (sex, race)",
            Self::Communities => "Communities",
            Self::Compas => "COMPAS",
            Self::CreditCard => "Credit Card Clients",
            Self::Social30 => "social30",
            Self::Implicit30 => "implicit30",
        }
    }

    /// Generates the dataset for `seed`, with emulated real datasets scaled
    /// by `scale` (synthetic generators follow the same scaling for
    /// comparable run times). The row count is floored at 1 500 (or the
    /// dataset's full size if smaller) — below that, per-region assessment
    /// degenerates into noise for every algorithm and the comparison stops
    /// meaning anything.
    ///
    /// # Panics
    /// Panics only on internal generator bugs (generation of the fixed
    /// configurations is infallible for valid scales).
    pub fn generate(self, seed: u64, scale: f64) -> Dataset {
        const MIN_ROWS: f64 = 1_500.0;
        let floored = |full_n: usize| -> f64 {
            let scale = scale.clamp(0.001, 1.0);
            (MIN_ROWS.min(full_n as f64) / full_n as f64).max(scale)
        };
        let spec = match self {
            Self::Acs2017 => real::acs2017(),
            Self::AdultSex => real::adult_sex(),
            Self::AdultRace => real::adult_race(),
            Self::AdultSexRace => real::adult_sex_race(),
            Self::Communities => real::communities(),
            Self::Compas => real::compas(),
            Self::CreditCard => real::credit_card(),
            Self::Social30 => {
                let mut cfg = SyntheticConfig::social(0.30);
                cfg.n = ((cfg.n as f64 * floored(cfg.n)) as usize).max(64);
                return synthetic::generate(&cfg, seed).expect("social30 generation");
            }
            Self::Implicit30 => {
                let mut cfg = SyntheticConfig::implicit(0.30);
                cfg.n = ((cfg.n as f64 * floored(cfg.n)) as usize).max(64);
                return synthetic::generate(&cfg, seed).expect("implicit30 generation");
            }
        };
        let eff_scale = floored(spec.n);
        spec.generate(seed, eff_scale).expect("real dataset emulation")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_summary_datasets_generate() {
        for d in BenchDataset::SUMMARY_SET {
            let ds = d.generate(1, 0.01);
            assert!(ds.len() >= 64, "{}", d.name());
            assert!(ds.group_index().len() >= 2, "{}", d.name());
        }
    }

    #[test]
    fn names_are_distinct() {
        let names: std::collections::HashSet<&str> =
            BenchDataset::SUMMARY_SET.iter().map(|d| d.name()).collect();
        assert_eq!(names.len(), 9);
    }

    #[test]
    fn adult_sex_race_has_four_groups() {
        let ds = BenchDataset::AdultSexRace.generate(2, 0.01);
        assert_eq!(ds.group_index().len(), 4);
    }
}
