//! Cold-start benchmark: JSON restore+compile vs binary artifact load.
//!
//! A serving replica coming up from a JSON snapshot pays three costs:
//! parsing the text envelope (`SavedFalccModel::load_file`), rebuilding
//! the interpreted model (`restore`), and lowering it into the flat
//! serving plane (`compile`). The v3 binary artifact persists the
//! *result* of all three, so its cold start is one file read, checksum
//! validation, and validated bulk copies. This benchmark times both
//! paths on the same ensemble-heavy model, breaks the JSON path down by
//! stage, and hard-gates bit identity between the two planes;
//! `exp_artifacts` exits non-zero on divergence (and, at benchmark
//! scale, on a cold-start speedup below [`COLD_START_MIN_SPEEDUP`]) and
//! serialises everything to `BENCH_artifacts.json`.

use falcc::{CompiledModel, CompiledModelBuf, FairClassifier, FalccModel, SavedFalccModel};
use falcc_dataset::{SplitRatios, ThreeWaySplit};

use crate::data::BenchDataset;
use crate::serving::{best_ms, mixed_batch, serving_config};

/// Minimum artifact-vs-JSON cold-start speedup gated at benchmark scale
/// (`exp_artifacts` without `--smoke`, scale ≥ 0.10). The artifact skips
/// serde entirely, so the real margin is far larger; the bound only
/// catches a load path that has degenerated back into per-field parsing.
pub const COLD_START_MIN_SPEEDUP: f64 = 10.0;

/// The full benchmark envelope written to `BENCH_artifacts.json`.
#[derive(Debug, Clone, serde::Serialize)]
pub struct ArtifactsReport {
    /// Dataset row-count scale the model was fitted at.
    pub scale: f64,
    /// Base RNG seed.
    pub seed: u64,
    /// Timing samples per measurement (minimum taken).
    pub reps: usize,
    /// Rows in the test split the equivalence gate classifies.
    pub test_rows: usize,
    /// Pool members in the fitted model (whole grid, unpruned).
    pub pool_models: usize,
    /// Local regions (k).
    pub n_regions: usize,
    /// Total flat tree nodes across all compiled members.
    pub flat_nodes: usize,
    /// Size of the JSON snapshot on disk, bytes.
    pub json_bytes: usize,
    /// Size of the binary artifact on disk, bytes.
    pub artifact_bytes: usize,
    /// Full JSON cold start: read + parse + restore + compile, ms.
    pub json_cold_ms: f64,
    /// JSON read + envelope verification + serde parse, ms.
    pub json_parse_ms: f64,
    /// Interpreted-model reconstruction (`restore`), ms — derived as
    /// (parse+restore) − parse, since `restore` consumes the parsed
    /// snapshot.
    pub restore_ms: f64,
    /// Serving-plane lowering (`compile`), ms.
    pub compile_ms: f64,
    /// Full artifact cold start: read + validate + load, ms.
    pub artifact_cold_ms: f64,
    /// Artifact read + envelope/checksum validation only, ms.
    pub artifact_validate_ms: f64,
    /// `json_cold_ms / artifact_cold_ms`.
    pub cold_start_speedup: f64,
    /// Whether the artifact-loaded plane was bit-identical to the
    /// JSON-restored one on every compared entry point (hard gate).
    pub equivalent: bool,
    /// What was compared.
    pub note: String,
}

/// Times both cold-start paths on Adult (sex) and verifies bit identity.
pub fn bench_artifacts(scale: f64, seed: u64, reps: usize) -> ArtifactsReport {
    let ds = BenchDataset::AdultSex.generate(seed, scale);
    let split = ThreeWaySplit::split(&ds, SplitRatios::PAPER, seed).expect("split");
    let model = FalccModel::fit(&split.train, &split.validation, &serving_config(seed))
        .expect("group coverage");

    let dir = std::env::temp_dir().join(format!("falcc_bench_artifacts_{seed}"));
    std::fs::create_dir_all(&dir).expect("mkdir");
    let json_path = dir.join("model.json");
    let artifact_path = falcc::sibling_artifact_path(&json_path);

    // The exact production emit flow: snapshot to JSON, fingerprint the
    // on-disk bytes, restore+compile from the file, persist the plane.
    SavedFalccModel::capture(&model)
        .and_then(|saved| saved.save_file(&json_path))
        .expect("save snapshot");
    let snapshot_bytes = std::fs::read(&json_path).expect("read snapshot");
    let fingerprint = falcc::io::fnv1a64(&snapshot_bytes);
    let compiled = SavedFalccModel::load_file(&json_path).expect("load").restore().compile();
    compiled.save_artifact(&artifact_path, fingerprint).expect("save artifact");
    let artifact_bytes = std::fs::metadata(&artifact_path).expect("stat").len() as usize;

    // Equivalence gate: full Result sequences on the clean batch, the
    // malformed batch, every single-row verdict, and the dataset path —
    // artifact-loaded plane vs the JSON restore+compile plane.
    let loaded = CompiledModelBuf::read(&artifact_path)
        .and_then(|buf| buf.load_if_fresh(fingerprint))
        .expect("artifact load");
    let rows: Vec<Vec<f64>> =
        (0..split.test.len()).map(|i| split.test.row(i).to_vec()).collect();
    let mixed = mixed_batch(&split);
    let equivalent = compiled.classify_batch(&rows) == loaded.classify_batch(&rows)
        && compiled.classify_batch(&mixed) == loaded.classify_batch(&mixed)
        && rows
            .iter()
            .chain(&mixed)
            .all(|row| compiled.try_classify(row) == loaded.try_classify(row))
        && compiled.predict_dataset(&split.test) == loaded.predict_dataset(&split.test);

    // Cold-start timings. Every sample goes back to disk, so both sides
    // include the file read; the page cache is equally warm for both.
    let json_cold_ms = best_ms(reps, || {
        let plane =
            SavedFalccModel::load_file(&json_path).expect("load").restore().compile();
        std::hint::black_box(plane);
    });
    let artifact_cold_ms = best_ms(reps, || {
        std::hint::black_box(CompiledModel::load_artifact(&artifact_path).expect("load"));
    });

    // JSON-path breakdown, each stage isolated.
    let json_parse_ms = best_ms(reps, || {
        std::hint::black_box(SavedFalccModel::load_file(&json_path).expect("load"));
    });
    let parse_restore_ms = best_ms(reps, || {
        let restored = SavedFalccModel::load_file(&json_path).expect("load").restore();
        std::hint::black_box(restored);
    });
    let restore_ms = (parse_restore_ms - json_parse_ms).max(0.0);
    let restored = SavedFalccModel::load_file(&json_path).expect("load").restore();
    let compile_ms = best_ms(reps, || {
        std::hint::black_box(restored.compile());
    });
    let artifact_validate_ms = best_ms(reps, || {
        std::hint::black_box(CompiledModelBuf::read(&artifact_path).expect("read"));
    });

    std::fs::remove_dir_all(&dir).ok();

    ArtifactsReport {
        scale,
        seed,
        reps,
        test_rows: rows.len(),
        pool_models: model.pool().models.len(),
        n_regions: compiled.n_regions(),
        flat_nodes: compiled.n_nodes(),
        json_bytes: snapshot_bytes.len(),
        artifact_bytes,
        json_cold_ms,
        json_parse_ms,
        restore_ms,
        compile_ms,
        artifact_cold_ms,
        artifact_validate_ms,
        cold_start_speedup: json_cold_ms / artifact_cold_ms.max(1e-12),
        equivalent,
        note: format!(
            "Adult (sex), whole AdaBoost grid (pool_size 0), k=8; Result sequences \
             compared on {} clean rows, {} mixed malformed rows, per-row \
             try_classify, and predict_dataset; every timing sample re-reads \
             from disk",
            rows.len(),
            mixed.len()
        ),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_report_is_equivalent_and_serialisable() {
        let report = bench_artifacts(0.01, 13, 1);
        assert!(report.equivalent, "artifact plane diverged from JSON restore+compile");
        assert!(report.test_rows > 0);
        assert!(report.json_bytes > 0 && report.artifact_bytes > 0);
        assert!(report.json_cold_ms > 0.0 && report.artifact_cold_ms > 0.0);
        assert!(report.cold_start_speedup > 0.0);
        let json = serde_json::to_string(&report).expect("serialise");
        assert!(json.contains("cold_start_speedup"));
    }
}
