//! Minimal flag parsing shared by all experiment binaries (no CLI crate in
//! the allowed dependency set).

use std::path::PathBuf;

/// Common experiment options.
#[derive(Debug, Clone)]
pub struct Opts {
    /// Base RNG seed; run `r` uses `seed + r`.
    pub seed: u64,
    /// Number of runs (dataset splits) to average over. The paper uses 4.
    pub runs: usize,
    /// Row-count scale of the emulated datasets in `(0, 1]`.
    pub scale: f64,
    /// Output directory for CSV files.
    pub out: PathBuf,
    /// Tiny-footprint mode for CI: shrink data and repetitions so the
    /// binary finishes in seconds (used by `exp_kernels`).
    pub smoke: bool,
    /// Record telemetry and print the per-phase profile (`--profile`).
    pub profile: bool,
    /// Record telemetry and write the trace as JSON lines here.
    pub trace_out: Option<PathBuf>,
    /// Suppress progress output on stderr (`--quiet`).
    pub quiet: bool,
}

impl Default for Opts {
    fn default() -> Self {
        Self {
            seed: 11,
            runs: 4,
            scale: 0.10,
            out: PathBuf::from("bench_results"),
            smoke: false,
            profile: false,
            trace_out: None,
            quiet: false,
        }
    }
}

impl Opts {
    /// Parses `--seed`, `--runs`, `--scale`, `--out`, `--smoke`,
    /// `--profile`, `--trace-out`, `--quiet` from the process args, then
    /// activates telemetry accordingly ([`Self::activate_telemetry`]).
    /// Unknown flags abort with a usage message — silent typos would waste
    /// long experiment runs.
    pub fn from_args() -> Self {
        let opts = Self::parse(std::env::args().skip(1));
        opts.activate_telemetry();
        opts
    }

    /// Applies the telemetry flags: `--quiet` silences progress output,
    /// and `--profile`/`--trace-out` turn recording on.
    pub fn activate_telemetry(&self) {
        falcc_telemetry::set_quiet(self.quiet);
        if self.profile || self.trace_out.is_some() {
            falcc_telemetry::enable();
        }
    }

    /// Final telemetry output: writes the JSON-lines trace when
    /// `--trace-out` was given and prints the phase tree when `--profile`
    /// was. Call once at the end of an experiment binary.
    pub fn finish_telemetry(&self) {
        if !(self.profile || self.trace_out.is_some()) {
            return;
        }
        let snap = falcc_telemetry::snapshot();
        if let Some(path) = &self.trace_out {
            if let Err(e) = snap.write_jsonl(path) {
                eprintln!("cannot write trace to {}: {e}", path.display());
                std::process::exit(1);
            }
        }
        if self.profile {
            println!("\n-- profile --\n{}", snap.render_tree());
        }
    }

    fn parse(args: impl Iterator<Item = String>) -> Self {
        let mut opts = Self::default();
        let mut args = args.peekable();
        while let Some(flag) = args.next() {
            let mut value = |name: &str| -> String {
                args.next().unwrap_or_else(|| {
                    eprintln!("missing value for {name}");
                    std::process::exit(2);
                })
            };
            match flag.as_str() {
                "--seed" => opts.seed = parse_or_die(&value("--seed"), "--seed"),
                "--runs" => opts.runs = parse_or_die(&value("--runs"), "--runs"),
                "--scale" => opts.scale = parse_or_die(&value("--scale"), "--scale"),
                "--out" => opts.out = PathBuf::from(value("--out")),
                "--smoke" => opts.smoke = true,
                "--profile" => opts.profile = true,
                "--trace-out" => opts.trace_out = Some(PathBuf::from(value("--trace-out"))),
                "--quiet" => opts.quiet = true,
                "--help" | "-h" => {
                    println!(
                        "flags: --seed <u64> --runs <n> --scale <0..1] --out <dir> --smoke\n\
                         \x20      --profile --trace-out <path> --quiet\n\
                         defaults: --seed 11 --runs 4 --scale 0.10 --out bench_results"
                    );
                    std::process::exit(0);
                }
                other => {
                    eprintln!("unknown flag {other}; see --help");
                    std::process::exit(2);
                }
            }
        }
        if !(opts.scale > 0.0 && opts.scale <= 1.0) {
            eprintln!("--scale must be in (0, 1], got {}", opts.scale);
            std::process::exit(2);
        }
        if opts.runs == 0 {
            eprintln!("--runs must be positive");
            std::process::exit(2);
        }
        opts
    }

    /// The per-run seeds.
    pub fn run_seeds(&self) -> Vec<u64> {
        (0..self.runs as u64).map(|r| self.seed + r).collect()
    }

    /// Ensures the output directory exists and returns it.
    ///
    /// # Panics
    /// Panics if the directory cannot be created.
    pub fn ensure_out_dir(&self) -> &std::path::Path {
        std::fs::create_dir_all(&self.out).expect("create output directory");
        &self.out
    }
}

fn parse_or_die<T: std::str::FromStr>(s: &str, flag: &str) -> T {
    s.parse().unwrap_or_else(|_| {
        eprintln!("invalid value {s:?} for {flag}");
        std::process::exit(2);
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(args: &[&str]) -> Opts {
        Opts::parse(args.iter().map(|s| s.to_string()))
    }

    #[test]
    fn defaults_without_flags() {
        let o = parse(&[]);
        assert_eq!(o.seed, 11);
        assert_eq!(o.runs, 4);
        assert!((o.scale - 0.10).abs() < 1e-12);
    }

    #[test]
    fn flags_override_defaults() {
        let o = parse(&["--seed", "99", "--runs", "2", "--scale", "0.5", "--out", "/tmp/x"]);
        assert_eq!(o.seed, 99);
        assert_eq!(o.runs, 2);
        assert!((o.scale - 0.5).abs() < 1e-12);
        assert_eq!(o.out, PathBuf::from("/tmp/x"));
    }

    #[test]
    fn smoke_flag_takes_no_value() {
        let o = parse(&["--smoke", "--runs", "2"]);
        assert!(o.smoke);
        assert_eq!(o.runs, 2);
        assert!(!parse(&[]).smoke);
    }

    #[test]
    fn telemetry_flags_parse() {
        let o = parse(&["--profile", "--trace-out", "t.jsonl", "--quiet"]);
        assert!(o.profile);
        assert!(o.quiet);
        assert_eq!(o.trace_out, Some(PathBuf::from("t.jsonl")));
        let o = parse(&[]);
        assert!(!o.profile && !o.quiet && o.trace_out.is_none());
    }

    #[test]
    fn run_seeds_are_consecutive() {
        let o = parse(&["--seed", "5", "--runs", "3"]);
        assert_eq!(o.run_seeds(), vec![5, 6, 7]);
    }
}
