//! Naive-vs-fast timing harness for the hot numeric kernels.
//!
//! Every fast kernel in this codebase ships next to its naive reference
//! implementation (presorted vs re-sorting CART, bounded vs plain Lloyd,
//! pruned vs full distance scans). This module times both sides on the
//! same data the runtime experiment uses and — where the fast kernel
//! promises bit-identical output — verifies that promise on the spot.
//! `exp_kernels` serialises the result to `BENCH_kernels.json` so the
//! perf trajectory is tracked across PRs.

use falcc_clustering::{log_means, BruteKnn, KEstimateConfig, KMeans, KdTree};
use falcc_dataset::dataset::ProjectedMatrix;
use falcc_dataset::{Dataset, SplitRatios, ThreeWaySplit};
use falcc_models::{DecisionTree, TreeParams};
use std::time::Instant;

use crate::data::BenchDataset;

/// One kernel's naive-vs-fast measurement.
#[derive(Debug, Clone, serde::Serialize)]
pub struct KernelTiming {
    /// Kernel name (stable across PRs; used as the JSON key).
    pub kernel: String,
    /// Median wall-clock of the naive reference, milliseconds.
    pub naive_ms: f64,
    /// Median wall-clock of the fast kernel, milliseconds.
    pub fast_ms: f64,
    /// `naive_ms / fast_ms`.
    pub speedup: f64,
    /// Whether the two sides produced identical outputs on this run (for
    /// bit-equivalent kernels this must be `true`; warm-started LOG-Means
    /// legitimately improves its probes, see `note`).
    pub equivalent: bool,
    /// What was compared / why a difference is expected.
    pub note: String,
}

/// The full benchmark envelope written to `BENCH_kernels.json`.
#[derive(Debug, Clone, serde::Serialize)]
pub struct KernelReport {
    /// Dataset row-count scale the kernels ran at.
    pub scale: f64,
    /// Base RNG seed.
    pub seed: u64,
    /// Timing repetitions per side (median taken).
    pub reps: usize,
    /// Number of rows in the training/validation splits used.
    pub train_rows: usize,
    /// Per-kernel measurements.
    pub kernels: Vec<KernelTiming>,
}

fn median_ms(reps: usize, mut f: impl FnMut()) -> f64 {
    let mut times: Vec<f64> = (0..reps.max(1))
        .map(|_| {
            let start = Instant::now();
            f();
            start.elapsed().as_secs_f64() * 1_000.0
        })
        .collect();
    times.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
    times[times.len() / 2]
}

fn timing(
    kernel: &str,
    naive_ms: f64,
    fast_ms: f64,
    equivalent: bool,
    note: &str,
) -> KernelTiming {
    KernelTiming {
        kernel: kernel.to_string(),
        naive_ms,
        fast_ms,
        speedup: naive_ms / fast_ms.max(1e-9),
        equivalent,
        note: note.to_string(),
    }
}

/// Runs every kernel comparison at `scale` (the `exp_runtime` dataset
/// scale) and returns the report. Uses Adult (sex) — the largest Tab. 4
/// dataset — so the numbers reflect the regime the paper's Fig. 6 cares
/// about.
pub fn bench_kernels(scale: f64, seed: u64, reps: usize) -> KernelReport {
    let ds = BenchDataset::AdultSex.generate(seed, scale);
    let split = ThreeWaySplit::split(&ds, SplitRatios::PAPER, seed).expect("split");
    let attrs = split.train.schema().non_sensitive_attrs();

    let mut kernels = Vec::new();
    kernels.push(bench_tree(&split.train, &attrs, seed, reps));
    let projected = split.validation.project(&attrs, None);
    kernels.push(bench_lloyd(&projected, seed, reps));
    kernels.push(bench_log_means(&projected, seed, reps));
    kernels.extend(bench_knn(&split.validation, &split.test, &attrs, reps));
    kernels.push(bench_nearest_centroid(&projected, &split.test, &attrs, seed, reps));

    KernelReport { scale, seed, reps, train_rows: split.train.len(), kernels }
}

/// CART: presorted builder vs per-node re-sorting reference.
fn bench_tree(train: &Dataset, attrs: &[usize], seed: u64, reps: usize) -> KernelTiming {
    let indices: Vec<usize> = (0..train.len()).collect();
    let params = TreeParams { max_depth: 12, ..TreeParams::default() };
    let naive_ms = median_ms(reps, || {
        std::hint::black_box(DecisionTree::fit_naive(
            train, attrs, &indices, None, &params, seed,
        ));
    });
    let fast_ms = median_ms(reps, || {
        std::hint::black_box(DecisionTree::fit(train, attrs, &indices, None, &params, seed));
    });
    let fast = DecisionTree::fit(train, attrs, &indices, None, &params, seed);
    let naive = DecisionTree::fit_naive(train, attrs, &indices, None, &params, seed);
    timing(
        "tree_training",
        naive_ms,
        fast_ms,
        fast == naive,
        "full tree structures compared node-for-node",
    )
}

/// Lloyd iterations: Hamerly-bounded vs fused naive, same k.
fn bench_lloyd(x: &ProjectedMatrix, seed: u64, reps: usize) -> KernelTiming {
    let mut trainer = KMeans::new(16, seed);
    trainer.bounds = false;
    let naive_ms = median_ms(reps, || {
        std::hint::black_box(trainer.fit(x));
    });
    let naive = trainer.fit(x);
    trainer.bounds = true;
    let fast_ms = median_ms(reps, || {
        std::hint::black_box(trainer.fit(x));
    });
    let fast = trainer.fit(x);
    let equivalent = fast.assignments == naive.assignments
        && fast.centroids == naive.centroids
        && fast.sse.to_bits() == naive.sse.to_bits();
    timing(
        "kmeans_lloyd",
        naive_ms,
        fast_ms,
        equivalent,
        "assignments, centroids and SSE compared bit-for-bit (k=16)",
    )
}

/// LOG-Means: warm-started + bounded vs cold + naive probes.
fn bench_log_means(x: &ProjectedMatrix, seed: u64, reps: usize) -> KernelTiming {
    let mut cfg = KEstimateConfig::for_rows(x.n_rows, seed);
    cfg.warm_start = false;
    cfg.bounds = false;
    let naive_ms = median_ms(reps, || {
        std::hint::black_box(log_means(x, &cfg));
    });
    let k_naive = log_means(x, &cfg);
    cfg.warm_start = true;
    cfg.bounds = true;
    let fast_ms = median_ms(reps, || {
        std::hint::black_box(log_means(x, &cfg));
    });
    let k_fast = log_means(x, &cfg);
    timing(
        "log_means",
        naive_ms,
        fast_ms,
        k_fast == k_naive,
        &format!(
            "bounds are bit-equivalent; warm starts may legitimately tighten \
             probe SSEs (chose k={k_fast} vs k={k_naive} cold)"
        ),
    )
}

/// Batch kNN: pruned kd-tree and select-based brute-force top-k vs their
/// unpruned / full-sort references.
fn bench_knn(
    validation: &Dataset,
    test: &Dataset,
    attrs: &[usize],
    reps: usize,
) -> Vec<KernelTiming> {
    const K: usize = 10;
    let index = validation.project(attrs, None);
    let queries = test.project(attrs, None);
    let n_q = queries.n_rows.min(500);

    let tree = KdTree::build(index.clone());
    let tree_naive_ms = median_ms(reps, || {
        for i in 0..n_q {
            std::hint::black_box(tree.nearest_reference(queries.row(i), K));
        }
    });
    let tree_fast_ms = median_ms(reps, || {
        for i in 0..n_q {
            std::hint::black_box(tree.nearest(queries.row(i), K));
        }
    });
    let tree_equiv = (0..n_q)
        .all(|i| tree.nearest(queries.row(i), K) == tree.nearest_reference(queries.row(i), K));

    let brute = BruteKnn::build(index);
    let brute_naive_ms = median_ms(reps, || {
        for i in 0..n_q {
            std::hint::black_box(brute.nearest_naive(queries.row(i), K));
        }
    });
    let brute_fast_ms = median_ms(reps, || {
        for i in 0..n_q {
            std::hint::black_box(brute.nearest(queries.row(i), K));
        }
    });
    let brute_equiv = (0..n_q)
        .all(|i| brute.nearest(queries.row(i), K) == brute.nearest_naive(queries.row(i), K));

    vec![
        timing(
            "kdtree_knn",
            tree_naive_ms,
            tree_fast_ms,
            tree_equiv,
            &format!("{n_q} queries, k={K}, neighbour lists compared exactly"),
        ),
        timing(
            "batch_knn",
            brute_naive_ms,
            brute_fast_ms,
            brute_equiv,
            &format!("brute-force top-k, {n_q} queries, k={K}, select_nth vs full sort"),
        ),
    ]
}

/// Online nearest-centroid match: norm-pruned vs full scan.
fn bench_nearest_centroid(
    x: &ProjectedMatrix,
    test: &Dataset,
    attrs: &[usize],
    seed: u64,
    reps: usize,
) -> KernelTiming {
    let model = KMeans::new(32, seed).fit(x);
    let norms = model.centroid_norms();
    let queries = test.project(attrs, None);
    // The per-query cost is sub-microsecond; run several passes per
    // measurement so the clock resolution doesn't dominate.
    const PASSES: usize = 10;
    let naive_ms = median_ms(reps, || {
        for _ in 0..PASSES {
            for i in 0..queries.n_rows {
                std::hint::black_box(model.predict(queries.row(i)));
            }
        }
    }) / PASSES as f64;
    let fast_ms = median_ms(reps, || {
        for _ in 0..PASSES {
            for i in 0..queries.n_rows {
                std::hint::black_box(model.predict_pruned(queries.row(i), &norms));
            }
        }
    }) / PASSES as f64;
    let equivalent = (0..queries.n_rows)
        .all(|i| model.predict(queries.row(i)) == model.predict_pruned(queries.row(i), &norms));
    timing(
        "nearest_centroid",
        naive_ms,
        fast_ms,
        equivalent,
        &format!("{} online matches against k=32 centroids", queries.n_rows),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_report_is_equivalent_and_serialisable() {
        let report = bench_kernels(0.01, 3, 1);
        assert_eq!(report.kernels.len(), 6);
        for k in &report.kernels {
            assert!(k.naive_ms >= 0.0 && k.fast_ms >= 0.0, "{}", k.kernel);
            assert!(k.speedup > 0.0, "{}", k.kernel);
            // Every kernel except warm-started LOG-Means promises
            // bit-identical outputs.
            if k.kernel != "log_means" {
                assert!(k.equivalent, "{} diverged from its reference", k.kernel);
            }
        }
        let json = serde_json::to_string(&report).expect("serialise");
        assert!(json.contains("tree_training"));
    }
}
