//! Plain-text table rendering and CSV output for the experiment binaries.

use std::fmt::Write as _;
use std::path::Path;

/// A simple column-aligned table.
#[derive(Debug, Clone)]
pub struct Table {
    title: String,
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given title and column headers.
    pub fn new(title: impl Into<String>, header: &[&str]) -> Self {
        Self {
            title: title.into(),
            header: header.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row (stringified cells).
    ///
    /// # Panics
    /// Panics if the cell count differs from the header.
    pub fn push(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.header.len(), "row width must match header");
        self.rows.push(cells);
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// `true` when the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders the table with aligned columns.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.header.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.len());
            }
        }
        let mut out = String::new();
        let _ = writeln!(out, "\n== {} ==", self.title);
        let line = |cells: &[String], widths: &[usize]| -> String {
            let mut s = String::new();
            for (i, (cell, w)) in cells.iter().zip(widths).enumerate() {
                if i > 0 {
                    s.push_str("  ");
                }
                let _ = write!(s, "{cell:<w$}");
            }
            s
        };
        let _ = writeln!(out, "{}", line(&self.header, &widths));
        let total: usize = widths.iter().sum::<usize>() + 2 * (widths.len() - 1);
        let _ = writeln!(out, "{}", "-".repeat(total));
        for row in &self.rows {
            let _ = writeln!(out, "{}", line(row, &widths));
        }
        out
    }

    /// Renders as CSV (header + rows).
    pub fn to_csv(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "{}", self.header.join(","));
        for row in &self.rows {
            let _ = writeln!(out, "{}", row.join(","));
        }
        out
    }
}

/// Writes a table's CSV form to `dir/name`.
///
/// # Panics
/// Panics when the file cannot be written (experiments should fail loudly).
pub fn write_csv(table: &Table, dir: &Path, name: &str) {
    let path = dir.join(name);
    std::fs::write(&path, table.to_csv())
        .unwrap_or_else(|e| panic!("writing {}: {e}", path.display()));
    falcc_telemetry::progress(format!("wrote {}", path.display()));
}

/// Formats a fraction as a percentage with one decimal.
pub fn pct(v: f64) -> String {
    format!("{:.1}", v * 100.0)
}

/// Formats a float with four decimals.
pub fn f4(v: f64) -> String {
    format!("{v:.4}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_aligns_columns() {
        let mut t = Table::new("demo", &["name", "value"]);
        t.push(vec!["a".into(), "1".into()]);
        t.push(vec!["longer-name".into(), "2.5".into()]);
        let r = t.render();
        assert!(r.contains("== demo =="));
        assert!(r.contains("longer-name"));
        assert_eq!(t.len(), 2);
    }

    #[test]
    fn csv_is_parseable() {
        let mut t = Table::new("demo", &["a", "b"]);
        t.push(vec!["1".into(), "2".into()]);
        assert_eq!(t.to_csv(), "a,b\n1,2\n");
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn wrong_width_panics() {
        let mut t = Table::new("demo", &["a", "b"]);
        t.push(vec!["only-one".into()]);
    }

    #[test]
    fn formatting_helpers() {
        assert_eq!(pct(0.89), "89.0");
        assert_eq!(f4(0.123456), "0.1235");
    }

    #[test]
    fn write_csv_creates_file() {
        let dir = std::env::temp_dir().join("falcc_report_test");
        std::fs::create_dir_all(&dir).unwrap();
        let mut t = Table::new("demo", &["x"]);
        t.push(vec!["9".into()]);
        write_csv(&t, &dir, "t.csv");
        let content = std::fs::read_to_string(dir.join("t.csv")).unwrap();
        assert_eq!(content, "x\n9\n");
    }
}
