//! Telemetry overhead measurement: the cost of the observability layer on
//! the end-to-end FALCC pipeline, recording enabled vs. disabled.
//!
//! `exp_runtime` serialises the result to `BENCH_telemetry.json` so the
//! overhead numbers are committed alongside the kernel speedups. Two
//! complementary measurements:
//!
//! * **End-to-end**: median wall-clock of fit + classify with telemetry
//!   off and on (target: enabled < 3% over disabled). Predictions are
//!   asserted bit-identical in both states — observation never perturbs.
//! * **Disabled hot path**: nanoseconds per disabled counter update and
//!   per inert span guard. These are the per-operation costs paid at every
//!   instrumentation point when recording is off (target: low single-digit
//!   nanoseconds — one relaxed atomic load). Being micro-benchmarks they
//!   are stable enough to gate CI on, unlike the end-to-end percentage.

use crate::BenchDataset;
use falcc::{CheckpointSpec, FairClassifier, FalccConfig, FalccModel};
use falcc_dataset::{SplitRatios, ThreeWaySplit};
use falcc_metrics::LossConfig;
use serde::Serialize;
use std::path::Path;
use std::time::Instant;

/// The measurement envelope written to `BENCH_telemetry.json`.
#[derive(Debug, Serialize)]
pub struct TelemetryOverheadReport {
    /// Dataset scale the end-to-end runs used.
    pub scale: f64,
    /// Base RNG seed.
    pub seed: u64,
    /// Repetitions per state (median taken).
    pub reps: usize,
    /// Training rows of the end-to-end run.
    pub train_rows: usize,
    /// Median end-to-end wall-clock, telemetry disabled (ms).
    pub disabled_ms: f64,
    /// Median end-to-end wall-clock, telemetry enabled (ms).
    pub enabled_ms: f64,
    /// `(enabled - disabled) / disabled`, percent. Negative values mean
    /// noise dominated — the overhead is below measurement resolution.
    pub enabled_overhead_pct: f64,
    /// Disabled-path cost of one counter update (ns).
    pub disabled_counter_ns: f64,
    /// Disabled-path cost of one span open + drop (ns).
    pub disabled_span_ns: f64,
    /// Uninstalled-path cost of one live-monitor batch attempt (ns).
    pub disabled_monitor_ns: f64,
    /// Median end-to-end wall-clock with live monitors installed (ms);
    /// telemetry recording stays off so the delta isolates monitor cost.
    pub monitor_ms: f64,
    /// `(monitor - disabled) / disabled`, percent.
    pub monitor_overhead_pct: f64,
    /// Windows the monitored run retained at snapshot time.
    pub monitor_windows_recorded: usize,
    /// Whether predictions were bit-identical with monitors on and off.
    pub monitor_predictions_identical: bool,
    /// Spans recorded by one enabled end-to-end run.
    pub spans_recorded: usize,
    /// Whether predictions were bit-identical with telemetry on and off.
    pub predictions_identical: bool,
    /// Median end-to-end wall-clock with checkpoint journaling on (ms);
    /// telemetry stays off so the delta isolates the journal's atomic
    /// writes and manifest chaining.
    pub checkpoint_ms: f64,
    /// `(checkpoint - disabled) / disabled`, percent. Gated below
    /// [`CHECKPOINT_OVERHEAD_MAX_PCT`] at benchmark scale.
    pub checkpoint_overhead_pct: f64,
    /// Checkpoint commits one journaled run performed (manifest lines).
    pub checkpoint_commits: usize,
    /// Whether predictions were bit-identical with journaling on and off.
    pub checkpoint_predictions_identical: bool,
}

/// Bound on the end-to-end cost of checkpoint journaling at benchmark
/// scale (`--scale 0.10` and up): amortised over real pool training the
/// journal's atomic writes must stay under 3%.
pub const CHECKPOINT_OVERHEAD_MAX_PCT: f64 = 3.0;

/// CI bound for the disabled hot path, generous over the expected
/// single-digit cost so shared runners do not flake.
pub const DISABLED_PATH_MAX_NS: f64 = 50.0;

fn end_to_end_ms(
    dataset: BenchDataset,
    scale: f64,
    seed: u64,
    monitored: bool,
    checkpoint: Option<&Path>,
) -> (f64, Vec<u8>, usize) {
    let ds = dataset.generate(seed, scale);
    let split = ThreeWaySplit::split(&ds, SplitRatios::PAPER, seed).expect("split");
    let mut cfg = FalccConfig {
        loss: LossConfig::balanced(falcc_metrics::FairnessMetric::DemographicParity),
        seed,
        threads: 1,
        ..Default::default()
    };
    cfg.pool.seed = seed;
    // A fresh (non-resume) journal per rep: each run pays the full
    // record-write + manifest-chain cost, never a cached resume.
    cfg.checkpoint = checkpoint.map(CheckpointSpec::new);
    let start = Instant::now();
    let model = FalccModel::fit(&split.train, &split.validation, &cfg).expect("fit");
    let state = monitored.then(|| {
        falcc_telemetry::monitor::install(model.monitor_spec(
            falcc::baseline::DEFAULT_WINDOW_LEN,
            falcc::baseline::DEFAULT_WINDOWS,
        ))
    });
    let preds = model.predict_dataset(&split.test);
    let ms = start.elapsed().as_secs_f64() * 1_000.0;
    let windows = state.map_or(0, |state| {
        falcc_telemetry::monitor::uninstall();
        state.snapshot().windows.len()
    });
    (ms, preds, windows)
}

fn median(mut xs: Vec<f64>) -> f64 {
    xs.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
    xs[xs.len() / 2]
}

/// Per-operation cost of the disabled recording hot path, in nanoseconds:
/// `(counter_update, span_guard)`.
///
/// # Panics
/// Panics when called with telemetry enabled — the point is the disabled
/// path.
pub fn disabled_path_ns() -> (f64, f64) {
    assert!(!falcc_telemetry::enabled(), "disabled-path probe needs telemetry off");
    const N: u64 = 4_000_000;
    let start = Instant::now();
    for i in 0..N {
        falcc_telemetry::counters::ONLINE_SAMPLES.add(std::hint::black_box(i) & 1);
    }
    let counter_ns = start.elapsed().as_nanos() as f64 / N as f64;
    let start = Instant::now();
    for _ in 0..N {
        let _s = falcc_telemetry::span(std::hint::black_box("overhead.probe"));
    }
    let span_ns = start.elapsed().as_nanos() as f64 / N as f64;
    (counter_ns, span_ns)
}

/// Per-operation cost of the uninstalled live-monitor hot path, in
/// nanoseconds: one `monitor::batch` attempt — an acquire load of the
/// active pointer plus a null check.
///
/// # Panics
/// Panics when a monitor is installed — the point is the uninstalled
/// path.
pub fn disabled_monitor_ns() -> f64 {
    assert!(
        !falcc_telemetry::monitor::active(),
        "uninstalled-path probe needs monitors off"
    );
    const N: u64 = 4_000_000;
    let start = Instant::now();
    for i in 0..N {
        let rec = falcc_telemetry::monitor::batch(std::hint::black_box(i as usize) & 1);
        std::hint::black_box(rec.is_none());
    }
    start.elapsed().as_nanos() as f64 / N as f64
}

/// Measures enabled-vs-disabled overhead of the end-to-end pipeline on the
/// emulated Adult (sex) dataset. Leaves telemetry disabled and reset.
///
/// # Panics
/// Panics on fit failures (internal bugs only — the generated dataset
/// always has group coverage).
pub fn measure_overhead(scale: f64, seed: u64, reps: usize) -> TelemetryOverheadReport {
    let dataset = BenchDataset::AdultSex;
    let reps = reps.max(1);
    let train_rows = {
        let ds = dataset.generate(seed, scale);
        let split = ThreeWaySplit::split(&ds, SplitRatios::PAPER, seed).expect("split");
        split.train.len()
    };

    falcc_telemetry::disable();
    falcc_telemetry::reset();
    falcc_telemetry::monitor::uninstall();
    let (counter_ns, span_ns) = disabled_path_ns();
    let monitor_ns = disabled_monitor_ns();
    // Interleaving the two states would be fairer to slow CPU-frequency
    // drift, but a warm-up pass plus medians is enough at this scale.
    let (_warmup, preds_off, _) = end_to_end_ms(dataset, scale, seed, false, None);
    let disabled: Vec<f64> =
        (0..reps).map(|_| end_to_end_ms(dataset, scale, seed, false, None).0).collect();

    // Journaled runs: telemetry off, checkpointing on — the delta against
    // `disabled` is what crash consistency costs the offline phase.
    let ck_dir = std::env::temp_dir().join(format!("falcc_bench_ck_{seed}"));
    let mut preds_ck = Vec::new();
    let checkpointed: Vec<f64> = (0..reps)
        .map(|_| {
            let (ms, preds, _) = end_to_end_ms(dataset, scale, seed, false, Some(&ck_dir));
            preds_ck = preds;
            ms
        })
        .collect();
    let checkpoint_commits = std::fs::read_to_string(ck_dir.join(falcc::checkpoint::MANIFEST))
        .map(|m| m.lines().count())
        .unwrap_or(0);
    std::fs::remove_dir_all(&ck_dir).ok();

    // Monitored runs: telemetry recording stays off, only the live
    // monitors are installed — the delta against `disabled` isolates
    // what the windowed aggregation costs the serving path.
    let mut monitor_windows = 0;
    let mut preds_monitored = Vec::new();
    let monitored: Vec<f64> = (0..reps)
        .map(|_| {
            let (ms, preds, windows) = end_to_end_ms(dataset, scale, seed, true, None);
            monitor_windows = windows;
            preds_monitored = preds;
            ms
        })
        .collect();

    falcc_telemetry::enable();
    let mut spans_recorded = 0;
    let mut preds_on = Vec::new();
    let enabled: Vec<f64> = (0..reps)
        .map(|_| {
            falcc_telemetry::reset();
            let (ms, preds, _) = end_to_end_ms(dataset, scale, seed, false, None);
            spans_recorded = falcc_telemetry::snapshot().spans.len();
            preds_on = preds;
            ms
        })
        .collect();
    falcc_telemetry::disable();
    falcc_telemetry::reset();

    let disabled_ms = median(disabled);
    let enabled_ms = median(enabled);
    let monitor_ms = median(monitored);
    let checkpoint_ms = median(checkpointed);
    TelemetryOverheadReport {
        scale,
        seed,
        reps,
        train_rows,
        disabled_ms,
        enabled_ms,
        enabled_overhead_pct: (enabled_ms - disabled_ms) / disabled_ms * 100.0,
        disabled_counter_ns: counter_ns,
        disabled_span_ns: span_ns,
        disabled_monitor_ns: monitor_ns,
        monitor_ms,
        monitor_overhead_pct: (monitor_ms - disabled_ms) / disabled_ms * 100.0,
        monitor_windows_recorded: monitor_windows,
        monitor_predictions_identical: preds_off == preds_monitored,
        spans_recorded,
        predictions_identical: preds_off == preds_on,
        checkpoint_ms,
        checkpoint_overhead_pct: (checkpoint_ms - disabled_ms) / disabled_ms * 100.0,
        checkpoint_commits,
        checkpoint_predictions_identical: preds_off == preds_ck,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn overhead_report_is_sound() {
        let report = measure_overhead(0.02, 11, 1);
        assert!(report.disabled_ms > 0.0);
        assert!(report.enabled_ms > 0.0);
        assert!(report.spans_recorded > 0, "enabled run must record spans");
        assert!(report.predictions_identical, "telemetry changed predictions");
        assert!(
            report.monitor_predictions_identical,
            "live monitors changed predictions"
        );
        assert!(report.monitor_windows_recorded > 0, "monitored run must fill windows");
        assert!(report.monitor_ms > 0.0);
        assert!(report.checkpoint_ms > 0.0);
        assert!(report.checkpoint_commits > 0, "journaled run must commit checkpoints");
        assert!(
            report.checkpoint_predictions_identical,
            "checkpoint journaling changed predictions"
        );
        assert!(report.disabled_counter_ns < DISABLED_PATH_MAX_NS);
        assert!(report.disabled_span_ns < DISABLED_PATH_MAX_NS);
        assert!(report.disabled_monitor_ns < DISABLED_PATH_MAX_NS);
        // Telemetry left off and clean for other tests.
        assert!(!falcc_telemetry::enabled());
        assert!(falcc_telemetry::snapshot().spans.is_empty());
        assert!(!falcc_telemetry::monitor::active());
    }
}
