//! The algorithm registry: every competitor of the paper's evaluation
//! (§4.1.2), fitted behind the shared [`FairClassifier`] trait.

use falcc::{FairClassifier, FalccConfig, FalccModel};
use falcc_baselines::{
    Falces, FalcesConfig, FalcesVariant, FairBoost, FairBoostParams, FairSmote,
    FairSmoteParams, Fax, FaxParams, IFair, IFairParams, Lfr, LfrParams,
};
use falcc_dataset::ThreeWaySplit;
use falcc_metrics::{FairnessMetric, LossConfig};
use falcc_models::{Classifier, ModelPool, PoolConfig, TrainedModel};
use std::sync::Arc;
use std::time::Instant;

/// The algorithms compared in the paper. Starred (`…Fair`) variants receive
/// the fair-classifier pool (LFR + Fair-SMOTE + FaX) instead of their
/// default model inputs — the right half of Tab. 5.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Algo {
    /// FairBoost (individual fairness boosting).
    FairBoost,
    /// Learning Fair Representations.
    Lfr,
    /// iFair.
    IFair,
    /// FaX marginal interventional mixture.
    Fax,
    /// Fair-SMOTE.
    FairSmote,
    /// Decoupled classifiers over the standard pool.
    Decouple,
    /// FALCES family over the standard pool (all four variants fitted; the
    /// harness reports the BEST by local bias, as the paper does).
    FalcesBest,
    /// FALCC over its diverse pool.
    Falcc,
    /// Decouple* — fair pool.
    DecoupleFair,
    /// FALCES-BEST* — fair pool.
    FalcesBestFair,
    /// FALCC* — fair pool.
    FalccFair,
}

impl Algo {
    /// The eight off-the-shelf algorithms (left half of Tab. 5 / Fig. 3).
    pub const DEFAULT_SET: [Self; 8] = [
        Self::FairBoost,
        Self::Lfr,
        Self::IFair,
        Self::Fax,
        Self::FairSmote,
        Self::Decouple,
        Self::FalcesBest,
        Self::Falcc,
    ];

    /// The starred fair-pool variants (right half of Tab. 5).
    pub const FAIR_SET: [Self; 3] = [Self::DecoupleFair, Self::FalcesBestFair, Self::FalccFair];

    /// Name as used in the paper's tables.
    pub fn name(self) -> &'static str {
        match self {
            Self::FairBoost => "FairBoost",
            Self::Lfr => "LFR",
            Self::IFair => "iFair",
            Self::Fax => "FaX",
            Self::FairSmote => "Fair-SMOTE",
            Self::Decouple => "Decouple",
            Self::FalcesBest => "FALCES-BEST",
            Self::Falcc => "FALCC",
            Self::DecoupleFair => "Decouple*",
            Self::FalcesBestFair => "FALCES-BEST*",
            Self::FalccFair => "FALCC*",
        }
    }
}

/// Adapter: expose a fitted [`FairClassifier`] as a pool member for the
/// ensemble-based algorithms (the `*` configurations).
struct FairAsModel<T: FairClassifier> {
    inner: T,
    name: String,
}

impl<T: FairClassifier> Classifier for FairAsModel<T> {
    fn predict_proba_row(&self, row: &[f64]) -> f64 {
        self.inner.predict_row(row) as f64
    }

    fn name(&self) -> &str {
        &self.name
    }
}

/// The model pools shared by the ensemble algorithms for one split. Built
/// once per (dataset, run) — pools do not depend on the fairness metric.
pub struct PoolSet {
    /// FALCC's diversity-selected grid pool.
    pub diverse: ModelPool,
    /// The "5 standard classifiers" pool for Decouple / FALCES.
    pub standard: ModelPool,
    /// The fair-classifier pool (LFR, Fair-SMOTE, FaX) for the `*`
    /// configurations; built lazily because it trains three extra models.
    pub fair: ModelPool,
}

impl PoolSet {
    /// Trains all three pools on the split.
    pub fn build(split: &ThreeWaySplit, seed: u64) -> Self {
        let diverse = ModelPool::train_diverse(
            &split.train,
            &split.validation,
            &PoolConfig { pool_size: 5, seed, ..Default::default() },
        );
        let standard = ModelPool::standard_five(&split.train, seed);
        let fair = Self::fair_pool(split, seed);
        Self { diverse, standard, fair }
    }

    /// The fair-classifier pool used by the `*` configurations.
    pub fn fair_pool(split: &ThreeWaySplit, seed: u64) -> ModelPool {
        let lfr = Lfr::fit(&split.train, &LfrParams::default(), seed);
        let smote = FairSmote::fit(&split.train, &FairSmoteParams::default(), seed);
        let fax = Fax::fit(&split.train, &FaxParams::default(), seed);
        ModelPool::from_models(vec![
            TrainedModel {
                model: Arc::new(FairAsModel { inner: lfr, name: "LFR-pool".into() }),
                group: None,
            },
            TrainedModel {
                model: Arc::new(FairAsModel { inner: smote, name: "Fair-SMOTE-pool".into() }),
                group: None,
            },
            TrainedModel {
                model: Arc::new(FairAsModel { inner: fax, name: "FaX-pool".into() }),
                group: None,
            },
        ])
    }
}

/// One fitted algorithm ready for evaluation.
pub struct FittedAlgo {
    /// Reported name (may carry a variant suffix, e.g. `FALCES-PFA`).
    pub name: String,
    /// The classifier.
    pub model: Box<dyn FairClassifier>,
    /// Wall-clock fit time in seconds (offline phase).
    pub fit_seconds: f64,
}

/// Fits `algo` on the split. Most algorithms yield exactly one model;
/// `FalcesBest`/`FalcesBestFair` yield all four family variants — the
/// evaluator picks the least-local-bias one, as the paper reports.
///
/// # Panics
/// Panics if an ensemble algorithm cannot cover every group (cannot happen
/// for the bundled datasets, whose validation splits contain all groups).
pub fn fit_algorithm(
    algo: Algo,
    split: &ThreeWaySplit,
    pools: &PoolSet,
    metric: FairnessMetric,
    seed: u64,
) -> Vec<FittedAlgo> {
    let loss = LossConfig::balanced(metric);
    let start = Instant::now();
    let finish = |model: Box<dyn FairClassifier>, name: String, start: Instant| FittedAlgo {
        name,
        model,
        fit_seconds: start.elapsed().as_secs_f64(),
    };

    match algo {
        Algo::FairBoost => {
            let m = FairBoost::fit(&split.train, &FairBoostParams::default(), seed);
            vec![finish(Box::new(m), "FairBoost".into(), start)]
        }
        Algo::Lfr => {
            let m = Lfr::fit(&split.train, &LfrParams::default(), seed);
            vec![finish(Box::new(m), "LFR".into(), start)]
        }
        Algo::IFair => {
            let m = IFair::fit(&split.train, &IFairParams::default(), seed);
            vec![finish(Box::new(m), "iFair".into(), start)]
        }
        Algo::Fax => {
            let m = Fax::fit(&split.train, &FaxParams::default(), seed);
            vec![finish(Box::new(m), "FaX".into(), start)]
        }
        Algo::FairSmote => {
            let m = FairSmote::fit(&split.train, &FairSmoteParams::default(), seed);
            vec![finish(Box::new(m), "Fair-SMOTE".into(), start)]
        }
        Algo::Decouple | Algo::DecoupleFair => {
            let pool =
                if algo == Algo::Decouple { &pools.standard } else { &pools.fair };
            let mut m = falcc_baselines::Decouple::fit(pool.clone(), &split.validation, loss)
                .expect("group coverage");
            m.set_name(algo.name());
            vec![finish(Box::new(m), algo.name().into(), start)]
        }
        Algo::FalcesBest | Algo::FalcesBestFair => {
            let pool =
                if algo == Algo::FalcesBest { &pools.standard } else { &pools.fair };
            FalcesVariant::ALL
                .iter()
                .map(|&variant| {
                    let start = Instant::now();
                    let cfg = FalcesConfig { variant, loss, ..Default::default() };
                    let mut m = Falces::fit(pool.clone(), &split.validation, &cfg)
                        .expect("group coverage");
                    let suffix = if algo == Algo::FalcesBestFair { "*" } else { "" };
                    let name = format!("{}{suffix}", variant.name());
                    m.set_name(name.clone());
                    finish(Box::new(m), name, start)
                })
                .collect()
        }
        Algo::Falcc | Algo::FalccFair => {
            let mut cfg = FalccConfig { loss, seed, ..Default::default() };
            cfg.pool.seed = seed;
            let mut m = if algo == Algo::Falcc {
                FalccModel::fit(&split.train, &split.validation, &cfg)
                    .expect("group coverage")
            } else {
                FalccModel::fit_with_pool(&split.validation, pools.fair.clone(), &cfg)
                    .expect("group coverage")
            };
            m.set_name(algo.name());
            vec![finish(Box::new(m), algo.name().into(), start)]
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::data::BenchDataset;
    use falcc_dataset::SplitRatios;

    fn quick_split() -> ThreeWaySplit {
        let ds = BenchDataset::Compas.generate(1, 0.1);
        ThreeWaySplit::split(&ds, SplitRatios::PAPER, 1).unwrap()
    }

    #[test]
    fn every_default_algorithm_fits_and_predicts() {
        let split = quick_split();
        let pools = PoolSet::build(&split, 1);
        for algo in Algo::DEFAULT_SET {
            let fitted =
                fit_algorithm(algo, &split, &pools, FairnessMetric::DemographicParity, 1);
            assert!(!fitted.is_empty(), "{}", algo.name());
            for f in &fitted {
                let preds = f.model.predict_dataset(&split.test);
                assert_eq!(preds.len(), split.test.len(), "{}", f.name);
                assert!(f.fit_seconds >= 0.0);
            }
        }
    }

    #[test]
    fn falces_best_yields_four_variants() {
        let split = quick_split();
        let pools = PoolSet::build(&split, 2);
        let fitted = fit_algorithm(
            Algo::FalcesBest,
            &split,
            &pools,
            FairnessMetric::DemographicParity,
            2,
        );
        assert_eq!(fitted.len(), 4);
        let names: std::collections::HashSet<&str> =
            fitted.iter().map(|f| f.name.as_str()).collect();
        assert_eq!(names.len(), 4);
    }

    #[test]
    fn fair_pool_variants_fit() {
        let split = quick_split();
        let pools = PoolSet::build(&split, 3);
        for algo in Algo::FAIR_SET {
            let fitted =
                fit_algorithm(algo, &split, &pools, FairnessMetric::DemographicParity, 3);
            for f in &fitted {
                let preds = f.model.predict_dataset(&split.test);
                assert_eq!(preds.len(), split.test.len(), "{}", f.name);
            }
        }
    }
}
