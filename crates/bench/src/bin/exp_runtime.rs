//! E-F6 — regenerates the paper's **Fig. 6**: online-phase runtime of
//! FALCC vs FALCES-FASTEST vs OTHER-FASTEST across datasets, including the
//! Adult dataset with 2 and 4 sensitive groups (FALCES scales poorly in
//! the group count; FALCC does not).
//!
//! "FASTEST" follows the paper: among the FALCES family the variant with
//! the lowest per-sample latency (in practice a PFA variant), and among
//! the remaining algorithms the fastest one (which is rarely the most
//! accurate — the point is the envelope).

use falcc_bench::algos::{fit_algorithm, Algo, PoolSet};
use falcc_bench::report::write_csv;
use falcc_bench::{BenchDataset, Opts, Table};
use falcc_dataset::{Dataset, SplitRatios, ThreeWaySplit};
use falcc::FairClassifier;
use std::time::Instant;

/// Median-of-runs per-sample latency of one model's online phase, in
/// microseconds.
fn online_micros(model: &dyn FairClassifier, test: &Dataset, reps: usize) -> f64 {
    let mut times: Vec<f64> = (0..reps.max(1))
        .map(|_| {
            let start = Instant::now();
            let preds = model.predict_dataset(test);
            let elapsed = start.elapsed().as_nanos() as f64;
            assert_eq!(preds.len(), test.len());
            elapsed / test.len() as f64 / 1_000.0
        })
        .collect();
    times.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
    times[times.len() / 2]
}

fn main() {
    let opts = Opts::from_args();
    let out = opts.ensure_out_dir().to_path_buf();
    let metric = falcc_metrics::FairnessMetric::DemographicParity;
    let datasets = [
        BenchDataset::Compas,
        BenchDataset::CreditCard,
        BenchDataset::AdultSex,     // "Adult Data (2)" in the paper
        BenchDataset::AdultSexRace, // "Adult Data (4)"
        BenchDataset::Implicit30,
    ];

    let mut table = Table::new(
        "Fig. 6 — online-phase runtime, microseconds per sample (median of reps)",
        &["dataset", "groups", "FALCC", "FALCES-FASTEST", "(variant)", "OTHER-FASTEST", "(algo)"],
    );

    for dataset in datasets {
        let seed = opts.seed;
        let ds = dataset.generate(seed, opts.scale);
        let split = ThreeWaySplit::split(&ds, SplitRatios::PAPER, seed).expect("split");
        let n_groups = split.test.group_index().len();
        let pools = PoolSet::build(&split, seed);

        // FALCC.
        let falcc = fit_algorithm(Algo::Falcc, &split, &pools, metric, seed)
            .remove(0);
        let falcc_us = online_micros(falcc.model.as_ref(), &split.test, 3);

        // FALCES family → fastest variant.
        let falces = fit_algorithm(Algo::FalcesBest, &split, &pools, metric, seed);
        let (falces_us, falces_name) = falces
            .iter()
            .map(|f| (online_micros(f.model.as_ref(), &split.test, 3), f.name.clone()))
            .min_by(|a, b| a.0.partial_cmp(&b.0).expect("finite"))
            .expect("four variants");

        // Other algorithms → fastest.
        let mut other: Option<(f64, String)> = None;
        for algo in [Algo::FairBoost, Algo::Lfr, Algo::IFair, Algo::Fax, Algo::FairSmote, Algo::Decouple] {
            for f in fit_algorithm(algo, &split, &pools, metric, seed) {
                let us = online_micros(f.model.as_ref(), &split.test, 3);
                if other.as_ref().is_none_or(|(best, _)| us < *best) {
                    other = Some((us, f.name.clone()));
                }
            }
        }
        let (other_us, other_name) = other.expect("at least one other algorithm");

        table.push(vec![
            dataset.name().into(),
            n_groups.to_string(),
            format!("{falcc_us:.2}"),
            format!("{falces_us:.2}"),
            falces_name,
            format!("{other_us:.2}"),
            other_name,
        ]);
        eprintln!("[exp_runtime] finished dataset {}", dataset.name());
    }

    print!("{}", table.render());
    write_csv(&table, &out, "fig6_runtime.csv");
}
