//! E-F6 — regenerates the paper's **Fig. 6**: online-phase runtime of
//! FALCC vs FALCES-FASTEST vs OTHER-FASTEST across datasets, including the
//! Adult dataset with 2 and 4 sensitive groups (FALCES scales poorly in
//! the group count; FALCC does not).
//!
//! "FASTEST" follows the paper: among the FALCES family the variant with
//! the lowest per-sample latency (in practice a PFA variant), and among
//! the remaining algorithms the fastest one (which is rarely the most
//! accurate — the point is the envelope).

use falcc_bench::algos::{fit_algorithm, Algo, PoolSet};
use falcc_bench::report::write_csv;
use falcc_bench::{BenchDataset, Opts, Table};
use falcc_dataset::{Dataset, SplitRatios, ThreeWaySplit};
use falcc::{FairClassifier, FalccConfig, FalccModel};
use falcc_metrics::LossConfig;
use std::time::Instant;

/// Median-of-runs per-sample latency of one model's online phase, in
/// microseconds.
fn online_micros(model: &dyn FairClassifier, test: &Dataset, reps: usize) -> f64 {
    let mut times: Vec<f64> = (0..reps.max(1))
        .map(|_| {
            let start = Instant::now();
            let preds = model.predict_dataset(test);
            let elapsed = start.elapsed().as_nanos() as f64;
            assert_eq!(preds.len(), test.len());
            elapsed / test.len() as f64 / 1_000.0
        })
        .collect();
    times.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
    times[times.len() / 2]
}

/// Median-of-runs per-sample latency of a *batched* online phase
/// (`classify_batch` of either serving plane), in microseconds — the
/// caller passes the entry point so the interpreted and compiled planes
/// are measured through the identical harness.
fn batched_micros(
    rows: &[Vec<f64>],
    reps: usize,
    mut run: impl FnMut(&[Vec<f64>]) -> Vec<Result<u8, falcc::RowFault>>,
) -> f64 {
    let mut times: Vec<f64> = (0..reps.max(1))
        .map(|_| {
            let start = Instant::now();
            let preds = run(rows);
            let elapsed = start.elapsed().as_nanos() as f64;
            assert_eq!(preds.len(), rows.len());
            assert!(preds.iter().all(Result::is_ok));
            elapsed / rows.len() as f64 / 1_000.0
        })
        .collect();
    times.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
    times[times.len() / 2]
}

/// The FALCC configuration `fit_algorithm` uses, with an explicit thread
/// count — for the offline-phase scaling measurement.
fn falcc_config(metric: falcc_metrics::FairnessMetric, seed: u64, threads: usize) -> FalccConfig {
    let mut cfg = FalccConfig {
        loss: LossConfig::balanced(metric),
        seed,
        threads,
        ..Default::default()
    };
    cfg.pool.seed = seed;
    cfg
}

fn main() {
    let opts = Opts::from_args();
    let out = opts.ensure_out_dir().to_path_buf();
    let metric = falcc_metrics::FairnessMetric::DemographicParity;
    let datasets = [
        BenchDataset::Compas,
        BenchDataset::CreditCard,
        BenchDataset::AdultSex,     // "Adult Data (2)" in the paper
        BenchDataset::AdultSexRace, // "Adult Data (4)"
        BenchDataset::Implicit30,
    ];

    let mut table = Table::new(
        "Fig. 6 — online-phase runtime, microseconds per sample (median of reps)",
        &["dataset", "groups", "FALCC", "FALCC-batch", "interp rows/s", "compiled rows/s", "FALCES-FASTEST", "(variant)", "OTHER-FASTEST", "(algo)"],
    );
    let mut offline_table = Table::new(
        "Offline-phase fit wall-clock (seconds) vs worker threads — identical models",
        &["dataset", "threads=1", "threads=4", "speedup"],
    );

    for dataset in datasets {
        let seed = opts.seed;
        let ds = dataset.generate(seed, opts.scale);
        let split = ThreeWaySplit::split(&ds, SplitRatios::PAPER, seed).expect("split");
        let n_groups = split.test.group_index().len();
        let pools = PoolSet::build(&split, seed);

        // FALCC: fit once per thread count — wall-clock scaling for the
        // offline table, and a determinism spot-check (the parallel layer
        // guarantees bit-identical models for every thread count).
        let start = Instant::now();
        let falcc_seq =
            FalccModel::fit(&split.train, &split.validation, &falcc_config(metric, seed, 1))
                .expect("group coverage");
        let fit_1t = start.elapsed().as_secs_f64();
        let start = Instant::now();
        let mut falcc =
            FalccModel::fit(&split.train, &split.validation, &falcc_config(metric, seed, 4))
                .expect("group coverage");
        let fit_4t = start.elapsed().as_secs_f64();
        assert_eq!(
            falcc_seq.predict_dataset(&split.test),
            falcc.predict_dataset(&split.test),
            "thread count changed the fitted model"
        );
        offline_table.push(vec![
            dataset.name().into(),
            format!("{fit_1t:.3}"),
            format!("{fit_4t:.3}"),
            format!("{:.2}x", fit_1t / fit_4t),
        ]);

        // Per-sample latency (Fig. 6 proper) stays sequential so the
        // comparison with the single-threaded baselines is apples to
        // apples; the batch column shows the deployed throughput.
        falcc.set_threads(1);
        let falcc_us = online_micros(&falcc, &split.test, 3);
        let rows: Vec<Vec<f64>> =
            (0..split.test.len()).map(|i| split.test.row(i).to_vec()).collect();
        falcc.set_threads(0);
        let falcc_batch_us = batched_micros(&rows, 3, |r| falcc.classify_batch(r));

        // Interpreted vs compiled batch throughput (rows per second) —
        // the same entry point through both serving planes.
        let compiled = falcc.compile();
        let compiled_batch_us = batched_micros(&rows, 3, |r| compiled.classify_batch(r));
        let interp_rows_s = 1_000_000.0 / falcc_batch_us.max(1e-9);
        let compiled_rows_s = 1_000_000.0 / compiled_batch_us.max(1e-9);
        drop(compiled);

        // FALCES family → fastest variant.
        let falces = fit_algorithm(Algo::FalcesBest, &split, &pools, metric, seed);
        let (falces_us, falces_name) = falces
            .iter()
            .map(|f| (online_micros(f.model.as_ref(), &split.test, 3), f.name.clone()))
            .min_by(|a, b| a.0.partial_cmp(&b.0).expect("finite"))
            .expect("four variants");

        // Other algorithms → fastest.
        let mut other: Option<(f64, String)> = None;
        for algo in [Algo::FairBoost, Algo::Lfr, Algo::IFair, Algo::Fax, Algo::FairSmote, Algo::Decouple] {
            for f in fit_algorithm(algo, &split, &pools, metric, seed) {
                let us = online_micros(f.model.as_ref(), &split.test, 3);
                if other.as_ref().is_none_or(|(best, _)| us < *best) {
                    other = Some((us, f.name.clone()));
                }
            }
        }
        let (other_us, other_name) = other.expect("at least one other algorithm");

        table.push(vec![
            dataset.name().into(),
            n_groups.to_string(),
            format!("{falcc_us:.2}"),
            format!("{falcc_batch_us:.2}"),
            format!("{interp_rows_s:.0}"),
            format!("{compiled_rows_s:.0}"),
            format!("{falces_us:.2}"),
            falces_name,
            format!("{other_us:.2}"),
            other_name,
        ]);
        falcc_telemetry::progress(format!(
            "[exp_runtime] finished dataset {}",
            dataset.name()
        ));
    }

    print!("{}", table.render());
    print!("{}", offline_table.render());
    write_csv(&table, &out, "fig6_runtime.csv");
    write_csv(&offline_table, &out, "offline_scaling.csv");

    // Kernel-level speedups next to the Fig. 6 table: naive reference vs
    // the fast kernels the numbers above are built on (see `exp_kernels`
    // for the JSON artifact).
    let report = falcc_bench::bench_kernels(opts.scale, opts.seed, 1);
    let mut kernel_table = Table::new(
        "Numeric kernels — naive vs fast (single rep, Adult (2) scale)",
        &["kernel", "naive_ms", "fast_ms", "speedup", "equivalent"],
    );
    for k in &report.kernels {
        kernel_table.push(vec![
            k.kernel.clone(),
            format!("{:.2}", k.naive_ms),
            format!("{:.2}", k.fast_ms),
            format!("{:.2}x", k.speedup),
            k.equivalent.to_string(),
        ]);
    }
    print!("{}", kernel_table.render());
    write_csv(&kernel_table, &out, "kernel_speedups.csv");

    // Serving cold start next to the runtime numbers: the JSON
    // restore+compile path a replica pays today vs the persisted binary
    // artifact (see `exp_artifacts` for the JSON report and the gates).
    let art = falcc_bench::bench_artifacts(opts.scale, opts.seed, if opts.smoke { 1 } else { 3 });
    let mut art_table = Table::new(
        "Serving cold start — JSON restore+compile vs binary artifact, Adult (sex)",
        &["path", "ms", "speedup", "equivalent"],
    );
    art_table.push(vec![
        "json restore+compile".into(),
        format!("{:.2}", art.json_cold_ms),
        "baseline".into(),
        "-".into(),
    ]);
    art_table.push(vec![
        "binary artifact load".into(),
        format!("{:.2}", art.artifact_cold_ms),
        format!("{:.1}x", art.cold_start_speedup),
        art.equivalent.to_string(),
    ]);
    print!("{}", art_table.render());
    write_csv(&art_table, &out, "cold_start.csv");

    // Any --profile/--trace-out output covers the comparison above; the
    // sections below manage telemetry state themselves.
    opts.finish_telemetry();
    phase_breakdown(&opts, &out);
    overhead_report(&opts);
}

/// Per-phase wall-clock of one FALCC fit + batch classification, from the
/// telemetry span tree — the paper's Fig. 6 split into pipeline stages.
fn phase_breakdown(opts: &Opts, out: &std::path::Path) {
    let was_enabled = falcc_telemetry::enabled();
    falcc_telemetry::enable();
    falcc_telemetry::reset();

    let seed = opts.seed;
    let ds = BenchDataset::AdultSex.generate(seed, opts.scale);
    let split = ThreeWaySplit::split(&ds, SplitRatios::PAPER, seed).expect("split");
    let metric = falcc_metrics::FairnessMetric::DemographicParity;
    let model =
        FalccModel::fit(&split.train, &split.validation, &falcc_config(metric, seed, 1))
            .expect("group coverage");
    let preds = model.predict_dataset(&split.test);
    assert_eq!(preds.len(), split.test.len());

    let snap = falcc_telemetry::snapshot();
    let total = snap.total_ns("offline.fit");
    let phases = [
        ("offline.proxy", "proxy analysis"),
        ("offline.projection", "projection"),
        ("offline.k_estimation", "k estimation"),
        ("offline.clustering", "clustering"),
        ("offline.pool_training", "pool training"),
        ("offline.gap_fill", "gap fill"),
        ("offline.pool_predictions", "pool predictions"),
        ("offline.assessment", "assessment"),
        ("online.classify_batch", "online (batch)"),
    ];
    let mut table = Table::new(
        "Per-phase wall-clock — one FALCC fit + test classification, Adult (sex)",
        &["phase", "span", "time", "% of offline"],
    );
    for (span_name, label) in phases {
        let ns = snap.total_ns(span_name);
        let pct = if total > 0 && span_name.starts_with("offline.") {
            format!("{:.1}", ns as f64 / total as f64 * 100.0)
        } else {
            "-".into()
        };
        table.push(vec![
            label.into(),
            span_name.into(),
            falcc_telemetry::sink::fmt_ns(ns),
            pct,
        ]);
    }
    print!("{}", table.render());
    write_csv(&table, out, "phase_breakdown.csv");

    if !was_enabled {
        falcc_telemetry::disable();
    }
    falcc_telemetry::reset();
}

/// Measures telemetry overhead (enabled vs disabled) and writes
/// `BENCH_telemetry.json` at the repo root. In `--smoke` mode the
/// disabled-path cost gates CI.
fn overhead_report(opts: &Opts) {
    let was_enabled = falcc_telemetry::enabled();
    falcc_telemetry::disable();
    let (scale, reps) = if opts.smoke { (0.02, 1) } else { (opts.scale, 3) };
    let report = falcc_bench::measure_overhead(scale, opts.seed, reps);

    let mut table = Table::new(
        "Telemetry overhead — end-to-end fit + classify, Adult (sex)",
        &["state", "median_ms", "overhead"],
    );
    table.push(vec!["disabled".into(), format!("{:.1}", report.disabled_ms), "baseline".into()]);
    table.push(vec![
        "enabled".into(),
        format!("{:.1}", report.enabled_ms),
        format!("{:+.2}%", report.enabled_overhead_pct),
    ]);
    table.push(vec![
        "monitored".into(),
        format!("{:.1}", report.monitor_ms),
        format!("{:+.2}%", report.monitor_overhead_pct),
    ]);
    table.push(vec![
        "checkpointed".into(),
        format!("{:.1}", report.checkpoint_ms),
        format!("{:+.2}%", report.checkpoint_overhead_pct),
    ]);
    print!("{}", table.render());
    println!(
        "disabled hot path: {:.1} ns/counter update, {:.1} ns/span guard, \
         {:.1} ns/uninstalled monitor probe \
         ({} spans recorded when enabled; predictions identical: {})",
        report.disabled_counter_ns,
        report.disabled_span_ns,
        report.disabled_monitor_ns,
        report.spans_recorded,
        report.predictions_identical,
    );
    println!(
        "live monitors: {} window(s) retained; predictions identical with \
         monitors installed: {}",
        report.monitor_windows_recorded, report.monitor_predictions_identical,
    );
    println!(
        "checkpoint journaling: {} commit(s) per run, {:+.2}% end-to-end; \
         predictions identical with journaling on: {}",
        report.checkpoint_commits,
        report.checkpoint_overhead_pct,
        report.checkpoint_predictions_identical,
    );

    let json = serde_json::to_string(&report).expect("serialise report");
    std::fs::write("BENCH_telemetry.json", json).expect("write BENCH_telemetry.json");
    falcc_telemetry::progress("wrote BENCH_telemetry.json");

    assert!(report.predictions_identical, "telemetry perturbed predictions");
    assert!(report.monitor_predictions_identical, "live monitors perturbed predictions");
    assert!(
        report.checkpoint_predictions_identical,
        "checkpoint journaling perturbed predictions"
    );
    // The checkpoint-overhead bound only means something once pool
    // training dominates: gate it at benchmark scale, where the journal's
    // ~20 atomic writes amortise over real fitting work. Smoke scale
    // (0.02) records the number without gating — there the fixed fsync
    // cost dwarfs the tiny fit and the percentage is pure noise.
    if !opts.smoke && scale >= 0.10 {
        let bound = falcc_bench::overhead::CHECKPOINT_OVERHEAD_MAX_PCT;
        if report.checkpoint_overhead_pct >= bound {
            eprintln!(
                "checkpoint journaling cost {:+.2}% end-to-end at scale {scale} \
                 (bound {bound}%)",
                report.checkpoint_overhead_pct
            );
            std::process::exit(1);
        }
    }
    if opts.smoke {
        // The end-to-end percentage is too noisy to gate CI at smoke
        // scale; the disabled-path cost is the stable regression signal.
        let bound = falcc_bench::overhead::DISABLED_PATH_MAX_NS;
        if report.disabled_counter_ns > bound
            || report.disabled_span_ns > bound
            || report.disabled_monitor_ns > bound
        {
            eprintln!(
                "disabled-path overhead regressed: counter {:.1} ns, span {:.1} ns, \
                 monitor probe {:.1} ns (bound {bound} ns)",
                report.disabled_counter_ns, report.disabled_span_ns, report.disabled_monitor_ns
            );
            std::process::exit(1);
        }
    }
    if was_enabled {
        falcc_telemetry::enable();
    }
}
