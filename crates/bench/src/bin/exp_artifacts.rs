//! Cold-start benchmark: JSON restore+compile vs the v3 binary serving
//! artifact, with the JSON path broken down by stage. Writes
//! `BENCH_artifacts.json` at the repo root.
//!
//! `--smoke` shrinks the data and repetition count for CI; a bit-identity
//! divergence between the artifact-loaded plane and the JSON path exits
//! non-zero in every mode. At benchmark scale (no `--smoke`, scale ≥
//! 0.10) the cold-start speedup additionally gates against
//! [`falcc_bench::artifacts::COLD_START_MIN_SPEEDUP`].

use falcc_bench::artifacts::COLD_START_MIN_SPEEDUP;
use falcc_bench::{bench_artifacts, Opts};

fn main() {
    let opts = Opts::from_args();
    // The minimum over repeated cold starts is the figure of merit; more
    // repetitions pin the floor on shared boxes.
    let (scale, reps) = if opts.smoke { (0.02, 1) } else { (opts.scale, 15) };

    falcc_telemetry::progress(format!(
        "benchmarking cold starts at scale {scale} (reps {reps}, seed {})",
        opts.seed
    ));
    let report = bench_artifacts(scale, opts.seed, reps);

    println!(
        "cold start              ms\n\
         json read+parse    {:>7.2}\n\
         restore            {:>7.2}\n\
         compile            {:>7.2}\n\
         json total         {:>7.2}\n\
         artifact validate  {:>7.2}\n\
         artifact total     {:>7.2}\n\
         speedup            {:>6.1}x",
        report.json_parse_ms,
        report.restore_ms,
        report.compile_ms,
        report.json_cold_ms,
        report.artifact_validate_ms,
        report.artifact_cold_ms,
        report.cold_start_speedup,
    );
    println!(
        "snapshot {} KiB json / {} KiB artifact; {} pool members, {} regions, \
         {} flat nodes; equivalent: {}",
        report.json_bytes / 1024,
        report.artifact_bytes / 1024,
        report.pool_models,
        report.n_regions,
        report.flat_nodes,
        report.equivalent,
    );

    let json = serde_json::to_string(&report).expect("serialise report");
    let out = "BENCH_artifacts.json";
    std::fs::write(out, json).expect("write BENCH_artifacts.json");
    falcc_telemetry::progress(format!("wrote {out} ({} test rows)", report.test_rows));
    opts.finish_telemetry();

    if !report.equivalent {
        falcc_telemetry::progress(
            "artifact-loaded plane diverged from the JSON restore+compile path",
        );
        std::process::exit(1);
    }
    if !opts.smoke && scale >= 0.10 && report.cold_start_speedup < COLD_START_MIN_SPEEDUP {
        eprintln!(
            "artifact cold start only {:.1}x faster than JSON restore+compile at \
             scale {scale} (bound {COLD_START_MIN_SPEEDUP}x)",
            report.cold_start_speedup
        );
        std::process::exit(1);
    }
}
