//! E-T5 — regenerates the paper's **Tab. 5**: for every algorithm, in what
//! percentage of experiment configurations it (a) belongs to the
//! Pareto-optimal set and (b) ranks in the L̂ top-3, separately per bias
//! dimension (global / local / individual) and across all dimensions.
//!
//! A *configuration* is one (dataset, fairness metric) pair: 9 datasets ×
//! 3 metrics = 27, matching the paper (its percentages are multiples of
//! 1/27 ≈ 3.7). Results are averaged over `--runs` splits before the
//! Pareto/top-3 membership is decided. The left block scores the eight
//! off-the-shelf algorithms among themselves; the right block adds the
//! fair-pool variants (Decouple*, FALCES-BEST*, FALCC*), as the paper's
//! grey columns do.
//!
//! Cost control: pre-/in-processing algorithms whose fit does not depend
//! on the assessment metric (FairBoost, LFR, iFair, FaX, Fair-SMOTE) are
//! fitted once per split and re-evaluated per metric; the ensemble
//! selectors are refitted per metric because their L̂ changes.

use falcc_bench::algos::{fit_algorithm, Algo, PoolSet};
use falcc_bench::eval::{evaluate, evaluate_algo};
use falcc_bench::report::{pct, write_csv};
use falcc_bench::{reference_regions, BenchDataset, Opts, Table};
use falcc_dataset::{SplitRatios, ThreeWaySplit};
use falcc_metrics::{in_top_k, pareto_front, FairnessMetric, QualityPoint};
use std::collections::BTreeMap;

const METRICS: [FairnessMetric; 3] = [
    FairnessMetric::DemographicParity,
    FairnessMetric::EqualizedOdds,
    FairnessMetric::TreatmentEquality,
];

const METRIC_FREE: [Algo; 5] =
    [Algo::FairBoost, Algo::Lfr, Algo::IFair, Algo::Fax, Algo::FairSmote];
const METRIC_BOUND: [Algo; 6] = [
    Algo::Decouple,
    Algo::FalcesBest,
    Algo::Falcc,
    Algo::DecoupleFair,
    Algo::FalcesBestFair,
    Algo::FalccFair,
];

/// Per-algorithm tally of Pareto / top-3 membership per dimension plus the
/// union/average "All dims" columns.
#[derive(Default, Clone)]
struct Tally {
    pareto: [usize; 3],
    top3: [usize; 3],
    pareto_all: usize,
    top3_all: usize,
}

fn tally_configuration(
    entries: &[(String, [f64; 4])],
    tallies: &mut BTreeMap<String, Tally>,
) {
    let mut on_pareto_any: BTreeMap<String, bool> = BTreeMap::new();
    for dim in 0..3 {
        let points: Vec<QualityPoint> = entries
            .iter()
            .map(|(name, v)| QualityPoint {
                name: name.clone(),
                accuracy: v[0],
                bias: v[dim + 1],
            })
            .collect();
        let front: std::collections::HashSet<usize> =
            pareto_front(&points).into_iter().collect();
        for (i, p) in points.iter().enumerate() {
            let t = tallies.entry(p.name.clone()).or_default();
            if front.contains(&i) {
                t.pareto[dim] += 1;
                *on_pareto_any.entry(p.name.clone()).or_default() = true;
            }
            if in_top_k(&points, i, 3, 0.5) {
                t.top3[dim] += 1;
            }
        }
    }
    // "All dims": Pareto = union over dimensions (the paper's FALCC reaches
    // 100% there while no single dimension does); top-3 = rank by the
    // dimension-averaged L̂ (the paper's L̂_avg column).
    for (name, any) in on_pareto_any {
        if any {
            tallies.entry(name).or_default().pareto_all += 1;
        }
    }
    let avg_points: Vec<QualityPoint> = entries
        .iter()
        .map(|(name, v)| QualityPoint {
            name: name.clone(),
            accuracy: v[0],
            bias: (v[1] + v[2] + v[3]) / 3.0,
        })
        .collect();
    for (i, p) in avg_points.iter().enumerate() {
        if in_top_k(&avg_points, i, 3, 0.5) {
            tallies.entry(p.name.clone()).or_default().top3_all += 1;
        }
    }
}

fn render_block(
    title: &str,
    order: &[&str],
    tallies: &BTreeMap<String, Tally>,
    n_configs: usize,
) -> Table {
    let mut table = Table::new(
        format!(
            "Tab. 5 ({title}) — % of {n_configs} configurations on the Pareto set / in the L-hat top-3"
        ),
        &[
            "algorithm",
            "global Pareto %", "global top3 %",
            "local Pareto %", "local top3 %",
            "indiv Pareto %", "indiv top3 %",
            "all-dims Pareto %", "all-dims top3 %",
        ],
    );
    let n = n_configs as f64;
    for name in order {
        let Some(t) = tallies.get(*name) else { continue };
        table.push(vec![
            name.to_string(),
            pct(t.pareto[0] as f64 / n), pct(t.top3[0] as f64 / n),
            pct(t.pareto[1] as f64 / n), pct(t.top3[1] as f64 / n),
            pct(t.pareto[2] as f64 / n), pct(t.top3[2] as f64 / n),
            pct(t.pareto_all as f64 / n), pct(t.top3_all as f64 / n),
        ]);
    }
    table
}

fn main() {
    let opts = Opts::from_args();
    let out = opts.ensure_out_dir().to_path_buf();
    let all_algos: Vec<Algo> =
        METRIC_FREE.iter().chain(METRIC_BOUND.iter()).copied().collect();

    // (dataset index, metric index) → per-algorithm averaged quality.
    let mut per_config: Vec<Vec<(String, [f64; 4])>> = Vec::new();

    for dataset in BenchDataset::SUMMARY_SET {
        let mut sums: BTreeMap<(usize, String), [f64; 4]> = BTreeMap::new();
        for &seed in &opts.run_seeds() {
            let ds = dataset.generate(seed, opts.scale);
            let split =
                ThreeWaySplit::split(&ds, SplitRatios::PAPER, seed).expect("split");
            let pools = PoolSet::build(&split, seed);
            let regions = reference_regions(&split, seed);

            // Metric-free algorithms: fit once, evaluate under each metric.
            for &algo in &METRIC_FREE {
                let fitted = fit_algorithm(algo, &split, &pools, METRICS[0], seed);
                let f = &fitted[0];
                for (mi, &metric) in METRICS.iter().enumerate() {
                    let mut row =
                        evaluate(f.model.as_ref(), &split.test, metric, &regions, f.fit_seconds);
                    row.algo = algo.name().to_string();
                    let e = sums.entry((mi, row.algo.clone())).or_insert([0.0; 4]);
                    e[0] += row.accuracy;
                    e[1] += row.global_bias;
                    e[2] += row.local_bias;
                    e[3] += row.individual_bias;
                }
            }
            // Metric-bound algorithms: refit per metric.
            for (mi, &metric) in METRICS.iter().enumerate() {
                for &algo in &METRIC_BOUND {
                    let (row, _) =
                        evaluate_algo(algo, &split, &pools, metric, seed, &regions);
                    let e = sums.entry((mi, row.algo.clone())).or_insert([0.0; 4]);
                    e[0] += row.accuracy;
                    e[1] += row.global_bias;
                    e[2] += row.local_bias;
                    e[3] += row.individual_bias;
                }
            }
            falcc_telemetry::progress(format!("[exp_summary] {} seed {seed} done", dataset.name()));
        }
        let runs = opts.runs as f64;
        for mi in 0..METRICS.len() {
            per_config.push(
                sums.iter()
                    .filter(|((m, _), _)| *m == mi)
                    .map(|((_, name), v)| (name.clone(), v.map(|x| x / runs)))
                    .collect(),
            );
        }
    }
    let n_configs = per_config.len();

    // Block 1: the eight off-the-shelf algorithms scored among themselves.
    let default_names: Vec<&str> = Algo::DEFAULT_SET.iter().map(|a| a.name()).collect();
    let mut default_tallies = BTreeMap::new();
    for entries in &per_config {
        let subset: Vec<(String, [f64; 4])> = entries
            .iter()
            .filter(|(n, _)| default_names.contains(&n.as_str()))
            .cloned()
            .collect();
        tally_configuration(&subset, &mut default_tallies);
    }
    let t_default = render_block(
        "default inputs",
        &[
            "FairBoost", "LFR", "iFair", "FaX", "Fair-SMOTE", "Decouple",
            "FALCES-BEST", "FALCC",
        ],
        &default_tallies,
        n_configs,
    );
    print!("{}", t_default.render());
    write_csv(&t_default, &out, "table5_summary_default.csv");

    // Block 2: all eleven, including the fair-pool variants.
    let mut fair_tallies = BTreeMap::new();
    for entries in &per_config {
        tally_configuration(entries, &mut fair_tallies);
    }
    let all_names: Vec<&str> = all_algos.iter().map(|a| a.name()).collect();
    let t_fair = render_block(
        "with fair classifiers available",
        &all_names.to_vec(),
        &fair_tallies,
        n_configs,
    );
    print!("{}", t_fair.render());
    write_csv(&t_fair, &out, "table5_summary_fair.csv");
}
