#![allow(clippy::field_reassign_with_default)] // config mutation reads clearer in experiment scripts

//! Ablations of the design choices DESIGN.md §6 calls out (beyond the
//! paper's own experiments):
//!
//! 1. **k selection** — LOG-Means vs Elbow vs fixed k ∈ {1, 4, 16}:
//!    quality and offline cost of the clustering choice; `k = 1` is the
//!    global-fairness degenerate case.
//! 2. **Pool size** — 2..8 grid models: diversity/quality saturation.
//! 3. **λ sweep** — 0, 0.25, 0.5, 0.75, 1: the accuracy↔fairness dial of
//!    the Eq. 2 loss.
//! 4. **Gap-fill k** — 1, 5, 15, 50: sensitivity of cluster gap-filling.

use falcc::{ClusterSpec, FairClassifier, FalccConfig, FalccModel};
use falcc_bench::report::{f4, write_csv};
use falcc_bench::{reference_regions, BenchDataset, Opts, Table};
use falcc_dataset::{SplitRatios, ThreeWaySplit};
use falcc_metrics::{accuracy, local_bias, FairnessMetric, LossConfig};
use std::time::Instant;

struct Ctx {
    split: ThreeWaySplit,
    regions: (Vec<usize>, usize),
    seed: u64,
}

fn run(ctx: &Ctx, cfg: &FalccConfig) -> (f64, f64, f64, usize) {
    let start = Instant::now();
    let model = FalccModel::fit(&ctx.split.train, &ctx.split.validation, cfg)
        .expect("fit");
    let fit_s = start.elapsed().as_secs_f64();
    let preds = model.predict_dataset(&ctx.split.test);
    let acc = accuracy(ctx.split.test.labels(), &preds);
    let lb = local_bias(
        cfg.loss.metric,
        ctx.split.test.labels(),
        &preds,
        ctx.split.test.groups(),
        ctx.split.test.group_index().len(),
        &ctx.regions.0,
        ctx.regions.1,
    );
    let _ = fit_s;
    (acc, lb, fit_s, model.n_regions())
}

fn main() {
    let opts = Opts::from_args();
    let out = opts.ensure_out_dir().to_path_buf();
    let metric = FairnessMetric::DemographicParity;
    let seed = opts.seed;
    let ds = BenchDataset::Compas.generate(seed, opts.scale);
    let split = ThreeWaySplit::split(&ds, SplitRatios::PAPER, seed).expect("split");
    let regions = reference_regions(&split, seed);
    let ctx = Ctx { split, regions, seed };

    let base = || {
        let mut cfg = FalccConfig::default();
        cfg.loss = LossConfig::balanced(metric);
        cfg.seed = ctx.seed;
        cfg
    };

    // --- 1. k selection. ---
    let mut t1 = Table::new(
        "Ablation 1 — cluster-count selection (COMPAS)",
        &["clustering", "k", "accuracy", "local_bias", "offline_s"],
    );
    let specs: [(ClusterSpec, &str); 5] = [
        (ClusterSpec::LogMeans, "LOG-Means"),
        (ClusterSpec::Elbow, "Elbow"),
        (ClusterSpec::FixedK(1), "fixed k=1 (global)"),
        (ClusterSpec::FixedK(4), "fixed k=4"),
        (ClusterSpec::FixedK(16), "fixed k=16"),
    ];
    for (spec, name) in specs {
        let mut cfg = base();
        cfg.clustering = spec;
        let (acc, lb, fit_s, k) = run(&ctx, &cfg);
        t1.push(vec![
            name.into(),
            k.to_string(),
            f4(acc),
            f4(lb),
            format!("{fit_s:.2}"),
        ]);
    }
    print!("{}", t1.render());
    write_csv(&t1, &out, "ablation_k_selection.csv");

    // --- 2. Pool size. ---
    let mut t2 = Table::new(
        "Ablation 2 — model pool size (COMPAS)",
        &["pool_size", "accuracy", "local_bias", "offline_s"],
    );
    for pool_size in [2usize, 3, 4, 5, 6, 8] {
        let mut cfg = base();
        cfg.pool.pool_size = pool_size;
        let (acc, lb, fit_s, _) = run(&ctx, &cfg);
        t2.push(vec![pool_size.to_string(), f4(acc), f4(lb), format!("{fit_s:.2}")]);
    }
    print!("{}", t2.render());
    write_csv(&t2, &out, "ablation_pool_size.csv");

    // --- 3. λ sweep. ---
    let mut t3 = Table::new(
        "Ablation 3 — lambda sweep of the Eq. 2 loss (COMPAS)",
        &["lambda", "accuracy", "local_bias"],
    );
    for lambda in [0.0, 0.25, 0.5, 0.75, 1.0] {
        let mut cfg = base();
        cfg.loss.lambda = lambda;
        let (acc, lb, _, _) = run(&ctx, &cfg);
        t3.push(vec![format!("{lambda:.2}"), f4(acc), f4(lb)]);
    }
    print!("{}", t3.render());
    write_csv(&t3, &out, "ablation_lambda.csv");

    // --- 4. Gap-fill k. ---
    let mut t4 = Table::new(
        "Ablation 4 — gap-fill neighbour count (COMPAS)",
        &["gap_fill_k", "accuracy", "local_bias"],
    );
    for k in [1usize, 5, 15, 50] {
        let mut cfg = base();
        cfg.gap_fill_k = k;
        let (acc, lb, _, _) = run(&ctx, &cfg);
        t4.push(vec![k.to_string(), f4(acc), f4(lb)]);
    }
    print!("{}", t4.render());
    write_csv(&t4, &out, "ablation_gap_fill.csv");
}
