//! Kernel benchmark: times the naive reference implementations against
//! the fast kernels (presorted CART, bounded Lloyd, warm-started
//! LOG-Means, pruned kNN / nearest-centroid) on the `exp_runtime`-scale
//! synthetic Adult dataset, checks equivalence, and writes
//! `BENCH_kernels.json` at the repo root.
//!
//! `--smoke` shrinks the data and repetition count for CI.

use falcc_bench::{bench_kernels, Opts};

fn main() {
    let opts = Opts::from_args();
    let (scale, reps) = if opts.smoke { (0.02, 1) } else { (opts.scale, 3) };

    falcc_telemetry::progress(format!(
        "benchmarking kernels at scale {scale} (reps {reps}, seed {})",
        opts.seed
    ));
    let report = bench_kernels(scale, opts.seed, reps);

    println!("kernel            naive_ms    fast_ms  speedup  equivalent");
    for k in &report.kernels {
        println!(
            "{:<16} {:>9.2} {:>10.2} {:>7.2}x  {}",
            k.kernel, k.naive_ms, k.fast_ms, k.speedup, k.equivalent
        );
    }

    let json = serde_json::to_string(&report).expect("serialise report");
    let out = "BENCH_kernels.json";
    std::fs::write(out, json).expect("write BENCH_kernels.json");
    falcc_telemetry::progress(format!(
        "wrote {out} ({} rows of training data)",
        report.train_rows
    ));

    // Bit-equivalence is a hard promise for everything except the
    // warm-started LOG-Means probes; fail loudly if a kernel diverged.
    let broken: Vec<&str> = report
        .kernels
        .iter()
        .filter(|k| !k.equivalent && k.kernel != "log_means")
        .map(|k| k.kernel.as_str())
        .collect();
    if !broken.is_empty() {
        eprintln!("kernels diverged from their references: {broken:?}");
        std::process::exit(1);
    }
}
