//! E-F3 — regenerates the paper's **Fig. 3**: accuracy–fairness trade-offs
//! of all eight off-the-shelf algorithms on the COMPAS dataset with
//! demographic parity, averaged over the runs. Prints one series per bias
//! dimension (global / local / individual) with Pareto-front membership
//! marked, i.e. exactly the data behind the figure's three scatter plots.

use falcc_bench::algos::PoolSet;
use falcc_bench::report::{f4, pct, write_csv};
use falcc_bench::{reference_regions, Algo, BenchDataset, Opts, Table};
use falcc_dataset::{SplitRatios, ThreeWaySplit};
use falcc_metrics::{pareto_front, FairnessMetric, QualityPoint};
use std::collections::BTreeMap;

fn main() {
    let opts = Opts::from_args();
    let out = opts.ensure_out_dir().to_path_buf();
    let metric = FairnessMetric::DemographicParity;

    // algo → accumulated (accuracy, global, local, individual).
    let mut acc: BTreeMap<String, [f64; 4]> = BTreeMap::new();
    for &seed in &opts.run_seeds() {
        let ds = BenchDataset::Compas.generate(seed, opts.scale);
        let split = ThreeWaySplit::split(&ds, SplitRatios::PAPER, seed).expect("split");
        let pools = PoolSet::build(&split, seed);
        let regions = reference_regions(&split, seed);
        for algo in Algo::DEFAULT_SET {
            let (row, _) = falcc_bench::eval::evaluate_algo(
                algo, &split, &pools, metric, seed, &regions,
            );
            let e = acc.entry(row.algo.clone()).or_insert([0.0; 4]);
            e[0] += row.accuracy;
            e[1] += row.global_bias;
            e[2] += row.local_bias;
            e[3] += row.individual_bias;
        }
    }
    let runs = opts.runs as f64;

    for (dim, label) in [(1usize, "global"), (2, "local"), (3, "individual")] {
        let points: Vec<QualityPoint> = acc
            .iter()
            .map(|(name, sums)| QualityPoint {
                name: name.clone(),
                accuracy: sums[0] / runs,
                bias: sums[dim] / runs,
            })
            .collect();
        let front: std::collections::HashSet<usize> =
            pareto_front(&points).into_iter().collect();
        let mut table = Table::new(
            format!("Fig. 3 ({label} bias) — COMPAS, demographic parity, % values"),
            &["algorithm", "accuracy %", "bias %", "L-hat", "pareto"],
        );
        let mut rows: Vec<(f64, Vec<String>)> = points
            .iter()
            .enumerate()
            .map(|(i, p)| {
                let l_hat = 0.5 * (1.0 - p.accuracy) + 0.5 * p.bias;
                (
                    l_hat,
                    vec![
                        p.name.clone(),
                        pct(p.accuracy),
                        pct(p.bias),
                        f4(l_hat),
                        if front.contains(&i) { "*".into() } else { "".into() },
                    ],
                )
            })
            .collect();
        rows.sort_by(|a, b| a.0.partial_cmp(&b.0).expect("finite"));
        for (_, row) in rows {
            table.push(row);
        }
        print!("{}", table.render());
        write_csv(&table, &out, &format!("fig3_tradeoffs_{label}.csv"));
    }
}
