#![allow(clippy::field_reassign_with_default)] // config mutation reads clearer in experiment scripts

//! E-F5 — regenerates the paper's **Fig. 5**: the effect of the proxy-
//! discrimination mitigation strategies. FALCC runs on the *Implicit*
//! synthetic dataset with the injected bias varied over {10, 20, 30, 40}%
//! and the strategy varied over {none, reweighing, removal}; global bias,
//! local bias, and inaccuracy are reported per cell (the three panels of
//! the figure).

use falcc::{FairClassifier, FalccConfig, FalccModel, ProxyStrategy};
use falcc_bench::report::{f4, write_csv};
use falcc_bench::{reference_regions, Opts, Table};
use falcc_dataset::synthetic::{generate, SyntheticConfig};
use falcc_dataset::{SplitRatios, ThreeWaySplit};
use falcc_metrics::{accuracy, local_bias, FairnessMetric};

fn main() {
    let opts = Opts::from_args();
    let out = opts.ensure_out_dir().to_path_buf();
    let metric = FairnessMetric::DemographicParity;
    let strategies: [(ProxyStrategy, &str); 3] = [
        (ProxyStrategy::None, "none"),
        (ProxyStrategy::Reweigh, "reweigh"),
        (ProxyStrategy::PAPER_REMOVE, "remove"),
    ];

    let mut table = Table::new(
        "Fig. 5 — proxy mitigation on the Implicit dataset, demographic parity",
        &["bias %", "strategy", "global_bias", "local_bias", "inaccuracy"],
    );

    for bias_pct in [10u32, 20, 30, 40] {
        for &(strategy, strat_name) in &strategies {
            let mut sums = [0.0f64; 3];
            for &seed in &opts.run_seeds() {
                let mut dcfg = SyntheticConfig::implicit(bias_pct as f64 / 100.0);
                dcfg.n = ((dcfg.n as f64 * opts.scale) as usize).max(512);
                let ds = generate(&dcfg, seed).expect("implicit generation");
                let split =
                    ThreeWaySplit::split(&ds, SplitRatios::PAPER, seed).expect("split");
                let regions = reference_regions(&split, seed);

                let mut cfg = FalccConfig::default();
                cfg.loss = falcc_metrics::LossConfig::balanced(metric);
                cfg.proxy = strategy;
                cfg.seed = seed;
                let model = FalccModel::fit(&split.train, &split.validation, &cfg)
                    .expect("fit");
                let preds = model.predict_dataset(&split.test);

                sums[0] += metric.bias(
                    split.test.labels(),
                    &preds,
                    split.test.groups(),
                    2,
                );
                sums[1] += local_bias(
                    metric,
                    split.test.labels(),
                    &preds,
                    split.test.groups(),
                    2,
                    &regions.0,
                    regions.1,
                );
                sums[2] += 1.0 - accuracy(split.test.labels(), &preds);
            }
            let runs = opts.runs as f64;
            table.push(vec![
                bias_pct.to_string(),
                strat_name.to_string(),
                f4(sums[0] / runs),
                f4(sums[1] / runs),
                f4(sums[2] / runs),
            ]);
            falcc_telemetry::progress(format!("[exp_proxy] bias {bias_pct}% strategy {strat_name} done"));
        }
    }

    print!("{}", table.render());
    write_csv(&table, &out, "fig5_proxy_mitigation.csv");
}
