#![allow(clippy::field_reassign_with_default)] // config mutation reads clearer in experiment scripts

//! Auxiliary experiment: FALCC configuration search (pool size, accuracy
//! margin, split training, cluster spec) against the FALCES/Decouple
//! references on one dataset. Not a paper artifact — this is the tool used
//! to pick the repository's default FALCC configuration, kept for
//! reproducibility of that choice.

use falcc::{ClusterSpec, FalccConfig, FalccModel};
use falcc_bench::eval::{evaluate, reference_regions};
use falcc_bench::report::f4;
use falcc_bench::{BenchDataset, Opts, Table};
use falcc_bench::algos::{Algo, PoolSet};
use falcc_dataset::{SplitRatios, ThreeWaySplit};
use falcc_metrics::{FairnessMetric, LossConfig};

fn main() {
    let opts = Opts::from_args();
    let metric = FairnessMetric::DemographicParity;
    let dataset = BenchDataset::Compas;

    let mut table = Table::new(
        format!("FALCC configuration search on {} (avg over runs)", dataset.name()),
        &["config", "accuracy", "global", "local", "individual"],
    );

    #[derive(Clone, Copy)]
    struct Variant {
        name: &'static str,
        pool_size: usize,
        margin: f64,
        split: bool,
        cluster: ClusterSpec,
    }
    let variants = [
        Variant { name: "pool5 m=.05 logmeans", pool_size: 5, margin: 0.05, split: false, cluster: ClusterSpec::LogMeans },
        Variant { name: "pool5 m=1.0 logmeans", pool_size: 5, margin: 1.0, split: false, cluster: ClusterSpec::LogMeans },
        Variant { name: "pool8 m=1.0 logmeans", pool_size: 0, margin: 1.0, split: false, cluster: ClusterSpec::LogMeans },
        Variant { name: "pool5 m=.05 k=16", pool_size: 5, margin: 0.05, split: false, cluster: ClusterSpec::FixedK(16) },
        Variant { name: "pool5 m=.05 sbt", pool_size: 5, margin: 0.05, split: true, cluster: ClusterSpec::LogMeans },
        Variant { name: "pool8 m=1.0 sbt k=16", pool_size: 0, margin: 1.0, split: true, cluster: ClusterSpec::FixedK(16) },
        Variant { name: "pool5 m=.05 sbt k=16", pool_size: 5, margin: 0.05, split: true, cluster: ClusterSpec::FixedK(16) },
    ];

    let mut sums = vec![[0.0f64; 4]; variants.len() + 2];
    for &seed in &opts.run_seeds() {
        let ds = dataset.generate(seed, opts.scale);
        let split = ThreeWaySplit::split(&ds, SplitRatios::PAPER, seed).expect("split");
        let regions = reference_regions(&split, seed);
        for (vi, v) in variants.iter().enumerate() {
            let mut cfg = FalccConfig::default();
            cfg.loss = LossConfig::balanced(metric);
            cfg.seed = seed;
            cfg.clustering = v.cluster;
            cfg.pool.pool_size = v.pool_size;
            cfg.pool.accuracy_margin = v.margin;
            cfg.pool.split_by_group = v.split;
            cfg.pool.seed = seed;
            let model =
                FalccModel::fit(&split.train, &split.validation, &cfg).expect("fit");
            let row = evaluate(&model, &split.test, metric, &regions, 0.0);
            sums[vi][0] += row.accuracy;
            sums[vi][1] += row.global_bias;
            sums[vi][2] += row.local_bias;
            sums[vi][3] += row.individual_bias;
        }
        // References.
        let pools = PoolSet::build(&split, seed);
        for (slot, algo) in [(variants.len(), Algo::FalcesBest), (variants.len() + 1, Algo::Decouple)] {
            let (row, _) = falcc_bench::eval::evaluate_algo(algo, &split, &pools, metric, seed, &regions);
            sums[slot][0] += row.accuracy;
            sums[slot][1] += row.global_bias;
            sums[slot][2] += row.local_bias;
            sums[slot][3] += row.individual_bias;
        }
    }
    let runs = opts.runs as f64;
    for (vi, v) in variants.iter().enumerate() {
        table.push(vec![
            v.name.to_string(),
            f4(sums[vi][0] / runs),
            f4(sums[vi][1] / runs),
            f4(sums[vi][2] / runs),
            f4(sums[vi][3] / runs),
        ]);
    }
    for (slot, name) in [(variants.len(), "FALCES-BEST"), (variants.len() + 1, "Decouple")] {
        table.push(vec![
            name.to_string(),
            f4(sums[slot][0] / runs),
            f4(sums[slot][1] / runs),
            f4(sums[slot][2] / runs),
            f4(sums[slot][3] / runs),
        ]);
    }
    print!("{}", table.render());
}
