//! E-T4 — regenerates the paper's **Tab. 4**: metadata of the benchmark
//! datasets (sample count, feature count, per-group positive rates, group
//! marginal), measured from the emulated datasets rather than copied from
//! the spec, so the table doubles as a validation of the emulators.

use falcc_bench::report::{pct, write_csv};
use falcc_bench::{BenchDataset, Opts, Table};

fn main() {
    let opts = Opts::from_args();
    let out = opts.ensure_out_dir().to_path_buf();
    let mut table = Table::new(
        "Tab. 4 — dataset metadata (measured on the emulated datasets)",
        &["dataset", "sens. attr.", "samples", "features", "P(y=1|s=1) %", "P(y=1|s=0) %", "P(s=1) %"],
    );

    for d in BenchDataset::TAB4_SET {
        // Tab. 4 reports full-size numbers; metadata is cheap, so measure
        // at full scale regardless of --scale.
        let ds = d.generate(opts.seed, 1.0);
        let sens_names: Vec<&str> = ds
            .schema()
            .sensitive_attrs()
            .iter()
            .map(|&a| ds.schema().attr_name(a))
            .collect();
        let rates = ds.group_positive_rates();
        let counts = ds.group_counts();
        let n = ds.len() as f64;
        let n_groups = ds.group_index().len();

        // Binary case: groups are (0, 1). Multi-attribute case: report the
        // top group as "s=1" and list the rest, as the paper does.
        let (rate1, rate_rest, p1) = if n_groups == 2 {
            (
                rates[1].unwrap_or(0.0),
                pct(rates[0].unwrap_or(0.0)),
                counts[1] as f64 / n,
            )
        } else {
            let top = n_groups - 1;
            let rest: Vec<String> = (0..top)
                .map(|g| pct(rates[g].unwrap_or(0.0)))
                .collect();
            // P(s=1) for the first sensitive attribute's favoured half.
            let half: usize = counts
                .iter()
                .enumerate()
                .filter(|(g, _)| g / (n_groups / 2) == 1)
                .map(|(_, &c)| c)
                .sum();
            (rates[top].unwrap_or(0.0), rest.join(" / "), half as f64 / n)
        };

        table.push(vec![
            d.name().to_string(),
            sens_names.join(", "),
            ds.len().to_string(),
            ds.n_attrs().to_string(),
            pct(rate1),
            rate_rest,
            pct(p1),
        ]);
    }

    print!("{}", table.render());
    write_csv(&table, &out, "table4_datasets.csv");
}
