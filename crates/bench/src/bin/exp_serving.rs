//! Serving-plane benchmark: interpreted online phase vs the compiled
//! serving plane (`FalccModel::compile`) on an ensemble-heavy pool —
//! single-row latency, batch throughput, one-off compile cost — and a
//! hard bit-identity gate. Writes `BENCH_serving.json` at the repo root.
//!
//! `--smoke` shrinks the data and repetition count for CI; a divergence
//! between the planes exits non-zero in every mode.

use falcc_bench::{bench_serving, Opts};

fn main() {
    let opts = Opts::from_args();
    // Timings take the minimum over interleaved samples; on shared boxes
    // more repetitions are what pins the true floor for both planes.
    let (scale, reps) = if opts.smoke { (0.02, 1) } else { (opts.scale, 25) };

    falcc_telemetry::progress(format!(
        "benchmarking serving planes at scale {scale} (reps {reps}, seed {})",
        opts.seed
    ));
    let report = bench_serving(scale, opts.seed, reps);

    println!(
        "plane         single_us   batch_rows_per_s\n\
         interpreted   {:>9.2} {:>18.0}\n\
         compiled      {:>9.2} {:>18.0}\n\
         speedup       {:>8.2}x {:>17.2}x",
        report.interpreted_single_us,
        report.interpreted_batch_rows_per_s,
        report.compiled_single_us,
        report.compiled_batch_rows_per_s,
        report.single_speedup,
        report.batch_speedup,
    );
    println!(
        "compile: {:.2} ms for {} distinct members (pool {}, {} regions, {} flat nodes); \
         equivalent: {}",
        report.compile_ms,
        report.compiled_models,
        report.pool_models,
        report.n_regions,
        report.flat_nodes,
        report.equivalent,
    );

    let json = serde_json::to_string(&report).expect("serialise report");
    let out = "BENCH_serving.json";
    std::fs::write(out, json).expect("write BENCH_serving.json");
    falcc_telemetry::progress(format!("wrote {out} ({} test rows)", report.test_rows));
    opts.finish_telemetry();

    if !report.equivalent {
        // Routed through `progress` so `--quiet` silences it like every
        // other status line; the non-zero exit still fails the run.
        falcc_telemetry::progress(
            "compiled serving plane diverged from the interpreted online phase",
        );
        std::process::exit(1);
    }
}
