#![allow(clippy::field_reassign_with_default)] // config mutation reads clearer in experiment scripts

//! E-F4 — regenerates the paper's **Fig. 4**: the effect of model-pool
//! diversity on FALCC's quality. For each dataset we train many pools with
//! varying hyperparameter settings (AdaBoost and random-forest families,
//! all grid subsets of size 3–5 plus whole-grid pools), measure each pool's
//! non-pairwise entropy on the validation set, run FALCC's offline phase on
//! top, and record accuracy and local bias on the test set. A linear fit
//! per dataset gives the trend lines the figure shows.

use falcc::{FairClassifier, FalccConfig, FalccModel};
use falcc_bench::report::{f4, write_csv};
use falcc_bench::{reference_regions, BenchDataset, Opts, Table};
use falcc_dataset::{SplitRatios, ThreeWaySplit};
use falcc_metrics::{accuracy, local_bias, FairnessMetric};
use falcc_models::grid::{paper_grid, TrainerKind};
use falcc_models::{ModelPool, TrainedModel};
use std::sync::Arc;

/// Least-squares slope and intercept of y over x.
fn linear_fit(xs: &[f64], ys: &[f64]) -> (f64, f64) {
    let n = xs.len() as f64;
    let mx = xs.iter().sum::<f64>() / n;
    let my = ys.iter().sum::<f64>() / n;
    let mut cov = 0.0;
    let mut var = 0.0;
    for (x, y) in xs.iter().zip(ys) {
        cov += (x - mx) * (y - my);
        var += (x - mx) * (x - mx);
    }
    if var <= 0.0 {
        (0.0, my)
    } else {
        (cov / var, my - cov / var * mx)
    }
}

fn main() {
    let opts = Opts::from_args();
    let out = opts.ensure_out_dir().to_path_buf();
    let metric = FairnessMetric::DemographicParity;
    let datasets = [BenchDataset::Compas, BenchDataset::Implicit30, BenchDataset::Social30];

    let mut scatter = Table::new(
        "Fig. 4 — pool diversity (entropy) vs FALCC quality, demographic parity",
        &["dataset", "pool", "entropy", "accuracy", "local_bias"],
    );
    let mut fits = Table::new(
        "Fig. 4 — linear trends per dataset",
        &["dataset", "slope acc/entropy", "slope bias/entropy", "points"],
    );

    for dataset in datasets {
        let seed = opts.seed;
        let ds = dataset.generate(seed, opts.scale);
        let split = ThreeWaySplit::split(&ds, SplitRatios::PAPER, seed).expect("split");
        let regions = reference_regions(&split, seed);
        let attrs: Vec<usize> = (0..split.train.n_attrs()).collect();
        let idx: Vec<usize> = (0..split.train.len()).collect();

        // Candidate pools: for both trainer families, every contiguous
        // window of the grid of sizes 3..=5 plus the full grid — a spread
        // of diversity levels without a combinatorial blow-up.
        let mut entropies = Vec::new();
        let mut accs = Vec::new();
        let mut biases = Vec::new();
        for trainer in [TrainerKind::AdaBoost, TrainerKind::RandomForest] {
            let grid = paper_grid(trainer);
            let models: Vec<Arc<dyn falcc_models::Classifier>> = grid
                .iter()
                .enumerate()
                .map(|(i, p)| p.fit(&split.train, &attrs, &idx, seed ^ (i as u64) << 4))
                .collect();
            let mut windows: Vec<Vec<usize>> = Vec::new();
            for size in 3..=5usize {
                for start in 0..=(grid.len() - size) {
                    windows.push((start..start + size).collect());
                }
            }
            windows.push((0..grid.len()).collect());

            for (wi, window) in windows.iter().enumerate() {
                let pool = ModelPool::from_models(
                    window
                        .iter()
                        .map(|&i| TrainedModel { model: models[i].clone(), group: None })
                        .collect(),
                );
                let entropy = pool.entropy_diversity(&split.validation);
                let mut cfg = FalccConfig::default();
                cfg.loss = falcc_metrics::LossConfig::balanced(metric);
                cfg.seed = seed;
                let Ok(model) = FalccModel::fit_with_pool(&split.validation, pool, &cfg)
                else {
                    continue;
                };
                let preds = model.predict_dataset(&split.test);
                let acc = accuracy(split.test.labels(), &preds);
                let lb = local_bias(
                    metric,
                    split.test.labels(),
                    &preds,
                    split.test.groups(),
                    split.test.group_index().len(),
                    &regions.0,
                    regions.1,
                );
                let pool_name = format!(
                    "{}-w{wi}",
                    match trainer {
                        TrainerKind::AdaBoost => "ada",
                        TrainerKind::RandomForest => "rf",
                    }
                );
                scatter.push(vec![
                    dataset.name().into(),
                    pool_name,
                    f4(entropy),
                    f4(acc),
                    f4(lb),
                ]);
                entropies.push(entropy);
                accs.push(acc);
                biases.push(lb);
            }
        }
        let (slope_acc, _) = linear_fit(&entropies, &accs);
        let (slope_bias, _) = linear_fit(&entropies, &biases);
        fits.push(vec![
            dataset.name().into(),
            f4(slope_acc),
            f4(slope_bias),
            entropies.len().to_string(),
        ]);
        falcc_telemetry::progress(format!("[exp_diversity] finished dataset {}", dataset.name()));
    }

    print!("{}", scatter.render());
    print!("{}", fits.render());
    write_csv(&scatter, &out, "fig4_diversity_scatter.csv");
    write_csv(&fits, &out, "fig4_diversity_fits.csv");
}
