#![allow(clippy::field_reassign_with_default)] // config mutation reads clearer in experiment scripts

//! Extension experiment (beyond the paper's evaluation): the full algorithm
//! roster — the paper's eight competitors *plus* the three related-work
//! classics (CV-2NB, AdaFair, Reweighing) — compared on one dataset across
//! all four quality dimensions. Useful for situating the classics the
//! paper's Tab. 1 lists but does not evaluate.

use falcc::FairClassifier;
use falcc_baselines::{AdaFair, AdaFairParams, CaldersVerwer, KamiranReweighing};
use falcc_bench::algos::PoolSet;
use falcc_bench::eval::{evaluate, evaluate_algo};
use falcc_bench::report::{f4, write_csv};
use falcc_bench::{reference_regions, Algo, BenchDataset, Opts, Table};
use falcc_dataset::{SplitRatios, ThreeWaySplit};
use falcc_metrics::FairnessMetric;
use std::collections::BTreeMap;

fn main() {
    let opts = Opts::from_args();
    let out = opts.ensure_out_dir().to_path_buf();
    let metric = FairnessMetric::DemographicParity;
    let dataset = BenchDataset::Compas;

    let mut sums: BTreeMap<String, [f64; 4]> = BTreeMap::new();
    for &seed in &opts.run_seeds() {
        let ds = dataset.generate(seed, opts.scale);
        let split = ThreeWaySplit::split(&ds, SplitRatios::PAPER, seed).expect("split");
        let pools = PoolSet::build(&split, seed);
        let regions = reference_regions(&split, seed);

        let mut add = |name: &str, row: falcc_bench::EvalRow| {
            let e = sums.entry(name.to_string()).or_insert([0.0; 4]);
            e[0] += row.accuracy;
            e[1] += row.global_bias;
            e[2] += row.local_bias;
            e[3] += row.individual_bias;
        };

        for algo in Algo::DEFAULT_SET {
            let (row, _) = evaluate_algo(algo, &split, &pools, metric, seed, &regions);
            add(algo.name(), row);
        }
        // The related-work classics.
        let classics: Vec<Box<dyn FairClassifier>> = vec![
            Box::new(CaldersVerwer::fit(&split.train).expect("cv-2nb")),
            Box::new(AdaFair::fit(&split.train, &AdaFairParams::default(), seed)),
            Box::new(KamiranReweighing::fit(&split.train, 20, seed)),
        ];
        for model in &classics {
            let row = evaluate(model.as_ref(), &split.test, metric, &regions, 0.0);
            add(model.name(), row);
        }
        falcc_telemetry::progress(format!("[exp_extended] seed {seed} done"));
    }

    let runs = opts.runs as f64;
    let mut table = Table::new(
        format!("Extended roster on {} (demographic parity, avg of {} runs)", dataset.name(), opts.runs),
        &["algorithm", "accuracy", "global", "local (L-hat)", "individual"],
    );
    let mut rows: Vec<(f64, Vec<String>)> = sums
        .iter()
        .map(|(name, v)| {
            let l = 0.5 * (1.0 - v[0] / runs) + 0.5 * (v[1] / runs);
            (
                l,
                vec![
                    name.clone(),
                    f4(v[0] / runs),
                    f4(v[1] / runs),
                    f4(v[2] / runs),
                    f4(v[3] / runs),
                ],
            )
        })
        .collect();
    rows.sort_by(|a, b| a.0.partial_cmp(&b.0).expect("finite"));
    for (_, row) in rows {
        table.push(row);
    }
    print!("{}", table.render());
    write_csv(&table, &out, "extended_roster.csv");
}
