//! # falcc-bench
//!
//! Experiment harness reproducing every table and figure of the paper's
//! evaluation (§4). One binary per artifact:
//!
//! | binary | paper artifact |
//! |---|---|
//! | `exp_datasets`  | Tab. 4 — dataset metadata |
//! | `exp_tradeoffs` | Fig. 3 — accuracy–fairness trade-offs on COMPAS |
//! | `exp_summary`   | Tab. 5 — Pareto-% and top-3-% over all configurations |
//! | `exp_diversity` | Fig. 4 — ensemble diversity vs quality |
//! | `exp_proxy`     | Fig. 5 — proxy-mitigation strategies |
//! | `exp_runtime`   | Fig. 6 — online-phase runtime |
//! | `exp_ablation`  | extra — design-choice ablations (k estimation, pool size, λ) |
//! | `exp_kernels`   | extra — naive-vs-fast kernel timings (`BENCH_kernels.json`) |
//! | `exp_serving`   | extra — interpreted vs compiled serving plane (`BENCH_serving.json`) |
//!
//! Every binary accepts `--seed <u64>`, `--runs <n>`, `--scale <f64>` (row
//! scaling of the emulated datasets) and `--out <dir>` and writes both a
//! human-readable table to stdout and CSV files under `bench_results/`.
//! The telemetry flags `--profile`, `--trace-out <path>`, and `--quiet`
//! work everywhere too (see `falcc-telemetry`); `exp_runtime` additionally
//! prints a per-phase breakdown and writes `BENCH_telemetry.json` with the
//! measured observability overhead.
//! Criterion micro-benchmarks for the online/offline phases live under
//! `benches/`.

pub mod algos;
pub mod artifacts;
pub mod cli;
pub mod data;
pub mod eval;
pub mod kernels;
pub mod overhead;
pub mod report;
pub mod serving;

pub use algos::{fit_algorithm, Algo, FittedAlgo};
pub use artifacts::{bench_artifacts, ArtifactsReport};
pub use cli::Opts;
pub use data::BenchDataset;
pub use eval::{evaluate, reference_regions, EvalRow};
pub use kernels::{bench_kernels, KernelReport, KernelTiming};
pub use overhead::{measure_overhead, TelemetryOverheadReport};
pub use report::{write_csv, Table};
pub use serving::{bench_serving, ServingReport};
