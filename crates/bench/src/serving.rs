//! Interpreted-vs-compiled serving-plane benchmark.
//!
//! Fits one ensemble-heavy FALCC model (the whole AdaBoost grid, no pool
//! pruning — the regime where per-row dispatch overhead and cache
//! eviction hurt most), lowers it with [`FalccModel::compile`], and times
//! both planes on the same test rows: single-row latency
//! (`try_classify`) and batch throughput (`classify_batch`). The
//! compiled plane promises *bit identity*, so the report carries an
//! equivalence flag covering valid rows, malformed rows, and the
//! dataset-level path; `exp_serving` exits non-zero if it is ever
//! `false` and serialises everything to `BENCH_serving.json`.

use falcc::{ClusterSpec, FairClassifier, FalccConfig, FalccModel};
use falcc_dataset::{SplitRatios, ThreeWaySplit};
use falcc_models::{PoolConfig, TrainerKind};
use std::time::Instant;

use crate::data::BenchDataset;

/// The full benchmark envelope written to `BENCH_serving.json`.
#[derive(Debug, Clone, serde::Serialize)]
pub struct ServingReport {
    /// Dataset row-count scale the planes ran at.
    pub scale: f64,
    /// Base RNG seed.
    pub seed: u64,
    /// Timing samples per measurement (interleaved across the two
    /// planes, minimum taken).
    pub reps: usize,
    /// Rows in the test split every measurement classifies.
    pub test_rows: usize,
    /// Pool members in the fitted model (whole grid, unpruned).
    pub pool_models: usize,
    /// Distinct compiled members after dispatch-table deduplication.
    pub compiled_models: usize,
    /// Local regions (k).
    pub n_regions: usize,
    /// Total flat tree nodes across all compiled members.
    pub flat_nodes: usize,
    /// One-off compilation cost, milliseconds.
    pub compile_ms: f64,
    /// Interpreted single-row latency, microseconds per row.
    pub interpreted_single_us: f64,
    /// Compiled single-row latency, microseconds per row.
    pub compiled_single_us: f64,
    /// `interpreted_single_us / compiled_single_us`.
    pub single_speedup: f64,
    /// Interpreted batch throughput, rows per second.
    pub interpreted_batch_rows_per_s: f64,
    /// Compiled batch throughput, rows per second.
    pub compiled_batch_rows_per_s: f64,
    /// `compiled_batch_rows_per_s / interpreted_batch_rows_per_s`.
    pub batch_speedup: f64,
    /// Whether every compared entry point was bit-identical (hard gate).
    pub equivalent: bool,
    /// What was compared.
    pub note: String,
}

/// Best-case per-call time in milliseconds. One pass over a small test
/// split lasts well under a millisecond — below scheduler jitter on a
/// shared box — so each timed sample repeats `f` until it spans a few
/// milliseconds, and the minimum across samples is taken (the sample
/// least perturbed by outside interference, the standard throughput
/// estimator). Samples are kept short on purpose: the minimum only
/// needs *one* interference-free window, and short windows are far more
/// common on a steal-prone shared vCPU.
const SAMPLE_TARGET_S: f64 = 0.004;

pub(crate) fn best_ms(reps: usize, mut f: impl FnMut()) -> f64 {
    let start = Instant::now();
    f();
    let once = start.elapsed().as_secs_f64();
    let inner = (SAMPLE_TARGET_S / once.max(1e-9)).ceil().clamp(1.0, 100_000.0) as usize;
    (0..reps.max(1))
        .map(|_| {
            let start = Instant::now();
            for _ in 0..inner {
                f();
            }
            start.elapsed().as_secs_f64() * 1_000.0 / inner as f64
        })
        .fold(f64::INFINITY, f64::min)
}

/// [`best_ms`] for two competing implementations, with their samples
/// *interleaved* (a, b, a, b, …) so slow drift in machine load or clock
/// frequency hits both sides equally instead of biasing whichever plane
/// happened to be measured later.
fn best_pair_ms(reps: usize, mut a: impl FnMut(), mut b: impl FnMut()) -> (f64, f64) {
    let sample = |f: &mut dyn FnMut(), inner: usize| {
        let start = Instant::now();
        for _ in 0..inner {
            f();
        }
        start.elapsed().as_secs_f64() * 1_000.0 / inner as f64
    };
    let inner_of = |once_ms: f64| {
        (SAMPLE_TARGET_S / (once_ms / 1_000.0).max(1e-9)).ceil().clamp(1.0, 100_000.0) as usize
    };
    let inner_a = inner_of(sample(&mut a, 1));
    let inner_b = inner_of(sample(&mut b, 1));
    let mut best = (f64::INFINITY, f64::INFINITY);
    for _ in 0..reps.max(1) {
        best.0 = best.0.min(sample(&mut a, inner_a));
        best.1 = best.1.min(sample(&mut b, inner_b));
    }
    best
}

/// The ensemble-heavy serving configuration: whole AdaBoost grid
/// (`pool_size = 0` keeps all eight points), fixed k so the region count
/// is stable across scales.
pub(crate) fn serving_config(seed: u64) -> FalccConfig {
    FalccConfig {
        clustering: ClusterSpec::FixedK(8),
        pool: PoolConfig {
            trainer: TrainerKind::AdaBoost,
            pool_size: 0,
            seed,
            ..Default::default()
        },
        seed,
        ..FalccConfig::default()
    }
}

/// A batch interleaving valid test rows with every malformed-row kind —
/// the equivalence check must hold on faults too.
pub(crate) fn mixed_batch(split: &ThreeWaySplit) -> Vec<Vec<f64>> {
    let width = split.test.row(0).len();
    let mut rows: Vec<Vec<f64>> =
        (0..24).map(|i| split.test.row(i % split.test.len()).to_vec()).collect();
    rows[3][width - 1] = f64::NAN;
    rows[7][1] = f64::NEG_INFINITY;
    rows[11][0] = 42.0; // sensitive attribute outside the group domain
    rows[15] = vec![0.5]; // short
    rows[19].push(0.5); // wide
    rows
}

/// Times both serving planes on Adult (sex) and verifies bit identity.
pub fn bench_serving(scale: f64, seed: u64, reps: usize) -> ServingReport {
    let ds = BenchDataset::AdultSex.generate(seed, scale);
    let split = ThreeWaySplit::split(&ds, SplitRatios::PAPER, seed).expect("split");
    let model = FalccModel::fit(&split.train, &split.validation, &serving_config(seed))
        .expect("group coverage");
    let rows: Vec<Vec<f64>> =
        (0..split.test.len()).map(|i| split.test.row(i).to_vec()).collect();

    let compile_ms = best_ms(reps, || {
        std::hint::black_box(model.compile());
    });
    let compiled = model.compile();

    // Equivalence gate: full Result sequences on the clean batch, the
    // malformed batch, every single-row verdict, and the dataset path.
    let mixed = mixed_batch(&split);
    let equivalent = model.classify_batch(&rows) == compiled.classify_batch(&rows)
        && model.classify_batch(&mixed) == compiled.classify_batch(&mixed)
        && rows
            .iter()
            .chain(&mixed)
            .all(|row| model.try_classify(row) == compiled.try_classify(row))
        && model.predict_dataset(&split.test) == compiled.predict_dataset(&split.test);

    // Single-row latency: a full pass over the test rows per measurement
    // so clock resolution never dominates the per-row figure.
    let n = rows.len();
    let (interp_single_ms, compiled_single_ms) = best_pair_ms(
        reps,
        || {
            for row in &rows {
                std::hint::black_box(model.try_classify(row)).ok();
            }
        },
        || {
            for row in &rows {
                std::hint::black_box(compiled.try_classify(row)).ok();
            }
        },
    );

    // Batch throughput: the deployed entry point, same thread count on
    // both planes (the model's configured one).
    let (interp_batch_ms, compiled_batch_ms) = best_pair_ms(
        reps,
        || {
            std::hint::black_box(model.classify_batch(&rows));
        },
        || {
            std::hint::black_box(compiled.classify_batch(&rows));
        },
    );

    let interpreted_single_us = interp_single_ms * 1_000.0 / n as f64;
    let compiled_single_us = compiled_single_ms * 1_000.0 / n as f64;
    let interpreted_batch_rows_per_s = n as f64 / (interp_batch_ms / 1_000.0).max(1e-12);
    let compiled_batch_rows_per_s = n as f64 / (compiled_batch_ms / 1_000.0).max(1e-12);

    ServingReport {
        scale,
        seed,
        reps,
        test_rows: n,
        pool_models: model.pool().models.len(),
        compiled_models: compiled.n_models(),
        n_regions: compiled.n_regions(),
        flat_nodes: compiled.n_nodes(),
        compile_ms,
        interpreted_single_us,
        compiled_single_us,
        single_speedup: interpreted_single_us / compiled_single_us.max(1e-12),
        interpreted_batch_rows_per_s,
        compiled_batch_rows_per_s,
        batch_speedup: compiled_batch_rows_per_s / interpreted_batch_rows_per_s.max(1e-12),
        equivalent,
        note: format!(
            "Adult (sex), whole AdaBoost grid (pool_size 0), k=8; Result sequences \
             compared on {n} clean rows, {} mixed malformed rows, per-row \
             try_classify, and predict_dataset",
            mixed.len()
        ),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_report_is_equivalent_and_serialisable() {
        let report = bench_serving(0.01, 7, 1);
        assert!(report.equivalent, "compiled plane diverged from interpreted");
        assert!(report.test_rows > 0);
        assert!(report.compiled_models >= 1);
        assert!(report.compiled_models <= report.pool_models);
        assert!(report.interpreted_batch_rows_per_s > 0.0);
        assert!(report.compiled_batch_rows_per_s > 0.0);
        assert!(report.compile_ms >= 0.0);
        let json = serde_json::to_string(&report).expect("serialise");
        assert!(json.contains("batch_speedup"));
    }
}
