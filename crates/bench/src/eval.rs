//! The evaluation protocol shared by all experiments (§4.1.3 of the
//! paper): accuracy, global bias, local bias, individual bias, and online
//! runtime, all measured on the held-out test split.
//!
//! **Local bias** needs local regions over the *test* samples. Following
//! the paper's pipeline — which computes clusters once in the framework's
//! offline phase and evaluates every algorithm on those same regions — the
//! harness clusters the **validation** split (non-sensitive projection,
//! LOG-Means k, the exact procedure of FALCC's default clustering
//! component) and assigns each test sample to its nearest centroid. Every
//! algorithm, region-aware or not, is scored against these shared regions.
//! **Individual bias** is `1 − consistency` with k = 5 neighbours in the
//! same projection.

use crate::algos::{fit_algorithm, Algo, PoolSet};
use falcc::FairClassifier;
use falcc_clustering::{log_means, KEstimateConfig, KMeans};
use falcc_dataset::{Dataset, ThreeWaySplit};
use falcc_metrics::individual::consistency;
use falcc_metrics::{accuracy, local_l_hat, FairnessMetric, LossConfig};
use serde::Serialize;
use std::time::Instant;

/// One algorithm's measured quality on one split.
#[derive(Debug, Clone, Serialize)]
pub struct EvalRow {
    /// Algorithm name.
    pub algo: String,
    /// Test accuracy.
    pub accuracy: f64,
    /// Global bias of the chosen fairness metric.
    pub global_bias: f64,
    /// Region-weighted local bias over the reference regions. Following the
    /// paper's §4.1.3 ("the local bias directly uses Eq. 2, with λ = 0.5"),
    /// this is the region-averaged L̂ — it blends per-region inaccuracy and
    /// per-region metric bias equally.
    pub local_bias: f64,
    /// `1 − consistency` (k = 5).
    pub individual_bias: f64,
    /// Offline/fit wall-clock seconds.
    pub fit_seconds: f64,
    /// Online-phase nanoseconds per classified sample.
    pub online_ns_per_sample: f64,
}

/// Builds the shared reference regions: LOG-Means-estimated k-means over
/// the **validation** split's non-sensitive projection (the paper's
/// clustering component, §3.5), then nearest-centroid assignment of every
/// test row. Returns `(region id per test row, number of regions)`.
pub fn reference_regions(split: &ThreeWaySplit, seed: u64) -> (Vec<usize>, usize) {
    let attrs = split.validation.schema().non_sensitive_attrs();
    let projected = split.validation.project(&attrs, None);
    let est = KEstimateConfig::for_rows(projected.n_rows, seed);
    let k = log_means(&projected, &est);
    let km = KMeans::new(k, seed).fit(&projected);
    let n_regions = km.k();
    let regions = (0..split.test.len())
        .map(|i| km.predict(&Dataset::project_row(split.test.row(i), &attrs, None)))
        .collect();
    (regions, n_regions)
}

/// Evaluates a fitted model on the test split against `metric`, using the
/// shared `regions` (from [`reference_regions`]).
pub fn evaluate(
    model: &dyn FairClassifier,
    test: &Dataset,
    metric: FairnessMetric,
    regions: &(Vec<usize>, usize),
    fit_seconds: f64,
) -> EvalRow {
    let start = Instant::now();
    let preds = model.predict_dataset(test);
    let online_ns_per_sample =
        start.elapsed().as_nanos() as f64 / test.len() as f64;

    let y = test.labels();
    let g = test.groups();
    let n_groups = test.group_index().len();
    let acc = accuracy(y, &preds);
    let global = metric.bias(y, &preds, g, n_groups);
    let local = local_l_hat(
        LossConfig::balanced(metric),
        y,
        &preds,
        g,
        n_groups,
        &regions.0,
        regions.1,
    );
    let attrs = test.schema().non_sensitive_attrs();
    let projected = test.project(&attrs, None);
    let individual = 1.0 - consistency(&projected, &preds, 5);

    EvalRow {
        algo: model.name().to_string(),
        accuracy: acc,
        global_bias: global,
        local_bias: local,
        individual_bias: individual,
        fit_seconds,
        online_ns_per_sample,
    }
}

/// Fits and evaluates `algo` on a split. For the FALCES family this
/// evaluates all four variants and reports the one with the least local
/// bias as `FALCES-BEST` (the paper's selection rule), with the fastest
/// variant's runtime available via [`EvalRow::online_ns_per_sample`] of the
/// returned `extras`.
pub fn evaluate_algo(
    algo: Algo,
    split: &ThreeWaySplit,
    pools: &PoolSet,
    metric: FairnessMetric,
    seed: u64,
    regions: &(Vec<usize>, usize),
) -> (EvalRow, Vec<EvalRow>) {
    let fitted = fit_algorithm(algo, split, pools, metric, seed);
    let rows: Vec<EvalRow> = fitted
        .iter()
        .map(|f| evaluate(f.model.as_ref(), &split.test, metric, regions, f.fit_seconds))
        .collect();
    if rows.len() == 1 {
        let mut row = rows.into_iter().next().expect("one row");
        row.algo = algo.name().to_string();
        return (row, Vec::new());
    }
    // FALCES family: BEST by local bias.
    let best_idx = rows
        .iter()
        .enumerate()
        .min_by(|a, b| {
            a.1.local_bias
                .partial_cmp(&b.1.local_bias)
                .expect("finite biases")
        })
        .map(|(i, _)| i)
        .expect("non-empty");
    let mut best = rows[best_idx].clone();
    best.algo = algo.name().to_string();
    (best, rows)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::data::BenchDataset;
    use falcc_dataset::SplitRatios;

    struct Constant(u8);
    impl FairClassifier for Constant {
        fn predict_row(&self, _row: &[f64]) -> u8 {
            self.0
        }
        fn name(&self) -> &str {
            "constant"
        }
    }

    struct Oracle<'a>(&'a Dataset);
    impl FairClassifier for Oracle<'_> {
        fn predict_row(&self, row: &[f64]) -> u8 {
            // Find the row in the dataset and return its label — a perfect
            // (and perfectly unfair-free) predictor for testing.
            for i in 0..self.0.len() {
                if self.0.row(i) == row {
                    return self.0.label(i);
                }
            }
            0
        }
        fn name(&self) -> &str {
            "oracle"
        }
    }

    #[test]
    fn constant_predictor_has_zero_bias_and_base_rate_accuracy() {
        let ds = BenchDataset::Compas.generate(3, 0.05);
        let split = ThreeWaySplit::split(&ds, SplitRatios::PAPER, 3).unwrap();
        let regions = reference_regions(&split, 3);
        let row = evaluate(
            &Constant(1),
            &split.test,
            FairnessMetric::DemographicParity,
            &regions,
            0.0,
        );
        assert!(row.global_bias.abs() < 1e-12, "everyone positive → dp = 0");
        // Local bias is the paper's region-averaged L̂: the metric term is
        // zero for a constant predictor, so only λ·inaccuracy remains.
        let expected_local = 0.5 * (1.0 - split.test.positive_rate());
        assert!((row.local_bias - expected_local).abs() < 1e-9);
        assert!(row.individual_bias.abs() < 1e-12);
        assert!((row.accuracy - split.test.positive_rate()).abs() < 1e-9);
        assert!(row.online_ns_per_sample > 0.0);
    }

    #[test]
    fn oracle_has_perfect_accuracy() {
        let ds = BenchDataset::Social30.generate(4, 0.05);
        let split = ThreeWaySplit::split(&ds, SplitRatios::PAPER, 4).unwrap();
        let regions = reference_regions(&split, 4);
        let row = evaluate(
            &Oracle(&split.test),
            &split.test,
            FairnessMetric::DemographicParity,
            &regions,
            0.0,
        );
        assert!((row.accuracy - 1.0).abs() < 1e-12);
        // Oracle reproduces the biased labels → nonzero bias.
        assert!(row.global_bias > 0.1);
    }

    #[test]
    fn reference_regions_partition_the_test_set() {
        let ds = BenchDataset::Implicit30.generate(5, 0.1);
        let split = ThreeWaySplit::split(&ds, SplitRatios::PAPER, 5).unwrap();
        let (regions, k) = reference_regions(&split, 5);
        assert_eq!(regions.len(), split.test.len());
        assert!(k >= 2);
        assert!(regions.iter().all(|&r| r < k));
        // Determinism.
        let (again, k2) = reference_regions(&split, 5);
        assert_eq!(regions, again);
        assert_eq!(k, k2);
    }

    #[test]
    fn evaluate_algo_selects_falces_best_by_local_bias() {
        let ds = BenchDataset::Compas.generate(6, 0.08);
        let split = ThreeWaySplit::split(&ds, SplitRatios::PAPER, 6).unwrap();
        let pools = PoolSet::build(&split, 6);
        let regions = reference_regions(&split, 6);
        let (best, extras) = evaluate_algo(
            Algo::FalcesBest,
            &split,
            &pools,
            FairnessMetric::DemographicParity,
            6,
            &regions,
        );
        assert_eq!(best.algo, "FALCES-BEST");
        assert_eq!(extras.len(), 4);
        let min_local =
            extras.iter().map(|r| r.local_bias).fold(f64::INFINITY, f64::min);
        assert!((best.local_bias - min_local).abs() < 1e-12);
    }
}
