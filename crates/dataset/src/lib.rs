//! # falcc-dataset
//!
//! Tabular dataset substrate for the FALCC reproduction (Lässig & Herschel,
//! EDBT 2024). The paper evaluates fairness-aware classifiers on labeled
//! tabular data with one or more *sensitive attributes*; this crate provides
//! everything those algorithms consume:
//!
//! * [`Dataset`] — an immutable, row-major table of `f64` features with a
//!   binary label and a [`Schema`] that marks which attributes are sensitive.
//! * [`schema::Schema`] / [`schema::GroupIndex`] — enumeration of sensitive
//!   groups `G` as the cross product of sensitive-attribute domains.
//! * [`split`] — seeded train/validation/test splitting (the paper uses
//!   50/35/15 and four random splits per experiment).
//! * [`stats`] — means, variances, Pearson correlation with a two-sided
//!   t-test significance (used by FALCC's proxy-discrimination mitigation).
//! * [`synthetic`] — the paper's two synthetic generators (*social* and
//!   *implicit* bias at a configurable mean-difference level).
//! * [`real`] — seeded emulators of the five real-world benchmark datasets
//!   (Adult, COMPAS, Communities, ACS2017, Credit Card Clients) matching the
//!   metadata the paper reports in Tab. 4. The original files are not
//!   redistributable/downloadable in this environment; see `DESIGN.md` §3
//!   for why the emulation preserves the relevant behaviour.
//! * [`csv`] — plain CSV import/export so externally obtained copies of the
//!   real datasets can be dropped in.
//!
//! The public surface of this crate is **panic-free for malformed data**:
//! dirty CSV cells, non-finite features, out-of-domain sensitive values,
//! and shape inconsistencies all surface as [`DatasetError`] variants with
//! row/column context, never as a panic. `clippy::unwrap_used` /
//! `clippy::expect_used` are denied in non-test code to keep it that way.

#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

pub mod csv;
pub mod dataset;
pub mod error;
pub mod real;
pub mod schema;
pub mod split;
pub mod stats;
pub mod synthetic;

pub use dataset::{Dataset, DatasetView};
pub use error::DatasetError;
pub use schema::{AttrId, GroupId, GroupIndex, Schema};
pub use split::{SplitRatios, ThreeWaySplit};
