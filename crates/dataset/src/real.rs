//! Seeded emulators of the paper's real-world benchmark datasets.
//!
//! The evaluation (§4.1.1, Tab. 4) uses five public datasets — ACS2017,
//! Adult (with sex, race, and sex+race as sensitive attributes),
//! Communities & Crime, COMPAS, and Credit Card Clients. The raw files are
//! not available in this offline environment, so each dataset is emulated by
//! a seeded generator that reproduces the published metadata: sample count,
//! attribute count, per-group positive rates `P(y=1|s)`, and the group
//! marginal `P(s=1)` — plus realistic internal structure (informative
//! features, proxy features correlated with the sensitive attributes, and
//! label noise). See `DESIGN.md` §3 for the substitution argument.
//!
//! A dataset obtained externally can be dropped in via [`crate::csv`]
//! instead; every algorithm in the workspace only sees the [`Dataset`] API.

use crate::dataset::Dataset;
use crate::error::DatasetError;
use crate::schema::{Schema, SensitiveAttr};
use crate::synthetic::{quantile, std_normal};
use rand::rngs::StdRng;
use rand::Rng;
use rand::SeedableRng;

/// Specification of an emulated real-world dataset.
#[derive(Debug, Clone)]
pub struct RealisticSpec {
    /// Dataset name as used in the paper.
    pub name: &'static str,
    /// Row count at scale 1.0 (paper's Tab. 4).
    pub n: usize,
    /// Total attribute count *including* sensitive columns (Tab. 4).
    pub n_attrs: usize,
    /// Binary sensitive attributes: `(name, P(attr = 1))`. Sensitive
    /// columns are placed first; multi-attribute marginals are sampled
    /// independently.
    pub sensitive: Vec<(&'static str, f64)>,
    /// Target `P(y = 1 | G = g)` per group, indexed by [`crate::GroupId`]
    /// (mixed-radix order, last declared attribute varies fastest).
    pub group_pos_rates: Vec<f64>,
    /// Number of leading feature columns that act as proxies for the
    /// sensitive attributes.
    pub n_proxies: usize,
    /// Mean shift applied to proxy columns per sensitive value.
    pub proxy_strength: f64,
    /// Fraction of labels flipped at random.
    pub label_noise: f64,
    /// Number of latent sub-populations (demographic niches). Real tabular
    /// data is multi-modal; this is what gives *local* regions meaning.
    pub n_latent_clusters: usize,
    /// How far apart the latent cluster centres sit (in feature std-devs).
    pub cluster_separation: f64,
    /// Per-cluster deviation of the group positive-rate gap: cluster `c`
    /// shifts the favored/unfavored rates by `±spread·dir_c` with
    /// alternating direction, so *global* rates still match Tab. 4 while
    /// individual regions are much more (or oppositely) biased — the
    /// paper's Fig. 1 situation.
    pub cluster_bias_spread: f64,
}

impl RealisticSpec {
    /// Number of non-sensitive feature columns.
    pub fn n_features(&self) -> usize {
        self.n_attrs - self.sensitive.len()
    }

    /// Generates the dataset deterministically for `seed`, scaling the row
    /// count by `scale` (clamped to ≥ 64 rows so splits stay meaningful).
    ///
    /// # Errors
    /// Propagates schema/dataset construction failures.
    pub fn generate(&self, seed: u64, scale: f64) -> Result<Dataset, DatasetError> {
        let n = ((self.n as f64 * scale.clamp(0.001, 1.0)).round() as usize).max(64);
        let n_sens = self.sensitive.len();
        let n_feat = self.n_features();
        let n_prox = self.n_proxies.min(n_feat);
        let mut rng = StdRng::seed_from_u64(seed ^ fxhash_str(self.name));

        // Sensitive attributes.
        let mut sens = vec![0u8; n * n_sens];
        for i in 0..n {
            for (k, (_, p)) in self.sensitive.iter().enumerate() {
                sens[i * n_sens + k] = u8::from(rng.gen_bool(*p));
            }
        }

        // Concept weights: informative features carry most of the signal,
        // proxies some, trailing "noise" columns very little.
        let weights: Vec<f64> = (0..n_feat)
            .map(|j| {
                if j < n_prox {
                    rng.gen_range(0.3..0.7)
                } else if j < n_feat.saturating_sub(n_feat / 4) {
                    rng.gen_range(0.4..1.0)
                } else {
                    0.0
                }
            })
            .collect();

        // Latent sub-populations: each row belongs to one of
        // `n_latent_clusters` niches with its own feature centre.
        let n_latent = self.n_latent_clusters.max(1);
        let centres: Vec<f64> = (0..n_latent * n_feat)
            .map(|_| std_normal(&mut rng) * self.cluster_separation)
            .collect();
        let latent: Vec<usize> = (0..n).map(|_| rng.gen_range(0..n_latent)).collect();

        // Features: niche centre + standard normal, with proxy columns
        // shifted by the sensitive attribute they track (round-robin over
        // sensitive attrs). The trailing "noise" quarter of the columns is
        // genuinely uninformative — no niche offset, no label weight — as
        // real tabular data carries plenty of columns that only dilute
        // distance-based methods.
        let noise_start = n_feat.saturating_sub(n_feat / 4);
        let mut feats = vec![0.0f64; n * n_feat];
        for i in 0..n {
            for j in 0..n_feat {
                let mut v = std_normal(&mut rng);
                if j < noise_start {
                    v += centres[latent[i] * n_feat + j];
                }
                if j < n_prox {
                    let k = j % n_sens;
                    let dir = if sens[i * n_sens + k] == 1 { 1.0 } else { -1.0 };
                    v += dir * self.proxy_strength;
                }
                feats[i * n_feat + j] = v;
            }
        }

        // Pairwise interactions make the concept non-linear — real tabular
        // targets are not linear in their features, and a purely linear
        // score would hand linear models an unrealistic advantage over the
        // tree ensembles the paper's pipeline trains.
        let n_inter = (n_feat / 3).clamp(1, 6);
        let informative_end = n_feat.saturating_sub(n_feat / 4).max(1);
        let interactions: Vec<(usize, usize, f64)> = (0..n_inter)
            .map(|_| {
                (
                    rng.gen_range(0..informative_end),
                    rng.gen_range(0..informative_end),
                    rng.gen_range(0.5..1.2),
                )
            })
            .collect();

        // Scores and group membership.
        let scores: Vec<f64> = (0..n)
            .map(|i| {
                let row = &feats[i * n_feat..(i + 1) * n_feat];
                let linear: f64 = row.iter().zip(&weights).map(|(x, w)| x * w).sum();
                let nonlinear: f64 = interactions
                    .iter()
                    .map(|&(a, b, w)| w * row[a] * row[b])
                    .sum();
                linear + nonlinear + std_normal(&mut rng) * 0.6
            })
            .collect();
        let group_of = |i: usize| -> usize {
            let mut g = 0usize;
            for k in 0..n_sens {
                g = g * 2 + sens[i * n_sens + k] as usize;
            }
            g
        };

        // Per-group thresholds hit the target positive rates exactly
        // (modulo label noise), emulating each dataset's direct bias.
        let n_groups = 1usize << n_sens;
        assert_eq!(
            self.group_pos_rates.len(),
            n_groups,
            "{}: need one target rate per group",
            self.name
        );
        // Favored groups get a positive cluster offset where dir_c = +1 and
        // a negative one where dir_c = −1 (and vice versa for unfavored
        // groups), so local bias varies strongly across niches while global
        // rates stay on target.
        let median_rate = {
            let mut r = self.group_pos_rates.clone();
            r.sort_by(f64::total_cmp);
            r[r.len() / 2]
        };
        // Balanced ±1 directions (odd counts give the last niche 0) so the
        // offsets cancel globally.
        let dir_of_cluster = |c: usize| -> f64 {
            if n_latent == 1 || (n_latent % 2 == 1 && c == n_latent - 1) {
                0.0
            } else if c.is_multiple_of(2) {
                1.0
            } else {
                -1.0
            }
        };
        let mut labels = vec![0u8; n];
        for g in 0..n_groups {
            // Label noise p maps a pre-noise rate r to r(1−p) + (1−r)p;
            // invert so the *observed* rate matches Tab. 4.
            let target = self.group_pos_rates[g];
            let p = self.label_noise;
            let pre_noise = if p < 0.5 {
                ((target - p) / (1.0 - 2.0 * p)).clamp(0.0, 1.0)
            } else {
                target
            };
            let sign_g = if target >= median_rate { 1.0 } else { -1.0 };
            for c in 0..n_latent {
                let mut cell: Vec<f64> = (0..n)
                    .filter(|&i| group_of(i) == g && latent[i] == c)
                    .map(|i| scores[i])
                    .collect();
                if cell.is_empty() {
                    continue;
                }
                let cell_target = (pre_noise
                    + sign_g * dir_of_cluster(c) * self.cluster_bias_spread)
                    .clamp(0.02, 0.98);
                let thr = quantile(&mut cell, 1.0 - cell_target);
                for i in 0..n {
                    if group_of(i) == g && latent[i] == c && scores[i] > thr {
                        labels[i] = 1;
                    }
                }
            }
        }
        for l in labels.iter_mut() {
            if rng.gen_bool(self.label_noise) {
                *l ^= 1;
            }
        }

        // Assemble schema and rows: [sens..., features...].
        let mut names: Vec<String> =
            self.sensitive.iter().map(|(nm, _)| (*nm).to_string()).collect();
        for j in 0..n_feat {
            if j < n_prox {
                names.push(format!("proxy{j}"));
            } else {
                names.push(format!("x{j}"));
            }
        }
        let sens_decl: Vec<SensitiveAttr> = (0..n_sens)
            .map(|k| SensitiveAttr { attr: k, domain: vec![0.0, 1.0] })
            .collect();
        let schema = Schema::new(names, sens_decl, "label")?;

        let mut flat = Vec::with_capacity(n * self.n_attrs);
        for i in 0..n {
            for k in 0..n_sens {
                flat.push(sens[i * n_sens + k] as f64);
            }
            flat.extend_from_slice(&feats[i * n_feat..(i + 1) * n_feat]);
        }
        Dataset::from_flat(schema, flat, labels)
    }
}

/// Deterministic string hash for seed derivation (FNV-1a).
fn fxhash_str(s: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in s.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// ACS2017 (US Census Demographic Data), race sensitive. Tab. 4 row 1.
pub fn acs2017() -> RealisticSpec {
    RealisticSpec {
        name: "ACS2017",
        n: 72_000,
        n_attrs: 23,
        sensitive: vec![("race", 0.588)],
        group_pos_rates: vec![0.282, 0.496],
        n_proxies: 4,
        proxy_strength: 0.8,
        label_noise: 0.03,
        n_latent_clusters: 5,
        cluster_separation: 1.5,
        cluster_bias_spread: 0.15,
    }
}

/// Adult Data Set with `sex` sensitive. Tab. 4 row 2.
pub fn adult_sex() -> RealisticSpec {
    RealisticSpec {
        name: "Adult (sex)",
        n: 46_000,
        n_attrs: 21,
        sensitive: vec![("sex", 0.676)],
        group_pos_rates: vec![0.114, 0.313],
        n_proxies: 3,
        proxy_strength: 0.6,
        label_noise: 0.04,
        n_latent_clusters: 5,
        cluster_separation: 1.5,
        cluster_bias_spread: 0.15,
    }
}

/// Adult Data Set with `race` sensitive. Tab. 4 row 3.
pub fn adult_race() -> RealisticSpec {
    RealisticSpec {
        name: "Adult (race)",
        n: 46_000,
        n_attrs: 21,
        sensitive: vec![("race", 0.857)],
        group_pos_rates: vec![0.160, 0.263],
        n_proxies: 3,
        proxy_strength: 0.6,
        label_noise: 0.04,
        n_latent_clusters: 5,
        cluster_separation: 1.5,
        cluster_bias_spread: 0.15,
    }
}

/// Adult Data Set with both `sex` and `race` sensitive → 4 groups.
/// Tab. 4 row 4: `P(y=1)` per group (sex,race) = (0,0) 7.6%, (0,1) 12.3%,
/// (1,0) 22.6%, (1,1) 32.4%.
pub fn adult_sex_race() -> RealisticSpec {
    RealisticSpec {
        name: "Adult (sex, race)",
        n: 46_000,
        n_attrs: 21,
        sensitive: vec![("sex", 0.676), ("race", 0.857)],
        group_pos_rates: vec![0.076, 0.123, 0.226, 0.324],
        n_proxies: 4,
        proxy_strength: 0.6,
        label_noise: 0.04,
        n_latent_clusters: 5,
        cluster_separation: 1.5,
        cluster_bias_spread: 0.15,
    }
}

/// Communities & Crime, race sensitive. Tab. 4 row 5. Few samples, many
/// attributes, strong proxy correlations — the stress case for proxy
/// mitigation.
pub fn communities() -> RealisticSpec {
    RealisticSpec {
        name: "Communities",
        n: 2_000,
        n_attrs: 91,
        sensitive: vec![("race", 0.514)],
        group_pos_rates: vec![0.626, 0.194],
        n_proxies: 8,
        proxy_strength: 1.0,
        label_noise: 0.02,
        n_latent_clusters: 5,
        cluster_separation: 1.5,
        cluster_bias_spread: 0.15,
    }
}

/// COMPAS recidivism, race sensitive. Tab. 4 row 6.
pub fn compas() -> RealisticSpec {
    RealisticSpec {
        name: "COMPAS",
        n: 6_100,
        n_attrs: 7,
        sensitive: vec![("race", 0.401)],
        group_pos_rates: vec![0.502, 0.385],
        n_proxies: 2,
        proxy_strength: 0.5,
        label_noise: 0.08,
        n_latent_clusters: 5,
        cluster_separation: 1.5,
        cluster_bias_spread: 0.15,
    }
}

/// Credit Card Clients, sex sensitive. Tab. 4 row 7.
pub fn credit_card() -> RealisticSpec {
    RealisticSpec {
        name: "Credit Card Clients",
        n: 30_000,
        n_attrs: 23,
        sensitive: vec![("sex", 0.604)],
        group_pos_rates: vec![0.242, 0.208],
        n_proxies: 2,
        proxy_strength: 0.3,
        label_noise: 0.05,
        n_latent_clusters: 5,
        cluster_separation: 1.5,
        cluster_bias_spread: 0.15,
    }
}

/// All seven real-dataset configurations, in the paper's Tab. 4 order.
pub fn all_specs() -> Vec<RealisticSpec> {
    vec![
        acs2017(),
        adult_sex(),
        adult_race(),
        adult_sex_race(),
        communities(),
        compas(),
        credit_card(),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats::pearson;

    #[test]
    fn metadata_matches_tab4_at_full_scale() {
        // Use compas (small) at full scale; rates within sampling tolerance
        // + label noise distortion. Label noise p moves a rate r to
        // r(1-p) + (1-r)p; compensate in the expectation.
        let spec = compas();
        let ds = spec.generate(11, 1.0).unwrap();
        assert_eq!(ds.len(), 6_100);
        assert_eq!(ds.n_attrs(), 7);
        // Thresholds are noise-compensated, so the observed rates should
        // match Tab. 4 directly.
        let rates = ds.group_positive_rates();
        assert!((rates[0].unwrap() - 0.502).abs() < 0.03);
        assert!((rates[1].unwrap() - 0.385).abs() < 0.03);
        let counts = ds.group_counts();
        let p1 = counts[1] as f64 / ds.len() as f64;
        assert!((p1 - 0.401).abs() < 0.03, "P(s=1) = {p1}");
    }

    #[test]
    fn scaling_reduces_rows_but_keeps_structure() {
        let spec = adult_sex();
        let ds = spec.generate(3, 0.02).unwrap();
        assert!(ds.len() >= 64 && ds.len() < 2_000);
        assert_eq!(ds.n_attrs(), 21);
        assert_eq!(ds.group_index().len(), 2);
    }

    #[test]
    fn four_group_adult_has_expected_groups_and_ordering() {
        let spec = adult_sex_race();
        // Scale 0.2 keeps enough rows per group that the rate ordering
        // is outside sampling noise.
        let ds = spec.generate(7, 0.2).unwrap();
        assert_eq!(ds.group_index().len(), 4);
        let rates = ds.group_positive_rates();
        // Ordering of rates should be preserved: (1,1) highest, (0,0) lowest.
        let r = |i: usize| rates[i].unwrap();
        assert!(r(3) > r(2) && r(2) > r(1) && r(1) > r(0), "rates {rates:?}");
    }

    #[test]
    fn proxies_correlate_with_their_sensitive_attribute() {
        let spec = communities();
        let ds = spec.generate(5, 1.0).unwrap();
        let s = ds.column(0);
        let r_proxy = pearson(&s, &ds.column(1)).abs(); // proxy0
        let r_clean = pearson(&s, &ds.column(40)).abs();
        assert!(r_proxy > 0.35, "proxy correlation {r_proxy}");
        assert!(r_clean < 0.12, "clean correlation {r_clean}");
    }

    #[test]
    fn deterministic_per_seed_and_name() {
        let a = compas().generate(9, 0.1).unwrap();
        let b = compas().generate(9, 0.1).unwrap();
        assert_eq!(a.flat(), b.flat());
        // Different dataset, same seed → different data (name-derived seed).
        let c = credit_card().generate(9, 0.1).unwrap();
        assert_ne!(a.labels().len(), 0);
        assert_ne!(a.len(), c.len());
    }

    #[test]
    fn all_specs_generate_without_error() {
        for spec in all_specs() {
            let ds = spec.generate(1, 0.01).unwrap();
            assert_eq!(ds.n_attrs(), spec.n_attrs, "{}", spec.name);
            assert_eq!(
                ds.group_index().len(),
                1 << spec.sensitive.len(),
                "{}",
                spec.name
            );
        }
    }
}
