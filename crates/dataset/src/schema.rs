//! Schema: attribute names, sensitive-attribute declarations, and the
//! enumeration of sensitive groups.
//!
//! FALCC supports *multiple, non-binary* sensitive attributes. Given
//! `Sens = {A_1, …, A_s}`, the sensitive groups are the cross product
//! `G = dom(A_1) × … × dom(A_s)` (paper §3.1). [`GroupIndex`] materialises
//! that cross product and maps each sample to its [`GroupId`].

use crate::error::DatasetError;
use serde::{Deserialize, Serialize};

/// Index of an attribute (column) within a dataset.
pub type AttrId = usize;

/// Dense identifier of a sensitive group, in `0..GroupIndex::len()`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct GroupId(pub u16);

impl GroupId {
    /// The group id as an index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl std::fmt::Display for GroupId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "g{}", self.0)
    }
}

/// Declaration of a single sensitive attribute: which column it lives in and
/// the categorical values it may take (stored as `f64` codes, e.g. `0.0`,
/// `1.0`, `2.0`).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SensitiveAttr {
    /// Column index of the attribute.
    pub attr: AttrId,
    /// The declared domain. Order is significant: it determines group
    /// enumeration order.
    pub domain: Vec<f64>,
}

/// Schema of a labeled dataset: column names, sensitive attribute
/// declarations, and the label name.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Schema {
    attr_names: Vec<String>,
    sensitive: Vec<SensitiveAttr>,
    label_name: String,
}

impl Schema {
    /// Builds a schema. `sensitive` lists, per sensitive attribute, its
    /// column index and categorical domain.
    ///
    /// # Errors
    /// Returns [`DatasetError::UnknownAttribute`] if a sensitive attribute
    /// index is out of range, and [`DatasetError::ShapeMismatch`] if a
    /// domain is empty or an attribute is declared sensitive twice.
    pub fn new(
        attr_names: Vec<String>,
        sensitive: Vec<SensitiveAttr>,
        label_name: impl Into<String>,
    ) -> Result<Self, DatasetError> {
        let mut seen = std::collections::HashSet::new();
        for s in &sensitive {
            if s.attr >= attr_names.len() {
                return Err(DatasetError::UnknownAttribute {
                    name: format!("sensitive column #{}", s.attr),
                });
            }
            if s.domain.is_empty() {
                return Err(DatasetError::ShapeMismatch {
                    detail: format!("empty domain for sensitive attribute {}", attr_names[s.attr]),
                });
            }
            if !seen.insert(s.attr) {
                return Err(DatasetError::ShapeMismatch {
                    detail: format!("attribute {} declared sensitive twice", attr_names[s.attr]),
                });
            }
        }
        Ok(Self { attr_names, sensitive, label_name: label_name.into() })
    }

    /// Convenience constructor for the common case of a single binary
    /// sensitive attribute with domain `{0, 1}`.
    pub fn with_binary_sensitive(
        attr_names: Vec<String>,
        sensitive_attr: AttrId,
        label_name: impl Into<String>,
    ) -> Result<Self, DatasetError> {
        Self::new(
            attr_names,
            vec![SensitiveAttr { attr: sensitive_attr, domain: vec![0.0, 1.0] }],
            label_name,
        )
    }

    /// Number of attributes (columns), including sensitive ones.
    #[inline]
    pub fn n_attrs(&self) -> usize {
        self.attr_names.len()
    }

    /// All attribute names in column order.
    #[inline]
    pub fn attr_names(&self) -> &[String] {
        &self.attr_names
    }

    /// Name of attribute `a`.
    #[inline]
    pub fn attr_name(&self, a: AttrId) -> &str {
        &self.attr_names[a]
    }

    /// The label column's name.
    #[inline]
    pub fn label_name(&self) -> &str {
        &self.label_name
    }

    /// Sensitive attribute declarations, in declaration order.
    #[inline]
    pub fn sensitive(&self) -> &[SensitiveAttr] {
        &self.sensitive
    }

    /// Column indices of the sensitive attributes.
    pub fn sensitive_attrs(&self) -> Vec<AttrId> {
        self.sensitive.iter().map(|s| s.attr).collect()
    }

    /// `true` if column `a` is a sensitive attribute.
    pub fn is_sensitive(&self, a: AttrId) -> bool {
        self.sensitive.iter().any(|s| s.attr == a)
    }

    /// Column indices of non-sensitive attributes, in order. These are the
    /// columns FALCC clusters on (`Π_{R∖Sens}`, paper §3.5).
    pub fn non_sensitive_attrs(&self) -> Vec<AttrId> {
        (0..self.n_attrs()).filter(|a| !self.is_sensitive(*a)).collect()
    }

    /// Builds the group index enumerating `G`.
    pub fn group_index(&self) -> GroupIndex {
        GroupIndex::new(self.sensitive.clone())
    }
}

/// Enumeration of the sensitive groups `G = dom(A_1) × … × dom(A_s)`.
///
/// Groups are numbered in mixed-radix order: the *last* declared sensitive
/// attribute varies fastest. With a single binary attribute this yields
/// `g0 = {0}` (favored in the paper's running example) and `g1 = {1}`.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct GroupIndex {
    sensitive: Vec<SensitiveAttr>,
    n_groups: usize,
}

impl GroupIndex {
    fn new(sensitive: Vec<SensitiveAttr>) -> Self {
        let n_groups = sensitive.iter().map(|s| s.domain.len()).product::<usize>().max(1);
        Self { sensitive, n_groups }
    }

    /// Number of groups `|G|`. At least 1 (the trivial group when no
    /// sensitive attribute is declared).
    #[inline]
    pub fn len(&self) -> usize {
        self.n_groups
    }

    /// `true` if there is only the trivial group.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.n_groups <= 1
    }

    /// All group ids.
    pub fn ids(&self) -> impl Iterator<Item = GroupId> {
        (0..self.n_groups as u16).map(GroupId)
    }

    /// Maps a full feature row to its group id.
    ///
    /// # Errors
    /// [`DatasetError::ValueOutOfDomain`] if a sensitive value is not in the
    /// declared domain (compared with exact equality after rounding to the
    /// nearest domain member within `1e-9`).
    pub fn group_of(&self, row: &[f64]) -> Result<GroupId, DatasetError> {
        let mut id = 0usize;
        for s in &self.sensitive {
            let v = row[s.attr];
            let pos = s
                .domain
                .iter()
                .position(|d| (d - v).abs() < 1e-9)
                .ok_or_else(|| DatasetError::ValueOutOfDomain {
                    attr: format!("col#{}", s.attr),
                    value: v,
                })?;
            id = id * s.domain.len() + pos;
        }
        Ok(GroupId(id as u16))
    }

    /// The sensitive attribute values that define group `g`, in declaration
    /// order (inverse of [`Self::group_of`]).
    pub fn values_of(&self, g: GroupId) -> Vec<f64> {
        let mut id = g.index();
        let mut rev = Vec::with_capacity(self.sensitive.len());
        for s in self.sensitive.iter().rev() {
            let len = s.domain.len();
            rev.push(s.domain[id % len]);
            id /= len;
        }
        rev.reverse();
        rev
    }

    /// The sensitive attribute declarations this index enumerates.
    #[inline]
    pub fn sensitive(&self) -> &[SensitiveAttr] {
        &self.sensitive
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn names(n: usize) -> Vec<String> {
        (0..n).map(|i| format!("a{i}")).collect()
    }

    #[test]
    fn binary_schema_has_two_groups() {
        let s = Schema::with_binary_sensitive(names(4), 1, "y").unwrap();
        let gi = s.group_index();
        assert_eq!(gi.len(), 2);
        assert_eq!(gi.group_of(&[9.0, 0.0, 1.0, 2.0]).unwrap(), GroupId(0));
        assert_eq!(gi.group_of(&[9.0, 1.0, 1.0, 2.0]).unwrap(), GroupId(1));
    }

    #[test]
    fn cross_product_enumeration_matches_mixed_radix() {
        // sex ∈ {0,1}, race ∈ {0,1,2} → 6 groups, race varies fastest.
        let s = Schema::new(
            names(3),
            vec![
                SensitiveAttr { attr: 0, domain: vec![0.0, 1.0] },
                SensitiveAttr { attr: 2, domain: vec![0.0, 1.0, 2.0] },
            ],
            "y",
        )
        .unwrap();
        let gi = s.group_index();
        assert_eq!(gi.len(), 6);
        assert_eq!(gi.group_of(&[0.0, 5.0, 0.0]).unwrap(), GroupId(0));
        assert_eq!(gi.group_of(&[0.0, 5.0, 2.0]).unwrap(), GroupId(2));
        assert_eq!(gi.group_of(&[1.0, 5.0, 1.0]).unwrap(), GroupId(4));
    }

    #[test]
    fn values_of_inverts_group_of() {
        let s = Schema::new(
            names(3),
            vec![
                SensitiveAttr { attr: 0, domain: vec![0.0, 1.0] },
                SensitiveAttr { attr: 2, domain: vec![0.0, 1.0, 2.0] },
            ],
            "y",
        )
        .unwrap();
        let gi = s.group_index();
        for g in gi.ids() {
            let vals = gi.values_of(g);
            let row = [vals[0], 7.0, vals[1]];
            assert_eq!(gi.group_of(&row).unwrap(), g);
        }
    }

    #[test]
    fn out_of_domain_is_an_error() {
        let s = Schema::with_binary_sensitive(names(2), 0, "y").unwrap();
        let gi = s.group_index();
        assert!(gi.group_of(&[3.0, 0.0]).is_err());
    }

    #[test]
    fn non_sensitive_attrs_excludes_sensitive() {
        let s = Schema::with_binary_sensitive(names(4), 2, "y").unwrap();
        assert_eq!(s.non_sensitive_attrs(), vec![0, 1, 3]);
        assert!(s.is_sensitive(2));
        assert!(!s.is_sensitive(0));
    }

    #[test]
    fn invalid_schemas_are_rejected() {
        assert!(Schema::with_binary_sensitive(names(2), 5, "y").is_err());
        assert!(Schema::new(
            names(2),
            vec![SensitiveAttr { attr: 0, domain: vec![] }],
            "y"
        )
        .is_err());
        assert!(Schema::new(
            names(2),
            vec![
                SensitiveAttr { attr: 0, domain: vec![0.0, 1.0] },
                SensitiveAttr { attr: 0, domain: vec![0.0, 1.0] }
            ],
            "y"
        )
        .is_err());
    }

    #[test]
    fn trivial_group_index_when_no_sensitive() {
        let s = Schema::new(names(2), vec![], "y").unwrap();
        let gi = s.group_index();
        assert_eq!(gi.len(), 1);
        assert_eq!(gi.group_of(&[1.0, 2.0]).unwrap(), GroupId(0));
    }
}
