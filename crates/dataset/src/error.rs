//! Error type shared across the dataset crate.

use std::fmt;

/// Errors raised while constructing, splitting, or parsing datasets.
#[derive(Debug)]
pub enum DatasetError {
    /// Row/label/feature dimensions do not line up.
    ShapeMismatch {
        /// Human-readable description of the inconsistency.
        detail: String,
    },
    /// A schema referenced an attribute that does not exist.
    UnknownAttribute {
        /// The offending attribute name.
        name: String,
    },
    /// A sensitive attribute held a value outside its declared domain.
    ValueOutOfDomain {
        /// Attribute name.
        attr: String,
        /// The value encountered.
        value: f64,
    },
    /// Split ratios were invalid (non-positive or not summing to 1).
    InvalidSplit {
        /// Description of the invalid configuration.
        detail: String,
    },
    /// The dataset was empty where a non-empty one is required.
    Empty,
    /// CSV parsing failed at row granularity (arity, missing columns).
    Csv {
        /// 1-based line number of the failure.
        line: usize,
        /// Description of the parse failure.
        detail: String,
    },
    /// CSV parsing failed at cell granularity (non-numeric or non-finite
    /// value), with full row/column context.
    CsvCell {
        /// 1-based line number of the failure.
        line: usize,
        /// 0-based column index of the offending cell.
        column: usize,
        /// Description of the bad value.
        detail: String,
    },
    /// A feature value was NaN or infinite — poison for every downstream
    /// consumer (tree splits, kd-tree ordering, k-means), so construction
    /// rejects it with the exact coordinates.
    NonFiniteFeature {
        /// 0-based row index.
        row: usize,
        /// 0-based column index.
        column: usize,
    },
    /// Underlying I/O failure.
    Io(std::io::Error),
}

impl fmt::Display for DatasetError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::ShapeMismatch { detail } => write!(f, "shape mismatch: {detail}"),
            Self::UnknownAttribute { name } => write!(f, "unknown attribute: {name}"),
            Self::ValueOutOfDomain { attr, value } => {
                write!(f, "value {value} outside the domain of sensitive attribute {attr}")
            }
            Self::InvalidSplit { detail } => write!(f, "invalid split: {detail}"),
            Self::Empty => write!(f, "dataset is empty"),
            Self::Csv { line, detail } => write!(f, "csv parse error on line {line}: {detail}"),
            Self::CsvCell { line, column, detail } => {
                write!(f, "csv parse error on line {line}, column {column}: {detail}")
            }
            Self::NonFiniteFeature { row, column } => {
                write!(f, "non-finite feature value at row {row}, column {column}")
            }
            Self::Io(e) => write!(f, "i/o error: {e}"),
        }
    }
}

impl std::error::Error for DatasetError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Self::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for DatasetError {
    fn from(e: std::io::Error) -> Self {
        Self::Io(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = DatasetError::ShapeMismatch { detail: "3 rows, 2 labels".into() };
        assert!(e.to_string().contains("3 rows"));
        let e = DatasetError::Csv { line: 7, detail: "bad float".into() };
        assert!(e.to_string().contains("line 7"));
        let e = DatasetError::CsvCell { line: 3, column: 2, detail: "NaN".into() };
        assert!(e.to_string().contains("line 3") && e.to_string().contains("column 2"));
        let e = DatasetError::NonFiniteFeature { row: 4, column: 1 };
        assert!(e.to_string().contains("row 4") && e.to_string().contains("column 1"));
    }

    #[test]
    fn io_error_round_trips_source() {
        use std::error::Error as _;
        let e: DatasetError = std::io::Error::new(std::io::ErrorKind::NotFound, "gone").into();
        assert!(e.source().is_some());
    }
}
