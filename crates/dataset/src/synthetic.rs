//! Synthetic fairness-benchmark generators.
//!
//! The paper (§4.1.1) evaluates on two synthetic datasets of ~14k tuples and
//! 8 features, each exhibiting one kind of bias at a configurable
//! mean-difference level (30% by default, i.e. positive rates 35%/65% for
//! the unfavored/favored group):
//!
//! * **Social (direct) bias** — the label depends on the sensitive attribute
//!   itself: two otherwise identical individuals from different groups face
//!   different decision thresholds.
//! * **Implicit (indirect) bias** — the sensitive attribute has *no* direct
//!   influence on the label, but it shifts several *proxy* features that do
//!   feed the label, creating proxy discrimination (the target of FALCC's
//!   mitigation component, §3.4 / Fig. 5).
//!
//! Labels are derived from a linear score over the informative features so
//! the concept is learnable by the tree ensembles under test; group rates
//! are hit exactly (social) or to a small tolerance via a bisection on the
//! proxy shift (implicit).

use crate::dataset::Dataset;
use crate::error::DatasetError;
use crate::schema::Schema;
use rand::rngs::StdRng;
use rand::Rng;
use rand::SeedableRng;

/// Which bias mechanism a synthetic dataset exhibits.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BiasKind {
    /// Direct bias: per-group decision thresholds.
    Social,
    /// Indirect bias: group-shifted proxy features feeding a global
    /// threshold.
    Implicit,
}

/// Configuration for the synthetic generators.
#[derive(Debug, Clone)]
pub struct SyntheticConfig {
    /// Number of rows (paper: ~14 000).
    pub n: usize,
    /// Number of non-sensitive features (paper: 8).
    pub n_features: usize,
    /// How many of the features act as proxies (implicit bias only).
    pub n_proxies: usize,
    /// Target mean difference of positive rates between the groups
    /// (e.g. 0.30 → 35% vs 65%).
    pub bias: f64,
    /// Overall positive rate; the two group rates are `base_rate ± bias/2`.
    pub base_rate: f64,
    /// `P(s = 1)` — fraction of the protected group.
    pub p_protected: f64,
    /// Bias mechanism.
    pub kind: BiasKind,
    /// Fraction of labels flipped uniformly at random (irreducible noise).
    pub label_noise: f64,
}

impl SyntheticConfig {
    /// The paper's *social30* dataset.
    pub fn social(bias: f64) -> Self {
        Self {
            n: 14_000,
            n_features: 8,
            n_proxies: 0,
            bias,
            base_rate: 0.5,
            p_protected: 0.5,
            kind: BiasKind::Social,
            label_noise: 0.05,
        }
    }

    /// The paper's *implicit30* dataset.
    pub fn implicit(bias: f64) -> Self {
        Self {
            n: 14_000,
            n_features: 8,
            n_proxies: 3,
            bias,
            base_rate: 0.5,
            p_protected: 0.5,
            kind: BiasKind::Implicit,
            label_noise: 0.05,
        }
    }
}

/// Samples a standard normal via Box–Muller (avoids a distribution-crate
/// dependency).
pub(crate) fn std_normal(rng: &mut StdRng) -> f64 {
    let u1: f64 = rng.gen_range(f64::EPSILON..1.0);
    let u2: f64 = rng.gen_range(0.0..1.0);
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

/// The value at quantile `q` (0..1) of `values` (interpolation-free,
/// nearest-rank). Used to turn target positive rates into score thresholds.
pub(crate) fn quantile(values: &mut [f64], q: f64) -> f64 {
    assert!(!values.is_empty());
    values.sort_by(f64::total_cmp);
    let rank = ((values.len() as f64 - 1.0) * q.clamp(0.0, 1.0)).round() as usize;
    values[rank]
}

/// Generates a synthetic dataset according to `cfg`, deterministically per
/// `seed`. The sensitive attribute is column 0 with domain `{0, 1}`
/// (`1` = protected/unfavored group, as in the paper's Tab. 2).
///
/// # Errors
/// Propagates schema/dataset construction failures (e.g. `n == 0`).
pub fn generate(cfg: &SyntheticConfig, seed: u64) -> Result<Dataset, DatasetError> {
    if cfg.n == 0 {
        return Err(DatasetError::Empty);
    }
    let mut rng = StdRng::seed_from_u64(seed ^ 0x5f3c_9a1b_7e24_d680);
    let d = cfg.n_features;
    let n_prox = cfg.n_proxies.min(d);

    // Fixed, seed-dependent concept weights; proxies are genuinely
    // informative (that is what makes them *proxies* rather than mere
    // correlates) but carry less individual weight — the bisection below
    // then needs a visible group shift to reach the target bias, giving
    // the proxies the strong correlation with `s` the paper's implicit
    // dataset exhibits.
    let weights: Vec<f64> = (0..d)
        .map(|j| {
            if j < cfg.n_proxies.min(d) && cfg.kind == BiasKind::Implicit {
                rng.gen_range(0.15..0.30)
            } else {
                rng.gen_range(0.4..1.0)
            }
        })
        .collect();

    let mut sens = Vec::with_capacity(cfg.n);
    let mut base_features = vec![0.0f64; cfg.n * d];
    for i in 0..cfg.n {
        let s = u8::from(rng.gen_bool(cfg.p_protected));
        sens.push(s);
        for j in 0..d {
            base_features[i * d + j] = std_normal(&mut rng);
        }
    }
    let noise: Vec<f64> = (0..cfg.n).map(|_| std_normal(&mut rng) * 0.5).collect();

    // Helper: proxy-shifted features and the resulting score per row.
    // Protected rows (s = 1) have proxies shifted *down* by `delta`, the
    // favored group up, so the proxy is informative about s.
    let score_with_delta = |delta: f64, out_feats: Option<&mut Vec<f64>>| -> Vec<f64> {
        let mut feats = base_features.clone();
        for i in 0..cfg.n {
            let dir = if sens[i] == 1 { -1.0 } else { 1.0 };
            for j in 0..n_prox {
                feats[i * d + j] += dir * delta;
            }
        }
        let scores: Vec<f64> = (0..cfg.n)
            .map(|i| {
                let row = &feats[i * d..(i + 1) * d];
                row.iter().zip(&weights).map(|(x, w)| x * w).sum::<f64>() + noise[i]
            })
            .collect();
        if let Some(out) = out_feats {
            *out = feats;
        }
        scores
    };

    // Label noise p pulls every rate toward 0.5; widen the pre-noise
    // targets so the *observed* mean difference matches `cfg.bias`.
    let noise_comp = if cfg.label_noise < 0.5 { 1.0 - 2.0 * cfg.label_noise } else { 1.0 };
    let pre_bias = (cfg.bias / noise_comp).min(2.0 * cfg.base_rate.min(1.0 - cfg.base_rate));
    let rate_protected = (cfg.base_rate - pre_bias / 2.0).clamp(0.01, 0.99);
    let rate_favored = (cfg.base_rate + pre_bias / 2.0).clamp(0.01, 0.99);

    let (features, labels) = match cfg.kind {
        BiasKind::Social => {
            // No proxy shift; per-group thresholds hit the rates exactly.
            let scores = score_with_delta(0.0, None);
            let mut labels = vec![0u8; cfg.n];
            for (target, group) in [(rate_favored, 0u8), (rate_protected, 1u8)] {
                let mut group_scores: Vec<f64> = (0..cfg.n)
                    .filter(|&i| sens[i] == group)
                    .map(|i| scores[i])
                    .collect();
                if group_scores.is_empty() {
                    continue;
                }
                let thr = quantile(&mut group_scores, 1.0 - target);
                for i in 0..cfg.n {
                    if sens[i] == group && scores[i] > thr {
                        labels[i] = 1;
                    }
                }
            }
            (base_features, labels)
        }
        BiasKind::Implicit => {
            // One *global* threshold; bias must come from the proxy shift.
            // The group-rate difference is monotone in delta, so bisect.
            let overall = cfg.p_protected * rate_protected + (1.0 - cfg.p_protected) * rate_favored;
            let diff_at = |delta: f64| -> f64 {
                let scores = score_with_delta(delta, None);
                let thr = quantile(&mut scores.clone(), 1.0 - overall);
                let mut pos = [0usize; 2];
                let mut tot = [0usize; 2];
                for i in 0..cfg.n {
                    tot[sens[i] as usize] += 1;
                    if scores[i] > thr {
                        pos[sens[i] as usize] += 1;
                    }
                }
                let r0 = pos[0] as f64 / tot[0].max(1) as f64;
                let r1 = pos[1] as f64 / tot[1].max(1) as f64;
                r0 - r1
            };
            let (mut lo, mut hi) = (0.0f64, 4.0f64);
            for _ in 0..40 {
                let mid = 0.5 * (lo + hi);
                // The bisection observes pre-noise rates, so it targets the
                // noise-compensated bias.
                if diff_at(mid) < pre_bias {
                    lo = mid;
                } else {
                    hi = mid;
                }
            }
            let delta = 0.5 * (lo + hi);
            let mut feats = Vec::new();
            let scores = score_with_delta(delta, Some(&mut feats));
            let thr = quantile(&mut scores.clone(), 1.0 - overall);
            let labels: Vec<u8> = scores.iter().map(|&sc| u8::from(sc > thr)).collect();
            (feats, labels)
        }
    };

    // Irreducible label noise.
    let mut labels = labels;
    for l in labels.iter_mut() {
        if rng.gen_bool(cfg.label_noise) {
            *l ^= 1;
        }
    }

    // Assemble rows: [sens, f0..f{d-1}].
    let mut names = Vec::with_capacity(d + 1);
    names.push("sens".to_string());
    for j in 0..d {
        if j < n_prox && cfg.kind == BiasKind::Implicit {
            names.push(format!("proxy{j}"));
        } else {
            names.push(format!("x{j}"));
        }
    }
    let schema = Schema::with_binary_sensitive(names, 0, "label")?;
    let mut flat = Vec::with_capacity(cfg.n * (d + 1));
    for i in 0..cfg.n {
        flat.push(sens[i] as f64);
        flat.extend_from_slice(&features[i * d..(i + 1) * d]);
    }
    Dataset::from_flat(schema, flat, labels)
}

/// The paper's `social30` dataset (social bias, 30% mean difference).
///
/// # Errors
/// Propagates generation failures (cannot occur for this fixed config).
pub fn social30(seed: u64) -> Result<Dataset, DatasetError> {
    generate(&SyntheticConfig::social(0.30), seed)
}

/// The paper's `implicit30` dataset (implicit bias, 30% mean difference).
///
/// # Errors
/// Propagates generation failures (cannot occur for this fixed config).
pub fn implicit30(seed: u64) -> Result<Dataset, DatasetError> {
    generate(&SyntheticConfig::implicit(0.30), seed)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats::pearson;

    fn group_rates(ds: &Dataset) -> (f64, f64) {
        let rates = ds.group_positive_rates();
        (rates[0].unwrap(), rates[1].unwrap())
    }

    #[test]
    fn social_hits_target_rates() {
        let mut cfg = SyntheticConfig::social(0.30);
        cfg.n = 6000;
        cfg.label_noise = 0.0;
        let ds = generate(&cfg, 1).unwrap();
        let (favored, protected) = group_rates(&ds);
        assert!((favored - 0.65).abs() < 0.02, "favored rate {favored}");
        assert!((protected - 0.35).abs() < 0.02, "protected rate {protected}");
    }

    #[test]
    fn implicit_hits_target_bias_without_direct_effect() {
        let mut cfg = SyntheticConfig::implicit(0.30);
        cfg.n = 6000;
        cfg.label_noise = 0.0;
        let ds = generate(&cfg, 2).unwrap();
        let (favored, protected) = group_rates(&ds);
        assert!(
            ((favored - protected) - 0.30).abs() < 0.03,
            "mean difference {}",
            favored - protected
        );
    }

    #[test]
    fn implicit_proxies_correlate_with_sensitive_attribute() {
        let mut cfg = SyntheticConfig::implicit(0.30);
        cfg.n = 4000;
        let ds = generate(&cfg, 3).unwrap();
        let s = ds.column(0);
        // Columns 1..=3 are proxies, 4.. are clean.
        let r_proxy = pearson(&s, &ds.column(1)).abs();
        let r_clean = pearson(&s, &ds.column(5)).abs();
        assert!(r_proxy > 0.3, "proxy correlation {r_proxy}");
        assert!(r_clean < 0.1, "clean correlation {r_clean}");
    }

    #[test]
    fn social_features_do_not_correlate_with_sensitive_attribute() {
        let mut cfg = SyntheticConfig::social(0.30);
        cfg.n = 4000;
        let ds = generate(&cfg, 4).unwrap();
        let s = ds.column(0);
        for j in 1..=8 {
            assert!(pearson(&s, &ds.column(j)).abs() < 0.1, "feature {j} leaks s");
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let a = social30(9).unwrap();
        let b = social30(9).unwrap();
        assert_eq!(a.flat(), b.flat());
        assert_eq!(a.labels(), b.labels());
        let c = social30(10).unwrap();
        assert_ne!(a.labels(), c.labels());
    }

    #[test]
    fn shape_matches_paper() {
        let ds = implicit30(5).unwrap();
        assert_eq!(ds.len(), 14_000);
        assert_eq!(ds.n_attrs(), 9); // sens + 8 features
        assert_eq!(ds.group_index().len(), 2);
    }

    #[test]
    fn concept_is_learnable_from_features() {
        // Sanity: a trivial linear probe on the score features should beat
        // chance comfortably, otherwise models can't show accuracy spread.
        let mut cfg = SyntheticConfig::social(0.0);
        cfg.n = 4000;
        cfg.label_noise = 0.0;
        let ds = generate(&cfg, 6).unwrap();
        // Use the sum of features as a crude score.
        let mut correct = 0usize;
        for i in 0..ds.len() {
            let sum: f64 = ds.row(i)[1..].iter().sum();
            let pred = u8::from(sum > 0.0);
            correct += usize::from(pred == ds.label(i));
        }
        let acc = correct as f64 / ds.len() as f64;
        assert!(acc > 0.75, "accuracy of linear probe {acc}");
    }

    #[test]
    fn zero_rows_is_an_error() {
        let mut cfg = SyntheticConfig::social(0.3);
        cfg.n = 0;
        assert!(generate(&cfg, 0).is_err());
    }
}
