//! Statistical primitives: means, variances, Pearson correlation, and the
//! two-sided significance test FALCC's proxy-discrimination detector needs
//! (paper §3.4).
//!
//! The significance of a Pearson coefficient `r` on `n` samples is the
//! two-sided p-value of `t = r·√((n−2)/(1−r²))` under a Student-t
//! distribution with `n−2` degrees of freedom. No statistics crate is
//! permitted, so the t CDF is computed via the regularized incomplete beta
//! function (Lentz continued fraction + Lanczos `ln Γ`), the standard
//! Numerical-Recipes construction.

/// Arithmetic mean. Returns 0 for an empty slice.
pub fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    xs.iter().sum::<f64>() / xs.len() as f64
}

/// Population variance (divides by `n`). Returns 0 for fewer than 2 samples.
pub fn variance(xs: &[f64]) -> f64 {
    if xs.len() < 2 {
        return 0.0;
    }
    let m = mean(xs);
    xs.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / xs.len() as f64
}

/// Sample standard deviation (divides by `n−1`). Returns 0 for fewer than 2
/// samples.
pub fn std_dev(xs: &[f64]) -> f64 {
    if xs.len() < 2 {
        return 0.0;
    }
    let m = mean(xs);
    (xs.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / (xs.len() - 1) as f64).sqrt()
}

/// Pearson correlation coefficient between two equal-length series.
///
/// Returns 0 when either series is constant (the paper's Eq. 1 then assigns
/// weight 1, i.e. "no correlation"), matching scipy's convention of an
/// undefined correlation being treated as absent.
///
/// # Panics
/// Panics if the slices have different lengths.
pub fn pearson(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len(), "pearson requires equal-length series");
    let n = a.len();
    if n < 2 {
        return 0.0;
    }
    let (ma, mb) = (mean(a), mean(b));
    let mut cov = 0.0;
    let mut va = 0.0;
    let mut vb = 0.0;
    for i in 0..n {
        let da = a[i] - ma;
        let db = b[i] - mb;
        cov += da * db;
        va += da * da;
        vb += db * db;
    }
    if va <= 0.0 || vb <= 0.0 {
        return 0.0;
    }
    (cov / (va.sqrt() * vb.sqrt())).clamp(-1.0, 1.0)
}

/// Result of a Pearson correlation test.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Correlation {
    /// The coefficient in `[-1, 1]`.
    pub r: f64,
    /// Two-sided p-value of `H0: r = 0`; `1.0` when undefined (n < 3 or
    /// constant series).
    pub p_value: f64,
}

/// Pearson correlation together with its two-sided significance.
///
/// # Panics
/// Panics if the slices have different lengths.
pub fn pearson_test(a: &[f64], b: &[f64]) -> Correlation {
    let r = pearson(a, b);
    let n = a.len();
    if n < 3 || r == 0.0 {
        return Correlation { r, p_value: 1.0 };
    }
    if (1.0 - r * r) < 1e-15 {
        // Perfect correlation: p → 0.
        return Correlation { r, p_value: 0.0 };
    }
    let df = (n - 2) as f64;
    let t = r * (df / (1.0 - r * r)).sqrt();
    Correlation { r, p_value: student_t_two_sided_p(t, df) }
}

/// Two-sided p-value `P(|T| ≥ |t|)` for a Student-t variable with `df`
/// degrees of freedom.
pub fn student_t_two_sided_p(t: f64, df: f64) -> f64 {
    // P(|T| >= |t|) = I_{df/(df+t²)}(df/2, 1/2)
    let x = df / (df + t * t);
    regularized_incomplete_beta(df / 2.0, 0.5, x).clamp(0.0, 1.0)
}

/// Natural log of the gamma function (Lanczos approximation, g = 7, n = 9).
///
/// Accurate to ~1e-13 relative error for positive arguments.
pub fn ln_gamma(x: f64) -> f64 {
    // Coefficients for g = 7.
    const COEF: [f64; 9] = [
        0.999_999_999_999_809_9,
        676.520_368_121_885_1,
        -1_259.139_216_722_402_8,
        771.323_428_777_653_1,
        -176.615_029_162_140_6,
        12.507_343_278_686_905,
        -0.138_571_095_265_720_12,
        9.984_369_578_019_572e-6,
        1.505_632_735_149_311_6e-7,
    ];
    if x < 0.5 {
        // Reflection formula.
        let pi = std::f64::consts::PI;
        return (pi / (pi * x).sin()).ln() - ln_gamma(1.0 - x);
    }
    let x = x - 1.0;
    let mut a = COEF[0];
    let t = x + 7.5;
    for (i, &c) in COEF.iter().enumerate().skip(1) {
        a += c / (x + i as f64);
    }
    0.5 * (2.0 * std::f64::consts::PI).ln() + (x + 0.5) * t.ln() - t + a.ln()
}

/// Regularized incomplete beta function `I_x(a, b)` via Lentz's continued
/// fraction (Numerical Recipes §6.4).
///
/// # Panics
/// Panics if `x` is outside `[0, 1]` or `a`/`b` are non-positive.
pub fn regularized_incomplete_beta(a: f64, b: f64, x: f64) -> f64 {
    assert!((0.0..=1.0).contains(&x), "x must be in [0,1], got {x}");
    assert!(a > 0.0 && b > 0.0, "a and b must be positive");
    if x == 0.0 {
        return 0.0;
    }
    if x == 1.0 {
        return 1.0;
    }
    let ln_front = ln_gamma(a + b) - ln_gamma(a) - ln_gamma(b) + a * x.ln() + b * (1.0 - x).ln();
    let front = ln_front.exp();
    // The continued fraction converges fastest for x ≤ (a+1)/(a+b+2);
    // otherwise use the symmetry I_x(a,b) = 1 − I_{1−x}(b,a). The `<=` is
    // load-bearing: with `<`, x exactly on the threshold recurses forever.
    if x <= (a + 1.0) / (a + b + 2.0) {
        front * beta_cf(a, b, x) / a
    } else {
        1.0 - regularized_incomplete_beta(b, a, 1.0 - x)
    }
}

fn beta_cf(a: f64, b: f64, x: f64) -> f64 {
    const MAX_ITER: usize = 300;
    const EPS: f64 = 1e-14;
    const TINY: f64 = 1e-300;
    let qab = a + b;
    let qap = a + 1.0;
    let qam = a - 1.0;
    let mut c = 1.0;
    let mut d = 1.0 - qab * x / qap;
    if d.abs() < TINY {
        d = TINY;
    }
    d = 1.0 / d;
    let mut h = d;
    for m in 1..=MAX_ITER {
        let m = m as f64;
        let m2 = 2.0 * m;
        // Even step.
        let aa = m * (b - m) * x / ((qam + m2) * (a + m2));
        d = 1.0 + aa * d;
        if d.abs() < TINY {
            d = TINY;
        }
        c = 1.0 + aa / c;
        if c.abs() < TINY {
            c = TINY;
        }
        d = 1.0 / d;
        h *= d * c;
        // Odd step.
        let aa = -(a + m) * (qab + m) * x / ((a + m2) * (qap + m2));
        d = 1.0 + aa * d;
        if d.abs() < TINY {
            d = TINY;
        }
        c = 1.0 + aa / c;
        if c.abs() < TINY {
            c = TINY;
        }
        d = 1.0 / d;
        let del = d * c;
        h *= del;
        if (del - 1.0).abs() < EPS {
            break;
        }
    }
    h
}

/// The attribute weight from the paper's Eq. 1: the mean over all sensitive
/// attributes of `1 − |r(s, a)|`.
///
/// Eq. 1 as printed uses the *signed* coefficient, but also states
/// `weight ∈ [0, 1]` (signed `1 − r` ranges over `[0, 2]`). A strongly
/// *negatively* correlated attribute leaks exactly as much group
/// information as a positively correlated one, so we take the magnitude —
/// the reading consistent with both the stated range and the intent that
/// proxies receive low weight.
pub fn proxy_weight(sens_columns: &[&[f64]], attr_column: &[f64]) -> f64 {
    if sens_columns.is_empty() {
        return 1.0;
    }
    let sum: f64 =
        sens_columns.iter().map(|s| 1.0 - pearson(s, attr_column).abs()).sum();
    (sum / sens_columns.len() as f64).clamp(0.0, 1.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_variance_std() {
        let xs = [1.0, 2.0, 3.0, 4.0];
        assert!((mean(&xs) - 2.5).abs() < 1e-12);
        assert!((variance(&xs) - 1.25).abs() < 1e-12);
        assert!((std_dev(&xs) - (5.0f64 / 3.0).sqrt()).abs() < 1e-12);
        assert_eq!(mean(&[]), 0.0);
        assert_eq!(variance(&[1.0]), 0.0);
    }

    #[test]
    fn pearson_known_values() {
        let a = [1.0, 2.0, 3.0, 4.0, 5.0];
        let b = [2.0, 4.0, 6.0, 8.0, 10.0];
        assert!((pearson(&a, &b) - 1.0).abs() < 1e-12);
        let c = [10.0, 8.0, 6.0, 4.0, 2.0];
        assert!((pearson(&a, &c) + 1.0).abs() < 1e-12);
        let d = [7.0, 7.0, 7.0, 7.0, 7.0];
        assert_eq!(pearson(&a, &d), 0.0);
    }

    #[test]
    fn pearson_uncorrelated_is_small() {
        // Deterministic "noise" with zero linear relation by symmetry.
        let a: Vec<f64> = (0..100).map(|i| (i as f64 * 0.7).sin()).collect();
        let b: Vec<f64> = (0..100).map(|i| ((i as f64 + 50.0) * 1.3).cos()).collect();
        assert!(pearson(&a, &b).abs() < 0.3);
    }

    #[test]
    fn ln_gamma_matches_known_values() {
        // Γ(1)=1, Γ(2)=1, Γ(5)=24, Γ(0.5)=√π
        assert!(ln_gamma(1.0).abs() < 1e-10);
        assert!(ln_gamma(2.0).abs() < 1e-10);
        assert!((ln_gamma(5.0) - 24f64.ln()).abs() < 1e-10);
        assert!((ln_gamma(0.5) - std::f64::consts::PI.sqrt().ln()).abs() < 1e-10);
    }

    #[test]
    fn incomplete_beta_reference_points() {
        // I_x(1,1) = x (uniform CDF).
        for &x in &[0.0, 0.25, 0.5, 0.9, 1.0] {
            assert!((regularized_incomplete_beta(1.0, 1.0, x) - x).abs() < 1e-10);
        }
        // I_x(2,2) = 3x² − 2x³.
        for &x in &[0.1, 0.5, 0.8] {
            let expect = 3.0 * x * x - 2.0 * x * x * x;
            assert!((regularized_incomplete_beta(2.0, 2.0, x) - expect).abs() < 1e-10);
        }
        // Symmetry: I_x(a,b) = 1 − I_{1−x}(b,a).
        let lhs = regularized_incomplete_beta(2.5, 4.0, 0.3);
        let rhs = 1.0 - regularized_incomplete_beta(4.0, 2.5, 0.7);
        assert!((lhs - rhs).abs() < 1e-10);
    }

    #[test]
    fn student_t_reference_points() {
        // df=10, t=2.228 is the classic 5% two-sided critical value.
        let p = student_t_two_sided_p(2.228, 10.0);
        assert!((p - 0.05).abs() < 2e-3, "p = {p}");
        // t = 0 → p = 1.
        assert!((student_t_two_sided_p(0.0, 5.0) - 1.0).abs() < 1e-12);
        // Large |t| → p ≈ 0.
        assert!(student_t_two_sided_p(50.0, 20.0) < 1e-10);
    }

    #[test]
    fn pearson_test_detects_strong_linear_relation() {
        let a: Vec<f64> = (0..50).map(|i| i as f64).collect();
        let b: Vec<f64> = a.iter().map(|x| 3.0 * x + 1.0).collect();
        let c = pearson_test(&a, &b);
        assert!(c.r > 0.999);
        assert!(c.p_value < 1e-6);
        // Short / constant series → p-value 1.
        assert_eq!(pearson_test(&[1.0, 2.0], &[2.0, 4.0]).p_value, 1.0);
    }

    #[test]
    fn proxy_weight_bounds_and_behaviour() {
        let s: Vec<f64> = (0..40).map(|i| (i % 2) as f64).collect();
        let proxy: Vec<f64> = s.iter().map(|v| v * 2.0 + 0.1).collect();
        let indep: Vec<f64> = (0..40).map(|i| ((i * 7) % 5) as f64).collect();
        let w_proxy = proxy_weight(&[&s], &proxy);
        let w_indep = proxy_weight(&[&s], &indep);
        assert!(w_proxy < 0.1, "strong proxy gets near-zero weight, got {w_proxy}");
        assert!(w_indep > 0.5, "independent attr keeps high weight, got {w_indep}");
        assert!((0.0..=1.0).contains(&w_proxy));
        assert!((0.0..=1.0).contains(&w_indep));
        assert_eq!(proxy_weight(&[], &indep), 1.0);
    }
}
