//! The [`Dataset`] table type and borrowed row-subset views.

use crate::error::DatasetError;
use crate::schema::{AttrId, GroupId, GroupIndex, Schema};

/// An immutable labeled dataset: `n` rows of `d` `f64` attributes (stored
/// row-major), a binary label per row, and the precomputed sensitive group
/// of every row.
///
/// All FALCC-side algorithms treat rows as opaque numeric vectors; categorical
/// attributes are expected to be integer-coded (as the paper's preprocessing
/// does for Adult, COMPAS, …).
#[derive(Debug, Clone)]
pub struct Dataset {
    schema: Schema,
    group_index: GroupIndex,
    x: Vec<f64>,
    y: Vec<u8>,
    g: Vec<GroupId>,
}

impl Dataset {
    /// Builds a dataset from row vectors and binary labels.
    ///
    /// # Errors
    /// * [`DatasetError::ShapeMismatch`] if row widths differ from the schema
    ///   or `rows.len() != labels.len()`;
    /// * [`DatasetError::ValueOutOfDomain`] if a sensitive value is outside
    ///   its declared domain;
    /// * [`DatasetError::Empty`] for zero rows.
    pub fn from_rows(
        schema: Schema,
        rows: Vec<Vec<f64>>,
        labels: Vec<u8>,
    ) -> Result<Self, DatasetError> {
        if rows.is_empty() {
            return Err(DatasetError::Empty);
        }
        if rows.len() != labels.len() {
            return Err(DatasetError::ShapeMismatch {
                detail: format!("{} rows but {} labels", rows.len(), labels.len()),
            });
        }
        let d = schema.n_attrs();
        let mut x = Vec::with_capacity(rows.len() * d);
        for (i, r) in rows.iter().enumerate() {
            if r.len() != d {
                return Err(DatasetError::ShapeMismatch {
                    detail: format!("row {i} has {} attributes, schema declares {d}", r.len()),
                });
            }
            x.extend_from_slice(r);
        }
        Self::from_flat(schema, x, labels)
    }

    /// Builds a dataset from an already-flattened row-major buffer.
    ///
    /// # Errors
    /// Same conditions as [`Self::from_rows`].
    pub fn from_flat(schema: Schema, x: Vec<f64>, y: Vec<u8>) -> Result<Self, DatasetError> {
        let d = schema.n_attrs();
        if d == 0 || x.len() != y.len() * d {
            return Err(DatasetError::ShapeMismatch {
                detail: format!("flat buffer of {} values, {} labels, {d} attrs", x.len(), y.len()),
            });
        }
        if y.is_empty() {
            return Err(DatasetError::Empty);
        }
        if let Some(bad) = y.iter().find(|&&v| v > 1) {
            return Err(DatasetError::ShapeMismatch {
                detail: format!("label {bad} is not binary"),
            });
        }
        // Non-finite features would silently corrupt every downstream
        // consumer (tree splits, kd-tree ordering, k-means); reject here.
        if let Some(pos) = x.iter().position(|v| !v.is_finite()) {
            return Err(DatasetError::NonFiniteFeature { row: pos / d, column: pos % d });
        }
        let group_index = schema.group_index();
        let mut g = Vec::with_capacity(y.len());
        for row in x.chunks_exact(d) {
            g.push(group_index.group_of(row)?);
        }
        Ok(Self { schema, group_index, x, y, g })
    }

    /// Number of rows.
    #[inline]
    pub fn len(&self) -> usize {
        self.y.len()
    }

    /// `true` when the dataset holds no rows (never true for a constructed
    /// dataset, but required for idiomatic emptiness checks on views).
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.y.is_empty()
    }

    /// Number of attributes per row.
    #[inline]
    pub fn n_attrs(&self) -> usize {
        self.schema.n_attrs()
    }

    /// The schema.
    #[inline]
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// The sensitive-group enumeration.
    #[inline]
    pub fn group_index(&self) -> &GroupIndex {
        &self.group_index
    }

    /// Row `i` as a slice of all attributes.
    #[inline]
    pub fn row(&self, i: usize) -> &[f64] {
        let d = self.n_attrs();
        &self.x[i * d..(i + 1) * d]
    }

    /// Label of row `i` (0 or 1).
    #[inline]
    pub fn label(&self, i: usize) -> u8 {
        self.y[i]
    }

    /// Sensitive group of row `i`.
    #[inline]
    pub fn group(&self, i: usize) -> GroupId {
        self.g[i]
    }

    /// All labels.
    #[inline]
    pub fn labels(&self) -> &[u8] {
        &self.y
    }

    /// All precomputed group ids.
    #[inline]
    pub fn groups(&self) -> &[GroupId] {
        &self.g
    }

    /// The raw row-major feature buffer.
    #[inline]
    pub fn flat(&self) -> &[f64] {
        &self.x
    }

    /// Value of attribute `a` in row `i`.
    #[inline]
    pub fn value(&self, i: usize, a: AttrId) -> f64 {
        self.x[i * self.n_attrs() + a]
    }

    /// One full column, copied out.
    pub fn column(&self, a: AttrId) -> Vec<f64> {
        (0..self.len()).map(|i| self.value(i, a)).collect()
    }

    /// Overall positive label rate `P(y=1)`.
    pub fn positive_rate(&self) -> f64 {
        self.y.iter().map(|&v| v as usize).sum::<usize>() as f64 / self.len() as f64
    }

    /// Per-group row counts, indexed by [`GroupId`].
    pub fn group_counts(&self) -> Vec<usize> {
        let mut counts = vec![0usize; self.group_index.len()];
        for g in &self.g {
            counts[g.index()] += 1;
        }
        counts
    }

    /// Per-group positive label rates `P(y=1 | G=g)`; `None` for groups with
    /// no rows.
    pub fn group_positive_rates(&self) -> Vec<Option<f64>> {
        let mut pos = vec![0usize; self.group_index.len()];
        let mut tot = vec![0usize; self.group_index.len()];
        for i in 0..self.len() {
            tot[self.g[i].index()] += 1;
            pos[self.g[i].index()] += self.y[i] as usize;
        }
        pos.iter()
            .zip(&tot)
            .map(|(&p, &t)| if t == 0 { None } else { Some(p as f64 / t as f64) })
            .collect()
    }

    /// Copies out the subset of rows in `indices` as a new dataset.
    ///
    /// # Errors
    /// [`DatasetError::Empty`] when `indices` is empty.
    ///
    /// # Panics
    /// Panics if an index is out of bounds (programmer error).
    pub fn subset(&self, indices: &[usize]) -> Result<Self, DatasetError> {
        if indices.is_empty() {
            return Err(DatasetError::Empty);
        }
        let d = self.n_attrs();
        let mut x = Vec::with_capacity(indices.len() * d);
        let mut y = Vec::with_capacity(indices.len());
        let mut g = Vec::with_capacity(indices.len());
        for &i in indices {
            x.extend_from_slice(self.row(i));
            y.push(self.y[i]);
            g.push(self.g[i]);
        }
        Ok(Self {
            schema: self.schema.clone(),
            group_index: self.group_index.clone(),
            x,
            y,
            g,
        })
    }

    /// Projects selected attributes of every row into a flat row-major
    /// matrix, optionally multiplying each projected column by a weight
    /// (FALCC's proxy-mitigation *reweighing*, paper §3.4).
    ///
    /// `weights`, when given, must be parallel to `attrs`.
    ///
    /// # Panics
    /// Panics if `weights` is provided with a different length than `attrs`.
    pub fn project(&self, attrs: &[AttrId], weights: Option<&[f64]>) -> ProjectedMatrix {
        if let Some(w) = weights {
            assert_eq!(w.len(), attrs.len(), "one weight per projected attribute");
        }
        let mut data = Vec::with_capacity(self.len() * attrs.len());
        for i in 0..self.len() {
            let row = self.row(i);
            match weights {
                Some(w) => data.extend(attrs.iter().zip(w).map(|(&a, &wa)| row[a] * wa)),
                None => data.extend(attrs.iter().map(|&a| row[a])),
            }
        }
        ProjectedMatrix { data, n_cols: attrs.len(), n_rows: self.len() }
    }

    /// Projects a single (possibly external) full-width row with the same
    /// attribute selection and weights as [`Self::project`]. Used in the
    /// online phase to process new samples consistently with the offline
    /// projection.
    pub fn project_row(row: &[f64], attrs: &[AttrId], weights: Option<&[f64]>) -> Vec<f64> {
        match weights {
            Some(w) => {
                assert_eq!(w.len(), attrs.len(), "one weight per projected attribute");
                attrs.iter().zip(w).map(|(&a, &wa)| row[a] * wa).collect()
            }
            None => attrs.iter().map(|&a| row[a]).collect(),
        }
    }

    /// Projects a batch of (possibly external) full-width rows into one
    /// flat matrix — the batched counterpart of [`Self::project_row`].
    /// Per-row contents are identical to calling `project_row` on each
    /// row (same selection, same weight products, same order); batching
    /// replaces one allocation per sample with one per batch.
    ///
    /// # Panics
    /// Panics if `weights` is provided with a different length than
    /// `attrs`, or a row is too narrow for a selected attribute.
    pub fn project_rows(
        rows: &[Vec<f64>],
        attrs: &[AttrId],
        weights: Option<&[f64]>,
    ) -> ProjectedMatrix {
        if let Some(w) = weights {
            assert_eq!(w.len(), attrs.len(), "one weight per projected attribute");
        }
        let mut data = Vec::with_capacity(rows.len() * attrs.len());
        for row in rows {
            match weights {
                Some(w) => data.extend(attrs.iter().zip(w).map(|(&a, &wa)| row[a] * wa)),
                None => data.extend(attrs.iter().map(|&a| row[a])),
            }
        }
        ProjectedMatrix { data, n_cols: attrs.len(), n_rows: rows.len() }
    }

    /// A borrowed view of the rows in `indices`.
    pub fn view<'a>(&'a self, indices: &'a [usize]) -> DatasetView<'a> {
        DatasetView { ds: self, indices }
    }

    /// Indices of rows belonging to group `g`.
    pub fn indices_of_group(&self, g: GroupId) -> Vec<usize> {
        (0..self.len()).filter(|&i| self.g[i] == g).collect()
    }
}

/// A flat row-major projection of selected dataset columns, as consumed by
/// the clustering substrate.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct ProjectedMatrix {
    /// Row-major values, `n_rows * n_cols` long.
    pub data: Vec<f64>,
    /// Number of projected columns.
    pub n_cols: usize,
    /// Number of rows.
    pub n_rows: usize,
}

impl ProjectedMatrix {
    /// Row `i` of the projection.
    #[inline]
    pub fn row(&self, i: usize) -> &[f64] {
        &self.data[i * self.n_cols..(i + 1) * self.n_cols]
    }

    /// Iterator over all rows.
    pub fn rows(&self) -> impl Iterator<Item = &[f64]> {
        self.data.chunks_exact(self.n_cols.max(1))
    }
}

/// Borrowed view over a subset of a dataset's rows (e.g. one cluster).
#[derive(Debug, Clone, Copy)]
pub struct DatasetView<'a> {
    ds: &'a Dataset,
    indices: &'a [usize],
}

impl<'a> DatasetView<'a> {
    /// Number of rows in the view.
    #[inline]
    pub fn len(&self) -> usize {
        self.indices.len()
    }

    /// `true` when the view selects no rows.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.indices.is_empty()
    }

    /// The underlying dataset.
    #[inline]
    pub fn dataset(&self) -> &'a Dataset {
        self.ds
    }

    /// The selected row indices (into the underlying dataset).
    #[inline]
    pub fn indices(&self) -> &'a [usize] {
        self.indices
    }

    /// `i`-th selected row.
    #[inline]
    pub fn row(&self, i: usize) -> &[f64] {
        self.ds.row(self.indices[i])
    }

    /// Label of the `i`-th selected row.
    #[inline]
    pub fn label(&self, i: usize) -> u8 {
        self.ds.label(self.indices[i])
    }

    /// Group of the `i`-th selected row.
    #[inline]
    pub fn group(&self, i: usize) -> GroupId {
        self.ds.group(self.indices[i])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::Schema;

    fn toy() -> Dataset {
        let schema = Schema::with_binary_sensitive(
            vec!["s".into(), "f1".into(), "f2".into()],
            0,
            "y",
        )
        .unwrap();
        Dataset::from_rows(
            schema,
            vec![
                vec![0.0, 1.0, 2.0],
                vec![1.0, 3.0, 4.0],
                vec![0.0, 5.0, 6.0],
                vec![1.0, 7.0, 8.0],
            ],
            vec![1, 0, 0, 1],
        )
        .unwrap()
    }

    #[test]
    fn accessors_are_consistent() {
        let ds = toy();
        assert_eq!(ds.len(), 4);
        assert_eq!(ds.n_attrs(), 3);
        assert_eq!(ds.row(2), &[0.0, 5.0, 6.0]);
        assert_eq!(ds.label(3), 1);
        assert_eq!(ds.group(1), GroupId(1));
        assert_eq!(ds.value(1, 2), 4.0);
        assert_eq!(ds.column(1), vec![1.0, 3.0, 5.0, 7.0]);
        assert!((ds.positive_rate() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn group_statistics() {
        let ds = toy();
        assert_eq!(ds.group_counts(), vec![2, 2]);
        let rates = ds.group_positive_rates();
        assert_eq!(rates[0], Some(0.5));
        assert_eq!(rates[1], Some(0.5));
        assert_eq!(ds.indices_of_group(GroupId(1)), vec![1, 3]);
    }

    #[test]
    fn subset_copies_selected_rows() {
        let ds = toy();
        let sub = ds.subset(&[3, 0]).unwrap();
        assert_eq!(sub.len(), 2);
        assert_eq!(sub.row(0), &[1.0, 7.0, 8.0]);
        assert_eq!(sub.label(1), 1);
        assert!(ds.subset(&[]).is_err());
    }

    #[test]
    fn projection_selects_and_weighs() {
        let ds = toy();
        let p = ds.project(&[1, 2], None);
        assert_eq!(p.n_rows, 4);
        assert_eq!(p.row(1), &[3.0, 4.0]);
        let pw = ds.project(&[1, 2], Some(&[2.0, 0.5]));
        assert_eq!(pw.row(1), &[6.0, 2.0]);
        assert_eq!(
            Dataset::project_row(&[1.0, 3.0, 4.0], &[1, 2], Some(&[2.0, 0.5])),
            vec![6.0, 2.0]
        );
    }

    #[test]
    fn views_borrow_rows() {
        let ds = toy();
        let idx = [1usize, 2];
        let v = ds.view(&idx);
        assert_eq!(v.len(), 2);
        assert_eq!(v.row(0), ds.row(1));
        assert_eq!(v.label(1), 0);
        assert_eq!(v.group(0), GroupId(1));
    }

    #[test]
    fn shape_errors() {
        let schema =
            Schema::with_binary_sensitive(vec!["s".into(), "f".into()], 0, "y").unwrap();
        assert!(matches!(
            Dataset::from_rows(schema.clone(), vec![vec![0.0]], vec![1]),
            Err(DatasetError::ShapeMismatch { .. })
        ));
        assert!(matches!(
            Dataset::from_rows(schema.clone(), vec![], vec![]),
            Err(DatasetError::Empty)
        ));
        assert!(matches!(
            Dataset::from_rows(schema.clone(), vec![vec![0.0, 1.0]], vec![2]),
            Err(DatasetError::ShapeMismatch { .. })
        ));
        // Sensitive value 5 is outside {0,1}.
        assert!(matches!(
            Dataset::from_rows(schema, vec![vec![5.0, 1.0]], vec![1]),
            Err(DatasetError::ValueOutOfDomain { .. })
        ));
    }

    #[test]
    fn non_finite_features_are_rejected() {
        let schema =
            Schema::with_binary_sensitive(vec!["s".into(), "f".into()], 0, "y").unwrap();
        for bad in [f64::NAN, f64::INFINITY, f64::NEG_INFINITY] {
            let err = Dataset::from_rows(
                schema.clone(),
                vec![vec![0.0, 1.0], vec![1.0, bad]],
                vec![1, 0],
            );
            match err {
                Err(DatasetError::NonFiniteFeature { row, column }) => {
                    assert_eq!(row, 1);
                    assert_eq!(column, 1);
                }
                other => panic!("expected rejection of {bad}, got {other:?}"),
            }
        }
    }
}
