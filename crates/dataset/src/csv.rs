//! Minimal CSV import/export for [`Dataset`].
//!
//! The format is deliberately plain: a header row naming every attribute
//! with the label as the **last** column, then one numeric row per sample.
//! This is enough to drop in externally preprocessed copies of the paper's
//! real-world datasets (which are numeric after the preprocessing of
//! [Lässig 2020]) in place of the built-in emulators.

use crate::dataset::Dataset;
use crate::error::DatasetError;
use crate::schema::{Schema, SensitiveAttr};
use std::io::{BufRead, BufReader, Read, Write};
use std::path::Path;

/// Reads a dataset from CSV text. `sensitive` names the sensitive columns
/// together with their domains (by header name).
///
/// # Errors
/// * [`DatasetError::Csv`] on malformed rows or non-numeric values;
/// * [`DatasetError::UnknownAttribute`] if a sensitive column name is not in
///   the header;
/// * construction errors from [`Dataset::from_rows`].
pub fn read_csv<R: Read>(
    reader: R,
    sensitive: &[(&str, Vec<f64>)],
) -> Result<Dataset, DatasetError> {
    let mut lines = BufReader::new(reader).lines();
    let header = match lines.next() {
        Some(h) => h?,
        None => return Err(DatasetError::Empty),
    };
    let mut names: Vec<String> = header.split(',').map(|s| s.trim().to_string()).collect();
    let Some(label_name) = (names.len() >= 2).then(|| names.pop()).flatten() else {
        return Err(DatasetError::Csv {
            line: 1,
            detail: "header needs at least one attribute and a label".into(),
        });
    };

    let mut sens = Vec::with_capacity(sensitive.len());
    for (name, domain) in sensitive {
        let attr = names
            .iter()
            .position(|n| n == name)
            .ok_or_else(|| DatasetError::UnknownAttribute { name: (*name).to_string() })?;
        sens.push(SensitiveAttr { attr, domain: domain.clone() });
    }
    let schema = Schema::new(names, sens, label_name)?;

    let d = schema.n_attrs();
    let mut rows = Vec::new();
    let mut labels = Vec::new();
    for (lineno, line) in lines.enumerate() {
        let line = line?;
        let lineno = lineno + 2; // 1-based, after header
        if line.trim().is_empty() {
            continue;
        }
        let mut row = Vec::with_capacity(d);
        let mut fields = line.split(',');
        for (column, field) in fields.by_ref().take(d).enumerate() {
            let v: f64 = field.trim().parse().map_err(|_| DatasetError::CsvCell {
                line: lineno,
                column,
                detail: format!("non-numeric value {:?}", field.trim()),
            })?;
            if !v.is_finite() {
                return Err(DatasetError::CsvCell {
                    line: lineno,
                    column,
                    detail: format!("non-finite value {v}"),
                });
            }
            row.push(v);
        }
        let label_field = fields.next().ok_or_else(|| DatasetError::Csv {
            line: lineno,
            detail: format!("expected {} columns", d + 1),
        })?;
        if fields.next().is_some() {
            return Err(DatasetError::Csv {
                line: lineno,
                detail: format!("expected {} columns", d + 1),
            });
        }
        if row.len() != d {
            return Err(DatasetError::Csv {
                line: lineno,
                detail: format!("expected {} columns", d + 1),
            });
        }
        let label: f64 = label_field.trim().parse().map_err(|_| DatasetError::CsvCell {
            line: lineno,
            column: d,
            detail: format!("non-numeric label {:?}", label_field.trim()),
        })?;
        if label != 0.0 && label != 1.0 {
            return Err(DatasetError::CsvCell {
                line: lineno,
                column: d,
                detail: format!("label must be 0 or 1, got {label}"),
            });
        }
        rows.push(row);
        labels.push(label as u8);
    }
    Dataset::from_rows(schema, rows, labels)
}

/// Reads a dataset from a CSV file on disk. See [`read_csv`].
///
/// # Errors
/// I/O errors plus everything [`read_csv`] can raise.
pub fn read_csv_file(
    path: impl AsRef<Path>,
    sensitive: &[(&str, Vec<f64>)],
) -> Result<Dataset, DatasetError> {
    read_csv(std::fs::File::open(path)?, sensitive)
}

/// Writes a dataset as CSV (header + numeric rows, label last).
///
/// # Errors
/// Propagates writer failures.
pub fn write_csv<W: Write>(ds: &Dataset, mut w: W) -> Result<(), DatasetError> {
    let mut header = ds.schema().attr_names().join(",");
    header.push(',');
    header.push_str(ds.schema().label_name());
    writeln!(w, "{header}")?;
    let mut buf = String::new();
    for i in 0..ds.len() {
        buf.clear();
        for (j, v) in ds.row(i).iter().enumerate() {
            if j > 0 {
                buf.push(',');
            }
            buf.push_str(&format!("{v}"));
        }
        buf.push(',');
        buf.push_str(if ds.label(i) == 1 { "1" } else { "0" });
        writeln!(w, "{buf}")?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = "sex,age,income,hired\n\
                          0,25,50.5,1\n\
                          1,30,40.0,0\n\
                          0,45,80.25,1\n";

    #[test]
    fn round_trip() {
        let ds = read_csv(SAMPLE.as_bytes(), &[("sex", vec![0.0, 1.0])]).unwrap();
        assert_eq!(ds.len(), 3);
        assert_eq!(ds.n_attrs(), 3);
        assert_eq!(ds.schema().label_name(), "hired");
        assert_eq!(ds.row(0), &[0.0, 25.0, 50.5]);
        assert_eq!(ds.labels(), &[1, 0, 1]);
        assert!(ds.schema().is_sensitive(0));

        let mut out = Vec::new();
        write_csv(&ds, &mut out).unwrap();
        let again = read_csv(out.as_slice(), &[("sex", vec![0.0, 1.0])]).unwrap();
        assert_eq!(again.flat(), ds.flat());
        assert_eq!(again.labels(), ds.labels());
    }

    #[test]
    fn blank_lines_are_skipped() {
        let text = "s,f,y\n0,1,1\n\n1,2,0\n";
        let ds = read_csv(text.as_bytes(), &[("s", vec![0.0, 1.0])]).unwrap();
        assert_eq!(ds.len(), 2);
    }

    #[test]
    fn errors_carry_line_and_column_numbers() {
        let text = "s,f,y\n0,1,1\n0,oops,0\n";
        match read_csv(text.as_bytes(), &[("s", vec![0.0, 1.0])]) {
            Err(DatasetError::CsvCell { line, column, .. }) => {
                assert_eq!(line, 3);
                assert_eq!(column, 1);
            }
            other => panic!("expected csv cell error, got {other:?}"),
        }
    }

    #[test]
    fn non_finite_cells_are_rejected_with_context() {
        for bad in ["NaN", "inf", "-inf", "Infinity"] {
            let text = format!("s,f,y\n0,1,1\n1,{bad},0\n");
            match read_csv(text.as_bytes(), &[("s", vec![0.0, 1.0])]) {
                Err(DatasetError::CsvCell { line, column, detail }) => {
                    assert_eq!(line, 3, "{bad}");
                    assert_eq!(column, 1, "{bad}");
                    assert!(
                        detail.contains("non-finite") || detail.contains("non-numeric"),
                        "{bad}: {detail}"
                    );
                }
                other => panic!("expected cell error for {bad}, got {other:?}"),
            }
        }
    }

    #[test]
    fn non_numeric_label_is_cell_error_with_label_column() {
        let text = "s,f,y\n0,1,maybe\n";
        match read_csv(text.as_bytes(), &[("s", vec![0.0, 1.0])]) {
            Err(DatasetError::CsvCell { line, column, .. }) => {
                assert_eq!(line, 2);
                assert_eq!(column, 2, "label column is after the attributes");
            }
            other => panic!("expected cell error, got {other:?}"),
        }
    }

    #[test]
    fn wrong_column_count_is_rejected() {
        let text = "s,f,y\n0,1\n";
        assert!(matches!(
            read_csv(text.as_bytes(), &[("s", vec![0.0, 1.0])]),
            Err(DatasetError::Csv { line: 2, .. })
        ));
        let text = "s,f,y\n0,1,1,9\n";
        assert!(matches!(
            read_csv(text.as_bytes(), &[("s", vec![0.0, 1.0])]),
            Err(DatasetError::Csv { line: 2, .. })
        ));
    }

    #[test]
    fn non_binary_label_is_rejected() {
        let text = "s,f,y\n0,1,2\n";
        assert!(read_csv(text.as_bytes(), &[("s", vec![0.0, 1.0])]).is_err());
    }

    #[test]
    fn unknown_sensitive_column() {
        assert!(matches!(
            read_csv(SAMPLE.as_bytes(), &[("gender", vec![0.0, 1.0])]),
            Err(DatasetError::UnknownAttribute { .. })
        ));
    }
}
