//! Seeded random splitting of a dataset into train / validation / test.
//!
//! The paper's evaluation (§4.1.1) splits every dataset 50% / 35% / 15% and
//! repeats each experiment on four different random splits ("the same four
//! randomstates for each algorithm"). [`ThreeWaySplit::split`] is the exact
//! analogue: a seeded Fisher–Yates shuffle followed by contiguous slicing,
//! so the same `(dataset, seed)` pair always yields the same split for every
//! algorithm under comparison.

use crate::dataset::Dataset;
use crate::error::DatasetError;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

/// Fractions of the dataset assigned to train / validation / test.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SplitRatios {
    /// Fraction used for model training (`D_tr`).
    pub train: f64,
    /// Fraction used for validation / local-region construction (`D_val`).
    pub validation: f64,
    /// Fraction held out for prediction-time evaluation.
    pub test: f64,
}

impl SplitRatios {
    /// The paper's default: 50% train, 35% validation, 15% test.
    pub const PAPER: Self = Self { train: 0.50, validation: 0.35, test: 0.15 };

    /// Validates the ratios: each positive, summing to 1 within 1e-9.
    ///
    /// # Errors
    /// [`DatasetError::InvalidSplit`] on violation.
    pub fn validate(&self) -> Result<(), DatasetError> {
        let sum = self.train + self.validation + self.test;
        if self.train <= 0.0 || self.validation <= 0.0 || self.test <= 0.0 {
            return Err(DatasetError::InvalidSplit {
                detail: format!("all ratios must be positive: {self:?}"),
            });
        }
        if (sum - 1.0).abs() > 1e-9 {
            return Err(DatasetError::InvalidSplit {
                detail: format!("ratios sum to {sum}, expected 1"),
            });
        }
        Ok(())
    }
}

impl Default for SplitRatios {
    fn default() -> Self {
        Self::PAPER
    }
}

/// The result of a three-way split.
#[derive(Debug, Clone)]
pub struct ThreeWaySplit {
    /// Training partition `D_tr`.
    pub train: Dataset,
    /// Validation partition `D_val`.
    pub validation: Dataset,
    /// Held-out test partition.
    pub test: Dataset,
}

impl ThreeWaySplit {
    /// Splits `ds` according to `ratios` using the RNG seed `seed`.
    ///
    /// Boundaries are computed by rounding the cumulative fractions, so the
    /// three parts always partition the dataset exactly. Each part is
    /// guaranteed at least one row for datasets with ≥ 3 rows.
    ///
    /// # Errors
    /// Propagates ratio validation errors and [`DatasetError::Empty`] when
    /// the dataset has fewer than 3 rows.
    pub fn split(ds: &Dataset, ratios: SplitRatios, seed: u64) -> Result<Self, DatasetError> {
        ratios.validate()?;
        let n = ds.len();
        if n < 3 {
            return Err(DatasetError::Empty);
        }
        let mut idx: Vec<usize> = (0..n).collect();
        let mut rng = StdRng::seed_from_u64(seed);
        idx.shuffle(&mut rng);

        let mut cut1 = (ratios.train * n as f64).round() as usize;
        let mut cut2 = ((ratios.train + ratios.validation) * n as f64).round() as usize;
        // Guarantee non-empty parts.
        cut1 = cut1.clamp(1, n - 2);
        cut2 = cut2.clamp(cut1 + 1, n - 1);

        Ok(Self {
            train: ds.subset(&idx[..cut1])?,
            validation: ds.subset(&idx[cut1..cut2])?,
            test: ds.subset(&idx[cut2..])?,
        })
    }

    /// The paper's four canonical seeds, used across every experiment so all
    /// algorithms see identical splits.
    pub const PAPER_SEEDS: [u64; 4] = [11, 23, 42, 77];
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::Schema;

    fn dataset(n: usize) -> Dataset {
        let schema =
            Schema::with_binary_sensitive(vec!["s".into(), "f".into()], 0, "y").unwrap();
        let rows: Vec<Vec<f64>> = (0..n).map(|i| vec![(i % 2) as f64, i as f64]).collect();
        let labels: Vec<u8> = (0..n).map(|i| (i % 3 == 0) as u8).collect();
        Dataset::from_rows(schema, rows, labels).unwrap()
    }

    #[test]
    fn split_partitions_exactly() {
        let ds = dataset(100);
        let s = ThreeWaySplit::split(&ds, SplitRatios::PAPER, 42).unwrap();
        assert_eq!(s.train.len() + s.validation.len() + s.test.len(), 100);
        assert_eq!(s.train.len(), 50);
        assert_eq!(s.validation.len(), 35);
        assert_eq!(s.test.len(), 15);
    }

    #[test]
    fn split_is_deterministic_per_seed() {
        let ds = dataset(60);
        let a = ThreeWaySplit::split(&ds, SplitRatios::PAPER, 7).unwrap();
        let b = ThreeWaySplit::split(&ds, SplitRatios::PAPER, 7).unwrap();
        assert_eq!(a.train.flat(), b.train.flat());
        assert_eq!(a.test.labels(), b.test.labels());
        let c = ThreeWaySplit::split(&ds, SplitRatios::PAPER, 8).unwrap();
        assert_ne!(a.train.flat(), c.train.flat());
    }

    #[test]
    fn rows_are_disjoint_across_parts() {
        let ds = dataset(40);
        let s = ThreeWaySplit::split(&ds, SplitRatios::PAPER, 1).unwrap();
        // Feature column "f" is a unique id per row; no value may repeat.
        let mut seen = std::collections::HashSet::new();
        for part in [&s.train, &s.validation, &s.test] {
            for i in 0..part.len() {
                assert!(seen.insert(part.value(i, 1) as i64));
            }
        }
        assert_eq!(seen.len(), 40);
    }

    #[test]
    fn tiny_datasets_still_get_three_parts() {
        let ds = dataset(3);
        let s = ThreeWaySplit::split(&ds, SplitRatios::PAPER, 0).unwrap();
        assert_eq!(s.train.len(), 1);
        assert_eq!(s.validation.len(), 1);
        assert_eq!(s.test.len(), 1);
    }

    #[test]
    fn invalid_ratios_rejected() {
        let ds = dataset(10);
        let bad = SplitRatios { train: 0.9, validation: 0.2, test: 0.1 };
        assert!(ThreeWaySplit::split(&ds, bad, 0).is_err());
        let neg = SplitRatios { train: -0.5, validation: 1.0, test: 0.5 };
        assert!(ThreeWaySplit::split(&ds, neg, 0).is_err());
    }
}
