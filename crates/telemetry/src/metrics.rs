//! The metrics registry: counters, gauges, and fixed-bucket histograms.
//!
//! Metrics are `static` values with `const` constructors — call sites pay
//! one relaxed-atomic enabled check when disabled, and lock-free atomic
//! updates when enabled. A metric registers itself into the global
//! registry on first update, so snapshots enumerate exactly the metrics
//! that were touched (plus previously-touched ones at zero after a
//! [`crate::reset`]).
//!
//! Hot loops should accumulate locally and flush once — e.g.
//! `predict_pruned` counts skipped centroids in a register and performs a
//! single [`Counter::add`] per call; Lloyd's algorithm adds its per-fit
//! totals once per iteration, not per point.
//!
//! The well-known metric names live in [`counters`], [`gauges`], and
//! [`histograms`]; the catalog (name → unit → where recorded) is
//! documented in `DESIGN.md` §6.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Mutex;

/// Number of histogram buckets. Bucket `0` counts zero values; bucket
/// `i ≥ 1` counts values `v` with `2^(i-1) ≤ v < 2^i`; the last bucket is
/// unbounded above.
pub const HISTOGRAM_BUCKETS: usize = 32;

struct Registry {
    counters: Vec<&'static Counter>,
    gauges: Vec<&'static Gauge>,
    histograms: Vec<&'static Histogram>,
}

static REGISTRY: Mutex<Registry> =
    Mutex::new(Registry { counters: Vec::new(), gauges: Vec::new(), histograms: Vec::new() });

pub(crate) fn reset_values() {
    let reg = REGISTRY.lock().expect("metric registry poisoned");
    for c in &reg.counters {
        c.value.store(0, Ordering::Relaxed);
    }
    for g in &reg.gauges {
        g.value.store(0, Ordering::Relaxed);
    }
    for h in &reg.histograms {
        h.count.store(0, Ordering::Relaxed);
        h.sum.store(0, Ordering::Relaxed);
        for b in &h.buckets {
            b.store(0, Ordering::Relaxed);
        }
    }
}

pub(crate) fn collect_counters() -> Vec<(String, u64)> {
    let reg = REGISTRY.lock().expect("metric registry poisoned");
    let mut out: Vec<(String, u64)> = reg
        .counters
        .iter()
        .map(|c| (c.name.to_string(), c.value.load(Ordering::Relaxed)))
        .collect();
    out.sort();
    out
}

pub(crate) fn collect_gauges() -> Vec<(String, u64)> {
    let reg = REGISTRY.lock().expect("metric registry poisoned");
    let mut out: Vec<(String, u64)> = reg
        .gauges
        .iter()
        .map(|g| (g.name.to_string(), g.value.load(Ordering::Relaxed)))
        .collect();
    out.sort();
    out
}

pub(crate) fn collect_histograms() -> Vec<crate::sink::HistogramSnapshot> {
    let reg = REGISTRY.lock().expect("metric registry poisoned");
    let mut out: Vec<crate::sink::HistogramSnapshot> = reg
        .histograms
        .iter()
        .map(|h| crate::sink::HistogramSnapshot {
            name: h.name.to_string(),
            count: h.count.load(Ordering::Relaxed),
            sum: h.sum.load(Ordering::Relaxed),
            buckets: h.buckets.each_ref().map(|b| b.load(Ordering::Relaxed)).to_vec(),
        })
        .collect();
    out.sort_by(|a, b| a.name.cmp(&b.name));
    out
}

/// A monotonically increasing counter.
pub struct Counter {
    name: &'static str,
    value: AtomicU64,
    registered: AtomicBool,
}

impl Counter {
    /// Creates a counter — use in a `static`.
    pub const fn new(name: &'static str) -> Self {
        Self { name, value: AtomicU64::new(0), registered: AtomicBool::new(false) }
    }

    /// The metric name.
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// Adds `delta`. No-op (one relaxed load) when telemetry is disabled.
    #[inline]
    pub fn add(&'static self, delta: u64) {
        if !crate::enabled() {
            return;
        }
        if !self.registered.swap(true, Ordering::AcqRel) {
            REGISTRY.lock().expect("metric registry poisoned").counters.push(self);
        }
        self.value.fetch_add(delta, Ordering::Relaxed);
    }

    /// Adds 1.
    #[inline]
    pub fn incr(&'static self) {
        self.add(1);
    }

    /// Current value (test/report helper).
    pub fn get(&'static self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// A last-write-wins gauge holding a `u64` (sizes, counts, chosen k, …).
pub struct Gauge {
    name: &'static str,
    value: AtomicU64,
    registered: AtomicBool,
}

impl Gauge {
    /// Creates a gauge — use in a `static`.
    pub const fn new(name: &'static str) -> Self {
        Self { name, value: AtomicU64::new(0), registered: AtomicBool::new(false) }
    }

    /// The metric name.
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// Sets the gauge. No-op when telemetry is disabled.
    #[inline]
    pub fn set(&'static self, value: u64) {
        if !crate::enabled() {
            return;
        }
        if !self.registered.swap(true, Ordering::AcqRel) {
            REGISTRY.lock().expect("metric registry poisoned").gauges.push(self);
        }
        self.value.store(value, Ordering::Relaxed);
    }

    /// Current value (test/report helper).
    pub fn get(&'static self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// A histogram over `u64` values with a fixed power-of-two bucket layout:
/// bucket 0 counts zeros, bucket `i ≥ 1` counts `2^(i-1) ≤ v < 2^i`, and
/// the final bucket absorbs everything `≥ 2^30`. One layout for every
/// histogram keeps traces mergeable and the bucket math branch-free.
pub struct Histogram {
    name: &'static str,
    buckets: [AtomicU64; HISTOGRAM_BUCKETS],
    sum: AtomicU64,
    count: AtomicU64,
    registered: AtomicBool,
}

/// The bucket a value lands in: `0` for zero, else
/// `min(bit_length(v), HISTOGRAM_BUCKETS - 1)`.
#[inline]
pub fn bucket_index(value: u64) -> usize {
    if value == 0 {
        0
    } else {
        ((64 - value.leading_zeros()) as usize).min(HISTOGRAM_BUCKETS - 1)
    }
}

/// The exclusive upper bound of bucket `i` (`None` for the unbounded last
/// bucket). Bucket 0 covers exactly `{0}`, so its bound is 1.
pub fn bucket_upper_bound(i: usize) -> Option<u64> {
    if i + 1 >= HISTOGRAM_BUCKETS {
        None
    } else {
        Some(1u64 << i)
    }
}

impl Histogram {
    /// Creates a histogram — use in a `static`.
    pub const fn new(name: &'static str) -> Self {
        Self {
            name,
            buckets: [const { AtomicU64::new(0) }; HISTOGRAM_BUCKETS],
            sum: AtomicU64::new(0),
            count: AtomicU64::new(0),
            registered: AtomicBool::new(false),
        }
    }

    /// The metric name.
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// Records one observation. No-op when telemetry is disabled.
    #[inline]
    pub fn record(&'static self, value: u64) {
        if !crate::enabled() {
            return;
        }
        if !self.registered.swap(true, Ordering::AcqRel) {
            REGISTRY.lock().expect("metric registry poisoned").histograms.push(self);
        }
        self.buckets[bucket_index(value)].fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(value, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
    }

    /// Records a duration in nanoseconds.
    #[inline]
    pub fn record_ns(&'static self, dur: std::time::Duration) {
        self.record(dur.as_nanos() as u64);
    }
}

/// Well-known counters. Units and recording sites: `DESIGN.md` §6.
pub mod counters {
    use super::Counter;

    /// Lloyd iterations executed across every k-means descent (offline
    /// clustering + LOG-Means/elbow probes).
    pub static LLOYD_ITERATIONS: Counter = Counter::new("offline.lloyd_iterations");
    /// Points whose full centroid scan a Lloyd iteration skipped thanks to
    /// the Hamerly bound.
    pub static LLOYD_BOUND_SKIPS: Counter = Counter::new("clustering.bound_skips");
    /// SSE probes evaluated by LOG-Means / the elbow estimator (cache
    /// misses; cache hits are free).
    pub static LOGMEANS_PROBES: Counter = Counter::new("clustering.logmeans_probes");
    /// Probes that additionally ran a warm-started descent from cached
    /// centroids.
    pub static LOGMEANS_WARM_STARTS: Counter = Counter::new("clustering.warm_starts");
    /// Centroids skipped by the norm-gap prune in the online
    /// nearest-centroid match.
    pub static ONLINE_PRUNED_CANDIDATES: Counter = Counter::new("online.pruned_candidates");
    /// Samples classified by the online phase.
    pub static ONLINE_SAMPLES: Counter = Counter::new("online.samples");
    /// Leaf points reached (post-filter) by kd-tree / brute kNN queries.
    pub static KNN_POINTS_SCANNED: Counter = Counter::new("knn.points_scanned");
    /// Leaf points skipped by the kd-tree norm-gap prefilter.
    pub static KNN_NORM_GAP_PRUNED: Counter = Counter::new("knn.norm_gap_pruned");
    /// Leaf points abandoned by the early-exit distance accumulation.
    pub static KNN_EARLY_EXIT_PRUNED: Counter = Counter::new("knn.early_exit_pruned");
    /// Candidate split positions evaluated while fitting decision trees.
    pub static SPLITS_EVALUATED: Counter = Counter::new("offline.splits_evaluated");
    /// Hyperparameter grid points fitted for pool training.
    pub static POOL_GRID_POINTS: Counter = Counter::new("pool.grid_points");
    /// Auto-tuning candidates evaluated.
    pub static TUNING_TRIALS: Counter = Counter::new("tuning.trials");
    /// Auto-tuning candidates that failed to fit (skipped).
    pub static TUNING_TRIALS_FAILED: Counter = Counter::new("tuning.trials_failed");
    /// Centroid norms recomputed (not deserialised) while restoring a
    /// persisted model.
    pub static PERSIST_NORMS_RECOMPUTED: Counter = Counter::new("persist.norms_recomputed");
    /// Attributes removed as proxies by the `Remove` mitigation strategy.
    pub static PROXY_ATTRS_REMOVED: Counter = Counter::new("proxy.attrs_removed");
    /// Faults fired by a `falcc::faults::FaultPlan` (deterministic
    /// injection harness). Zero in production runs.
    pub static FAULTS_INJECTED: Counter = Counter::new("faults.injected");
    /// Pool members quarantined during offline intake (injected failure or
    /// a non-finite probability detected on the validation probe).
    pub static POOL_MEMBERS_QUARANTINED: Counter = Counter::new("pool.members_quarantined");
    /// Regions whose assessment set was empty or a single point — served
    /// through the fallback chain instead of per-region assessment.
    pub static DEGENERATE_CLUSTERS: Counter = Counter::new("offline.degenerate_clusters");
    /// (region, group) cells healed by borrowing the nearest covering
    /// region's model choice.
    pub static REGION_GROUP_FALLBACKS: Counter = Counter::new("offline.region_group_fallbacks");
    /// (region, group) cells healed by the global-best combination (no
    /// region covered the group at all).
    pub static REGION_GLOBAL_FALLBACKS: Counter = Counter::new("offline.region_global_fallbacks");
    /// Batch-classification rows rejected with a typed per-row error
    /// (non-finite features, wrong width, out-of-domain sensitive values).
    pub static ONLINE_ROWS_REJECTED: Counter = Counter::new("online.rows_rejected");
    /// Snapshots rejected at load time (corruption, truncation, version
    /// skew, failed checksum).
    pub static SNAPSHOTS_REJECTED: Counter = Counter::new("persist.snapshots_rejected");
    /// Round-trip self-checks performed on snapshot save.
    pub static SNAPSHOT_SELF_CHECKS: Counter = Counter::new("persist.self_checks");
    /// Empty clusters re-seeded from the farthest point during Lloyd
    /// iterations (the degenerate-cluster collapse fix).
    pub static KMEANS_EMPTY_RESEEDS: Counter = Counter::new("clustering.empty_reseeds");
    /// Nanoseconds spent lowering fitted models into the compiled serving
    /// plane (flat SoA artifacts), accumulated across `compile()` calls.
    pub static SERVE_COMPILE_NS: Counter = Counter::new("serve.compile_ns");
    /// Rows dispatched through per-model buckets by the compiled batch
    /// path.
    pub static SERVE_BUCKET_ROWS: Counter = Counter::new("serve.bucket_rows");
    /// Rows the compiled batch path served in input order instead —
    /// small-arena and kNN-delegate members that skip bucketing. Together
    /// with `serve.bucket_rows` this reconciles with every accepted row,
    /// whatever the member kind.
    pub static SERVE_ORDERED_ROWS: Counter = Counter::new("serve.ordered_rows");
    /// Retries performed by the offline checkpoint journal's bounded
    /// retry layer after a transient I/O failure.
    pub static OFFLINE_RETRIES: Counter = Counter::new("offline.retries");
    /// Checkpoint records committed (record file durable + manifest entry
    /// appended) by the offline journal.
    pub static CHECKPOINTS_WRITTEN: Counter = Counter::new("checkpoint.written");
    /// Pipeline stages satisfied from a journaled checkpoint on resume
    /// instead of being recomputed.
    pub static CHECKPOINTS_RESUMED: Counter = Counter::new("checkpoint.resumed");
    /// Journal entries discarded on resume: torn or corrupt records,
    /// broken manifest chains, and stale-generation suffixes.
    pub static CHECKPOINTS_DISCARDED: Counter = Counter::new("checkpoint.discarded");
    /// Binary serving artifacts rejected at load time (corruption,
    /// truncation, misalignment, version skew, stale fingerprint).
    pub static ARTIFACTS_REJECTED: Counter = Counter::new("artifact.rejected");
    /// Serving starts that preferred a binary artifact but fell back to
    /// the JSON restore+compile path (missing, stale, or damaged
    /// artifact).
    pub static SERVE_ARTIFACT_FALLBACKS: Counter = Counter::new("serve.artifact_fallbacks");
}

/// Well-known gauges.
pub mod gauges {
    use super::Gauge;

    /// Number of local regions (clusters) of the most recently fitted
    /// model.
    pub static OFFLINE_CLUSTERS: Gauge = Gauge::new("offline.clusters");
    /// Pool size of the most recently fitted model.
    pub static OFFLINE_POOL_SIZE: Gauge = Gauge::new("offline.pool_size");
    /// Candidate model combinations assessed per cluster.
    pub static OFFLINE_COMBINATIONS: Gauge = Gauge::new("offline.combinations");
    /// Distinct compiled models in the most recent `compile()` — the
    /// deduplicated reach of the region→group dispatch table (≤ pool
    /// size × groups).
    pub static SERVE_DEDUP_MODELS: Gauge = Gauge::new("serve.dedup_models");
}

/// Well-known histograms.
pub mod histograms {
    use super::Histogram;

    /// Per-sample duration of the online nearest-centroid region match,
    /// nanoseconds.
    pub static ONLINE_MATCH_NS: Histogram = Histogram::new("online.match_ns");
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tests::TEST_LOCK;

    #[test]
    fn bucket_boundaries_are_powers_of_two() {
        // Bucket 0 = {0}; bucket i = [2^(i-1), 2^i).
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 1);
        assert_eq!(bucket_index(2), 2);
        assert_eq!(bucket_index(3), 2);
        assert_eq!(bucket_index(4), 3);
        assert_eq!(bucket_index(7), 3);
        assert_eq!(bucket_index(8), 4);
        assert_eq!(bucket_index(1023), 10);
        assert_eq!(bucket_index(1024), 11);
        assert_eq!(bucket_index(u64::MAX), HISTOGRAM_BUCKETS - 1);
        // Every value < the bucket's upper bound and >= the previous one.
        for i in 1..HISTOGRAM_BUCKETS - 1 {
            let hi = bucket_upper_bound(i).unwrap();
            assert_eq!(bucket_index(hi - 1), i, "upper boundary of bucket {i}");
            assert_eq!(bucket_index(hi), i + 1, "lower boundary of bucket {}", i + 1);
        }
        assert_eq!(bucket_upper_bound(HISTOGRAM_BUCKETS - 1), None);
    }

    #[test]
    fn histogram_records_into_the_right_buckets() {
        static H: Histogram = Histogram::new("test.bucket_hist");
        let _guard = TEST_LOCK.lock().unwrap();
        crate::enable();
        crate::reset();
        for v in [0u64, 1, 2, 3, 4, 1000, 1 << 40] {
            H.record(v);
        }
        crate::disable();
        let snap = crate::snapshot();
        let h = snap.histogram("test.bucket_hist").expect("registered");
        assert_eq!(h.count, 7);
        assert_eq!(h.sum, 1 + 2 + 3 + 4 + 1000 + (1u64 << 40));
        assert_eq!(h.buckets[0], 1); // 0
        assert_eq!(h.buckets[1], 1); // 1
        assert_eq!(h.buckets[2], 2); // 2, 3
        assert_eq!(h.buckets[3], 1); // 4
        assert_eq!(h.buckets[10], 1); // 1000
        assert_eq!(h.buckets[HISTOGRAM_BUCKETS - 1], 1); // 2^40
    }

    #[test]
    fn counters_and_gauges_register_on_first_touch() {
        static C: Counter = Counter::new("test.counter");
        static G: Gauge = Gauge::new("test.gauge");
        let _guard = TEST_LOCK.lock().unwrap();
        crate::enable();
        crate::reset();
        C.add(3);
        C.incr();
        G.set(9);
        G.set(4);
        crate::disable();
        let snap = crate::snapshot();
        assert_eq!(snap.counter("test.counter"), 4);
        assert_eq!(snap.gauge("test.gauge"), Some(4));
        // Reset zeroes but keeps registration.
        crate::reset();
        assert_eq!(crate::snapshot().counter("test.counter"), 0);
    }

    #[test]
    fn disabled_updates_are_dropped() {
        static C: Counter = Counter::new("test.disabled_counter");
        let _guard = TEST_LOCK.lock().unwrap();
        crate::disable();
        crate::reset();
        C.add(5);
        assert_eq!(crate::snapshot().counter("test.disabled_counter"), 0);
    }
}
