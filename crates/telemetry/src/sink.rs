//! Sinks: the in-memory [`Snapshot`], the human-readable phase-tree
//! report, and the JSON-lines export.
//!
//! A snapshot is an immutable copy of everything collected so far; it can
//! be queried in tests ([`Snapshot::counter`], [`Snapshot::children_of`]),
//! rendered for humans ([`Snapshot::render_tree`]), or exported one JSON
//! object per line ([`Snapshot::to_jsonl`] / [`Snapshot::write_jsonl`]).
//! The JSON writer is hand-rolled — this crate takes no dependencies —
//! and emits spans in deterministic tree order (siblings sorted by
//! `(ordinal, id)`, depth-first), so two runs with the same program
//! structure produce line-for-line comparable traces modulo ids and
//! timings.

use crate::span::{SpanRecord, UNORDERED};
use std::fmt::Write as _;

/// Aggregated state of one histogram at snapshot time.
#[derive(Debug, Clone)]
pub struct HistogramSnapshot {
    /// Metric name.
    pub name: String,
    /// Number of recorded observations.
    pub count: u64,
    /// Sum of all observations.
    pub sum: u64,
    /// Per-bucket counts; layout in [`crate::metrics::bucket_index`].
    pub buckets: Vec<u64>,
}

impl HistogramSnapshot {
    /// Mean observation, or 0 when empty.
    pub fn mean(&self) -> u64 {
        self.sum.checked_div(self.count).unwrap_or(0)
    }

    /// Smallest bucket upper bound covering at least `q` (0..=1) of the
    /// observations — a coarse quantile, exact to the power-of-two bucket.
    pub fn quantile_upper_bound(&self, q: f64) -> Option<u64> {
        if self.count == 0 {
            return None;
        }
        let target = (q.clamp(0.0, 1.0) * self.count as f64).ceil() as u64;
        let mut seen = 0u64;
        for (i, b) in self.buckets.iter().enumerate() {
            seen += b;
            if seen >= target.max(1) {
                return crate::metrics::bucket_upper_bound(i).or(Some(u64::MAX));
            }
        }
        Some(u64::MAX)
    }
}

/// An immutable copy of all collected spans and metrics.
pub struct Snapshot {
    /// Every finished span and event, in collection order.
    pub spans: Vec<SpanRecord>,
    /// `(name, value)` for every registered counter, sorted by name.
    pub counters: Vec<(String, u64)>,
    /// `(name, value)` for every registered gauge, sorted by name.
    pub gauges: Vec<(String, u64)>,
    /// Every registered histogram, sorted by name.
    pub histograms: Vec<HistogramSnapshot>,
}

impl Snapshot {
    /// Copies the current collector and registry state.
    pub fn collect() -> Self {
        Self {
            spans: crate::span::drain_records(),
            counters: crate::metrics::collect_counters(),
            gauges: crate::metrics::collect_gauges(),
            histograms: crate::metrics::collect_histograms(),
        }
    }

    /// Value of the named counter (0 if never touched).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.iter().find(|(n, _)| n == name).map_or(0, |(_, v)| *v)
    }

    /// Value of the named gauge, if it was ever set.
    pub fn gauge(&self, name: &str) -> Option<u64> {
        self.gauges.iter().find(|(n, _)| n == name).map(|(_, v)| *v)
    }

    /// The named histogram, if it ever recorded.
    pub fn histogram(&self, name: &str) -> Option<&HistogramSnapshot> {
        self.histograms.iter().find(|h| h.name == name)
    }

    /// Root spans (parent 0), sorted by `(ordinal, id)`.
    pub fn roots(&self) -> Vec<&SpanRecord> {
        self.children_of(0)
    }

    /// Children of the given span, sorted by `(ordinal, id)` — the
    /// deterministic sibling order ([`crate::span_under`]).
    pub fn children_of(&self, id: crate::SpanId) -> Vec<&SpanRecord> {
        let mut kids: Vec<&SpanRecord> = self.spans.iter().filter(|s| s.parent == id).collect();
        kids.sort_by_key(|s| (s.ordinal, s.id));
        kids
    }

    /// Sum of `dur_ns` over every span with the given name — the
    /// per-phase totals behind `exp_runtime`'s breakdown table.
    pub fn total_ns(&self, name: &str) -> u64 {
        self.spans.iter().filter(|s| s.name == name && !s.is_event).map(|s| s.dur_ns).sum()
    }

    /// Renders the phase tree: one line per span, indented by depth,
    /// siblings in deterministic order, durations humanised. Events render
    /// as `· name: label` without a duration. Metrics follow the tree.
    pub fn render_tree(&self) -> String {
        let mut out = String::new();
        for root in self.roots() {
            self.render_span(&mut out, root, 0);
        }
        if !self.counters.is_empty() || !self.gauges.is_empty() {
            out.push_str("-- metrics --\n");
            for (name, v) in &self.counters {
                let _ = writeln!(out, "  {name} = {v}");
            }
            for (name, v) in &self.gauges {
                let _ = writeln!(out, "  {name} = {v} (gauge)");
            }
        }
        for h in &self.histograms {
            let q = |q: f64| h.quantile_upper_bound(q).map_or_else(|| "?".into(), fmt_ns);
            let _ = writeln!(
                out,
                "  {} = n={} mean={} p50<={} p90<={} p99<={} (histogram)",
                h.name,
                h.count,
                fmt_ns(h.mean()),
                q(0.5),
                q(0.9),
                q(0.99),
            );
        }
        out
    }

    fn render_span(&self, out: &mut String, s: &SpanRecord, depth: usize) {
        for _ in 0..depth {
            out.push_str("  ");
        }
        if s.is_event {
            let _ = writeln!(out, "· {}: {}", s.name, s.label.as_deref().unwrap_or(""));
            return;
        }
        match &s.label {
            Some(l) => {
                let _ = writeln!(out, "{} [{}]  {}", s.name, l, fmt_ns(s.dur_ns));
            }
            None => {
                let _ = writeln!(out, "{}  {}", s.name, fmt_ns(s.dur_ns));
            }
        }
        for child in self.children_of(s.id) {
            self.render_span(out, child, depth + 1);
        }
    }

    /// Serialises the snapshot as JSON lines: spans in deterministic tree
    /// order (`{"type":"span"|"event",...}`), then counters, gauges, and
    /// histograms. Every line is a complete JSON object.
    pub fn to_jsonl(&self) -> String {
        let mut out = String::new();
        for root in self.roots() {
            self.jsonl_span(&mut out, root);
        }
        for (name, v) in &self.counters {
            let _ = writeln!(out, "{{\"type\":\"counter\",\"name\":{},\"value\":{v}}}", json_str(name));
        }
        for (name, v) in &self.gauges {
            let _ = writeln!(out, "{{\"type\":\"gauge\",\"name\":{},\"value\":{v}}}", json_str(name));
        }
        for h in &self.histograms {
            let buckets: Vec<String> = h.buckets.iter().map(|b| b.to_string()).collect();
            let _ = writeln!(
                out,
                "{{\"type\":\"histogram\",\"name\":{},\"count\":{},\"sum\":{},\"buckets\":[{}]}}",
                json_str(&h.name),
                h.count,
                h.sum,
                buckets.join(","),
            );
        }
        out
    }

    fn jsonl_span(&self, out: &mut String, s: &SpanRecord) {
        let kind = if s.is_event { "event" } else { "span" };
        let _ = write!(
            out,
            "{{\"type\":\"{kind}\",\"id\":{},\"parent\":{},\"name\":{}",
            s.id,
            s.parent,
            json_str(s.name),
        );
        if let Some(l) = &s.label {
            let _ = write!(out, ",\"label\":{}", json_str(l));
        }
        if s.ordinal != UNORDERED {
            let _ = write!(out, ",\"ordinal\":{}", s.ordinal);
        }
        let _ = writeln!(out, ",\"start_ns\":{},\"dur_ns\":{}}}", s.start_ns, s.dur_ns);
        for child in self.children_of(s.id) {
            self.jsonl_span(out, child);
        }
    }

    /// Writes [`Snapshot::to_jsonl`] to a file.
    pub fn write_jsonl(&self, path: &std::path::Path) -> std::io::Result<()> {
        std::fs::write(path, self.to_jsonl())
    }
}

/// Formats nanoseconds with an adaptive unit: `123 ns`, `45.6 µs`,
/// `7.89 ms`, `1.23 s`.
pub fn fmt_ns(ns: u64) -> String {
    if ns < 1_000 {
        format!("{ns} ns")
    } else if ns < 1_000_000 {
        format!("{:.1} µs", ns as f64 / 1e3)
    } else if ns < 1_000_000_000 {
        format!("{:.2} ms", ns as f64 / 1e6)
    } else {
        format!("{:.2} s", ns as f64 / 1e9)
    }
}

/// JSON string literal with escaping for quotes, backslashes, and control
/// characters.
fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tests::TEST_LOCK;

    #[test]
    fn jsonl_lines_are_well_formed_objects() {
        let _guard = TEST_LOCK.lock().unwrap();
        crate::enable();
        crate::reset();
        {
            let _root = crate::span("root");
            let _child = crate::span_labeled("child", "with \"quotes\" and \\slashes\\");
            crate::event("note", "line\nbreak");
            crate::metrics::counters::ONLINE_SAMPLES.add(2);
            crate::metrics::histograms::ONLINE_MATCH_NS.record(150);
        }
        crate::disable();
        let jsonl = crate::snapshot().to_jsonl();
        assert!(!jsonl.is_empty());
        for line in jsonl.lines() {
            assert!(line.starts_with('{') && line.ends_with('}'), "not an object: {line}");
            // Escapes must leave no raw control chars or unbalanced quotes.
            assert!(!line.contains('\u{0}'));
            let quotes = line.chars().filter(|&c| c == '"').count();
            assert_eq!(quotes % 2, 0, "unbalanced quotes: {line}");
        }
        assert!(jsonl.contains("\\\"quotes\\\""));
        assert!(jsonl.contains("line\\nbreak"));
        assert!(jsonl.contains("\"type\":\"counter\""));
        assert!(jsonl.contains("\"type\":\"histogram\""));
    }

    #[test]
    fn render_tree_shows_nesting_and_metrics() {
        let _guard = TEST_LOCK.lock().unwrap();
        crate::enable();
        crate::reset();
        {
            let _root = crate::span("offline.fit");
            let _child = crate::span("offline.clustering");
            crate::metrics::counters::LLOYD_ITERATIONS.add(12);
        }
        crate::disable();
        let tree = crate::snapshot().render_tree();
        let root_line = tree.lines().position(|l| l.starts_with("offline.fit")).unwrap();
        let child_line = tree.lines().position(|l| l.starts_with("  offline.clustering")).unwrap();
        assert!(child_line > root_line, "child must be indented under parent:\n{tree}");
        assert!(tree.contains("offline.lloyd_iterations = 12"), "{tree}");
    }

    #[test]
    fn quantile_and_mean_on_empty_histogram() {
        let h = HistogramSnapshot { name: "x".into(), count: 0, sum: 0, buckets: vec![0; 32] };
        assert_eq!(h.mean(), 0);
        assert_eq!(h.quantile_upper_bound(0.5), None);
    }

    #[test]
    fn fmt_ns_units() {
        assert_eq!(fmt_ns(37), "37 ns");
        assert_eq!(fmt_ns(1_500), "1.5 µs");
        assert_eq!(fmt_ns(2_500_000), "2.50 ms");
        assert_eq!(fmt_ns(3_000_000_000), "3.00 s");
    }
}
