//! # falcc-telemetry
//!
//! Structured observability for the FALCC pipeline: hierarchical **spans**
//! with monotonic timing, a **metrics registry** (counters, gauges,
//! fixed-bucket histograms), live serving **monitors** (windowed
//! fairness/drift aggregation — see [`monitor`]), and pluggable **sinks**
//! (in-memory snapshot for tests, a human-readable phase-tree report,
//! JSON-lines export, Prometheus-style text exposition).
//!
//! Three invariants govern the design:
//!
//! 1. **Zero cost when disabled.** Every recording entry point first reads
//!    one relaxed atomic ([`enabled`]); when telemetry is off, spans are
//!    inert guards and metric updates return immediately. The disabled
//!    path adds no allocation, no lock, no syscall — the overhead smoke
//!    check in `exp_runtime --smoke` pins this.
//! 2. **Observation never perturbs results.** Telemetry only *records*:
//!    instrumented code computes the same values, in the same order, with
//!    recording on or off. The workspace determinism suite runs
//!    bit-identically with tracing on and off (`tests/telemetry.rs`).
//! 3. **Deterministic structure.** Span *durations* are wall-clock and
//!    vary run to run, but the span **tree shape and ordering** are a pure
//!    function of the program: spans opened on one thread nest via a
//!    thread-local stack in program order, and spans opened on worker
//!    threads carry an explicit parent plus an **ordinal** (their work-item
//!    index), which the snapshot sorts by. This mirrors the ordered-merge
//!    contract of `falcc_models::parallel`: the merged tree is identical
//!    for 1, 2, or 8 worker threads.
//!
//! ## Quick example
//!
//! ```
//! falcc_telemetry::enable();
//! {
//!     let _fit = falcc_telemetry::span("offline.fit");
//!     let _cluster = falcc_telemetry::span("offline.clustering");
//!     falcc_telemetry::counters::LLOYD_ITERATIONS.add(7);
//! }
//! let snap = falcc_telemetry::snapshot();
//! assert_eq!(snap.counter("offline.lloyd_iterations"), 7);
//! println!("{}", snap.render_tree());   // phase tree with durations
//! let jsonl = snap.to_jsonl();          // one JSON object per line
//! falcc_telemetry::disable();
//! # assert!(jsonl.contains("offline.clustering"));
//! ```
//!
//! ## Enabling
//!
//! Telemetry is off by default. Turn it on programmatically with
//! [`enable`] (the CLI/bench `--profile` and `--trace-out` flags do this),
//! or set the environment variable `FALCC_TELEMETRY=1` to enable it at
//! first use — which is how CI runs the determinism and golden-regression
//! suites under tracing without touching their code.

pub mod metrics;
pub mod monitor;
pub mod sink;
pub mod span;

pub use metrics::{counters, gauges, histograms, Counter, Gauge, Histogram};
pub use monitor::{MonitorSnapshot, MonitorSpec, MonitorState};
pub use sink::{HistogramSnapshot, Snapshot};
pub use span::{event, span, span_labeled, span_under, Span, SpanId, SpanRecord};

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Once;

static ENABLED: AtomicBool = AtomicBool::new(false);
static QUIET: AtomicBool = AtomicBool::new(false);
static ENV_INIT: Once = Once::new();

/// Whether telemetry is currently recording. This is the cheap check every
/// recording entry point performs first: one `Once` fast path (an acquire
/// load) plus one relaxed load.
///
/// The first call consults the `FALCC_TELEMETRY` environment variable
/// (`1`/`true`/`on` enable recording), so test suites and CI can profile
/// binaries that never call [`enable`] themselves.
#[inline]
pub fn enabled() -> bool {
    ENV_INIT.call_once(|| {
        if let Ok(v) = std::env::var("FALCC_TELEMETRY") {
            if matches!(v.as_str(), "1" | "true" | "on") {
                ENABLED.store(true, Ordering::Relaxed);
            }
        }
    });
    ENABLED.load(Ordering::Relaxed)
}

/// Starts recording spans, events, and metrics.
pub fn enable() {
    // Settle the env probe first so a later `enabled()` call cannot race
    // it and overwrite an explicit enable.
    let _ = enabled();
    ENABLED.store(true, Ordering::Relaxed);
}

/// Stops recording. Already-collected data stays available to
/// [`snapshot`] until [`reset`].
pub fn disable() {
    let _ = enabled();
    ENABLED.store(false, Ordering::Relaxed);
}

/// Clears all collected spans and zeroes every registered metric. Call
/// between measured sections (e.g. `exp_runtime` resets before the run
/// whose phase tree it reports). Spans still open across a reset will
/// record into the fresh collector; avoid resetting mid-span.
pub fn reset() {
    span::reset_collector();
    metrics::reset_values();
}

/// Suppresses [`progress`] output to stderr (the events are still
/// recorded). Wired to the CLI/bench `--quiet` flags.
pub fn set_quiet(quiet: bool) {
    QUIET.store(quiet, Ordering::Relaxed);
}

/// Whether progress output to stderr is suppressed.
pub fn is_quiet() -> bool {
    QUIET.load(Ordering::Relaxed)
}

/// A progress message: printed to stderr (unless [`set_quiet`]) *and*
/// recorded as a `progress` event when telemetry is enabled — so `--quiet`
/// and `--trace-out` compose: quiet runs still carry their progress log in
/// the trace.
pub fn progress(msg: impl AsRef<str>) {
    let msg = msg.as_ref();
    if enabled() {
        event("progress", msg);
    }
    if !is_quiet() {
        eprintln!("{msg}");
    }
}

/// Collects the current spans and metrics into an immutable [`Snapshot`].
/// Recording may continue afterwards; the snapshot is a copy.
pub fn snapshot() -> Snapshot {
    Snapshot::collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    // Telemetry state is process-global; tests that toggle it serialize
    // on this lock so cargo's parallel test threads cannot interleave.
    pub(crate) static TEST_LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());

    #[test]
    fn disabled_by_default_and_toggles() {
        let _guard = TEST_LOCK.lock().unwrap();
        disable();
        assert!(!enabled());
        enable();
        assert!(enabled());
        disable();
        assert!(!enabled());
    }

    #[test]
    fn disabled_spans_record_nothing() {
        let _guard = TEST_LOCK.lock().unwrap();
        disable();
        reset();
        {
            let _s = span("should.not.appear");
            metrics::counters::LLOYD_ITERATIONS.add(5);
        }
        let snap = snapshot();
        assert!(snap.spans.is_empty());
        assert_eq!(snap.counter("offline.lloyd_iterations"), 0);
    }

    #[test]
    fn quiet_flag_round_trips() {
        set_quiet(true);
        assert!(is_quiet());
        set_quiet(false);
        assert!(!is_quiet());
    }
}
