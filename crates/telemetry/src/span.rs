//! The span/event core: RAII guards with monotonic timing, a thread-safe
//! collector, and deterministic tree structure.
//!
//! # Parenting and ordering
//!
//! Spans opened with [`span`]/[`span_labeled`] parent under the innermost
//! open span *of the same thread* (a thread-local stack), in program
//! order. Code that fans work out to worker threads — where thread-local
//! stacks start empty and scheduling order is nondeterministic — uses
//! [`span_under`] instead: an explicit parent id plus an **ordinal**, the
//! work item's index. Snapshots sort siblings by `(ordinal, id)`, so the
//! merged tree is identical for every thread count: the same guarantee
//! `falcc_models::parallel` gives for data, extended to traces.
//!
//! Durations come from a single process-wide [`Instant`] epoch, so span
//! start offsets are comparable across threads.

use std::cell::RefCell;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, OnceLock};
use std::time::Instant;

/// Identifier of a recorded span. `0` is reserved (inert guards / "no
/// parent"); ids increase in creation order within a thread.
pub type SpanId = u64;

/// Ordinal value meaning "no explicit ordering — fall back to id order".
pub const UNORDERED: u64 = u64::MAX;

/// One finished span or event, as stored by the collector.
#[derive(Debug, Clone)]
pub struct SpanRecord {
    /// Unique id (creation order within a thread).
    pub id: SpanId,
    /// Parent span id, `0` for roots.
    pub parent: SpanId,
    /// Static span name, e.g. `offline.clustering`.
    pub name: &'static str,
    /// Optional free-form label, e.g. `k=12`.
    pub label: Option<String>,
    /// Explicit sibling ordering key ([`UNORDERED`] = use id order).
    pub ordinal: u64,
    /// Start offset from the collector epoch, nanoseconds.
    pub start_ns: u64,
    /// Duration in nanoseconds (0 for events).
    pub dur_ns: u64,
    /// `true` for instantaneous events.
    pub is_event: bool,
}

struct Collector {
    epoch: Instant,
    spans: Mutex<Vec<SpanRecord>>,
}

static NEXT_ID: AtomicU64 = AtomicU64::new(1);
static COLLECTOR: OnceLock<Collector> = OnceLock::new();

thread_local! {
    static STACK: RefCell<Vec<SpanId>> = const { RefCell::new(Vec::new()) };
}

fn collector() -> &'static Collector {
    COLLECTOR.get_or_init(|| Collector { epoch: Instant::now(), spans: Mutex::new(Vec::new()) })
}

pub(crate) fn reset_collector() {
    let c = collector();
    c.spans.lock().expect("span collector poisoned").clear();
    // Restart ids so tree ordering is reproducible run-to-run within a
    // process (exp_runtime resets before its measured section).
    NEXT_ID.store(1, Ordering::Relaxed);
}

pub(crate) fn drain_records() -> Vec<SpanRecord> {
    collector().spans.lock().expect("span collector poisoned").clone()
}

/// An RAII span guard: created by [`span`]/[`span_labeled`]/[`span_under`],
/// records itself into the collector on drop. Inert (id 0, no work on
/// drop) when telemetry was disabled at creation.
#[must_use = "a span measures the scope it is alive in; binding it to _ drops it immediately"]
pub struct Span {
    id: SpanId,
    parent: SpanId,
    name: &'static str,
    label: Option<String>,
    ordinal: u64,
    start: Option<Instant>,
}

impl Span {
    /// This span's id — pass to [`span_under`] in worker closures to
    /// parent their spans here. Returns 0 for inert guards (disabled
    /// telemetry); `span_under(0, ..)` yields root spans, which keeps the
    /// call sites branch-free.
    pub fn id(&self) -> SpanId {
        self.id
    }

    fn inert() -> Self {
        Self { id: 0, parent: 0, name: "", label: None, ordinal: UNORDERED, start: None }
    }

    fn open(parent: Option<SpanId>, name: &'static str, label: Option<String>, ordinal: u64) -> Self {
        if !crate::enabled() {
            return Self::inert();
        }
        let id = NEXT_ID.fetch_add(1, Ordering::Relaxed);
        let parent = match parent {
            Some(p) => p,
            None => STACK.with(|s| s.borrow().last().copied().unwrap_or(0)),
        };
        STACK.with(|s| s.borrow_mut().push(id));
        // Touch the collector now so the epoch predates the span start.
        let _ = collector();
        Self { id, parent, name, label, ordinal, start: Some(Instant::now()) }
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        let Some(start) = self.start else { return };
        let dur_ns = start.elapsed().as_nanos() as u64;
        let c = collector();
        let start_ns = start.duration_since(c.epoch).as_nanos() as u64;
        STACK.with(|s| {
            let mut stack = s.borrow_mut();
            // Well-nested drops pop our own id; tolerate (and repair)
            // out-of-order drops rather than corrupting later parents.
            if let Some(pos) = stack.iter().rposition(|&x| x == self.id) {
                stack.truncate(pos);
            }
        });
        c.spans.lock().expect("span collector poisoned").push(SpanRecord {
            id: self.id,
            parent: self.parent,
            name: self.name,
            label: self.label.take(),
            ordinal: self.ordinal,
            start_ns,
            dur_ns,
            is_event: false,
        });
    }
}

/// Opens a span parented under the innermost open span of this thread.
/// Returns an inert guard when telemetry is disabled.
#[inline]
pub fn span(name: &'static str) -> Span {
    Span::open(None, name, None, UNORDERED)
}

/// [`span`] with a free-form label (shown in the phase tree and trace).
/// The label is only materialised when telemetry is enabled — pass it
/// through a closure-free `format!` only on hot paths you have measured.
#[inline]
pub fn span_labeled(name: &'static str, label: impl Into<String>) -> Span {
    if !crate::enabled() {
        return Span::inert();
    }
    Span::open(None, name, Some(label.into()), UNORDERED)
}

/// Opens a span under an explicit parent with an explicit sibling ordinal —
/// the entry point for worker threads, where implicit (stack) parenting
/// would be nondeterministic. `ordinal` should be the work item's index;
/// snapshots sort siblings by `(ordinal, id)`, so the tree is identical
/// for every thread count.
#[inline]
pub fn span_under(parent: SpanId, name: &'static str, ordinal: u64) -> Span {
    Span::open(Some(parent), name, None, ordinal)
}

/// Records an instantaneous event under the innermost open span of this
/// thread. No-op when telemetry is disabled.
pub fn event(name: &'static str, label: impl AsRef<str>) {
    if !crate::enabled() {
        return;
    }
    let id = NEXT_ID.fetch_add(1, Ordering::Relaxed);
    let parent = STACK.with(|s| s.borrow().last().copied().unwrap_or(0));
    let c = collector();
    let start_ns = c.epoch.elapsed().as_nanos() as u64;
    c.spans.lock().expect("span collector poisoned").push(SpanRecord {
        id,
        parent,
        name,
        label: Some(label.as_ref().to_string()),
        ordinal: UNORDERED,
        start_ns,
        dur_ns: 0,
        is_event: true,
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tests::TEST_LOCK;

    #[test]
    fn nesting_follows_program_order() {
        let _guard = TEST_LOCK.lock().unwrap();
        crate::enable();
        crate::reset();
        {
            let _root = span("root");
            {
                let _a = span_labeled("child", "first");
                let _aa = span("grandchild");
            }
            let _b = span_labeled("child", "second");
        }
        crate::disable();
        let snap = crate::snapshot();
        let roots = snap.roots();
        assert_eq!(roots.len(), 1);
        assert_eq!(roots[0].name, "root");
        let children = snap.children_of(roots[0].id);
        assert_eq!(children.len(), 2);
        assert_eq!(children[0].label.as_deref(), Some("first"));
        assert_eq!(children[1].label.as_deref(), Some("second"));
        let grand = snap.children_of(children[0].id);
        assert_eq!(grand.len(), 1);
        assert_eq!(grand[0].name, "grandchild");
        assert!(snap.children_of(children[1].id).is_empty());
    }

    #[test]
    fn events_attach_to_the_open_span() {
        let _guard = TEST_LOCK.lock().unwrap();
        crate::enable();
        crate::reset();
        {
            let _root = span("root");
            event("marker", "hello");
        }
        crate::disable();
        let snap = crate::snapshot();
        let root = snap.roots()[0].clone();
        let kids = snap.children_of(root.id);
        assert_eq!(kids.len(), 1);
        assert!(kids[0].is_event);
        assert_eq!(kids[0].dur_ns, 0);
        assert_eq!(kids[0].label.as_deref(), Some("hello"));
    }

    #[test]
    fn inert_guards_cost_nothing_and_record_nothing() {
        let _guard = TEST_LOCK.lock().unwrap();
        crate::disable();
        crate::reset();
        let s = span("nope");
        assert_eq!(s.id(), 0);
        drop(s);
        assert!(crate::snapshot().spans.is_empty());
    }

    #[test]
    fn explicit_parenting_merges_deterministically_across_threads() {
        let _guard = TEST_LOCK.lock().unwrap();
        // The PR-1 contract, extended to traces: same tree for any
        // thread count, because workers order by item index.
        let shape = |threads: usize| -> Vec<(String, u64)> {
            crate::enable();
            crate::reset();
            {
                let parent = span("fanout");
                let pid = parent.id();
                let n = 12usize;
                let chunk = n.div_ceil(threads);
                std::thread::scope(|scope| {
                    for t in 0..threads {
                        scope.spawn(move || {
                            for i in (t * chunk)..((t + 1) * chunk).min(n) {
                                let _w = span_under(pid, "item", i as u64);
                            }
                        });
                    }
                });
            }
            crate::disable();
            let snap = crate::snapshot();
            let root = snap.roots()[0].clone();
            snap.children_of(root.id)
                .iter()
                .map(|s| (s.name.to_string(), s.ordinal))
                .collect()
        };
        let reference = shape(1);
        assert_eq!(reference.len(), 12);
        assert_eq!(reference[0].1, 0);
        assert_eq!(reference[11].1, 11);
        for threads in [2, 8] {
            assert_eq!(shape(threads), reference, "tree differs at {threads} threads");
        }
    }
}
