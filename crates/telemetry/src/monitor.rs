//! Live serving monitors: windowed fairness/drift aggregation for the
//! online phase, keyed by **row ordinal** — not wall clock.
//!
//! FALCC's guarantee is *local* fairness: each region's model combination
//! is only as good as the assumption that serving traffic resembles the
//! validation data that carved the regions. This module watches that
//! assumption live. The serving planes feed every classified row's
//! `(region, group, distance-to-centroid, verdict)` into a ring of N
//! fixed-size windows; each window aggregates decision counts per
//! `(region, group)` cell, rejection counts, and quantized
//! distance-to-centroid digests, from which the sinks derive live
//! demographic-parity gaps, region-occupancy skew against the offline
//! [`MonitorSpec`] baseline, group-mix shift, and drift quantiles.
//!
//! The same three telemetry invariants hold here:
//!
//! 1. **Zero cost when uninstalled.** The hot-path gate is one acquire
//!    load of an [`AtomicPtr`] plus a null check ([`batch`] returns
//!    `None`); `exp_runtime --smoke` pins this under the same <50 ns
//!    bound as the disabled counter/span paths.
//! 2. **Observation never perturbs results.** Recording is write-only:
//!    predictions are bit-identical with monitors on or off
//!    (`tests/monitoring.rs`).
//! 3. **Deterministic streams.** Window boundaries are a pure function
//!    of the row ordinal (`window = ordinal / window_len`), batch
//!    recorders claim contiguous ordinal blocks, and all folding is
//!    commutative integer addition — so the windowed JSONL stream is
//!    bit-identical across thread counts *and* across the interpreted
//!    and compiled serving planes (part of the equivalence contract).
//!    Wall-clock latency is the one nondeterministic signal; it appears
//!    only in the exposition sink, never in the windowed JSONL.
//!
//! ## Recording protocol
//!
//! Batch paths call [`batch`]`(n)` once to claim `n` ordinals, have
//! their parallel workers [`BatchRecorder::stash`] each row's route
//! lock-free (one relaxed store per row into a preallocated slot), and
//! finally fold everything into the window ring with
//! [`BatchRecorder::commit`] once per batch. Single-row paths call
//! [`single`]. Rows rejected with a typed fault are counted in the
//! window's `rejected` tally and never contribute a route.

use crate::metrics::{bucket_index, bucket_upper_bound, HISTOGRAM_BUCKETS};
use std::fmt::Write as _;
use std::ptr;
use std::sync::atomic::{AtomicPtr, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Distances are quantized to `(dist² · DIST_SCALE) as u64` before
/// landing in the power-of-two digest buckets, preserving sub-unit
/// resolution near the centroids (the saturating float→int cast maps
/// non-finite values to the extremes deterministically).
pub const DIST_SCALE: f64 = 256.0;

/// Slot tag for a window slot that has never been claimed.
const EMPTY: u64 = u64::MAX;

/// Route-word flag marking a stashed (accepted) row.
const STASHED: u64 = 1 << 63;

/// Static configuration of a monitor: window geometry plus the offline
/// baseline drift is measured against. Plain data — the telemetry crate
/// stays dependency-free; `falcc` builds one from its `MonitorBaseline`.
#[derive(Debug, Clone, PartialEq)]
pub struct MonitorSpec {
    /// Rows per window (window id = ordinal / `window_len`).
    pub window_len: u64,
    /// Number of ring slots: the N most recent windows are retained.
    pub windows: usize,
    /// Local regions (clusters) of the served model.
    pub n_regions: usize,
    /// Sensitive groups of the served model.
    pub n_groups: usize,
    /// Offline validation occupancy per region (sums to 1).
    pub baseline_occupancy: Vec<f64>,
    /// Offline group mix per region, region-major `[r * n_groups + g]`
    /// (each region's row sums to 1 where the region is non-empty).
    pub baseline_group_mix: Vec<f64>,
    /// Training-time demographic-parity gap per region.
    pub baseline_dp: Vec<f64>,
}

impl MonitorSpec {
    fn cells(&self) -> usize {
        self.n_regions * self.n_groups
    }
}

struct WindowSlot {
    /// Window id this slot currently holds ([`EMPTY`] when unused).
    id: AtomicU64,
    observed: AtomicU64,
    rejected: AtomicU64,
    /// Accepted rows per `(region, group)` cell, region-major.
    rows: Vec<AtomicU64>,
    /// Positive predictions per `(region, group)` cell, region-major.
    positives: Vec<AtomicU64>,
    /// Quantized distance-to-centroid digest, `[region * HISTOGRAM_BUCKETS + bucket]`.
    dist: Vec<AtomicU64>,
    latency_ns: AtomicU64,
    latency_rows: AtomicU64,
}

impl WindowSlot {
    fn new(spec: &MonitorSpec) -> Self {
        Self {
            id: AtomicU64::new(EMPTY),
            observed: AtomicU64::new(0),
            rejected: AtomicU64::new(0),
            rows: (0..spec.cells()).map(|_| AtomicU64::new(0)).collect(),
            positives: (0..spec.cells()).map(|_| AtomicU64::new(0)).collect(),
            dist: (0..spec.n_regions * HISTOGRAM_BUCKETS).map(|_| AtomicU64::new(0)).collect(),
            latency_ns: AtomicU64::new(0),
            latency_rows: AtomicU64::new(0),
        }
    }

    fn clear(&self) {
        self.observed.store(0, Ordering::Relaxed);
        self.rejected.store(0, Ordering::Relaxed);
        for v in self.rows.iter().chain(&self.positives).chain(&self.dist) {
            v.store(0, Ordering::Relaxed);
        }
        self.latency_ns.store(0, Ordering::Relaxed);
        self.latency_rows.store(0, Ordering::Relaxed);
    }
}

/// Aggregation state of one installed monitor. Created by [`install`];
/// kept alive for the process lifetime (see `RETAINED`), so snapshots
/// remain readable after [`uninstall`].
pub struct MonitorState {
    spec: MonitorSpec,
    next_ordinal: AtomicU64,
    slots: Vec<WindowSlot>,
    /// Serialises window folding/eviction (commits and snapshots). The
    /// per-row hot path never takes it — only [`BatchRecorder::commit`],
    /// [`single`], and [`MonitorState::snapshot`] do, once per batch.
    fold: Mutex<()>,
}

impl MonitorState {
    fn new(spec: MonitorSpec) -> Self {
        let slots = (0..spec.windows.max(1)).map(|_| WindowSlot::new(&spec)).collect();
        Self { spec, next_ordinal: AtomicU64::new(0), slots, fold: Mutex::new(()) }
    }

    /// The spec this monitor was installed with.
    pub fn spec(&self) -> &MonitorSpec {
        &self.spec
    }

    /// The slot for `ordinal`'s window, claiming (and clearing) the ring
    /// slot if the window is newer than the slot's tenant. Returns `None`
    /// for ordinals whose window has already been evicted. Caller holds
    /// the fold lock.
    fn slot_for(&self, ordinal: u64) -> Option<&WindowSlot> {
        let wid = ordinal / self.spec.window_len.max(1);
        let slot = &self.slots[(wid % self.slots.len() as u64) as usize];
        let tag = slot.id.load(Ordering::Relaxed);
        if tag == wid {
            return Some(slot);
        }
        if tag == EMPTY || tag < wid {
            slot.clear();
            slot.id.store(wid, Ordering::Relaxed);
            return Some(slot);
        }
        None
    }

    fn fold_row(
        &self,
        slot: &WindowSlot,
        route: Option<(usize, usize, u64)>,
        pred: Option<u8>,
    ) {
        slot.observed.fetch_add(1, Ordering::Relaxed);
        match (route, pred) {
            (Some((region, group, distq)), Some(pred))
                if region < self.spec.n_regions && group < self.spec.n_groups =>
            {
                let cell = region * self.spec.n_groups + group;
                slot.rows[cell].fetch_add(1, Ordering::Relaxed);
                if pred != 0 {
                    slot.positives[cell].fetch_add(1, Ordering::Relaxed);
                }
                let bucket = region * HISTOGRAM_BUCKETS + bucket_index(distq);
                slot.dist[bucket].fetch_add(1, Ordering::Relaxed);
            }
            _ => {
                slot.rejected.fetch_add(1, Ordering::Relaxed);
            }
        }
    }

    /// Copies the ring into an immutable, id-sorted [`MonitorSnapshot`].
    pub fn snapshot(&self) -> MonitorSnapshot {
        let _fold = self.fold.lock().expect("monitor fold lock poisoned");
        let mut windows: Vec<WindowSnapshot> = self
            .slots
            .iter()
            .filter(|s| s.id.load(Ordering::Relaxed) != EMPTY)
            .map(|s| WindowSnapshot {
                id: s.id.load(Ordering::Relaxed),
                observed: s.observed.load(Ordering::Relaxed),
                rejected: s.rejected.load(Ordering::Relaxed),
                rows: s.rows.iter().map(|v| v.load(Ordering::Relaxed)).collect(),
                positives: s.positives.iter().map(|v| v.load(Ordering::Relaxed)).collect(),
                dist: s.dist.iter().map(|v| v.load(Ordering::Relaxed)).collect(),
                latency_ns: s.latency_ns.load(Ordering::Relaxed),
                latency_rows: s.latency_rows.load(Ordering::Relaxed),
            })
            .collect();
        windows.sort_by_key(|w| w.id);
        MonitorSnapshot {
            spec: self.spec.clone(),
            rows_seen: self.next_ordinal.load(Ordering::Relaxed),
            windows,
        }
    }
}

static ACTIVE: AtomicPtr<MonitorState> = AtomicPtr::new(ptr::null_mut());
/// Every state ever installed, retained for the process lifetime: this
/// is what makes the lock-free `ACTIVE` pointer dereference sound
/// without hazard pointers. Monitors are installed once per serving
/// session and weigh a few KB, so the leak is bounded and deliberate.
static RETAINED: Mutex<Vec<Arc<MonitorState>>> = Mutex::new(Vec::new());

/// Installs a monitor, making it the recording target of both serving
/// planes. Returns the state handle for later [`MonitorState::snapshot`]
/// calls (still valid after [`uninstall`]).
pub fn install(spec: MonitorSpec) -> Arc<MonitorState> {
    let state = Arc::new(MonitorState::new(spec));
    let raw = Arc::as_ptr(&state) as *mut MonitorState;
    RETAINED.lock().expect("monitor registry poisoned").push(Arc::clone(&state));
    ACTIVE.store(raw, Ordering::Release);
    state
}

/// Stops recording. Existing [`MonitorState`] handles stay readable.
pub fn uninstall() {
    ACTIVE.store(ptr::null_mut(), Ordering::Release);
}

/// Whether a monitor is currently installed.
#[inline]
pub fn active() -> bool {
    !ACTIVE.load(Ordering::Acquire).is_null()
}

#[inline]
fn active_ref() -> Option<&'static MonitorState> {
    let raw = ACTIVE.load(Ordering::Acquire);
    if raw.is_null() {
        None
    } else {
        // SAFETY: every pointer ever stored in ACTIVE came from an Arc
        // pushed into RETAINED, which never removes entries — the
        // pointee lives until process exit.
        Some(unsafe { &*raw })
    }
}

fn quantize(dist_sq: f64) -> u64 {
    // `as` saturates: negatives/NaN → 0, overflow → u64::MAX.
    (dist_sq * DIST_SCALE) as u64
}

/// Claims `n` consecutive row ordinals for a batch, or `None` when no
/// monitor is installed — the disabled hot path is this one acquire
/// load plus the null check.
#[inline]
pub fn batch(n: usize) -> Option<BatchRecorder> {
    let state = active_ref()?;
    let base = state.next_ordinal.fetch_add(n as u64, Ordering::Relaxed);
    Some(BatchRecorder {
        state,
        base,
        routes: (0..n).map(|_| AtomicU64::new(0)).collect(),
        dists: (0..n).map(|_| AtomicU64::new(0)).collect(),
    })
}

/// Records one single-row classification (the `try_classify` paths).
/// `route` is `(region, group, dist²)` for accepted rows, `None` for
/// rejected ones; `pred` is the emitted label, `None` on rejection.
#[inline]
pub fn single(route: Option<(usize, usize, f64)>, pred: Option<u8>, elapsed_ns: u64) {
    let Some(state) = active_ref() else { return };
    let ordinal = state.next_ordinal.fetch_add(1, Ordering::Relaxed);
    let _fold = state.fold.lock().expect("monitor fold lock poisoned");
    let Some(slot) = state.slot_for(ordinal) else { return };
    state.fold_row(slot, route.map(|(r, g, d)| (r, g, quantize(d))), pred);
    slot.latency_ns.fetch_add(elapsed_ns, Ordering::Relaxed);
    slot.latency_rows.fetch_add(1, Ordering::Relaxed);
}

/// A claimed ordinal block for one batch. Parallel workers [`stash`]
/// routes lock-free; the batch entry point [`commit`]s once at the end.
///
/// [`stash`]: BatchRecorder::stash
/// [`commit`]: BatchRecorder::commit
pub struct BatchRecorder {
    state: &'static MonitorState,
    base: u64,
    routes: Vec<AtomicU64>,
    dists: Vec<AtomicU64>,
}

impl BatchRecorder {
    /// Records row `i`'s route: matched region, sensitive group, and
    /// squared distance to the matched centroid. Lock-free (two relaxed
    /// stores into the row's preallocated slots); safe to call from any
    /// worker thread. Rows that never stash are folded as rejected.
    #[inline]
    pub fn stash(&self, i: usize, region: usize, group: usize, dist_sq: f64) {
        let packed = STASHED | ((region as u64) << 16) | (group as u64 & 0xffff);
        self.routes[i].store(packed, Ordering::Relaxed);
        self.dists[i].store(quantize(dist_sq), Ordering::Relaxed);
    }

    /// Folds the batch into the window ring: `pred_of(i)` returns row
    /// `i`'s emitted label, or `None` if the row was rejected with a
    /// typed fault. `elapsed_ns` is the batch wall-clock, attributed to
    /// the window of the batch's first ordinal (latency never enters
    /// the deterministic JSONL stream). Folding is commutative integer
    /// addition under the fold lock, so concurrent batches and any
    /// worker-thread count produce identical window counts.
    pub fn commit(self, pred_of: impl Fn(usize) -> Option<u8>, elapsed_ns: u64) {
        let state = self.state;
        let _fold = state.fold.lock().expect("monitor fold lock poisoned");
        for i in 0..self.routes.len() {
            let Some(slot) = state.slot_for(self.base + i as u64) else { continue };
            let packed = self.routes[i].load(Ordering::Relaxed);
            let route = (packed & STASHED != 0).then(|| {
                (((packed >> 16) & 0x7fff_ffff) as usize, (packed & 0xffff) as usize,
                 self.dists[i].load(Ordering::Relaxed))
            });
            state.fold_row(slot, route, pred_of(i));
        }
        if let Some(slot) = state.slot_for(self.base) {
            slot.latency_ns.fetch_add(elapsed_ns, Ordering::Relaxed);
            slot.latency_rows.fetch_add(self.routes.len() as u64, Ordering::Relaxed);
        }
    }
}

/// Aggregated state of one window at snapshot time.
#[derive(Debug, Clone, PartialEq)]
pub struct WindowSnapshot {
    /// Window id (`ordinal / window_len`).
    pub id: u64,
    /// Rows observed (accepted + rejected).
    pub observed: u64,
    /// Rows rejected with a typed per-row fault.
    pub rejected: u64,
    /// Accepted rows per `(region, group)` cell, region-major.
    pub rows: Vec<u64>,
    /// Positive predictions per `(region, group)` cell, region-major.
    pub positives: Vec<u64>,
    /// Distance digest, `[region * HISTOGRAM_BUCKETS + bucket]`.
    pub dist: Vec<u64>,
    /// Wall-clock nanoseconds of batches starting in this window.
    pub latency_ns: u64,
    /// Rows those batches carried.
    pub latency_rows: u64,
}

impl WindowSnapshot {
    /// Accepted rows in `region`, summed over groups.
    pub fn region_rows(&self, n_groups: usize, region: usize) -> u64 {
        self.rows[region * n_groups..(region + 1) * n_groups].iter().sum()
    }

    /// Live demographic-parity gap of `region`: mean absolute difference
    /// between each represented group's positive-prediction rate and the
    /// region's overall rate — the exact semantics of
    /// `falcc_metrics::FairnessMetric::DemographicParity` (groups with
    /// no rows are excluded; 0 when fewer than two groups contribute),
    /// recomputed from counts so this crate stays dependency-free.
    /// `tests/monitoring.rs` cross-checks the two implementations.
    pub fn dp_gap(&self, n_groups: usize, region: usize) -> f64 {
        let rows = &self.rows[region * n_groups..(region + 1) * n_groups];
        let positives = &self.positives[region * n_groups..(region + 1) * n_groups];
        let total: u64 = rows.iter().sum();
        if total == 0 {
            return 0.0;
        }
        let p_overall = positives.iter().sum::<u64>() as f64 / total as f64;
        let mut sum = 0.0;
        let mut contributing = 0usize;
        for g in 0..n_groups {
            if rows[g] > 0 {
                sum += (positives[g] as f64 / rows[g] as f64 - p_overall).abs();
                contributing += 1;
            }
        }
        if contributing < 2 {
            0.0
        } else {
            sum / contributing as f64
        }
    }

    /// Chi-square-style skew of this window's region occupancy against
    /// the baseline: `Σ_r (obs_rate − base_rate)² / base_rate` over
    /// regions with a positive baseline rate. 0 for an empty window.
    pub fn occupancy_skew(&self, spec: &MonitorSpec) -> f64 {
        let total: u64 = self.rows.iter().sum();
        if total == 0 {
            return 0.0;
        }
        let mut skew = 0.0;
        for r in 0..spec.n_regions {
            let base = spec.baseline_occupancy[r];
            if base > 0.0 {
                let obs = self.region_rows(spec.n_groups, r) as f64 / total as f64;
                skew += (obs - base) * (obs - base) / base;
            }
        }
        skew
    }

    /// Total-variation distance between `region`'s observed group mix
    /// and its baseline mix: `½ Σ_g |obs − base|`. 0 when the region saw
    /// no rows in this window.
    pub fn group_shift(&self, spec: &MonitorSpec, region: usize) -> f64 {
        let total = self.region_rows(spec.n_groups, region);
        if total == 0 {
            return 0.0;
        }
        let mut shift = 0.0;
        for g in 0..spec.n_groups {
            let obs = self.rows[region * spec.n_groups + g] as f64 / total as f64;
            shift += (obs - spec.baseline_group_mix[region * spec.n_groups + g]).abs();
        }
        0.5 * shift
    }

    /// Smallest digest-bucket upper bound covering at least `q` of
    /// `region`'s quantized distances (drift quantile; `None` when the
    /// region saw no rows). Units: `dist² · DIST_SCALE`, exact to the
    /// power-of-two bucket.
    pub fn dist_quantile(&self, region: usize, q: f64) -> Option<u64> {
        let buckets = &self.dist[region * HISTOGRAM_BUCKETS..(region + 1) * HISTOGRAM_BUCKETS];
        let count: u64 = buckets.iter().sum();
        if count == 0 {
            return None;
        }
        let target = ((q.clamp(0.0, 1.0) * count as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (i, b) in buckets.iter().enumerate() {
            seen += b;
            if seen >= target {
                return bucket_upper_bound(i).or(Some(u64::MAX));
            }
        }
        Some(u64::MAX)
    }
}

/// An immutable copy of a monitor's spec and retained windows, with the
/// two export sinks: deterministic windowed JSONL ([`to_jsonl`]) and
/// Prometheus-style text exposition ([`render_exposition`]).
///
/// [`to_jsonl`]: MonitorSnapshot::to_jsonl
/// [`render_exposition`]: MonitorSnapshot::render_exposition
#[derive(Debug, Clone, PartialEq)]
pub struct MonitorSnapshot {
    /// The installed spec (window geometry + offline baseline).
    pub spec: MonitorSpec,
    /// Total ordinals claimed so far.
    pub rows_seen: u64,
    /// Retained windows, sorted by id.
    pub windows: Vec<WindowSnapshot>,
}

impl MonitorSnapshot {
    /// Serialises the stream as JSON lines: one `monitor_baseline` line,
    /// then per window a `monitor_window` line and one `monitor_region`
    /// line per region that saw rows. Contains **only deterministic
    /// fields** — no wall-clock — so interpreted/compiled planes at any
    /// thread count produce byte-identical output.
    pub fn to_jsonl(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "{{\"type\":\"monitor_baseline\",\"window_len\":{},\"windows\":{},\"n_regions\":{},\"n_groups\":{},\"rows_seen\":{},\"occupancy\":{},\"group_mix\":{},\"dp\":{}}}",
            self.spec.window_len,
            self.spec.windows,
            self.spec.n_regions,
            self.spec.n_groups,
            self.rows_seen,
            json_f64s(&self.spec.baseline_occupancy),
            json_f64s(&self.spec.baseline_group_mix),
            json_f64s(&self.spec.baseline_dp),
        );
        for w in &self.windows {
            let _ = writeln!(
                out,
                "{{\"type\":\"monitor_window\",\"window\":{},\"start\":{},\"observed\":{},\"rejected\":{}}}",
                w.id,
                w.id * self.spec.window_len,
                w.observed,
                w.rejected,
            );
            for r in 0..self.spec.n_regions {
                if w.region_rows(self.spec.n_groups, r) == 0 {
                    continue;
                }
                let g0 = r * self.spec.n_groups;
                let d0 = r * HISTOGRAM_BUCKETS;
                let _ = writeln!(
                    out,
                    "{{\"type\":\"monitor_region\",\"window\":{},\"region\":{},\"rows\":{},\"positives\":{},\"dist_buckets\":{}}}",
                    w.id,
                    r,
                    json_u64s(&w.rows[g0..g0 + self.spec.n_groups]),
                    json_u64s(&w.positives[g0..g0 + self.spec.n_groups]),
                    json_u64s(&w.dist[d0..d0 + HISTOGRAM_BUCKETS]),
                );
            }
        }
        out
    }

    /// Writes [`MonitorSnapshot::to_jsonl`] to a file.
    pub fn write_jsonl(&self, path: &std::path::Path) -> std::io::Result<()> {
        std::fs::write(path, self.to_jsonl())
    }

    /// Renders Prometheus-style text exposition: every line is
    /// `name{labels} value`, no comment lines, hand-rolled like
    /// [`MonitorSnapshot::to_jsonl`] so the crate stays dependency-free.
    /// The `falcc_monitor_latency_*` lines carry wall-clock and are the
    /// only nondeterministic values; equivalence checks filter them.
    pub fn render_exposition(&self) -> String {
        let mut out = String::new();
        for r in 0..self.spec.n_regions {
            let _ = writeln!(
                out,
                "falcc_monitor_baseline_occupancy{{region=\"{r}\"}} {}",
                self.spec.baseline_occupancy[r]
            );
            let _ = writeln!(
                out,
                "falcc_monitor_baseline_dp{{region=\"{r}\"}} {}",
                self.spec.baseline_dp[r]
            );
        }
        let _ = writeln!(out, "falcc_monitor_rows_seen{{}} {}", self.rows_seen);
        for w in &self.windows {
            let wid = w.id;
            let _ = writeln!(out, "falcc_monitor_observed{{window=\"{wid}\"}} {}", w.observed);
            let _ = writeln!(out, "falcc_monitor_rejected{{window=\"{wid}\"}} {}", w.rejected);
            let _ = writeln!(
                out,
                "falcc_monitor_occupancy_skew{{window=\"{wid}\"}} {}",
                w.occupancy_skew(&self.spec)
            );
            for r in 0..self.spec.n_regions {
                let region_rows = w.region_rows(self.spec.n_groups, r);
                if region_rows == 0 {
                    continue;
                }
                let _ = writeln!(
                    out,
                    "falcc_monitor_region_rows{{window=\"{wid}\",region=\"{r}\"}} {region_rows}"
                );
                let _ = writeln!(
                    out,
                    "falcc_monitor_dp_gap{{window=\"{wid}\",region=\"{r}\"}} {}",
                    w.dp_gap(self.spec.n_groups, r)
                );
                let _ = writeln!(
                    out,
                    "falcc_monitor_group_shift{{window=\"{wid}\",region=\"{r}\"}} {}",
                    w.group_shift(&self.spec, r)
                );
                for (label, q) in [("0.5", 0.5), ("0.9", 0.9), ("0.99", 0.99)] {
                    if let Some(bound) = w.dist_quantile(r, q) {
                        let _ = writeln!(
                            out,
                            "falcc_monitor_dist_quantile{{window=\"{wid}\",region=\"{r}\",q=\"{label}\"}} {bound}"
                        );
                    }
                }
                for g in 0..self.spec.n_groups {
                    let rows = w.rows[r * self.spec.n_groups + g];
                    if rows == 0 {
                        continue;
                    }
                    let positives = w.positives[r * self.spec.n_groups + g];
                    let _ = writeln!(
                        out,
                        "falcc_monitor_rows{{window=\"{wid}\",region=\"{r}\",group=\"{g}\"}} {rows}"
                    );
                    let _ = writeln!(
                        out,
                        "falcc_monitor_positive_rate{{window=\"{wid}\",region=\"{r}\",group=\"{g}\"}} {}",
                        positives as f64 / rows as f64
                    );
                }
            }
            let _ = writeln!(
                out,
                "falcc_monitor_latency_ns_sum{{window=\"{wid}\"}} {}",
                w.latency_ns
            );
            let _ = writeln!(
                out,
                "falcc_monitor_latency_rows{{window=\"{wid}\"}} {}",
                w.latency_rows
            );
        }
        out
    }
}

fn json_u64s(values: &[u64]) -> String {
    let items: Vec<String> = values.iter().map(|v| v.to_string()).collect();
    format!("[{}]", items.join(","))
}

fn json_f64s(values: &[f64]) -> String {
    // `{:?}` keeps a ".0" on integral floats (shortest round-trip), the
    // same convention the vendored serde_json writer uses.
    let items: Vec<String> = values.iter().map(|v| format!("{v:?}")).collect();
    format!("[{}]", items.join(","))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tests::TEST_LOCK;

    fn spec(window_len: u64, windows: usize) -> MonitorSpec {
        MonitorSpec {
            window_len,
            windows,
            n_regions: 2,
            n_groups: 2,
            baseline_occupancy: vec![0.5, 0.5],
            baseline_group_mix: vec![0.5, 0.5, 0.5, 0.5],
            baseline_dp: vec![0.0, 0.0],
        }
    }

    #[test]
    fn uninstalled_batch_is_none_and_single_is_inert() {
        let _guard = TEST_LOCK.lock().unwrap();
        uninstall();
        assert!(!active());
        assert!(batch(4).is_none());
        single(Some((0, 0, 1.0)), Some(1), 10); // must not panic
    }

    #[test]
    fn windows_fold_by_ordinal_and_evict_oldest() {
        let _guard = TEST_LOCK.lock().unwrap();
        let state = install(spec(2, 2));
        // 6 rows → windows 0, 1, 2 at 2 rows each; ring of 2 keeps 1, 2.
        for i in 0..6u8 {
            let rec = batch(1).expect("installed");
            rec.stash(0, (i % 2) as usize, 0, 1.0);
            rec.commit(|_| Some(i % 2), 1);
        }
        uninstall();
        let snap = state.snapshot();
        assert_eq!(snap.rows_seen, 6);
        assert_eq!(snap.windows.len(), 2);
        assert_eq!(snap.windows[0].id, 1);
        assert_eq!(snap.windows[1].id, 2);
        assert_eq!(snap.windows[0].observed, 2);
        // Each window holds one row per region (ordinals alternate).
        assert_eq!(snap.windows[1].region_rows(2, 0), 1);
        assert_eq!(snap.windows[1].region_rows(2, 1), 1);
    }

    #[test]
    fn unstashed_rows_count_as_rejected() {
        let _guard = TEST_LOCK.lock().unwrap();
        let state = install(spec(8, 2));
        let rec = batch(3).expect("installed");
        rec.stash(0, 0, 1, 0.25);
        rec.stash(2, 1, 0, 4.0);
        rec.commit(|i| if i == 1 { None } else { Some(1) }, 100);
        uninstall();
        let snap = state.snapshot();
        let w = &snap.windows[0];
        assert_eq!(w.observed, 3);
        assert_eq!(w.rejected, 1);
        assert_eq!(w.rows, vec![0, 1, 1, 0]);
        assert_eq!(w.positives, vec![0, 1, 1, 0]);
        assert_eq!(w.latency_ns, 100);
        assert_eq!(w.latency_rows, 3);
    }

    #[test]
    fn dp_gap_matches_hand_computation() {
        // Region 0: group 0 rate 2/3, group 1 rate 1/3, overall 1/2 →
        // gap (|2/3−1/2| + |1/3−1/2|)/2 = 1/6 (fairness.rs convention).
        let w = WindowSnapshot {
            id: 0,
            observed: 6,
            rejected: 0,
            rows: vec![3, 3],
            positives: vec![2, 1],
            dist: vec![0; HISTOGRAM_BUCKETS],
            latency_ns: 0,
            latency_rows: 0,
        };
        assert!((w.dp_gap(2, 0) - 1.0 / 6.0).abs() < 1e-12);
        // A single contributing group is unbiased by convention.
        let single_group = WindowSnapshot { rows: vec![4, 0], positives: vec![4, 0], ..w };
        assert_eq!(single_group.dp_gap(2, 0), 0.0);
    }

    #[test]
    fn skew_and_shift_detect_departures_from_baseline() {
        let sp = spec(8, 2);
        let balanced = WindowSnapshot {
            id: 0,
            observed: 8,
            rejected: 0,
            rows: vec![2, 2, 2, 2],
            positives: vec![0; 4],
            dist: vec![0; 2 * HISTOGRAM_BUCKETS],
            latency_ns: 0,
            latency_rows: 0,
        };
        assert!(balanced.occupancy_skew(&sp).abs() < 1e-12);
        assert!(balanced.group_shift(&sp, 0).abs() < 1e-12);
        // All traffic in region 0, all of it group 0.
        let skewed = WindowSnapshot { rows: vec![8, 0, 0, 0], ..balanced };
        assert!((skewed.occupancy_skew(&sp) - 1.0).abs() < 1e-12, "2·(0.5²/0.5)");
        assert!((skewed.group_shift(&sp, 0) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn jsonl_is_deterministic_and_exposition_is_well_formed() {
        let _guard = TEST_LOCK.lock().unwrap();
        let run = || {
            let state = install(spec(4, 4));
            let rec = batch(8).expect("installed");
            for i in 0..8 {
                rec.stash(i, i % 2, i % 2, i as f64 * 0.5);
            }
            rec.commit(|i| Some((i % 2) as u8), 1234);
            uninstall();
            state.snapshot()
        };
        let (a, b) = (run(), run());
        // Same inputs → byte-identical JSONL, latency excluded by design.
        assert_eq!(a.to_jsonl(), b.to_jsonl());
        assert!(a.to_jsonl().contains("\"type\":\"monitor_baseline\""));
        assert!(a.to_jsonl().contains("\"type\":\"monitor_window\""));
        for line in a.render_exposition().lines() {
            let (name_labels, value) = line.rsplit_once(' ').expect("space-separated");
            let open = name_labels.find('{').expect("labels open");
            assert!(name_labels.ends_with('}'), "labels close: {line}");
            assert!(
                name_labels[..open]
                    .chars()
                    .all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':'),
                "metric name: {line}"
            );
            assert!(value.parse::<f64>().is_ok(), "numeric value: {line}");
        }
    }

    #[test]
    fn quantized_distance_quantiles_cover_the_digest() {
        let sp = spec(64, 1);
        let _guard = TEST_LOCK.lock().unwrap();
        let state = install(sp);
        let rec = batch(4).expect("installed");
        // dist² 0, 0.5, 2, 1000 → quantized 0, 128, 512, 256000.
        for (i, d) in [0.0, 0.5, 2.0, 1000.0].iter().enumerate() {
            rec.stash(i, 0, 0, *d);
        }
        rec.commit(|_| Some(0), 1);
        uninstall();
        let w = &state.snapshot().windows[0];
        assert_eq!(w.dist_quantile(0, 0.0), Some(1)); // bucket 0 holds the zero
        assert!(w.dist_quantile(0, 1.0).unwrap() >= 256_000);
        assert_eq!(w.dist_quantile(1, 0.5), None); // region 1 saw nothing
    }
}
