//! LFR — Learning Fair Representations (Zemel, Wu, Swersky, Pitassi &
//! Dwork, ICML 2013).
//!
//! LFR maps inputs to a probabilistic K-prototype representation whose
//! composite objective trades off reconstruction (`L_x`), prediction
//! (`L_y`) and **group parity of the representation** (`L_z`). Its
//! signature behaviour in the paper's evaluation: very low global bias at
//! a marked accuracy cost (it sits on the Pareto front but rarely in the
//! L̂ top-3).
//!
//! Per the substitution note in `prototypes`, prototypes come from k-means
//! (minimising `L_x`) and the label weights are trained on squared
//! prediction error plus the parity penalty
//! `A_z · Σ_g (mean_g(ŷ) − mean(ŷ))²`, whose gradient the closure below
//! supplies.

use crate::prototypes::PrototypeModel;
use falcc::FairClassifier;
use falcc_dataset::Dataset;

/// LFR hyperparameters.
#[derive(Debug, Clone, Copy)]
pub struct LfrParams {
    /// Number of prototypes K (Zemel et al. use 10 for the small
    /// datasets).
    pub n_prototypes: usize,
    /// Weight of the parity penalty `A_z`. High values trade accuracy for
    /// parity — LFR's characteristic regime.
    pub a_z: f64,
    /// Gradient-descent epochs.
    pub epochs: usize,
    /// Learning rate.
    pub lr: f64,
}

impl Default for LfrParams {
    fn default() -> Self {
        Self { n_prototypes: 10, a_z: 4.0, epochs: 300, lr: 0.5 }
    }
}

/// A fitted LFR model.
pub struct Lfr {
    model: PrototypeModel,
    name: String,
}

impl Lfr {
    /// Fits LFR on `train`.
    pub fn fit(train: &Dataset, params: &LfrParams, seed: u64) -> Self {
        let mut model = PrototypeModel::init(train, params.n_prototypes, seed);
        let memberships = model.memberships(train);
        let groups: Vec<usize> =
            (0..train.len()).map(|i| train.group(i).index()).collect();
        let n_groups = train.group_index().len();
        let a_z = params.a_z;

        // Per-group index lists for the parity gradient.
        let mut per_group: Vec<Vec<usize>> = vec![Vec::new(); n_groups];
        for (i, &g) in groups.iter().enumerate() {
            per_group[g].push(i);
        }
        let n = train.len() as f64;

        model.fit_weights(
            &memberships,
            train.labels(),
            params.epochs,
            params.lr,
            |y_hat| {
                // penalty = A_z · Σ_g (m_g − m)² with m_g the group mean of
                // ŷ and m the overall mean.
                // ∂penalty/∂ŷ_i = A_z · Σ_g 2(m_g − m)·(∂m_g/∂ŷ_i − ∂m/∂ŷ_i)
                //               = A_z · [2(m_{g(i)} − m)/n_{g(i)}
                //                        − Σ_g 2(m_g − m)/n]
                let overall: f64 = y_hat.iter().sum::<f64>() / n;
                let group_means: Vec<f64> = per_group
                    .iter()
                    .map(|idx| {
                        if idx.is_empty() {
                            overall
                        } else {
                            idx.iter().map(|&i| y_hat[i]).sum::<f64>() / idx.len() as f64
                        }
                    })
                    .collect();
                let common: f64 =
                    group_means.iter().map(|&mg| 2.0 * (mg - overall) / n).sum();
                y_hat
                    .iter()
                    .enumerate()
                    .map(|(i, _)| {
                        let g = groups[i];
                        let ng = per_group[g].len().max(1) as f64;
                        a_z * (2.0 * (group_means[g] - overall) / ng - common)
                    })
                    .collect()
            },
        );

        Self { model, name: "LFR".to_string() }
    }
}

impl FairClassifier for Lfr {
    fn predict_row(&self, row: &[f64]) -> u8 {
        u8::from(self.model.predict_proba(row) >= 0.5)
    }

    fn name(&self) -> &str {
        &self.name
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use falcc_dataset::synthetic::{generate, SyntheticConfig};
    use falcc_dataset::{SplitRatios, ThreeWaySplit};
    use falcc_metrics::{accuracy, FairnessMetric};

    fn split(n: usize, seed: u64) -> ThreeWaySplit {
        let mut cfg = SyntheticConfig::social(0.4);
        cfg.n = n;
        let ds = generate(&cfg, seed).unwrap();
        ThreeWaySplit::split(&ds, SplitRatios::PAPER, seed).unwrap()
    }

    #[test]
    fn reduces_bias_relative_to_an_unconstrained_predictor() {
        let s = split(1600, 1);
        let fair = Lfr::fit(&s.train, &LfrParams::default(), 0);
        let unfair = Lfr::fit(
            &s.train,
            &LfrParams { a_z: 0.0, ..Default::default() },
            0,
        );
        let bias = |m: &Lfr| {
            let preds = m.predict_dataset(&s.test);
            FairnessMetric::DemographicParity.bias(
                s.test.labels(),
                &preds,
                s.test.groups(),
                2,
            )
        };
        let b_fair = bias(&fair);
        let b_unfair = bias(&unfair);
        assert!(
            b_fair < b_unfair + 1e-9,
            "parity penalty should not increase bias: {b_fair} vs {b_unfair}"
        );
    }

    #[test]
    fn remains_better_than_chance() {
        let s = split(1200, 2);
        let model = Lfr::fit(&s.train, &LfrParams::default(), 0);
        let preds = model.predict_dataset(&s.test);
        let acc = accuracy(s.test.labels(), &preds);
        assert!(acc > 0.55, "accuracy {acc}");
        assert_eq!(model.name(), "LFR");
    }

    #[test]
    fn deterministic_per_seed() {
        let s = split(600, 3);
        let a = Lfr::fit(&s.train, &LfrParams::default(), 5);
        let b = Lfr::fit(&s.train, &LfrParams::default(), 5);
        assert_eq!(a.predict_dataset(&s.test), b.predict_dataset(&s.test));
    }
}
