//! Shared prototype-representation machinery for LFR and iFair.
//!
//! Both algorithms map samples to soft memberships over K prototypes in the
//! (standardised, non-sensitive) feature space and predict through
//! per-prototype label weights `w ∈ [0,1]^K`:
//!
//! `M_ik = softmax_k(−‖x_i − v_k‖²)`, `ŷ_i = Σ_k M_ik · w_k`.
//!
//! In the original papers prototypes and weights are optimised jointly by
//! L-BFGS over a composite objective (reconstruction + prediction +
//! fairness). Without an autodiff/optimizer dependency we use the
//! equivalent two-stage scheme: prototypes come from k-means (the minimiser
//! of the reconstruction term on its own), and `w` is fitted by projected
//! gradient descent on squared prediction error plus the algorithm's
//! fairness regulariser (group parity for LFR, neighbourhood consistency
//! for iFair). See `DESIGN.md` §3.

use falcc_clustering::KMeans;
use falcc_dataset::{AttrId, Dataset};

/// The learned representation + label weights.
pub(crate) struct PrototypeModel {
    pub attrs: Vec<AttrId>,
    pub means: Vec<f64>,
    pub stds: Vec<f64>,
    /// K prototypes in standardised feature space.
    pub prototypes: Vec<Vec<f64>>,
    /// Per-prototype label weight in `[0, 1]`.
    pub w: Vec<f64>,
}

impl PrototypeModel {
    /// Standardises the non-sensitive projection of `ds` and places K
    /// prototypes by k-means. Weights start at the per-prototype training
    /// label mean (a sensible, data-driven initialisation).
    pub(crate) fn init(ds: &Dataset, n_prototypes: usize, seed: u64) -> Self {
        let attrs = ds.schema().non_sensitive_attrs();
        let d = attrs.len();
        let n = ds.len();

        let mut means = vec![0.0; d];
        let mut stds = vec![0.0; d];
        for i in 0..n {
            for (j, &a) in attrs.iter().enumerate() {
                means[j] += ds.value(i, a);
            }
        }
        for m in means.iter_mut() {
            *m /= n as f64;
        }
        for i in 0..n {
            for (j, &a) in attrs.iter().enumerate() {
                let dlt = ds.value(i, a) - means[j];
                stds[j] += dlt * dlt;
            }
        }
        for s in stds.iter_mut() {
            *s = (*s / n as f64).sqrt();
            if *s < 1e-9 {
                *s = 1.0;
            }
        }

        let mut data = Vec::with_capacity(n * d);
        for i in 0..n {
            for (j, &a) in attrs.iter().enumerate() {
                data.push((ds.value(i, a) - means[j]) / stds[j]);
            }
        }
        let matrix = falcc_dataset::dataset::ProjectedMatrix { data, n_cols: d, n_rows: n };
        let km = KMeans::new(n_prototypes.min(n), seed).fit(&matrix);

        // Initialise w_k as the mean training label of cluster k.
        let mut pos = vec![0.0f64; km.k()];
        let mut tot = vec![0.0f64; km.k()];
        for (i, &c) in km.assignments.iter().enumerate() {
            tot[c] += 1.0;
            pos[c] += ds.label(i) as f64;
        }
        let w: Vec<f64> = pos
            .iter()
            .zip(&tot)
            .map(|(&p, &t)| if t > 0.0 { p / t } else { 0.5 })
            .collect();

        Self { attrs, means, stds, prototypes: km.centroids, w }
    }

    /// Standardises one full-width row into prototype space.
    pub(crate) fn standardize(&self, row: &[f64]) -> Vec<f64> {
        self.attrs
            .iter()
            .enumerate()
            .map(|(j, &a)| (row[a] - self.means[j]) / self.stds[j])
            .collect()
    }

    /// Soft membership of a standardised point over the prototypes.
    pub(crate) fn membership(&self, x_std: &[f64]) -> Vec<f64> {
        let neg_d2: Vec<f64> = self
            .prototypes
            .iter()
            .map(|v| {
                -v.iter()
                    .zip(x_std)
                    .map(|(a, b)| (a - b) * (a - b))
                    .sum::<f64>()
            })
            .collect();
        let max = neg_d2.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        let exps: Vec<f64> = neg_d2.iter().map(|&v| (v - max).exp()).collect();
        let total: f64 = exps.iter().sum();
        exps.iter().map(|&e| e / total).collect()
    }

    /// Membership matrix for every row of a dataset (n × K, row-major).
    pub(crate) fn memberships(&self, ds: &Dataset) -> Vec<Vec<f64>> {
        (0..ds.len())
            .map(|i| self.membership(&self.standardize(ds.row(i))))
            .collect()
    }

    /// `ŷ` for a full-width row with the current weights.
    pub(crate) fn predict_proba(&self, row: &[f64]) -> f64 {
        let m = self.membership(&self.standardize(row));
        m.iter().zip(&self.w).map(|(mi, wi)| mi * wi).sum()
    }

    /// Projected gradient descent on
    /// `Σ_i (ŷ_i − y_i)² / n + penalty(ŷ)`, where the caller supplies the
    /// penalty's gradient w.r.t. `ŷ` via `penalty_grad(ŷ) → ∂penalty/∂ŷ`.
    /// Weights are clamped to `[0, 1]` after every step.
    pub(crate) fn fit_weights(
        &mut self,
        memberships: &[Vec<f64>],
        labels: &[u8],
        epochs: usize,
        lr: f64,
        mut penalty_grad: impl FnMut(&[f64]) -> Vec<f64>,
    ) {
        let n = labels.len();
        let k = self.w.len();
        for _ in 0..epochs {
            // Forward pass.
            let y_hat: Vec<f64> = memberships
                .iter()
                .map(|m| m.iter().zip(&self.w).map(|(mi, wi)| mi * wi).sum())
                .collect();
            let pen_grad = penalty_grad(&y_hat);
            debug_assert_eq!(pen_grad.len(), n);
            // Backward: d/dw_k = Σ_i (2(ŷ−y)/n + pen_grad_i)·M_ik.
            let mut grad = vec![0.0f64; k];
            for i in 0..n {
                let gi = 2.0 * (y_hat[i] - labels[i] as f64) / n as f64 + pen_grad[i];
                for (j, g) in grad.iter_mut().enumerate() {
                    *g += gi * memberships[i][j];
                }
            }
            for (wk, gk) in self.w.iter_mut().zip(&grad) {
                *wk = (*wk - lr * gk).clamp(0.0, 1.0);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use falcc_dataset::synthetic::{generate, SyntheticConfig};

    fn dataset() -> Dataset {
        let mut cfg = SyntheticConfig::social(0.3);
        cfg.n = 500;
        generate(&cfg, 1).unwrap()
    }

    #[test]
    fn memberships_are_a_distribution() {
        let ds = dataset();
        let model = PrototypeModel::init(&ds, 6, 0);
        for i in 0..20 {
            let m = model.membership(&model.standardize(ds.row(i)));
            assert_eq!(m.len(), 6);
            let sum: f64 = m.iter().sum();
            assert!((sum - 1.0).abs() < 1e-9);
            assert!(m.iter().all(|&v| v >= 0.0));
        }
    }

    #[test]
    fn init_weights_reflect_cluster_label_means() {
        let ds = dataset();
        let model = PrototypeModel::init(&ds, 5, 0);
        assert!(model.w.iter().all(|&w| (0.0..=1.0).contains(&w)));
        // Not all prototypes should carry the same weight on biased data.
        let spread = model.w.iter().cloned().fold(f64::MIN, f64::max)
            - model.w.iter().cloned().fold(f64::MAX, f64::min);
        assert!(spread > 0.01, "weight spread {spread}");
    }

    #[test]
    fn weight_fitting_reduces_prediction_error() {
        let ds = dataset();
        let mut model = PrototypeModel::init(&ds, 8, 0);
        let memberships = model.memberships(&ds);
        let err = |m: &PrototypeModel| -> f64 {
            (0..ds.len())
                .map(|i| {
                    let p = m.predict_proba(ds.row(i));
                    (p - ds.label(i) as f64).powi(2)
                })
                .sum::<f64>()
                / ds.len() as f64
        };
        // Degrade the initialisation, then let GD recover.
        for w in model.w.iter_mut() {
            *w = 0.5;
        }
        let before = err(&model);
        model.fit_weights(&memberships, ds.labels(), 200, 0.5, |y| vec![0.0; y.len()]);
        let after = err(&model);
        assert!(after < before - 1e-3, "before {before}, after {after}");
    }

    #[test]
    fn weights_stay_clamped() {
        let ds = dataset();
        let mut model = PrototypeModel::init(&ds, 4, 0);
        let memberships = model.memberships(&ds);
        model.fit_weights(&memberships, ds.labels(), 50, 10.0, |y| vec![0.0; y.len()]);
        assert!(model.w.iter().all(|&w| (0.0..=1.0).contains(&w)));
    }
}
