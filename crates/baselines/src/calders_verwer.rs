//! Calders & Verwer's two-naive-Bayes approach (Data Min. Knowl. Discov.
//! 2010) — "\[13\]" in the paper's related-work table: an early *fair model
//! ensemble* that trains one naive Bayes model per sensitive group and
//! then post-adjusts the decision rule until demographic parity holds.
//!
//! Implementation: a Gaussian NB per binary group, plus per-group decision
//! thresholds balanced by bisection so that the *training* positive rates
//! of the two groups meet in the middle (the paper's CV2NB modifies the
//! class priors until the measured discrimination reaches zero — shifting
//! the decision threshold on `P(y=1|x)` is the equivalent operation for a
//! fixed model).

use falcc::FairClassifier;
use falcc_dataset::{Dataset, GroupId, GroupIndex};
use falcc_models::bayes::GaussianNb;
use falcc_models::Classifier;

/// A fitted Calders–Verwer two-model classifier.
pub struct CaldersVerwer {
    models: Vec<GaussianNb>,
    thresholds: Vec<f64>,
    group_index: GroupIndex,
    name: String,
}

impl CaldersVerwer {
    /// Fits per-group models on `train` and balances the thresholds.
    ///
    /// # Errors
    /// [`falcc::FalccError::GroupAbsent`] when a group has no training
    /// rows.
    pub fn fit(train: &Dataset) -> Result<Self, falcc::FalccError> {
        let group_index = train.group_index().clone();
        let n_groups = group_index.len();
        let attrs = train.schema().non_sensitive_attrs();

        let mut models = Vec::with_capacity(n_groups);
        let mut group_rows = Vec::with_capacity(n_groups);
        for g in 0..n_groups {
            let rows = train.indices_of_group(GroupId(g as u16));
            if rows.is_empty() {
                return Err(falcc::FalccError::GroupAbsent { group: g });
            }
            models.push(GaussianNb::fit(train, &attrs, &rows));
            group_rows.push(rows);
        }

        // Target: every group's positive prediction rate equals the overall
        // training positive rate. Per group, bisect the threshold on the
        // model's probability output.
        let target = train.positive_rate();
        let thresholds: Vec<f64> = (0..n_groups)
            .map(|g| {
                let probas: Vec<f64> = group_rows[g]
                    .iter()
                    .map(|&i| models[g].predict_proba_row(train.row(i)))
                    .collect();
                threshold_for_rate(&probas, target)
            })
            .collect();

        Ok(Self {
            models,
            thresholds,
            group_index,
            name: "CV-2NB".to_string(),
        })
    }

    /// The balanced per-group thresholds (diagnostics).
    pub fn thresholds(&self) -> &[f64] {
        &self.thresholds
    }
}

/// The threshold at which `fraction(probas > t) ≈ rate` (nearest-rank
/// quantile).
fn threshold_for_rate(probas: &[f64], rate: f64) -> f64 {
    if probas.is_empty() {
        return 0.5;
    }
    let mut sorted = probas.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("finite probabilities"));
    let rank =
        ((sorted.len() as f64) * (1.0 - rate.clamp(0.0, 1.0))).floor() as usize;
    sorted[rank.min(sorted.len() - 1)]
}

impl FairClassifier for CaldersVerwer {
    fn predict_row(&self, row: &[f64]) -> u8 {
        let g = self
            .group_index
            .group_of(row)
            .expect("sample's sensitive attributes must be in-domain")
            .index();
        let p = self.models[g].predict_proba_row(row);
        u8::from(p > self.thresholds[g])
    }

    fn name(&self) -> &str {
        &self.name
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use falcc_dataset::synthetic::{generate, SyntheticConfig};
    use falcc_dataset::{SplitRatios, ThreeWaySplit};
    use falcc_metrics::{accuracy, FairnessMetric};

    fn split(n: usize, seed: u64) -> ThreeWaySplit {
        let mut cfg = SyntheticConfig::social(0.4);
        cfg.n = n;
        let ds = generate(&cfg, seed).unwrap();
        ThreeWaySplit::split(&ds, SplitRatios::PAPER, seed).unwrap()
    }

    #[test]
    fn balances_group_rates() {
        let s = split(3000, 1);
        let model = CaldersVerwer::fit(&s.train).unwrap();
        let preds = model.predict_dataset(&s.test);
        let bias = FairnessMetric::DemographicParity.bias(
            s.test.labels(),
            &preds,
            s.test.groups(),
            2,
        );
        let label_bias = FairnessMetric::DemographicParity.bias(
            s.test.labels(),
            s.test.labels(),
            s.test.groups(),
            2,
        );
        assert!(bias < label_bias / 2.0, "bias {bias} vs labels {label_bias}");
        let acc = accuracy(s.test.labels(), &preds);
        assert!(acc > 0.55, "accuracy {acc}");
        assert_eq!(model.name(), "CV-2NB");
    }

    #[test]
    fn thresholds_differ_between_biased_groups() {
        let s = split(2000, 2);
        let model = CaldersVerwer::fit(&s.train).unwrap();
        // Favored group (more positives than target) needs a higher bar,
        // the protected group a lower one.
        assert!(
            (model.thresholds()[0] - model.thresholds()[1]).abs() > 0.01,
            "thresholds {:?}",
            model.thresholds()
        );
    }

    #[test]
    fn threshold_for_rate_hits_requested_fraction() {
        let probas: Vec<f64> = (0..100).map(|i| i as f64 / 100.0).collect();
        let t = threshold_for_rate(&probas, 0.3);
        let achieved =
            probas.iter().filter(|&&p| p > t).count() as f64 / probas.len() as f64;
        assert!((achieved - 0.3).abs() <= 0.02, "achieved {achieved}");
    }
}
