//! The FALCES family (Lässig, Oppold & Herschel, BTW 2021 /
//! Datenbank-Spektrum 2022) — the state-of-the-art locally fair ensemble
//! selector FALCC is measured against.
//!
//! FALCES also pairs each sensitive group with the best model of an
//! ensemble pool, but determines the local region **online**: for every new
//! sample it finds the k nearest validation neighbours *per sensitive
//! group*, assesses every (retained) model combination on that
//! neighbourhood, and classifies with the winner. That per-sample work is
//! what makes it slow (paper Fig. 6), and what FALCC's offline clustering
//! eliminates.
//!
//! Four variants, as in the original papers:
//!
//! | variant | split training (SBT) | combination prefiltering (PFA) |
//! |---|---|---|
//! | `Plain`   | no  | no  |
//! | `Pfa`     | no  | yes |
//! | `Sbt`     | yes | no  |
//! | `SbtPfa`  | yes | yes |
//!
//! PFA assesses all combinations globally on the validation set first and
//! retains only the best fraction, shrinking the per-sample assessment
//! loop — the FASTEST member of the family.

use falcc::FairClassifier;
use falcc_clustering::KdTree;
use falcc_dataset::dataset::ProjectedMatrix;
use falcc_dataset::{AttrId, Dataset, GroupId, GroupIndex};
use falcc_metrics::LossConfig;
use falcc_models::{enumerate_combinations, predict_dataset, ModelPool};

/// Which FALCES variant to build.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FalcesVariant {
    /// No split training, no prefiltering.
    Plain,
    /// Prefiltered combinations.
    Pfa,
    /// Split (per-group) training.
    Sbt,
    /// Split training + prefiltering.
    SbtPfa,
}

impl FalcesVariant {
    /// All four variants (the harness evaluates them all and reports
    /// FALCES-BEST / FALCES-FASTEST).
    pub const ALL: [Self; 4] = [Self::Plain, Self::Pfa, Self::Sbt, Self::SbtPfa];

    /// Name as used in experiment output.
    pub fn name(self) -> &'static str {
        match self {
            Self::Plain => "FALCES",
            Self::Pfa => "FALCES-PFA",
            Self::Sbt => "FALCES-SBT",
            Self::SbtPfa => "FALCES-SBT-PFA",
        }
    }

    /// Whether this variant trains per-group models.
    pub fn split_training(self) -> bool {
        matches!(self, Self::Sbt | Self::SbtPfa)
    }

    /// Whether this variant prefilters combinations.
    pub fn prefilters(self) -> bool {
        matches!(self, Self::Pfa | Self::SbtPfa)
    }
}

/// FALCES configuration.
#[derive(Debug, Clone, Copy)]
pub struct FalcesConfig {
    /// Variant to build.
    pub variant: FalcesVariant,
    /// Nearest neighbours per sensitive group (paper: 15).
    pub k: usize,
    /// Fraction of combinations retained by PFA (applied only when the
    /// variant prefilters).
    pub keep_fraction: f64,
    /// Assessment loss.
    pub loss: LossConfig,
}

impl Default for FalcesConfig {
    fn default() -> Self {
        Self {
            variant: FalcesVariant::Plain,
            k: 15,
            keep_fraction: 0.25,
            loss: LossConfig::default(),
        }
    }
}

/// A fitted FALCES model. The online phase per sample: per-group kNN →
/// combination assessment on the neighbourhood → classify.
pub struct Falces {
    pool: ModelPool,
    /// Retained combinations (pool index per group).
    combos: Vec<Vec<usize>>,
    /// One kd-tree per sensitive group over the non-sensitive projection.
    trees: Vec<KdTree>,
    /// Maps (group, tree-local index) back to validation row index.
    tree_rows: Vec<Vec<usize>>,
    /// Per pool model: predictions on the validation set.
    preds: Vec<Vec<u8>>,
    val_labels: Vec<u8>,
    val_groups: Vec<GroupId>,
    attrs: Vec<AttrId>,
    group_index: GroupIndex,
    loss: LossConfig,
    k: usize,
    name: String,
}

impl Falces {
    /// Offline phase: store the validation neighbourhood indices and
    /// (optionally prefiltered) combination list.
    ///
    /// # Errors
    /// [`falcc::FalccError::NoApplicableModel`] when no combination covers
    /// every group; [`falcc::FalccError::GroupAbsent`] when the validation
    /// set lacks a group entirely.
    pub fn fit(
        pool: ModelPool,
        validation: &Dataset,
        config: &FalcesConfig,
    ) -> Result<Self, falcc::FalccError> {
        let group_index = validation.group_index().clone();
        let n_groups = group_index.len();
        let counts = validation.group_counts();
        if let Some(g) = counts.iter().position(|&c| c == 0) {
            return Err(falcc::FalccError::GroupAbsent { group: g });
        }
        let mut combos = enumerate_combinations(&pool, n_groups);
        if combos.is_empty() {
            return Err(falcc::FalccError::NoApplicableModel { group: 0 });
        }
        let preds: Vec<Vec<u8>> = pool
            .models
            .iter()
            .map(|m| predict_dataset(m.model.as_ref(), validation))
            .collect();

        if config.variant.prefilters() && combos.len() > 1 {
            let y = validation.labels();
            let g = validation.groups();
            let mut scored: Vec<(f64, usize)> = combos
                .iter()
                .enumerate()
                .map(|(ci, combo)| {
                    let z: Vec<u8> = (0..validation.len())
                        .map(|i| preds[combo[g[i].index()]][i])
                        .collect();
                    (config.loss.evaluate(y, &z, g, n_groups), ci)
                })
                .collect();
            scored.sort_by(|a, b| a.0.partial_cmp(&b.0).expect("losses are finite"));
            let keep =
                ((combos.len() as f64 * config.keep_fraction).ceil() as usize).max(1);
            let kept: Vec<Vec<usize>> =
                scored[..keep].iter().map(|&(_, ci)| combos[ci].clone()).collect();
            combos = kept;
        }

        // Per-group kd-trees over the non-sensitive projection.
        let attrs = validation.schema().non_sensitive_attrs();
        let mut trees = Vec::with_capacity(n_groups);
        let mut tree_rows = Vec::with_capacity(n_groups);
        for g in 0..n_groups {
            let rows = validation.indices_of_group(GroupId(g as u16));
            let mut data = Vec::with_capacity(rows.len() * attrs.len());
            for &i in &rows {
                let row = validation.row(i);
                data.extend(attrs.iter().map(|&a| row[a]));
            }
            trees.push(KdTree::build(ProjectedMatrix {
                data,
                n_cols: attrs.len(),
                n_rows: rows.len(),
            }));
            tree_rows.push(rows);
        }

        Ok(Self {
            pool,
            combos,
            trees,
            tree_rows,
            preds,
            val_labels: validation.labels().to_vec(),
            val_groups: validation.groups().to_vec(),
            attrs,
            group_index,
            loss: config.loss,
            k: config.k,
            name: config.variant.name().to_string(),
        })
    }

    /// Number of retained combinations (diagnostics / PFA verification).
    pub fn n_combos(&self) -> usize {
        self.combos.len()
    }

    /// Overrides the reported name (e.g. `FALCES-BEST*`).
    pub fn set_name(&mut self, name: impl Into<String>) {
        self.name = name.into();
    }

    /// The per-sample local region: the union of the k nearest validation
    /// neighbours of `row` from every sensitive group.
    fn local_region(&self, row: &[f64]) -> Vec<usize> {
        let query: Vec<f64> = self.attrs.iter().map(|&a| row[a]).collect();
        let mut region = Vec::with_capacity(self.k * self.trees.len());
        for (g, tree) in self.trees.iter().enumerate() {
            for (local, _) in tree.nearest(&query, self.k) {
                region.push(self.tree_rows[g][local]);
            }
        }
        region
    }
}

impl FairClassifier for Falces {
    fn predict_row(&self, row: &[f64]) -> u8 {
        let group = self
            .group_index
            .group_of(row)
            .expect("sample's sensitive attributes must be in-domain");
        let region = self.local_region(row);
        let y: Vec<u8> = region.iter().map(|&i| self.val_labels[i]).collect();
        let g: Vec<GroupId> = region.iter().map(|&i| self.val_groups[i]).collect();
        let n_groups = self.group_index.len();
        let mut best: Option<(usize, f64)> = None;
        for (ci, combo) in self.combos.iter().enumerate() {
            let z: Vec<u8> = region
                .iter()
                .zip(&g)
                .map(|(&i, gi)| self.preds[combo[gi.index()]][i])
                .collect();
            let l = self.loss.evaluate(&y, &z, &g, n_groups);
            if best.is_none_or(|(_, b)| l < b) {
                best = Some((ci, l));
            }
        }
        let (ci, _) = best.expect("combos non-empty");
        let model_idx = self.combos[ci][group.index()];
        self.pool.models[model_idx].model.predict_row(row)
    }

    fn name(&self) -> &str {
        &self.name
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use falcc_dataset::synthetic::{generate, SyntheticConfig};
    use falcc_dataset::{SplitRatios, ThreeWaySplit};
    use falcc_metrics::accuracy;
    use falcc_models::PoolConfig;

    fn split(n: usize, seed: u64) -> ThreeWaySplit {
        let mut cfg = SyntheticConfig::social(0.3);
        cfg.n = n;
        let ds = generate(&cfg, seed).unwrap();
        ThreeWaySplit::split(&ds, SplitRatios::PAPER, seed).unwrap()
    }

    fn pool(s: &ThreeWaySplit, size: usize) -> ModelPool {
        ModelPool::train_diverse(
            &s.train,
            &s.validation,
            &PoolConfig { pool_size: size, ..Default::default() },
        )
    }

    #[test]
    fn plain_variant_predicts_accurately() {
        let s = split(1000, 1);
        let model = Falces::fit(pool(&s, 3), &s.validation, &FalcesConfig::default()).unwrap();
        let preds = model.predict_dataset(&s.test);
        let acc = accuracy(s.test.labels(), &preds);
        assert!(acc > 0.6, "accuracy {acc}");
        assert_eq!(model.name(), "FALCES");
        assert_eq!(model.n_combos(), 9);
    }

    #[test]
    fn pfa_retains_a_fraction_of_combos() {
        let s = split(800, 2);
        let cfg = FalcesConfig {
            variant: FalcesVariant::Pfa,
            keep_fraction: 0.25,
            ..Default::default()
        };
        let model = Falces::fit(pool(&s, 3), &s.validation, &cfg).unwrap();
        assert_eq!(model.n_combos(), 3, "ceil(9 × 0.25) = 3");
        assert_eq!(model.name(), "FALCES-PFA");
        let preds = model.predict_dataset(&s.test);
        assert_eq!(preds.len(), s.test.len());
    }

    #[test]
    fn sbt_variant_uses_split_pools() {
        let s = split(900, 3);
        let sbt_pool = ModelPool::train_diverse(
            &s.train,
            &s.validation,
            &PoolConfig { pool_size: 2, split_by_group: true, ..Default::default() },
        );
        let cfg = FalcesConfig { variant: FalcesVariant::Sbt, ..Default::default() };
        let model = Falces::fit(sbt_pool, &s.validation, &cfg).unwrap();
        // 3 applicable per group → 9 combos.
        assert_eq!(model.n_combos(), 9);
        let preds = model.predict_dataset(&s.test);
        assert_eq!(preds.len(), s.test.len());
    }

    #[test]
    fn local_region_covers_all_groups() {
        let s = split(700, 4);
        let model = Falces::fit(pool(&s, 2), &s.validation, &FalcesConfig::default()).unwrap();
        let region = model.local_region(s.test.row(0));
        assert_eq!(region.len(), 30, "15 per group × 2 groups");
        let groups: std::collections::HashSet<u16> =
            region.iter().map(|&i| model.val_groups[i].0).collect();
        assert_eq!(groups.len(), 2);
    }

    #[test]
    fn deterministic_predictions() {
        let s = split(600, 5);
        let model = Falces::fit(pool(&s, 2), &s.validation, &FalcesConfig::default()).unwrap();
        assert_eq!(
            model.predict_dataset(&s.test),
            model.predict_dataset(&s.test)
        );
    }

    #[test]
    fn empty_pool_is_rejected() {
        let s = split(500, 6);
        assert!(Falces::fit(
            ModelPool::from_models(vec![]),
            &s.validation,
            &FalcesConfig::default()
        )
        .is_err());
    }
}
