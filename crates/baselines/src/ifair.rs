//! iFair — individually fair data representations (Lahoti, Gummadi &
//! Weikum, ICDE 2019).
//!
//! Same prototype representation as LFR, but the fairness term targets
//! **individual** fairness: similar individuals (in the non-sensitive
//! feature space) should receive similar outputs. We realise that as a
//! neighbourhood-consistency penalty
//! `A_i · Σ_i (ŷ_i − mean_{j ∈ kNN(i)} ŷ_j)²`
//! over kd-tree neighbourhoods computed once up front.
//!
//! The original iFair is notoriously slow (the paper drops it from the
//! larger datasets after >24 h); the O(n·k) penalty per epoch reproduces
//! that relative cost profile at Rust speed.

use crate::prototypes::PrototypeModel;
use falcc::FairClassifier;
use falcc_clustering::KdTree;
use falcc_dataset::dataset::ProjectedMatrix;
use falcc_dataset::Dataset;

/// iFair hyperparameters.
#[derive(Debug, Clone, Copy)]
pub struct IFairParams {
    /// Number of prototypes K.
    pub n_prototypes: usize,
    /// Weight of the consistency penalty `A_i`.
    pub a_i: f64,
    /// Neighbourhood size of the consistency term.
    pub k: usize,
    /// Gradient-descent epochs.
    pub epochs: usize,
    /// Learning rate.
    pub lr: f64,
}

impl Default for IFairParams {
    fn default() -> Self {
        Self { n_prototypes: 10, a_i: 2.0, k: 5, epochs: 300, lr: 0.5 }
    }
}

/// A fitted iFair model.
pub struct IFair {
    model: PrototypeModel,
    name: String,
}

impl IFair {
    /// Fits iFair on `train`.
    pub fn fit(train: &Dataset, params: &IFairParams, seed: u64) -> Self {
        let mut model = PrototypeModel::init(train, params.n_prototypes, seed);
        let memberships = model.memberships(train);

        // kNN in the non-sensitive feature space, once.
        let ns = train.schema().non_sensitive_attrs();
        let projected = train.project(&ns, None);
        let tree = KdTree::build(ProjectedMatrix {
            data: projected.data.clone(),
            n_cols: projected.n_cols,
            n_rows: projected.n_rows,
        });
        let k = params.k.min(train.len().saturating_sub(1)).max(1);
        let neighbors: Vec<Vec<usize>> = (0..train.len())
            .map(|i| {
                tree.nearest(projected.row(i), k + 1)
                    .into_iter()
                    .filter(|&(j, _)| j != i)
                    .take(k)
                    .map(|(j, _)| j)
                    .collect()
            })
            .collect();

        let a_i = params.a_i;
        let n = train.len() as f64;
        model.fit_weights(
            &memberships,
            train.labels(),
            params.epochs,
            params.lr,
            |y_hat| {
                // penalty = A_i/n · Σ_i (ŷ_i − m_i)², m_i = mean of ŷ over
                // kNN(i). Treat m_i as slowly varying (gradient through the
                // first argument only) — standard practice for
                // neighbourhood smoothing penalties.
                y_hat
                    .iter()
                    .enumerate()
                    .map(|(i, &yi)| {
                        let nbrs = &neighbors[i];
                        if nbrs.is_empty() {
                            return 0.0;
                        }
                        let m: f64 = nbrs.iter().map(|&j| y_hat[j]).sum::<f64>()
                            / nbrs.len() as f64;
                        a_i * 2.0 * (yi - m) / n
                    })
                    .collect()
            },
        );

        Self { model, name: "iFair".to_string() }
    }
}

impl FairClassifier for IFair {
    fn predict_row(&self, row: &[f64]) -> u8 {
        u8::from(self.model.predict_proba(row) >= 0.5)
    }

    fn name(&self) -> &str {
        &self.name
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use falcc_dataset::synthetic::{generate, SyntheticConfig};
    use falcc_dataset::{SplitRatios, ThreeWaySplit};
    use falcc_metrics::individual::consistency;
    use falcc_metrics::accuracy;

    fn split(n: usize, seed: u64) -> ThreeWaySplit {
        let mut cfg = SyntheticConfig::social(0.3);
        cfg.n = n;
        let ds = generate(&cfg, seed).unwrap();
        ThreeWaySplit::split(&ds, SplitRatios::PAPER, seed).unwrap()
    }

    #[test]
    fn predicts_above_chance_with_high_consistency() {
        let s = split(1200, 1);
        let model = IFair::fit(&s.train, &IFairParams::default(), 0);
        let preds = model.predict_dataset(&s.test);
        let acc = accuracy(s.test.labels(), &preds);
        assert!(acc > 0.55, "accuracy {acc}");
        let ns = s.test.schema().non_sensitive_attrs();
        let proj = s.test.project(&ns, None);
        let c = consistency(&proj, &preds, 5);
        assert!(c > 0.65, "consistency {c}");
        assert_eq!(model.name(), "iFair");
    }

    #[test]
    fn consistency_penalty_does_not_hurt_consistency() {
        let s = split(1000, 2);
        let with = IFair::fit(&s.train, &IFairParams::default(), 0);
        let without =
            IFair::fit(&s.train, &IFairParams { a_i: 0.0, ..Default::default() }, 0);
        let ns = s.test.schema().non_sensitive_attrs();
        let proj = s.test.project(&ns, None);
        let c_with = consistency(&proj, &with.predict_dataset(&s.test), 5);
        let c_without = consistency(&proj, &without.predict_dataset(&s.test), 5);
        assert!(
            c_with >= c_without - 0.02,
            "penalty should not reduce consistency: {c_with} vs {c_without}"
        );
    }

    #[test]
    fn deterministic_per_seed() {
        let s = split(600, 3);
        let a = IFair::fit(&s.train, &IFairParams::default(), 4);
        let b = IFair::fit(&s.train, &IFairParams::default(), 4);
        assert_eq!(a.predict_dataset(&s.test), b.predict_dataset(&s.test));
    }
}
