//! Kamiran & Calders' *reweighing* pre-processing (Knowl. Inf. Syst.
//! 2012), "\[41\]" in the paper's related-work table: before training, each
//! sample receives the weight
//!
//! `w(g, y) = P(G = g) · P(Y = y) / P(G = g, Y = y)`
//!
//! so that group and label become statistically independent under the
//! weighted distribution. Any weight-aware learner trained on these
//! weights then sees unbiased data; we use the workspace's AdaBoost.

use falcc::FairClassifier;
use falcc_dataset::Dataset;
use falcc_models::tree::TreeParams;
use falcc_models::{AdaBoost, AdaBoostParams, Classifier};

/// A fitted reweighing pipeline.
pub struct KamiranReweighing {
    model: AdaBoost,
    weights_table: Vec<f64>,
    name: String,
}

impl KamiranReweighing {
    /// Computes the reweighing table and trains the downstream model.
    ///
    /// # Panics
    /// Panics if `train` is empty (propagated from the trainer).
    pub fn fit(train: &Dataset, n_estimators: usize, seed: u64) -> Self {
        let n = train.len() as f64;
        let n_groups = train.group_index().len();

        // Joint and marginal counts.
        let mut joint = vec![0.0f64; n_groups * 2];
        let mut by_group = vec![0.0f64; n_groups];
        let mut by_label = [0.0f64; 2];
        for i in 0..train.len() {
            let g = train.group(i).index();
            let y = train.label(i) as usize;
            joint[g * 2 + y] += 1.0;
            by_group[g] += 1.0;
            by_label[y] += 1.0;
        }
        // w(g, y) = P(g)·P(y)/P(g,y); cells with no samples get weight 1
        // (they contribute nothing anyway).
        let weights_table: Vec<f64> = (0..n_groups * 2)
            .map(|cell| {
                let (g, y) = (cell / 2, cell % 2);
                if joint[cell] <= 0.0 {
                    1.0
                } else {
                    (by_group[g] / n) * (by_label[y] / n) / (joint[cell] / n)
                }
            })
            .collect();

        let sample_weights: Vec<f64> = (0..train.len())
            .map(|i| {
                weights_table[train.group(i).index() * 2 + train.label(i) as usize]
            })
            .collect();

        let attrs: Vec<usize> = (0..train.n_attrs()).collect();
        let idx: Vec<usize> = (0..train.len()).collect();
        let params = AdaBoostParams {
            n_estimators,
            tree: TreeParams { max_depth: 3, ..Default::default() },
        };
        let model =
            AdaBoost::fit(train, &attrs, &idx, Some(&sample_weights), &params, seed);

        Self { model, weights_table, name: "Reweighing".to_string() }
    }

    /// The `w(g, y)` table, row-major over `(group, label)` (diagnostics).
    pub fn weights_table(&self) -> &[f64] {
        &self.weights_table
    }
}

impl FairClassifier for KamiranReweighing {
    fn predict_row(&self, row: &[f64]) -> u8 {
        self.model.predict_row(row)
    }

    fn name(&self) -> &str {
        &self.name
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use falcc_dataset::synthetic::{generate, SyntheticConfig};
    use falcc_dataset::{SplitRatios, ThreeWaySplit};
    use falcc_metrics::{accuracy, FairnessMetric};

    fn split(n: usize, seed: u64) -> ThreeWaySplit {
        let mut cfg = SyntheticConfig::social(0.4);
        cfg.n = n;
        let ds = generate(&cfg, seed).unwrap();
        ThreeWaySplit::split(&ds, SplitRatios::PAPER, seed).unwrap()
    }

    #[test]
    fn weight_table_matches_hand_computation() {
        let s = split(2000, 1);
        let model = KamiranReweighing::fit(&s.train, 10, 0);
        let t = model.weights_table();
        assert_eq!(t.len(), 4);
        // On biased data: the discriminated group's positives are
        // under-represented → their cell weight exceeds 1; the favored
        // group's positives are over-represented → weight below 1.
        assert!(t[3] > 1.0, "disadvantaged positives upweighted: {t:?}");
        assert!(t[1] < 1.0, "favored positives downweighted: {t:?}");
        assert!(t.iter().all(|&w| w > 0.0 && w.is_finite()));
    }

    #[test]
    fn reduces_parity_bias_versus_labels() {
        let s = split(3000, 2);
        let model = KamiranReweighing::fit(&s.train, 20, 0);
        let preds = model.predict_dataset(&s.test);
        let bias = FairnessMetric::DemographicParity.bias(
            s.test.labels(),
            &preds,
            s.test.groups(),
            2,
        );
        let label_bias = FairnessMetric::DemographicParity.bias(
            s.test.labels(),
            s.test.labels(),
            s.test.groups(),
            2,
        );
        assert!(bias < label_bias, "bias {bias} vs labels {label_bias}");
        assert!(accuracy(s.test.labels(), &preds) > 0.6);
    }

    #[test]
    fn deterministic_per_seed() {
        let s = split(800, 3);
        let a = KamiranReweighing::fit(&s.train, 10, 5);
        let b = KamiranReweighing::fit(&s.train, 10, 5);
        assert_eq!(a.predict_dataset(&s.test), b.predict_dataset(&s.test));
    }
}
