//! # falcc-baselines
//!
//! The comparison algorithms of the paper's evaluation (§4.1.2), all
//! implemented from the original papers' descriptions and exposed through
//! the shared [`falcc::FairClassifier`] trait:
//!
//! * [`decouple`] — Decoupled classifiers (Dwork, Immorlica, Kalai &
//!   Leiserson, FAT* 2018): one *global* best model combination.
//! * [`falces`] — the FALCES family (Lässig, Oppold & Herschel 2021/2022):
//!   dynamic fair model ensembles with **online** kNN local regions; four
//!   variants (± split training, ± combination prefiltering) plus
//!   BEST/FASTEST selectors. The slow comparator of the paper's Fig. 6.
//! * [`fairboost`] — FairBoost (Bhaskaruni, Hu & Lan, ICTAI 2019):
//!   boosting with individual-fairness-driven instance weighting.
//! * [`lfr`] — Learning Fair Representations (Zemel et al., ICML 2013):
//!   prototype-based representation with a group-parity objective.
//! * [`ifair`] — iFair (Lahoti, Gummadi & Weikum, ICDE 2019): prototype
//!   representation with an individual-fairness (consistency) objective.
//! * [`fairsmote`] — Fair-SMOTE (Chakraborty, Majumder & Menzies,
//!   ESEC/FSE 2021): subgroup-balanced oversampling plus situation-testing
//!   removal.
//! * [`fax`] — FaX (Grabowicz, Perello & Mishra, FAccT 2022): the
//!   marginal-interventional-mixture estimator that cuts the direct and
//!   proxy influence of the sensitive attribute.
//!
//! Three classics from the paper's related-work table (Tab. 1) round out
//! the roster beyond the evaluated set:
//!
//! * [`calders_verwer`] — the two-naive-Bayes fair ensemble of Calders &
//!   Verwer (2010).
//! * [`adafair`] — cumulative fairness boosting (Iosifidis & Ntoutsi,
//!   CIKM 2019).
//! * [`kamiran`] — reweighing pre-processing (Kamiran & Calders, 2012).
//!
//! Implementation fidelity notes live in each module and `DESIGN.md` §3.

pub mod adafair;
pub mod calders_verwer;
pub mod decouple;
pub mod fairboost;
pub mod fairsmote;
pub mod kamiran;
pub mod falces;
pub mod fax;
pub mod ifair;
pub mod lfr;
mod prototypes;

pub use adafair::{AdaFair, AdaFairParams};
pub use calders_verwer::CaldersVerwer;
pub use decouple::Decouple;
pub use fairboost::{FairBoost, FairBoostParams};
pub use fairsmote::{FairSmote, FairSmoteParams};
pub use falces::{Falces, FalcesConfig, FalcesVariant};
pub use fax::{Fax, FaxParams};
pub use kamiran::KamiranReweighing;
pub use ifair::{IFair, IFairParams};
pub use lfr::{Lfr, LfrParams};
