//! FairBoost — "Improving prediction fairness via model ensemble"
//! (Bhaskaruni, Hu & Lan, ICTAI 2019).
//!
//! An AdaBoost variant that targets **individual** fairness: during
//! boosting, samples that the current ensemble treats *inconsistently with
//! their neighbourhood* (a kNN situation test over all groups, the paper
//! uses k = 30) are up-weighted alongside misclassified ones, steering
//! subsequent weak learners toward individually fair behaviour.
//!
//! Faithfulness note: the original work scores a sample as unfairly treated
//! when its prediction deviates from similarly situated individuals of
//! other groups. We implement exactly that signal — prediction vs. the
//! majority prediction of the sample's kNN in the non-sensitive feature
//! space — and fold it into the multiplicative weight update with strength
//! `mu`.

use falcc::FairClassifier;
use falcc_clustering::KdTree;
use falcc_dataset::dataset::ProjectedMatrix;
use falcc_dataset::Dataset;
use falcc_models::tree::{DecisionTree, TreeParams};
use falcc_models::Classifier;

/// FairBoost hyperparameters.
#[derive(Debug, Clone, Copy)]
pub struct FairBoostParams {
    /// Boosting rounds.
    pub n_estimators: usize,
    /// Base-tree parameters.
    pub tree: TreeParams,
    /// Neighbourhood size of the situation test (paper setup: 30, so that
    /// `|G| · k_FALCES` neighbours are considered overall).
    pub k: usize,
    /// Strength of the unfairness term in the weight update.
    pub mu: f64,
}

impl Default for FairBoostParams {
    fn default() -> Self {
        Self {
            n_estimators: 20,
            tree: TreeParams { max_depth: 1, ..Default::default() },
            k: 30,
            mu: 0.5,
        }
    }
}

/// A fitted FairBoost ensemble.
pub struct FairBoost {
    stages: Vec<(DecisionTree, f64)>,
    name: String,
}

impl FairBoost {
    /// Fits the ensemble on `train`.
    ///
    /// # Panics
    /// Panics if `train` is empty or `n_estimators == 0` (propagated from
    /// the tree trainer).
    pub fn fit(train: &Dataset, params: &FairBoostParams, seed: u64) -> Self {
        let n = train.len();
        let attrs: Vec<usize> = (0..train.n_attrs()).collect();
        let indices: Vec<usize> = (0..n).collect();

        // Situation-test neighbourhoods over the non-sensitive projection,
        // computed once.
        let ns_attrs = train.schema().non_sensitive_attrs();
        let projected = train.project(&ns_attrs, None);
        let tree_index = KdTree::build(ProjectedMatrix {
            data: projected.data.clone(),
            n_cols: projected.n_cols,
            n_rows: projected.n_rows,
        });
        let k = params.k.min(n.saturating_sub(1)).max(1);
        let neighbors: Vec<Vec<usize>> = (0..n)
            .map(|i| {
                tree_index
                    .nearest(projected.row(i), k + 1)
                    .into_iter()
                    .filter(|&(j, _)| j != i)
                    .take(k)
                    .map(|(j, _)| j)
                    .collect()
            })
            .collect();

        let mut w = vec![1.0 / n as f64; n];
        let mut stages: Vec<(DecisionTree, f64)> =
            Vec::with_capacity(params.n_estimators);

        for round in 0..params.n_estimators {
            let tree = DecisionTree::fit(
                train,
                &attrs,
                &indices,
                Some(&w),
                &params.tree,
                seed ^ round as u64,
            );
            let preds: Vec<u8> =
                (0..n).map(|i| tree.predict_row(train.row(i))).collect();
            let err: f64 = (0..n)
                .filter(|&i| preds[i] != train.label(i))
                .map(|i| w[i])
                .sum();
            if err <= 1e-12 {
                stages.push((tree, 10.0));
                break;
            }
            if err >= 0.5 {
                if stages.is_empty() {
                    stages.push((tree, 1e-10));
                }
                break;
            }
            let alpha = 0.5 * ((1.0 - err) / err).ln();

            // Situation test: a sample is unfairly treated if its
            // prediction disagrees with the majority prediction of its
            // neighbourhood.
            let unfair: Vec<bool> = (0..n)
                .map(|i| {
                    let nbrs = &neighbors[i];
                    if nbrs.is_empty() {
                        return false;
                    }
                    let pos =
                        nbrs.iter().filter(|&&j| preds[j] == 1).count() as f64;
                    let majority = u8::from(pos / nbrs.len() as f64 >= 0.5);
                    preds[i] != majority
                })
                .collect();

            let mut total = 0.0;
            for i in 0..n {
                let mut factor = if preds[i] != train.label(i) {
                    alpha.exp()
                } else {
                    (-alpha).exp()
                };
                if unfair[i] {
                    factor *= (params.mu * alpha).exp();
                }
                w[i] *= factor;
                total += w[i];
            }
            for wi in w.iter_mut() {
                *wi /= total;
            }
            stages.push((tree, alpha));
        }

        Self { stages, name: "FairBoost".to_string() }
    }

    /// Number of fitted stages.
    pub fn n_stages(&self) -> usize {
        self.stages.len()
    }
}

impl FairClassifier for FairBoost {
    fn predict_row(&self, row: &[f64]) -> u8 {
        let mut margin = 0.0;
        for (tree, alpha) in &self.stages {
            let vote = if tree.predict_row(row) == 1 { 1.0 } else { -1.0 };
            margin += alpha * vote;
        }
        u8::from(margin >= 0.0)
    }

    fn name(&self) -> &str {
        &self.name
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use falcc_dataset::synthetic::{generate, SyntheticConfig};
    use falcc_dataset::{SplitRatios, ThreeWaySplit};
    use falcc_metrics::individual::consistency;
    use falcc_metrics::accuracy;

    fn split(n: usize, seed: u64) -> ThreeWaySplit {
        let mut cfg = SyntheticConfig::social(0.3);
        cfg.n = n;
        let ds = generate(&cfg, seed).unwrap();
        ThreeWaySplit::split(&ds, SplitRatios::PAPER, seed).unwrap()
    }

    #[test]
    fn learns_above_chance() {
        let s = split(900, 1);
        let model = FairBoost::fit(&s.train, &FairBoostParams::default(), 0);
        let preds = model.predict_dataset(&s.test);
        let acc = accuracy(s.test.labels(), &preds);
        assert!(acc > 0.6, "accuracy {acc}");
        assert!(model.n_stages() > 1);
    }

    #[test]
    fn predictions_are_individually_consistent() {
        let s = split(900, 2);
        let model = FairBoost::fit(&s.train, &FairBoostParams::default(), 0);
        let preds = model.predict_dataset(&s.test);
        let ns = s.test.schema().non_sensitive_attrs();
        let proj = s.test.project(&ns, None);
        let c = consistency(&proj, &preds, 5);
        assert!(c > 0.6, "consistency {c}");
    }

    #[test]
    fn deterministic_per_seed() {
        let s = split(500, 3);
        let a = FairBoost::fit(&s.train, &FairBoostParams::default(), 7);
        let b = FairBoost::fit(&s.train, &FairBoostParams::default(), 7);
        assert_eq!(a.predict_dataset(&s.test), b.predict_dataset(&s.test));
    }

    #[test]
    fn mu_zero_reduces_to_plain_boosting_weights() {
        // With mu = 0 the unfairness factor is e^0 = 1; training still
        // works and gives a sane model.
        let s = split(500, 4);
        let params = FairBoostParams { mu: 0.0, ..Default::default() };
        let model = FairBoost::fit(&s.train, &params, 0);
        let preds = model.predict_dataset(&s.test);
        assert!(accuracy(s.test.labels(), &preds) > 0.55);
    }
}
