//! Fair-SMOTE (Chakraborty, Majumder & Menzies, ESEC/FSE 2021): "Bias in
//! machine learning software: why? how? what to do?"
//!
//! Two mechanisms:
//! 1. **Balanced oversampling** — partition the training data into
//!    subgroups (sensitive group × label) and SMOTE-oversample every
//!    subgroup to the size of the largest, removing the distributional
//!    imbalance that standard learners exploit.
//! 2. **Situation testing** — fit a quick probe model, flip each training
//!    sample's sensitive attributes, and *drop* samples whose prediction
//!    flips with them (their labels are suspected to encode bias).
//!
//! The final classifier (AdaBoost, same family as the rest of the
//! workspace) is then trained on the debiased, balanced data.

use falcc::FairClassifier;
use falcc_clustering::KdTree;
use falcc_dataset::dataset::ProjectedMatrix;
use falcc_dataset::Dataset;
use falcc_models::linear::{LogisticParams, LogisticRegression};
use falcc_models::tree::TreeParams;
use falcc_models::{AdaBoost, AdaBoostParams, Classifier};
use rand::rngs::StdRng;
use rand::Rng;
use rand::SeedableRng;

/// Fair-SMOTE hyperparameters.
#[derive(Debug, Clone, Copy)]
pub struct FairSmoteParams {
    /// Neighbours considered when interpolating synthetic samples.
    pub smote_k: usize,
    /// Whether to run the situation-testing removal pass.
    pub situation_testing: bool,
    /// Final model's boosting rounds.
    pub n_estimators: usize,
}

impl Default for FairSmoteParams {
    fn default() -> Self {
        Self { smote_k: 5, situation_testing: true, n_estimators: 20 }
    }
}

/// A fitted Fair-SMOTE pipeline.
pub struct FairSmote {
    model: AdaBoost,
    name: String,
    n_synthetic: usize,
    n_removed: usize,
}

impl FairSmote {
    /// Runs the full pipeline on `train`.
    ///
    /// # Panics
    /// Panics if `train` is empty (propagated from the trainers).
    pub fn fit(train: &Dataset, params: &FairSmoteParams, seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed ^ 0x00c0_ffee_5eed_f00d);
        let n_groups = train.group_index().len();

        // --- Stage 1: subgroup partition (group × label). ---
        let mut subgroups: Vec<Vec<usize>> = vec![Vec::new(); n_groups * 2];
        for i in 0..train.len() {
            let slot = train.group(i).index() * 2 + train.label(i) as usize;
            subgroups[slot].push(i);
        }
        let target = subgroups.iter().map(|s| s.len()).max().unwrap_or(0);

        // Materialise balanced rows: originals + SMOTE interpolations.
        let d = train.n_attrs();
        let sens_attrs = train.schema().sensitive_attrs();
        let mut rows: Vec<Vec<f64>> = Vec::with_capacity(target * subgroups.len());
        let mut labels: Vec<u8> = Vec::with_capacity(target * subgroups.len());
        let mut n_synthetic = 0usize;
        for (slot, members) in subgroups.iter().enumerate() {
            if members.is_empty() {
                continue;
            }
            for &i in members {
                rows.push(train.row(i).to_vec());
                labels.push(train.label(i));
            }
            if members.len() >= 2 {
                // Neighbour structure inside the subgroup for interpolation.
                let mut data = Vec::with_capacity(members.len() * d);
                for &i in members {
                    data.extend_from_slice(train.row(i));
                }
                let tree = KdTree::build(ProjectedMatrix {
                    data,
                    n_cols: d,
                    n_rows: members.len(),
                });
                let k = params.smote_k.min(members.len() - 1).max(1);
                for _ in members.len()..target {
                    let a_local = rng.gen_range(0..members.len());
                    let base = train.row(members[a_local]);
                    let nbrs = tree.nearest(base, k + 1);
                    // Skip self (distance 0 first).
                    let &(b_local, _) =
                        nbrs.get(1 + rng.gen_range(0..k.min(nbrs.len() - 1).max(1)) - 1)
                            .unwrap_or(&nbrs[0]);
                    let other = train.row(members[b_local]);
                    let t: f64 = rng.gen_range(0.0..1.0);
                    let mut synth: Vec<f64> = base
                        .iter()
                        .zip(other)
                        .map(|(x, y)| x + t * (y - x))
                        .collect();
                    // Sensitive attributes stay categorical: keep the
                    // base's values (same subgroup anyway).
                    for &a in &sens_attrs {
                        synth[a] = base[a];
                    }
                    rows.push(synth);
                    labels.push((slot % 2) as u8);
                    n_synthetic += 1;
                }
            }
        }
        let balanced =
            Dataset::from_rows(train.schema().clone(), rows, labels).expect("balanced data");

        // --- Stage 2: situation testing. ---
        let attrs: Vec<usize> = (0..d).collect();
        let (final_train, n_removed) = if params.situation_testing {
            let probe_idx: Vec<usize> = (0..balanced.len()).collect();
            let probe = LogisticRegression::fit(
                &balanced,
                &attrs,
                &probe_idx,
                &LogisticParams { epochs: 150, ..Default::default() },
            );
            let mut keep = Vec::with_capacity(balanced.len());
            for i in 0..balanced.len() {
                let base_pred = probe.predict_row(balanced.row(i));
                let mut flipped = false;
                // Flip each sensitive attribute to every other domain value.
                for s in balanced.schema().sensitive() {
                    for &v in &s.domain {
                        if (v - balanced.value(i, s.attr)).abs() < 1e-9 {
                            continue;
                        }
                        let mut row = balanced.row(i).to_vec();
                        row[s.attr] = v;
                        if probe.predict_row(&row) != base_pred {
                            flipped = true;
                        }
                    }
                }
                if !flipped {
                    keep.push(i);
                }
            }
            let removed = balanced.len() - keep.len();
            // Never drop below half the data: situation testing is a
            // filter, not a guillotine.
            if keep.len() < balanced.len() / 2 {
                ((0..balanced.len()).collect::<Vec<_>>(), 0)
            } else {
                (keep, removed)
            }
        } else {
            ((0..balanced.len()).collect(), 0)
        };

        // --- Stage 3: final model on the debiased data. ---
        let boost_params = AdaBoostParams {
            n_estimators: params.n_estimators,
            tree: TreeParams { max_depth: 3, ..Default::default() },
        };
        let model =
            AdaBoost::fit(&balanced, &attrs, &final_train, None, &boost_params, seed);

        Self { model, name: "Fair-SMOTE".to_string(), n_synthetic, n_removed }
    }

    /// How many synthetic samples SMOTE generated (diagnostics).
    pub fn n_synthetic(&self) -> usize {
        self.n_synthetic
    }

    /// How many samples situation testing removed (diagnostics).
    pub fn n_removed(&self) -> usize {
        self.n_removed
    }
}

impl FairClassifier for FairSmote {
    fn predict_row(&self, row: &[f64]) -> u8 {
        self.model.predict_row(row)
    }

    fn name(&self) -> &str {
        &self.name
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use falcc_dataset::synthetic::{generate, SyntheticConfig};
    use falcc_dataset::{SplitRatios, ThreeWaySplit};
    use falcc_metrics::{accuracy, FairnessMetric};

    fn split(n: usize, seed: u64) -> ThreeWaySplit {
        let mut cfg = SyntheticConfig::social(0.4);
        cfg.n = n;
        let ds = generate(&cfg, seed).unwrap();
        ThreeWaySplit::split(&ds, SplitRatios::PAPER, seed).unwrap()
    }

    #[test]
    fn balances_subgroups_with_synthetic_samples() {
        let s = split(1000, 1);
        let model = FairSmote::fit(&s.train, &FairSmoteParams::default(), 0);
        // Biased data has unequal subgroup sizes → SMOTE must add samples.
        assert!(model.n_synthetic() > 0);
    }

    #[test]
    fn keeps_reasonable_accuracy_and_reduces_bias() {
        let s = split(2000, 2);
        let model = FairSmote::fit(&s.train, &FairSmoteParams::default(), 0);
        let preds = model.predict_dataset(&s.test);
        let acc = accuracy(s.test.labels(), &preds);
        assert!(acc > 0.55, "accuracy {acc}");
        let label_bias = FairnessMetric::DemographicParity.bias(
            s.test.labels(),
            s.test.labels(),
            s.test.groups(),
            2,
        );
        let pred_bias = FairnessMetric::DemographicParity.bias(
            s.test.labels(),
            &preds,
            s.test.groups(),
            2,
        );
        assert!(
            pred_bias < label_bias,
            "bias {pred_bias} should undercut label bias {label_bias}"
        );
    }

    #[test]
    fn situation_testing_can_be_disabled() {
        let s = split(800, 3);
        let params = FairSmoteParams { situation_testing: false, ..Default::default() };
        let model = FairSmote::fit(&s.train, &params, 0);
        assert_eq!(model.n_removed(), 0);
        assert_eq!(model.name(), "Fair-SMOTE");
    }

    #[test]
    fn deterministic_per_seed() {
        let s = split(600, 4);
        let a = FairSmote::fit(&s.train, &FairSmoteParams::default(), 9);
        let b = FairSmote::fit(&s.train, &FairSmoteParams::default(), 9);
        assert_eq!(a.predict_dataset(&s.test), b.predict_dataset(&s.test));
    }
}
