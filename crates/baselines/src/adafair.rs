//! AdaFair — cumulative fairness adaptive boosting (Iosifidis & Ntoutsi,
//! CIKM 2019), "\[39\]" in the paper's related-work table: AdaBoost whose
//! weight update incorporates a *fairness cost* computed from the
//! **cumulative** ensemble built so far, targeting equalized odds.
//!
//! Per round: the partial ensemble's per-group TPR/FPR gaps are measured;
//! samples belonging to the disadvantaged side of a significant gap (e.g.
//! protected-group positives when the protected TPR trails) receive a
//! fairness cost `u_i`, and the AdaBoost multiplicative update is scaled
//! by `(1 + u_i)` — steering later weak learners toward the failure mode
//! of the current ensemble.

use falcc::FairClassifier;
use falcc_dataset::Dataset;
use falcc_models::tree::{DecisionTree, TreeParams};
use falcc_models::Classifier;
use falcc_metrics::ConfusionCounts;

/// AdaFair hyperparameters.
#[derive(Debug, Clone, Copy)]
pub struct AdaFairParams {
    /// Boosting rounds.
    pub n_estimators: usize,
    /// Base-tree parameters.
    pub tree: TreeParams,
    /// Gap (in TPR/FPR) below which no fairness cost is applied — the
    /// paper's ε.
    pub epsilon: f64,
}

impl Default for AdaFairParams {
    fn default() -> Self {
        Self {
            n_estimators: 20,
            tree: TreeParams { max_depth: 1, ..Default::default() },
            epsilon: 0.02,
        }
    }
}

/// A fitted AdaFair ensemble.
pub struct AdaFair {
    stages: Vec<(DecisionTree, f64)>,
    name: String,
}

impl AdaFair {
    /// Fits the ensemble on `train`.
    ///
    /// # Panics
    /// Panics if `train` is empty (propagated from the tree trainer).
    pub fn fit(train: &Dataset, params: &AdaFairParams, seed: u64) -> Self {
        let n = train.len();
        let attrs: Vec<usize> = (0..train.n_attrs()).collect();
        let indices: Vec<usize> = (0..n).collect();
        let n_groups = train.group_index().len();

        let mut w = vec![1.0 / n as f64; n];
        let mut stages: Vec<(DecisionTree, f64)> = Vec::new();
        // Cumulative margin of the partial ensemble per sample.
        let mut margins = vec![0.0f64; n];

        for round in 0..params.n_estimators {
            let tree = DecisionTree::fit(
                train,
                &attrs,
                &indices,
                Some(&w),
                &params.tree,
                seed ^ round as u64,
            );
            let preds: Vec<u8> = (0..n).map(|i| tree.predict_row(train.row(i))).collect();
            let err: f64 =
                (0..n).filter(|&i| preds[i] != train.label(i)).map(|i| w[i]).sum();
            if err <= 1e-12 {
                stages.push((tree, 10.0));
                break;
            }
            if err >= 0.5 {
                if stages.is_empty() {
                    stages.push((tree, 1e-10));
                }
                break;
            }
            let alpha = 0.5 * ((1.0 - err) / err).ln();
            for i in 0..n {
                margins[i] += alpha * if preds[i] == 1 { 1.0 } else { -1.0 };
            }

            // Cumulative-ensemble predictions and the fairness costs they
            // imply.
            let cumulative: Vec<u8> = margins.iter().map(|&m| u8::from(m >= 0.0)).collect();
            let per_group = ConfusionCounts::per_group(
                train.labels(),
                &cumulative,
                train.groups(),
                n_groups,
            );
            let overall = ConfusionCounts::from_slices(train.labels(), &cumulative);
            let u = fairness_costs(train, &per_group, &overall, &cumulative, params.epsilon);

            let mut total = 0.0;
            for i in 0..n {
                let base = if preds[i] != train.label(i) {
                    alpha.exp()
                } else {
                    (-alpha).exp()
                };
                w[i] *= base * (1.0 + u[i]);
                total += w[i];
            }
            for wi in w.iter_mut() {
                *wi /= total;
            }
            stages.push((tree, alpha));
        }

        Self { stages, name: "AdaFair".to_string() }
    }

    /// Number of fitted stages.
    pub fn n_stages(&self) -> usize {
        self.stages.len()
    }
}

/// AdaFair's per-sample fairness cost: positive for samples whose group
/// sits on the disadvantaged side of a TPR or FPR gap larger than ε and
/// whom the cumulative ensemble currently misclassifies.
fn fairness_costs(
    train: &Dataset,
    per_group: &[ConfusionCounts],
    overall: &ConfusionCounts,
    cumulative: &[u8],
    epsilon: f64,
) -> Vec<f64> {
    let n = train.len();
    let tpr_overall = overall.tpr().unwrap_or(0.5);
    let fpr_overall = overall.fpr().unwrap_or(0.5);
    let mut u = vec![0.0f64; n];
    for i in 0..n {
        let g = train.group(i).index();
        let y = train.label(i);
        let z = cumulative[i];
        if y == 1 && z == 0 {
            // A missed positive: costly when this group's TPR trails.
            let gap = tpr_overall - per_group[g].tpr().unwrap_or(tpr_overall);
            if gap > epsilon {
                u[i] = gap;
            }
        } else if y == 0 && z == 1 {
            // A false positive: costly when this group's FPR leads.
            let gap = per_group[g].fpr().unwrap_or(fpr_overall) - fpr_overall;
            if gap > epsilon {
                u[i] = gap;
            }
        }
    }
    u
}

impl FairClassifier for AdaFair {
    fn predict_row(&self, row: &[f64]) -> u8 {
        let margin: f64 = self
            .stages
            .iter()
            .map(|(tree, alpha)| {
                alpha * if tree.predict_row(row) == 1 { 1.0 } else { -1.0 }
            })
            .sum();
        u8::from(margin >= 0.0)
    }

    fn name(&self) -> &str {
        &self.name
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use falcc_dataset::synthetic::{generate, SyntheticConfig};
    use falcc_dataset::{SplitRatios, ThreeWaySplit};
    use falcc_metrics::{accuracy, FairnessMetric};

    fn split(n: usize, seed: u64) -> ThreeWaySplit {
        let mut cfg = SyntheticConfig::social(0.4);
        cfg.n = n;
        let ds = generate(&cfg, seed).unwrap();
        ThreeWaySplit::split(&ds, SplitRatios::PAPER, seed).unwrap()
    }

    #[test]
    fn learns_above_chance() {
        let s = split(2000, 1);
        let model = AdaFair::fit(&s.train, &AdaFairParams::default(), 0);
        let preds = model.predict_dataset(&s.test);
        assert!(accuracy(s.test.labels(), &preds) > 0.6);
        assert!(model.n_stages() > 1);
    }

    #[test]
    fn fairness_costs_reduce_equalized_odds_gap() {
        let s = split(3000, 2);
        let fair = AdaFair::fit(&s.train, &AdaFairParams::default(), 0);
        // ε = 1 disables every fairness cost → plain AdaBoost weights.
        let plain = AdaFair::fit(
            &s.train,
            &AdaFairParams { epsilon: 1.0, ..Default::default() },
            0,
        );
        let eq_od = |m: &AdaFair| {
            let preds = m.predict_dataset(&s.test);
            FairnessMetric::EqualizedOdds.bias(
                s.test.labels(),
                &preds,
                s.test.groups(),
                2,
            )
        };
        let b_fair = eq_od(&fair);
        let b_plain = eq_od(&plain);
        assert!(
            b_fair <= b_plain + 0.02,
            "fairness costs should not worsen eq. odds: {b_fair} vs {b_plain}"
        );
    }

    #[test]
    fn deterministic_per_seed() {
        let s = split(800, 3);
        let a = AdaFair::fit(&s.train, &AdaFairParams::default(), 4);
        let b = AdaFair::fit(&s.train, &AdaFairParams::default(), 4);
        assert_eq!(a.predict_dataset(&s.test), b.predict_dataset(&s.test));
    }
}
