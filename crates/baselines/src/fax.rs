//! FaX — "Marrying fairness and explainability in supervised learning"
//! (Grabowicz, Perello & Mishra, FAccT 2022).
//!
//! FaX removes the *direct* influence of the protected attribute — and,
//! through its explicit use of that attribute at prediction time, the
//! redlining effect of proxies — via a **marginal interventional mixture**
//! (MIM): train a probabilistic model on all attributes, then predict
//!
//! `ŷ(x) = Σ_s P(S = s) · f(x_{¬S}, S := s)`
//!
//! i.e. average the model's output over interventions that set the
//! protected attribute to each of its values, weighted by the marginal.
//! The decision no longer depends on the sample's own protected value, and
//! because the base model was allowed to *see* S during training it does
//! not launder S's signal through proxies (the mechanism behind FaX's
//! strong individual-fairness results in the paper's evaluation).

use falcc::FairClassifier;
use falcc_dataset::Dataset;
use falcc_models::tree::TreeParams;
use falcc_models::{AdaBoost, AdaBoostParams, Classifier};

/// FaX hyperparameters.
#[derive(Debug, Clone, Copy)]
pub struct FaxParams {
    /// Boosting rounds of the probabilistic base model.
    pub n_estimators: usize,
    /// Base-tree depth.
    pub max_depth: usize,
}

impl Default for FaxParams {
    fn default() -> Self {
        Self { n_estimators: 20, max_depth: 3 }
    }
}

/// One intervention: the row positions of the sensitive attributes and the
/// values to impose, with its marginal probability.
struct Intervention {
    values: Vec<f64>,
    prob: f64,
}

/// A fitted FaX (MIM) model.
pub struct Fax {
    base: AdaBoost,
    sens_attrs: Vec<usize>,
    interventions: Vec<Intervention>,
    name: String,
}

impl Fax {
    /// Fits the MIM estimator on `train`.
    ///
    /// # Panics
    /// Panics if `train` is empty (propagated from the trainer).
    pub fn fit(train: &Dataset, params: &FaxParams, seed: u64) -> Self {
        let attrs: Vec<usize> = (0..train.n_attrs()).collect();
        let idx: Vec<usize> = (0..train.len()).collect();
        let boost = AdaBoostParams {
            n_estimators: params.n_estimators,
            tree: TreeParams { max_depth: params.max_depth, ..Default::default() },
        };
        let base = AdaBoost::fit(train, &attrs, &idx, None, &boost, seed);

        // Marginal distribution of the joint sensitive configuration,
        // estimated from the training data.
        let group_index = train.group_index();
        let counts = train.group_counts();
        let n = train.len() as f64;
        let sens_attrs = train.schema().sensitive_attrs();
        let interventions: Vec<Intervention> = group_index
            .ids()
            .filter(|g| counts[g.index()] > 0)
            .map(|g| Intervention {
                values: group_index.values_of(g),
                prob: counts[g.index()] as f64 / n,
            })
            .collect();

        Self { base, sens_attrs, interventions, name: "FaX".to_string() }
    }

    /// The interventional mixture probability for one row.
    pub fn predict_proba_row(&self, row: &[f64]) -> f64 {
        let mut buf = row.to_vec();
        let mut p = 0.0;
        for iv in &self.interventions {
            for (&a, &v) in self.sens_attrs.iter().zip(&iv.values) {
                buf[a] = v;
            }
            p += iv.prob * self.base.predict_proba_row(&buf);
        }
        p
    }
}

impl FairClassifier for Fax {
    fn predict_row(&self, row: &[f64]) -> u8 {
        u8::from(self.predict_proba_row(row) >= 0.5)
    }

    fn name(&self) -> &str {
        &self.name
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use falcc_dataset::synthetic::{generate, SyntheticConfig};
    use falcc_dataset::{SplitRatios, ThreeWaySplit};
    use falcc_metrics::{accuracy, FairnessMetric};

    fn split(kind_social: bool, n: usize, seed: u64) -> ThreeWaySplit {
        let mut cfg = if kind_social {
            SyntheticConfig::social(0.4)
        } else {
            SyntheticConfig::implicit(0.4)
        };
        cfg.n = n;
        let ds = generate(&cfg, seed).unwrap();
        ThreeWaySplit::split(&ds, SplitRatios::PAPER, seed).unwrap()
    }

    #[test]
    fn output_is_invariant_to_the_sample_sensitive_value() {
        let s = split(true, 1000, 1);
        let model = Fax::fit(&s.train, &FaxParams::default(), 0);
        for i in 0..s.test.len().min(50) {
            let mut row = s.test.row(i).to_vec();
            row[0] = 0.0;
            let p0 = model.predict_proba_row(&row);
            row[0] = 1.0;
            let p1 = model.predict_proba_row(&row);
            assert!((p0 - p1).abs() < 1e-12, "MIM must ignore the sample's S");
        }
    }

    #[test]
    fn removes_direct_bias_while_staying_accurate() {
        let s = split(true, 2000, 2);
        let model = Fax::fit(&s.train, &FaxParams::default(), 0);
        let preds = model.predict_dataset(&s.test);
        let acc = accuracy(s.test.labels(), &preds);
        assert!(acc > 0.6, "accuracy {acc}");
        let label_bias = FairnessMetric::DemographicParity.bias(
            s.test.labels(),
            s.test.labels(),
            s.test.groups(),
            2,
        );
        let pred_bias = FairnessMetric::DemographicParity.bias(
            s.test.labels(),
            &preds,
            s.test.groups(),
            2,
        );
        assert!(
            pred_bias < label_bias,
            "bias {pred_bias} should undercut label bias {label_bias}"
        );
    }

    #[test]
    fn mixture_probabilities_sum_to_one() {
        let s = split(false, 800, 3);
        let model = Fax::fit(&s.train, &FaxParams::default(), 0);
        let total: f64 = model.interventions.iter().map(|iv| iv.prob).sum();
        assert!((total - 1.0).abs() < 1e-9);
        assert_eq!(model.name(), "FaX");
    }

    #[test]
    fn deterministic_per_seed() {
        let s = split(true, 600, 4);
        let a = Fax::fit(&s.train, &FaxParams::default(), 8);
        let b = Fax::fit(&s.train, &FaxParams::default(), 8);
        assert_eq!(a.predict_dataset(&s.test), b.predict_dataset(&s.test));
    }
}
