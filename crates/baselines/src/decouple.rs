//! Decoupled classifiers (Dwork et al., FAT* 2018).
//!
//! Train several classifiers, enumerate all combinations (one classifier
//! per sensitive group), assess every combination against a joint
//! accuracy + fairness metric **globally**, and use the single best
//! combination for all future samples. FALCC generalises this from one
//! global region to per-cluster regions; setting FALCC's cluster count to 1
//! coincides with Decouple up to the training procedure.

use falcc::FairClassifier;
use falcc_dataset::{Dataset, GroupIndex};
use falcc_metrics::LossConfig;
use falcc_models::{enumerate_combinations, predict_dataset, ModelPool};

/// A fitted Decouple model.
pub struct Decouple {
    pool: ModelPool,
    best_combo: Vec<usize>,
    group_index: GroupIndex,
    name: String,
}

impl Decouple {
    /// Assesses every combination of `pool` on `validation` with `loss`
    /// and keeps the global argmin.
    ///
    /// # Errors
    /// [`falcc::FalccError::NoApplicableModel`] if some group has no
    /// applicable model.
    pub fn fit(
        pool: ModelPool,
        validation: &Dataset,
        loss: LossConfig,
    ) -> Result<Self, falcc::FalccError> {
        let group_index = validation.group_index().clone();
        let n_groups = group_index.len();
        let combos = enumerate_combinations(&pool, n_groups);
        if combos.is_empty() {
            return Err(falcc::FalccError::NoApplicableModel { group: 0 });
        }
        let preds: Vec<Vec<u8>> = pool
            .models
            .iter()
            .map(|m| predict_dataset(m.model.as_ref(), validation))
            .collect();
        let y = validation.labels();
        let g = validation.groups();
        let mut best: Option<(usize, f64)> = None;
        for (ci, combo) in combos.iter().enumerate() {
            let z: Vec<u8> = (0..validation.len())
                .map(|i| preds[combo[g[i].index()]][i])
                .collect();
            let l = loss.evaluate(y, &z, g, n_groups);
            if best.is_none_or(|(_, b)| l < b) {
                best = Some((ci, l));
            }
        }
        let (ci, _) = best.expect("combos non-empty");
        Ok(Self {
            pool,
            best_combo: combos[ci].clone(),
            group_index,
            name: "Decouple".to_string(),
        })
    }

    /// The chosen combination (pool index per group).
    pub fn combo(&self) -> &[usize] {
        &self.best_combo
    }

    /// Overrides the reported name (`Decouple*` for the fair-pool config).
    pub fn set_name(&mut self, name: impl Into<String>) {
        self.name = name.into();
    }
}

impl FairClassifier for Decouple {
    fn predict_row(&self, row: &[f64]) -> u8 {
        let group = self
            .group_index
            .group_of(row)
            .expect("sample's sensitive attributes must be in-domain");
        let model_idx = self.best_combo[group.index()];
        self.pool.models[model_idx].model.predict_row(row)
    }

    fn name(&self) -> &str {
        &self.name
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use falcc_dataset::synthetic::{generate, SyntheticConfig};
    use falcc_dataset::{SplitRatios, ThreeWaySplit};
    use falcc_metrics::{accuracy, FairnessMetric};
    use falcc_models::PoolConfig;

    fn split(n: usize, seed: u64) -> ThreeWaySplit {
        let mut cfg = SyntheticConfig::social(0.3);
        cfg.n = n;
        let ds = generate(&cfg, seed).unwrap();
        ThreeWaySplit::split(&ds, SplitRatios::PAPER, seed).unwrap()
    }

    #[test]
    fn fits_and_predicts_reasonably() {
        let s = split(1200, 1);
        let pool = ModelPool::train_diverse(
            &s.train,
            &s.validation,
            &PoolConfig { pool_size: 3, ..Default::default() },
        );
        let model = Decouple::fit(
            pool,
            &s.validation,
            LossConfig::balanced(FairnessMetric::DemographicParity),
        )
        .unwrap();
        assert_eq!(model.combo().len(), 2);
        let preds = model.predict_dataset(&s.test);
        let acc = accuracy(s.test.labels(), &preds);
        assert!(acc > 0.6, "accuracy {acc}");
        assert_eq!(model.name(), "Decouple");
    }

    #[test]
    fn chosen_combo_minimises_the_global_loss() {
        let s = split(800, 2);
        let pool = ModelPool::train_diverse(
            &s.train,
            &s.validation,
            &PoolConfig { pool_size: 2, ..Default::default() },
        );
        let loss = LossConfig::balanced(FairnessMetric::DemographicParity);
        let model = Decouple::fit(pool, &s.validation, loss).unwrap();
        // Recompute all four combo losses by hand and verify the minimum.
        let pool = model.pool_for_tests();
        let preds: Vec<Vec<u8>> = pool
            .models
            .iter()
            .map(|m| predict_dataset(m.model.as_ref(), &s.validation))
            .collect();
        let mut best = f64::INFINITY;
        let mut chosen_loss = f64::NAN;
        for a in 0..2 {
            for b in 0..2 {
                let z: Vec<u8> = (0..s.validation.len())
                    .map(|i| preds[[a, b][s.validation.group(i).index()]][i])
                    .collect();
                let l = loss.evaluate(
                    s.validation.labels(),
                    &z,
                    s.validation.groups(),
                    2,
                );
                best = best.min(l);
                if [a, b] == model.combo() {
                    chosen_loss = l;
                }
            }
        }
        assert!((chosen_loss - best).abs() < 1e-12);
    }

    #[test]
    fn empty_pool_is_an_error() {
        let s = split(400, 3);
        let err = Decouple::fit(
            ModelPool::from_models(vec![]),
            &s.validation,
            LossConfig::default(),
        );
        assert!(err.is_err());
    }

    impl Decouple {
        fn pool_for_tests(&self) -> &ModelPool {
            &self.pool
        }
    }
}
