//! Kill-point chaos harness: re-execs the `falcc` binary, hard-kills it
//! at every crash point of the checkpoint journal, resumes, and asserts
//! the resumed model snapshot is byte-identical to an uninterrupted run.
//!
//! The sweep covers the full [`CrashPoint::catalog`]: every checkpoint
//! commit ordinal crossed with every [`CrashPhase`] (before the record
//! write, after it, mid-manifest-append with a torn half-line synced to
//! disk, and after the commit). CI runs the suite at 1, 2, and 8 worker
//! threads via `FALCC_TEST_THREADS`; the crashed and resumed processes
//! deliberately use that thread count while the reference run uses one
//! thread, so the sweep re-proves the determinism contract too.

use falcc::CrashPoint;
use std::path::{Path, PathBuf};
use std::process::{Command, Output};

/// Checkpoint commits `falcc fit` performs with its fixed test-scale
/// profile (8 pool members + pool training + proxy + projection +
/// k-estimation + clustering + gap fill + 4 regions + assessment). The
/// sweep asserts this against the journal, so a pipeline change that
/// shifts the commit count fails loudly instead of silently shrinking
/// the kill-point catalog.
const COMMITS: u64 = 19;

/// Synthetic dataset size for every run in this suite — small keeps the
/// 2 × catalog process spawns fast, large enough for 4 stable regions.
const ROWS: &str = "400";

fn falcc(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_falcc"))
        .args(args)
        .output()
        .expect("spawn falcc binary")
}

fn assert_ok(out: &Output, what: &str) {
    assert!(
        out.status.success(),
        "{what} failed with {:?}:\n{}",
        out.status,
        String::from_utf8_lossy(&out.stderr)
    );
}

/// Thread count for crashed/resumed runs. CI pins 1, 2, and 8.
fn threads_under_test() -> String {
    std::env::var("FALCC_TEST_THREADS").unwrap_or_else(|_| "2".to_string())
}

fn path_str(p: &Path) -> &str {
    p.to_str().expect("utf-8 path")
}

fn fresh_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join("falcc_chaos").join(name);
    std::fs::remove_dir_all(&dir).ok();
    std::fs::create_dir_all(&dir).expect("mkdir");
    dir
}

/// The uninterrupted single-threaded reference snapshot all resumed runs
/// must reproduce byte for byte.
fn reference_snapshot(dir: &Path) -> Vec<u8> {
    let out = dir.join("reference.json");
    let run = falcc(&[
        "fit", "--out", path_str(&out), "--rows", ROWS, "--threads", "1", "--quiet",
    ]);
    assert_ok(&run, "reference fit");
    std::fs::read(&out).expect("read reference snapshot")
}

#[test]
fn kill_point_sweep_resumes_bit_identically() {
    let dir = fresh_dir("sweep");
    let threads = threads_under_test();
    let reference = reference_snapshot(&dir);

    // An uninterrupted journaled run pins the commit count the catalog
    // is derived from (and must itself match the journal-less reference).
    let full_out = dir.join("full.json");
    let full_ck = dir.join("ck_full");
    let run = falcc(&[
        "fit", "--out", path_str(&full_out), "--checkpoint-dir", path_str(&full_ck),
        "--rows", ROWS, "--threads", &threads, "--quiet",
    ]);
    assert_ok(&run, "uninterrupted journaled fit");
    assert_eq!(
        std::fs::read(&full_out).expect("read"),
        reference,
        "journaled run must match the journal-less reference"
    );
    let manifest = std::fs::read_to_string(full_ck.join(falcc::checkpoint::MANIFEST))
        .expect("read manifest");
    assert_eq!(
        manifest.lines().count() as u64,
        COMMITS,
        "commit count changed — update COMMITS so the sweep stays exhaustive"
    );

    for point in CrashPoint::catalog(COMMITS) {
        let tag = format!("{}_{}", point.ordinal, point.phase.name());
        let ck = dir.join(format!("ck_{tag}"));
        let out = dir.join(format!("model_{tag}.json"));
        let crash_at = format!("{}:{}", point.ordinal, point.phase.name());

        let crashed = falcc(&[
            "fit", "--out", path_str(&out), "--checkpoint-dir", path_str(&ck),
            "--rows", ROWS, "--threads", &threads, "--quiet", "--crash-at", &crash_at,
        ]);
        assert!(
            !crashed.status.success(),
            "crash point {crash_at}: the armed kill must abort the process"
        );
        assert!(
            !out.exists(),
            "crash point {crash_at}: no model snapshot may appear from a killed run"
        );

        let resumed = falcc(&[
            "fit", "--out", path_str(&out), "--checkpoint-dir", path_str(&ck),
            "--rows", ROWS, "--threads", &threads, "--quiet", "--resume",
        ]);
        assert_ok(&resumed, &format!("resume after crash at {crash_at}"));
        assert_eq!(
            std::fs::read(&out).expect("read resumed snapshot"),
            reference,
            "crash point {crash_at}: resumed snapshot must be byte-identical"
        );
    }

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn transient_io_faults_are_retried_and_exhaustion_is_a_clean_failure() {
    let dir = fresh_dir("retries");
    let reference = reference_snapshot(&dir);

    // Scattered transient failures: absorbed by the bounded retry layer,
    // model unchanged.
    let out = dir.join("retried.json");
    let ck = dir.join("ck_retried");
    let run = falcc(&[
        "fit", "--out", path_str(&out), "--checkpoint-dir", path_str(&ck),
        "--rows", ROWS, "--threads", "1", "--quiet", "--inject", "io:0,io:3,io:7",
    ]);
    assert_ok(&run, "fit with scattered transient I/O faults");
    assert_eq!(
        std::fs::read(&out).expect("read"),
        reference,
        "absorbed transient faults must not change the model"
    );

    // Four consecutive failures of one operation exceed the budget of 3:
    // a typed runtime error (exit 1), not a panic or partial snapshot.
    let out = dir.join("exhausted.json");
    let ck = dir.join("ck_exhausted");
    let run = falcc(&[
        "fit", "--out", path_str(&out), "--checkpoint-dir", path_str(&ck),
        "--rows", ROWS, "--threads", "1", "--quiet", "--inject", "io:0,io:1,io:2,io:3",
    ]);
    assert_eq!(run.status.code(), Some(1), "retry exhaustion is a runtime failure");
    let stderr = String::from_utf8_lossy(&run.stderr);
    assert!(
        stderr.contains("transient I/O failure persisted through 3 retries"),
        "stderr must carry the typed exhaustion message, got:\n{stderr}"
    );
    assert!(!out.exists(), "no model snapshot after an exhausted fit");

    // A raised budget absorbs the same burst.
    let run = falcc(&[
        "fit", "--out", path_str(&out), "--checkpoint-dir", path_str(&ck),
        "--rows", ROWS, "--threads", "1", "--quiet", "--retry-budget", "6",
        "--inject", "io:0,io:1,io:2,io:3",
    ]);
    assert_ok(&run, "fit with raised retry budget");
    assert_eq!(std::fs::read(&out).expect("read"), reference);

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn resume_rejects_a_stale_generation_journal() {
    let dir = fresh_dir("stale");
    let ck = dir.join("ck");
    let out = dir.join("model.json");
    let run = falcc(&[
        "fit", "--out", path_str(&out), "--checkpoint-dir", path_str(&ck),
        "--rows", ROWS, "--threads", "1", "--quiet", "--seed", "11",
    ]);
    assert_ok(&run, "seed-11 journaled fit");

    // Same journal, different run config: every manifest entry carries a
    // foreign fingerprint, so resuming must fail typed instead of reviving
    // checkpoints from another run.
    let run = falcc(&[
        "fit", "--out", path_str(&out), "--checkpoint-dir", path_str(&ck),
        "--rows", ROWS, "--threads", "1", "--quiet", "--seed", "12", "--resume",
    ]);
    assert_eq!(run.status.code(), Some(1), "stale-generation resume is a runtime failure");
    let stderr = String::from_utf8_lossy(&run.stderr);
    assert!(stderr.contains("belongs to a different run"), "{stderr}");

    // Without --resume the same directory is wiped and refitted cleanly.
    let run = falcc(&[
        "fit", "--out", path_str(&out), "--checkpoint-dir", path_str(&ck),
        "--rows", ROWS, "--threads", "1", "--quiet", "--seed", "12",
    ]);
    assert_ok(&run, "fresh fit over a stale journal");

    std::fs::remove_dir_all(&dir).ok();
}
