//! The `falcc` command-line binary — a thin wrapper around
//! [`falcc_cli::run`].

fn main() {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    match falcc_cli::run(&argv) {
        Ok(output) => print!("{output}"),
        Err(e) => {
            eprintln!("error: {e}");
            if e.exit_code == 2 {
                eprintln!("\n{}", falcc_cli::USAGE);
            }
            std::process::exit(e.exit_code);
        }
    }
}
