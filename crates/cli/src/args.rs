//! Argument parsing for the `falcc` binary (hand-rolled; the dependency
//! policy admits no CLI crate).

use crate::CliError;
use falcc::{ClusterSpec, CrashPhase, FaultPlan, ProxyStrategy};
use falcc_metrics::FairnessMetric;

/// The parsed subcommand with its options.
#[derive(Debug, Clone, PartialEq)]
pub enum Command {
    /// Fit a FALCC model from a CSV file and save it.
    Train(TrainArgs),
    /// Classify a CSV file with a saved model.
    Predict(PredictArgs),
    /// Fairness audit of a saved model on labeled data.
    Audit(ModelDataArgs),
    /// Describe a saved model.
    Info {
        /// Path to the saved model JSON.
        model: String,
    },
    /// Self-contained end-to-end demo on synthetic data (fit + classify),
    /// mainly useful with `--profile`/`--trace-out`.
    Run(RunArgs),
    /// Checkpointed offline fit on synthetic data: journals phase-granular
    /// checkpoints and — with `--resume` — picks up after the last valid
    /// one. The chaos harness re-execs this subcommand around every
    /// `--crash-at` kill point.
    Fit(FitArgs),
    /// Render a live-monitor stream (`falcc run --monitor-out …`) as a
    /// per-region drift & fairness report with threshold WARN lines.
    Monitor(MonitorArgs),
    /// Print usage.
    Help,
}

/// Global observability options, accepted by every subcommand and
/// extracted from the argument vector before subcommand parsing.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct TelemetryOpts {
    /// Print the per-phase span tree and metrics after the command.
    pub profile: bool,
    /// Write the full trace as JSON lines to this path.
    pub trace_out: Option<String>,
    /// Suppress progress output on stderr (recorded progress events still
    /// land in the trace, so `--quiet --trace-out t.jsonl` keeps the log).
    pub quiet: bool,
}

impl TelemetryOpts {
    /// `true` when the command should record telemetry.
    pub fn recording(&self) -> bool {
        self.profile || self.trace_out.is_some()
    }
}

/// Splits the global `--profile` / `--trace-out <path>` / `--quiet` flags
/// out of `argv`, returning the remaining arguments and the parsed options.
///
/// # Errors
/// [`CliError`] (exit code 2) when `--trace-out` is missing its path.
pub fn extract_telemetry(argv: &[String]) -> Result<(Vec<String>, TelemetryOpts), CliError> {
    let mut rest = Vec::with_capacity(argv.len());
    let mut opts = TelemetryOpts::default();
    let mut it = argv.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--profile" => opts.profile = true,
            "--quiet" => opts.quiet = true,
            "--trace-out" => {
                let path = it
                    .next()
                    .ok_or_else(|| CliError::usage("missing value for --trace-out"))?;
                opts.trace_out = Some(path.clone());
            }
            _ => rest.push(arg.clone()),
        }
    }
    Ok((rest, opts))
}

/// `falcc run` options.
#[derive(Debug, Clone, PartialEq)]
pub struct RunArgs {
    /// RNG seed for data generation and fitting.
    pub seed: u64,
    /// Row-count scale of the synthetic dataset in `(0, 1]`.
    pub scale: f64,
    /// Worker threads (0 = available parallelism).
    pub threads: usize,
    /// Deterministic fault-injection schedule from `--inject` (empty by
    /// default) — demonstrates the degradation paths end to end.
    pub faults: FaultPlan,
    /// Serve the test split through the interpreted online phase instead
    /// of the compiled plane (escape hatch; results are bit-identical).
    pub no_compile: bool,
    /// Install the live serving monitors around the classification pass
    /// and write the windowed monitor stream (JSONL) to this path.
    pub monitor_out: Option<String>,
}

/// `falcc fit` options.
#[derive(Debug, Clone, PartialEq)]
pub struct FitArgs {
    /// RNG seed for data generation and fitting.
    pub seed: u64,
    /// Synthetic dataset row count.
    pub rows: usize,
    /// Worker threads (0 = available parallelism). Pure throughput knob:
    /// the fitted model is bit-identical for every value, including when
    /// a resumed run uses a different count than the crashed one.
    pub threads: usize,
    /// Where the fitted model snapshot (JSON) is written.
    pub out: String,
    /// Checkpoint journal directory; `None` fits without journaling.
    pub checkpoint_dir: Option<String>,
    /// Resume from the journal's last valid checkpoint instead of wiping.
    pub resume: bool,
    /// Transient-I/O retry budget for journal writes.
    pub retry_budget: u32,
    /// Deterministic fault schedule from `--crash-at` / `--inject`.
    pub faults: FaultPlan,
    /// Also compile the fitted model and write it as a binary serving
    /// artifact (`.falccb`) next to the JSON snapshot, so later serving
    /// starts skip JSON parsing and recompilation.
    pub emit_artifact: bool,
}

/// `falcc monitor` options.
#[derive(Debug, Clone, PartialEq)]
pub struct MonitorArgs {
    /// Path to a windowed monitor stream (JSONL), as written by
    /// `falcc run --monitor-out`.
    pub input: String,
    /// WARN when a window/region demographic-parity gap exceeds this.
    pub warn_dp: f64,
    /// WARN when a window's occupancy skew score exceeds this.
    pub warn_skew: f64,
    /// WARN when a region's group-mix shift exceeds this.
    pub warn_shift: f64,
    /// WARN when a window's rejection rate exceeds this.
    pub warn_reject: f64,
    /// Print Prometheus-style text exposition instead of the report.
    pub exposition: bool,
}

/// `falcc train` options.
#[derive(Debug, Clone, PartialEq)]
pub struct TrainArgs {
    pub data: String,
    pub sensitive: Vec<String>,
    pub out: String,
    pub metric: FairnessMetric,
    pub lambda: f64,
    pub proxy: ProxyStrategy,
    pub clusters: ClusterSpec,
    pub val_split: f64,
    pub seed: u64,
    pub tune: bool,
    pub threads: usize,
}

/// `falcc predict` options.
#[derive(Debug, Clone, PartialEq)]
pub struct PredictArgs {
    pub model: String,
    pub data: String,
    pub out: Option<String>,
    pub threads: usize,
    /// Classify through the interpreted online phase instead of the
    /// compiled serving plane (escape hatch; results are bit-identical).
    pub no_compile: bool,
    /// Ignore a sibling `.falccb` binary artifact and always restore +
    /// recompile from the JSON snapshot (escape hatch; results are
    /// bit-identical).
    pub no_artifact: bool,
}

/// Shared `--model` + `--data` options.
#[derive(Debug, Clone, PartialEq)]
pub struct ModelDataArgs {
    pub model: String,
    pub data: String,
}

/// Alias kept for the library root re-export.
pub type ParsedArgs = Command;

struct Cursor<'a> {
    args: &'a [String],
    at: usize,
}

impl<'a> Cursor<'a> {
    fn next_value(&mut self, flag: &str) -> Result<&'a str, CliError> {
        self.at += 1;
        self.args
            .get(self.at - 1)
            .map(|s| s.as_str())
            .ok_or_else(|| CliError::usage(format!("missing value for {flag}")))
    }
}

fn parse_num<T: std::str::FromStr>(s: &str, flag: &str) -> Result<T, CliError> {
    s.parse().map_err(|_| CliError::usage(format!("invalid value {s:?} for {flag}")))
}

/// Parses a full argument vector (without the program name).
///
/// # Errors
/// [`CliError`] (exit code 2) on unknown subcommands/flags or missing
/// required options.
pub fn parse(argv: &[String]) -> Result<Command, CliError> {
    let Some(sub) = argv.first() else {
        return Ok(Command::Help);
    };
    match sub.as_str() {
        "--help" | "-h" | "help" => Ok(Command::Help),
        "train" => parse_train(&argv[1..]),
        "predict" => parse_predict(&argv[1..]),
        "run" => parse_run(&argv[1..]),
        "fit" => parse_fit(&argv[1..]),
        "monitor" => parse_monitor(&argv[1..]),
        "audit" => parse_model_data(&argv[1..]).map(Command::Audit),
        "info" => {
            let mut model = None;
            let mut cur = Cursor { args: &argv[1..], at: 0 };
            while cur.at < cur.args.len() {
                let flag = cur.args[cur.at].clone();
                cur.at += 1;
                match flag.as_str() {
                    "--model" => model = Some(cur.next_value("--model")?.to_string()),
                    other => {
                        return Err(CliError::usage(format!("unknown flag {other}")))
                    }
                }
            }
            Ok(Command::Info {
                model: model.ok_or_else(|| CliError::usage("info requires --model"))?,
            })
        }
        other => Err(CliError::usage(format!("unknown subcommand {other:?}; see --help"))),
    }
}

fn parse_train(args: &[String]) -> Result<Command, CliError> {
    let mut out = TrainArgs {
        data: String::new(),
        sensitive: Vec::new(),
        out: String::new(),
        metric: FairnessMetric::DemographicParity,
        lambda: 0.5,
        proxy: ProxyStrategy::None,
        clusters: ClusterSpec::LogMeans,
        val_split: 0.4,
        seed: 42,
        tune: false,
        threads: 0,
    };
    let mut cur = Cursor { args, at: 0 };
    while cur.at < cur.args.len() {
        let flag = cur.args[cur.at].clone();
        cur.at += 1;
        match flag.as_str() {
            "--data" => out.data = cur.next_value("--data")?.to_string(),
            "--sensitive" => out.sensitive.push(cur.next_value("--sensitive")?.to_string()),
            "--out" => out.out = cur.next_value("--out")?.to_string(),
            "--metric" => {
                out.metric = match cur.next_value("--metric")? {
                    "dp" => FairnessMetric::DemographicParity,
                    "eq_od" => FairnessMetric::EqualizedOdds,
                    "eq_op" => FairnessMetric::EqualOpportunity,
                    "tr_eq" => FairnessMetric::TreatmentEquality,
                    other => {
                        return Err(CliError::usage(format!(
                            "unknown metric {other:?} (dp|eq_od|eq_op|tr_eq)"
                        )))
                    }
                }
            }
            "--lambda" => out.lambda = parse_num(cur.next_value("--lambda")?, "--lambda")?,
            "--proxy" => {
                out.proxy = match cur.next_value("--proxy")? {
                    "none" => ProxyStrategy::None,
                    "reweigh" => ProxyStrategy::Reweigh,
                    "remove" => ProxyStrategy::PAPER_REMOVE,
                    other => {
                        return Err(CliError::usage(format!(
                            "unknown proxy strategy {other:?} (none|reweigh|remove)"
                        )))
                    }
                }
            }
            "--clusters" => {
                let v = cur.next_value("--clusters")?;
                out.clusters = match v {
                    "auto" => ClusterSpec::LogMeans,
                    "elbow" => ClusterSpec::Elbow,
                    k => ClusterSpec::FixedK(parse_num(k, "--clusters")?),
                };
            }
            "--val-split" => {
                out.val_split = parse_num(cur.next_value("--val-split")?, "--val-split")?
            }
            "--seed" => out.seed = parse_num(cur.next_value("--seed")?, "--seed")?,
            "--tune" => out.tune = true,
            "--threads" => {
                out.threads = parse_num(cur.next_value("--threads")?, "--threads")?
            }
            other => return Err(CliError::usage(format!("unknown flag {other}"))),
        }
    }
    if out.data.is_empty() {
        return Err(CliError::usage("train requires --data"));
    }
    if out.sensitive.is_empty() {
        return Err(CliError::usage("train requires at least one --sensitive column"));
    }
    if out.out.is_empty() {
        return Err(CliError::usage("train requires --out"));
    }
    if !(0.0..=1.0).contains(&out.lambda) {
        return Err(CliError::usage("--lambda must be in [0, 1]"));
    }
    if !(out.val_split > 0.0 && out.val_split < 1.0) {
        return Err(CliError::usage("--val-split must be in (0, 1)"));
    }
    Ok(Command::Train(out))
}

fn parse_run(args: &[String]) -> Result<Command, CliError> {
    let mut out = RunArgs {
        seed: 11,
        scale: 0.10,
        threads: 0,
        faults: FaultPlan::default(),
        no_compile: false,
        monitor_out: None,
    };
    let mut cur = Cursor { args, at: 0 };
    while cur.at < cur.args.len() {
        let flag = cur.args[cur.at].clone();
        cur.at += 1;
        match flag.as_str() {
            "--seed" => out.seed = parse_num(cur.next_value("--seed")?, "--seed")?,
            "--scale" => out.scale = parse_num(cur.next_value("--scale")?, "--scale")?,
            "--threads" => {
                out.threads = parse_num(cur.next_value("--threads")?, "--threads")?
            }
            "--inject" => parse_inject(&mut out.faults, cur.next_value("--inject")?)?,
            "--no-compile" => out.no_compile = true,
            "--monitor-out" => {
                out.monitor_out = Some(cur.next_value("--monitor-out")?.to_string())
            }
            other => return Err(CliError::usage(format!("unknown flag {other}"))),
        }
    }
    if !(out.scale > 0.0 && out.scale <= 1.0) {
        return Err(CliError::usage("--scale must be in (0, 1]"));
    }
    Ok(Command::Run(out))
}

fn parse_fit(args: &[String]) -> Result<Command, CliError> {
    let mut out = FitArgs {
        seed: 11,
        rows: 600,
        threads: 0,
        out: String::new(),
        checkpoint_dir: None,
        resume: false,
        retry_budget: 3,
        faults: FaultPlan::default(),
        emit_artifact: false,
    };
    let mut cur = Cursor { args, at: 0 };
    while cur.at < cur.args.len() {
        let flag = cur.args[cur.at].clone();
        cur.at += 1;
        match flag.as_str() {
            "--seed" => out.seed = parse_num(cur.next_value("--seed")?, "--seed")?,
            "--rows" => out.rows = parse_num(cur.next_value("--rows")?, "--rows")?,
            "--threads" => {
                out.threads = parse_num(cur.next_value("--threads")?, "--threads")?
            }
            "--out" => out.out = cur.next_value("--out")?.to_string(),
            "--checkpoint-dir" => {
                out.checkpoint_dir = Some(cur.next_value("--checkpoint-dir")?.to_string())
            }
            "--resume" => out.resume = true,
            "--retry-budget" => {
                out.retry_budget =
                    parse_num(cur.next_value("--retry-budget")?, "--retry-budget")?
            }
            "--crash-at" => {
                let spec = cur.next_value("--crash-at")?;
                let bad = || {
                    CliError::usage(format!(
                        "invalid --crash-at {spec:?}; expected <ordinal>:<phase> with \
                         phase one of before-write|after-record|mid-manifest|after-commit"
                    ))
                };
                let (ord, phase) = spec.split_once(':').ok_or_else(bad)?;
                out.faults.crash_at(
                    ord.parse().map_err(|_| bad())?,
                    CrashPhase::parse(phase).ok_or_else(bad)?,
                );
            }
            "--inject" => parse_inject(&mut out.faults, cur.next_value("--inject")?)?,
            "--emit-artifact" => out.emit_artifact = true,
            other => return Err(CliError::usage(format!("unknown flag {other}"))),
        }
    }
    if out.out.is_empty() {
        return Err(CliError::usage("fit requires --out"));
    }
    if out.rows < 100 {
        return Err(CliError::usage("--rows must be at least 100"));
    }
    if out.checkpoint_dir.is_none() && (out.resume || out.faults.crash_point().is_some()) {
        return Err(CliError::usage(
            "--resume and --crash-at require --checkpoint-dir",
        ));
    }
    Ok(Command::Fit(out))
}

fn parse_monitor(args: &[String]) -> Result<Command, CliError> {
    let mut out = MonitorArgs {
        input: String::new(),
        warn_dp: 0.10,
        warn_skew: 0.50,
        warn_shift: 0.25,
        warn_reject: 0.05,
        exposition: false,
    };
    let mut cur = Cursor { args, at: 0 };
    while cur.at < cur.args.len() {
        let flag = cur.args[cur.at].clone();
        cur.at += 1;
        match flag.as_str() {
            "--input" => out.input = cur.next_value("--input")?.to_string(),
            "--warn-dp" => out.warn_dp = parse_num(cur.next_value("--warn-dp")?, "--warn-dp")?,
            "--warn-skew" => {
                out.warn_skew = parse_num(cur.next_value("--warn-skew")?, "--warn-skew")?
            }
            "--warn-shift" => {
                out.warn_shift = parse_num(cur.next_value("--warn-shift")?, "--warn-shift")?
            }
            "--warn-reject" => {
                out.warn_reject =
                    parse_num(cur.next_value("--warn-reject")?, "--warn-reject")?
            }
            "--exposition" => out.exposition = true,
            other => return Err(CliError::usage(format!("unknown flag {other}"))),
        }
    }
    if out.input.is_empty() {
        return Err(CliError::usage("monitor requires --input"));
    }
    Ok(Command::Monitor(out))
}

/// Parses an `--inject` fault schedule into `plan`: comma-separated
/// `pool:<i>` | `trial:<i>` | `cluster:<c>` | `row:<i>` | `drop:<c>/<g>`
/// | `io:<a>` items, e.g. `--inject pool:1,cluster:0,drop:2/1`.
fn parse_inject(plan: &mut FaultPlan, spec: &str) -> Result<(), CliError> {
    for item in spec.split(',').filter(|s| !s.trim().is_empty()) {
        let item = item.trim();
        let bad =
            || CliError::usage(format!("invalid --inject item {item:?}; see --help"));
        let (kind, value) = item.split_once(':').ok_or_else(bad)?;
        match kind {
            "pool" => {
                plan.fail_pool_member(value.parse().map_err(|_| bad())?);
            }
            "trial" => {
                plan.fail_tuning_trial(value.parse().map_err(|_| bad())?);
            }
            "cluster" => {
                plan.empty_cluster(value.parse().map_err(|_| bad())?);
            }
            "row" => {
                plan.poison_row(value.parse().map_err(|_| bad())?);
            }
            "drop" => {
                let (c, g) = value.split_once('/').ok_or_else(bad)?;
                plan.drop_group_in_region(
                    c.parse().map_err(|_| bad())?,
                    g.parse().map_err(|_| bad())?,
                );
            }
            "io" => {
                plan.fail_io_attempt(value.parse().map_err(|_| bad())?);
            }
            _ => return Err(bad()),
        }
    }
    Ok(())
}

fn parse_predict(args: &[String]) -> Result<Command, CliError> {
    let mut model = None;
    let mut data = None;
    let mut out = None;
    let mut threads = 0;
    let mut no_compile = false;
    let mut no_artifact = false;
    let mut cur = Cursor { args, at: 0 };
    while cur.at < cur.args.len() {
        let flag = cur.args[cur.at].clone();
        cur.at += 1;
        match flag.as_str() {
            "--model" => model = Some(cur.next_value("--model")?.to_string()),
            "--data" => data = Some(cur.next_value("--data")?.to_string()),
            "--out" => out = Some(cur.next_value("--out")?.to_string()),
            "--threads" => threads = parse_num(cur.next_value("--threads")?, "--threads")?,
            "--no-compile" => no_compile = true,
            "--no-artifact" => no_artifact = true,
            other => return Err(CliError::usage(format!("unknown flag {other}"))),
        }
    }
    Ok(Command::Predict(PredictArgs {
        model: model.ok_or_else(|| CliError::usage("predict requires --model"))?,
        data: data.ok_or_else(|| CliError::usage("predict requires --data"))?,
        out,
        threads,
        no_compile,
        no_artifact,
    }))
}

fn parse_model_data(args: &[String]) -> Result<ModelDataArgs, CliError> {
    let mut model = None;
    let mut data = None;
    let mut cur = Cursor { args, at: 0 };
    while cur.at < cur.args.len() {
        let flag = cur.args[cur.at].clone();
        cur.at += 1;
        match flag.as_str() {
            "--model" => model = Some(cur.next_value("--model")?.to_string()),
            "--data" => data = Some(cur.next_value("--data")?.to_string()),
            other => return Err(CliError::usage(format!("unknown flag {other}"))),
        }
    }
    Ok(ModelDataArgs {
        model: model.ok_or_else(|| CliError::usage("this command requires --model"))?,
        data: data.ok_or_else(|| CliError::usage("this command requires --data"))?,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v(args: &[&str]) -> Vec<String> {
        args.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn empty_and_help() {
        assert_eq!(parse(&v(&[])).unwrap(), Command::Help);
        assert_eq!(parse(&v(&["--help"])).unwrap(), Command::Help);
        assert_eq!(parse(&v(&["help"])).unwrap(), Command::Help);
    }

    #[test]
    fn train_full_flags() {
        let cmd = parse(&v(&[
            "train", "--data", "d.csv", "--sensitive", "sex", "--sensitive", "race",
            "--out", "m.json", "--metric", "eq_od", "--lambda", "0.7",
            "--proxy", "reweigh", "--clusters", "8", "--val-split", "0.3",
            "--seed", "9", "--tune",
        ]))
        .unwrap();
        let Command::Train(t) = cmd else { panic!("expected train") };
        assert_eq!(t.sensitive, vec!["sex", "race"]);
        assert_eq!(t.metric, FairnessMetric::EqualizedOdds);
        assert_eq!(t.lambda, 0.7);
        assert_eq!(t.proxy, ProxyStrategy::Reweigh);
        assert_eq!(t.clusters, ClusterSpec::FixedK(8));
        assert_eq!(t.val_split, 0.3);
        assert_eq!(t.seed, 9);
        assert!(t.tune);
    }

    #[test]
    fn train_defaults() {
        let cmd = parse(&v(&[
            "train", "--data", "d.csv", "--sensitive", "sex", "--out", "m.json",
        ]))
        .unwrap();
        let Command::Train(t) = cmd else { panic!() };
        assert_eq!(t.metric, FairnessMetric::DemographicParity);
        assert_eq!(t.clusters, ClusterSpec::LogMeans);
        assert!(!t.tune);
    }

    #[test]
    fn missing_required_flags_are_usage_errors() {
        for bad in [
            vec!["train", "--sensitive", "s", "--out", "m"],
            vec!["train", "--data", "d", "--out", "m"],
            vec!["train", "--data", "d", "--sensitive", "s"],
            vec!["predict", "--data", "d"],
            vec!["audit", "--model", "m"],
            vec!["info"],
        ] {
            let err = parse(&v(&bad)).unwrap_err();
            assert_eq!(err.exit_code, 2, "{bad:?}");
        }
    }

    #[test]
    fn invalid_values_are_rejected() {
        let err = parse(&v(&[
            "train", "--data", "d", "--sensitive", "s", "--out", "m",
            "--lambda", "1.5",
        ]))
        .unwrap_err();
        assert!(err.message.contains("lambda"));
        let err = parse(&v(&[
            "train", "--data", "d", "--sensitive", "s", "--out", "m",
            "--metric", "nope",
        ]))
        .unwrap_err();
        assert!(err.message.contains("metric"));
        let err = parse(&v(&["frobnicate"])).unwrap_err();
        assert!(err.message.contains("subcommand"));
    }

    #[test]
    fn predict_and_audit_parse() {
        let cmd =
            parse(&v(&["predict", "--model", "m.json", "--data", "d.csv"])).unwrap();
        assert_eq!(
            cmd,
            Command::Predict(PredictArgs {
                model: "m.json".into(),
                data: "d.csv".into(),
                out: None,
                threads: 0,
                no_compile: false,
                no_artifact: false,
            })
        );
        let cmd = parse(&v(&[
            "predict", "--model", "m.json", "--data", "d.csv", "--no-compile",
            "--no-artifact",
        ]))
        .unwrap();
        let Command::Predict(p) = cmd else { panic!("expected predict") };
        assert!(p.no_compile && p.no_artifact);
        let cmd = parse(&v(&["audit", "--model", "m", "--data", "d"])).unwrap();
        assert!(matches!(cmd, Command::Audit(_)));
        let cmd = parse(&v(&["info", "--model", "m"])).unwrap();
        assert!(matches!(cmd, Command::Info { .. }));
    }

    #[test]
    fn run_defaults_and_flags() {
        let cmd = parse(&v(&["run"])).unwrap();
        assert_eq!(
            cmd,
            Command::Run(RunArgs {
                seed: 11,
                scale: 0.10,
                threads: 0,
                faults: FaultPlan::default(),
                no_compile: false,
                monitor_out: None,
            })
        );
        let cmd = parse(&v(&[
            "run", "--seed", "3", "--scale", "0.25", "--threads", "2", "--no-compile",
        ]))
        .unwrap();
        assert_eq!(
            cmd,
            Command::Run(RunArgs {
                seed: 3,
                scale: 0.25,
                threads: 2,
                faults: FaultPlan::default(),
                no_compile: true,
                monitor_out: None,
            })
        );
        assert_eq!(parse(&v(&["run", "--scale", "0"])).unwrap_err().exit_code, 2);
        assert_eq!(parse(&v(&["run", "--scale", "1.5"])).unwrap_err().exit_code, 2);
    }

    #[test]
    fn monitor_flags_parse() {
        let cmd = parse(&v(&["run", "--monitor-out", "m.jsonl"])).unwrap();
        match cmd {
            Command::Run(args) => assert_eq!(args.monitor_out.as_deref(), Some("m.jsonl")),
            other => panic!("unexpected command {other:?}"),
        }
        let cmd = parse(&v(&["monitor", "--input", "m.jsonl"])).unwrap();
        assert_eq!(
            cmd,
            Command::Monitor(MonitorArgs {
                input: "m.jsonl".into(),
                warn_dp: 0.10,
                warn_skew: 0.50,
                warn_shift: 0.25,
                warn_reject: 0.05,
                exposition: false,
            })
        );
        let cmd = parse(&v(&[
            "monitor",
            "--input",
            "m.jsonl",
            "--warn-dp",
            "0.2",
            "--warn-skew",
            "1.0",
            "--warn-shift",
            "0.4",
            "--warn-reject",
            "0.01",
            "--exposition",
        ]))
        .unwrap();
        assert_eq!(
            cmd,
            Command::Monitor(MonitorArgs {
                input: "m.jsonl".into(),
                warn_dp: 0.2,
                warn_skew: 1.0,
                warn_shift: 0.4,
                warn_reject: 0.01,
                exposition: true,
            })
        );
        assert_eq!(parse(&v(&["monitor"])).unwrap_err().exit_code, 2);
    }

    #[test]
    fn inject_specs_parse_into_fault_plans() {
        let cmd = parse(&v(&[
            "run", "--inject", "pool:1,cluster:0,drop:2/1,row:3,trial:4,io:6",
        ]))
        .unwrap();
        let Command::Run(r) = cmd else { panic!("expected run") };
        let mut expected = FaultPlan::default();
        expected
            .fail_pool_member(1)
            .empty_cluster(0)
            .drop_group_in_region(2, 1)
            .poison_row(3)
            .fail_tuning_trial(4)
            .fail_io_attempt(6);
        assert_eq!(r.faults, expected);

        for bad in ["pool", "pool:x", "drop:2", "drop:a/b", "gremlin:1", "io:x"] {
            let err = parse(&v(&["run", "--inject", bad])).unwrap_err();
            assert_eq!(err.exit_code, 2, "{bad}");
        }
    }

    #[test]
    fn fit_defaults_and_flags() {
        let cmd = parse(&v(&["fit", "--out", "m.json"])).unwrap();
        assert_eq!(
            cmd,
            Command::Fit(FitArgs {
                seed: 11,
                rows: 600,
                threads: 0,
                out: "m.json".into(),
                checkpoint_dir: None,
                resume: false,
                retry_budget: 3,
                faults: FaultPlan::default(),
                emit_artifact: false,
            })
        );

        let cmd = parse(&v(&[
            "fit", "--out", "m.json", "--checkpoint-dir", "ck", "--resume",
            "--seed", "3", "--rows", "400", "--threads", "2", "--retry-budget", "5",
            "--crash-at", "7:after-record", "--inject", "io:2", "--emit-artifact",
        ]))
        .unwrap();
        let Command::Fit(f) = cmd else { panic!("expected fit") };
        assert_eq!(f.checkpoint_dir.as_deref(), Some("ck"));
        assert!(f.resume && f.emit_artifact);
        assert_eq!((f.seed, f.rows, f.threads, f.retry_budget), (3, 400, 2, 5));
        let mut expected = FaultPlan::default();
        expected.crash_at(7, CrashPhase::AfterRecord).fail_io_attempt(2);
        assert_eq!(f.faults, expected);
    }

    #[test]
    fn fit_usage_errors() {
        for bad in [
            vec!["fit"],
            // --resume / --crash-at without a journal directory
            vec!["fit", "--out", "m", "--resume"],
            vec!["fit", "--out", "m", "--crash-at", "1:after-record"],
            vec!["fit", "--out", "m", "--rows", "10"],
            // malformed crash points
            vec!["fit", "--out", "m", "--checkpoint-dir", "ck", "--crash-at", "1"],
            vec!["fit", "--out", "m", "--checkpoint-dir", "ck", "--crash-at", "x:after-record"],
            vec!["fit", "--out", "m", "--checkpoint-dir", "ck", "--crash-at", "1:nope"],
        ] {
            let err = parse(&v(&bad)).unwrap_err();
            assert_eq!(err.exit_code, 2, "{bad:?}");
        }
    }

    #[test]
    fn telemetry_flags_extract_from_anywhere() {
        let (rest, t) = extract_telemetry(&v(&[
            "--profile", "run", "--trace-out", "t.jsonl", "--seed", "5", "--quiet",
        ]))
        .unwrap();
        assert_eq!(rest, v(&["run", "--seed", "5"]));
        assert!(t.profile && t.quiet);
        assert_eq!(t.trace_out.as_deref(), Some("t.jsonl"));
        assert!(t.recording());

        let (rest, t) = extract_telemetry(&v(&["audit", "--model", "m"])).unwrap();
        assert_eq!(rest, v(&["audit", "--model", "m"]));
        assert_eq!(t, TelemetryOpts::default());
        assert!(!t.recording());

        let err = extract_telemetry(&v(&["run", "--trace-out"])).unwrap_err();
        assert_eq!(err.exit_code, 2);
    }
}
