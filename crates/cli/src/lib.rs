//! # falcc-cli
//!
//! Command-line workflow around the `falcc` library:
//!
//! ```text
//! falcc train   --data train.csv --sensitive sex --out model.json
//! falcc predict --model model.json --data new.csv --out predictions.csv
//! falcc audit   --model model.json --data test.csv
//! falcc info    --model model.json
//! ```
//!
//! CSV format: header row, numeric cells, binary label in the **last**
//! column (see `falcc_dataset::csv`). Sensitive attributes are named by
//! header and must be `0/1`-coded; pass `--sensitive` repeatedly for
//! intersectional groups.
//!
//! The command logic lives in this library crate (returning the output as
//! a `String`) so it is unit-testable without spawning processes; the
//! `falcc` binary is a thin `main` around [`run`].

pub mod args;
pub mod commands;

pub use args::{Command, ParsedArgs};

/// Error type for CLI operations: a human-readable message plus the
/// process exit code to use.
#[derive(Debug)]
pub struct CliError {
    /// The message printed to stderr.
    pub message: String,
    /// Process exit code (2 = usage, 1 = runtime failure).
    pub exit_code: i32,
}

impl std::fmt::Display for CliError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for CliError {}

impl CliError {
    pub(crate) fn usage(message: impl Into<String>) -> Self {
        Self { message: message.into(), exit_code: 2 }
    }

    pub(crate) fn runtime(message: impl Into<String>) -> Self {
        Self { message: message.into(), exit_code: 1 }
    }
}

/// Parses and executes one CLI invocation, returning the text to print.
///
/// # Errors
/// [`CliError`] with a usage (exit 2) or runtime (exit 1) failure.
pub fn run(argv: &[String]) -> Result<String, CliError> {
    let parsed = args::parse(argv)?;
    commands::execute(parsed)
}

/// Usage text shown by `--help` and on argument errors.
pub const USAGE: &str = "\
falcc — locally fair and accurate classification (FALCC, EDBT 2024)

USAGE:
  falcc train   --data <csv> --sensitive <col> [--sensitive <col>…] --out <model.json>
                [--metric dp|eq_od|eq_op|tr_eq] [--lambda <0..1>]
                [--proxy none|reweigh|remove] [--clusters auto|elbow|<k>]
                [--val-split <0..1>] [--seed <u64>] [--tune] [--threads <n>]
  falcc predict --model <model.json> --data <csv> [--out <csv>] [--threads <n>]
  falcc audit   --model <model.json> --data <csv>
  falcc info    --model <model.json>

CSV format: header row, numeric cells, binary label in the last column.
Sensitive columns must be 0/1-coded.

--threads 0 (the default) uses every available core. The thread count is
a throughput knob only: trained models and predictions are bit-identical
for every value.
";
