//! # falcc-cli
//!
//! Command-line workflow around the `falcc` library:
//!
//! ```text
//! falcc train   --data train.csv --sensitive sex --out model.json
//! falcc predict --model model.json --data new.csv --out predictions.csv
//! falcc audit   --model model.json --data test.csv
//! falcc info    --model model.json
//! ```
//!
//! CSV format: header row, numeric cells, binary label in the **last**
//! column (see `falcc_dataset::csv`). Sensitive attributes are named by
//! header and must be `0/1`-coded; pass `--sensitive` repeatedly for
//! intersectional groups.
//!
//! The command logic lives in this library crate (returning the output as
//! a `String`) so it is unit-testable without spawning processes; the
//! `falcc` binary is a thin `main` around [`run`].

pub mod args;
pub mod commands;

pub use args::{Command, ParsedArgs};

/// Error type for CLI operations: a human-readable message plus the
/// process exit code to use.
#[derive(Debug)]
pub struct CliError {
    /// The message printed to stderr.
    pub message: String,
    /// Process exit code (2 = usage, 1 = runtime failure).
    pub exit_code: i32,
}

impl std::fmt::Display for CliError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for CliError {}

impl CliError {
    pub(crate) fn usage(message: impl Into<String>) -> Self {
        Self { message: message.into(), exit_code: 2 }
    }

    pub(crate) fn runtime(message: impl Into<String>) -> Self {
        Self { message: message.into(), exit_code: 1 }
    }
}

/// Parses and executes one CLI invocation, returning the text to print.
///
/// The global `--profile`, `--trace-out <path>`, and `--quiet` flags are
/// accepted anywhere on the command line and handled here: they activate
/// telemetry before the command runs, and afterwards append the phase-tree
/// report (`--profile`) and/or write the JSON-lines trace (`--trace-out`).
///
/// # Errors
/// [`CliError`] with a usage (exit 2) or runtime (exit 1) failure.
pub fn run(argv: &[String]) -> Result<String, CliError> {
    let (argv, telemetry) = args::extract_telemetry(argv)?;
    falcc_telemetry::set_quiet(telemetry.quiet);
    if telemetry.recording() {
        falcc_telemetry::enable();
        falcc_telemetry::reset();
    }
    let parsed = args::parse(&argv)?;
    let mut output = commands::execute(parsed)?;
    if telemetry.recording() {
        let snap = falcc_telemetry::snapshot();
        if let Some(path) = &telemetry.trace_out {
            snap.write_jsonl(std::path::Path::new(path)).map_err(|e| {
                CliError::runtime(format!("cannot write trace to {path}: {e}"))
            })?;
        }
        if telemetry.profile {
            output.push_str("\n-- profile --\n");
            output.push_str(&snap.render_tree());
        }
    }
    Ok(output)
}

/// Usage text shown by `--help` and on argument errors.
pub const USAGE: &str = "\
falcc — locally fair and accurate classification (FALCC, EDBT 2024)

USAGE:
  falcc train   --data <csv> --sensitive <col> [--sensitive <col>…] --out <model.json>
                [--metric dp|eq_od|eq_op|tr_eq] [--lambda <0..1>]
                [--proxy none|reweigh|remove] [--clusters auto|elbow|<k>]
                [--val-split <0..1>] [--seed <u64>] [--tune] [--threads <n>]
  falcc predict --model <model.json> --data <csv> [--out <csv>] [--threads <n>]
                [--no-compile] [--no-artifact]
  falcc audit   --model <model.json> --data <csv>
  falcc info    --model <model.json>
  falcc run     [--seed <u64>] [--scale <0..1>] [--threads <n>]
                [--inject <spec>] [--no-compile] [--monitor-out <jsonl>]
  falcc fit     --out <model.json> [--checkpoint-dir <dir>] [--resume]
                [--emit-artifact] [--seed <u64>] [--rows <n>] [--threads <n>]
                [--retry-budget <n>] [--crash-at <ordinal>:<phase>]
                [--inject <spec>]
  falcc monitor --input <jsonl> [--warn-dp <gap>] [--warn-skew <score>]
                [--warn-shift <tv>] [--warn-reject <rate>] [--exposition]

GLOBAL FLAGS (any subcommand):
  --profile            print a per-phase span tree and metrics afterwards
  --trace-out <path>   write the full trace as JSON lines
  --quiet              suppress progress output on stderr

`falcc run` fits and classifies a synthetic benchmark dataset end to end —
no input files needed; combine with --profile / --trace-out to inspect the
pipeline, e.g. `falcc run --profile --trace-out trace.jsonl`.

--inject arms the deterministic fault harness for the demo run: a comma-
separated list of pool:<i> (quarantine pool member i), trial:<i> (fail
tuning trial i), cluster:<c> (empty region c), drop:<c>/<g> (remove group
g from region c), row:<i> (poison online batch row i), io:<a> (fail
checkpoint-journal I/O attempt a, absorbed by the bounded retry layer) —
e.g. `falcc run --inject pool:1,cluster:0 --profile` shows graceful
degradation plus its counters.

`falcc fit` is the crash-recovery workbench: it fits the offline phase on
synthetic data and, with --checkpoint-dir, journals phase-granular
checkpoints (atomic records + a chained, fingerprinted manifest). After a
crash — or a hard kill injected via --crash-at <ordinal>:<phase>, phase
one of before-write|after-record|mid-manifest|after-commit — re-running
with --resume picks up after the last valid checkpoint and writes a model
snapshot byte-identical to an uninterrupted run, at any --threads value.

CSV format: header row, numeric cells, binary label in the last column.
Sensitive columns must be 0/1-coded.

--threads 0 (the default) uses every available core. The thread count is
a throughput knob only: trained models and predictions are bit-identical
for every value.

predict and run classify through the compiled serving plane (flattened
inference artifacts with region-batched dispatch) by default;
--no-compile falls back to the interpreted online phase. The two planes
produce bit-identical predictions — the flag only trades compile time
against per-row throughput.

`fit --emit-artifact` additionally compiles the snapshot and writes the
serving plane as a binary artifact next to the JSON (same path, .falccb
extension). predict prefers a sibling .falccb when its recorded
fingerprint matches the JSON snapshot on disk, skipping parse, restore
and compile for a millisecond cold start; a stale, corrupt or truncated
artifact is rejected with a typed error and predict silently falls back
to the JSON path (counted in serve.artifact_fallbacks). Predictions are
bit-identical either way. --no-artifact forces the JSON path.

--monitor-out installs the live serving monitors around the run's
classification pass and writes the windowed fairness/drift stream as
JSON lines (predictions and stdout are identical with monitors on or
off). `falcc monitor` renders such a stream as a per-window, per-region
report — live demographic-parity gap, occupancy skew and group-mix
shift against the model's offline baseline, distance-to-centroid drift
quantiles — emitting WARN lines where the --warn-* thresholds are
exceeded, or Prometheus-style text exposition with --exposition.
";
