//! Implementation of the CLI subcommands. Each returns its stdout text so
//! the whole flow is unit-testable in-process.

use crate::args::{
    Command, FitArgs, ModelDataArgs, MonitorArgs, PredictArgs, RunArgs, TrainArgs,
};
use crate::{CliError, USAGE};
use falcc::{
    auto_tune, sibling_artifact_path, CheckpointSpec, CompiledModel, CompiledModelBuf,
    FairClassifier, FalccConfig, FalccModel, SavedFalccModel,
};
use falcc_dataset::{csv, Dataset, SplitRatios, ThreeWaySplit};
use falcc_metrics::individual::consistency;
use falcc_metrics::{accuracy, FairnessMetric, LossConfig};
use std::fmt::Write as _;

/// Executes one parsed command.
///
/// # Errors
/// [`CliError`] with exit code 1 on runtime failures.
pub fn execute(command: Command) -> Result<String, CliError> {
    match command {
        Command::Help => Ok(USAGE.to_string()),
        Command::Train(args) => train(args),
        Command::Predict(args) => predict(args),
        Command::Audit(args) => audit(args),
        Command::Info { model } => info(&model),
        Command::Run(args) => run_demo(args),
        Command::Fit(args) => fit(args),
        Command::Monitor(args) => monitor_report(&args),
    }
}

/// `falcc run`: the full pipeline on a synthetic benchmark dataset — no
/// input files needed. Exists mainly as a profiling target: with
/// `--profile`/`--trace-out` it exercises every instrumented phase of the
/// offline and online stack in one invocation.
fn run_demo(args: RunArgs) -> Result<String, CliError> {
    use falcc_dataset::synthetic::{generate, SyntheticConfig};

    let mut dcfg = SyntheticConfig::social(0.30);
    dcfg.n = ((dcfg.n as f64 * args.scale) as usize).max(600);
    falcc_telemetry::progress(format!(
        "generating synthetic social dataset: {} rows, seed {}",
        dcfg.n, args.seed
    ));
    let data = generate(&dcfg, args.seed)
        .map_err(|e| CliError::runtime(format!("generating data: {e}")))?;
    let split = ThreeWaySplit::split(&data, SplitRatios::PAPER, args.seed)
        .map_err(|e| CliError::runtime(format!("splitting data: {e}")))?;

    let injecting = !args.faults.is_empty();
    let config = FalccConfig {
        proxy: falcc::ProxyStrategy::PAPER_REMOVE,
        seed: args.seed,
        threads: args.threads,
        faults: args.faults,
        ..FalccConfig::default()
    };
    falcc_telemetry::progress(if injecting {
        "fitting FALCC (offline phase, with injected faults)"
    } else {
        "fitting FALCC (offline phase)"
    });
    let model = FalccModel::fit(&split.train, &split.validation, &config)
        .map_err(|e| CliError::runtime(format!("fitting FALCC: {e}")))?;
    // Live monitors observe the classification pass without perturbing
    // it: they write to stderr and the stream file only, so stdout is
    // byte-identical with monitors on or off.
    let monitor = args.monitor_out.as_ref().map(|path| {
        falcc_telemetry::progress(format!(
            "live monitors armed: ring of {} windows × {} rows",
            falcc::baseline::DEFAULT_WINDOWS,
            falcc::baseline::DEFAULT_WINDOW_LEN,
        ));
        let spec = model.monitor_spec(
            falcc::baseline::DEFAULT_WINDOW_LEN,
            falcc::baseline::DEFAULT_WINDOWS,
        );
        (path.clone(), falcc_telemetry::monitor::install(spec))
    });
    // The compiled serving plane is the default; --no-compile falls back
    // to the interpreted online phase (bit-identical either way).
    let preds = if args.no_compile {
        falcc_telemetry::progress("classifying test split (interpreted online phase)");
        model.predict_dataset(&split.test)
    } else {
        falcc_telemetry::progress("classifying test split (compiled serving plane)");
        model.compile().predict_dataset(&split.test)
    };
    if let Some((path, state)) = monitor {
        falcc_telemetry::monitor::uninstall();
        state
            .snapshot()
            .write_jsonl(std::path::Path::new(&path))
            .map_err(|e| CliError::runtime(format!("writing monitor stream {path}: {e}")))?;
        falcc_telemetry::progress(format!("monitor stream written to {path}"));
    }

    let y = split.test.labels();
    let g = split.test.groups();
    let n_groups = split.test.group_index().len();
    let mut out = String::new();
    let _ = writeln!(
        out,
        "fitted on {} train / {} validation rows: pool of {} models, {} local regions",
        split.train.len(),
        split.validation.len(),
        model.pool().len(),
        model.n_regions()
    );
    let _ = writeln!(
        out,
        "test ({} rows): accuracy {:.2}%, demographic parity bias {:.2}%",
        split.test.len(),
        accuracy(y, &preds) * 100.0,
        FairnessMetric::DemographicParity.bias(y, &preds, g, n_groups) * 100.0
    );
    if injecting {
        // Degradation counters record only while telemetry is on; without
        // it, still confirm the run was degraded-by-design.
        if falcc_telemetry::enabled() {
            let _ = writeln!(
                out,
                "injected faults: {} fired, {} pool member(s) quarantined, \
                 {} degenerate region(s), {} region fallback(s)",
                falcc_telemetry::counters::FAULTS_INJECTED.get(),
                falcc_telemetry::counters::POOL_MEMBERS_QUARANTINED.get(),
                falcc_telemetry::counters::DEGENERATE_CLUSTERS.get(),
                falcc_telemetry::counters::REGION_GROUP_FALLBACKS.get()
                    + falcc_telemetry::counters::REGION_GLOBAL_FALLBACKS.get(),
            );
        } else {
            let _ = writeln!(
                out,
                "injected faults were active (add --profile for degradation counters)"
            );
        }
    }
    Ok(out)
}

/// `falcc fit`: the checkpointed offline phase on a synthetic benchmark
/// dataset. With `--checkpoint-dir` the fit journals phase-granular
/// checkpoints; `--resume` picks up after the last valid one and must
/// write a model snapshot byte-identical to an uninterrupted run. The
/// chaos harness drives this subcommand, hard-killing it at `--crash-at`
/// and asserting exactly that equality.
fn fit(args: FitArgs) -> Result<String, CliError> {
    use falcc_dataset::synthetic::{generate, SyntheticConfig};

    let mut dcfg = SyntheticConfig::social(0.30);
    dcfg.n = args.rows;
    let data = generate(&dcfg, args.seed)
        .map_err(|e| CliError::runtime(format!("generating data: {e}")))?;
    let split = ThreeWaySplit::split(&data, SplitRatios::PAPER, args.seed)
        .map_err(|e| CliError::runtime(format!("splitting data: {e}")))?;

    let mut config = FalccConfig {
        proxy: falcc::ProxyStrategy::PAPER_REMOVE,
        seed: args.seed,
        threads: args.threads,
        faults: args.faults,
        ..FalccConfig::default()
    };
    // The small fixed profile (4 regions, 3-model pool) keeps the journal's
    // commit count predictable — the kill-point catalog the chaos harness
    // sweeps is derived from it — and keeps the sweep fast.
    config.scale_for_tests();
    if let Some(dir) = &args.checkpoint_dir {
        let mut spec = CheckpointSpec::new(dir);
        spec.resume = args.resume;
        spec.retry_budget = args.retry_budget;
        config.checkpoint = Some(spec);
    }

    falcc_telemetry::progress(match (&args.checkpoint_dir, args.resume) {
        (None, _) => "fitting FALCC (offline phase, no journal)",
        (Some(_), false) => "fitting FALCC (offline phase, fresh checkpoint journal)",
        (Some(_), true) => "fitting FALCC (offline phase, resuming from journal)",
    });
    let model = FalccModel::fit(&split.train, &split.validation, &config)
        .map_err(|e| CliError::runtime(format!("fitting FALCC: {e}")))?;
    SavedFalccModel::capture(&model)
        .and_then(|saved| saved.save_file(&args.out))
        .map_err(|e| CliError::runtime(format!("saving model: {e}")))?;
    let artifact_path = args.emit_artifact
        .then(|| emit_artifact(&args.out))
        .transpose()?;

    let mut out = String::new();
    let _ = writeln!(
        out,
        "fitted on {} train / {} validation rows: pool of {} models, {} local regions",
        split.train.len(),
        split.validation.len(),
        model.pool().len(),
        model.n_regions()
    );
    if args.checkpoint_dir.is_some() && falcc_telemetry::enabled() {
        let _ = writeln!(
            out,
            "checkpoints: {} written, {} resumed, {} discarded; {} transient retries",
            falcc_telemetry::counters::CHECKPOINTS_WRITTEN.get(),
            falcc_telemetry::counters::CHECKPOINTS_RESUMED.get(),
            falcc_telemetry::counters::CHECKPOINTS_DISCARDED.get(),
            falcc_telemetry::counters::OFFLINE_RETRIES.get(),
        );
    }
    let _ = writeln!(out, "model written to {}", args.out);
    if let Some(path) = artifact_path {
        let _ = writeln!(out, "artifact written to {path}");
    }
    Ok(out)
}

/// Compiles the JSON snapshot at `json_path` into a sibling `.falccb`
/// binary artifact fingerprinted against the snapshot's on-disk bytes.
/// Going back through the file (rather than the in-memory model) makes
/// the artifact bit-identical to what any later JSON restore+compile
/// would produce.
fn emit_artifact(json_path: &str) -> Result<String, CliError> {
    let bytes = std::fs::read(json_path)
        .map_err(|e| CliError::runtime(format!("reading back {json_path}: {e}")))?;
    let fingerprint = falcc::io::fnv1a64(&bytes);
    let compiled = SavedFalccModel::load_file(json_path)
        .map_err(|e| CliError::runtime(format!("reading back {json_path}: {e}")))?
        .restore()
        .compile();
    let path = sibling_artifact_path(std::path::Path::new(json_path));
    compiled
        .save_artifact(&path, fingerprint)
        .map_err(|e| CliError::runtime(format!("writing artifact: {e}")))?;
    Ok(path.display().to_string())
}

/// `falcc monitor`: renders a windowed monitor stream (JSONL written by
/// `falcc run --monitor-out`) as a per-window, per-region drift and
/// fairness report with threshold WARN lines, or as Prometheus-style
/// text exposition with `--exposition`.
fn monitor_report(args: &MonitorArgs) -> Result<String, CliError> {
    let text = std::fs::read_to_string(&args.input)
        .map_err(|e| CliError::runtime(format!("reading {}: {e}", args.input)))?;
    // An empty stream (monitors armed but the process never observed a
    // row, or an empty --monitor-out file) is a report of its own, not a
    // parse error — and exposition must stay machine-parseable (no rows =
    // no samples).
    if text.lines().all(|l| l.trim().is_empty()) {
        return Ok(if args.exposition {
            String::new()
        } else {
            "monitor stream: empty (no baseline or windows recorded)\n".to_string()
        });
    }
    let snap = parse_monitor_stream(&text)
        .map_err(|e| CliError::runtime(format!("parsing {}: {e}", args.input)))?;
    if args.exposition {
        return Ok(snap.render_exposition());
    }
    // Percentage cell that renders `-` for values no rows back up
    // (zero-row windows/regions) or that are not finite.
    let pct = |x: f64| {
        if x.is_finite() { format!("{:.2}%", x * 100.0) } else { "-".to_string() }
    };

    let spec = &snap.spec;
    let mut out = String::new();
    let _ = writeln!(
        out,
        "monitor stream: {} row(s) observed, {} retained window(s) of {} rows \
         ({} regions × {} groups)",
        snap.rows_seen,
        snap.windows.len(),
        spec.window_len,
        spec.n_regions,
        spec.n_groups
    );
    let mut warns = 0usize;
    for w in &snap.windows {
        let start = w.id * spec.window_len;
        let rows_in_window: u64 =
            (0..spec.n_regions).map(|r| w.region_rows(spec.n_groups, r)).sum();
        let skew = w.occupancy_skew(spec);
        // A window with no classified rows has no occupancy to skew —
        // render `-` rather than a misleading 0.0000 (or a NaN from a
        // degenerate baseline).
        let skew_cell = if rows_in_window == 0 || !skew.is_finite() {
            "-".to_string()
        } else {
            format!("{skew:.4}")
        };
        let _ = writeln!(
            out,
            "\nwindow {} [rows {}..{}): observed {}, rejected {}, occupancy skew {}",
            w.id,
            start,
            start + spec.window_len,
            w.observed,
            w.rejected,
            skew_cell
        );
        let _ = writeln!(
            out,
            "  {:<8} {:>6} {:>8} {:>8} {:>7} {:>9} {:>9}",
            "region", "rows", "dp gap", "base dp", "shift", "dist p50", "dist p90"
        );
        let reject_rate =
            if w.observed > 0 { w.rejected as f64 / w.observed as f64 } else { 0.0 };
        if reject_rate > args.warn_reject {
            let _ = writeln!(
                out,
                "  WARN window {}: rejection rate {:.2}% exceeds {:.2}%",
                w.id,
                reject_rate * 100.0,
                args.warn_reject * 100.0
            );
            warns += 1;
        }
        if rows_in_window > 0 && skew.is_finite() && skew > args.warn_skew {
            let _ = writeln!(
                out,
                "  WARN window {}: occupancy skew {:.4} exceeds {:.4} — serving \
                 traffic has drifted from the validation region mix",
                w.id, skew, args.warn_skew
            );
            warns += 1;
        }
        if rows_in_window == 0 {
            let _ = writeln!(out, "  (no rows observed in this window)");
        }
        for r in 0..spec.n_regions {
            if w.region_rows(spec.n_groups, r) == 0 {
                continue;
            }
            let dp = w.dp_gap(spec.n_groups, r);
            let shift = w.group_shift(spec, r);
            let quantile = |q: f64| {
                w.dist_quantile(r, q).map_or_else(|| "-".to_string(), |b| b.to_string())
            };
            let _ = writeln!(
                out,
                "  C{:<7} {:>6} {:>8} {:>8} {:>7} {:>9} {:>9}",
                r + 1,
                w.region_rows(spec.n_groups, r),
                pct(dp),
                pct(spec.baseline_dp[r]),
                pct(shift),
                quantile(0.5),
                quantile(0.9)
            );
            if dp.is_finite() && dp > args.warn_dp {
                let _ = writeln!(
                    out,
                    "  WARN window {} region C{}: live demographic-parity gap {:.2}% \
                     exceeds {:.2}% (offline baseline {:.2}%)",
                    w.id,
                    r + 1,
                    dp * 100.0,
                    args.warn_dp * 100.0,
                    spec.baseline_dp[r] * 100.0
                );
                warns += 1;
            }
            if shift.is_finite() && shift > args.warn_shift {
                let _ = writeln!(
                    out,
                    "  WARN window {} region C{}: group-mix shift {:.2}% exceeds {:.2}%",
                    w.id,
                    r + 1,
                    shift * 100.0,
                    args.warn_shift * 100.0
                );
                warns += 1;
            }
        }
    }
    let _ = writeln!(out);
    if warns == 0 {
        let _ = writeln!(out, "all windows within thresholds");
    } else {
        let _ = writeln!(out, "{warns} warning(s)");
    }
    Ok(out)
}

/// Reconstructs a [`falcc_telemetry::MonitorSnapshot`] from its
/// deterministic JSONL serialisation (wall-clock latency is never in the
/// stream, so those fields come back as zero).
fn parse_monitor_stream(text: &str) -> Result<falcc_telemetry::MonitorSnapshot, String> {
    use falcc_telemetry::metrics::HISTOGRAM_BUCKETS;
    use falcc_telemetry::monitor::WindowSnapshot;

    let mut spec: Option<falcc_telemetry::MonitorSpec> = None;
    let mut rows_seen = 0u64;
    let mut windows: Vec<WindowSnapshot> = Vec::new();
    for (at, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        let lineno = at + 1;
        let v = serde_json::parse_value(line)
            .map_err(|e| format!("line {lineno}: {e}"))?;
        let kind = match v.get("type") {
            Some(serde_json::Value::Str(s)) => s.clone(),
            _ => return Err(format!("line {lineno}: missing \"type\"")),
        };
        match kind.as_str() {
            "monitor_baseline" => {
                rows_seen = get_u64(&v, "rows_seen").map_err(|e| format!("line {lineno}: {e}"))?;
                spec = Some(falcc_telemetry::MonitorSpec {
                    window_len: get_u64(&v, "window_len")
                        .map_err(|e| format!("line {lineno}: {e}"))?,
                    windows: get_u64(&v, "windows")
                        .map_err(|e| format!("line {lineno}: {e}"))?
                        as usize,
                    n_regions: get_u64(&v, "n_regions")
                        .map_err(|e| format!("line {lineno}: {e}"))?
                        as usize,
                    n_groups: get_u64(&v, "n_groups")
                        .map_err(|e| format!("line {lineno}: {e}"))?
                        as usize,
                    baseline_occupancy: get_f64s(&v, "occupancy")
                        .map_err(|e| format!("line {lineno}: {e}"))?,
                    baseline_group_mix: get_f64s(&v, "group_mix")
                        .map_err(|e| format!("line {lineno}: {e}"))?,
                    baseline_dp: get_f64s(&v, "dp")
                        .map_err(|e| format!("line {lineno}: {e}"))?,
                });
            }
            "monitor_window" => {
                let spec = spec
                    .as_ref()
                    .ok_or_else(|| format!("line {lineno}: window before baseline"))?;
                windows.push(WindowSnapshot {
                    id: get_u64(&v, "window").map_err(|e| format!("line {lineno}: {e}"))?,
                    observed: get_u64(&v, "observed")
                        .map_err(|e| format!("line {lineno}: {e}"))?,
                    rejected: get_u64(&v, "rejected")
                        .map_err(|e| format!("line {lineno}: {e}"))?,
                    rows: vec![0; spec.n_regions * spec.n_groups],
                    positives: vec![0; spec.n_regions * spec.n_groups],
                    dist: vec![0; spec.n_regions * HISTOGRAM_BUCKETS],
                    latency_ns: 0,
                    latency_rows: 0,
                });
            }
            "monitor_region" => {
                let spec = spec
                    .as_ref()
                    .ok_or_else(|| format!("line {lineno}: region before baseline"))?;
                let w = windows
                    .last_mut()
                    .ok_or_else(|| format!("line {lineno}: region before window"))?;
                let r = get_u64(&v, "region").map_err(|e| format!("line {lineno}: {e}"))?
                    as usize;
                if r >= spec.n_regions {
                    return Err(format!("line {lineno}: region {r} out of range"));
                }
                let rows = get_u64s(&v, "rows").map_err(|e| format!("line {lineno}: {e}"))?;
                let positives =
                    get_u64s(&v, "positives").map_err(|e| format!("line {lineno}: {e}"))?;
                let dist =
                    get_u64s(&v, "dist_buckets").map_err(|e| format!("line {lineno}: {e}"))?;
                if rows.len() != spec.n_groups
                    || positives.len() != spec.n_groups
                    || dist.len() != HISTOGRAM_BUCKETS
                {
                    return Err(format!("line {lineno}: array length mismatch"));
                }
                let g0 = r * spec.n_groups;
                w.rows[g0..g0 + spec.n_groups].copy_from_slice(&rows);
                w.positives[g0..g0 + spec.n_groups].copy_from_slice(&positives);
                let d0 = r * HISTOGRAM_BUCKETS;
                w.dist[d0..d0 + HISTOGRAM_BUCKETS].copy_from_slice(&dist);
            }
            other => return Err(format!("line {lineno}: unknown type {other:?}")),
        }
    }
    let spec = spec.ok_or("missing monitor_baseline line")?;
    Ok(falcc_telemetry::MonitorSnapshot { spec, rows_seen, windows })
}

fn get_u64(v: &serde_json::Value, key: &str) -> Result<u64, String> {
    match v.get(key) {
        Some(serde_json::Value::U64(n)) => Ok(*n),
        Some(serde_json::Value::I64(n)) if *n >= 0 => Ok(*n as u64),
        Some(other) => Err(format!("field {key:?}: expected unsigned integer, got {other:?}")),
        None => Err(format!("missing field {key:?}")),
    }
}

fn num_f64(v: &serde_json::Value) -> Option<f64> {
    match v {
        serde_json::Value::F64(x) => Some(*x),
        serde_json::Value::I64(n) => Some(*n as f64),
        serde_json::Value::U64(n) => Some(*n as f64),
        _ => None,
    }
}

fn get_f64s(v: &serde_json::Value, key: &str) -> Result<Vec<f64>, String> {
    match v.get(key) {
        Some(serde_json::Value::Array(items)) => items
            .iter()
            .map(|item| {
                num_f64(item).ok_or_else(|| format!("field {key:?}: non-numeric element"))
            })
            .collect(),
        _ => Err(format!("field {key:?}: expected array")),
    }
}

fn get_u64s(v: &serde_json::Value, key: &str) -> Result<Vec<u64>, String> {
    match v.get(key) {
        Some(serde_json::Value::Array(items)) => items
            .iter()
            .map(|item| match item {
                serde_json::Value::U64(n) => Ok(*n),
                serde_json::Value::I64(n) if *n >= 0 => Ok(*n as u64),
                other => Err(format!("field {key:?}: expected unsigned element, got {other:?}")),
            })
            .collect(),
        _ => Err(format!("field {key:?}: expected array")),
    }
}

fn load_dataset(path: &str, sensitive: &[(&str, Vec<f64>)]) -> Result<Dataset, CliError> {
    csv::read_csv_file(path, sensitive)
        .map_err(|e| CliError::runtime(format!("reading {path}: {e}")))
}

fn load_model(path: &str) -> Result<FalccModel, CliError> {
    Ok(SavedFalccModel::load_file(path)
        .map_err(|e| CliError::runtime(format!("loading model {path}: {e}")))?
        .restore())
}

fn train(args: TrainArgs) -> Result<String, CliError> {
    let sensitive: Vec<(&str, Vec<f64>)> =
        args.sensitive.iter().map(|s| (s.as_str(), vec![0.0, 1.0])).collect();
    let data = load_dataset(&args.data, &sensitive)?;

    // Internal train/validation split (no test needed — the caller keeps
    // their own held-out data for `audit`).
    let ratios = SplitRatios {
        train: 1.0 - args.val_split,
        validation: args.val_split * 0.999,
        test: args.val_split * 0.001,
    };
    let split = ThreeWaySplit::split(&data, ratios, args.seed)
        .map_err(|e| CliError::runtime(format!("splitting data: {e}")))?;

    let mut config = FalccConfig {
        loss: LossConfig { lambda: args.lambda, metric: args.metric },
        proxy: args.proxy,
        clustering: args.clusters,
        seed: args.seed,
        threads: args.threads,
        ..FalccConfig::default()
    };
    config.pool.seed = args.seed;

    let mut out = String::new();
    if args.tune {
        let report = auto_tune(&split.train, &split.validation, &config)
            .map_err(|e| CliError::runtime(format!("auto-tuning: {e}")))?;
        let _ = writeln!(
            out,
            "auto-tune chose {:?} with pool size {} (best holdout local L-hat {:.4})",
            report.chosen.clustering,
            report.chosen.pool.pool_size,
            report.trials[0].holdout_local_l_hat
        );
        config = report.chosen;
    }

    let model = FalccModel::fit(&split.train, &split.validation, &config)
        .map_err(|e| CliError::runtime(format!("fitting FALCC: {e}")))?;
    SavedFalccModel::capture(&model)
        .and_then(|saved| saved.save_file(&args.out))
        .map_err(|e| CliError::runtime(format!("saving model: {e}")))?;

    let _ = writeln!(
        out,
        "trained FALCC on {} rows ({} train / {} validation): pool of {} models, {} local regions",
        data.len(),
        split.train.len(),
        split.validation.len(),
        model.pool().len(),
        model.n_regions()
    );
    let _ = writeln!(out, "model written to {}", args.out);
    Ok(out)
}

fn predict(args: PredictArgs) -> Result<String, CliError> {
    // A fresh sibling binary artifact serves the compiled plane without
    // JSON parsing or recompilation. Anything wrong with it — corrupt,
    // version skew, stale fingerprint — falls back to the JSON path with
    // the reason surfaced as progress and counted in telemetry.
    if !args.no_compile && !args.no_artifact {
        if let Some(mut compiled) = load_artifact_for(&args.model) {
            compiled.set_threads(args.threads);
            let sensitive = sensitive_decl(compiled.schema());
            let data = load_dataset(&args.data, &as_refs(&sensitive))?;
            return render_predictions(compiled.predict_dataset(&data), &args.out);
        }
    }
    let mut model = load_model(&args.model)?;
    // The batched online phase fans out over worker threads; predictions
    // are identical for every thread count.
    model.set_threads(args.threads);
    let sensitive = sensitive_decl(model.schema());
    let data = load_dataset(&args.data, &as_refs(&sensitive))?;
    // Serve through the compiled plane unless --no-compile asks for the
    // interpreted online phase; predictions are bit-identical either way.
    let preds = if args.no_compile {
        model.predict_dataset(&data)
    } else {
        model.compile().predict_dataset(&data)
    };
    render_predictions(preds, &args.out)
}

/// Tries the binary-artifact fast path for the snapshot at `model_path`:
/// a sibling `.falccb` whose recorded fingerprint matches the snapshot's
/// current on-disk bytes. Returns `None` (after counting the fallback)
/// when there is no usable artifact.
fn load_artifact_for(model_path: &str) -> Option<CompiledModel> {
    let path = sibling_artifact_path(std::path::Path::new(model_path));
    if !path.exists() {
        return None;
    }
    let fingerprint = match std::fs::read(model_path) {
        Ok(bytes) => falcc::io::fnv1a64(&bytes),
        // Unreadable snapshot: let the JSON path report the I/O error.
        Err(_) => return None,
    };
    match CompiledModelBuf::read(&path).and_then(|buf| buf.load_if_fresh(fingerprint)) {
        Ok(compiled) => {
            falcc_telemetry::progress("serving from binary artifact");
            Some(compiled)
        }
        Err(e) => {
            falcc_telemetry::counters::SERVE_ARTIFACT_FALLBACKS.incr();
            falcc_telemetry::progress(format!(
                "artifact unusable ({e}); falling back to JSON snapshot"
            ));
            None
        }
    }
}

fn render_predictions(preds: Vec<u8>, out: &Option<String>) -> Result<String, CliError> {
    let mut body = String::with_capacity(preds.len() * 2 + 16);
    body.push_str("prediction\n");
    for p in &preds {
        body.push(if *p == 1 { '1' } else { '0' });
        body.push('\n');
    }
    match out {
        Some(path) => {
            std::fs::write(path, &body)
                .map_err(|e| CliError::runtime(format!("writing {path}: {e}")))?;
            Ok(format!("wrote {} predictions to {path}\n", preds.len()))
        }
        None => Ok(body),
    }
}

fn audit(args: ModelDataArgs) -> Result<String, CliError> {
    let model = load_model(&args.model)?;
    let sensitive = sensitive_decl(model.schema());
    let data = load_dataset(&args.data, &as_refs(&sensitive))?;
    let preds = model.predict_dataset(&data);
    let y = data.labels();
    let g = data.groups();
    let n_groups = data.group_index().len();

    let mut out = String::new();
    let _ = writeln!(out, "samples: {}   regions: {}", data.len(), model.n_regions());
    let _ = writeln!(out, "accuracy: {:.2}%", accuracy(y, &preds) * 100.0);
    for metric in FairnessMetric::ALL {
        let _ = writeln!(
            out,
            "{:<22} {:.2}%",
            format!("{metric}:"),
            metric.bias(y, &preds, g, n_groups) * 100.0
        );
    }
    let attrs = data.schema().non_sensitive_attrs();
    let projected = data.project(&attrs, None);
    let _ = writeln!(
        out,
        "consistency (k=5):     {:.2}%",
        consistency(&projected, &preds, 5) * 100.0
    );

    // Per-region breakdown over the model's own regions.
    let _ = writeln!(out, "\nper-region (demographic parity):");
    let _ = writeln!(out, "{:<8} {:>6} {:>10} {:>9}", "region", "size", "accuracy", "dp bias");
    let regions: Vec<usize> =
        (0..data.len()).map(|i| model.assign_region(data.row(i))).collect();
    for r in 0..model.n_regions() {
        let idx: Vec<usize> = (0..data.len()).filter(|&i| regions[i] == r).collect();
        if idx.is_empty() {
            continue;
        }
        let yr: Vec<u8> = idx.iter().map(|&i| y[i]).collect();
        let zr: Vec<u8> = idx.iter().map(|&i| preds[i]).collect();
        let gr: Vec<_> = idx.iter().map(|&i| g[i]).collect();
        let _ = writeln!(
            out,
            "C{:<7} {:>6} {:>9.1}% {:>8.2}%",
            r + 1,
            idx.len(),
            accuracy(&yr, &zr) * 100.0,
            FairnessMetric::DemographicParity.bias(&yr, &zr, &gr, n_groups) * 100.0
        );
    }
    Ok(out)
}

fn info(model_path: &str) -> Result<String, CliError> {
    let model = load_model(model_path)?;
    let mut out = String::new();
    let _ = writeln!(out, "algorithm: {}", model.name());
    let _ = writeln!(out, "local regions: {}", model.n_regions());
    let _ = writeln!(out, "model pool ({} members):", model.pool().len());
    for (i, m) in model.pool().models.iter().enumerate() {
        let scope = match m.group {
            None => "all groups".to_string(),
            Some(g) => format!("group {g}"),
        };
        let _ = writeln!(out, "  m{i}: {} [{scope}]", m.model.name());
    }
    let proxy = model.proxy_outcome();
    let _ = writeln!(
        out,
        "clustering attributes: {} ({} removed as proxies, weights: {})",
        proxy.attrs.len(),
        proxy.removed.len(),
        if proxy.weights.is_some() { "yes" } else { "no" }
    );
    let _ = writeln!(out, "assessment: λ = {}, metric = {}", model.loss_config().lambda, model.loss_config().metric);
    for c in 0..model.n_regions() {
        let combo: Vec<String> =
            model.combo(c).iter().map(|m| format!("m{m}")).collect();
        let _ = writeln!(out, "  region C{}: [{}]", c + 1, combo.join(", "));
    }
    Ok(out)
}

/// The `(name, domain)` sensitive declaration the model was trained with,
/// read from its stored schema, for CSV loading by header name.
fn sensitive_decl(schema: &falcc_dataset::Schema) -> Vec<(String, Vec<f64>)> {
    schema
        .sensitive()
        .iter()
        .map(|s| (schema.attr_name(s.attr).to_string(), s.domain.clone()))
        .collect()
}

fn as_refs(decl: &[(String, Vec<f64>)]) -> Vec<(&str, Vec<f64>)> {
    decl.iter().map(|(n, d)| (n.as_str(), d.clone())).collect()
}

#[cfg(test)]
mod tests {
    use crate::args;

    fn v(items: &[&str]) -> Vec<String> {
        items.iter().map(|s| s.to_string()).collect()
    }

    /// Writes a small learnable-but-biased CSV and returns its path.
    fn write_csv(path: &std::path::Path, n: usize, seed: u64) -> String {
        use std::fmt::Write as _;
        let mut text = String::from("sex,f0,f1,label\n");
        let mut state = seed;
        let mut rand = || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            // Top 31 bits scaled into [-1, 1).
            ((state >> 33) as f64 / (1u64 << 30) as f64) - 1.0
        };
        for _ in 0..n {
            let sex = u8::from(rand() > 0.0);
            let f0 = rand() * 2.0;
            let f1 = rand() * 2.0;
            let threshold = if sex == 1 { 0.5 } else { -0.2 };
            let label = u8::from(f0 + 0.5 * f1 > threshold);
            let _ = writeln!(text, "{sex},{f0:.4},{f1:.4},{label}");
        }
        std::fs::write(path, text).unwrap();
        path.to_string_lossy().into_owned()
    }

    /// Dumps a dataset back to CSV in its schema's column order, so a
    /// `fit`-produced (synthetic-schema) model can be served via
    /// `predict` in-process.
    fn dump_csv(ds: &falcc_dataset::Dataset, path: &std::path::Path) -> String {
        use std::fmt::Write as _;
        let schema = ds.schema();
        let mut text = String::new();
        for j in 0..schema.n_attrs() {
            let _ = write!(text, "{},", schema.attr_name(j));
        }
        text.push_str("label\n");
        for i in 0..ds.len() {
            for v in ds.row(i) {
                let _ = write!(text, "{v},");
            }
            let _ = writeln!(text, "{}", ds.labels()[i]);
        }
        std::fs::write(path, text).unwrap();
        path.to_string_lossy().into_owned()
    }

    #[test]
    fn fit_emits_artifact_and_predict_prefers_it_with_typed_fallback() {
        use falcc_dataset::synthetic::{generate, SyntheticConfig};

        let dir = std::env::temp_dir().join("falcc_cli_artifact_test");
        std::fs::create_dir_all(&dir).unwrap();
        let model_path = dir.join("model.json").to_string_lossy().into_owned();
        let artifact_path = dir.join("model.falccb");

        let out = crate::run(&v(&[
            "fit", "--rows", "400", "--seed", "9", "--out", &model_path,
            "--emit-artifact",
        ]))
        .unwrap();
        assert!(out.contains("model written to"), "{out}");
        assert!(out.contains("artifact written to"), "{out}");
        assert!(artifact_path.exists());

        // Serve rows drawn from the same synthetic family (fresh seed).
        let mut dcfg = SyntheticConfig::social(0.30);
        dcfg.n = 150;
        let ds = generate(&dcfg, 33).unwrap();
        let data_csv = dump_csv(&ds, &dir.join("data.csv"));

        let via_artifact = crate::run(&v(&[
            "predict", "--model", &model_path, "--data", &data_csv,
        ]))
        .unwrap();
        let via_json = crate::run(&v(&[
            "predict", "--model", &model_path, "--data", &data_csv, "--no-artifact",
        ]))
        .unwrap();
        let interpreted = crate::run(&v(&[
            "predict", "--model", &model_path, "--data", &data_csv, "--no-compile",
        ]))
        .unwrap();
        assert_eq!(via_artifact.lines().count(), 151);
        assert_eq!(via_artifact, via_json, "artifact and JSON paths must agree");
        assert_eq!(via_artifact, interpreted, "compiled and interpreted must agree");

        // A corrupt artifact degrades to the JSON path, bit-identically.
        let pristine = std::fs::read(&artifact_path).unwrap();
        let mut damaged = pristine.clone();
        let mid = damaged.len() / 2;
        damaged[mid] ^= 0xff;
        std::fs::write(&artifact_path, &damaged).unwrap();
        let fallbacks_before =
            falcc_telemetry::counters::SERVE_ARTIFACT_FALLBACKS.get();
        let after_damage = crate::run(&v(&[
            "predict", "--model", &model_path, "--data", &data_csv,
        ]))
        .unwrap();
        assert_eq!(after_damage, via_json);
        if falcc_telemetry::enabled() {
            assert_eq!(
                falcc_telemetry::counters::SERVE_ARTIFACT_FALLBACKS.get(),
                fallbacks_before + 1,
                "corrupt-artifact fallback must be counted"
            );
        }

        // A stale artifact (snapshot refitted underneath it) also degrades.
        std::fs::write(&artifact_path, &pristine).unwrap();
        crate::run(&v(&[
            "fit", "--rows", "400", "--seed", "10", "--out", &model_path,
        ]))
        .unwrap();
        let stale = crate::run(&v(&[
            "predict", "--model", &model_path, "--data", &data_csv,
        ]))
        .unwrap();
        let fresh_json = crate::run(&v(&[
            "predict", "--model", &model_path, "--data", &data_csv, "--no-artifact",
        ]))
        .unwrap();
        assert_eq!(stale, fresh_json, "stale artifact must serve the new snapshot");
        if falcc_telemetry::enabled() {
            assert_eq!(
                falcc_telemetry::counters::SERVE_ARTIFACT_FALLBACKS.get(),
                fallbacks_before + 2,
                "stale-artifact fallback must be counted"
            );
        }

        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn end_to_end_train_predict_audit_info() {
        let dir = std::env::temp_dir().join("falcc_cli_test");
        std::fs::create_dir_all(&dir).unwrap();
        let train_csv = write_csv(&dir.join("train.csv"), 600, 1);
        let test_csv = write_csv(&dir.join("test.csv"), 150, 2);
        let model_path = dir.join("model.json").to_string_lossy().into_owned();

        let out = crate::run(&v(&[
            "train", "--data", &train_csv, "--sensitive", "sex", "--out", &model_path,
            "--clusters", "3", "--seed", "5",
        ]))
        .unwrap();
        assert!(out.contains("trained FALCC"), "{out}");
        assert!(std::path::Path::new(&model_path).exists());

        let preds = crate::run(&v(&[
            "predict", "--model", &model_path, "--data", &test_csv,
        ]))
        .unwrap();
        assert!(preds.starts_with("prediction\n"));
        assert_eq!(preds.lines().count(), 151);

        // The interpreted escape hatch serves bit-identical predictions.
        let interpreted = crate::run(&v(&[
            "predict", "--model", &model_path, "--data", &test_csv, "--no-compile",
        ]))
        .unwrap();
        assert_eq!(preds, interpreted);

        let audit_out =
            crate::run(&v(&["audit", "--model", &model_path, "--data", &test_csv]))
                .unwrap();
        assert!(audit_out.contains("accuracy:"), "{audit_out}");
        assert!(audit_out.contains("demographic parity"), "{audit_out}");
        assert!(audit_out.contains("per-region"), "{audit_out}");

        let info_out = crate::run(&v(&["info", "--model", &model_path])).unwrap();
        assert!(info_out.contains("local regions"), "{info_out}");
        assert!(info_out.contains("m0:"), "{info_out}");

        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn run_with_profile_and_trace_emits_tree_and_jsonl() {
        let dir = std::env::temp_dir().join("falcc_cli_run_test");
        std::fs::create_dir_all(&dir).unwrap();
        let trace = dir.join("trace.jsonl").to_string_lossy().into_owned();

        let out = crate::run(&v(&[
            "run", "--scale", "0.05", "--seed", "7", "--profile", "--trace-out", &trace,
            "--quiet",
        ]))
        .unwrap();
        assert!(out.contains("fitted on"), "{out}");
        assert!(out.contains("-- profile --"), "{out}");
        assert!(out.contains("offline.fit"), "{out}");

        let jsonl = std::fs::read_to_string(&trace).unwrap();
        assert!(!jsonl.is_empty());
        for line in jsonl.lines() {
            assert!(line.starts_with('{') && line.ends_with('}'), "bad line: {line}");
        }
        assert!(jsonl.contains("\"name\":\"offline.clustering\""), "{jsonl}");
        assert!(jsonl.contains("\"type\":\"counter\""), "{jsonl}");

        falcc_telemetry::disable();
        falcc_telemetry::reset();
        falcc_telemetry::set_quiet(false);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn run_monitor_out_writes_stream_and_monitor_renders_it() {
        let dir = std::env::temp_dir().join("falcc_cli_monitor_test");
        std::fs::create_dir_all(&dir).unwrap();
        let stream = dir.join("monitor.jsonl").to_string_lossy().into_owned();

        let out = crate::run(&v(&[
            "run", "--scale", "0.05", "--seed", "9", "--monitor-out", &stream, "--quiet",
        ]))
        .unwrap();
        assert!(out.contains("fitted on"), "{out}");
        let jsonl = std::fs::read_to_string(&stream).unwrap();
        assert!(jsonl.contains("\"type\":\"monitor_baseline\""), "{jsonl}");
        assert!(jsonl.contains("\"type\":\"monitor_window\""), "{jsonl}");
        assert!(jsonl.contains("\"type\":\"monitor_region\""), "{jsonl}");

        // The report renders per-window tables from the stream alone.
        let report =
            crate::run(&v(&["monitor", "--input", &stream, "--quiet"])).unwrap();
        assert!(report.contains("monitor stream:"), "{report}");
        assert!(report.contains("window "), "{report}");
        assert!(report.contains("dp gap"), "{report}");
        // Absurdly tight thresholds must trip WARN lines.
        let warned = crate::run(&v(&[
            "monitor", "--input", &stream, "--warn-dp", "0.0000001", "--quiet",
        ]))
        .unwrap();
        assert!(warned.contains("WARN"), "{warned}");
        // Exposition mode: every line is `name{labels} value`.
        let exposition = crate::run(&v(&[
            "monitor", "--input", &stream, "--exposition", "--quiet",
        ]))
        .unwrap();
        for line in exposition.lines() {
            let (name_labels, value) = line.rsplit_once(' ').unwrap();
            assert!(name_labels.contains('{') && name_labels.ends_with('}'), "{line}");
            assert!(value.parse::<f64>().is_ok(), "{line}");
        }

        falcc_telemetry::set_quiet(false);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn runtime_errors_have_exit_code_one() {
        let err = crate::run(&v(&[
            "predict", "--model", "/nonexistent/model.json", "--data", "x.csv",
        ]))
        .unwrap_err();
        assert_eq!(err.exit_code, 1);
        let err = args::parse(&v(&["train"])).unwrap_err();
        assert_eq!(err.exit_code, 2);
    }
}
