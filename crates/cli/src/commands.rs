//! Implementation of the CLI subcommands. Each returns its stdout text so
//! the whole flow is unit-testable in-process.

use crate::args::{Command, ModelDataArgs, PredictArgs, RunArgs, TrainArgs};
use crate::{CliError, USAGE};
use falcc::{
    auto_tune, FairClassifier, FalccConfig, FalccModel, SavedFalccModel,
};
use falcc_dataset::{csv, Dataset, SplitRatios, ThreeWaySplit};
use falcc_metrics::individual::consistency;
use falcc_metrics::{accuracy, FairnessMetric, LossConfig};
use std::fmt::Write as _;

/// Executes one parsed command.
///
/// # Errors
/// [`CliError`] with exit code 1 on runtime failures.
pub fn execute(command: Command) -> Result<String, CliError> {
    match command {
        Command::Help => Ok(USAGE.to_string()),
        Command::Train(args) => train(args),
        Command::Predict(args) => predict(args),
        Command::Audit(args) => audit(args),
        Command::Info { model } => info(&model),
        Command::Run(args) => run_demo(args),
    }
}

/// `falcc run`: the full pipeline on a synthetic benchmark dataset — no
/// input files needed. Exists mainly as a profiling target: with
/// `--profile`/`--trace-out` it exercises every instrumented phase of the
/// offline and online stack in one invocation.
fn run_demo(args: RunArgs) -> Result<String, CliError> {
    use falcc_dataset::synthetic::{generate, SyntheticConfig};

    let mut dcfg = SyntheticConfig::social(0.30);
    dcfg.n = ((dcfg.n as f64 * args.scale) as usize).max(600);
    falcc_telemetry::progress(format!(
        "generating synthetic social dataset: {} rows, seed {}",
        dcfg.n, args.seed
    ));
    let data = generate(&dcfg, args.seed)
        .map_err(|e| CliError::runtime(format!("generating data: {e}")))?;
    let split = ThreeWaySplit::split(&data, SplitRatios::PAPER, args.seed)
        .map_err(|e| CliError::runtime(format!("splitting data: {e}")))?;

    let injecting = !args.faults.is_empty();
    let config = FalccConfig {
        proxy: falcc::ProxyStrategy::PAPER_REMOVE,
        seed: args.seed,
        threads: args.threads,
        faults: args.faults,
        ..FalccConfig::default()
    };
    falcc_telemetry::progress(if injecting {
        "fitting FALCC (offline phase, with injected faults)"
    } else {
        "fitting FALCC (offline phase)"
    });
    let model = FalccModel::fit(&split.train, &split.validation, &config)
        .map_err(|e| CliError::runtime(format!("fitting FALCC: {e}")))?;
    // The compiled serving plane is the default; --no-compile falls back
    // to the interpreted online phase (bit-identical either way).
    let preds = if args.no_compile {
        falcc_telemetry::progress("classifying test split (interpreted online phase)");
        model.predict_dataset(&split.test)
    } else {
        falcc_telemetry::progress("classifying test split (compiled serving plane)");
        model.compile().predict_dataset(&split.test)
    };

    let y = split.test.labels();
    let g = split.test.groups();
    let n_groups = split.test.group_index().len();
    let mut out = String::new();
    let _ = writeln!(
        out,
        "fitted on {} train / {} validation rows: pool of {} models, {} local regions",
        split.train.len(),
        split.validation.len(),
        model.pool().len(),
        model.n_regions()
    );
    let _ = writeln!(
        out,
        "test ({} rows): accuracy {:.2}%, demographic parity bias {:.2}%",
        split.test.len(),
        accuracy(y, &preds) * 100.0,
        FairnessMetric::DemographicParity.bias(y, &preds, g, n_groups) * 100.0
    );
    if injecting {
        // Degradation counters record only while telemetry is on; without
        // it, still confirm the run was degraded-by-design.
        if falcc_telemetry::enabled() {
            let _ = writeln!(
                out,
                "injected faults: {} fired, {} pool member(s) quarantined, \
                 {} degenerate region(s), {} region fallback(s)",
                falcc_telemetry::counters::FAULTS_INJECTED.get(),
                falcc_telemetry::counters::POOL_MEMBERS_QUARANTINED.get(),
                falcc_telemetry::counters::DEGENERATE_CLUSTERS.get(),
                falcc_telemetry::counters::REGION_GROUP_FALLBACKS.get()
                    + falcc_telemetry::counters::REGION_GLOBAL_FALLBACKS.get(),
            );
        } else {
            let _ = writeln!(
                out,
                "injected faults were active (add --profile for degradation counters)"
            );
        }
    }
    Ok(out)
}

fn load_dataset(path: &str, sensitive: &[(&str, Vec<f64>)]) -> Result<Dataset, CliError> {
    csv::read_csv_file(path, sensitive)
        .map_err(|e| CliError::runtime(format!("reading {path}: {e}")))
}

fn load_model(path: &str) -> Result<FalccModel, CliError> {
    Ok(SavedFalccModel::load_file(path)
        .map_err(|e| CliError::runtime(format!("loading model {path}: {e}")))?
        .restore())
}

fn train(args: TrainArgs) -> Result<String, CliError> {
    let sensitive: Vec<(&str, Vec<f64>)> =
        args.sensitive.iter().map(|s| (s.as_str(), vec![0.0, 1.0])).collect();
    let data = load_dataset(&args.data, &sensitive)?;

    // Internal train/validation split (no test needed — the caller keeps
    // their own held-out data for `audit`).
    let ratios = SplitRatios {
        train: 1.0 - args.val_split,
        validation: args.val_split * 0.999,
        test: args.val_split * 0.001,
    };
    let split = ThreeWaySplit::split(&data, ratios, args.seed)
        .map_err(|e| CliError::runtime(format!("splitting data: {e}")))?;

    let mut config = FalccConfig {
        loss: LossConfig { lambda: args.lambda, metric: args.metric },
        proxy: args.proxy,
        clustering: args.clusters,
        seed: args.seed,
        threads: args.threads,
        ..FalccConfig::default()
    };
    config.pool.seed = args.seed;

    let mut out = String::new();
    if args.tune {
        let report = auto_tune(&split.train, &split.validation, &config)
            .map_err(|e| CliError::runtime(format!("auto-tuning: {e}")))?;
        let _ = writeln!(
            out,
            "auto-tune chose {:?} with pool size {} (best holdout local L-hat {:.4})",
            report.chosen.clustering,
            report.chosen.pool.pool_size,
            report.trials[0].holdout_local_l_hat
        );
        config = report.chosen;
    }

    let model = FalccModel::fit(&split.train, &split.validation, &config)
        .map_err(|e| CliError::runtime(format!("fitting FALCC: {e}")))?;
    SavedFalccModel::capture(&model)
        .and_then(|saved| saved.save_file(&args.out))
        .map_err(|e| CliError::runtime(format!("saving model: {e}")))?;

    let _ = writeln!(
        out,
        "trained FALCC on {} rows ({} train / {} validation): pool of {} models, {} local regions",
        data.len(),
        split.train.len(),
        split.validation.len(),
        model.pool().len(),
        model.n_regions()
    );
    let _ = writeln!(out, "model written to {}", args.out);
    Ok(out)
}

fn predict(args: PredictArgs) -> Result<String, CliError> {
    let mut model = load_model(&args.model)?;
    // The batched online phase fans out over worker threads; predictions
    // are identical for every thread count.
    model.set_threads(args.threads);
    let sensitive = sensitive_decl_of(&model);
    let data = load_dataset(&args.data, &as_refs(&sensitive))?;
    // Serve through the compiled plane unless --no-compile asks for the
    // interpreted online phase; predictions are bit-identical either way.
    let preds = if args.no_compile {
        model.predict_dataset(&data)
    } else {
        model.compile().predict_dataset(&data)
    };

    let mut body = String::with_capacity(preds.len() * 2 + 16);
    body.push_str("prediction\n");
    for p in &preds {
        body.push(if *p == 1 { '1' } else { '0' });
        body.push('\n');
    }
    match &args.out {
        Some(path) => {
            std::fs::write(path, &body)
                .map_err(|e| CliError::runtime(format!("writing {path}: {e}")))?;
            Ok(format!("wrote {} predictions to {path}\n", preds.len()))
        }
        None => Ok(body),
    }
}

fn audit(args: ModelDataArgs) -> Result<String, CliError> {
    let model = load_model(&args.model)?;
    let sensitive = sensitive_decl_of(&model);
    let data = load_dataset(&args.data, &as_refs(&sensitive))?;
    let preds = model.predict_dataset(&data);
    let y = data.labels();
    let g = data.groups();
    let n_groups = data.group_index().len();

    let mut out = String::new();
    let _ = writeln!(out, "samples: {}   regions: {}", data.len(), model.n_regions());
    let _ = writeln!(out, "accuracy: {:.2}%", accuracy(y, &preds) * 100.0);
    for metric in FairnessMetric::ALL {
        let _ = writeln!(
            out,
            "{:<22} {:.2}%",
            format!("{metric}:"),
            metric.bias(y, &preds, g, n_groups) * 100.0
        );
    }
    let attrs = data.schema().non_sensitive_attrs();
    let projected = data.project(&attrs, None);
    let _ = writeln!(
        out,
        "consistency (k=5):     {:.2}%",
        consistency(&projected, &preds, 5) * 100.0
    );

    // Per-region breakdown over the model's own regions.
    let _ = writeln!(out, "\nper-region (demographic parity):");
    let _ = writeln!(out, "{:<8} {:>6} {:>10} {:>9}", "region", "size", "accuracy", "dp bias");
    let regions: Vec<usize> =
        (0..data.len()).map(|i| model.assign_region(data.row(i))).collect();
    for r in 0..model.n_regions() {
        let idx: Vec<usize> = (0..data.len()).filter(|&i| regions[i] == r).collect();
        if idx.is_empty() {
            continue;
        }
        let yr: Vec<u8> = idx.iter().map(|&i| y[i]).collect();
        let zr: Vec<u8> = idx.iter().map(|&i| preds[i]).collect();
        let gr: Vec<_> = idx.iter().map(|&i| g[i]).collect();
        let _ = writeln!(
            out,
            "C{:<7} {:>6} {:>9.1}% {:>8.2}%",
            r + 1,
            idx.len(),
            accuracy(&yr, &zr) * 100.0,
            FairnessMetric::DemographicParity.bias(&yr, &zr, &gr, n_groups) * 100.0
        );
    }
    Ok(out)
}

fn info(model_path: &str) -> Result<String, CliError> {
    let model = load_model(model_path)?;
    let mut out = String::new();
    let _ = writeln!(out, "algorithm: {}", model.name());
    let _ = writeln!(out, "local regions: {}", model.n_regions());
    let _ = writeln!(out, "model pool ({} members):", model.pool().len());
    for (i, m) in model.pool().models.iter().enumerate() {
        let scope = match m.group {
            None => "all groups".to_string(),
            Some(g) => format!("group {g}"),
        };
        let _ = writeln!(out, "  m{i}: {} [{scope}]", m.model.name());
    }
    let proxy = model.proxy_outcome();
    let _ = writeln!(
        out,
        "clustering attributes: {} ({} removed as proxies, weights: {})",
        proxy.attrs.len(),
        proxy.removed.len(),
        if proxy.weights.is_some() { "yes" } else { "no" }
    );
    let _ = writeln!(out, "assessment: λ = {}, metric = {}", model.loss_config().lambda, model.loss_config().metric);
    for c in 0..model.n_regions() {
        let combo: Vec<String> =
            model.combo(c).iter().map(|m| format!("m{m}")).collect();
        let _ = writeln!(out, "  region C{}: [{}]", c + 1, combo.join(", "));
    }
    Ok(out)
}

/// The `(name, domain)` sensitive declaration the model was trained with,
/// read from its stored schema, for CSV loading by header name.
fn sensitive_decl_of(model: &FalccModel) -> Vec<(String, Vec<f64>)> {
    let schema = model.schema();
    schema
        .sensitive()
        .iter()
        .map(|s| (schema.attr_name(s.attr).to_string(), s.domain.clone()))
        .collect()
}

fn as_refs(decl: &[(String, Vec<f64>)]) -> Vec<(&str, Vec<f64>)> {
    decl.iter().map(|(n, d)| (n.as_str(), d.clone())).collect()
}

#[cfg(test)]
mod tests {
    use crate::args;

    fn v(items: &[&str]) -> Vec<String> {
        items.iter().map(|s| s.to_string()).collect()
    }

    /// Writes a small learnable-but-biased CSV and returns its path.
    fn write_csv(path: &std::path::Path, n: usize, seed: u64) -> String {
        use std::fmt::Write as _;
        let mut text = String::from("sex,f0,f1,label\n");
        let mut state = seed;
        let mut rand = || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            // Top 31 bits scaled into [-1, 1).
            ((state >> 33) as f64 / (1u64 << 30) as f64) - 1.0
        };
        for _ in 0..n {
            let sex = u8::from(rand() > 0.0);
            let f0 = rand() * 2.0;
            let f1 = rand() * 2.0;
            let threshold = if sex == 1 { 0.5 } else { -0.2 };
            let label = u8::from(f0 + 0.5 * f1 > threshold);
            let _ = writeln!(text, "{sex},{f0:.4},{f1:.4},{label}");
        }
        std::fs::write(path, text).unwrap();
        path.to_string_lossy().into_owned()
    }

    #[test]
    fn end_to_end_train_predict_audit_info() {
        let dir = std::env::temp_dir().join("falcc_cli_test");
        std::fs::create_dir_all(&dir).unwrap();
        let train_csv = write_csv(&dir.join("train.csv"), 600, 1);
        let test_csv = write_csv(&dir.join("test.csv"), 150, 2);
        let model_path = dir.join("model.json").to_string_lossy().into_owned();

        let out = crate::run(&v(&[
            "train", "--data", &train_csv, "--sensitive", "sex", "--out", &model_path,
            "--clusters", "3", "--seed", "5",
        ]))
        .unwrap();
        assert!(out.contains("trained FALCC"), "{out}");
        assert!(std::path::Path::new(&model_path).exists());

        let preds = crate::run(&v(&[
            "predict", "--model", &model_path, "--data", &test_csv,
        ]))
        .unwrap();
        assert!(preds.starts_with("prediction\n"));
        assert_eq!(preds.lines().count(), 151);

        // The interpreted escape hatch serves bit-identical predictions.
        let interpreted = crate::run(&v(&[
            "predict", "--model", &model_path, "--data", &test_csv, "--no-compile",
        ]))
        .unwrap();
        assert_eq!(preds, interpreted);

        let audit_out =
            crate::run(&v(&["audit", "--model", &model_path, "--data", &test_csv]))
                .unwrap();
        assert!(audit_out.contains("accuracy:"), "{audit_out}");
        assert!(audit_out.contains("demographic parity"), "{audit_out}");
        assert!(audit_out.contains("per-region"), "{audit_out}");

        let info_out = crate::run(&v(&["info", "--model", &model_path])).unwrap();
        assert!(info_out.contains("local regions"), "{info_out}");
        assert!(info_out.contains("m0:"), "{info_out}");

        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn run_with_profile_and_trace_emits_tree_and_jsonl() {
        let dir = std::env::temp_dir().join("falcc_cli_run_test");
        std::fs::create_dir_all(&dir).unwrap();
        let trace = dir.join("trace.jsonl").to_string_lossy().into_owned();

        let out = crate::run(&v(&[
            "run", "--scale", "0.05", "--seed", "7", "--profile", "--trace-out", &trace,
            "--quiet",
        ]))
        .unwrap();
        assert!(out.contains("fitted on"), "{out}");
        assert!(out.contains("-- profile --"), "{out}");
        assert!(out.contains("offline.fit"), "{out}");

        let jsonl = std::fs::read_to_string(&trace).unwrap();
        assert!(!jsonl.is_empty());
        for line in jsonl.lines() {
            assert!(line.starts_with('{') && line.ends_with('}'), "bad line: {line}");
        }
        assert!(jsonl.contains("\"name\":\"offline.clustering\""), "{jsonl}");
        assert!(jsonl.contains("\"type\":\"counter\""), "{jsonl}");

        falcc_telemetry::disable();
        falcc_telemetry::reset();
        falcc_telemetry::set_quiet(false);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn runtime_errors_have_exit_code_one() {
        let err = crate::run(&v(&[
            "predict", "--model", "/nonexistent/model.json", "--data", "x.csv",
        ]))
        .unwrap_err();
        assert_eq!(err.exit_code, 1);
        let err = args::parse(&v(&["train"])).unwrap_err();
        assert_eq!(err.exit_code, 2);
    }
}
