//! Flattened structure-of-arrays inference artifacts.
//!
//! The training-side model structs ([`crate::DecisionTree`],
//! [`crate::AdaBoost`], [`crate::RandomForest`], …) are laid out for
//! *fitting*: one heap allocation per tree, enum-tagged nodes, and a
//! virtual call per prediction. That layout taxes the online hot path —
//! every row chases pointers through structures scattered across the
//! heap. This module *compiles* trained models into flat, contiguous,
//! structure-of-arrays form:
//!
//! * every tree of every member lives in one shared [`NodeArena`] — a
//!   single contiguous slab of packed **16-byte** node records. Trees
//!   are re-laid-out breadth-first at compile time so a split's two
//!   children are always adjacent (`right == left + 1`), which lets the
//!   record drop the explicit right pointer: traversal is a tight
//!   compare-and-add loop with no enum discriminant and exactly one
//!   16-byte indexed load per visited node (a per-field
//!   structure-of-arrays split was measured slower here: the random
//!   walk of a tree touches one cache line per node in packed form but
//!   several when the fields live in separate slabs). A leaf
//!   *self-loops* — its `left` points at itself and its threshold is
//!   `+∞`, so the comparison always "goes left" back onto the leaf —
//!   which makes stepping a *total* function; that lets the ensemble
//!   paths run several independent walks in lockstep for a fixed depth
//!   with no per-step leaf test — multiple dependent-load chains in
//!   flight instead of one is what actually hides the L1 latency that
//!   dominates tree inference. Leaf probabilities live in a parallel
//!   slab read once per finished walk;
//! * ensembles (forest, AdaBoost) become per-tree root offsets into that
//!   arena plus a weights slab;
//! * logistic regression and naive Bayes copy their parameters into
//!   dense per-feature slabs (Bayes additionally pre-evaluates the
//!   per-feature `ln(2π·σ²)` normaliser, a pure function of the trained
//!   variance);
//! * members without a flat form (kNN — whose kd-tree already stores its
//!   training slab contiguously — and externally supplied classifiers)
//!   fall back to an [`std::sync::Arc`] of the original model.
//!
//! **Equivalence contract**: for every member kind,
//! [`FlatPool::predict_proba_row`] reproduces the interpreted
//! `Classifier::predict_proba_row` *bit for bit* — same feature
//! comparisons, same summation order, same tie-breaks. The unit tests
//! below and the `compiled_equivalence` suite in `falcc-core` pin this
//! with `f64::to_bits` comparisons.

// `!(x <= thr)` is deliberate throughout the walk loops: it selects the
// right child exactly when the interpreted `if row[attr] <= thr` takes
// its else-branch, *including* for NaN — `x > thr` would not.
#![allow(clippy::neg_cmp_op_on_partial_ord)]

use crate::persist::ModelSpec;
use crate::traits::Classifier;
use crate::tree::{DecisionTree, Node};
use std::sync::Arc;

/// One packed tree node: 16 bytes, no enum discriminant, no explicit
/// right-child pointer.
///
/// A split node carries the split attribute in `feat`, the threshold in
/// `thr`, and the index (absolute within the arena) of its left child
/// in `left`; the breadth-first compile-time layout guarantees the
/// right child sits at `left + 1`, so one step is
/// `left + (row[feat] ⩽ thr ? 0 : 1)` — the exact comparison the
/// interpreted walk makes, including its NaN behaviour (`⩽` is false,
/// so NaN goes right). A **leaf** *self-loops*: its `left` is its own
/// index and its threshold is `+∞`, so any finite feature value
/// compares `⩽` and the step lands back on the leaf. Splits always
/// point forward (BFS parents precede children), so `left == self`
/// identifies a leaf unambiguously — and a walk that has reached its
/// leaf can keep "stepping" in place, which is what the fixed-depth
/// multi-lane evaluators below rely on. Leaf probabilities live in the
/// arena's parallel `probas` slab.
#[derive(Debug, Clone, Copy)]
struct PackedNode {
    thr: f64,
    feat: u32,
    left: u32,
}

/// One shared contiguous slab of packed tree nodes.
///
/// Trees are appended contiguously, each re-laid-out breadth-first so
/// its root is its **first** node and siblings are adjacent.
/// `probas[i]` is node `i`'s leaf probability (0 for splits — never
/// read: a walk only resolves its probability on a leaf).
#[derive(Debug, Default, Clone)]
pub struct NodeArena {
    nodes: Vec<PackedNode>,
    probas: Vec<f64>,
}

impl NodeArena {
    /// Total number of nodes across all compiled trees.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// True when no tree has been compiled into the arena.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Appends one tree, returning the absolute index of its root and
    /// the tree's depth in edges — the exact step count the fixed-depth
    /// evaluators take (0 for a single-leaf tree).
    ///
    /// The interpreted layout (children pushed before parents, root
    /// last) is re-laid-out **breadth-first**: the root lands first and
    /// the two children of every split are appended together, so the
    /// right child always sits at `left + 1` and the packed record can
    /// drop its right pointer. The relayout only renames node indices —
    /// every walk still visits the same attribute/threshold sequence to
    /// the same leaf probability.
    fn push_tree(&mut self, tree: &DecisionTree) -> (u32, u32) {
        let nodes = tree.nodes();
        debug_assert!(!nodes.is_empty(), "fitted trees have at least one node");
        let base = self.nodes.len() as u32;
        // BFS over interpreted indices; `order[slot]` = interpreted index
        // of the node stored at `base + slot`.
        let mut order = Vec::with_capacity(nodes.len());
        order.push(nodes.len() - 1); // interpreted root is the last node
        let mut head = 0;
        while head < order.len() {
            if let Node::Split { left, right, .. } = nodes[order[head]] {
                order.push(left as usize);
                order.push(right as usize);
            }
            head += 1;
        }
        debug_assert_eq!(order.len(), nodes.len(), "tree nodes must form one connected tree");
        let mut new_id = vec![0u32; nodes.len()];
        for (slot, &interp) in order.iter().enumerate() {
            new_id[interp] = base + slot as u32;
        }
        for (slot, &interp) in order.iter().enumerate() {
            let own = base + slot as u32;
            match &nodes[interp] {
                Node::Leaf { proba } => {
                    self.nodes.push(PackedNode { thr: f64::INFINITY, feat: 0, left: own });
                    self.probas.push(*proba);
                }
                Node::Split { attr, threshold, left, right } => {
                    debug_assert_eq!(
                        new_id[*right as usize],
                        new_id[*left as usize] + 1,
                        "BFS appends siblings together"
                    );
                    self.nodes.push(PackedNode {
                        thr: *threshold,
                        feat: *attr as u32,
                        left: new_id[*left as usize],
                    });
                    self.probas.push(0.0);
                }
            }
        }
        (base, tree.depth() as u32)
    }

    /// Tight traversal loop: compare, step, repeat. Replicates the
    /// interpreted walk exactly — same `row[attr] <= threshold`
    /// comparison on the same node sequence (`left + 1` *is* the right
    /// child), returning the same leaf probability. (`left == at`
    /// detects the self-looping leaf before any row access, so a
    /// single-leaf tree reads no features, just like interpreted.)
    #[inline]
    fn eval(&self, root: u32, row: &[f64]) -> f64 {
        let mut at = root as usize;
        loop {
            let node = self.nodes[at];
            if node.left as usize == at {
                return self.probas[at];
            }
            at = (node.left + u32::from(!(row[node.feat as usize] <= node.thr))) as usize;
        }
    }

    /// Four lockstep walks of four (possibly distinct) trees over one
    /// row, each taking exactly `depth` unconditional steps; lanes whose
    /// path ends early spin harmlessly on their self-looping leaf (a
    /// leaf's "comparison" tests `row[0] ⩽ +∞`, true for every finite
    /// value, and lands back on the leaf). Per lane, the split
    /// comparisons and the node sequence up to the leaf are identical to
    /// [`Self::eval`], so each returned probability carries the same
    /// bits. The point of the shape: the four walks are *independent*
    /// dependency chains, so their node loads overlap in the pipeline
    /// instead of serialising.
    ///
    /// `depth` must be ≥ the depth of each of the four trees, and `row`
    /// must be non-empty and hold only finite values when `depth > 0`
    /// (the validated-row precondition of every caller).
    #[inline]
    fn eval4_trees(&self, roots: [u32; 4], depth: u32, row: &[f64]) -> [f64; 4] {
        let mut at = roots;
        for _ in 0..depth {
            for lane in &mut at {
                let node = self.nodes[*lane as usize];
                *lane = node.left + u32::from(!(row[node.feat as usize] <= node.thr));
            }
        }
        at.map(|lane| self.probas[lane as usize])
    }

    /// `W` lockstep walks of *one* tree over `W` rows — the bucket-path
    /// dual of [`Self::eval4_trees`]. The row-feature gathers are the
    /// latency bottleneck on deep trees (each lane's `row[feat]` load
    /// typically misses L1 once the bucket outgrows it); `W` independent
    /// chains keep that many misses in flight at once. Same per-lane bit
    /// identity to [`Self::eval`] as the narrower variants.
    #[inline]
    fn eval_wide_rows<const W: usize>(&self, root: u32, depth: u32, rows: [&[f64]; W]) -> [f64; W] {
        // Lane state stays `u32` (arena offsets are u32 anyway): half the
        // spill traffic of `usize` lanes once `W` outgrows the register
        // file.
        let mut at = [root; W];
        for _ in 0..depth {
            for (lane, row) in at.iter_mut().zip(rows) {
                let node = self.nodes[*lane as usize];
                *lane = node.left + u32::from(!(row[node.feat as usize] <= node.thr));
            }
        }
        at.map(|lane| self.probas[lane as usize])
    }

    /// Four lockstep walks of *one* tree over four rows — the bucket-path
    /// dual of [`Self::eval4_trees`], with the same soundness argument
    /// and the same per-lane bit identity to [`Self::eval`].
    #[inline]
    fn eval4_rows(&self, root: u32, depth: u32, rows: [&[f64]; 4]) -> [f64; 4] {
        let mut at = [root; 4];
        for _ in 0..depth {
            for (lane, row) in at.iter_mut().zip(rows) {
                let node = self.nodes[*lane as usize];
                *lane = node.left + u32::from(!(row[node.feat as usize] <= node.thr));
            }
        }
        at.map(|lane| self.probas[lane as usize])
    }
}

/// One compiled pool member.
#[derive(Clone)]
enum FlatMember {
    /// Single CART tree: root offset into the arena.
    Tree { root: u32 },
    /// AdaBoost: per-stage `(root, alpha)` in stage order, with the
    /// per-stage tree depths alongside (the fixed step count each walk
    /// takes). `suffix[i]` over-approximates the total stage weight from
    /// stage `i` onwards — the hard-label path stops voting once the
    /// accumulated margin provably out-weighs every remaining stage (see
    /// [`FlatPool::predict_row`]). All-stump members additionally carry
    /// the dense [`StumpSlab`] specialization.
    Boost {
        stages: Vec<(u32, f64)>,
        depths: Vec<u32>,
        suffix: Vec<f64>,
        stumps: Option<StumpSlab>,
    },
    /// Random forest: per-tree roots and depths in tree order.
    Forest { roots: Vec<u32>, depths: Vec<u32> },
    /// Logistic regression: dense parameter slabs.
    Linear {
        attrs: Vec<u32>,
        weights: Vec<f64>,
        means: Vec<f64>,
        stds: Vec<f64>,
        bias: f64,
    },
    /// Gaussian naive Bayes. Per feature:
    /// `[mean₀, var₀, ln(2π·var₀), mean₁, var₁, ln(2π·var₁)]` — the log
    /// normaliser is precomputed at compile time (same `f64` bits as the
    /// interpreted per-row evaluation of the same expression).
    Bayes { attrs: Vec<u32>, slab: Vec<[f64; 6]>, log_prior: [f64; 2] },
    /// No flat form: delegate to the original classifier. Used for kNN
    /// (its kd-tree already holds a contiguous point slab) and externally
    /// supplied models.
    Opaque(Arc<dyn Classifier>),
}

/// Dense specialization of an all-stump AdaBoost member (every stage
/// depth ≤ 1). Per stage `i`: the split attribute and threshold, plus
/// the **pre-signed** vote weights `salpha[i] = [α·vote(left leaf),
/// α·vote(right leaf)]`. A vote is exactly `±1.0`, so the products
/// carry the same bits as the interpreted `alpha * vote` — a stage's
/// margin contribution collapses to one comparison and one add, with no
/// node loads at all. A depth-0 stage (single leaf) stores `thr = +∞`
/// with identical weights on both sides, so any row takes the leaf's
/// vote regardless of the comparison.
#[derive(Debug, Clone)]
struct StumpSlab {
    feats: Vec<u32>,
    thrs: Vec<f64>,
    salpha: Vec<[f64; 2]>,
}

impl std::fmt::Debug for FlatMember {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::Tree { .. } => f.write_str("Tree"),
            Self::Boost { stages, .. } => write!(f, "Boost({} stages)", stages.len()),
            Self::Forest { roots, .. } => write!(f, "Forest({} trees)", roots.len()),
            Self::Linear { .. } => f.write_str("Linear"),
            Self::Bayes { .. } => f.write_str("Bayes"),
            Self::Opaque(m) => write!(f, "Opaque({})", m.name()),
        }
    }
}

/// Bucket evaluation goes stage-major only for members whose packed
/// nodes exceed this count (~24 KiB — roughly an L1 data cache). Below
/// it, the whole member stays cache-resident during a per-row walk, and
/// re-streaming the bucket's rows once per stage costs more than it
/// saves; above it, per-row evaluation evicts the member's own trees
/// between rows and stage-major wins. Both strategies are bit-identical
/// (same per-row accumulator sequence and exits), so this is purely a
/// scheduling choice.
const STAGE_MAJOR_MIN_NODES: u32 = 1024;

/// A set of pool members compiled into shared flat slabs.
#[derive(Debug, Clone, Default)]
pub struct FlatPool {
    arena: NodeArena,
    members: Vec<FlatMember>,
    /// Per-member packed-node count (0 for non-tree members) — drives
    /// the bucket-strategy choice in [`Self::predict_bucket`].
    footprints: Vec<u32>,
}

impl FlatPool {
    /// Compiles `models` in order. Member `i` of the result evaluates
    /// bit-identically to `models[i]`.
    pub fn compile(models: &[Arc<dyn Classifier>]) -> Self {
        let mut pool = Self::default();
        for model in models {
            pool.push(model);
        }
        pool
    }

    fn push(&mut self, model: &Arc<dyn Classifier>) {
        let nodes_before = self.arena.len();
        let member = match model.to_spec() {
            Some(ModelSpec::Tree(t)) => {
                FlatMember::Tree { root: self.arena.push_tree(&t).0 }
            }
            Some(ModelSpec::Boost(b)) => {
                let mut stages = Vec::with_capacity(b.stages().len());
                let mut depths = Vec::with_capacity(b.stages().len());
                for (tree, alpha) in b.stages() {
                    let (root, depth) = self.arena.push_tree(tree);
                    stages.push((root, *alpha));
                    depths.push(depth);
                }
                // Backward suffix sums of the stage weights, inflated so
                // float rounding can never make them an under-estimate.
                let mut suffix = vec![0.0; stages.len() + 1];
                for i in (0..stages.len()).rev() {
                    suffix[i] = (suffix[i + 1] + stages[i].1) * (1.0 + 1e-12);
                }
                let stumps = if depths.iter().all(|&d| d <= 1) {
                    let vote = |proba: f64| if proba >= 0.5 { 1.0 } else { -1.0 };
                    let mut slab = StumpSlab {
                        feats: Vec::with_capacity(stages.len()),
                        thrs: Vec::with_capacity(stages.len()),
                        salpha: Vec::with_capacity(stages.len()),
                    };
                    for (tree, alpha) in b.stages() {
                        let nodes = tree.nodes();
                        // A depth ≤ 1 tree: its root (last node) is
                        // either a lone leaf or a split on two leaves.
                        match nodes[nodes.len() - 1] {
                            Node::Leaf { proba } => {
                                slab.feats.push(0);
                                slab.thrs.push(f64::INFINITY);
                                let s = alpha * vote(proba);
                                slab.salpha.push([s, s]);
                            }
                            Node::Split { attr, threshold, left, right } => {
                                let leaf = |at: u32| match nodes[at as usize] {
                                    Node::Leaf { proba } => proba,
                                    Node::Split { .. } => {
                                        unreachable!("depth-1 stage children are leaves")
                                    }
                                };
                                slab.feats.push(attr as u32);
                                slab.thrs.push(threshold);
                                slab.salpha.push([
                                    alpha * vote(leaf(left)),
                                    alpha * vote(leaf(right)),
                                ]);
                            }
                        }
                    }
                    Some(slab)
                } else {
                    None
                };
                FlatMember::Boost { stages, depths, suffix, stumps }
            }
            Some(ModelSpec::Forest(f)) => {
                let mut roots = Vec::with_capacity(f.trees().len());
                let mut depths = Vec::with_capacity(f.trees().len());
                for tree in f.trees() {
                    let (root, depth) = self.arena.push_tree(tree);
                    roots.push(root);
                    depths.push(depth);
                }
                FlatMember::Forest { roots, depths }
            }
            Some(ModelSpec::Logistic(l)) => {
                let (attrs, weights, means, stds, bias) = l.flat_parts();
                FlatMember::Linear {
                    attrs: attrs.iter().map(|&a| a as u32).collect(),
                    weights: weights.to_vec(),
                    means: means.to_vec(),
                    stds: stds.to_vec(),
                    bias,
                }
            }
            Some(ModelSpec::Bayes(b)) => {
                let (attrs, stats, log_prior) = b.flat_parts();
                let slab = (0..attrs.len())
                    .map(|j| {
                        let (m0, v0) = stats[0][j];
                        let (m1, v1) = stats[1][j];
                        [
                            m0,
                            v0,
                            (2.0 * std::f64::consts::PI * v0).ln(),
                            m1,
                            v1,
                            (2.0 * std::f64::consts::PI * v1).ln(),
                        ]
                    })
                    .collect();
                FlatMember::Bayes {
                    attrs: attrs.iter().map(|&a| a as u32).collect(),
                    slab,
                    log_prior,
                }
            }
            // kNN's kd-tree is already a dense slab; anything unknown has
            // no flat form. Both delegate to the original model.
            Some(ModelSpec::Knn(_)) | None => FlatMember::Opaque(Arc::clone(model)),
        };
        self.footprints.push((self.arena.len() - nodes_before) as u32);
        self.members.push(member);
    }

    /// Number of compiled members.
    pub fn len(&self) -> usize {
        self.members.len()
    }

    /// True when no member has been compiled.
    pub fn is_empty(&self) -> bool {
        self.members.is_empty()
    }

    /// Total tree nodes in the shared arena (diagnostics).
    pub fn n_nodes(&self) -> usize {
        self.arena.len()
    }

    /// Whether `member` benefits from bucketed (stage-major) batch
    /// evaluation. Small members fit in L1 cache — several of them at
    /// once — so callers serve their rows in input order instead, which
    /// keeps the *row* stream sequential; bucketing pays off only when a
    /// member's own nodes would otherwise be evicted between rows.
    pub fn wants_bucket(&self, member: usize) -> bool {
        self.footprints[member] >= STAGE_MAJOR_MIN_NODES
    }

    /// Positive-class probability of member `member` on `row` —
    /// bit-identical to the interpreted model's `predict_proba_row`.
    ///
    /// # Panics
    /// Panics if `member` is out of range or `row` is narrower than the
    /// member's trained attributes (same as interpreted).
    #[inline]
    pub fn predict_proba_row(&self, member: usize, row: &[f64]) -> f64 {
        match &self.members[member] {
            FlatMember::Tree { root } => self.arena.eval(*root, row),
            FlatMember::Boost { stages, .. } => {
                // Stage order, same accumulator sequence as interpreted:
                // margin += α·vote, total += α, then the margin average.
                let mut margin = 0.0;
                let mut total_alpha = 0.0;
                for &(root, alpha) in stages {
                    let vote = if self.arena.eval(root, row) >= 0.5 { 1.0 } else { -1.0 };
                    margin += alpha * vote;
                    total_alpha += alpha;
                }
                if total_alpha <= 0.0 {
                    return 0.5;
                }
                0.5 * (margin / total_alpha + 1.0)
            }
            FlatMember::Forest { roots, .. } => {
                let votes =
                    roots.iter().filter(|&&root| self.arena.eval(root, row) >= 0.5).count();
                votes as f64 / roots.len() as f64
            }
            FlatMember::Linear { attrs, weights, means, stds, bias } => {
                // Same left-to-right term expression and summation order
                // as the interpreted `.map(...).sum::<f64>() + bias`.
                let mut z = 0.0;
                for (j, &a) in attrs.iter().enumerate() {
                    z += (row[a as usize] - means[j]) / stds[j] * weights[j];
                }
                z += bias;
                1.0 / (1.0 + (-z).exp())
            }
            FlatMember::Bayes { attrs, slab, log_prior } => {
                // The two class accumulators receive the same addition
                // sequence as interpreted (per feature: class 0 then 1).
                let mut ll0 = log_prior[0];
                let mut ll1 = log_prior[1];
                for (j, &a) in attrs.iter().enumerate() {
                    let x = row[a as usize];
                    let s = &slab[j];
                    let d0 = x - s[0];
                    ll0 += -0.5 * (s[2] + d0 * d0 / s[1]);
                    let d1 = x - s[3];
                    ll1 += -0.5 * (s[5] + d1 * d1 / s[4]);
                }
                let m = ll0.max(ll1);
                let e0 = (ll0 - m).exp();
                let e1 = (ll1 - m).exp();
                e1 / (e0 + e1)
            }
            FlatMember::Opaque(model) => model.predict_proba_row(row),
        }
    }

    /// Hard 0/1 prediction — same `proba >= 0.5` rule as the interpreted
    /// [`Classifier::predict_row`] default (no pool member overrides it).
    ///
    /// Ensemble members short-circuit: AdaBoost stops voting once the
    /// accumulated margin out-weighs every remaining stage, and a forest
    /// stops once the majority is decided. Both exits fire only when the
    /// completed vote provably lands on the same side of the threshold,
    /// so the label equals the full [`Self::predict_proba_row`] one:
    ///
    /// * **Boost** — exit once `|margin| > suffix[i+1] + total·1e-9`.
    ///   The remaining stages move the margin by at most the *inflated*
    ///   suffix weight — each vote is exactly `±α` (multiplying by
    ///   `±1.0` is exact) and the guard dwarfs the `O(n·ε)` rounding of
    ///   the remaining additions — so the fully accumulated margin keeps
    ///   the current sign *and* a magnitude above `~total·1e-9`. That
    ///   puts the final ratio `margin/total` far outside the zone where
    ///   `fl(1 + ratio)` collapses to `1.0`, so the label is the margin
    ///   sign on both planes. Margins that never clear the guard fall
    ///   through to the interpreted proba expression evaluated verbatim
    ///   (which is what decides e.g. a tiny negative margin: the ratio
    ///   rounds away and the interpreted label is `1`, not the sign).
    /// * **Forest** — votes are integers: the label is decided once
    ///   `2·votes >= n` (already a majority) or `2·(votes + remaining) <
    ///   n` (majority unreachable). `votes/n >= 0.5 ⇔ 2·votes >= n`
    ///   exactly: the division rounds to nearest and the true ratio is
    ///   at least `1/(2n)` away from `0.5` whenever `2·votes != n`.
    ///
    /// Both ensemble arms walk their trees **four at a time** with
    /// [`NodeArena::eval4_trees`]: the probabilities come back in batches
    /// but are *accumulated strictly in stage order* with the same
    /// per-stage exit checks as a one-at-a-time loop, so the accumulator
    /// bit sequence and the exit point are unchanged — at worst up to
    /// three trees past the exit get evaluated and discarded, which is
    /// cheaper than forgoing the instruction-level parallelism.
    #[inline]
    pub fn predict_row(&self, member: usize, row: &[f64]) -> u8 {
        match &self.members[member] {
            FlatMember::Tree { root } => u8::from(self.arena.eval(*root, row) >= 0.5),
            FlatMember::Boost { stages, depths, suffix, stumps } => {
                let guard = suffix[0] * 1e-9;
                let mut margin = 0.0f64;
                let mut total_alpha = 0.0f64;
                if let Some(slab) = stumps {
                    // All-stump member: each stage is one comparison and
                    // one pre-signed add over dense slabs. The margin,
                    // total-weight, and early-exit sequences are exactly
                    // those of the generic path below (`salpha` holds
                    // the same `alpha * vote` bits), so the label is
                    // identical — just without any node loads.
                    for (i, &(_, alpha)) in stages.iter().enumerate() {
                        let side =
                            usize::from(!(row[slab.feats[i] as usize] <= slab.thrs[i]));
                        margin += slab.salpha[i][side];
                        total_alpha += alpha;
                        if margin.abs() > suffix[i + 1] + guard {
                            return u8::from(margin >= 0.0);
                        }
                    }
                    if total_alpha <= 0.0 {
                        return 1; // proba 0.5 >= 0.5
                    }
                    return u8::from(0.5 * (margin / total_alpha + 1.0) >= 0.5);
                }
                let mut i = 0;
                while i + 4 <= stages.len() {
                    let roots =
                        [stages[i].0, stages[i + 1].0, stages[i + 2].0, stages[i + 3].0];
                    let depth = depths[i]
                        .max(depths[i + 1])
                        .max(depths[i + 2])
                        .max(depths[i + 3]);
                    let probas = self.arena.eval4_trees(roots, depth, row);
                    for (lane, proba) in probas.into_iter().enumerate() {
                        let alpha = stages[i + lane].1;
                        let vote = if proba >= 0.5 { 1.0 } else { -1.0 };
                        margin += alpha * vote;
                        total_alpha += alpha;
                        if margin.abs() > suffix[i + lane + 1] + guard {
                            return u8::from(margin >= 0.0);
                        }
                    }
                    i += 4;
                }
                for (k, &(root, alpha)) in stages[i..].iter().enumerate() {
                    let vote = if self.arena.eval(root, row) >= 0.5 { 1.0 } else { -1.0 };
                    margin += alpha * vote;
                    total_alpha += alpha;
                    if margin.abs() > suffix[i + k + 1] + guard {
                        return u8::from(margin >= 0.0);
                    }
                }
                // Same final expression as interpreted, on the same
                // accumulator bits.
                if total_alpha <= 0.0 {
                    return 1; // proba 0.5 >= 0.5
                }
                u8::from(0.5 * (margin / total_alpha + 1.0) >= 0.5)
            }
            FlatMember::Forest { roots, depths } => {
                let n = roots.len();
                let mut votes = 0usize;
                let mut done = 0;
                while done + 4 <= n {
                    let group =
                        [roots[done], roots[done + 1], roots[done + 2], roots[done + 3]];
                    let depth = depths[done]
                        .max(depths[done + 1])
                        .max(depths[done + 2])
                        .max(depths[done + 3]);
                    let probas = self.arena.eval4_trees(group, depth, row);
                    for (lane, proba) in probas.into_iter().enumerate() {
                        votes += usize::from(proba >= 0.5);
                        let remaining = n - (done + lane) - 1;
                        if 2 * votes >= n || 2 * (votes + remaining) < n {
                            return u8::from(2 * votes >= n);
                        }
                    }
                    done += 4;
                }
                for (k, &root) in roots[done..].iter().enumerate() {
                    votes += usize::from(self.arena.eval(root, row) >= 0.5);
                    let remaining = n - (done + k) - 1;
                    if 2 * votes >= n || 2 * (votes + remaining) < n {
                        break;
                    }
                }
                u8::from(2 * votes >= n)
            }
            _ => u8::from(self.predict_proba_row(member, row) >= 0.5),
        }
    }

    /// Hard 0/1 predictions for one bucket of rows served by the same
    /// member: `out[k]` is the prediction for `rows[idxs[k]]`.
    ///
    /// Large ensembles (node footprint over [`STAGE_MAJOR_MIN_NODES`])
    /// evaluate **stage-major**: each stage's tree walks every
    /// still-undecided row before the next stage starts, so one small
    /// tree stays cache-hot across the whole bucket instead of the whole
    /// ensemble being re-streamed per row — and within a stage the tree
    /// walks **four rows in lockstep** ([`NodeArena::eval4_rows`]), four
    /// independent load chains hiding each other's L1 latency. Small
    /// members run row-major instead (the whole member is already
    /// cache-resident; see [`STAGE_MAJOR_MIN_NODES`]). Per row, the
    /// accumulator sequence and early-exit points are exactly those of
    /// [`Self::predict_row`] (stage order is preserved; decided rows
    /// merely stop participating), so the labels are identical either
    /// way.
    pub fn predict_bucket(&self, member: usize, rows: &[&[f64]], idxs: &[u32]) -> Vec<u8> {
        if self.footprints[member] < STAGE_MAJOR_MIN_NODES {
            return idxs.iter().map(|&i| self.predict_row(member, rows[i as usize])).collect();
        }
        match &self.members[member] {
            FlatMember::Boost { stages, depths, suffix, .. } => {
                let guard = suffix[0] * 1e-9;
                let n = idxs.len();
                let mut out = vec![0u8; n];
                let mut margin = vec![0.0f64; n];
                let mut active: Vec<u32> = (0..n as u32).collect();
                let mut probas = vec![0.0f64; n];
                let mut total_alpha = 0.0f64;
                let mut all_stages_applied = true;
                for (i, &(root, alpha)) in stages.iter().enumerate() {
                    if active.is_empty() {
                        all_stages_applied = false;
                        break;
                    }
                    let bound = suffix[i + 1] + guard;
                    self.eval_active(root, depths[i], rows, idxs, &active, &mut probas);
                    // Second pass: fold the stage's votes in and compact
                    // the active list in place, preserving row order.
                    let mut kept = 0;
                    for q in 0..active.len() {
                        let j = active[q];
                        let vote = if probas[q] >= 0.5 { 1.0 } else { -1.0 };
                        let m = margin[j as usize] + alpha * vote;
                        margin[j as usize] = m;
                        if m.abs() > bound {
                            out[j as usize] = u8::from(m >= 0.0);
                        } else {
                            active[kept] = j;
                            kept += 1;
                        }
                    }
                    active.truncate(kept);
                    total_alpha += alpha;
                }
                // Rows that never cleared the guard saw every stage; give
                // them the interpreted proba expression verbatim.
                debug_assert!(active.is_empty() || all_stages_applied);
                for &j in &active {
                    out[j as usize] = if total_alpha <= 0.0 {
                        1 // proba 0.5 >= 0.5
                    } else {
                        u8::from(0.5 * (margin[j as usize] / total_alpha + 1.0) >= 0.5)
                    };
                }
                out
            }
            FlatMember::Forest { roots, depths } => {
                let n_trees = roots.len();
                let n = idxs.len();
                let mut votes = vec![0usize; n];
                let mut active: Vec<u32> = (0..n as u32).collect();
                let mut probas = vec![0.0f64; n];
                let mut out = vec![0u8; n];
                for (done, &root) in roots.iter().enumerate() {
                    if active.is_empty() {
                        break;
                    }
                    let remaining = n_trees - done - 1;
                    self.eval_active(root, depths[done], rows, idxs, &active, &mut probas);
                    let mut kept = 0;
                    for q in 0..active.len() {
                        let j = active[q];
                        let v = votes[j as usize] + usize::from(probas[q] >= 0.5);
                        votes[j as usize] = v;
                        if 2 * v >= n_trees || 2 * (v + remaining) < n_trees {
                            out[j as usize] = u8::from(2 * v >= n_trees);
                        } else {
                            active[kept] = j;
                            kept += 1;
                        }
                    }
                    active.truncate(kept);
                }
                // The last tree always decides (`remaining == 0` makes one
                // of the two conditions true), so no row is left over.
                out
            }
            _ => idxs.iter().map(|&i| self.predict_row(member, rows[i as usize])).collect(),
        }
    }

    /// Evaluates one tree on every active row, four rows in lockstep,
    /// writing `probas[q]` for `active[q]` (scalar tail for the last
    /// `< 4` rows). Each row's probability is bit-identical to
    /// [`NodeArena::eval`] on that row.
    #[inline]
    fn eval_active(
        &self,
        root: u32,
        depth: u32,
        rows: &[&[f64]],
        idxs: &[u32],
        active: &[u32],
        probas: &mut [f64],
    ) {
        let row_of = |j: u32| rows[idxs[j as usize] as usize];
        let mut q = 0;
        while q + 16 <= active.len() {
            let wide = std::array::from_fn(|l| row_of(active[q + l]));
            probas[q..q + 16]
                .copy_from_slice(&self.arena.eval_wide_rows::<16>(root, depth, wide));
            q += 16;
        }
        if q + 8 <= active.len() {
            let wide = std::array::from_fn(|l| row_of(active[q + l]));
            probas[q..q + 8]
                .copy_from_slice(&self.arena.eval_wide_rows::<8>(root, depth, wide));
            q += 8;
        }
        if q + 4 <= active.len() {
            let wide = std::array::from_fn(|l| row_of(active[q + l]));
            probas[q..q + 4].copy_from_slice(&self.arena.eval4_rows(root, depth, wide));
            q += 4;
        }
        for (p, &j) in probas[q..active.len()].iter_mut().zip(&active[q..]) {
            *p = self.arena.eval(root, row_of(j));
        }
    }
}

/// Member-record tags used by [`FlatPoolParts`].
const TAG_TREE: u32 = 0;
const TAG_BOOST: u32 = 1;
const TAG_FOREST: u32 = 2;
const TAG_LINEAR: u32 = 3;
const TAG_BAYES: u32 = 4;
const TAG_OPAQUE: u32 = 5;

/// A [`FlatPool`] disassembled into plain numeric slabs — the transport
/// form binary artifacts write and read. Everything lives in four typed
/// vectors (f64 node thresholds/probabilities, u32 node links, plus two
/// per-member payload slabs) addressed by fixed-width member records, so
/// a loader can rebuild the pool with validated bulk copies and no
/// per-field parsing.
///
/// `member_recs` holds five `u32`s per member:
/// `[tag, u32_off, u32_len, f64_off, f64_len]`, where the offsets/lengths
/// select the member's payload out of `member_u32` / `member_f64`.
/// Opaque members (kNN, external classifiers) carry an index into a
/// side-channel spec list returned by [`FlatPool::to_parts`] — their
/// parameters are not flat and travel as serialised [`ModelSpec`]s.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct FlatPoolParts {
    /// Node split thresholds (`+∞` on self-looping leaves).
    pub node_thr: Vec<f64>,
    /// Node split attributes (0 on leaves).
    pub node_feat: Vec<u32>,
    /// Node left-child links (self-index on leaves, `right = left + 1`).
    pub node_left: Vec<u32>,
    /// Leaf probabilities (0 on splits).
    pub node_proba: Vec<f64>,
    /// Per-member packed-node counts (bucket-strategy input).
    pub footprints: Vec<u32>,
    /// Five `u32`s per member: `[tag, u32_off, u32_len, f64_off, f64_len]`.
    pub member_recs: Vec<u32>,
    /// Concatenated per-member integer payloads.
    pub member_u32: Vec<u32>,
    /// Concatenated per-member float payloads.
    pub member_f64: Vec<f64>,
}

impl FlatPool {
    /// Disassembles the pool into [`FlatPoolParts`] plus the specs of its
    /// opaque members (index `i` in the spec list is referenced by the
    /// tag-5 member records).
    ///
    /// # Errors
    /// A detail string naming the member when an opaque member's
    /// classifier does not support persistence (`to_spec()` is `None`).
    pub fn to_parts(&self) -> Result<(FlatPoolParts, Vec<ModelSpec>), String> {
        let mut parts = FlatPoolParts {
            node_thr: self.arena.nodes.iter().map(|n| n.thr).collect(),
            node_feat: self.arena.nodes.iter().map(|n| n.feat).collect(),
            node_left: self.arena.nodes.iter().map(|n| n.left).collect(),
            node_proba: self.arena.probas.clone(),
            footprints: self.footprints.clone(),
            ..FlatPoolParts::default()
        };
        let mut opaque = Vec::new();
        for member in &self.members {
            let u_off = parts.member_u32.len() as u32;
            let f_off = parts.member_f64.len() as u32;
            let tag = match member {
                FlatMember::Tree { root } => {
                    parts.member_u32.push(*root);
                    TAG_TREE
                }
                FlatMember::Boost { stages, depths, suffix, stumps } => {
                    parts.member_u32.push(stages.len() as u32);
                    parts.member_u32.push(u32::from(stumps.is_some()));
                    parts.member_u32.extend(stages.iter().map(|&(root, _)| root));
                    parts.member_u32.extend_from_slice(depths);
                    parts.member_f64.extend(stages.iter().map(|&(_, alpha)| alpha));
                    // The inflated suffix sums travel verbatim: they are
                    // derived, but re-deriving at load time would re-run
                    // float arithmetic the early-exit guard depends on.
                    parts.member_f64.extend_from_slice(suffix);
                    if let Some(slab) = stumps {
                        parts.member_u32.extend_from_slice(&slab.feats);
                        parts.member_f64.extend_from_slice(&slab.thrs);
                        parts.member_f64.extend(slab.salpha.iter().flatten().copied());
                    }
                    TAG_BOOST
                }
                FlatMember::Forest { roots, depths } => {
                    parts.member_u32.push(roots.len() as u32);
                    parts.member_u32.extend_from_slice(roots);
                    parts.member_u32.extend_from_slice(depths);
                    TAG_FOREST
                }
                FlatMember::Linear { attrs, weights, means, stds, bias } => {
                    parts.member_u32.push(attrs.len() as u32);
                    parts.member_u32.extend_from_slice(attrs);
                    parts.member_f64.extend_from_slice(weights);
                    parts.member_f64.extend_from_slice(means);
                    parts.member_f64.extend_from_slice(stds);
                    parts.member_f64.push(*bias);
                    TAG_LINEAR
                }
                FlatMember::Bayes { attrs, slab, log_prior } => {
                    parts.member_u32.push(attrs.len() as u32);
                    parts.member_u32.extend_from_slice(attrs);
                    parts.member_f64.extend(slab.iter().flatten().copied());
                    parts.member_f64.extend_from_slice(log_prior);
                    TAG_BAYES
                }
                FlatMember::Opaque(model) => {
                    let spec = model.to_spec().ok_or_else(|| {
                        format!("member {:?} does not support persistence", model.name())
                    })?;
                    parts.member_u32.push(opaque.len() as u32);
                    opaque.push(spec);
                    TAG_OPAQUE
                }
            };
            parts.member_recs.extend_from_slice(&[
                tag,
                u_off,
                parts.member_u32.len() as u32 - u_off,
                f_off,
                parts.member_f64.len() as u32 - f_off,
            ]);
        }
        Ok((parts, opaque))
    }

    /// Rebuilds a pool from its transport parts. Every structural
    /// invariant the evaluators rely on is re-validated — node links
    /// (splits point strictly forward with an in-range right sibling,
    /// leaves self-loop with a `+∞` threshold and attribute 0), split
    /// attributes within the `n_attrs`-wide row, payload offsets within
    /// their slabs, ensemble depths bounded by the arena — so damaged or
    /// hand-built parts surface as a typed detail string, never as a
    /// panic or an unterminated walk. `opaque` supplies the rebuilt
    /// classifiers for tag-5 members, in [`FlatPool::to_parts`] spec
    /// order.
    ///
    /// # Errors
    /// A human-readable detail string locating the first inconsistency.
    pub fn from_parts(
        parts: FlatPoolParts,
        opaque: &[Arc<dyn Classifier>],
        n_attrs: usize,
    ) -> Result<Self, String> {
        let n = parts.node_thr.len();
        if parts.node_feat.len() != n
            || parts.node_left.len() != n
            || parts.node_proba.len() != n
        {
            return Err(format!(
                "node slabs disagree on length: thr={n} feat={} left={} proba={}",
                parts.node_feat.len(),
                parts.node_left.len(),
                parts.node_proba.len()
            ));
        }
        for i in 0..n {
            let left = parts.node_left[i] as usize;
            if left == i {
                // Self-looping leaf: the lockstep evaluators keep
                // "stepping" on it, so its threshold must compare `⩽`
                // for every finite value and its feature read must stay
                // in range.
                if parts.node_thr[i] != f64::INFINITY {
                    return Err(format!("leaf node {i} has finite threshold"));
                }
                if parts.node_feat[i] != 0 {
                    return Err(format!("leaf node {i} has non-zero attribute"));
                }
            } else {
                if left <= i || left + 1 >= n {
                    return Err(format!(
                        "split node {i} links to invalid children {left}/{}",
                        left + 1
                    ));
                }
                if parts.node_feat[i] as usize >= n_attrs {
                    return Err(format!(
                        "split node {i} reads attribute {} of a {n_attrs}-wide row",
                        parts.node_feat[i]
                    ));
                }
            }
        }
        if !parts.member_recs.len().is_multiple_of(5) {
            return Err(format!(
                "member records hold {} values, not a multiple of 5",
                parts.member_recs.len()
            ));
        }
        let n_members = parts.member_recs.len() / 5;
        if parts.footprints.len() != n_members {
            return Err(format!(
                "{} footprints for {n_members} members",
                parts.footprints.len()
            ));
        }
        let check_root = |what: &str, m: usize, root: u32| {
            if (root as usize) < n {
                Ok(())
            } else {
                Err(format!("member {m} {what} root {root} outside {n}-node arena"))
            }
        };
        let check_attr = |what: &str, m: usize, attr: u32| {
            if (attr as usize) < n_attrs {
                Ok(())
            } else {
                Err(format!(
                    "member {m} {what} reads attribute {attr} of a {n_attrs}-wide row"
                ))
            }
        };
        let mut members = Vec::with_capacity(n_members);
        for (m, rec) in parts.member_recs.chunks_exact(5).enumerate() {
            let (tag, u_off, u_len, f_off, f_len) = (
                rec[0],
                rec[1] as usize,
                rec[2] as usize,
                rec[3] as usize,
                rec[4] as usize,
            );
            let u = parts
                .member_u32
                .get(u_off..u_off + u_len)
                .ok_or_else(|| format!("member {m} u32 payload out of range"))?;
            let f = parts
                .member_f64
                .get(f_off..f_off + f_len)
                .ok_or_else(|| format!("member {m} f64 payload out of range"))?;
            let shape = |ok: bool| {
                if ok {
                    Ok(())
                } else {
                    Err(format!("member {m} (tag {tag}) has malformed payload shape"))
                }
            };
            let member = match tag {
                TAG_TREE => {
                    shape(u.len() == 1 && f.is_empty())?;
                    check_root("tree", m, u[0])?;
                    FlatMember::Tree { root: u[0] }
                }
                TAG_BOOST => {
                    shape(u.len() >= 2)?;
                    let ns = u[0] as usize;
                    let has_stumps = match u[1] {
                        0 => false,
                        1 => true,
                        _ => return Err(format!("member {m} has invalid stump flag {}", u[1])),
                    };
                    shape(u.len() == 2 + 2 * ns + if has_stumps { ns } else { 0 })?;
                    shape(f.len() == 2 * ns + 1 + if has_stumps { 3 * ns } else { 0 })?;
                    let roots = &u[2..2 + ns];
                    let depths = &u[2 + ns..2 + 2 * ns];
                    for (&root, &depth) in roots.iter().zip(depths) {
                        check_root("boost stage", m, root)?;
                        if depth as usize > n {
                            return Err(format!("member {m} stage depth {depth} exceeds arena"));
                        }
                    }
                    let alphas = &f[..ns];
                    let suffix = f[ns..2 * ns + 1].to_vec();
                    let stumps = if has_stumps {
                        let feats = u[2 + 2 * ns..].to_vec();
                        for &feat in &feats {
                            check_attr("stump", m, feat)?;
                        }
                        let thrs = f[2 * ns + 1..3 * ns + 1].to_vec();
                        let salpha = f[3 * ns + 1..]
                            .chunks_exact(2)
                            .map(|p| [p[0], p[1]])
                            .collect();
                        Some(StumpSlab { feats, thrs, salpha })
                    } else {
                        None
                    };
                    FlatMember::Boost {
                        stages: roots.iter().copied().zip(alphas.iter().copied()).collect(),
                        depths: depths.to_vec(),
                        suffix,
                        stumps,
                    }
                }
                TAG_FOREST => {
                    shape(!u.is_empty())?;
                    let nt = u[0] as usize;
                    shape(u.len() == 1 + 2 * nt && f.is_empty())?;
                    let roots = &u[1..1 + nt];
                    let depths = &u[1 + nt..];
                    for (&root, &depth) in roots.iter().zip(depths) {
                        check_root("forest tree", m, root)?;
                        if depth as usize > n {
                            return Err(format!("member {m} tree depth {depth} exceeds arena"));
                        }
                    }
                    FlatMember::Forest { roots: roots.to_vec(), depths: depths.to_vec() }
                }
                TAG_LINEAR => {
                    shape(!u.is_empty())?;
                    let na = u[0] as usize;
                    shape(u.len() == 1 + na && f.len() == 3 * na + 1)?;
                    for &attr in &u[1..] {
                        check_attr("linear", m, attr)?;
                    }
                    FlatMember::Linear {
                        attrs: u[1..].to_vec(),
                        weights: f[..na].to_vec(),
                        means: f[na..2 * na].to_vec(),
                        stds: f[2 * na..3 * na].to_vec(),
                        bias: f[3 * na],
                    }
                }
                TAG_BAYES => {
                    shape(!u.is_empty())?;
                    let na = u[0] as usize;
                    shape(u.len() == 1 + na && f.len() == 6 * na + 2)?;
                    for &attr in &u[1..] {
                        check_attr("bayes", m, attr)?;
                    }
                    let slab = f[..6 * na]
                        .chunks_exact(6)
                        .map(|s| [s[0], s[1], s[2], s[3], s[4], s[5]])
                        .collect();
                    FlatMember::Bayes {
                        attrs: u[1..].to_vec(),
                        slab,
                        log_prior: [f[6 * na], f[6 * na + 1]],
                    }
                }
                TAG_OPAQUE => {
                    shape(u.len() == 1 && f.is_empty())?;
                    let idx = u[0] as usize;
                    let model = opaque.get(idx).ok_or_else(|| {
                        format!("member {m} references opaque spec {idx} of {}", opaque.len())
                    })?;
                    FlatMember::Opaque(Arc::clone(model))
                }
                _ => return Err(format!("member {m} carries unknown tag {tag}")),
            };
            members.push(member);
        }
        let nodes = (0..n)
            .map(|i| PackedNode {
                thr: parts.node_thr[i],
                feat: parts.node_feat[i],
                left: parts.node_left[i],
            })
            .collect();
        Ok(Self {
            arena: NodeArena { nodes, probas: parts.node_proba },
            members,
            footprints: parts.footprints,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bayes::GaussianNb;
    use crate::boost::{AdaBoost, AdaBoostParams};
    use crate::forest::{RandomForest, RandomForestParams};
    use crate::knn_model::KnnClassifier;
    use crate::linear::{LogisticParams, LogisticRegression};
    use crate::tree::{SplitCriterion, TreeParams};
    use falcc_dataset::{Dataset, Schema};
    use rand::rngs::StdRng;
    use rand::Rng;
    use rand::SeedableRng;

    fn blobs(n: usize, d: usize, seed: u64) -> Dataset {
        let schema = Schema::new(
            (0..d).map(|j| format!("x{j}")).collect(),
            vec![],
            "y",
        )
        .unwrap();
        let mut rng = StdRng::seed_from_u64(seed);
        let mut rows = Vec::new();
        let mut labels = Vec::new();
        for i in 0..n {
            let c = i % 2;
            let centre = if c == 0 { -1.0 } else { 1.0 };
            rows.push((0..d).map(|_| centre + rng.gen_range(-2.0..2.0)).collect());
            labels.push(c as u8);
        }
        Dataset::from_rows(schema, rows, labels).unwrap()
    }

    fn all_models(ds: &Dataset) -> Vec<Arc<dyn Classifier>> {
        let attrs: Vec<usize> = (0..ds.n_attrs()).collect();
        let idx: Vec<usize> = (0..ds.len()).collect();
        let tree_params = TreeParams {
            max_depth: 5,
            min_samples_leaf: 2,
            criterion: SplitCriterion::Gini,
            max_features: None,
        };
        let boost_tree = TreeParams { max_depth: 3, ..tree_params };
        let forest_tree = TreeParams { max_depth: 4, max_features: Some(2), ..tree_params };
        vec![
            Arc::new(DecisionTree::fit(ds, &attrs, &idx, None, &tree_params, 7)),
            Arc::new(AdaBoost::fit(
                ds,
                &attrs,
                &idx,
                None,
                &AdaBoostParams { n_estimators: 12, tree: boost_tree },
                3,
            )),
            Arc::new(RandomForest::fit(
                ds,
                &attrs,
                &idx,
                &RandomForestParams {
                    n_estimators: 9,
                    tree: forest_tree,
                    sample_fraction: 0.8,
                },
                5,
            )),
            Arc::new(LogisticRegression::fit(ds, &attrs, &idx, &LogisticParams::default())),
            Arc::new(GaussianNb::fit(ds, &attrs, &idx)),
            Arc::new(KnnClassifier::fit(ds, &attrs, &idx, 5)),
        ]
    }

    #[test]
    fn every_member_kind_is_bit_identical_to_interpreted() {
        let ds = blobs(300, 3, 11);
        let models = all_models(&ds);
        let flat = FlatPool::compile(&models);
        assert_eq!(flat.len(), models.len());
        assert!(flat.n_nodes() > 0);

        let mut rng = StdRng::seed_from_u64(99);
        for trial in 0..200 {
            let row: Vec<f64> = if trial < 100 {
                ds.row(trial % ds.len()).to_vec()
            } else {
                (0..ds.n_attrs()).map(|_| rng.gen_range(-5.0..5.0)).collect()
            };
            for (i, model) in models.iter().enumerate() {
                let interp = model.predict_proba_row(&row);
                let compiled = flat.predict_proba_row(i, &row);
                assert_eq!(
                    interp.to_bits(),
                    compiled.to_bits(),
                    "member {i} ({}) diverged on trial {trial}: {interp} vs {compiled}",
                    model.name(),
                );
                assert_eq!(model.predict_row(&row), flat.predict_row(i, &row));
            }
        }
    }

    #[test]
    fn ensembles_share_one_arena() {
        let ds = blobs(200, 2, 4);
        let models = all_models(&ds);
        let flat = FlatPool::compile(&models);
        // Arena holds the single tree + all boost stages + all forest
        // trees in one slab.
        assert!(flat.n_nodes() >= 1 + 12 + 9);
        assert_eq!(flat.arena.len(), flat.arena.nodes.len());
    }

    #[test]
    fn empty_pool_compiles_to_empty() {
        let flat = FlatPool::compile(&[]);
        assert!(flat.is_empty());
        assert!(flat.arena.is_empty());
        assert_eq!(flat.len(), 0);
        let (parts, opaque) = flat.to_parts().unwrap();
        assert!(opaque.is_empty());
        let rebuilt = FlatPool::from_parts(parts, &[], 0).unwrap();
        assert!(rebuilt.is_empty());
    }

    #[test]
    fn parts_round_trip_is_bit_identical_for_every_member_kind() {
        let ds = blobs(300, 3, 17);
        let models = all_models(&ds);
        let flat = FlatPool::compile(&models);
        let (parts, opaque_specs) = flat.to_parts().unwrap();
        // Only kNN lacks a flat form in this pool.
        assert_eq!(opaque_specs.len(), 1);
        let opaque: Vec<Arc<dyn Classifier>> =
            opaque_specs.into_iter().map(|s| s.into_classifier()).collect();
        let rebuilt = FlatPool::from_parts(parts.clone(), &opaque, ds.n_attrs()).unwrap();
        assert_eq!(rebuilt.len(), flat.len());
        assert_eq!(rebuilt.n_nodes(), flat.n_nodes());

        let mut rng = StdRng::seed_from_u64(5);
        for trial in 0..150 {
            let row: Vec<f64> = if trial < 75 {
                ds.row(trial % ds.len()).to_vec()
            } else {
                (0..ds.n_attrs()).map(|_| rng.gen_range(-5.0..5.0)).collect()
            };
            for i in 0..flat.len() {
                assert_eq!(
                    flat.predict_proba_row(i, &row).to_bits(),
                    rebuilt.predict_proba_row(i, &row).to_bits(),
                    "member {i} diverged after parts round trip on trial {trial}"
                );
                assert_eq!(flat.predict_row(i, &row), rebuilt.predict_row(i, &row));
            }
        }
        // A second disassembly of the rebuilt pool reproduces the parts.
        let (again, _) = rebuilt.to_parts().unwrap();
        assert_eq!(again, parts);
    }

    #[test]
    fn from_parts_rejects_structural_damage() {
        let ds = blobs(200, 3, 23);
        let models = all_models(&ds);
        let flat = FlatPool::compile(&models);
        let (parts, opaque_specs) = flat.to_parts().unwrap();
        let opaque: Vec<Arc<dyn Classifier>> =
            opaque_specs.into_iter().map(|s| s.into_classifier()).collect();

        // Baseline sanity: the pristine parts load.
        assert!(FlatPool::from_parts(parts.clone(), &opaque, ds.n_attrs()).is_ok());

        // A split pointing backwards would loop forever in eval().
        let split = (0..parts.node_left.len())
            .find(|&i| parts.node_left[i] as usize != i)
            .unwrap();
        let mut damaged = parts.clone();
        damaged.node_left[split] = 0;
        assert!(FlatPool::from_parts(damaged, &opaque, ds.n_attrs()).is_err());

        // A leaf with a finite threshold breaks the lockstep walks.
        let leaf = (0..parts.node_left.len())
            .find(|&i| parts.node_left[i] as usize == i)
            .unwrap();
        let mut damaged = parts.clone();
        damaged.node_thr[leaf] = 0.0;
        assert!(FlatPool::from_parts(damaged, &opaque, ds.n_attrs()).is_err());

        // A split reading past the row width.
        let mut damaged = parts.clone();
        damaged.node_feat[split] = ds.n_attrs() as u32;
        assert!(FlatPool::from_parts(damaged, &opaque, ds.n_attrs()).is_err());

        // Member payloads escaping their slab.
        let mut damaged = parts.clone();
        damaged.member_recs[2] = u32::MAX;
        assert!(FlatPool::from_parts(damaged, &opaque, ds.n_attrs()).is_err());

        // Unknown member tag.
        let mut damaged = parts.clone();
        damaged.member_recs[0] = 77;
        assert!(FlatPool::from_parts(damaged, &opaque, ds.n_attrs()).is_err());

        // Opaque index past the spec list.
        let mut damaged = parts;
        let opaque_rec = damaged
            .member_recs
            .chunks_exact(5)
            .position(|rec| rec[0] == 5)
            .unwrap();
        damaged.member_u32[damaged.member_recs[opaque_rec * 5 + 1] as usize] = 9;
        assert!(FlatPool::from_parts(damaged, &opaque, ds.n_attrs()).is_err());
    }
}
