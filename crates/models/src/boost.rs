//! AdaBoost over weighted CART trees.
//!
//! The paper's diverse-model-training component (§3.3) uses AdaBoost with
//! decision-tree base estimators as the default strategy, hyper-tuned over
//! `n_estimators ∈ {5, 20}`, `max_depth ∈ {1, 7}` and the split criterion.
//! This is the classic discrete AdaBoost (SAMME with two classes): each
//! round trains a tree on the current sample weights, computes the weighted
//! error `ε`, the stage weight `α = ½·ln((1−ε)/ε)`, and re-weights samples
//! multiplicatively.

use crate::traits::Classifier;
use crate::tree::{DecisionTree, TreeParams};
use falcc_dataset::{AttrId, Dataset};

/// AdaBoost hyperparameters.
#[derive(Debug, Clone, Copy)]
pub struct AdaBoostParams {
    /// Number of boosting rounds (trees).
    pub n_estimators: usize,
    /// Base-estimator tree parameters.
    pub tree: TreeParams,
}

impl Default for AdaBoostParams {
    fn default() -> Self {
        Self { n_estimators: 20, tree: TreeParams { max_depth: 1, ..Default::default() } }
    }
}

/// A trained AdaBoost ensemble.
#[derive(Debug, Clone, serde::Serialize, serde::Deserialize)]
pub struct AdaBoost {
    stages: Vec<(DecisionTree, f64)>,
    name: String,
}

impl AdaBoost {
    /// Fits the ensemble on the rows of `ds` selected by `indices` using
    /// the attributes in `attrs`. `initial_weights`, when given (parallel
    /// to `indices`), seeds the boosting distribution — the hook FairBoost
    /// uses to pre-emphasise unfairly treated samples.
    ///
    /// # Panics
    /// Panics on empty `indices`/`attrs` or mismatched weight length.
    pub fn fit(
        ds: &Dataset,
        attrs: &[AttrId],
        indices: &[usize],
        initial_weights: Option<&[f64]>,
        params: &AdaBoostParams,
        seed: u64,
    ) -> Self {
        assert!(!indices.is_empty(), "cannot boost on zero samples");
        assert!(params.n_estimators > 0, "need at least one boosting round");
        let n = indices.len();
        let mut w: Vec<f64> = match initial_weights {
            Some(init) => {
                assert_eq!(init.len(), n, "one initial weight per sample");
                let total: f64 = init.iter().sum();
                assert!(total > 0.0, "initial weights must have positive mass");
                init.iter().map(|v| v / total).collect()
            }
            None => vec![1.0 / n as f64; n],
        };

        let mut stages = Vec::with_capacity(params.n_estimators);
        for round in 0..params.n_estimators {
            let tree =
                DecisionTree::fit(ds, attrs, indices, Some(&w), &params.tree, seed ^ round as u64);
            let preds: Vec<u8> =
                indices.iter().map(|&i| tree.predict_row(ds.row(i))).collect();
            let err: f64 = indices
                .iter()
                .zip(&preds)
                .zip(&w)
                .filter(|((&i, &p), _)| p != ds.label(i))
                .map(|(_, &wi)| wi)
                .sum();

            if err <= 1e-12 {
                // Perfect weak learner: give it a large but finite weight
                // and stop — further rounds cannot change anything.
                stages.push((tree, 10.0));
                break;
            }
            if err >= 0.5 {
                // Weak learner no better than chance on this distribution;
                // scikit-learn stops here unless it is the first round.
                if stages.is_empty() {
                    stages.push((tree, 1e-10));
                }
                break;
            }
            let alpha = 0.5 * ((1.0 - err) / err).ln();
            // Re-weight: misclassified up by e^α, correct down by e^−α.
            let mut total = 0.0;
            for (k, &i) in indices.iter().enumerate() {
                let factor =
                    if preds[k] != ds.label(i) { alpha.exp() } else { (-alpha).exp() };
                w[k] *= factor;
                total += w[k];
            }
            for wk in w.iter_mut() {
                *wk /= total;
            }
            stages.push((tree, alpha));
        }

        let name = format!(
            "adaboost[T={},d={},{}]",
            params.n_estimators,
            params.tree.max_depth,
            params.tree.criterion.short_name()
        );
        Self { stages, name }
    }

    /// Number of fitted stages (≤ `n_estimators` due to early stopping).
    pub fn n_stages(&self) -> usize {
        self.stages.len()
    }

    /// The `(tree, alpha)` stages in boosting order, for compilation into
    /// flat form (see [`crate::flat`]).
    pub(crate) fn stages(&self) -> &[(DecisionTree, f64)] {
        &self.stages
    }
}

impl Classifier for AdaBoost {
    fn to_spec(&self) -> Option<crate::persist::ModelSpec> {
        Some(crate::persist::ModelSpec::Boost(self.clone()))
    }

    fn predict_proba_row(&self, row: &[f64]) -> f64 {
        // Weighted vote in {−1, +1} margin space, squashed to [0, 1].
        let mut margin = 0.0;
        let mut total_alpha = 0.0;
        for (tree, alpha) in &self.stages {
            let vote = if tree.predict_row(row) == 1 { 1.0 } else { -1.0 };
            margin += alpha * vote;
            total_alpha += alpha;
        }
        if total_alpha <= 0.0 {
            return 0.5;
        }
        // Normalised margin in [−1, 1] → probability in [0, 1].
        0.5 * (margin / total_alpha + 1.0)
    }

    fn name(&self) -> &str {
        &self.name
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tree::SplitCriterion;
    use falcc_dataset::Schema;
    use rand::rngs::StdRng;
    use rand::Rng;
    use rand::SeedableRng;

    /// A dataset a single stump cannot solve but boosting stumps can:
    /// label = 1 iff x ∈ [−1, 1] (needs two thresholds).
    fn interval_dataset(n: usize, seed: u64) -> Dataset {
        let schema = Schema::new(vec!["x".into()], vec![], "y").unwrap();
        let mut rng = StdRng::seed_from_u64(seed);
        let rows: Vec<Vec<f64>> =
            (0..n).map(|_| vec![rng.gen_range(-3.0..3.0)]).collect();
        let labels: Vec<u8> =
            rows.iter().map(|r| u8::from(r[0].abs() <= 1.0)).collect();
        Dataset::from_rows(schema, rows, labels).unwrap()
    }

    fn accuracy_on(model: &dyn Classifier, ds: &Dataset) -> f64 {
        let correct = (0..ds.len())
            .filter(|&i| model.predict_row(ds.row(i)) == ds.label(i))
            .count();
        correct as f64 / ds.len() as f64
    }

    #[test]
    fn boosting_stumps_beats_a_single_stump() {
        let ds = interval_dataset(600, 1);
        let idx: Vec<usize> = (0..ds.len()).collect();
        let stump_params = TreeParams { max_depth: 1, ..Default::default() };
        let stump = DecisionTree::fit(&ds, &[0], &idx, None, &stump_params, 0);
        let boost_params = AdaBoostParams {
            n_estimators: 25,
            tree: TreeParams { max_depth: 1, ..Default::default() },
        };
        let boosted = AdaBoost::fit(&ds, &[0], &idx, None, &boost_params, 0);
        let acc_stump = accuracy_on(&stump, &ds);
        let acc_boost = accuracy_on(&boosted, &ds);
        assert!(
            acc_boost > acc_stump + 0.1,
            "boosted {acc_boost} vs stump {acc_stump}"
        );
        assert!(acc_boost > 0.9, "boosted accuracy {acc_boost}");
    }

    #[test]
    fn early_stops_on_perfect_learner() {
        // Trivially separable data: the first tree is perfect.
        let schema = Schema::new(vec!["x".into()], vec![], "y").unwrap();
        let rows: Vec<Vec<f64>> = (0..20).map(|i| vec![i as f64]).collect();
        let labels: Vec<u8> = (0..20).map(|i| u8::from(i >= 10)).collect();
        let ds = Dataset::from_rows(schema, rows, labels).unwrap();
        let params = AdaBoostParams {
            n_estimators: 50,
            tree: TreeParams { max_depth: 3, ..Default::default() },
        };
        let model = AdaBoost::fit(&ds, &[0], &(0..20).collect::<Vec<_>>(), None, &params, 0);
        assert_eq!(model.n_stages(), 1);
        assert!((accuracy_on(&model, &ds) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn initial_weights_bias_the_ensemble() {
        // Two clusters with contradictory labels; upweighting one cluster
        // should make its label win everywhere a stump can't separate.
        let schema = Schema::new(vec!["x".into()], vec![], "y").unwrap();
        let rows: Vec<Vec<f64>> = (0..10).map(|_| vec![0.0]).collect();
        let labels: Vec<u8> = (0..10).map(|i| u8::from(i < 5)).collect();
        let ds = Dataset::from_rows(schema, rows, labels).unwrap();
        let idx: Vec<usize> = (0..10).collect();
        let params = AdaBoostParams::default();
        // Heavy weight on the positive half.
        let mut w = vec![1.0; 10];
        for wi in w.iter_mut().take(5) {
            *wi = 50.0;
        }
        let model = AdaBoost::fit(&ds, &[0], &idx, Some(&w), &params, 0);
        assert_eq!(model.predict_row(&[0.0]), 1);
        // And the mirror image.
        let mut w2 = vec![1.0; 10];
        for wi in w2.iter_mut().skip(5) {
            *wi = 50.0;
        }
        let model2 = AdaBoost::fit(&ds, &[0], &idx, Some(&w2), &params, 0);
        assert_eq!(model2.predict_row(&[0.0]), 0);
    }

    #[test]
    fn proba_is_bounded_and_monotone_with_margin() {
        let ds = interval_dataset(300, 2);
        let idx: Vec<usize> = (0..ds.len()).collect();
        let params = AdaBoostParams {
            n_estimators: 15,
            tree: TreeParams { max_depth: 1, criterion: SplitCriterion::Entropy, ..Default::default() },
        };
        let model = AdaBoost::fit(&ds, &[0], &idx, None, &params, 3);
        for i in 0..ds.len() {
            let p = model.predict_proba_row(ds.row(i));
            assert!((0.0..=1.0).contains(&p), "proba {p}");
        }
        // The centre of the interval should look more positive than the
        // far tails.
        assert!(model.predict_proba_row(&[0.0]) > model.predict_proba_row(&[2.9]));
    }

    #[test]
    fn deterministic_per_seed() {
        let ds = interval_dataset(200, 4);
        let idx: Vec<usize> = (0..ds.len()).collect();
        let params = AdaBoostParams::default();
        let a = AdaBoost::fit(&ds, &[0], &idx, None, &params, 11);
        let b = AdaBoost::fit(&ds, &[0], &idx, None, &params, 11);
        for i in 0..ds.len() {
            assert_eq!(a.predict_row(ds.row(i)), b.predict_row(ds.row(i)));
        }
    }

    #[test]
    #[should_panic(expected = "zero samples")]
    fn empty_input_panics() {
        let ds = interval_dataset(10, 5);
        AdaBoost::fit(&ds, &[0], &[], None, &AdaBoostParams::default(), 0);
    }
}
