//! CART decision trees with per-sample weights.
//!
//! This is the base estimator of both AdaBoost (which needs weighted
//! training) and the random forest (which needs per-node feature
//! subsampling), mirroring scikit-learn's `DecisionTreeClassifier` in the
//! parameters the paper's grid search varies: maximum depth and the
//! splitting criterion (gini or entropy).
//!
//! Two builders produce **bit-identical** trees:
//!
//! * [`DecisionTree::fit`] — the production *presorted* builder: every
//!   candidate feature's sample order is sorted **once** per tree
//!   (O(d·n log n)) and threaded through the recursion by stable
//!   partitioning, so each node costs O(d·m) instead of O(d·m log m).
//! * [`DecisionTree::fit_naive`] — the textbook builder that re-sorts at
//!   every node; kept as the reference implementation for the
//!   proof-of-equivalence harness and the kernel benchmarks.
//!
//! Equivalence holds exactly (not just approximately) because both
//! builders visit candidate splits in the same order with the same
//! floating-point summation sequence: stable sorts and *fully stable*
//! partitions keep tied feature values in original-slot order in both
//! paths, so every weight prefix sum accumulates in the same order.

use crate::traits::Classifier;
use falcc_dataset::{AttrId, Dataset};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

/// Split impurity criterion.
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub enum SplitCriterion {
    /// Gini impurity `2·p·(1−p)`.
    Gini,
    /// Shannon entropy `−p·ln p − (1−p)·ln(1−p)`.
    Entropy,
}

impl SplitCriterion {
    #[inline]
    fn impurity(self, p: f64) -> f64 {
        let p = p.clamp(0.0, 1.0);
        match self {
            Self::Gini => 2.0 * p * (1.0 - p),
            Self::Entropy => {
                if p <= 0.0 || p >= 1.0 {
                    0.0
                } else {
                    -(p * p.ln() + (1.0 - p) * (1.0 - p).ln())
                }
            }
        }
    }

    /// Short name used in model identifiers.
    pub fn short_name(self) -> &'static str {
        match self {
            Self::Gini => "gini",
            Self::Entropy => "entropy",
        }
    }
}

/// Decision-tree hyperparameters.
#[derive(Debug, Clone, Copy)]
pub struct TreeParams {
    /// Maximum tree depth (root = depth 0); a depth-1 tree is a stump.
    pub max_depth: usize,
    /// Minimum number of samples in each leaf.
    pub min_samples_leaf: usize,
    /// Split criterion.
    pub criterion: SplitCriterion,
    /// When set, each node considers only a random subset of this many
    /// candidate features (random-forest style).
    pub max_features: Option<usize>,
}

impl Default for TreeParams {
    fn default() -> Self {
        Self {
            max_depth: 7,
            min_samples_leaf: 1,
            criterion: SplitCriterion::Gini,
            max_features: None,
        }
    }
}

#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub(crate) enum Node {
    Leaf { proba: f64 },
    Split { attr: AttrId, threshold: f64, left: u32, right: u32 },
}

/// A trained CART decision tree.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct DecisionTree {
    nodes: Vec<Node>,
    name: String,
}

fn check_fit_inputs(attrs: &[AttrId], indices: &[usize], weights: Option<&[f64]>) {
    assert!(!indices.is_empty(), "cannot fit a tree on zero samples");
    assert!(!attrs.is_empty(), "cannot fit a tree on zero features");
    if let Some(w) = weights {
        assert_eq!(w.len(), indices.len(), "one weight per training sample");
    }
}

fn tree_name(params: &TreeParams) -> String {
    format!("cart[d={},{}]", params.max_depth, params.criterion.short_name())
}

impl DecisionTree {
    /// Fits a tree on the rows of `ds` selected by `indices`, using only
    /// the attributes in `attrs`. `weights`, when given, is parallel to
    /// `indices`.
    ///
    /// Uses the presorted builder; [`Self::fit_naive`] produces a
    /// bit-identical tree by re-sorting at every node.
    ///
    /// # Panics
    /// Panics if `indices` is empty, `attrs` is empty, or `weights` has the
    /// wrong length.
    pub fn fit(
        ds: &Dataset,
        attrs: &[AttrId],
        indices: &[usize],
        weights: Option<&[f64]>,
        params: &TreeParams,
        seed: u64,
    ) -> Self {
        check_fit_inputs(attrs, indices, weights);
        let mut builder = FastBuilder::new(ds, attrs, indices, weights, params, seed);
        builder.build(0, indices.len(), 0);
        Self { nodes: builder.nodes, name: tree_name(params) }
    }

    /// Reference implementation of [`Self::fit`]: the textbook CART loop
    /// that re-sorts the node's samples for every candidate feature at
    /// every node. Kept for the equivalence proptests and the
    /// `exp_kernels` benchmark; produces a bit-identical tree.
    ///
    /// # Panics
    /// Same conditions as [`Self::fit`].
    pub fn fit_naive(
        ds: &Dataset,
        attrs: &[AttrId],
        indices: &[usize],
        weights: Option<&[f64]>,
        params: &TreeParams,
        seed: u64,
    ) -> Self {
        check_fit_inputs(attrs, indices, weights);
        let owned_weights: Vec<f64> = match weights {
            Some(w) => w.to_vec(),
            None => vec![1.0; indices.len()],
        };
        let mut builder = Builder {
            ds,
            attrs,
            params,
            rng: StdRng::seed_from_u64(seed ^ 0xa076_1d64_78bd_642f),
            nodes: Vec::new(),
        };
        // Working set: (dataset row index, weight).
        let mut items: Vec<(usize, f64)> =
            indices.iter().copied().zip(owned_weights).collect();
        builder.build(&mut items, 0);
        Self { nodes: builder.nodes, name: tree_name(params) }
    }

    /// Number of nodes (diagnostics).
    pub fn n_nodes(&self) -> usize {
        self.nodes.len()
    }

    /// The node slab, for compilation into [`crate::flat::NodeArena`]
    /// form (children precede parents; the root is the last node).
    pub(crate) fn nodes(&self) -> &[Node] {
        &self.nodes
    }

    /// Depth of the tree (diagnostics; 0 = single leaf).
    pub fn depth(&self) -> usize {
        fn depth_of(nodes: &[Node], at: usize) -> usize {
            match &nodes[at] {
                Node::Leaf { .. } => 0,
                Node::Split { left, right, .. } => {
                    1 + depth_of(nodes, *left as usize).max(depth_of(nodes, *right as usize))
                }
            }
        }
        if self.nodes.is_empty() {
            0
        } else {
            depth_of(&self.nodes, self.nodes.len() - 1)
        }
    }
}

impl Classifier for DecisionTree {
    fn to_spec(&self) -> Option<crate::persist::ModelSpec> {
        Some(crate::persist::ModelSpec::Tree(self.clone()))
    }

    fn predict_proba_row(&self, row: &[f64]) -> f64 {
        let mut at = self.nodes.len() - 1; // root is the last-built node
        loop {
            match &self.nodes[at] {
                Node::Leaf { proba } => return *proba,
                Node::Split { attr, threshold, left, right } => {
                    at = if row[*attr] <= *threshold { *left as usize } else { *right as usize };
                }
            }
        }
    }

    fn name(&self) -> &str {
        &self.name
    }
}

struct Builder<'a> {
    ds: &'a Dataset,
    attrs: &'a [AttrId],
    params: &'a TreeParams,
    rng: StdRng,
    nodes: Vec<Node>,
}

impl Builder<'_> {
    /// Builds the subtree over `items`, returning its node id. Children are
    /// pushed before parents, so the subtree root is always the last node.
    fn build(&mut self, items: &mut [(usize, f64)], depth: usize) -> u32 {
        let total_w: f64 = items.iter().map(|&(_, w)| w).sum();
        let pos_w: f64 =
            items.iter().filter(|&&(i, _)| self.ds.label(i) == 1).map(|&(_, w)| w).sum();
        let p = if total_w > 0.0 { pos_w / total_w } else { 0.5 };

        let stop = depth >= self.params.max_depth
            || items.len() < 2 * self.params.min_samples_leaf
            || p <= 0.0
            || p >= 1.0
            || total_w <= 0.0;
        if stop {
            self.nodes.push(Node::Leaf { proba: p });
            return (self.nodes.len() - 1) as u32;
        }

        let candidates = self.candidate_features();
        let parent_imp = self.params.criterion.impurity(p);
        let mut best: Option<(AttrId, f64, f64)> = None; // (attr, threshold, gain)
        let mut evaluated = 0u64;

        for &attr in &candidates {
            // Sort items by this attribute's value.
            let mut sorted: Vec<(f64, f64, bool)> = items
                .iter()
                .map(|&(i, w)| (self.ds.value(i, attr), w, self.ds.label(i) == 1))
                .collect();
            sorted.sort_by(|a, b| a.0.partial_cmp(&b.0).expect("finite features"));
            let mut left_w = 0.0;
            let mut left_pos = 0.0;
            for cut in 1..sorted.len() {
                let (v_prev, w_prev, y_prev) = sorted[cut - 1];
                left_w += w_prev;
                left_pos += if y_prev { w_prev } else { 0.0 };
                let v_here = sorted[cut].0;
                if v_here <= v_prev {
                    continue; // no boundary between equal values
                }
                if cut < self.params.min_samples_leaf
                    || sorted.len() - cut < self.params.min_samples_leaf
                {
                    continue;
                }
                let right_w = total_w - left_w;
                if left_w <= 0.0 || right_w <= 0.0 {
                    continue;
                }
                let right_pos = pos_w - left_pos;
                let imp_l = self.params.criterion.impurity(left_pos / left_w);
                let imp_r = self.params.criterion.impurity(right_pos / right_w);
                let gain =
                    parent_imp - (left_w * imp_l + right_w * imp_r) / total_w;
                evaluated += 1;
                // Accept the best split even at zero gain (scikit-learn
                // semantics): XOR-like concepts have zero first-level gain
                // and are only separable if we split anyway.
                if gain > best.map_or(f64::NEG_INFINITY, |(_, _, g)| g) {
                    best = Some((attr, 0.5 * (v_prev + v_here), gain));
                }
            }
        }
        falcc_telemetry::counters::SPLITS_EVALUATED.add(evaluated);

        let Some((attr, threshold, _)) = best else {
            self.nodes.push(Node::Leaf { proba: p });
            return (self.nodes.len() - 1) as u32;
        };

        // Partition in place around the threshold.
        let split_at = partition(items, |&(i, _)| self.ds.value(i, attr) <= threshold);
        // A degenerate partition can only happen through floating-point
        // pathologies; guard by emitting a leaf.
        if split_at == 0 || split_at == items.len() {
            self.nodes.push(Node::Leaf { proba: p });
            return (self.nodes.len() - 1) as u32;
        }
        let (left_items, right_items) = items.split_at_mut(split_at);
        let left = self.build(left_items, depth + 1);
        let right = self.build(right_items, depth + 1);
        self.nodes.push(Node::Split { attr, threshold, left, right });
        (self.nodes.len() - 1) as u32
    }

    fn candidate_features(&mut self) -> Vec<AttrId> {
        sample_candidates(self.attrs, self.params.max_features, &mut self.rng)
    }
}

/// Per-node candidate features, shared by both builders so they consume
/// the RNG identically: all attributes, or a shuffled subset of
/// `max_features` (random-forest style).
fn sample_candidates(
    attrs: &[AttrId],
    max_features: Option<usize>,
    rng: &mut StdRng,
) -> Vec<AttrId> {
    match max_features {
        Some(m) if m < attrs.len() => {
            let mut pool: Vec<AttrId> = attrs.to_vec();
            pool.shuffle(rng);
            pool.truncate(m.max(1));
            pool
        }
        _ => attrs.to_vec(),
    }
}

/// Fully stable partition: moves items satisfying `pred` to the front,
/// preserving the relative order of **both** sides, and returns the
/// boundary. Full stability is what makes the presorted builder's
/// summation order provably equal to the naive builder's.
fn partition<T: Copy>(items: &mut [T], mut pred: impl FnMut(&T) -> bool) -> usize {
    let mut right: Vec<T> = Vec::new();
    let mut store = 0;
    for i in 0..items.len() {
        let item = items[i];
        if pred(&item) {
            items[store] = item;
            store += 1;
        } else {
            right.push(item);
        }
    }
    items[store..].copy_from_slice(&right);
    store
}

/// The presorted CART builder behind [`DecisionTree::fit`].
///
/// Sample "slots" are positions into the caller's `indices`; per candidate
/// attribute the slots are sorted by value **once**, and every node owns a
/// contiguous segment `[lo, hi)` of all per-attribute orders plus the
/// naive builder's item order. Splitting a node stably partitions each of
/// those arrays in O(d·m) — no re-sorting below the root.
struct FastBuilder<'a> {
    params: &'a TreeParams,
    attrs: &'a [AttrId],
    rng: StdRng,
    nodes: Vec<Node>,
    n: usize,
    /// `vals[a_idx * n + slot]` — candidate attribute values per slot.
    vals: Vec<f64>,
    /// `orders[a_idx * n ..][lo..hi]` — slots sorted by attribute value
    /// (ties in original slot order, matching the naive stable sort).
    orders: Vec<u32>,
    /// Slots in the naive builder's item order (original order filtered by
    /// the path predicates); the weight/label sums iterate this order.
    items: Vec<u32>,
    /// Per slot: sample weight.
    weights: Vec<f64>,
    /// Per slot: `label == 1`.
    is_pos: Vec<bool>,
    /// Per slot scratch: side of the current split.
    goes_left: Vec<bool>,
    /// Partition scratch (right side), reused across nodes.
    scratch: Vec<u32>,
}

impl<'a> FastBuilder<'a> {
    fn new(
        ds: &Dataset,
        attrs: &'a [AttrId],
        indices: &[usize],
        weights: Option<&[f64]>,
        params: &'a TreeParams,
        seed: u64,
    ) -> Self {
        let n = indices.len();
        let d = attrs.len();
        let mut vals = Vec::with_capacity(d * n);
        for &attr in attrs {
            vals.extend(indices.iter().map(|&row| ds.value(row, attr)));
        }
        let mut orders = Vec::with_capacity(d * n);
        for a_idx in 0..d {
            let base = a_idx * n;
            let mut order: Vec<u32> = (0..n as u32).collect();
            // Stable: tied values keep ascending slot order, exactly like
            // the naive builder's per-node stable sort.
            order.sort_by(|&s1, &s2| {
                vals[base + s1 as usize]
                    .partial_cmp(&vals[base + s2 as usize])
                    .expect("finite features")
            });
            orders.extend_from_slice(&order);
        }
        Self {
            params,
            attrs,
            rng: StdRng::seed_from_u64(seed ^ 0xa076_1d64_78bd_642f),
            nodes: Vec::new(),
            n,
            vals,
            orders,
            items: (0..n as u32).collect(),
            weights: match weights {
                Some(w) => w.to_vec(),
                None => vec![1.0; n],
            },
            is_pos: indices.iter().map(|&row| ds.label(row) == 1).collect(),
            goes_left: vec![false; n],
            scratch: Vec::with_capacity(n),
        }
    }

    /// Position of `attr` within the candidate attribute list.
    fn attr_index(&self, attr: AttrId) -> usize {
        self.attrs.iter().position(|&a| a == attr).expect("candidate attribute")
    }

    /// Builds the subtree over segment `[lo, hi)`, returning its node id.
    /// Children are pushed before parents, exactly like the naive builder.
    fn build(&mut self, lo: usize, hi: usize, depth: usize) -> u32 {
        let m = hi - lo;
        let mut total_w = 0.0;
        let mut pos_w = 0.0;
        for &slot in &self.items[lo..hi] {
            let w = self.weights[slot as usize];
            total_w += w;
            if self.is_pos[slot as usize] {
                pos_w += w;
            }
        }
        let p = if total_w > 0.0 { pos_w / total_w } else { 0.5 };

        let stop = depth >= self.params.max_depth
            || m < 2 * self.params.min_samples_leaf
            || p <= 0.0
            || p >= 1.0
            || total_w <= 0.0;
        if stop {
            self.nodes.push(Node::Leaf { proba: p });
            return (self.nodes.len() - 1) as u32;
        }

        let candidates =
            sample_candidates(self.attrs, self.params.max_features, &mut self.rng);
        let parent_imp = self.params.criterion.impurity(p);
        let mut best: Option<(AttrId, f64, f64)> = None; // (attr, threshold, gain)
        let mut evaluated = 0u64;

        for &attr in &candidates {
            let base = self.attr_index(attr) * self.n;
            let order = &self.orders[base + lo..base + hi];
            let mut left_w = 0.0;
            let mut left_pos = 0.0;
            for cut in 1..m {
                let s_prev = order[cut - 1] as usize;
                let v_prev = self.vals[base + s_prev];
                let w_prev = self.weights[s_prev];
                left_w += w_prev;
                left_pos += if self.is_pos[s_prev] { w_prev } else { 0.0 };
                let v_here = self.vals[base + order[cut] as usize];
                if v_here <= v_prev {
                    continue; // no boundary between equal values
                }
                if cut < self.params.min_samples_leaf
                    || m - cut < self.params.min_samples_leaf
                {
                    continue;
                }
                let right_w = total_w - left_w;
                if left_w <= 0.0 || right_w <= 0.0 {
                    continue;
                }
                let right_pos = pos_w - left_pos;
                let imp_l = self.params.criterion.impurity(left_pos / left_w);
                let imp_r = self.params.criterion.impurity(right_pos / right_w);
                let gain =
                    parent_imp - (left_w * imp_l + right_w * imp_r) / total_w;
                evaluated += 1;
                if gain > best.map_or(f64::NEG_INFINITY, |(_, _, g)| g) {
                    best = Some((attr, 0.5 * (v_prev + v_here), gain));
                }
            }
        }
        falcc_telemetry::counters::SPLITS_EVALUATED.add(evaluated);

        let Some((attr, threshold, _)) = best else {
            self.nodes.push(Node::Leaf { proba: p });
            return (self.nodes.len() - 1) as u32;
        };

        // Mark each slot's side, then stably partition the item order and
        // every per-attribute order around the same boundary.
        let split_base = self.attr_index(attr) * self.n;
        let mut n_left = 0;
        for &slot in &self.items[lo..hi] {
            let left = self.vals[split_base + slot as usize] <= threshold;
            self.goes_left[slot as usize] = left;
            n_left += usize::from(left);
        }
        // Degenerate partitions can only happen through floating-point
        // pathologies; guard by emitting a leaf (as the naive builder does).
        if n_left == 0 || n_left == m {
            self.nodes.push(Node::Leaf { proba: p });
            return (self.nodes.len() - 1) as u32;
        }
        partition_slots(&mut self.items[lo..hi], &self.goes_left, &mut self.scratch);
        for a_idx in 0..self.attrs.len() {
            let base = a_idx * self.n;
            partition_slots(
                &mut self.orders[base + lo..base + hi],
                &self.goes_left,
                &mut self.scratch,
            );
        }

        let mid = lo + n_left;
        let left = self.build(lo, mid, depth + 1);
        let right = self.build(mid, hi, depth + 1);
        self.nodes.push(Node::Split { attr, threshold, left, right });
        (self.nodes.len() - 1) as u32
    }
}

/// Stable in-place partition of a slot segment by the `goes_left` flags,
/// using `scratch` to hold the right side.
fn partition_slots(segment: &mut [u32], goes_left: &[bool], scratch: &mut Vec<u32>) {
    scratch.clear();
    let mut store = 0;
    for i in 0..segment.len() {
        let slot = segment[i];
        if goes_left[slot as usize] {
            segment[store] = slot;
            store += 1;
        } else {
            scratch.push(slot);
        }
    }
    segment[store..].copy_from_slice(scratch);
}

#[cfg(test)]
mod tests {
    use super::*;
    use falcc_dataset::Schema;

    fn xor_dataset() -> Dataset {
        // Label = a XOR b: needs depth ≥ 2.
        let schema = Schema::new(
            vec!["a".into(), "b".into()],
            vec![],
            "y",
        )
        .unwrap();
        let mut rows = Vec::new();
        let mut labels = Vec::new();
        for _ in 0..10 {
            for (a, b) in [(0.0, 0.0), (0.0, 1.0), (1.0, 0.0), (1.0, 1.0)] {
                rows.push(vec![a, b]);
                labels.push(u8::from((a as u8) ^ (b as u8) == 1));
            }
        }
        Dataset::from_rows(schema, rows, labels).unwrap()
    }

    fn all_indices(ds: &Dataset) -> Vec<usize> {
        (0..ds.len()).collect()
    }

    #[test]
    fn learns_xor_with_sufficient_depth() {
        let ds = xor_dataset();
        let idx = all_indices(&ds);
        let params = TreeParams { max_depth: 3, ..Default::default() };
        let tree = DecisionTree::fit(&ds, &[0, 1], &idx, None, &params, 0);
        for i in 0..ds.len() {
            assert_eq!(tree.predict_row(ds.row(i)), ds.label(i));
        }
    }

    #[test]
    fn stump_cannot_learn_xor() {
        let ds = xor_dataset();
        let idx = all_indices(&ds);
        let params = TreeParams { max_depth: 1, ..Default::default() };
        let tree = DecisionTree::fit(&ds, &[0, 1], &idx, None, &params, 0);
        let correct = (0..ds.len())
            .filter(|&i| tree.predict_row(ds.row(i)) == ds.label(i))
            .count();
        // XOR is impossible for a single split: at best 50%... actually up
        // to 75% with an unbalanced leaf rule is impossible here; exactly
        // 50% for balanced XOR data.
        assert!(correct <= ds.len() / 2, "stump got {correct}/{}", ds.len());
        assert!(tree.depth() <= 1);
    }

    #[test]
    fn respects_max_depth() {
        let ds = xor_dataset();
        let idx = all_indices(&ds);
        for d in 0..4 {
            let params = TreeParams { max_depth: d, ..Default::default() };
            let tree = DecisionTree::fit(&ds, &[0, 1], &idx, None, &params, 0);
            assert!(tree.depth() <= d, "depth {} exceeds {d}", tree.depth());
        }
    }

    #[test]
    fn weights_steer_the_split() {
        // One feature; labels disagree with the feature on a minority of
        // rows. With huge weights on the minority, the tree must flip.
        let schema = Schema::new(vec!["f".into()], vec![], "y").unwrap();
        let rows: Vec<Vec<f64>> = (0..10).map(|i| vec![i as f64]).collect();
        // Majority rule: f >= 5 → 1. Minority (rows 0,1): also labeled 1.
        let labels = vec![1, 1, 0, 0, 0, 1, 1, 1, 1, 1];
        let ds = Dataset::from_rows(schema, rows, labels).unwrap();
        let idx = all_indices(&ds);
        let params = TreeParams { max_depth: 1, ..Default::default() };

        let unweighted = DecisionTree::fit(&ds, &[0], &idx, None, &params, 0);
        // Unweighted stump splits around f=4.5 and predicts 0 for row 0.
        assert_eq!(unweighted.predict_row(&[0.0]), 0);

        let mut w = vec![1.0; 10];
        w[0] = 100.0;
        w[1] = 100.0;
        let weighted = DecisionTree::fit(&ds, &[0], &idx, Some(&w), &params, 0);
        // With rows 0/1 dominating, the left side must predict 1.
        assert_eq!(weighted.predict_row(&[0.0]), 1);
    }

    #[test]
    fn pure_node_is_a_leaf() {
        let schema = Schema::new(vec!["f".into()], vec![], "y").unwrap();
        let ds = Dataset::from_rows(
            schema,
            vec![vec![1.0], vec![2.0], vec![3.0]],
            vec![1, 1, 1],
        )
        .unwrap();
        let tree =
            DecisionTree::fit(&ds, &[0], &[0, 1, 2], None, &TreeParams::default(), 0);
        assert_eq!(tree.n_nodes(), 1);
        assert!((tree.predict_proba_row(&[9.9]) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn constant_features_yield_leaf() {
        let schema = Schema::new(vec!["f".into()], vec![], "y").unwrap();
        let ds = Dataset::from_rows(
            schema,
            vec![vec![5.0], vec![5.0], vec![5.0], vec![5.0]],
            vec![1, 0, 1, 0],
        )
        .unwrap();
        let tree =
            DecisionTree::fit(&ds, &[0], &[0, 1, 2, 3], None, &TreeParams::default(), 0);
        assert_eq!(tree.n_nodes(), 1);
        assert!((tree.predict_proba_row(&[5.0]) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn min_samples_leaf_is_enforced() {
        let schema = Schema::new(vec!["f".into()], vec![], "y").unwrap();
        let rows: Vec<Vec<f64>> = (0..8).map(|i| vec![i as f64]).collect();
        let labels = vec![1, 0, 0, 0, 0, 0, 0, 0];
        let ds = Dataset::from_rows(schema, rows, labels).unwrap();
        let params = TreeParams { max_depth: 5, min_samples_leaf: 3, ..Default::default() };
        let tree = DecisionTree::fit(&ds, &[0], &(0..8).collect::<Vec<_>>(), None, &params, 0);
        // Separating the single positive (row 0) would need a leaf of
        // size < 3, so no split can isolate it.
        assert!(tree.predict_proba_row(&[0.0]) < 0.5);
    }

    #[test]
    fn entropy_criterion_also_learns() {
        let ds = xor_dataset();
        let idx = all_indices(&ds);
        let params = TreeParams {
            max_depth: 3,
            criterion: SplitCriterion::Entropy,
            ..Default::default()
        };
        let tree = DecisionTree::fit(&ds, &[0, 1], &idx, None, &params, 0);
        for i in 0..ds.len() {
            assert_eq!(tree.predict_row(ds.row(i)), ds.label(i));
        }
    }

    #[test]
    fn feature_subsampling_uses_allowed_features_only() {
        let ds = xor_dataset();
        let idx = all_indices(&ds);
        let params = TreeParams {
            max_depth: 3,
            max_features: Some(1),
            ..Default::default()
        };
        // With one random feature per node it may or may not solve XOR, but
        // it must run and produce a valid tree.
        let tree = DecisionTree::fit(&ds, &[0, 1], &idx, None, &params, 42);
        assert!(tree.n_nodes() >= 1);
        let p = tree.predict_proba_row(&[1.0, 0.0]);
        assert!((0.0..=1.0).contains(&p));
    }

    #[test]
    fn deterministic_per_seed() {
        let ds = xor_dataset();
        let idx = all_indices(&ds);
        let params = TreeParams { max_depth: 3, max_features: Some(1), ..Default::default() };
        let a = DecisionTree::fit(&ds, &[0, 1], &idx, None, &params, 7);
        let b = DecisionTree::fit(&ds, &[0, 1], &idx, None, &params, 7);
        for i in 0..ds.len() {
            assert_eq!(a.predict_row(ds.row(i)), b.predict_row(ds.row(i)));
        }
    }

    #[test]
    #[should_panic(expected = "zero samples")]
    fn empty_training_set_panics() {
        let ds = xor_dataset();
        DecisionTree::fit(&ds, &[0, 1], &[], None, &TreeParams::default(), 0);
    }
}
