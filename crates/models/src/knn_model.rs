//! A k-nearest-neighbour classifier backed by the kd-tree substrate.
//!
//! Rounds out the "5 standard classifiers" pool configuration; also handy
//! as a maximally local baseline in tests.

use crate::traits::Classifier;
use falcc_clustering::KdTree;
use falcc_dataset::dataset::ProjectedMatrix;
use falcc_dataset::{AttrId, Dataset};

/// A trained kNN classifier (stores its training data).
#[derive(Debug, Clone, serde::Serialize, serde::Deserialize)]
pub struct KnnClassifier {
    attrs: Vec<AttrId>,
    tree: KdTree,
    labels: Vec<u8>,
    k: usize,
    name: String,
}

impl KnnClassifier {
    /// Builds the index over the rows of `ds` selected by `indices`, using
    /// the attributes in `attrs`.
    ///
    /// # Panics
    /// Panics on empty `indices`/`attrs` or `k == 0`.
    pub fn fit(ds: &Dataset, attrs: &[AttrId], indices: &[usize], k: usize) -> Self {
        assert!(!indices.is_empty(), "cannot fit on zero samples");
        assert!(!attrs.is_empty(), "cannot fit on zero features");
        assert!(k > 0, "k must be positive");
        let mut data = Vec::with_capacity(indices.len() * attrs.len());
        let mut labels = Vec::with_capacity(indices.len());
        for &i in indices {
            let row = ds.row(i);
            data.extend(attrs.iter().map(|&a| row[a]));
            labels.push(ds.label(i));
        }
        let matrix =
            ProjectedMatrix { data, n_cols: attrs.len(), n_rows: indices.len() };
        Self {
            attrs: attrs.to_vec(),
            tree: KdTree::build(matrix),
            labels,
            k,
            name: format!("knn[k={k}]"),
        }
    }
}

impl Classifier for KnnClassifier {
    fn to_spec(&self) -> Option<crate::persist::ModelSpec> {
        Some(crate::persist::ModelSpec::Knn(self.clone()))
    }

    fn predict_proba_row(&self, row: &[f64]) -> f64 {
        // When the trained attributes are the identity prefix (the common
        // "all features" configuration) the row can be sliced directly,
        // skipping a per-call query allocation.
        let identity = self.attrs.len() <= row.len()
            && self.attrs.iter().enumerate().all(|(i, &a)| a == i);
        let neighbors = if identity {
            self.tree.nearest(&row[..self.attrs.len()], self.k)
        } else {
            let query: Vec<f64> = self.attrs.iter().map(|&a| row[a]).collect();
            self.tree.nearest(&query, self.k)
        };
        if neighbors.is_empty() {
            return 0.5;
        }
        let pos = neighbors
            .iter()
            .filter(|&&(i, _)| self.labels[i] == 1)
            .count();
        pos as f64 / neighbors.len() as f64
    }

    fn name(&self) -> &str {
        &self.name
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use falcc_dataset::Schema;

    fn line_dataset() -> Dataset {
        let schema = Schema::new(vec!["x".into()], vec![], "y").unwrap();
        let rows: Vec<Vec<f64>> = (0..20).map(|i| vec![i as f64]).collect();
        let labels: Vec<u8> = (0..20).map(|i| u8::from(i >= 10)).collect();
        Dataset::from_rows(schema, rows, labels).unwrap()
    }

    #[test]
    fn predicts_by_neighbourhood_majority() {
        let ds = line_dataset();
        let idx: Vec<usize> = (0..20).collect();
        let model = KnnClassifier::fit(&ds, &[0], &idx, 3);
        assert_eq!(model.predict_row(&[1.0]), 0);
        assert_eq!(model.predict_row(&[18.0]), 1);
        // Right at the boundary the three neighbours are 9, 10, 11 (labels
        // 0, 1, 1) → positive.
        assert_eq!(model.predict_row(&[10.2]), 1);
    }

    #[test]
    fn proba_is_a_neighbour_fraction() {
        let ds = line_dataset();
        let idx: Vec<usize> = (0..20).collect();
        let model = KnnClassifier::fit(&ds, &[0], &idx, 4);
        let p = model.predict_proba_row(&[9.6]);
        // Neighbours of 9.6: 9, 10, 8, 11 → 2 positive of 4.
        assert!((p - 0.5).abs() < 1e-12, "p = {p}");
    }

    #[test]
    fn attribute_selection_applies_to_queries() {
        // Model trained on attr 1 only; attr 0 must be ignored.
        let schema = Schema::new(vec!["junk".into(), "x".into()], vec![], "y").unwrap();
        let rows: Vec<Vec<f64>> = (0..10).map(|i| vec![999.0, i as f64]).collect();
        let labels: Vec<u8> = (0..10).map(|i| u8::from(i >= 5)).collect();
        let ds = Dataset::from_rows(schema, rows, labels).unwrap();
        let model = KnnClassifier::fit(&ds, &[1], &(0..10).collect::<Vec<_>>(), 3);
        assert_eq!(model.predict_row(&[-12345.0, 8.0]), 1);
        assert_eq!(model.predict_row(&[12345.0, 1.0]), 0);
    }

    #[test]
    fn k_larger_than_training_set_is_graceful() {
        let ds = line_dataset();
        let model = KnnClassifier::fit(&ds, &[0], &[0, 1, 19], 50);
        let p = model.predict_proba_row(&[0.0]);
        assert!((p - 1.0 / 3.0).abs() < 1e-12, "p = {p}");
    }
}
