//! Trained model pools and model-combination enumeration.
//!
//! Diverse model training (paper §3.3) produces the set `M` of candidate
//! models and the candidate combinations `MC_cand`: every assignment of one
//! model per sensitive group such that the model was trained on data
//! comprising that group. Models trained on the whole dataset apply to all
//! groups; models trained on a single group's partition apply to that group
//! only (the "SBT"/split configuration of the FALCES papers).
//!
//! Diversity selection is greedy on the non-pairwise entropy of the pool's
//! predictions over an evaluation dataset, mirroring the paper's grid
//! search for a maximally diverse ensemble.

use crate::bayes::GaussianNb;
use crate::grid::{paper_grid, TrainerKind};
use crate::knn_model::KnnClassifier;
use crate::linear::{LogisticParams, LogisticRegression};
use crate::parallel::parallel_map;
use crate::persist::ModelSpec;
use crate::traits::{predict_dataset, Classifier};
use crate::tree::{DecisionTree, TreeParams};
use falcc_dataset::{Dataset, GroupId};
use falcc_metrics::shannon_entropy_diversity;
use std::sync::Arc;

/// Per-member checkpoint hook for
/// [`ModelPool::train_diverse_checkpointed`]. Slots are numbered in input
/// order — grid points first (`0..grid.len()`), split-training groups
/// after (`grid.len() + position`) — so load/store traffic is identical
/// at every thread count. A resumed slot skips refitting entirely; since
/// [`ModelSpec`] captures a model's full state, a revived member predicts
/// bit-identically to a freshly fitted one.
///
/// The hook lives here (and not in the checkpoint journal's crate) so
/// this crate stays free of persistence concerns; `store` is infallible
/// by signature — implementations buffer I/O errors and surface them
/// after training returns.
pub trait GridCheckpoint {
    /// Returns the previously journaled spec for `slot`, if any.
    fn load(&mut self, slot: usize) -> Option<ModelSpec>;
    /// Journals the spec fitted for `slot`.
    fn store(&mut self, slot: usize, spec: &ModelSpec);
}

/// A pool member: a trained model plus its applicability.
#[derive(Clone)]
pub struct TrainedModel {
    /// The classifier.
    pub model: Arc<dyn Classifier>,
    /// `None` → applicable to every group (trained on the full data);
    /// `Some(g)` → applicable only to group `g`.
    pub group: Option<GroupId>,
}

impl std::fmt::Debug for TrainedModel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TrainedModel")
            .field("name", &self.model.name())
            .field("group", &self.group)
            .finish()
    }
}

/// Configuration of diverse model training.
#[derive(Debug, Clone, Copy)]
pub struct PoolConfig {
    /// Trainer family (the paper defaults to AdaBoost).
    pub trainer: TrainerKind,
    /// Keep the `pool_size` most diversity-contributing models of the grid
    /// (0 keeps the whole grid).
    pub pool_size: usize,
    /// Also train one grid-best model per sensitive group on that group's
    /// partition (split training).
    pub split_by_group: bool,
    /// Candidates whose validation accuracy trails the best candidate by
    /// more than this margin are excluded *before* diversity selection.
    /// The default of 1.0 disables the floor — the paper selects purely by
    /// non-pairwise entropy; tighten this when the grid contains members
    /// too weak for the task (see the pool-size ablation).
    pub accuracy_margin: f64,
    /// RNG seed.
    pub seed: u64,
    /// Worker threads for grid fitting and prediction precompute
    /// (0 = available parallelism). Results are identical for every value:
    /// each grid point's seed is derived from its index, and outputs are
    /// merged in grid order (see [`crate::parallel`]).
    pub threads: usize,
}

impl Default for PoolConfig {
    fn default() -> Self {
        Self {
            trainer: TrainerKind::AdaBoost,
            pool_size: 5,
            split_by_group: false,
            accuracy_margin: 1.0,
            seed: 0,
            threads: 0,
        }
    }
}

/// A set of trained models ready for combination enumeration.
#[derive(Debug, Clone, Default)]
pub struct ModelPool {
    /// The pool members.
    pub models: Vec<TrainedModel>,
}

impl ModelPool {
    /// Wraps externally trained models (e.g. the fair classifiers of the
    /// `FALCC*` / `Decouple*` configurations).
    pub fn from_models(models: Vec<TrainedModel>) -> Self {
        Self { models }
    }

    /// Diverse model training: fits the paper's hyperparameter grid on
    /// `train`, then greedily keeps the subset of `cfg.pool_size` models
    /// whose joint predictions on `diversity_eval` have maximal
    /// non-pairwise entropy. With `split_by_group`, additionally trains one
    /// default-parameter model per group partition.
    ///
    /// # Panics
    /// Panics if `train` is empty (propagated from the trainers).
    pub fn train_diverse(train: &Dataset, diversity_eval: &Dataset, cfg: &PoolConfig) -> Self {
        Self::train_diverse_inner(train, diversity_eval, cfg, None)
    }

    /// [`Self::train_diverse`] with per-member checkpointing: slots the
    /// hook already holds are revived from their specs instead of
    /// refitted, and every freshly fitted slot is stored — in slot order,
    /// after the parallel fit, so the store sequence is deterministic.
    /// Each slot's RNG seed derives from its slot index exactly as in the
    /// uncheckpointed path, so the resulting pool is bit-identical
    /// whether training ran straight through, resumed, or used a
    /// different thread count.
    ///
    /// # Panics
    /// Panics if `train` is empty (propagated from the trainers).
    pub fn train_diverse_checkpointed(
        train: &Dataset,
        diversity_eval: &Dataset,
        cfg: &PoolConfig,
        ckpt: &mut dyn GridCheckpoint,
    ) -> Self {
        Self::train_diverse_inner(train, diversity_eval, cfg, Some(ckpt))
    }

    fn train_diverse_inner(
        train: &Dataset,
        diversity_eval: &Dataset,
        cfg: &PoolConfig,
        mut ckpt: Option<&mut dyn GridCheckpoint>,
    ) -> Self {
        let _sp = falcc_telemetry::span("pool.train_diverse");
        let attrs: Vec<usize> = (0..train.n_attrs()).collect();
        let all_idx: Vec<usize> = (0..train.len()).collect();
        let grid = paper_grid(cfg.trainer);
        falcc_telemetry::counters::POOL_GRID_POINTS.add(grid.len() as u64);
        // Grid points are independent: fit them in parallel. Each point's
        // seed is a function of its grid index only, and `parallel_map`
        // returns results in grid order, so the pool is identical for
        // every thread count. Worker spans parent under the grid-fit span
        // by explicit id with the grid index as ordinal, so the trace tree
        // is likewise identical for every thread count.
        let grid_sp = falcc_telemetry::span("pool.grid_fit");
        let grid_sp_id = grid_sp.id();
        let mut slots: Vec<Option<Arc<dyn Classifier>>> = (0..grid.len())
            .map(|i| {
                ckpt.as_deref_mut()
                    .and_then(|c| c.load(i))
                    .map(ModelSpec::into_classifier)
            })
            .collect();
        let missing: Vec<usize> = slots
            .iter()
            .enumerate()
            .filter_map(|(i, s)| s.is_none().then_some(i))
            .collect();
        let fitted = parallel_map(&missing, cfg.threads, |_, &i| {
            let _w = falcc_telemetry::span_under(grid_sp_id, "pool.grid_point", i as u64);
            grid[i].fit(train, &attrs, &all_idx, cfg.seed ^ (i as u64) << 8)
        });
        for (&i, model) in missing.iter().zip(&fitted) {
            if let Some(c) = ckpt.as_deref_mut() {
                if let Some(spec) = model.to_spec() {
                    c.store(i, &spec);
                }
            }
            slots[i] = Some(model.clone());
        }
        let candidates: Vec<Arc<dyn Classifier>> = slots.into_iter().flatten().collect();
        drop(grid_sp);

        let sel_sp = falcc_telemetry::span("pool.diversity_select");
        let keep = if cfg.pool_size == 0 || cfg.pool_size >= candidates.len() {
            (0..candidates.len()).collect()
        } else {
            let preds: Vec<Vec<u8>> = parallel_map(&candidates, cfg.threads, |_, m| {
                predict_dataset(m.as_ref(), diversity_eval)
            });
            // Accuracy floor: drop candidates far behind the best one.
            let labels = diversity_eval.labels();
            let accs: Vec<f64> = preds
                .iter()
                .map(|z| {
                    z.iter().zip(labels).filter(|(a, b)| a == b).count() as f64
                        / labels.len() as f64
                })
                .collect();
            let best_acc = accs.iter().cloned().fold(0.0, f64::max);
            let competitive: Vec<usize> = (0..candidates.len())
                .filter(|&i| accs[i] >= best_acc - cfg.accuracy_margin)
                .collect();
            if competitive.len() <= cfg.pool_size {
                competitive
            } else {
                let comp_preds: Vec<Vec<u8>> =
                    competitive.iter().map(|&i| preds[i].clone()).collect();
                greedy_diverse_subset(&comp_preds, cfg.pool_size)
                    .into_iter()
                    .map(|j| competitive[j])
                    .collect()
            }
        };

        drop(sel_sp);

        let mut models: Vec<TrainedModel> = keep
            .into_iter()
            .map(|i| TrainedModel { model: candidates[i].clone(), group: None })
            .collect();

        if cfg.split_by_group {
            let _split_sp = falcc_telemetry::span("pool.split_training");
            // Group partitions are likewise independent; seeds depend on
            // the group id, and the ordered merge keeps the pool layout
            // stable across thread counts. Checkpoint slots continue
            // after the grid (`grid.len() + position`); a group too small
            // to train on stores nothing and is cheaply re-skipped on
            // resume.
            let groups: Vec<GroupId> = train.group_index().ids().collect();
            let base = grid.len();
            let mut split_slots: Vec<Option<Option<TrainedModel>>> = groups
                .iter()
                .enumerate()
                .map(|(pos, &g)| {
                    ckpt.as_deref_mut().and_then(|c| c.load(base + pos)).map(|spec| {
                        Some(TrainedModel { model: spec.into_classifier(), group: Some(g) })
                    })
                })
                .collect();
            let missing: Vec<usize> = split_slots
                .iter()
                .enumerate()
                .filter_map(|(pos, s)| s.is_none().then_some(pos))
                .collect();
            let fitted = parallel_map(&missing, cfg.threads, |_, &pos| {
                let g = groups[pos];
                let idx = train.indices_of_group(g);
                if idx.len() < 4 {
                    return None; // too small to train on
                }
                let point = grid[grid.len() - 1]; // strongest configuration
                let model = point.fit(train, &attrs, &idx, cfg.seed ^ 0xbeef ^ g.0 as u64);
                Some(TrainedModel { model, group: Some(g) })
            });
            for (&pos, trained) in missing.iter().zip(&fitted) {
                if let (Some(c), Some(t)) = (ckpt.as_deref_mut(), trained) {
                    if let Some(spec) = t.model.to_spec() {
                        c.store(base + pos, &spec);
                    }
                }
                split_slots[pos] = Some(trained.clone());
            }
            models.extend(split_slots.into_iter().flatten().flatten());
        }
        Self { models }
    }

    /// The "5 standard classifiers" pool used by the Decouple/FALCES
    /// baselines' default configuration: CART, AdaBoost, logistic
    /// regression, Gaussian naive Bayes, kNN — all trained on the whole
    /// dataset.
    pub fn standard_five(train: &Dataset, seed: u64) -> Self {
        let attrs: Vec<usize> = (0..train.n_attrs()).collect();
        let idx: Vec<usize> = (0..train.len()).collect();
        let tree = TreeParams { max_depth: 7, ..Default::default() };
        let models: Vec<TrainedModel> = vec![
            TrainedModel {
                model: Arc::new(DecisionTree::fit(train, &attrs, &idx, None, &tree, seed)),
                group: None,
            },
            TrainedModel {
                model: crate::grid::GridPoint {
                    trainer: TrainerKind::AdaBoost,
                    n_estimators: 20,
                    max_depth: 1,
                    criterion: crate::tree::SplitCriterion::Gini,
                }
                .fit(train, &attrs, &idx, seed ^ 1),
                group: None,
            },
            TrainedModel {
                model: Arc::new(LogisticRegression::fit(
                    train,
                    &attrs,
                    &idx,
                    &LogisticParams::default(),
                )),
                group: None,
            },
            TrainedModel {
                model: Arc::new(GaussianNb::fit(train, &attrs, &idx)),
                group: None,
            },
            TrainedModel {
                model: Arc::new(KnnClassifier::fit(train, &attrs, &idx, 15)),
                group: None,
            },
        ];
        Self { models }
    }

    /// Number of models in the pool.
    pub fn len(&self) -> usize {
        self.models.len()
    }

    /// `true` when the pool has no models.
    pub fn is_empty(&self) -> bool {
        self.models.is_empty()
    }

    /// Removes the members at `failed` indices (duplicates and
    /// out-of-range entries are ignored), returning how many were removed.
    /// Used by the fault-tolerant offline intake to quarantine members
    /// whose training diverged; remaining members keep their relative
    /// order, so the surviving pool layout is deterministic.
    pub fn quarantine(&mut self, failed: &[usize]) -> usize {
        if failed.is_empty() {
            return 0;
        }
        let before = self.models.len();
        let mut drop = vec![false; before];
        for &i in failed {
            if i < before {
                drop[i] = true;
            }
        }
        let mut keep_iter = drop.iter();
        self.models.retain(|_| !*keep_iter.next().unwrap_or(&false));
        before - self.models.len()
    }

    /// Indices of members that look unsound on an evaluation probe: a
    /// member whose predicted probability is NaN/±∞ on any of the first
    /// `probe_rows` rows of `eval` has diverged during training and would
    /// poison assessment. Deterministic: the probe is a fixed prefix.
    pub fn unsound_members(&self, eval: &Dataset, probe_rows: usize) -> Vec<usize> {
        let probe = probe_rows.min(eval.len());
        self.models
            .iter()
            .enumerate()
            .filter(|(_, m)| {
                (0..probe).any(|i| !m.model.predict_proba_row(eval.row(i)).is_finite())
            })
            .map(|(i, _)| i)
            .collect()
    }

    /// Pool-member indices applicable to group `g`.
    pub fn applicable(&self, g: GroupId) -> Vec<usize> {
        self.models
            .iter()
            .enumerate()
            .filter(|(_, m)| m.group.is_none() || m.group == Some(g))
            .map(|(i, _)| i)
            .collect()
    }

    /// Non-pairwise entropy of the pool's predictions on `eval`.
    pub fn entropy_diversity(&self, eval: &Dataset) -> f64 {
        let preds: Vec<Vec<u8>> = self
            .models
            .iter()
            .map(|m| predict_dataset(m.model.as_ref(), eval))
            .collect();
        shannon_entropy_diversity(&preds)
    }
}

/// Greedy forward selection maximising ensemble entropy: seeds with the
/// pair of models with maximal pairwise disagreement, then adds whichever
/// model lifts the subset entropy most.
fn greedy_diverse_subset(preds: &[Vec<u8>], k: usize) -> Vec<usize> {
    let n_models = preds.len();
    if k >= n_models {
        return (0..n_models).collect();
    }
    // Seed pair: maximal disagreement.
    let mut best_pair = (0, 1, f64::MIN);
    for i in 0..n_models {
        for j in i + 1..n_models {
            let disagree = preds[i]
                .iter()
                .zip(&preds[j])
                .filter(|(a, b)| a != b)
                .count() as f64;
            if disagree > best_pair.2 {
                best_pair = (i, j, disagree);
            }
        }
    }
    let mut selected = vec![best_pair.0, best_pair.1];
    while selected.len() < k {
        let mut best = (usize::MAX, f64::MIN);
        for cand in 0..n_models {
            if selected.contains(&cand) {
                continue;
            }
            let mut subset: Vec<Vec<u8>> =
                selected.iter().map(|&i| preds[i].clone()).collect();
            subset.push(preds[cand].clone());
            let e = shannon_entropy_diversity(&subset);
            if e > best.1 {
                best = (cand, e);
            }
        }
        if best.0 == usize::MAX {
            break;
        }
        selected.push(best.0);
    }
    selected.sort_unstable();
    selected.truncate(k);
    selected
}

/// Enumerates the candidate model combinations `MC_cand`: every assignment
/// of one applicable pool index per group. Returned as vectors indexed by
/// `GroupId`.
///
/// Returns an empty list if any group has no applicable model (the caller
/// decides how to handle that — FALCC's gap filling prevents it).
pub fn enumerate_combinations(pool: &ModelPool, n_groups: usize) -> Vec<Vec<usize>> {
    let per_group: Vec<Vec<usize>> =
        (0..n_groups).map(|g| pool.applicable(GroupId(g as u16))).collect();
    if per_group.iter().any(|v| v.is_empty()) {
        return Vec::new();
    }
    let total: usize = per_group.iter().map(|v| v.len()).product();
    let mut combos = Vec::with_capacity(total);
    let mut current = vec![0usize; n_groups];
    fill(&per_group, 0, &mut current, &mut combos);
    combos
}

fn fill(
    per_group: &[Vec<usize>],
    depth: usize,
    current: &mut Vec<usize>,
    out: &mut Vec<Vec<usize>>,
) {
    if depth == per_group.len() {
        out.push(current.clone());
        return;
    }
    for &m in &per_group[depth] {
        current[depth] = m;
        fill(per_group, depth + 1, current, out);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use falcc_dataset::synthetic::{generate, SyntheticConfig};
    use falcc_dataset::{SplitRatios, ThreeWaySplit};

    fn small_split() -> ThreeWaySplit {
        let mut cfg = SyntheticConfig::social(0.3);
        cfg.n = 600;
        let ds = generate(&cfg, 1).unwrap();
        ThreeWaySplit::split(&ds, SplitRatios::PAPER, 42).unwrap()
    }

    #[test]
    fn diverse_training_produces_requested_pool_size() {
        let split = small_split();
        let cfg = PoolConfig { pool_size: 4, ..Default::default() };
        let pool = ModelPool::train_diverse(&split.train, &split.validation, &cfg);
        assert_eq!(pool.len(), 4);
        assert!(pool.models.iter().all(|m| m.group.is_none()));
    }

    #[test]
    fn pool_size_zero_keeps_whole_grid() {
        let split = small_split();
        let cfg = PoolConfig { pool_size: 0, ..Default::default() };
        let pool = ModelPool::train_diverse(&split.train, &split.validation, &cfg);
        assert_eq!(pool.len(), 8);
    }

    #[test]
    fn diversity_selection_beats_arbitrary_prefix() {
        // The greedy subset should be at least as diverse as the first k
        // grid models.
        let split = small_split();
        let all = ModelPool::train_diverse(
            &split.train,
            &split.validation,
            &PoolConfig { pool_size: 0, ..Default::default() },
        );
        // Margin 1.0 disables the accuracy floor, isolating the greedy
        // entropy selection this test is about.
        let selected = ModelPool::train_diverse(
            &split.train,
            &split.validation,
            &PoolConfig { pool_size: 3, accuracy_margin: 1.0, ..Default::default() },
        );
        let prefix = ModelPool::from_models(all.models[..3].to_vec());
        let e_selected = selected.entropy_diversity(&split.validation);
        let e_prefix = prefix.entropy_diversity(&split.validation);
        assert!(
            e_selected >= e_prefix - 1e-9,
            "greedy {e_selected} < prefix {e_prefix}"
        );
    }

    #[test]
    fn split_training_adds_group_specific_models() {
        let split = small_split();
        let cfg = PoolConfig { pool_size: 2, split_by_group: true, ..Default::default() };
        let pool = ModelPool::train_diverse(&split.train, &split.validation, &cfg);
        let group_models: Vec<_> =
            pool.models.iter().filter(|m| m.group.is_some()).collect();
        assert_eq!(group_models.len(), 2, "one per binary group");
        // Applicability: group 0 sees global models + its own.
        let app0 = pool.applicable(GroupId(0));
        assert_eq!(app0.len(), 3);
        let app1 = pool.applicable(GroupId(1));
        assert_eq!(app1.len(), 3);
        assert_ne!(app0, app1);
    }

    #[test]
    fn standard_five_trains_five_distinct_families() {
        let split = small_split();
        let pool = ModelPool::standard_five(&split.train, 7);
        assert_eq!(pool.len(), 5);
        let names: std::collections::HashSet<&str> =
            pool.models.iter().map(|m| m.model.name()).collect();
        assert_eq!(names.len(), 5, "models should have distinct names: {names:?}");
    }

    #[test]
    fn combination_enumeration_is_cartesian() {
        let split = small_split();
        let pool = ModelPool::train_diverse(
            &split.train,
            &split.validation,
            &PoolConfig { pool_size: 3, ..Default::default() },
        );
        let combos = enumerate_combinations(&pool, 2);
        assert_eq!(combos.len(), 9, "3 models × 2 groups → 9 combinations");
        // Every combination is distinct.
        let set: std::collections::HashSet<&Vec<usize>> = combos.iter().collect();
        assert_eq!(set.len(), 9);
    }

    #[test]
    fn combinations_respect_group_applicability() {
        let split = small_split();
        let cfg = PoolConfig { pool_size: 2, split_by_group: true, ..Default::default() };
        let pool = ModelPool::train_diverse(&split.train, &split.validation, &cfg);
        let combos = enumerate_combinations(&pool, 2);
        // 3 applicable per group → 9 combos.
        assert_eq!(combos.len(), 9);
        for combo in &combos {
            for (g, &m) in combo.iter().enumerate() {
                let model = &pool.models[m];
                assert!(
                    model.group.is_none() || model.group == Some(GroupId(g as u16)),
                    "model {m} not applicable to group {g}"
                );
            }
        }
    }

    #[test]
    fn empty_applicability_yields_no_combos() {
        let pool = ModelPool::from_models(vec![]);
        assert!(enumerate_combinations(&pool, 2).is_empty());
    }

    #[test]
    fn quarantine_removes_members_in_order() {
        let split = small_split();
        let mut pool = ModelPool::standard_five(&split.train, 7);
        let names: Vec<String> =
            pool.models.iter().map(|m| m.model.name().to_string()).collect();
        // Duplicates and out-of-range indices are tolerated.
        let removed = pool.quarantine(&[1, 3, 3, 99]);
        assert_eq!(removed, 2);
        assert_eq!(pool.len(), 3);
        let survivors: Vec<String> =
            pool.models.iter().map(|m| m.model.name().to_string()).collect();
        assert_eq!(survivors, vec![names[0].clone(), names[2].clone(), names[4].clone()]);
        assert_eq!(pool.quarantine(&[]), 0);
    }

    #[derive(Default)]
    struct MemoryCheckpoint {
        slots: std::collections::BTreeMap<usize, ModelSpec>,
        stored: Vec<usize>,
        loaded: Vec<usize>,
    }

    impl GridCheckpoint for MemoryCheckpoint {
        fn load(&mut self, slot: usize) -> Option<ModelSpec> {
            let hit = self.slots.get(&slot).cloned();
            if hit.is_some() {
                self.loaded.push(slot);
            }
            hit
        }
        fn store(&mut self, slot: usize, spec: &ModelSpec) {
            self.stored.push(slot);
            self.slots.insert(slot, spec.clone());
        }
    }

    #[test]
    fn checkpointed_training_resumes_bit_identically() {
        let split = small_split();
        let cfg = PoolConfig { pool_size: 3, split_by_group: true, ..Default::default() };
        let plain = ModelPool::train_diverse(&split.train, &split.validation, &cfg);

        // First checkpointed run stores every slot in slot order.
        let mut ckpt = MemoryCheckpoint::default();
        let first =
            ModelPool::train_diverse_checkpointed(&split.train, &split.validation, &cfg, &mut ckpt);
        assert_eq!(ckpt.stored, (0..10).collect::<Vec<_>>(), "8 grid + 2 split slots");
        assert!(ckpt.loaded.is_empty());

        // Second run revives everything without storing anything new.
        let partial: Vec<usize> = ckpt.stored.clone();
        ckpt.stored.clear();
        let resumed =
            ModelPool::train_diverse_checkpointed(&split.train, &split.validation, &cfg, &mut ckpt);
        assert!(ckpt.stored.is_empty(), "no refits on a full journal");
        assert_eq!(ckpt.loaded, partial);

        // Partial journal: drop half the slots, resume refits exactly those.
        let mut half = MemoryCheckpoint::default();
        for (&slot, spec) in ckpt.slots.iter().filter(|(s, _)| *s % 2 == 0) {
            half.slots.insert(slot, spec.clone());
        }
        let halfway =
            ModelPool::train_diverse_checkpointed(&split.train, &split.validation, &cfg, &mut half);
        assert_eq!(half.stored, vec![1, 3, 5, 7, 9]);

        // All four pools predict identically row for row.
        for pool in [&first, &resumed, &halfway] {
            assert_eq!(pool.len(), plain.len());
            for (a, b) in plain.models.iter().zip(&pool.models) {
                assert_eq!(a.group, b.group);
                assert_eq!(a.model.name(), b.model.name());
                for i in 0..split.test.len() {
                    assert_eq!(
                        a.model.predict_proba_row(split.test.row(i)).to_bits(),
                        b.model.predict_proba_row(split.test.row(i)).to_bits(),
                        "probability drift at row {i}"
                    );
                }
            }
        }
    }

    #[test]
    fn unsound_members_flags_non_finite_probabilities() {
        use crate::traits::Classifier;
        use std::sync::Arc;
        struct Diverged;
        impl Classifier for Diverged {
            fn predict_proba_row(&self, _row: &[f64]) -> f64 {
                f64::NAN
            }
            fn name(&self) -> &str {
                "diverged"
            }
        }
        let split = small_split();
        let mut pool = ModelPool::standard_five(&split.train, 7);
        pool.models.push(TrainedModel { model: Arc::new(Diverged), group: None });
        let bad = pool.unsound_members(&split.validation, 16);
        assert_eq!(bad, vec![5], "only the diverged member is flagged");
    }
}
