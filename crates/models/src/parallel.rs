//! Deterministic scoped-thread parallelism.
//!
//! Every parallel site in the workspace funnels through this module, and
//! all of it obeys one rule: **the result is a pure function of the input
//! and the master seed, never of the thread count**. Two ingredients make
//! that hold:
//!
//! * work items are mapped by *index* with [`parallel_map`] /
//!   [`parallel_map_range`], and the per-item closure receives only the
//!   item's index and data — nothing thread-local. Results are collected
//!   per contiguous chunk and merged back in input order, so the output
//!   `Vec` is identical whether the map ran on 1 thread or 16;
//! * work items that need randomness derive their seed from the master
//!   seed and their own index via [`derive_seed`] — never from a shared
//!   RNG that threads would race on, and never from a thread id.
//!
//! The implementation uses `std::thread::scope` so borrowed inputs can be
//! shared without `Arc` plumbing and without any dependency on an external
//! thread-pool crate.

/// Resolves a requested thread count: `0` means "use the machine's
/// available parallelism", anything else is taken literally.
pub fn resolve_threads(requested: usize) -> usize {
    if requested == 0 {
        std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
    } else {
        requested
    }
}

/// Maps `f` over `0..n` on up to `threads` scoped threads (0 = auto),
/// returning results in index order.
///
/// `f(i)` must depend only on `i` and captured shared state — under that
/// contract the output is bit-identical for every thread count.
pub fn parallel_map_range<R, F>(n: usize, threads: usize, f: F) -> Vec<R>
where
    R: Send,
    F: Fn(usize) -> R + Sync,
{
    let threads = resolve_threads(threads).min(n.max(1));
    if threads <= 1 || n <= 1 {
        return (0..n).map(f).collect();
    }
    // Contiguous chunks, sized ceil(n / threads): chunk boundaries depend
    // only on (n, threads), and the merge re-establishes input order, so
    // the schedule is irrelevant to the result.
    let chunk = n.div_ceil(threads);
    let mut results: Vec<Vec<R>> = Vec::with_capacity(threads);
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..threads)
            .map(|t| {
                let start = t * chunk;
                let end = ((t + 1) * chunk).min(n);
                let f = &f;
                scope.spawn(move || (start..end).map(f).collect::<Vec<R>>())
            })
            .collect();
        for handle in handles {
            results.push(handle.join().expect("parallel_map worker panicked"));
        }
    });
    results.into_iter().flatten().collect()
}

/// Maps `f` over a slice on up to `threads` scoped threads (0 = auto),
/// returning results in input order. See [`parallel_map_range`] for the
/// determinism contract; `f` receives each item's index alongside it.
pub fn parallel_map<T, R, F>(items: &[T], threads: usize, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    parallel_map_range(items.len(), threads, |i| f(i, &items[i]))
}

/// Derives a per-item RNG seed from a master seed and the item's index.
///
/// A SplitMix64-style finalizer decorrelates the streams: neighbouring
/// indices produce unrelated seeds, unlike `seed + index`, where two
/// items' xoshiro states would start one counter step apart.
pub fn derive_seed(master: u64, index: u64) -> u64 {
    let mut z = master ^ index.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn map_preserves_input_order() {
        let items: Vec<u64> = (0..103).collect();
        let out = parallel_map(&items, 4, |i, &x| (i as u64, x * 2));
        assert_eq!(out.len(), items.len());
        for (i, &(idx, doubled)) in out.iter().enumerate() {
            assert_eq!(idx, i as u64);
            assert_eq!(doubled, items[i] * 2);
        }
    }

    #[test]
    fn result_is_identical_for_every_thread_count() {
        let compute = |threads: usize| {
            parallel_map_range(257, threads, |i| {
                // A seed-dependent value, as the real call sites produce.
                derive_seed(42, i as u64)
            })
        };
        let one = compute(1);
        for threads in [2, 3, 4, 8, 16] {
            assert_eq!(compute(threads), one, "threads = {threads}");
        }
    }

    #[test]
    fn empty_and_tiny_inputs_work() {
        let empty: Vec<u8> = vec![];
        assert!(parallel_map(&empty, 8, |_, &x| x).is_empty());
        assert_eq!(parallel_map(&[7u8], 8, |_, &x| x + 1), vec![8]);
        assert_eq!(parallel_map_range(0, 0, |i| i), Vec::<usize>::new());
    }

    #[test]
    fn more_threads_than_items_is_fine() {
        let items = [1u32, 2, 3];
        assert_eq!(parallel_map(&items, 64, |_, &x| x), vec![1, 2, 3]);
    }

    #[test]
    fn resolve_zero_means_available_parallelism() {
        assert!(resolve_threads(0) >= 1);
        assert_eq!(resolve_threads(3), 3);
    }

    #[test]
    fn derived_seeds_are_decorrelated() {
        // Distinct indices must give distinct seeds, and neighbouring
        // indices must not produce near-identical bit patterns.
        let seeds: Vec<u64> = (0..1000).map(|i| derive_seed(7, i)).collect();
        let unique: std::collections::HashSet<&u64> = seeds.iter().collect();
        assert_eq!(unique.len(), seeds.len());
        for pair in seeds.windows(2) {
            let differing_bits = (pair[0] ^ pair[1]).count_ones();
            assert!(differing_bits >= 8, "suspiciously close: {pair:?}");
        }
    }

    #[test]
    fn panics_in_workers_propagate() {
        let result = std::panic::catch_unwind(|| {
            parallel_map_range(8, 4, |i| {
                assert!(i != 5, "boom");
                i
            })
        });
        assert!(result.is_err());
    }
}
