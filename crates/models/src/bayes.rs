//! Gaussian naive Bayes.
//!
//! Another structurally different pool member for the "5 standard
//! classifiers" configuration of the Decouple/FALCES baselines, and the
//! model family behind Calders & Verwer's fair ensembles discussed in the
//! paper's related work.

use crate::traits::Classifier;
use falcc_dataset::{AttrId, Dataset};

/// A trained Gaussian naive Bayes model.
#[derive(Debug, Clone, serde::Serialize, serde::Deserialize)]
pub struct GaussianNb {
    attrs: Vec<AttrId>,
    /// Per class (0/1), per feature: (mean, variance).
    stats: [Vec<(f64, f64)>; 2],
    /// Log prior per class.
    log_prior: [f64; 2],
    name: String,
}

impl GaussianNb {
    /// Minimum variance floor to keep log-densities finite.
    const VAR_FLOOR: f64 = 1e-9;

    /// Fits the model on the rows of `ds` selected by `indices`, using the
    /// attributes in `attrs`.
    ///
    /// # Panics
    /// Panics on empty `indices` or `attrs`.
    pub fn fit(ds: &Dataset, attrs: &[AttrId], indices: &[usize]) -> Self {
        assert!(!indices.is_empty(), "cannot fit on zero samples");
        assert!(!attrs.is_empty(), "cannot fit on zero features");
        let d = attrs.len();
        let mut sums = [vec![0.0f64; d], vec![0.0f64; d]];
        let mut counts = [0usize; 2];
        for &i in indices {
            let c = ds.label(i) as usize;
            counts[c] += 1;
            for (j, &a) in attrs.iter().enumerate() {
                sums[c][j] += ds.value(i, a);
            }
        }
        let mut stats = [vec![(0.0, 1.0); d], vec![(0.0, 1.0); d]];
        for c in 0..2 {
            if counts[c] == 0 {
                continue;
            }
            for j in 0..d {
                stats[c][j].0 = sums[c][j] / counts[c] as f64;
            }
        }
        let mut sq = [vec![0.0f64; d], vec![0.0f64; d]];
        for &i in indices {
            let c = ds.label(i) as usize;
            for (j, &a) in attrs.iter().enumerate() {
                let dlt = ds.value(i, a) - stats[c][j].0;
                sq[c][j] += dlt * dlt;
            }
        }
        for c in 0..2 {
            if counts[c] == 0 {
                continue;
            }
            for j in 0..d {
                stats[c][j].1 = (sq[c][j] / counts[c] as f64).max(Self::VAR_FLOOR);
            }
        }
        let n = indices.len() as f64;
        // Laplace-smoothed priors so an absent class keeps a tiny prior
        // instead of −∞.
        let log_prior = [
            ((counts[0] as f64 + 1.0) / (n + 2.0)).ln(),
            ((counts[1] as f64 + 1.0) / (n + 2.0)).ln(),
        ];
        Self { attrs: attrs.to_vec(), stats, log_prior, name: "gauss_nb".to_string() }
    }

    /// `(attrs, per-class (mean, variance) stats, log priors)` for
    /// compilation into flat form (see [`crate::flat`]).
    #[allow(clippy::type_complexity)]
    pub(crate) fn flat_parts(&self) -> (&[AttrId], &[Vec<(f64, f64)>; 2], [f64; 2]) {
        (&self.attrs, &self.stats, self.log_prior)
    }
}

impl Classifier for GaussianNb {
    fn to_spec(&self) -> Option<crate::persist::ModelSpec> {
        Some(crate::persist::ModelSpec::Bayes(self.clone()))
    }

    fn predict_proba_row(&self, row: &[f64]) -> f64 {
        let mut log_like = self.log_prior;
        for (j, &a) in self.attrs.iter().enumerate() {
            let x = row[a];
            for (c, ll) in log_like.iter_mut().enumerate() {
                let (mean, var) = self.stats[c][j];
                let dlt = x - mean;
                *ll += -0.5 * ((2.0 * std::f64::consts::PI * var).ln() + dlt * dlt / var);
            }
        }
        // Softmax over the two log-likelihoods.
        let m = log_like[0].max(log_like[1]);
        let e0 = (log_like[0] - m).exp();
        let e1 = (log_like[1] - m).exp();
        e1 / (e0 + e1)
    }

    fn name(&self) -> &str {
        &self.name
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use falcc_dataset::Schema;
    use rand::rngs::StdRng;
    use rand::Rng;
    use rand::SeedableRng;

    fn gaussian_blobs(n: usize, seed: u64) -> Dataset {
        // Class 0 around (−2, −2), class 1 around (2, 2).
        let schema = Schema::new(vec!["a".into(), "b".into()], vec![], "y").unwrap();
        let mut rng = StdRng::seed_from_u64(seed);
        let mut rows = Vec::new();
        let mut labels = Vec::new();
        for i in 0..n {
            let c = i % 2;
            let centre = if c == 0 { -2.0 } else { 2.0 };
            rows.push(vec![
                centre + rng.gen_range(-1.0..1.0),
                centre + rng.gen_range(-1.0..1.0),
            ]);
            labels.push(c as u8);
        }
        Dataset::from_rows(schema, rows, labels).unwrap()
    }

    #[test]
    fn separates_gaussian_blobs() {
        let ds = gaussian_blobs(400, 1);
        let idx: Vec<usize> = (0..ds.len()).collect();
        let model = GaussianNb::fit(&ds, &[0, 1], &idx);
        let acc = (0..ds.len())
            .filter(|&i| model.predict_row(ds.row(i)) == ds.label(i))
            .count() as f64
            / ds.len() as f64;
        assert!(acc > 0.98, "accuracy {acc}");
    }

    #[test]
    fn probabilities_reflect_distance_to_class_means() {
        let ds = gaussian_blobs(400, 2);
        let idx: Vec<usize> = (0..ds.len()).collect();
        let model = GaussianNb::fit(&ds, &[0, 1], &idx);
        assert!(model.predict_proba_row(&[2.0, 2.0]) > 0.95);
        assert!(model.predict_proba_row(&[-2.0, -2.0]) < 0.05);
        let p_mid = model.predict_proba_row(&[0.0, 0.0]);
        assert!((0.05..=0.95).contains(&p_mid), "midpoint proba {p_mid}");
    }

    #[test]
    fn single_class_training_keeps_finite_output() {
        let schema = Schema::new(vec!["a".into()], vec![], "y").unwrap();
        let ds = Dataset::from_rows(
            schema,
            vec![vec![1.0], vec![2.0], vec![3.0]],
            vec![1, 1, 1],
        )
        .unwrap();
        let model = GaussianNb::fit(&ds, &[0], &[0, 1, 2]);
        let p = model.predict_proba_row(&[2.0]);
        assert!(p.is_finite());
        assert!(p > 0.5, "all-positive training must lean positive: {p}");
    }

    #[test]
    fn zero_variance_features_are_floored() {
        let schema = Schema::new(vec!["a".into(), "b".into()], vec![], "y").unwrap();
        let ds = Dataset::from_rows(
            schema,
            vec![vec![1.0, 0.0], vec![1.0, 1.0], vec![1.0, 2.0], vec![1.0, 3.0]],
            vec![0, 0, 1, 1],
        )
        .unwrap();
        let model = GaussianNb::fit(&ds, &[0, 1], &[0, 1, 2, 3]);
        let p = model.predict_proba_row(&[1.0, 3.0]);
        assert!(p.is_finite() && p > 0.5);
    }
}
