//! Logistic regression via full-batch gradient descent with L2 shrinkage.
//!
//! Used as a structurally different pool member (the Decouple and FALCES
//! baselines train "5 standard classifiers") and as the label head inside
//! the LFR/iFair representation learners.

use crate::traits::Classifier;
use falcc_dataset::{AttrId, Dataset};

/// Logistic-regression hyperparameters.
#[derive(Debug, Clone, Copy)]
pub struct LogisticParams {
    /// Gradient-descent epochs.
    pub epochs: usize,
    /// Learning rate.
    pub lr: f64,
    /// L2 regularisation strength.
    pub l2: f64,
}

impl Default for LogisticParams {
    fn default() -> Self {
        Self { epochs: 300, lr: 0.5, l2: 1e-4 }
    }
}

/// A trained logistic-regression model. Features are standardised
/// internally (z-scores of the training distribution).
#[derive(Debug, Clone, serde::Serialize, serde::Deserialize)]
pub struct LogisticRegression {
    attrs: Vec<AttrId>,
    weights: Vec<f64>,
    bias: f64,
    means: Vec<f64>,
    stds: Vec<f64>,
    name: String,
}

impl LogisticRegression {
    /// Fits the model on the rows of `ds` selected by `indices`, using the
    /// attributes in `attrs`.
    ///
    /// # Panics
    /// Panics on empty `indices` or `attrs`.
    pub fn fit(
        ds: &Dataset,
        attrs: &[AttrId],
        indices: &[usize],
        params: &LogisticParams,
    ) -> Self {
        assert!(!indices.is_empty(), "cannot fit on zero samples");
        assert!(!attrs.is_empty(), "cannot fit on zero features");
        let n = indices.len();
        let d = attrs.len();

        // Standardisation statistics.
        let mut means = vec![0.0; d];
        let mut stds = vec![0.0; d];
        for &i in indices {
            for (j, &a) in attrs.iter().enumerate() {
                means[j] += ds.value(i, a);
            }
        }
        for m in means.iter_mut() {
            *m /= n as f64;
        }
        for &i in indices {
            for (j, &a) in attrs.iter().enumerate() {
                let dlt = ds.value(i, a) - means[j];
                stds[j] += dlt * dlt;
            }
        }
        for s in stds.iter_mut() {
            *s = (*s / n as f64).sqrt();
            if *s < 1e-9 {
                *s = 1.0; // constant feature: neutralised by zero z-score
            }
        }

        // Standardised design matrix (cached once).
        let mut x = vec![0.0f64; n * d];
        for (r, &i) in indices.iter().enumerate() {
            for (j, &a) in attrs.iter().enumerate() {
                x[r * d + j] = (ds.value(i, a) - means[j]) / stds[j];
            }
        }
        let y: Vec<f64> = indices.iter().map(|&i| ds.label(i) as f64).collect();

        let mut weights = vec![0.0f64; d];
        let mut bias = 0.0f64;
        for _ in 0..params.epochs {
            let mut grad_w = vec![0.0f64; d];
            let mut grad_b = 0.0f64;
            for r in 0..n {
                let row = &x[r * d..(r + 1) * d];
                let z: f64 =
                    row.iter().zip(&weights).map(|(xi, wi)| xi * wi).sum::<f64>() + bias;
                let p = sigmoid(z);
                let err = p - y[r];
                for j in 0..d {
                    grad_w[j] += err * row[j];
                }
                grad_b += err;
            }
            let inv_n = 1.0 / n as f64;
            for j in 0..d {
                weights[j] -= params.lr * (grad_w[j] * inv_n + params.l2 * weights[j]);
            }
            bias -= params.lr * grad_b * inv_n;
        }

        Self {
            attrs: attrs.to_vec(),
            weights,
            bias,
            means,
            stds,
            name: "logreg".to_string(),
        }
    }

    /// The fitted coefficients in standardised space (diagnostics).
    pub fn coefficients(&self) -> (&[f64], f64) {
        (&self.weights, self.bias)
    }

    /// `(attrs, weights, means, stds, bias)` for compilation into flat
    /// form (see [`crate::flat`]).
    pub(crate) fn flat_parts(&self) -> (&[AttrId], &[f64], &[f64], &[f64], f64) {
        (&self.attrs, &self.weights, &self.means, &self.stds, self.bias)
    }
}

#[inline]
fn sigmoid(z: f64) -> f64 {
    1.0 / (1.0 + (-z).exp())
}

impl Classifier for LogisticRegression {
    fn to_spec(&self) -> Option<crate::persist::ModelSpec> {
        Some(crate::persist::ModelSpec::Logistic(self.clone()))
    }

    fn predict_proba_row(&self, row: &[f64]) -> f64 {
        let z: f64 = self
            .attrs
            .iter()
            .enumerate()
            .map(|(j, &a)| (row[a] - self.means[j]) / self.stds[j] * self.weights[j])
            .sum::<f64>()
            + self.bias;
        sigmoid(z)
    }

    fn name(&self) -> &str {
        &self.name
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use falcc_dataset::Schema;
    use rand::rngs::StdRng;
    use rand::Rng;
    use rand::SeedableRng;

    fn linear_dataset(n: usize, seed: u64) -> Dataset {
        let schema = Schema::new(vec!["a".into(), "b".into()], vec![], "y").unwrap();
        let mut rng = StdRng::seed_from_u64(seed);
        let rows: Vec<Vec<f64>> = (0..n)
            .map(|_| vec![rng.gen_range(-3.0..3.0), rng.gen_range(-3.0..3.0)])
            .collect();
        let labels: Vec<u8> =
            rows.iter().map(|r| u8::from(2.0 * r[0] - r[1] + 0.3 > 0.0)).collect();
        Dataset::from_rows(schema, rows, labels).unwrap()
    }

    #[test]
    fn learns_a_linear_boundary() {
        let ds = linear_dataset(500, 1);
        let idx: Vec<usize> = (0..ds.len()).collect();
        let model = LogisticRegression::fit(&ds, &[0, 1], &idx, &LogisticParams::default());
        let acc = (0..ds.len())
            .filter(|&i| model.predict_row(ds.row(i)) == ds.label(i))
            .count() as f64
            / ds.len() as f64;
        assert!(acc > 0.95, "accuracy {acc}");
    }

    #[test]
    fn probabilities_are_calibrated_directionally() {
        let ds = linear_dataset(400, 2);
        let idx: Vec<usize> = (0..ds.len()).collect();
        let model = LogisticRegression::fit(&ds, &[0, 1], &idx, &LogisticParams::default());
        // Deep positive region vs deep negative region.
        assert!(model.predict_proba_row(&[3.0, -3.0]) > 0.9);
        assert!(model.predict_proba_row(&[-3.0, 3.0]) < 0.1);
    }

    #[test]
    fn constant_features_do_not_blow_up() {
        let schema = Schema::new(vec!["c".into(), "f".into()], vec![], "y").unwrap();
        let rows: Vec<Vec<f64>> = (0..40).map(|i| vec![5.0, i as f64]).collect();
        let labels: Vec<u8> = (0..40).map(|i| u8::from(i >= 20)).collect();
        let ds = Dataset::from_rows(schema, rows, labels).unwrap();
        let idx: Vec<usize> = (0..40).collect();
        let model = LogisticRegression::fit(&ds, &[0, 1], &idx, &LogisticParams::default());
        let p = model.predict_proba_row(&[5.0, 30.0]);
        assert!(p.is_finite() && p > 0.5);
    }

    #[test]
    fn attribute_selection_ignores_other_columns() {
        let ds = linear_dataset(300, 3);
        let idx: Vec<usize> = (0..ds.len()).collect();
        // Train on feature 0 only; feature 1 must not influence prediction.
        let model = LogisticRegression::fit(
            &ds,
            &[0],
            &idx,
            &LogisticParams::default(),
        );
        let p1 = model.predict_proba_row(&[1.0, -100.0]);
        let p2 = model.predict_proba_row(&[1.0, 100.0]);
        assert!((p1 - p2).abs() < 1e-12);
    }
}
