//! Random forests: bootstrap aggregation of feature-subsampled CART trees.
//!
//! The paper's alternative diverse-training strategy (§3.3). Trees vote;
//! the probability estimate is the fraction of trees voting positive.

use crate::traits::Classifier;
use crate::tree::{DecisionTree, TreeParams};
use falcc_dataset::{AttrId, Dataset};
use rand::rngs::StdRng;
use rand::Rng;
use rand::SeedableRng;

/// Random-forest hyperparameters.
#[derive(Debug, Clone, Copy)]
pub struct RandomForestParams {
    /// Number of trees.
    pub n_estimators: usize,
    /// Per-tree parameters. `max_features` defaults to √d when `None`.
    pub tree: TreeParams,
    /// Bootstrap sample size as a fraction of the training size.
    pub sample_fraction: f64,
}

impl Default for RandomForestParams {
    fn default() -> Self {
        Self {
            n_estimators: 20,
            tree: TreeParams { max_depth: 7, ..Default::default() },
            sample_fraction: 1.0,
        }
    }
}

/// A trained random forest.
#[derive(Debug, Clone, serde::Serialize, serde::Deserialize)]
pub struct RandomForest {
    trees: Vec<DecisionTree>,
    name: String,
}

impl RandomForest {
    /// Fits the forest on the rows of `ds` selected by `indices`, using the
    /// attributes in `attrs`.
    ///
    /// # Panics
    /// Panics on empty `indices`/`attrs` or zero estimators.
    pub fn fit(
        ds: &Dataset,
        attrs: &[AttrId],
        indices: &[usize],
        params: &RandomForestParams,
        seed: u64,
    ) -> Self {
        assert!(!indices.is_empty(), "cannot fit a forest on zero samples");
        assert!(params.n_estimators > 0, "need at least one tree");
        let mut rng = StdRng::seed_from_u64(seed ^ 0x51_7c_c1_b7_27_22_0a_95);
        let boot_n =
            ((indices.len() as f64 * params.sample_fraction).round() as usize).max(1);
        let mut tree_params = params.tree;
        if tree_params.max_features.is_none() {
            let sqrt_d = (attrs.len() as f64).sqrt().round() as usize;
            tree_params.max_features = Some(sqrt_d.max(1));
        }
        let trees: Vec<DecisionTree> = (0..params.n_estimators)
            .map(|t| {
                let boot: Vec<usize> = (0..boot_n)
                    .map(|_| indices[rng.gen_range(0..indices.len())])
                    .collect();
                DecisionTree::fit(ds, attrs, &boot, None, &tree_params, seed ^ (t as u64) << 17)
            })
            .collect();
        let name = format!(
            "forest[T={},d={},{}]",
            params.n_estimators,
            params.tree.max_depth,
            params.tree.criterion.short_name()
        );
        Self { trees, name }
    }

    /// Number of trees.
    pub fn n_trees(&self) -> usize {
        self.trees.len()
    }

    /// The fitted trees in training order, for compilation into flat form
    /// (see [`crate::flat`]).
    pub(crate) fn trees(&self) -> &[DecisionTree] {
        &self.trees
    }
}

impl Classifier for RandomForest {
    fn to_spec(&self) -> Option<crate::persist::ModelSpec> {
        Some(crate::persist::ModelSpec::Forest(self.clone()))
    }

    fn predict_proba_row(&self, row: &[f64]) -> f64 {
        let votes = self
            .trees
            .iter()
            .filter(|t| t.predict_row(row) == 1)
            .count();
        votes as f64 / self.trees.len() as f64
    }

    fn name(&self) -> &str {
        &self.name
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use falcc_dataset::Schema;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn noisy_two_feature_dataset(n: usize, seed: u64) -> Dataset {
        let schema = Schema::new(vec!["a".into(), "b".into()], vec![], "y").unwrap();
        let mut rng = StdRng::seed_from_u64(seed);
        let rows: Vec<Vec<f64>> = (0..n)
            .map(|_| vec![rng.gen_range(-2.0..2.0), rng.gen_range(-2.0..2.0)])
            .collect();
        let labels: Vec<u8> = rows
            .iter()
            .map(|r| u8::from(r[0] + 0.5 * r[1] > 0.0))
            .collect();
        Dataset::from_rows(schema, rows, labels).unwrap()
    }

    #[test]
    fn forest_learns_a_linear_boundary_well() {
        let ds = noisy_two_feature_dataset(800, 1);
        let idx: Vec<usize> = (0..ds.len()).collect();
        let forest = RandomForest::fit(&ds, &[0, 1], &idx, &RandomForestParams::default(), 0);
        let correct = (0..ds.len())
            .filter(|&i| forest.predict_row(ds.row(i)) == ds.label(i))
            .count();
        let acc = correct as f64 / ds.len() as f64;
        assert!(acc > 0.9, "forest accuracy {acc}");
        assert_eq!(forest.n_trees(), 20);
    }

    #[test]
    fn proba_is_a_vote_fraction() {
        let ds = noisy_two_feature_dataset(200, 2);
        let idx: Vec<usize> = (0..ds.len()).collect();
        let params = RandomForestParams { n_estimators: 4, ..Default::default() };
        let forest = RandomForest::fit(&ds, &[0, 1], &idx, &params, 0);
        for i in 0..20 {
            let p = forest.predict_proba_row(ds.row(i));
            // With 4 trees the fraction is a multiple of 0.25.
            assert!((p * 4.0 - (p * 4.0).round()).abs() < 1e-12, "p = {p}");
        }
    }

    #[test]
    fn trees_differ_thanks_to_bootstrap_and_subsampling() {
        let ds = noisy_two_feature_dataset(300, 3);
        let idx: Vec<usize> = (0..ds.len()).collect();
        let params = RandomForestParams { n_estimators: 10, ..Default::default() };
        let forest = RandomForest::fit(&ds, &[0, 1], &idx, &params, 4);
        // At least one row should receive a non-unanimous vote.
        let non_unanimous = (0..ds.len()).any(|i| {
            let p = forest.predict_proba_row(ds.row(i));
            p > 0.0 && p < 1.0
        });
        assert!(non_unanimous, "all trees identical — bootstrap not working");
    }

    #[test]
    fn deterministic_per_seed() {
        let ds = noisy_two_feature_dataset(150, 5);
        let idx: Vec<usize> = (0..ds.len()).collect();
        let a = RandomForest::fit(&ds, &[0, 1], &idx, &RandomForestParams::default(), 9);
        let b = RandomForest::fit(&ds, &[0, 1], &idx, &RandomForestParams::default(), 9);
        for i in 0..ds.len() {
            assert_eq!(
                a.predict_proba_row(ds.row(i)),
                b.predict_proba_row(ds.row(i))
            );
        }
    }
}
