//! Serialisable form of the built-in models.
//!
//! Trained pools hold `Arc<dyn Classifier>`, which cannot be serialised
//! directly. Every built-in model instead exposes itself as a
//! [`ModelSpec`] via [`Classifier::to_spec`]; external/custom classifiers
//! return `None` and are reported as unsupported at save time rather than
//! silently dropped.

use crate::bayes::GaussianNb;
use crate::boost::AdaBoost;
use crate::forest::RandomForest;
use crate::knn_model::KnnClassifier;
use crate::linear::LogisticRegression;
use crate::traits::Classifier;
use crate::tree::DecisionTree;
use serde::{Deserialize, Serialize};
use std::sync::Arc;

/// A serialisable snapshot of one trained built-in model.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub enum ModelSpec {
    /// CART decision tree.
    Tree(DecisionTree),
    /// AdaBoost ensemble.
    Boost(AdaBoost),
    /// Random forest.
    Forest(RandomForest),
    /// Logistic regression.
    Logistic(LogisticRegression),
    /// Gaussian naive Bayes.
    Bayes(GaussianNb),
    /// kNN classifier (stores its training data).
    Knn(KnnClassifier),
}

impl ModelSpec {
    /// Rehydrates the snapshot into a usable classifier.
    pub fn into_classifier(self) -> Arc<dyn Classifier> {
        match self {
            Self::Tree(m) => Arc::new(m),
            Self::Boost(m) => Arc::new(m),
            Self::Forest(m) => Arc::new(m),
            Self::Logistic(m) => Arc::new(m),
            Self::Bayes(m) => Arc::new(m),
            Self::Knn(m) => Arc::new(m),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tree::TreeParams;
    use falcc_dataset::{Dataset, Schema};

    fn toy() -> Dataset {
        let schema = Schema::new(vec!["x".into()], vec![], "y").unwrap();
        let rows: Vec<Vec<f64>> = (0..20).map(|i| vec![i as f64]).collect();
        let labels: Vec<u8> = (0..20).map(|i| u8::from(i >= 10)).collect();
        Dataset::from_rows(schema, rows, labels).unwrap()
    }

    #[test]
    fn every_builtin_round_trips_through_json() {
        let ds = toy();
        let idx: Vec<usize> = (0..ds.len()).collect();
        let models: Vec<Arc<dyn Classifier>> = vec![
            Arc::new(DecisionTree::fit(&ds, &[0], &idx, None, &TreeParams::default(), 1)),
            Arc::new(AdaBoost::fit(&ds, &[0], &idx, None, &Default::default(), 1)),
            Arc::new(RandomForest::fit(&ds, &[0], &idx, &Default::default(), 1)),
            Arc::new(LogisticRegression::fit(&ds, &[0], &idx, &Default::default())),
            Arc::new(GaussianNb::fit(&ds, &[0], &idx)),
            Arc::new(KnnClassifier::fit(&ds, &[0], &idx, 3)),
        ];
        for model in models {
            let spec = model.to_spec().unwrap_or_else(|| {
                panic!("{} must support persistence", model.name())
            });
            let json = serde_json::to_string(&spec).expect("serialize");
            let back: ModelSpec = serde_json::from_str(&json).expect("deserialize");
            let revived = back.into_classifier();
            assert_eq!(revived.name(), model.name());
            for i in 0..ds.len() {
                assert_eq!(
                    revived.predict_row(ds.row(i)),
                    model.predict_row(ds.row(i)),
                    "{} prediction changed after round trip",
                    model.name()
                );
            }
        }
    }
}
