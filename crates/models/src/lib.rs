//! # falcc-models
//!
//! From-scratch binary classifiers for the FALCC reproduction. The paper's
//! Python implementation leans on scikit-learn; the Rust ecosystem has no
//! mature equivalent, so this crate provides every model the evaluation
//! needs, with weighted training where boosting requires it:
//!
//! * [`tree`] — CART decision trees (gini/entropy, depth/leaf limits,
//!   optional feature subsampling, per-sample weights).
//! * [`boost`] — AdaBoost over weighted trees (the paper's default diverse
//!   trainer, §3.3).
//! * [`forest`] — random forests (bagging + feature subsampling), the
//!   paper's alternative trainer.
//! * [`linear`] — logistic regression via gradient descent.
//! * [`bayes`] — Gaussian naive Bayes.
//! * [`knn_model`] — a kNN classifier backed by the kd-tree substrate.
//! * [`grid`] — the paper's hyperparameter grid (estimators ∈ {5, 20},
//!   depth ∈ {1, 7}, criterion ∈ {gini, entropy}).
//! * [`pool`] — trained-model pools: diversity-driven selection
//!   (non-pairwise entropy, §3.3), per-group training, and enumeration of
//!   the model-combination candidates `MC_cand`.
//! * [`parallel`] — the deterministic scoped-thread layer the offline and
//!   online phases run on: ordered parallel maps plus index-derived seed
//!   streams, so results are bit-identical for every thread count.
//!
//! All models implement [`Classifier`]: prediction from a full-width
//! dataset row, with the model remembering which attributes it consumes.

pub mod bayes;
pub mod boost;
pub mod flat;
pub mod forest;
pub mod grid;
pub mod knn_model;
pub mod linear;
pub mod parallel;
pub mod persist;
pub mod pool;
pub mod traits;
pub mod tree;

pub use boost::{AdaBoost, AdaBoostParams};
pub use flat::{FlatPool, FlatPoolParts, NodeArena};
pub use forest::{RandomForest, RandomForestParams};
pub use grid::{GridPoint, TrainerKind, PAPER_GRID};
pub use parallel::{derive_seed, parallel_map, parallel_map_range, resolve_threads};
pub use persist::ModelSpec;
pub use pool::{enumerate_combinations, GridCheckpoint, ModelPool, PoolConfig, TrainedModel};
pub use traits::{predict_dataset, predict_proba_dataset, Classifier};
pub use tree::{DecisionTree, SplitCriterion, TreeParams};
