//! The [`Classifier`] trait shared by every model in the crate.

use falcc_dataset::Dataset;

/// A trained binary classifier.
///
/// Models receive the *full-width* dataset row (all attributes, including
/// sensitive ones) and internally select the attributes they were trained
/// on. This keeps call sites uniform: FALCC's online phase can hand any
/// model the raw sample regardless of which feature subset or training
/// partition produced it.
pub trait Classifier: Send + Sync {
    /// Probability estimate `P(y = 1 | row)` in `[0, 1]`.
    fn predict_proba_row(&self, row: &[f64]) -> f64;

    /// Hard prediction with the conventional 0.5 threshold.
    fn predict_row(&self, row: &[f64]) -> u8 {
        u8::from(self.predict_proba_row(row) >= 0.5)
    }

    /// Human-readable model identifier (e.g. `"adaboost[T=20,d=7,gini]"`).
    fn name(&self) -> &str;

    /// A serialisable snapshot of this model, when supported. Built-in
    /// models return `Some`; custom implementations may return `None`, in
    /// which case pools containing them cannot be persisted.
    fn to_spec(&self) -> Option<crate::persist::ModelSpec> {
        None
    }
}

/// Hard predictions for every row of a dataset.
pub fn predict_dataset(model: &dyn Classifier, ds: &Dataset) -> Vec<u8> {
    (0..ds.len()).map(|i| model.predict_row(ds.row(i))).collect()
}

/// Probability estimates for every row of a dataset.
pub fn predict_proba_dataset(model: &dyn Classifier, ds: &Dataset) -> Vec<f64> {
    (0..ds.len()).map(|i| model.predict_proba_row(ds.row(i))).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use falcc_dataset::Schema;

    /// Trivial stub: predicts 1 iff attribute 1 is positive.
    struct Stub;
    impl Classifier for Stub {
        fn predict_proba_row(&self, row: &[f64]) -> f64 {
            if row[1] > 0.0 {
                0.9
            } else {
                0.2
            }
        }
        fn name(&self) -> &str {
            "stub"
        }
    }

    #[test]
    fn default_threshold_is_half() {
        let s = Stub;
        assert_eq!(s.predict_row(&[0.0, 1.0]), 1);
        assert_eq!(s.predict_row(&[0.0, -1.0]), 0);
    }

    #[test]
    fn dataset_helpers_map_over_rows() {
        let schema =
            Schema::with_binary_sensitive(vec!["s".into(), "f".into()], 0, "y").unwrap();
        let ds = Dataset::from_rows(
            schema,
            vec![vec![0.0, 1.0], vec![1.0, -2.0], vec![0.0, 3.0]],
            vec![1, 0, 1],
        )
        .unwrap();
        let s = Stub;
        assert_eq!(predict_dataset(&s, &ds), vec![1, 0, 1]);
        let probs = predict_proba_dataset(&s, &ds);
        assert_eq!(probs, vec![0.9, 0.2, 0.9]);
    }
}
