//! The paper's hyperparameter grid for diverse model training (§3.3).
//!
//! "… yielding number of estimators ∈ {5, 20}, maximum depth of a decision
//! tree ∈ {1, 7}, and the splitting criterion ∈ {gini, entropy}" — eight
//! configurations per trainer family (AdaBoost by default, random forests
//! as the bagging alternative).

use crate::boost::{AdaBoost, AdaBoostParams};
use crate::forest::{RandomForest, RandomForestParams};
use crate::traits::Classifier;
use crate::tree::{SplitCriterion, TreeParams};
use falcc_dataset::{AttrId, Dataset};
use std::sync::Arc;

/// Which ensemble family a grid point trains.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TrainerKind {
    /// Boosting (the paper's default — more stable diversity).
    AdaBoost,
    /// Bagging.
    RandomForest,
}

/// One hyperparameter configuration.
#[derive(Debug, Clone, Copy)]
pub struct GridPoint {
    /// Trainer family.
    pub trainer: TrainerKind,
    /// Number of base estimators.
    pub n_estimators: usize,
    /// Maximum tree depth.
    pub max_depth: usize,
    /// Split criterion.
    pub criterion: SplitCriterion,
}

impl GridPoint {
    /// Trains this configuration on the rows of `ds` in `indices`, using
    /// the attributes in `attrs`.
    pub fn fit(
        &self,
        ds: &Dataset,
        attrs: &[AttrId],
        indices: &[usize],
        seed: u64,
    ) -> Arc<dyn Classifier> {
        let tree = TreeParams {
            max_depth: self.max_depth,
            criterion: self.criterion,
            ..Default::default()
        };
        match self.trainer {
            TrainerKind::AdaBoost => {
                let params = AdaBoostParams { n_estimators: self.n_estimators, tree };
                Arc::new(AdaBoost::fit(ds, attrs, indices, None, &params, seed))
            }
            TrainerKind::RandomForest => {
                let params = RandomForestParams {
                    n_estimators: self.n_estimators,
                    tree,
                    ..Default::default()
                };
                Arc::new(RandomForest::fit(ds, attrs, indices, &params, seed))
            }
        }
    }
}

/// The paper's 8-point grid for a trainer family.
pub fn paper_grid(trainer: TrainerKind) -> Vec<GridPoint> {
    let mut grid = Vec::with_capacity(8);
    for &n_estimators in &[5usize, 20] {
        for &max_depth in &[1usize, 7] {
            for &criterion in &[SplitCriterion::Gini, SplitCriterion::Entropy] {
                grid.push(GridPoint { trainer, n_estimators, max_depth, criterion });
            }
        }
    }
    grid
}

/// The default grid (AdaBoost family), matching the paper's default.
pub const PAPER_GRID: fn(TrainerKind) -> Vec<GridPoint> = paper_grid;

#[cfg(test)]
mod tests {
    use super::*;
    use falcc_dataset::Schema;
    use rand::rngs::StdRng;
    use rand::Rng;
    use rand::SeedableRng;

    fn dataset(n: usize) -> Dataset {
        let schema = Schema::new(vec!["a".into(), "b".into()], vec![], "y").unwrap();
        let mut rng = StdRng::seed_from_u64(0);
        let rows: Vec<Vec<f64>> = (0..n)
            .map(|_| vec![rng.gen_range(-2.0..2.0), rng.gen_range(-2.0..2.0)])
            .collect();
        let labels: Vec<u8> = rows.iter().map(|r| u8::from(r[0] > 0.0)).collect();
        Dataset::from_rows(schema, rows, labels).unwrap()
    }

    #[test]
    fn grid_has_eight_points() {
        let grid = paper_grid(TrainerKind::AdaBoost);
        assert_eq!(grid.len(), 8);
        // All parameter combinations present.
        let mut seen = std::collections::HashSet::new();
        for p in &grid {
            seen.insert((p.n_estimators, p.max_depth, p.criterion.short_name()));
        }
        assert_eq!(seen.len(), 8);
    }

    #[test]
    fn every_grid_point_trains_a_working_model() {
        let ds = dataset(200);
        let idx: Vec<usize> = (0..ds.len()).collect();
        for trainer in [TrainerKind::AdaBoost, TrainerKind::RandomForest] {
            let mut best_acc = 0.0f64;
            for p in paper_grid(trainer) {
                let model = p.fit(&ds, &[0, 1], &idx, 1);
                let acc = (0..ds.len())
                    .filter(|&i| model.predict_row(ds.row(i)) == ds.label(i))
                    .count() as f64
                    / ds.len() as f64;
                // Weak configs (depth-1 forests over subsampled features)
                // only need to beat chance; the grid's point is diversity.
                assert!(acc > 0.55, "{} accuracy {acc}", model.name());
                best_acc = best_acc.max(acc);
            }
            assert!(best_acc > 0.85, "strongest {trainer:?} config only reached {best_acc}");
        }
    }
}
