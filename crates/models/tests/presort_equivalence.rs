//! Proof-of-equivalence suite for the presorted CART builder: over
//! arbitrary data — including heavy value ties, per-sample weights, and
//! random feature subsampling — `DecisionTree::fit` must produce a tree
//! that is *structurally identical* (same nodes, same float thresholds
//! bit-for-bit via `PartialEq`) to the per-node re-sorting reference
//! `fit_naive`.
//!
//! Ties are the hard part: the presorted builder visits equal feature
//! values in the stable order of the initial sort, the naive builder in
//! the stable order of its per-node sort, and only because both sorts are
//! stable and the partition preserves relative order do the candidate
//! scans see the same sequence — and hence accumulate the same floats.

use falcc_dataset::{Dataset, Schema};
use falcc_models::{DecisionTree, SplitCriterion, TreeParams};
use proptest::prelude::*;

/// A dataset whose feature values are drawn from a small discrete grid so
/// duplicate values (split-scan ties) are common, with 3 features.
fn tied_dataset() -> impl Strategy<Value = Dataset> {
    (10usize..70)
        .prop_flat_map(|n| {
            (
                prop::collection::vec(-4i8..=4, n * 3),
                prop::collection::vec(0u8..=1, n),
            )
        })
        .prop_map(|(grid, labels)| {
            let flat: Vec<f64> = grid.into_iter().map(|v| f64::from(v) * 0.5).collect();
            let schema = Schema::new(
                vec!["a".into(), "b".into(), "c".into()],
                vec![],
                "y",
            )
            .expect("schema");
            Dataset::from_flat(schema, flat, labels).expect("dataset")
        })
}

fn weights_for(n: usize) -> impl Strategy<Value = Option<Vec<f64>>> {
    (0u8..=1, prop::collection::vec(0.1f64..3.0, n))
        .prop_map(|(some, w)| (some == 1).then_some(w))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn presorted_tree_equals_naive_tree(
        ds in tied_dataset(),
        depth in 1usize..8,
        min_leaf in 1usize..4,
        seed in 0u64..1_000,
        entropy in 0u8..=1,
    ) {
        let idx: Vec<usize> = (0..ds.len()).collect();
        let params = TreeParams {
            max_depth: depth,
            min_samples_leaf: min_leaf,
            criterion: if entropy == 1 { SplitCriterion::Entropy } else { SplitCriterion::Gini },
            max_features: None,
        };
        let fast = DecisionTree::fit(&ds, &[0, 1, 2], &idx, None, &params, seed);
        let naive = DecisionTree::fit_naive(&ds, &[0, 1, 2], &idx, None, &params, seed);
        prop_assert_eq!(fast, naive);
    }

    #[test]
    fn presorted_tree_equals_naive_tree_weighted(
        (ds, weights) in tied_dataset().prop_flat_map(|ds| {
            let n = ds.len();
            (Just(ds), weights_for(n))
        }),
        seed in 0u64..1_000,
    ) {
        let idx: Vec<usize> = (0..ds.len()).collect();
        let params = TreeParams { max_depth: 6, ..TreeParams::default() };
        let fast =
            DecisionTree::fit(&ds, &[0, 1, 2], &idx, weights.as_deref(), &params, seed);
        let naive =
            DecisionTree::fit_naive(&ds, &[0, 1, 2], &idx, weights.as_deref(), &params, seed);
        prop_assert_eq!(fast, naive);
    }

    #[test]
    fn presorted_tree_equals_naive_tree_with_feature_subsampling(
        ds in tied_dataset(),
        max_features in 1usize..4,
        seed in 0u64..1_000,
    ) {
        // Both builders must consume their per-node RNG identically, or
        // the candidate sets diverge on the first split.
        let idx: Vec<usize> = (0..ds.len()).collect();
        let params = TreeParams {
            max_depth: 7,
            max_features: Some(max_features),
            ..TreeParams::default()
        };
        let fast = DecisionTree::fit(&ds, &[0, 1, 2], &idx, None, &params, seed);
        let naive = DecisionTree::fit_naive(&ds, &[0, 1, 2], &idx, None, &params, seed);
        prop_assert_eq!(fast, naive);
    }

    #[test]
    fn presorted_tree_equals_naive_tree_on_subset(
        ds in tied_dataset(),
        seed in 0u64..1_000,
    ) {
        // Training on a strided subset exercises non-contiguous index
        // slots in the presorted order.
        let idx: Vec<usize> = (0..ds.len()).step_by(2).collect();
        let params = TreeParams { max_depth: 5, ..TreeParams::default() };
        let fast = DecisionTree::fit(&ds, &[0, 2], &idx, None, &params, seed);
        let naive = DecisionTree::fit_naive(&ds, &[0, 2], &idx, None, &params, seed);
        prop_assert_eq!(fast, naive);
    }
}
