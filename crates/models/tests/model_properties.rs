//! Property-based tests over the model substrate: every trainer must
//! accept arbitrary (finite) data without panicking and produce valid
//! probabilities, and weighted training must degenerate correctly.

use falcc_dataset::{Dataset, Schema};
use falcc_models::bayes::GaussianNb;
use falcc_models::linear::{LogisticParams, LogisticRegression};
use falcc_models::tree::{DecisionTree, TreeParams};
use falcc_models::{AdaBoost, AdaBoostParams, Classifier, RandomForest, RandomForestParams};
use proptest::prelude::*;

/// Strategy: a dataset of n ∈ [8, 60] rows with 2 features and arbitrary
/// binary labels (at least one of each class not guaranteed — trainers
/// must cope with single-class data too).
fn arbitrary_dataset() -> impl Strategy<Value = Dataset> {
    (8usize..60)
        .prop_flat_map(|n| {
            (
                prop::collection::vec(-50.0f64..50.0, n * 2),
                prop::collection::vec(0u8..=1, n),
            )
        })
        .prop_map(|(flat, labels)| {
            let schema =
                Schema::new(vec!["a".into(), "b".into()], vec![], "y").expect("schema");
            Dataset::from_flat(schema, flat, labels).expect("dataset")
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn tree_probabilities_are_valid(ds in arbitrary_dataset(), depth in 0usize..6) {
        let idx: Vec<usize> = (0..ds.len()).collect();
        let params = TreeParams { max_depth: depth, ..Default::default() };
        let tree = DecisionTree::fit(&ds, &[0, 1], &idx, None, &params, 1);
        for i in 0..ds.len() {
            let p = tree.predict_proba_row(ds.row(i));
            prop_assert!((0.0..=1.0).contains(&p), "proba {p}");
        }
        prop_assert!(tree.depth() <= depth);
    }

    #[test]
    fn uniform_unit_weights_equal_no_weights(ds in arbitrary_dataset()) {
        // Weight 1.0 exactly reproduces the unweighted arithmetic. (Other
        // constants scale the float rounding at split ties, which can
        // legitimately select a different equal-gain split.)
        let idx: Vec<usize> = (0..ds.len()).collect();
        let params = TreeParams::default();
        let unweighted = DecisionTree::fit(&ds, &[0, 1], &idx, None, &params, 2);
        let w = vec![1.0; ds.len()];
        let weighted = DecisionTree::fit(&ds, &[0, 1], &idx, Some(&w), &params, 2);
        for i in 0..ds.len() {
            prop_assert_eq!(
                unweighted.predict_row(ds.row(i)),
                weighted.predict_row(ds.row(i))
            );
        }
    }

    #[test]
    fn boosting_never_panics_and_bounds_probabilities(
        ds in arbitrary_dataset(),
        rounds in 1usize..12,
    ) {
        let idx: Vec<usize> = (0..ds.len()).collect();
        let params = AdaBoostParams {
            n_estimators: rounds,
            tree: TreeParams { max_depth: 2, ..Default::default() },
        };
        let model = AdaBoost::fit(&ds, &[0, 1], &idx, None, &params, 3);
        prop_assert!(model.n_stages() >= 1);
        prop_assert!(model.n_stages() <= rounds);
        for i in 0..ds.len() {
            let p = model.predict_proba_row(ds.row(i));
            prop_assert!((0.0..=1.0).contains(&p), "proba {p}");
        }
    }

    #[test]
    fn forest_probability_is_a_vote_fraction(ds in arbitrary_dataset()) {
        let idx: Vec<usize> = (0..ds.len()).collect();
        let params = RandomForestParams { n_estimators: 5, ..Default::default() };
        let model = RandomForest::fit(&ds, &[0, 1], &idx, &params, 4);
        for i in 0..ds.len() {
            let p = model.predict_proba_row(ds.row(i));
            let scaled = p * 5.0;
            prop_assert!((scaled - scaled.round()).abs() < 1e-9, "p = {p}");
        }
    }

    #[test]
    fn logistic_regression_outputs_finite_probabilities(ds in arbitrary_dataset()) {
        let idx: Vec<usize> = (0..ds.len()).collect();
        let params = LogisticParams { epochs: 50, ..Default::default() };
        let model = LogisticRegression::fit(&ds, &[0, 1], &idx, &params);
        for i in 0..ds.len() {
            let p = model.predict_proba_row(ds.row(i));
            prop_assert!(p.is_finite() && (0.0..=1.0).contains(&p), "p = {p}");
        }
    }

    #[test]
    fn naive_bayes_handles_any_binary_labeling(ds in arbitrary_dataset()) {
        let idx: Vec<usize> = (0..ds.len()).collect();
        let model = GaussianNb::fit(&ds, &[0, 1], &idx);
        for i in 0..ds.len() {
            let p = model.predict_proba_row(ds.row(i));
            prop_assert!(p.is_finite() && (0.0..=1.0).contains(&p), "p = {p}");
        }
    }

    #[test]
    fn training_on_a_subset_only_uses_that_subset(ds in arbitrary_dataset()) {
        // Train on the first half only; mutating the *second* half of the
        // dataset must not change predictions (trainer honours `indices`).
        let half = ds.len() / 2;
        let idx: Vec<usize> = (0..half).collect();
        if idx.len() < 2 {
            return Ok(());
        }
        let params = TreeParams::default();
        let tree = DecisionTree::fit(&ds, &[0, 1], &idx, None, &params, 5);
        // Rebuild a dataset where the unused rows are replaced by noise.
        let mut rows: Vec<Vec<f64>> = (0..ds.len()).map(|i| ds.row(i).to_vec()).collect();
        let mut labels = ds.labels().to_vec();
        for (j, row) in rows.iter_mut().enumerate().skip(half) {
            row[0] += 1000.0;
            row[1] -= 1000.0;
            labels[j] ^= 1;
        }
        let mutated =
            Dataset::from_rows(ds.schema().clone(), rows, labels).expect("dataset");
        let tree2 = DecisionTree::fit(&mutated, &[0, 1], &idx, None, &params, 5);
        for i in 0..half {
            prop_assert_eq!(tree.predict_row(ds.row(i)), tree2.predict_row(ds.row(i)));
        }
    }
}
