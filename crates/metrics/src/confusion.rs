//! Confusion counts (overall and per group) and accuracy.

use falcc_dataset::GroupId;

/// True/false positive/negative counts.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ConfusionCounts {
    /// Predicted 1, actual 1.
    pub tp: usize,
    /// Predicted 1, actual 0.
    pub fp: usize,
    /// Predicted 0, actual 0.
    pub tn: usize,
    /// Predicted 0, actual 1.
    pub fn_: usize,
}

impl ConfusionCounts {
    /// Accumulates one (label, prediction) pair.
    #[inline]
    pub fn add(&mut self, y: u8, z: u8) {
        match (y, z) {
            (1, 1) => self.tp += 1,
            (0, 1) => self.fp += 1,
            (0, 0) => self.tn += 1,
            _ => self.fn_ += 1,
        }
    }

    /// Total number of accumulated samples.
    #[inline]
    pub fn total(&self) -> usize {
        self.tp + self.fp + self.tn + self.fn_
    }

    /// Number of positive predictions.
    #[inline]
    pub fn predicted_positive(&self) -> usize {
        self.tp + self.fp
    }

    /// `P(z=1)` over the accumulated samples; 0 when empty.
    pub fn positive_prediction_rate(&self) -> f64 {
        let t = self.total();
        if t == 0 {
            0.0
        } else {
            self.predicted_positive() as f64 / t as f64
        }
    }

    /// `P(z=1 | y=1)` (true positive rate); `None` when there are no
    /// positive-label samples.
    pub fn tpr(&self) -> Option<f64> {
        let denom = self.tp + self.fn_;
        (denom > 0).then(|| self.tp as f64 / denom as f64)
    }

    /// `P(z=1 | y=0)` (false positive rate); `None` when there are no
    /// negative-label samples.
    pub fn fpr(&self) -> Option<f64> {
        let denom = self.fp + self.tn;
        (denom > 0).then(|| self.fp as f64 / denom as f64)
    }

    /// `FP / (FP + FN)` — the treatment-equality ratio; `None` when both
    /// error counts are zero.
    pub fn treatment_ratio(&self) -> Option<f64> {
        let denom = self.fp + self.fn_;
        (denom > 0).then(|| self.fp as f64 / denom as f64)
    }

    /// Builds overall counts from parallel label/prediction slices.
    ///
    /// # Panics
    /// Panics if the slices differ in length.
    pub fn from_slices(y: &[u8], z: &[u8]) -> Self {
        assert_eq!(y.len(), z.len(), "labels and predictions must be parallel");
        let mut c = Self::default();
        for (&yi, &zi) in y.iter().zip(z) {
            c.add(yi, zi);
        }
        c
    }

    /// Builds one `ConfusionCounts` per group (indexed by [`GroupId`]).
    ///
    /// # Panics
    /// Panics if slice lengths differ or a group id is out of range.
    pub fn per_group(y: &[u8], z: &[u8], g: &[GroupId], n_groups: usize) -> Vec<Self> {
        assert_eq!(y.len(), z.len());
        assert_eq!(y.len(), g.len());
        let mut per = vec![Self::default(); n_groups];
        for i in 0..y.len() {
            per[g[i].index()].add(y[i], z[i]);
        }
        per
    }
}

/// Fraction of correct predictions. Returns 1.0 for empty input (vacuously
/// perfect, so empty clusters never penalise assessments).
///
/// # Panics
/// Panics if the slices differ in length.
pub fn accuracy(y: &[u8], z: &[u8]) -> f64 {
    assert_eq!(y.len(), z.len(), "labels and predictions must be parallel");
    if y.is_empty() {
        return 1.0;
    }
    let correct = y.iter().zip(z).filter(|(a, b)| a == b).count();
    correct as f64 / y.len() as f64
}

/// `1 − accuracy`; the paper's L1 inaccuracy term in Eq. 2.
pub fn inaccuracy(y: &[u8], z: &[u8]) -> f64 {
    1.0 - accuracy(y, z)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counts_accumulate_correctly() {
        let y = [1, 1, 0, 0, 1];
        let z = [1, 0, 1, 0, 1];
        let c = ConfusionCounts::from_slices(&y, &z);
        assert_eq!(c, ConfusionCounts { tp: 2, fp: 1, tn: 1, fn_: 1 });
        assert_eq!(c.total(), 5);
        assert_eq!(c.predicted_positive(), 3);
        assert!((c.positive_prediction_rate() - 0.6).abs() < 1e-12);
        assert!((c.tpr().unwrap() - 2.0 / 3.0).abs() < 1e-12);
        assert!((c.fpr().unwrap() - 0.5).abs() < 1e-12);
        assert!((c.treatment_ratio().unwrap() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn rates_are_none_when_undefined() {
        let c = ConfusionCounts::from_slices(&[0, 0], &[0, 1]);
        assert!(c.tpr().is_none());
        assert!(c.fpr().is_some());
        let perfect = ConfusionCounts::from_slices(&[1, 0], &[1, 0]);
        assert!(perfect.treatment_ratio().is_none());
    }

    #[test]
    fn per_group_partitions_counts() {
        let y = [1, 0, 1, 0];
        let z = [1, 1, 0, 0];
        let g = [GroupId(0), GroupId(1), GroupId(0), GroupId(1)];
        let per = ConfusionCounts::per_group(&y, &z, &g, 2);
        assert_eq!(per[0], ConfusionCounts { tp: 1, fp: 0, tn: 0, fn_: 1 });
        assert_eq!(per[1], ConfusionCounts { tp: 0, fp: 1, tn: 1, fn_: 0 });
        assert_eq!(per[0].total() + per[1].total(), 4);
    }

    #[test]
    fn accuracy_and_inaccuracy() {
        assert!((accuracy(&[1, 0, 1], &[1, 0, 0]) - 2.0 / 3.0).abs() < 1e-12);
        assert!((inaccuracy(&[1, 0, 1], &[1, 0, 0]) - 1.0 / 3.0).abs() < 1e-12);
        assert_eq!(accuracy(&[], &[]), 1.0);
    }
}
