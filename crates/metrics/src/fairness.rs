//! The four global group-fairness metrics of the paper's Tab. 3, as
//! normalized mean-difference scores.
//!
//! Each metric compares every sensitive group against the population value
//! and averages the absolute differences over the groups, yielding a bias in
//! `[0, 1]` where 0 is perfectly fair. Groups with no samples (or no samples
//! of the conditioning label) are excluded from the average — the same
//! convention the published FALCC implementation uses; without it, a single
//! small cluster missing one group would report spurious bias.

use crate::confusion::ConfusionCounts;
use falcc_dataset::GroupId;
use serde::{Deserialize, Serialize};

/// The fairness definitions FALCC integrates (paper Tab. 3).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum FairnessMetric {
    /// Groups have equal probability of a positive outcome (Dwork et al.).
    DemographicParity,
    /// Equal TPR and FPR across groups (Hardt et al.).
    EqualizedOdds,
    /// Equal TPR across groups (Hardt et al.).
    EqualOpportunity,
    /// Equal FP/(FP+FN) ratio across groups (Berk et al.).
    TreatmentEquality,
}

impl FairnessMetric {
    /// All metrics, in the paper's Tab. 3 order.
    pub const ALL: [Self; 4] = [
        Self::DemographicParity,
        Self::EqualizedOdds,
        Self::EqualOpportunity,
        Self::TreatmentEquality,
    ];

    /// Short identifier used in experiment output (`dp`, `eq_od`, `eq_op`,
    /// `tr_eq` — the paper's notation).
    pub fn short_name(self) -> &'static str {
        match self {
            Self::DemographicParity => "dp",
            Self::EqualizedOdds => "eq_od",
            Self::EqualOpportunity => "eq_op",
            Self::TreatmentEquality => "tr_eq",
        }
    }

    /// Computes the bias of predictions `z` against labels `y` with group
    /// assignment `g` over `n_groups` groups. Returns a value in `[0, 1]`;
    /// 0 when fewer than two groups are represented.
    ///
    /// # Panics
    /// Panics if the slices are not parallel or a group id exceeds
    /// `n_groups`.
    pub fn bias(self, y: &[u8], z: &[u8], g: &[GroupId], n_groups: usize) -> f64 {
        let per = ConfusionCounts::per_group(y, z, g, n_groups);
        let overall = ConfusionCounts::from_slices(y, z);
        match self {
            Self::DemographicParity => {
                let p_overall = overall.positive_prediction_rate();
                mean_abs_diff(per.iter().filter(|c| c.total() > 0).map(|c| {
                    c.positive_prediction_rate() - p_overall
                }))
            }
            Self::EqualOpportunity => {
                let Some(tpr_overall) = overall.tpr() else { return 0.0 };
                mean_abs_diff(per.iter().filter_map(|c| c.tpr().map(|t| t - tpr_overall)))
            }
            Self::EqualizedOdds => {
                let tpr_term = overall.tpr().map_or(0.0, |tpr_overall| {
                    mean_abs_diff(per.iter().filter_map(|c| c.tpr().map(|t| t - tpr_overall)))
                });
                let fpr_term = overall.fpr().map_or(0.0, |fpr_overall| {
                    mean_abs_diff(per.iter().filter_map(|c| c.fpr().map(|f| f - fpr_overall)))
                });
                0.5 * (tpr_term + fpr_term)
            }
            Self::TreatmentEquality => {
                let Some(ratio_overall) = overall.treatment_ratio() else { return 0.0 };
                mean_abs_diff(
                    per.iter()
                        .filter_map(|c| c.treatment_ratio().map(|r| r - ratio_overall)),
                )
            }
        }
    }
}

impl std::fmt::Display for FairnessMetric {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let name = match self {
            Self::DemographicParity => "demographic parity",
            Self::EqualizedOdds => "equalized odds",
            Self::EqualOpportunity => "equal opportunity",
            Self::TreatmentEquality => "treatment equality",
        };
        f.write_str(name)
    }
}

/// Mean of absolute values over an iterator; 0 for an empty iterator or a
/// single contributing group (bias needs at least two groups to exist).
fn mean_abs_diff(diffs: impl Iterator<Item = f64>) -> f64 {
    let mut sum = 0.0;
    let mut count = 0usize;
    for d in diffs {
        sum += d.abs();
        count += 1;
    }
    if count < 2 {
        0.0
    } else {
        sum / count as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const G0: GroupId = GroupId(0);
    const G1: GroupId = GroupId(1);

    #[test]
    fn demographic_parity_fair_and_unfair() {
        // Fair: both groups get 50% positive predictions.
        let z = [1, 0, 1, 0];
        let y = [1, 1, 0, 0];
        let g = [G0, G0, G1, G1];
        let fair = FairnessMetric::DemographicParity.bias(&y, &z, &g, 2);
        assert!(fair.abs() < 1e-12);

        // Maximally unfair: group 0 all positive, group 1 all negative.
        let z = [1, 1, 0, 0];
        let unfair = FairnessMetric::DemographicParity.bias(&y, &z, &g, 2);
        assert!((unfair - 0.5).abs() < 1e-12, "mean |1−0.5| = 0.5, got {unfair}");
    }

    #[test]
    fn demographic_parity_hand_computed() {
        // Group 0: 3 samples, 2 positive preds (2/3). Group 1: 3 samples,
        // 1 positive pred (1/3). Overall: 3/6 = 1/2.
        // Bias = (|2/3 − 1/2| + |1/3 − 1/2|)/2 = 1/6.
        let y = [0, 0, 0, 0, 0, 0];
        let z = [1, 1, 0, 1, 0, 0];
        let g = [G0, G0, G0, G1, G1, G1];
        let b = FairnessMetric::DemographicParity.bias(&y, &z, &g, 2);
        assert!((b - 1.0 / 6.0).abs() < 1e-12, "got {b}");
    }

    #[test]
    fn equal_opportunity_only_looks_at_positive_labels() {
        // TPRs: group0 = 1.0 (1/1), group1 = 0.0 (0/1); overall TPR = 0.5.
        // Bias = (0.5 + 0.5)/2 = 0.5. Negative-label rows are irrelevant.
        let y = [1, 0, 1, 0];
        let z = [1, 1, 0, 0];
        let g = [G0, G0, G1, G1];
        let b = FairnessMetric::EqualOpportunity.bias(&y, &z, &g, 2);
        assert!((b - 0.5).abs() < 1e-12);
        // Flip a negative-label prediction: no change.
        let z2 = [1, 0, 0, 1];
        let b2 = FairnessMetric::EqualOpportunity.bias(&y, &z2, &g, 2);
        assert!((b2 - 0.5).abs() < 1e-12);
    }

    #[test]
    fn equalized_odds_blends_tpr_and_fpr() {
        // Construct: TPR equal across groups, FPR maximally different.
        let y = [1, 0, 1, 0];
        let z = [1, 1, 1, 0];
        let g = [G0, G0, G1, G1];
        // TPRs: 1 and 1 → term 0. FPRs: 1 and 0, overall 0.5 → term 0.5.
        let b = FairnessMetric::EqualizedOdds.bias(&y, &z, &g, 2);
        assert!((b - 0.25).abs() < 1e-12, "0.5·(0 + 0.5), got {b}");
    }

    #[test]
    fn treatment_equality_ratio() {
        // Group 0: FP=1, FN=0 → ratio 1. Group 1: FP=0, FN=1 → ratio 0.
        // Overall: FP=1, FN=1 → 0.5. Bias = (0.5+0.5)/2 = 0.5.
        let y = [0, 1, 1, 0];
        let z = [1, 1, 0, 0];
        let g = [G0, G0, G1, G1];
        let b = FairnessMetric::TreatmentEquality.bias(&y, &z, &g, 2);
        assert!((b - 0.5).abs() < 1e-12);
    }

    #[test]
    fn undefined_conditions_yield_zero() {
        // No positive labels: eq_op and the TPR half of eq_odds undefined.
        let y = [0, 0, 0, 0];
        let z = [1, 0, 1, 0];
        let g = [G0, G0, G1, G1];
        assert_eq!(FairnessMetric::EqualOpportunity.bias(&y, &z, &g, 2), 0.0);
        // Perfect predictions: no FP/FN anywhere → tr_eq undefined → 0.
        let y2 = [1, 0, 1, 0];
        let z2 = [1, 0, 1, 0];
        assert_eq!(FairnessMetric::TreatmentEquality.bias(&y2, &z2, &g, 2), 0.0);
    }

    #[test]
    fn single_group_present_is_unbiased() {
        let y = [1, 0, 1];
        let z = [1, 1, 0];
        let g = [G0, G0, G0];
        for m in FairnessMetric::ALL {
            assert_eq!(m.bias(&y, &z, &g, 2), 0.0, "{m}");
        }
    }

    #[test]
    fn bias_is_bounded() {
        // Exhaustive check over small prediction patterns.
        let y = [1, 0, 1, 0, 1, 0];
        let g = [G0, G0, G0, G1, G1, G1];
        for bits in 0..64u32 {
            let z: Vec<u8> = (0..6).map(|i| ((bits >> i) & 1) as u8).collect();
            for m in FairnessMetric::ALL {
                let b = m.bias(&y, &z, &g, 2);
                assert!((0.0..=1.0).contains(&b), "{m} out of range: {b}");
            }
        }
    }

    #[test]
    fn short_names_match_paper_notation() {
        assert_eq!(FairnessMetric::DemographicParity.short_name(), "dp");
        assert_eq!(FairnessMetric::EqualizedOdds.short_name(), "eq_od");
        assert_eq!(FairnessMetric::EqualOpportunity.short_name(), "eq_op");
        assert_eq!(FairnessMetric::TreatmentEquality.short_name(), "tr_eq");
    }
}
