//! # falcc-metrics
//!
//! Quality measures for the FALCC reproduction (Lässig & Herschel, EDBT
//! 2024):
//!
//! * [`fairness`] — the four global group-fairness metrics of the paper's
//!   Tab. 3: demographic parity, equalized odds, equal opportunity, and
//!   treatment equality, all as normalized mean-difference scores in
//!   `[0, 1]` (lower = fairer).
//! * [`loss`] — the paper's Eq. 2 template `L̂ = λ·inaccuracy + (1−λ)·bias`
//!   used for model assessment and for ranking algorithms.
//! * [`local`] — *local* bias: a global metric evaluated inside each local
//!   region (cluster) and averaged weighted by region size (§4.1.3).
//! * [`individual`] — individual fairness via consistency (Zemel et al.):
//!   agreement of a sample's prediction with its k nearest neighbours.
//! * [`confusion`] — per-group confusion counts underlying the metrics.
//! * [`pareto`] — Pareto-front membership and L̂-based top-k ranking used in
//!   the paper's Tab. 5 summary.
//! * [`diversity`] — non-pairwise entropy diversity of a model pool
//!   (Cunningham & Carney 2000), the x-axis of the paper's Fig. 4.
//!
//! Every function takes plain slices (`labels`, `predictions`, `groups`) so
//! the metrics stay decoupled from any particular model or dataset type.

pub mod confusion;
pub mod diversity;
pub mod fairness;
pub mod individual;
pub mod local;
pub mod loss;
pub mod pareto;

pub use confusion::{accuracy, inaccuracy, ConfusionCounts};
pub use diversity::{kuncheva_entropy, shannon_entropy_diversity};
pub use fairness::FairnessMetric;
pub use individual::{consistency, consistency_with_neighbors};
pub use local::{local_bias, local_l_hat};
pub use loss::{l_hat, LossConfig};
pub use pareto::{in_top_k, pareto_front, rank_by_l_hat, QualityPoint};
