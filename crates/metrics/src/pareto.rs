//! Pareto-front membership and L̂-based ranking — the two summary views the
//! paper's Tab. 5 reports for every (dataset, metric, dimension)
//! configuration.

use crate::loss::l_hat;
use serde::{Deserialize, Serialize};

/// One algorithm's quality in a single experiment configuration.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct QualityPoint {
    /// Algorithm name.
    pub name: String,
    /// Accuracy in `[0, 1]` (higher is better).
    pub accuracy: f64,
    /// Bias in `[0, 1]` (lower is better).
    pub bias: f64,
}

impl QualityPoint {
    /// `true` if `self` dominates `other`: at least as good in both
    /// dimensions and strictly better in one.
    pub fn dominates(&self, other: &Self) -> bool {
        (self.accuracy >= other.accuracy && self.bias <= other.bias)
            && (self.accuracy > other.accuracy || self.bias < other.bias)
    }
}

/// Indices of the Pareto-optimal (non-dominated) points. Ties (exact
/// duplicates) are all kept — an algorithm matching a front member is also
/// on the front, which is how the paper can report several algorithms as
/// Pareto-optimal simultaneously.
pub fn pareto_front(points: &[QualityPoint]) -> Vec<usize> {
    (0..points.len())
        .filter(|&i| !points.iter().enumerate().any(|(j, p)| j != i && p.dominates(&points[i])))
        .collect()
}

/// Indices sorted ascending by `L̂ = λ·(1−accuracy) + (1−λ)·bias`
/// (best first). Stable for equal losses (keeps input order).
pub fn rank_by_l_hat(points: &[QualityPoint], lambda: f64) -> Vec<usize> {
    let mut idx: Vec<usize> = (0..points.len()).collect();
    idx.sort_by(|&a, &b| {
        let la = l_hat(lambda, 1.0 - points[a].accuracy, points[a].bias);
        let lb = l_hat(lambda, 1.0 - points[b].accuracy, points[b].bias);
        la.partial_cmp(&lb).expect("losses are finite")
    });
    idx
}

/// `true` if point `i` ranks within the best `k` by L̂ (λ = 0.5, the
/// paper's top-3 criterion uses k = 3). Ties at the boundary are resolved
/// by input order, matching [`rank_by_l_hat`].
pub fn in_top_k(points: &[QualityPoint], i: usize, k: usize, lambda: f64) -> bool {
    rank_by_l_hat(points, lambda).iter().take(k).any(|&j| j == i)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(name: &str, accuracy: f64, bias: f64) -> QualityPoint {
        QualityPoint { name: name.into(), accuracy, bias }
    }

    #[test]
    fn dominance_is_strict_somewhere() {
        let a = p("a", 0.9, 0.1);
        let b = p("b", 0.8, 0.2);
        assert!(a.dominates(&b));
        assert!(!b.dominates(&a));
        let c = p("c", 0.9, 0.1);
        assert!(!a.dominates(&c), "equal points do not dominate each other");
    }

    #[test]
    fn front_excludes_dominated_points() {
        let pts = vec![
            p("best-acc", 0.95, 0.30),
            p("best-fair", 0.70, 0.02),
            p("balanced", 0.85, 0.10),
            p("dominated", 0.80, 0.20), // beaten by "balanced"
        ];
        let front = pareto_front(&pts);
        assert_eq!(front, vec![0, 1, 2]);
    }

    #[test]
    fn duplicates_are_both_on_the_front() {
        let pts = vec![p("x", 0.9, 0.1), p("y", 0.9, 0.1), p("z", 0.5, 0.5)];
        let front = pareto_front(&pts);
        assert_eq!(front, vec![0, 1]);
    }

    #[test]
    fn ranking_orders_by_balanced_loss() {
        let pts = vec![
            p("a", 0.90, 0.30), // L̂ = 0.5·0.1 + 0.5·0.3 = 0.20
            p("b", 0.80, 0.10), // L̂ = 0.15
            p("c", 0.99, 0.50), // L̂ = 0.255
        ];
        assert_eq!(rank_by_l_hat(&pts, 0.5), vec![1, 0, 2]);
        assert!(in_top_k(&pts, 1, 1, 0.5));
        assert!(in_top_k(&pts, 0, 2, 0.5));
        assert!(!in_top_k(&pts, 2, 2, 0.5));
    }

    #[test]
    fn lambda_extremes_change_the_winner() {
        let pts = vec![p("accurate", 0.99, 0.40), p("fair", 0.60, 0.01)];
        assert_eq!(rank_by_l_hat(&pts, 1.0)[0], 0);
        assert_eq!(rank_by_l_hat(&pts, 0.0)[0], 1);
    }

    #[test]
    fn empty_inputs() {
        assert!(pareto_front(&[]).is_empty());
        assert!(rank_by_l_hat(&[], 0.5).is_empty());
    }
}
