//! The paper's Eq. 2 loss template:
//! `L̂ = λ·inaccuracy + (1−λ)·unfairness`.

use crate::confusion::inaccuracy;
use crate::fairness::FairnessMetric;
use falcc_dataset::GroupId;
use serde::{Deserialize, Serialize};

/// Configuration of the Eq. 2 loss: which fairness definition fills the
/// unfairness slot and how strongly accuracy is weighted.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LossConfig {
    /// Weight `λ ∈ [0, 1]` of the inaccuracy term. The paper's evaluation
    /// uses `λ = 0.5` ("weighing accuracy and bias equally").
    pub lambda: f64,
    /// The fairness definition for the unfairness term.
    pub metric: FairnessMetric,
}

impl LossConfig {
    /// Balanced loss (`λ = 0.5`) with the given fairness metric — the
    /// paper's default configuration.
    pub fn balanced(metric: FairnessMetric) -> Self {
        Self { lambda: 0.5, metric }
    }

    /// Computes `L̂` over parallel label / prediction / group slices.
    ///
    /// # Panics
    /// Panics if `lambda` is outside `[0, 1]` or the slices are not
    /// parallel.
    pub fn evaluate(&self, y: &[u8], z: &[u8], g: &[GroupId], n_groups: usize) -> f64 {
        assert!(
            (0.0..=1.0).contains(&self.lambda),
            "lambda must be in [0,1], got {}",
            self.lambda
        );
        let inacc = inaccuracy(y, z);
        let bias = self.metric.bias(y, z, g, n_groups);
        self.lambda * inacc + (1.0 - self.lambda) * bias
    }
}

impl Default for LossConfig {
    fn default() -> Self {
        Self::balanced(FairnessMetric::DemographicParity)
    }
}

/// Convenience free function: `L̂` from already-computed components.
pub fn l_hat(lambda: f64, inaccuracy: f64, bias: f64) -> f64 {
    assert!((0.0..=1.0).contains(&lambda), "lambda must be in [0,1]");
    lambda * inaccuracy + (1.0 - lambda) * bias
}

#[cfg(test)]
mod tests {
    use super::*;

    const G0: GroupId = GroupId(0);
    const G1: GroupId = GroupId(1);

    #[test]
    fn perfect_fair_predictions_have_zero_loss() {
        let y = [1, 0, 1, 0];
        let g = [G0, G0, G1, G1];
        let cfg = LossConfig::balanced(FairnessMetric::DemographicParity);
        assert_eq!(cfg.evaluate(&y, &y, &g, 2), 0.0);
    }

    #[test]
    fn lambda_interpolates_between_terms() {
        // All predictions wrong (inaccuracy 1), but demographic parity holds
        // (both groups 100% positive predictions → bias 0).
        let y = [0, 0, 0, 0];
        let z = [1, 1, 1, 1];
        let g = [G0, G0, G1, G1];
        let acc_only = LossConfig { lambda: 1.0, metric: FairnessMetric::DemographicParity };
        let fair_only = LossConfig { lambda: 0.0, metric: FairnessMetric::DemographicParity };
        assert_eq!(acc_only.evaluate(&y, &z, &g, 2), 1.0);
        assert_eq!(fair_only.evaluate(&y, &z, &g, 2), 0.0);
        let mid = LossConfig::balanced(FairnessMetric::DemographicParity);
        assert!((mid.evaluate(&y, &z, &g, 2) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn l_hat_matches_example_3_4() {
        // Paper Example 3.4, cluster C1 with m3: inaccuracy 1/3, bias 0,
        // λ = 0.5 → L̂ = 1/6.
        assert!((l_hat(0.5, 1.0 / 3.0, 0.0) - 1.0 / 6.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "lambda")]
    fn invalid_lambda_panics() {
        l_hat(1.5, 0.0, 0.0);
    }
}
