//! Local fairness: a global metric evaluated inside each local region.
//!
//! The paper (§4.1.3) reports "the average local bias over all clusters
//! (= regions), weighted by the sample ratio within the clusters". Local
//! L̂ additionally blends in the inaccuracy term of Eq. 2 per region; the
//! paper's rankings use λ = 0.5.

use crate::fairness::FairnessMetric;
use crate::loss::LossConfig;
use falcc_dataset::GroupId;

/// Splits samples by `regions[i]` (region ids in `0..n_regions`) and returns
/// per-region index lists.
fn region_indices(regions: &[usize], n_regions: usize) -> Vec<Vec<usize>> {
    let mut out = vec![Vec::new(); n_regions];
    for (i, &r) in regions.iter().enumerate() {
        assert!(r < n_regions, "region id {r} out of range {n_regions}");
        out[r].push(i);
    }
    out
}

fn gather<T: Copy>(src: &[T], idx: &[usize]) -> Vec<T> {
    idx.iter().map(|&i| src[i]).collect()
}

/// Sample-weighted average of `metric` bias over local regions.
///
/// `regions[i]` assigns sample `i` to a region in `0..n_regions`. Empty
/// regions contribute nothing (weight 0).
///
/// # Panics
/// Panics if slices are not parallel or a region id is out of range.
pub fn local_bias(
    metric: FairnessMetric,
    y: &[u8],
    z: &[u8],
    g: &[GroupId],
    n_groups: usize,
    regions: &[usize],
    n_regions: usize,
) -> f64 {
    assert_eq!(y.len(), z.len());
    assert_eq!(y.len(), g.len());
    assert_eq!(y.len(), regions.len());
    if y.is_empty() {
        return 0.0;
    }
    let per_region = region_indices(regions, n_regions);
    let n = y.len() as f64;
    per_region
        .iter()
        .filter(|idx| !idx.is_empty())
        .map(|idx| {
            let weight = idx.len() as f64 / n;
            let b = metric.bias(&gather(y, idx), &gather(z, idx), &gather(g, idx), n_groups);
            weight * b
        })
        .sum()
}

/// Sample-weighted average of the Eq. 2 loss `L̂` over local regions (the
/// paper's "local bias ... directly uses Eq. 2 with λ = 0.5" reading).
///
/// # Panics
/// Same conditions as [`local_bias`].
pub fn local_l_hat(
    cfg: LossConfig,
    y: &[u8],
    z: &[u8],
    g: &[GroupId],
    n_groups: usize,
    regions: &[usize],
    n_regions: usize,
) -> f64 {
    assert_eq!(y.len(), z.len());
    assert_eq!(y.len(), g.len());
    assert_eq!(y.len(), regions.len());
    if y.is_empty() {
        return 0.0;
    }
    let per_region = region_indices(regions, n_regions);
    let n = y.len() as f64;
    per_region
        .iter()
        .filter(|idx| !idx.is_empty())
        .map(|idx| {
            let weight = idx.len() as f64 / n;
            weight
                * cfg.evaluate(&gather(y, idx), &gather(z, idx), &gather(g, idx), n_groups)
        })
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    const G0: GroupId = GroupId(0);
    const G1: GroupId = GroupId(1);

    #[test]
    fn globally_fair_but_locally_biased() {
        // The paper's Fig. 1 situation: overall parity holds, but within
        // region 0 all of group 0 is positive and all of group 1 negative
        // (and vice versa in region 1).
        let y = [1, 1, 0, 0, 1, 1, 0, 0];
        let z = [1, 1, 0, 0, 0, 0, 1, 1];
        let g = [G0, G0, G1, G1, G0, G0, G1, G1];
        let regions = [0, 0, 0, 0, 1, 1, 1, 1];
        let global = FairnessMetric::DemographicParity.bias(&y, &z, &g, 2);
        assert!(global.abs() < 1e-12, "global parity holds: {global}");
        let local = local_bias(
            FairnessMetric::DemographicParity,
            &y,
            &z,
            &g,
            2,
            &regions,
            2,
        );
        assert!(local > 0.4, "local bias should be large: {local}");
    }

    #[test]
    fn one_region_reduces_to_global() {
        let y = [1, 0, 1, 0, 1, 0];
        let z = [1, 1, 0, 0, 1, 0];
        let g = [G0, G0, G0, G1, G1, G1];
        let regions = [0, 0, 0, 0, 0, 0];
        let local =
            local_bias(FairnessMetric::DemographicParity, &y, &z, &g, 2, &regions, 1);
        let global = FairnessMetric::DemographicParity.bias(&y, &z, &g, 2);
        assert!((local - global).abs() < 1e-12);
    }

    #[test]
    fn weighting_is_by_region_size() {
        // Region 0 (4 samples): maximal dp bias. Region 1 (2 samples): fair.
        let y = [0, 0, 0, 0, 0, 0];
        let z = [1, 1, 0, 0, 1, 1];
        let g = [G0, G0, G1, G1, G0, G1];
        let regions = [0, 0, 0, 0, 1, 1];
        let local =
            local_bias(FairnessMetric::DemographicParity, &y, &z, &g, 2, &regions, 2);
        // Region 0 bias = 0.5, region 1 bias = 0 → 4/6 · 0.5 = 1/3.
        assert!((local - 1.0 / 3.0).abs() < 1e-12, "got {local}");
    }

    #[test]
    fn local_l_hat_blends_inaccuracy() {
        // Perfect predictions that are also fair within each region: both
        // groups in a region receive the same prediction.
        let y = [1, 1, 0, 0];
        let z = [1, 1, 0, 0];
        let g = [G0, G1, G0, G1];
        let regions = [0, 0, 1, 1];
        let cfg = LossConfig::balanced(FairnessMetric::DemographicParity);
        assert_eq!(local_l_hat(cfg, &y, &z, &g, 2, &regions, 2), 0.0);
        // All wrong, but fair (everyone positive): L̂ = 0.5 per region.
        let z2 = [1, 1, 1, 1];
        let y2 = [0, 0, 0, 0];
        let v = local_l_hat(cfg, &y2, &z2, &g, 2, &regions, 2);
        assert!((v - 0.5).abs() < 1e-12);
    }

    #[test]
    fn empty_input_is_zero() {
        assert_eq!(
            local_bias(FairnessMetric::DemographicParity, &[], &[], &[], 2, &[], 3),
            0.0
        );
    }

    #[test]
    #[should_panic(expected = "region id")]
    fn out_of_range_region_panics() {
        let y = [1];
        let z = [1];
        let g = [G0];
        local_bias(FairnessMetric::DemographicParity, &y, &z, &g, 2, &[5], 2);
    }
}
