//! Individual fairness via *consistency* (Zemel et al. 2013): a prediction
//! is individually fair when it agrees with the predictions of the sample's
//! k nearest neighbours (in the non-sensitive feature space).
//!
//! `consistency = 1 − (1/n) Σ_i |z_i − mean(z_j for j ∈ kNN(i))|`
//!
//! We report `1 − consistency` as **individual bias** in the experiment
//! harness so that, like the group metrics, lower is better.

use falcc_dataset::dataset::ProjectedMatrix;

/// Consistency from precomputed neighbour lists. `neighbors[i]` holds the
/// indices of the k nearest neighbours of sample `i` (not including `i`).
/// Samples with an empty neighbour list count as fully consistent.
///
/// # Panics
/// Panics if `neighbors` is not parallel to `z` or an index is out of
/// bounds.
pub fn consistency_with_neighbors(z: &[u8], neighbors: &[Vec<usize>]) -> f64 {
    assert_eq!(z.len(), neighbors.len(), "one neighbour list per prediction");
    if z.is_empty() {
        return 1.0;
    }
    let mut total = 0.0;
    for (i, nbrs) in neighbors.iter().enumerate() {
        if nbrs.is_empty() {
            continue;
        }
        let mean: f64 =
            nbrs.iter().map(|&j| z[j] as f64).sum::<f64>() / nbrs.len() as f64;
        total += (z[i] as f64 - mean).abs();
    }
    1.0 - total / z.len() as f64
}

/// Consistency with brute-force kNN over a projected feature matrix
/// (O(n²·d); fine for test-split sizes, use the kd-tree in
/// `falcc-clustering` for large inputs).
///
/// # Panics
/// Panics if `x.n_rows != z.len()` or `k == 0`.
pub fn consistency(x: &ProjectedMatrix, z: &[u8], k: usize) -> f64 {
    assert_eq!(x.n_rows, z.len(), "matrix rows must match predictions");
    assert!(k > 0, "k must be positive");
    let n = x.n_rows;
    if n <= 1 {
        return 1.0;
    }
    let k = k.min(n - 1);
    let mut neighbors = Vec::with_capacity(n);
    for i in 0..n {
        let xi = x.row(i);
        // Partial selection of the k smallest distances.
        let mut dists: Vec<(f64, usize)> = (0..n)
            .filter(|&j| j != i)
            .map(|j| (sq_dist(xi, x.row(j)), j))
            .collect();
        dists.select_nth_unstable_by(k - 1, |a, b| {
            a.0.partial_cmp(&b.0).expect("distances are finite")
        });
        neighbors.push(dists[..k].iter().map(|&(_, j)| j).collect::<Vec<_>>());
    }
    consistency_with_neighbors(z, &neighbors)
}

#[inline]
fn sq_dist(a: &[f64], b: &[f64]) -> f64 {
    a.iter().zip(b).map(|(x, y)| (x - y) * (x - y)).sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn matrix(rows: &[&[f64]]) -> ProjectedMatrix {
        let n_cols = rows[0].len();
        ProjectedMatrix {
            data: rows.iter().flat_map(|r| r.iter().copied()).collect(),
            n_cols,
            n_rows: rows.len(),
        }
    }

    #[test]
    fn uniform_predictions_are_fully_consistent() {
        let x = matrix(&[&[0.0], &[1.0], &[2.0], &[3.0]]);
        assert!((consistency(&x, &[1, 1, 1, 1], 2) - 1.0).abs() < 1e-12);
        assert!((consistency(&x, &[0, 0, 0, 0], 2) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn spatially_coherent_predictions_are_consistent() {
        // Two well-separated blobs, each uniformly labeled.
        let x = matrix(&[&[0.0], &[0.1], &[0.2], &[10.0], &[10.1], &[10.2]]);
        let z = [0, 0, 0, 1, 1, 1];
        assert!((consistency(&x, &z, 2) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn outlier_prediction_reduces_consistency() {
        let x = matrix(&[&[0.0], &[0.1], &[0.2], &[0.3]]);
        let z = [0, 0, 0, 1]; // one sample disagrees with its neighbourhood
        let c = consistency(&x, &z, 3);
        assert!(c < 1.0);
        assert!(c > 0.0);
    }

    #[test]
    fn hand_computed_value() {
        // 3 points on a line, k = 2 (both others are the neighbours).
        // z = [1, 0, 0]: |1 − 0| + |0 − 0.5| + |0 − 0.5| = 2 → 1 − 2/3.
        let x = matrix(&[&[0.0], &[1.0], &[2.0]]);
        let c = consistency(&x, &[1, 0, 0], 2);
        assert!((c - (1.0 - 2.0 / 3.0)).abs() < 1e-12, "got {c}");
    }

    #[test]
    fn neighbor_list_variant_matches() {
        let neighbors = vec![vec![1, 2], vec![0, 2], vec![0, 1]];
        let c = consistency_with_neighbors(&[1, 0, 0], &neighbors);
        assert!((c - (1.0 - 2.0 / 3.0)).abs() < 1e-12);
    }

    #[test]
    fn degenerate_inputs() {
        assert_eq!(consistency_with_neighbors(&[], &[]), 1.0);
        let x = matrix(&[&[0.0]]);
        assert_eq!(consistency(&x, &[1], 3), 1.0);
        // Empty neighbour lists count as consistent.
        assert_eq!(consistency_with_neighbors(&[1, 0], &[vec![], vec![]]), 1.0);
    }

    #[test]
    fn k_larger_than_n_is_clamped() {
        let x = matrix(&[&[0.0], &[1.0], &[2.0]]);
        let c = consistency(&x, &[1, 1, 1], 100);
        assert!((c - 1.0).abs() < 1e-12);
    }
}
