//! Ensemble-diversity measures.
//!
//! The paper measures the diversity of a trained model pool with the
//! *non-pairwise entropy* of Cunningham & Carney (2000) — higher entropy of
//! the per-sample prediction split means the models disagree more, i.e. the
//! pool is more diverse. FALCC's diverse-model-training component maximises
//! this (paper §3.3, Fig. 4).
//!
//! Two variants are provided:
//! * [`shannon_entropy_diversity`] — mean per-sample Shannon entropy of the
//!   fraction of models predicting 1, normalised to `[0, 1]`.
//! * [`kuncheva_entropy`] — the piecewise-linear entropy measure of
//!   Kuncheva & Whitaker (2003), also in `[0, 1]`; cheaper and commonly
//!   used interchangeably in the ensemble literature.

/// Per-sample fraction of models voting 1.
///
/// `predictions[m][i]` is model `m`'s prediction for sample `i`.
///
/// # Panics
/// Panics if the prediction rows have unequal lengths.
fn vote_fractions(predictions: &[Vec<u8>]) -> Vec<f64> {
    let n_models = predictions.len();
    if n_models == 0 {
        return Vec::new();
    }
    let n = predictions[0].len();
    for (m, row) in predictions.iter().enumerate() {
        assert_eq!(row.len(), n, "model {m} predicted {} of {n} samples", row.len());
    }
    (0..n)
        .map(|i| {
            predictions.iter().map(|row| row[i] as usize).sum::<usize>() as f64
                / n_models as f64
        })
        .collect()
}

/// Mean per-sample Shannon entropy of the ensemble's vote split, normalised
/// by `ln 2` so the result lies in `[0, 1]`. 0 = all models always agree;
/// 1 = every sample splits the pool exactly in half.
///
/// Returns 0 for fewer than two models (a single model has no diversity).
pub fn shannon_entropy_diversity(predictions: &[Vec<u8>]) -> f64 {
    if predictions.len() < 2 {
        return 0.0;
    }
    let fractions = vote_fractions(predictions);
    if fractions.is_empty() {
        return 0.0;
    }
    let ln2 = std::f64::consts::LN_2;
    let mean: f64 = fractions
        .iter()
        .map(|&p| {
            if p <= 0.0 || p >= 1.0 {
                0.0
            } else {
                -(p * p.ln() + (1.0 - p) * (1.0 - p).ln()) / ln2
            }
        })
        .sum::<f64>()
        / fractions.len() as f64;
    mean
}

/// Kuncheva & Whitaker's entropy measure:
/// `E = (1/N) Σ_i min(l_i, L−l_i) / (L − ⌈L/2⌉)` where `l_i` is the number
/// of models predicting 1 on sample `i` and `L` the number of models.
///
/// Returns 0 for fewer than two models.
pub fn kuncheva_entropy(predictions: &[Vec<u8>]) -> f64 {
    let l = predictions.len();
    if l < 2 {
        return 0.0;
    }
    let n = predictions[0].len();
    if n == 0 {
        return 0.0;
    }
    let denom = (l - l.div_ceil(2)) as f64;
    let mut total = 0.0;
    for i in 0..n {
        let li = predictions.iter().map(|row| row[i] as usize).sum::<usize>();
        total += li.min(l - li) as f64 / denom;
    }
    total / n as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identical_models_have_zero_diversity() {
        let preds = vec![vec![1, 0, 1, 0]; 5];
        assert_eq!(shannon_entropy_diversity(&preds), 0.0);
        assert_eq!(kuncheva_entropy(&preds), 0.0);
    }

    #[test]
    fn maximally_split_pool_has_diversity_one() {
        // 4 models, every sample splits 2/2.
        let preds = vec![
            vec![1, 1, 0],
            vec![1, 0, 1],
            vec![0, 1, 0],
            vec![0, 0, 1],
        ];
        assert!((shannon_entropy_diversity(&preds) - 1.0).abs() < 1e-12);
        assert!((kuncheva_entropy(&preds) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn partial_disagreement_is_in_between() {
        let preds = vec![vec![1, 1, 1, 1], vec![1, 1, 1, 1], vec![1, 0, 1, 1]];
        let s = shannon_entropy_diversity(&preds);
        let k = kuncheva_entropy(&preds);
        assert!(s > 0.0 && s < 1.0, "shannon {s}");
        assert!(k > 0.0 && k < 1.0, "kuncheva {k}");
    }

    #[test]
    fn hand_computed_shannon() {
        // 2 models, 2 samples: agree on sample 0, split on sample 1.
        // Sample 0: p = 1 → H = 0. Sample 1: p = 0.5 → H = 1. Mean = 0.5.
        let preds = vec![vec![1, 1], vec![1, 0]];
        assert!((shannon_entropy_diversity(&preds) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn measures_are_monotone_in_disagreement() {
        let low = vec![vec![1, 1, 1, 1, 1, 1], vec![1, 1, 1, 1, 1, 0]];
        let high = vec![vec![1, 1, 1, 0, 0, 0], vec![0, 0, 0, 1, 1, 1]];
        assert!(shannon_entropy_diversity(&high) > shannon_entropy_diversity(&low));
        assert!(kuncheva_entropy(&high) > kuncheva_entropy(&low));
    }

    #[test]
    fn degenerate_inputs_are_zero() {
        assert_eq!(shannon_entropy_diversity(&[]), 0.0);
        assert_eq!(shannon_entropy_diversity(&[vec![1, 0]]), 0.0);
        assert_eq!(kuncheva_entropy(&[vec![], vec![]]), 0.0);
    }

    #[test]
    #[should_panic(expected = "model 1")]
    fn mismatched_rows_panic() {
        shannon_entropy_diversity(&[vec![1, 0], vec![1]]);
    }
}
