//! Property-based tests of the Eq. 2 loss `L̂ = λ·inaccuracy + (1−λ)·bias`:
//! its endpoint identities, its convex-combination bounds, and its
//! monotonicity in each argument.

use falcc_dataset::GroupId;
use falcc_metrics::{inaccuracy, l_hat, FairnessMetric, LossConfig};
use proptest::prelude::*;

/// Strategy: parallel (labels, predictions, binary groups) of length 4–64.
fn labeled_predictions() -> impl Strategy<Value = (Vec<u8>, Vec<u8>, Vec<GroupId>)> {
    (4usize..64).prop_flat_map(|n| {
        (
            prop::collection::vec(0u8..=1, n),
            prop::collection::vec(0u8..=1, n),
            prop::collection::vec((0u16..2).prop_map(GroupId), n),
        )
    })
}

proptest! {
    /// λ = 1 weighs accuracy only: L̂ collapses to the inaccuracy,
    /// whatever the fairness metric says.
    #[test]
    fn lambda_one_recovers_inaccuracy((y, z, g) in labeled_predictions()) {
        for metric in FairnessMetric::ALL {
            let loss = LossConfig { lambda: 1.0, metric };
            let got = loss.evaluate(&y, &z, &g, 2);
            let want = inaccuracy(&y, &z);
            prop_assert!((got - want).abs() < 1e-12, "{metric}: {got} vs {want}");
        }
    }

    /// λ = 0 weighs fairness only: L̂ collapses to the metric's bias,
    /// whatever the predictions' accuracy.
    #[test]
    fn lambda_zero_recovers_bias((y, z, g) in labeled_predictions()) {
        for metric in FairnessMetric::ALL {
            let loss = LossConfig { lambda: 0.0, metric };
            let got = loss.evaluate(&y, &z, &g, 2);
            let want = metric.bias(&y, &z, &g, 2);
            prop_assert!((got - want).abs() < 1e-12, "{metric}: {got} vs {want}");
        }
    }

    /// For every λ, L̂ is a convex combination: it lies between the two
    /// endpoint losses.
    #[test]
    fn l_hat_lies_between_its_components((y, z, g) in labeled_predictions(),
                                         lambda in 0.0f64..=1.0) {
        for metric in FairnessMetric::ALL {
            let loss = LossConfig { lambda, metric };
            let got = loss.evaluate(&y, &z, &g, 2);
            let inacc = inaccuracy(&y, &z);
            let bias = metric.bias(&y, &z, &g, 2);
            let lo = inacc.min(bias) - 1e-12;
            let hi = inacc.max(bias) + 1e-12;
            prop_assert!((lo..=hi).contains(&got), "{metric}: {got} outside [{lo}, {hi}]");
        }
    }

    /// L̂ is monotone non-decreasing in both inaccuracy and bias: a
    /// strictly worse prediction can never score a strictly better loss.
    #[test]
    fn l_hat_is_monotone_in_each_argument(lambda in 0.0f64..=1.0,
                                          inacc in 0.0f64..=1.0,
                                          bias in 0.0f64..=1.0,
                                          bump in 0.0f64..=0.5) {
        let base = l_hat(lambda, inacc, bias);
        let worse_acc = l_hat(lambda, (inacc + bump).min(1.0), bias);
        let worse_bias = l_hat(lambda, inacc, (bias + bump).min(1.0));
        prop_assert!(worse_acc >= base - 1e-12);
        prop_assert!(worse_bias >= base - 1e-12);
    }

    /// Moving λ toward 1 shifts weight from the bias term to the
    /// inaccuracy term: when inaccuracy exceeds bias, L̂ grows with λ, and
    /// vice versa.
    #[test]
    fn lambda_interpolates_monotonically(inacc in 0.0f64..=1.0, bias in 0.0f64..=1.0) {
        let at = |lambda: f64| l_hat(lambda, inacc, bias);
        let grid: Vec<f64> = (0..=10).map(|i| at(i as f64 / 10.0)).collect();
        for w in grid.windows(2) {
            if inacc >= bias {
                prop_assert!(w[1] >= w[0] - 1e-12, "not non-decreasing: {grid:?}");
            } else {
                prop_assert!(w[1] <= w[0] + 1e-12, "not non-increasing: {grid:?}");
            }
        }
    }
}
