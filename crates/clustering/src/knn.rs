//! A kd-tree k-nearest-neighbour index over `f64` points.
//!
//! Used by three parts of the reproduction:
//! * the FALCES baselines' online phase, which computes the kNN of every
//!   new sample (the cost FALCC's offline clustering avoids — Fig. 6);
//! * FALCC's cluster *gap-filling*, which pulls in the nearest
//!   representatives of sensitive groups missing from a cluster (§3.5);
//! * the consistency metric on large inputs.
//!
//! The tree splits on the axis of maximum spread at the median, stores
//! point indices, and answers queries with branch-and-bound pruning. For
//! the dataset sizes in the paper (≤ 72k rows, ≤ 91 dims) this is
//! comfortably fast while remaining dependency-free.
//!
//! Leaf scans carry two exactness-preserving prunes (see the `kmeans`
//! module docs for the shared reasoning): a cached norm-gap prefilter
//! that skips points whose `(‖q‖−‖p‖)²` lower bound already exceeds the
//! incumbent k-th distance, and an early-exit distance accumulation.
//! Both leave the result **bit-identical** to the unpruned scan
//! ([`KdTree::nearest_reference`] keeps that reference path alive for the
//! equivalence tests and benchmarks).

use crate::kmeans::{sq_dist, sq_dist_within, LB_DEFLATE, NORM_GAP_MARGIN};
use falcc_dataset::dataset::ProjectedMatrix;

/// A kd-tree over the rows of a [`ProjectedMatrix`].
#[derive(Debug, Clone, serde::Serialize, serde::Deserialize)]
pub struct KdTree {
    points: ProjectedMatrix,
    nodes: Vec<Node>,
    root: Option<usize>,
    /// Euclidean norm of each indexed point, cached once at build time
    /// for the leaf-scan norm-gap prefilter.
    norms: Vec<f64>,
}

#[derive(Debug, Clone, serde::Serialize, serde::Deserialize)]
enum Node {
    Leaf {
        /// Indices into `points`.
        indices: Vec<u32>,
    },
    Split {
        axis: u16,
        value: f64,
        left: usize,
        right: usize,
    },
}

const LEAF_SIZE: usize = 16;

/// Per-query leaf-scan tallies, accumulated in registers during the
/// recursive search and flushed to the telemetry counters once per query
/// (hot loops never touch an atomic per point).
#[derive(Default)]
struct ScanStats {
    scanned: u64,
    norm_gap_pruned: u64,
    early_exit_pruned: u64,
}

impl ScanStats {
    fn flush(&self) {
        falcc_telemetry::counters::KNN_POINTS_SCANNED.add(self.scanned);
        falcc_telemetry::counters::KNN_NORM_GAP_PRUNED.add(self.norm_gap_pruned);
        falcc_telemetry::counters::KNN_EARLY_EXIT_PRUNED.add(self.early_exit_pruned);
    }
}

impl KdTree {
    /// Builds a tree over all rows of `points`. The matrix is moved in; use
    /// [`Self::point`] to read points back.
    pub fn build(points: ProjectedMatrix) -> Self {
        let norms = (0..points.n_rows)
            .map(|i| points.row(i).iter().map(|v| v * v).sum::<f64>().sqrt())
            .collect();
        let mut tree = Self { points, nodes: Vec::new(), root: None, norms };
        if tree.points.n_rows > 0 {
            let mut indices: Vec<u32> = (0..tree.points.n_rows as u32).collect();
            let root = tree.build_node(&mut indices);
            tree.root = Some(root);
        }
        tree
    }

    fn build_node(&mut self, indices: &mut [u32]) -> usize {
        if indices.len() <= LEAF_SIZE {
            self.nodes.push(Node::Leaf { indices: indices.to_vec() });
            return self.nodes.len() - 1;
        }
        // Split on the axis with the largest spread among these points.
        let d = self.points.n_cols;
        let mut axis = 0usize;
        let mut best_spread = f64::MIN;
        for a in 0..d {
            let mut lo = f64::INFINITY;
            let mut hi = f64::NEG_INFINITY;
            for &i in indices.iter() {
                let v = self.points.row(i as usize)[a];
                lo = lo.min(v);
                hi = hi.max(v);
            }
            if hi - lo > best_spread {
                best_spread = hi - lo;
                axis = a;
            }
        }
        if best_spread <= 0.0 {
            // All points identical: leaf regardless of size.
            self.nodes.push(Node::Leaf { indices: indices.to_vec() });
            return self.nodes.len() - 1;
        }
        let mid = indices.len() / 2;
        indices.select_nth_unstable_by(mid, |&a, &b| {
            let va = self.points.row(a as usize)[axis];
            let vb = self.points.row(b as usize)[axis];
            va.partial_cmp(&vb).expect("coordinates are finite")
        });
        let split_value = self.points.row(indices[mid] as usize)[axis];
        let (left_slice, right_slice) = indices.split_at_mut(mid);
        // Recursion order: children are created before the parent node.
        let mut left_vec = left_slice.to_vec();
        let mut right_vec = right_slice.to_vec();
        let left = self.build_node(&mut left_vec);
        let right = self.build_node(&mut right_vec);
        self.nodes.push(Node::Split { axis: axis as u16, value: split_value, left, right });
        self.nodes.len() - 1
    }

    /// Number of indexed points.
    #[inline]
    pub fn len(&self) -> usize {
        self.points.n_rows
    }

    /// `true` when no points are indexed.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.points.n_rows == 0
    }

    /// The coordinates of indexed point `i`.
    #[inline]
    pub fn point(&self, i: usize) -> &[f64] {
        self.points.row(i)
    }

    /// The `k` nearest neighbours of `query`, as `(index, squared
    /// distance)` sorted by ascending distance. Returns fewer than `k`
    /// pairs when the tree holds fewer points.
    ///
    /// # Panics
    /// Panics if the query dimensionality does not match the indexed
    /// points.
    pub fn nearest(&self, query: &[f64], k: usize) -> Vec<(usize, f64)> {
        assert_eq!(query.len(), self.points.n_cols, "query dimensionality mismatch");
        let Some(root) = self.root else { return Vec::new() };
        if k == 0 {
            return Vec::new();
        }
        let mut heap = BoundedMaxHeap::new(k);
        let mut stats = ScanStats::default();
        let q_norm = query.iter().map(|v| v * v).sum::<f64>().sqrt();
        self.search_filtered(root, query, q_norm, &mut heap, &mut |_| true, true, &mut stats);
        stats.flush();
        heap.into_sorted()
    }

    /// [`Self::nearest`] without the leaf-scan prunes — the naive
    /// reference the equivalence tests and `exp_kernels` compare against.
    pub fn nearest_reference(&self, query: &[f64], k: usize) -> Vec<(usize, f64)> {
        assert_eq!(query.len(), self.points.n_cols, "query dimensionality mismatch");
        let Some(root) = self.root else { return Vec::new() };
        if k == 0 {
            return Vec::new();
        }
        let mut heap = BoundedMaxHeap::new(k);
        let mut stats = ScanStats::default();
        self.search_filtered(root, query, 0.0, &mut heap, &mut |_| true, false, &mut stats);
        stats.flush();
        heap.into_sorted()
    }

    /// Like [`Self::nearest`] but keeps only points accepted by `filter`
    /// (e.g. "members of sensitive group g" for FALCC's gap-filling).
    pub fn nearest_filtered(
        &self,
        query: &[f64],
        k: usize,
        mut filter: impl FnMut(usize) -> bool,
    ) -> Vec<(usize, f64)> {
        assert_eq!(query.len(), self.points.n_cols, "query dimensionality mismatch");
        let Some(root) = self.root else { return Vec::new() };
        if k == 0 {
            return Vec::new();
        }
        let mut heap = BoundedMaxHeap::new(k);
        let mut stats = ScanStats::default();
        let q_norm = query.iter().map(|v| v * v).sum::<f64>().sqrt();
        self.search_filtered(root, query, q_norm, &mut heap, &mut filter, true, &mut stats);
        stats.flush();
        heap.into_sorted()
    }

    #[allow(clippy::too_many_arguments)]
    fn search_filtered(
        &self,
        node: usize,
        query: &[f64],
        q_norm: f64,
        heap: &mut BoundedMaxHeap,
        filter: &mut impl FnMut(usize) -> bool,
        pruned: bool,
        stats: &mut ScanStats,
    ) {
        match &self.nodes[node] {
            Node::Leaf { indices } => {
                for &i in indices {
                    let i = i as usize;
                    if !filter(i) {
                        continue;
                    }
                    if !pruned {
                        stats.scanned += 1;
                        heap.push(i, sq_dist(query, self.points.row(i)));
                        continue;
                    }
                    // The heap accepts a point iff it is not full or the
                    // distance strictly undercuts the worst kept one; both
                    // prunes below only ever skip points provably at or
                    // beyond that cutoff, so the heap evolves identically.
                    let cutoff =
                        if heap.is_full() { heap.worst() } else { f64::INFINITY };
                    if cutoff.is_finite() {
                        let gap = (q_norm - self.norms[i]).abs()
                            - NORM_GAP_MARGIN * (q_norm + self.norms[i]);
                        if gap > 0.0 && gap * gap * LB_DEFLATE >= cutoff {
                            stats.norm_gap_pruned += 1;
                            continue;
                        }
                    }
                    stats.scanned += 1;
                    if let Some(d) = sq_dist_within(query, self.points.row(i), cutoff) {
                        heap.push(i, d);
                    } else {
                        stats.early_exit_pruned += 1;
                    }
                }
            }
            Node::Split { axis, value, left, right } => {
                let delta = query[*axis as usize] - value;
                let (near, far) = if delta < 0.0 { (*left, *right) } else { (*right, *left) };
                self.search_filtered(near, query, q_norm, heap, filter, pruned, stats);
                // Visit the far side only if the splitting plane is closer
                // than the current k-th best (or the heap is not full).
                if !heap.is_full() || delta * delta < heap.worst() {
                    self.search_filtered(far, query, q_norm, heap, filter, pruned, stats);
                }
            }
        }
    }
}

/// A brute-force kNN index over a point matrix with cached norms — the
/// right tool when queries are few or the data is too high-dimensional
/// for the kd-tree to prune well. [`Self::nearest`] replaces the full
/// sort with a `select_nth_unstable` top-k; both paths order candidates
/// by the total order `(distance, index)`, so their outputs are
/// **identical**, element for element.
#[derive(Debug, Clone, serde::Serialize, serde::Deserialize)]
pub struct BruteKnn {
    points: ProjectedMatrix,
    norms: Vec<f64>,
}

impl BruteKnn {
    /// Builds the index (computes the per-point norms) over all rows.
    pub fn build(points: ProjectedMatrix) -> Self {
        let norms = (0..points.n_rows)
            .map(|i| points.row(i).iter().map(|v| v * v).sum::<f64>().sqrt())
            .collect();
        Self { points, norms }
    }

    /// Number of indexed points.
    #[inline]
    pub fn len(&self) -> usize {
        self.points.n_rows
    }

    /// `true` when no points are indexed.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.points.n_rows == 0
    }

    fn distances(&self, query: &[f64]) -> Vec<(usize, f64)> {
        assert_eq!(query.len(), self.points.n_cols, "query dimensionality mismatch");
        (0..self.points.n_rows)
            .map(|i| (i, sq_dist(query, self.points.row(i))))
            .collect()
    }

    /// The `k` nearest neighbours as `(index, squared distance)`, sorted
    /// ascending with ties broken by index: full-sort reference kernel.
    pub fn nearest_naive(&self, query: &[f64], k: usize) -> Vec<(usize, f64)> {
        let mut all = self.distances(query);
        all.sort_by(cmp_dist_idx);
        all.truncate(k);
        all
    }

    /// The `k` nearest neighbours, identical to [`Self::nearest_naive`]
    /// but selecting the top-k in O(n) before sorting only that prefix.
    pub fn nearest(&self, query: &[f64], k: usize) -> Vec<(usize, f64)> {
        let mut all = self.distances(query);
        if k == 0 {
            return Vec::new();
        }
        if k < all.len() {
            all.select_nth_unstable_by(k - 1, cmp_dist_idx);
            all.truncate(k);
        }
        all.sort_by(cmp_dist_idx);
        all
    }
}

/// Total order on `(index, squared distance)` pairs: distance first,
/// index as the tie-break.
fn cmp_dist_idx(a: &(usize, f64), b: &(usize, f64)) -> std::cmp::Ordering {
    a.1.partial_cmp(&b.1).expect("distances are finite").then(a.0.cmp(&b.0))
}

/// Fixed-capacity max-heap keeping the k smallest distances seen.
struct BoundedMaxHeap {
    k: usize,
    // (distance, index); max element first.
    items: Vec<(f64, usize)>,
}

impl BoundedMaxHeap {
    fn new(k: usize) -> Self {
        Self { k, items: Vec::with_capacity(k + 1) }
    }

    fn is_full(&self) -> bool {
        self.items.len() >= self.k
    }

    fn worst(&self) -> f64 {
        self.items.first().map_or(f64::INFINITY, |&(d, _)| d)
    }

    fn push(&mut self, index: usize, dist: f64) {
        if self.is_full() && dist >= self.worst() {
            return;
        }
        self.items.push((dist, index));
        self.sift_up(self.items.len() - 1);
        if self.items.len() > self.k {
            self.pop_max();
        }
    }

    fn pop_max(&mut self) {
        let last = self.items.len() - 1;
        self.items.swap(0, last);
        self.items.pop();
        self.sift_down(0);
    }

    fn sift_up(&mut self, mut i: usize) {
        while i > 0 {
            let parent = (i - 1) / 2;
            if self.items[i].0 > self.items[parent].0 {
                self.items.swap(i, parent);
                i = parent;
            } else {
                break;
            }
        }
    }

    fn sift_down(&mut self, mut i: usize) {
        loop {
            let (l, r) = (2 * i + 1, 2 * i + 2);
            let mut largest = i;
            if l < self.items.len() && self.items[l].0 > self.items[largest].0 {
                largest = l;
            }
            if r < self.items.len() && self.items[r].0 > self.items[largest].0 {
                largest = r;
            }
            if largest == i {
                break;
            }
            self.items.swap(i, largest);
            i = largest;
        }
    }

    fn into_sorted(self) -> Vec<(usize, f64)> {
        let mut v: Vec<(usize, f64)> =
            self.items.into_iter().map(|(d, i)| (i, d)).collect();
        v.sort_by(|a, b| a.1.partial_cmp(&b.1).expect("distances are finite"));
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::Rng;
    use rand::SeedableRng;

    fn random_matrix(n: usize, d: usize, seed: u64) -> ProjectedMatrix {
        let mut rng = StdRng::seed_from_u64(seed);
        ProjectedMatrix {
            data: (0..n * d).map(|_| rng.gen_range(-10.0..10.0)).collect(),
            n_cols: d,
            n_rows: n,
        }
    }

    fn brute_force(x: &ProjectedMatrix, q: &[f64], k: usize) -> Vec<(usize, f64)> {
        let mut all: Vec<(usize, f64)> =
            (0..x.n_rows).map(|i| (i, sq_dist(q, x.row(i)))).collect();
        all.sort_by(|a, b| a.1.partial_cmp(&b.1).unwrap());
        all.truncate(k);
        all
    }

    #[test]
    fn matches_brute_force() {
        let x = random_matrix(500, 5, 1);
        let tree = KdTree::build(x.clone());
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..50 {
            let q: Vec<f64> = (0..5).map(|_| rng.gen_range(-12.0..12.0)).collect();
            let expect = brute_force(&x, &q, 7);
            let got = tree.nearest(&q, 7);
            let e_idx: Vec<f64> = expect.iter().map(|&(_, d)| d).collect();
            let g_idx: Vec<f64> = got.iter().map(|&(_, d)| d).collect();
            assert_eq!(g_idx.len(), 7);
            for (a, b) in e_idx.iter().zip(&g_idx) {
                assert!((a - b).abs() < 1e-9, "distance mismatch");
            }
        }
    }

    #[test]
    fn filtered_query_respects_predicate() {
        let x = random_matrix(200, 3, 3);
        let tree = KdTree::build(x.clone());
        let q = [0.0, 0.0, 0.0];
        // Only even indices allowed.
        let got = tree.nearest_filtered(&q, 5, |i| i % 2 == 0);
        assert_eq!(got.len(), 5);
        assert!(got.iter().all(|&(i, _)| i % 2 == 0));
        // Equals brute force restricted to even indices.
        let mut all: Vec<(usize, f64)> = (0..x.n_rows)
            .filter(|i| i % 2 == 0)
            .map(|i| (i, sq_dist(&q, x.row(i))))
            .collect();
        all.sort_by(|a, b| a.1.partial_cmp(&b.1).unwrap());
        for (e, g) in all[..5].iter().zip(&got) {
            assert!((e.1 - g.1).abs() < 1e-9);
        }
    }

    #[test]
    fn fewer_points_than_k() {
        let x = random_matrix(3, 2, 4);
        let tree = KdTree::build(x);
        let got = tree.nearest(&[0.0, 0.0], 10);
        assert_eq!(got.len(), 3);
        // Sorted ascending.
        assert!(got.windows(2).all(|w| w[0].1 <= w[1].1));
    }

    #[test]
    fn duplicate_points_are_handled() {
        let x = ProjectedMatrix {
            data: vec![1.0; 100], // 50 identical 2-d points
            n_cols: 2,
            n_rows: 50,
        };
        let tree = KdTree::build(x);
        let got = tree.nearest(&[1.0, 1.0], 5);
        assert_eq!(got.len(), 5);
        assert!(got.iter().all(|&(_, d)| d < 1e-12));
    }

    #[test]
    fn empty_tree_and_zero_k() {
        let x = ProjectedMatrix { data: vec![], n_cols: 2, n_rows: 0 };
        let tree = KdTree::build(x);
        assert!(tree.is_empty());
        assert!(tree.nearest(&[0.0, 0.0], 3).is_empty());
        let x = random_matrix(10, 2, 5);
        let tree = KdTree::build(x);
        assert!(tree.nearest(&[0.0, 0.0], 0).is_empty());
        assert_eq!(tree.len(), 10);
    }

    #[test]
    fn exact_match_is_found_first() {
        let x = random_matrix(100, 4, 6);
        let target = x.row(42).to_vec();
        let tree = KdTree::build(x);
        let got = tree.nearest(&target, 1);
        assert_eq!(got[0].0, 42);
        assert!(got[0].1 < 1e-12);
    }

    #[test]
    #[should_panic(expected = "dimensionality")]
    fn wrong_dimensionality_panics() {
        let tree = KdTree::build(random_matrix(10, 3, 7));
        tree.nearest(&[0.0, 0.0], 1);
    }
}
