//! Flat centroid matrix for the compiled serving plane.
//!
//! [`crate::KMeansModel`] stores its centroids as `Vec<Vec<f64>>` — one
//! heap allocation per centroid, so every nearest-centroid query chases
//! `k` pointers. [`CentroidMatrix`] packs the same centroids into one
//! contiguous row-major `k × d` slab with the norms cached alongside,
//! turning the region match into a linear sweep over one cache-resident
//! block.
//!
//! **Equivalence contract**: [`CentroidMatrix::nearest`] replicates
//! [`crate::KMeansModel::predict_pruned`] *bit for bit* — same centroid
//! iteration order, the same reverse-triangle-inequality prefilter with
//! the same deflated margins, the same exact squared-distance summation
//! for surviving candidates, and the same strict-improvement tie-break
//! (first centroid wins ties). It also flushes the same
//! `online.pruned_candidates` telemetry counter, so traces are
//! indistinguishable between the interpreted and compiled planes.

use crate::kmeans::{sq_dist, KMeansModel, LB_DEFLATE, NORM_GAP_MARGIN};

/// Widest centroid count served by the transposed (column-major) scan;
/// beyond it the scan falls back to the row-major four-lane sweep. 32
/// accumulators fit comfortably in registers/L1 and cover every
/// serving-plane configuration (the paper's grids stay below k = 16).
const COLUMN_SCAN_MAX_K: usize = 32;

/// Contiguous centroid slab in both orders plus cached norms.
#[derive(Debug, Clone, PartialEq)]
pub struct CentroidMatrix {
    data: Vec<f64>,
    /// The same centroids transposed and padded: `cols[j * col_stride +
    /// c]` is coordinate `j` of centroid `c`, so one query coordinate
    /// touches all `k` centroids through one contiguous run — the shape
    /// the auto-vectoriser wants for the distance sweep. Padding columns
    /// (up to the power-of-two stride) are zero and never compared.
    cols: Vec<f64>,
    /// Power-of-two row length of `cols` (4–32); `k` rounded up.
    col_stride: usize,
    norms: Vec<f64>,
    n_cols: usize,
}

impl CentroidMatrix {
    /// Packs the centroids of a fitted k-means model. The cached norms are
    /// computed exactly as [`KMeansModel::centroid_norms`] does.
    ///
    /// # Panics
    /// Panics if the model has no centroids (a fitted model always has
    /// `k ≥ 1`).
    pub fn from_model(model: &KMeansModel) -> Self {
        let norms = model.centroid_norms();
        Self::with_norms(model, norms)
    }

    /// Like [`Self::from_model`], but adopts already-computed norms
    /// instead of recomputing them — callers that restored a snapshot (or
    /// hold a fitted [`crate::KMeansModel`] with cached norms) avoid the
    /// duplicate `k × d` sweep. Debug builds verify the handed-in norms
    /// match a fresh recomputation bit-for-bit.
    ///
    /// # Panics
    /// Panics if the model has no centroids or `norms.len() != k`.
    pub fn with_norms(model: &KMeansModel, norms: Vec<f64>) -> Self {
        assert!(!model.centroids.is_empty(), "cannot flatten a centroid-free model");
        assert_eq!(norms.len(), model.centroids.len(), "one norm per centroid");
        debug_assert!(
            model
                .centroid_norms()
                .iter()
                .zip(&norms)
                .all(|(a, b)| a.to_bits() == b.to_bits()),
            "adopted norms must match the centroids bit-for-bit"
        );
        let n_cols = model.centroids[0].len();
        let mut data = Vec::with_capacity(model.centroids.len() * n_cols);
        for centroid in &model.centroids {
            data.extend_from_slice(centroid);
        }
        match Self::from_raw(data, norms, n_cols) {
            Ok(matrix) => matrix,
            Err(detail) => unreachable!("fitted model produced invalid slab: {detail}"),
        }
    }

    /// Rebuilds a matrix from its flat parts — the row-major centroid
    /// slab and the cached norms — as produced by [`Self::data`] /
    /// [`Self::norms`]. The transposed column slab is a derived cache and
    /// is reconstructed, not transported. Returns a description of the
    /// inconsistency instead of panicking so binary loaders can surface
    /// it as a typed error.
    ///
    /// # Errors
    /// A human-readable detail string when the slab shape is
    /// inconsistent (`data.len() != k * n_cols`, zero centroids, or a
    /// zero-width matrix with non-empty data).
    pub fn from_raw(data: Vec<f64>, norms: Vec<f64>, n_cols: usize) -> Result<Self, String> {
        let k = norms.len();
        if k == 0 {
            return Err("centroid matrix must hold at least one centroid".into());
        }
        if data.len() != k * n_cols {
            return Err(format!(
                "centroid slab holds {} values, expected k={k} × d={n_cols}",
                data.len()
            ));
        }
        let col_stride = k.next_power_of_two().clamp(4, COLUMN_SCAN_MAX_K);
        let mut cols = vec![0.0; col_stride * n_cols];
        if k <= COLUMN_SCAN_MAX_K {
            for (c, centroid) in data.chunks_exact(n_cols.max(1)).enumerate().take(k) {
                for (j, &v) in centroid.iter().enumerate() {
                    cols[j * col_stride + c] = v;
                }
            }
        }
        Ok(Self { data, cols, col_stride, norms, n_cols })
    }

    /// The row-major `k × d` centroid slab.
    pub fn data(&self) -> &[f64] {
        &self.data
    }

    /// The cached centroid norms (`k` values).
    pub fn norms(&self) -> &[f64] {
        &self.norms
    }

    /// Transposed distance sweep with a compile-time column width `K`
    /// (== `self.col_stride`): all running sums advance together through
    /// contiguous fixed-shape loads, which the auto-vectoriser turns
    /// into a handful of vector FMAs per query coordinate. Accumulator
    /// `c` receives exactly [`sq_dist`]'s addition sequence for centroid
    /// `c`, and the argmin scan uses the same ascending-order
    /// strict-improvement rule — bit-identical to the scalar scan.
    fn column_scan<const K: usize>(&self, point: &[f64], k: usize) -> usize {
        debug_assert_eq!(self.col_stride, K);
        let mut acc = [0.0f64; K];
        for (&x, col) in point.iter().zip(self.cols.chunks_exact(K)) {
            for (a, &y) in acc.iter_mut().zip(col) {
                let d = x - y;
                *a += d * d;
            }
        }
        let mut best = (0usize, f64::INFINITY);
        for (c, &d) in acc[..k].iter().enumerate() {
            if d < best.1 {
                best = (c, d);
            }
        }
        best.0
    }

    /// Number of centroids.
    pub fn k(&self) -> usize {
        self.norms.len()
    }

    /// Centroid dimensionality.
    pub fn n_cols(&self) -> usize {
        self.n_cols
    }

    /// Centroid `c` as a contiguous slice.
    #[inline]
    pub fn row(&self, c: usize) -> &[f64] {
        &self.data[c * self.n_cols..(c + 1) * self.n_cols]
    }

    /// Squared distances from `point` to centroids `c..c + 4` — four
    /// *independent* accumulator chains stepped in lockstep, so their
    /// floating-point add latencies overlap. Each lane performs exactly
    /// [`sq_dist`]'s operation sequence on its own centroid, so every
    /// returned distance carries the same bits as a scalar call.
    #[inline]
    fn sq_dist4(&self, point: &[f64], c: usize) -> [f64; 4] {
        let d = point.len();
        // `[..d]` re-slices teach the optimizer that every row spans the
        // whole loop range, so the inner accesses are bounds-check-free.
        let r0 = &self.row(c)[..d];
        let r1 = &self.row(c + 1)[..d];
        let r2 = &self.row(c + 2)[..d];
        let r3 = &self.row(c + 3)[..d];
        let mut acc = [0.0f64; 4];
        for (j, &x) in point.iter().enumerate() {
            let d0 = x - r0[j];
            acc[0] += d0 * d0;
            let d1 = x - r1[j];
            acc[1] += d1 * d1;
            let d2 = x - r2[j];
            acc[2] += d2 * d2;
            let d3 = x - r3[j];
            acc[3] += d3 * d3;
        }
        acc
    }

    /// Index of the centroid nearest to `point` — bit-identical to
    /// [`KMeansModel::predict_pruned`] with the model's cached norms.
    ///
    /// With telemetry off, the scan runs without the norm prefilter: the
    /// prefilter only ever skips candidates whose distance lower bound
    /// already exceeds the best (it cannot change the argmin — the same
    /// soundness `predict` vs `predict_pruned` equivalence tests pin),
    /// and at serving-plane region counts the gap checks cost more than
    /// the exact distances they save. Distances are computed four
    /// centroids at a time ([`Self::sq_dist4`]) but compared strictly in
    /// centroid order with the same strict-improvement rule, so the
    /// argmin (first centroid wins ties) is unchanged. The prefiltered
    /// path is kept when telemetry records so the
    /// `online.pruned_candidates` counter stays indistinguishable from
    /// the interpreted plane's.
    ///
    /// # Panics
    /// Panics if `point.len() != self.n_cols()`.
    pub fn nearest(&self, point: &[f64]) -> usize {
        assert_eq!(point.len(), self.n_cols, "point dimensionality must match centroids");
        if !falcc_telemetry::enabled() {
            let k = self.norms.len();
            // Compile-time widths so the transposed sweep's inner loop
            // is a fixed-shape vector body; k values off the powers of
            // two pad up to the next one (padding columns are zero and
            // ignored by the argmin bound).
            match k {
                1 => return 0,
                2..=4 => return self.column_scan::<4>(point, k),
                5..=8 => return self.column_scan::<8>(point, k),
                9..=16 => return self.column_scan::<16>(point, k),
                17..=COLUMN_SCAN_MAX_K => return self.column_scan::<COLUMN_SCAN_MAX_K>(point, k),
                _ => {}
            }
            let mut best = (0usize, f64::INFINITY);
            let mut c = 0;
            while c + 4 <= k {
                let dists = self.sq_dist4(point, c);
                for (lane, d) in dists.into_iter().enumerate() {
                    if d < best.1 {
                        best = (c + lane, d);
                    }
                }
                c += 4;
            }
            for tail in c..k {
                let d = sq_dist(point, self.row(tail));
                if d < best.1 {
                    best = (tail, d);
                }
            }
            return best.0;
        }
        let p_norm = point.iter().map(|v| v * v).sum::<f64>().sqrt();
        let mut best = (0usize, f64::INFINITY);
        let mut pruned = 0u64;
        for c in 0..self.norms.len() {
            if best.1.is_finite() {
                let gap = (p_norm - self.norms[c]).abs()
                    - NORM_GAP_MARGIN * (p_norm + self.norms[c]);
                if gap > 0.0 && gap * gap * LB_DEFLATE >= best.1 {
                    pruned += 1;
                    continue;
                }
            }
            let d = sq_dist(point, self.row(c));
            if d < best.1 {
                best = (c, d);
            }
        }
        falcc_telemetry::counters::ONLINE_PRUNED_CANDIDATES.add(pruned);
        best.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::KMeans;
    use falcc_dataset::dataset::ProjectedMatrix;
    use rand::rngs::StdRng;
    use rand::Rng;
    use rand::SeedableRng;

    fn random_points(n: usize, d: usize, seed: u64) -> ProjectedMatrix {
        let mut rng = StdRng::seed_from_u64(seed);
        let data: Vec<f64> = (0..n * d).map(|_| rng.gen_range(-4.0..4.0)).collect();
        ProjectedMatrix { data, n_cols: d, n_rows: n }
    }

    #[test]
    fn nearest_is_bit_identical_to_predict_pruned() {
        for (k, d, seed) in [(1usize, 2usize, 1u64), (4, 3, 2), (9, 5, 3), (16, 1, 4)] {
            let points = random_points(240, d, seed);
            let model = KMeans::new(k, seed).fit(&points);
            let matrix = CentroidMatrix::from_model(&model);
            let norms = model.centroid_norms();
            assert_eq!(matrix.k(), model.k());
            assert_eq!(matrix.n_cols(), d);

            let queries = random_points(300, d, seed ^ 0xABCD);
            for i in 0..queries.n_rows {
                let q = queries.row(i);
                assert_eq!(
                    model.predict_pruned(q, &norms),
                    matrix.nearest(q),
                    "divergence at k={k} d={d} seed={seed} query {i}"
                );
            }
            // Centroids on their own positions too (zero-distance path).
            for c in 0..model.k() {
                assert_eq!(model.predict_pruned(matrix.row(c), &norms), matrix.nearest(matrix.row(c)));
            }
        }
    }

    #[test]
    fn raw_round_trip_is_identical_and_shape_checked() {
        let points = random_points(160, 3, 21);
        let model = KMeans::new(6, 21).fit(&points);
        let matrix = CentroidMatrix::from_model(&model);
        let rebuilt = CentroidMatrix::from_raw(
            matrix.data().to_vec(),
            matrix.norms().to_vec(),
            matrix.n_cols(),
        )
        .unwrap();
        assert_eq!(rebuilt, matrix, "raw parts must reproduce the full matrix");
        let queries = random_points(80, 3, 22);
        for i in 0..queries.n_rows {
            assert_eq!(matrix.nearest(queries.row(i)), rebuilt.nearest(queries.row(i)));
        }
        assert!(CentroidMatrix::from_raw(vec![0.0; 5], vec![1.0; 2], 3).is_err());
        assert!(CentroidMatrix::from_raw(Vec::new(), Vec::new(), 3).is_err());
    }

    #[test]
    fn rows_match_source_centroids() {
        let points = random_points(120, 4, 9);
        let model = KMeans::new(5, 9).fit(&points);
        let matrix = CentroidMatrix::from_model(&model);
        for (c, centroid) in model.centroids.iter().enumerate() {
            assert_eq!(matrix.row(c), centroid.as_slice());
        }
    }
}
