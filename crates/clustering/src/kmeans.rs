//! Lloyd's k-means with k-means++ initialisation.
//!
//! The clustering component of FALCC (paper §3.5) groups the validation
//! dataset into local regions by minimising the sum of squared distances.
//! This implementation is deterministic per seed, handles `k` larger than
//! the number of distinct points (empty clusters are re-seeded from the
//! farthest point), and exposes the trained centroids for the online
//! cluster-matching step.

use falcc_dataset::dataset::ProjectedMatrix;
use rand::rngs::StdRng;
use rand::Rng;
use rand::SeedableRng;

/// k-means trainer configuration.
#[derive(Debug, Clone, Copy)]
pub struct KMeans {
    /// Number of clusters.
    pub k: usize,
    /// Maximum Lloyd iterations.
    pub max_iter: usize,
    /// Convergence tolerance on the relative SSE improvement.
    pub tol: f64,
    /// Independent k-means++ restarts; the run with the lowest SSE wins
    /// (scikit-learn's `n_init`). Deterministic per seed.
    pub n_init: usize,
    /// RNG seed (k-means++ sampling).
    pub seed: u64,
}

impl KMeans {
    /// A sensible default configuration for `k` clusters.
    pub fn new(k: usize, seed: u64) -> Self {
        Self { k, max_iter: 100, tol: 1e-6, n_init: 4, seed }
    }

    /// Fits the model to the rows of `x`, keeping the best of
    /// [`Self::n_init`] restarts.
    ///
    /// # Panics
    /// Panics if `k == 0` or `x` has no rows.
    pub fn fit(&self, x: &ProjectedMatrix) -> KMeansModel {
        let mut best: Option<KMeansModel> = None;
        for restart in 0..self.n_init.max(1) {
            let run = self.fit_once(x, self.seed ^ (restart as u64).wrapping_mul(0x9e3779b9));
            if best.as_ref().is_none_or(|b| run.sse < b.sse) {
                best = Some(run);
            }
        }
        best.expect("at least one restart")
    }

    fn fit_once(&self, x: &ProjectedMatrix, seed: u64) -> KMeansModel {
        assert!(self.k > 0, "k must be positive");
        assert!(x.n_rows > 0, "cannot cluster an empty matrix");
        let k = self.k.min(x.n_rows);
        let d = x.n_cols;
        let mut rng = StdRng::seed_from_u64(seed ^ 0x9e37_79b9_7f4a_7c15);

        let mut centroids = plus_plus_init(x, k, &mut rng);
        let mut assignments = vec![0usize; x.n_rows];
        let mut sse = f64::INFINITY;

        for _ in 0..self.max_iter {
            // Assignment step.
            let mut new_sse = 0.0;
            for (i, slot) in assignments.iter_mut().enumerate() {
                let (c, dist) = nearest_centroid(x.row(i), &centroids);
                *slot = c;
                new_sse += dist;
            }
            // Update step.
            let mut sums = vec![0.0f64; k * d];
            let mut counts = vec![0usize; k];
            for (i, &c) in assignments.iter().enumerate() {
                counts[c] += 1;
                for (j, v) in x.row(i).iter().enumerate() {
                    sums[c * d + j] += v;
                }
            }
            for c in 0..k {
                if counts[c] == 0 {
                    // Re-seed an empty cluster from the point farthest from
                    // its centroid, the standard fix for collapse.
                    let far = (0..x.n_rows)
                        .max_by(|&a, &b| {
                            let da = sq_dist(x.row(a), &centroids[assignments[a]]);
                            let db = sq_dist(x.row(b), &centroids[assignments[b]]);
                            da.partial_cmp(&db).expect("distances are finite")
                        })
                        .expect("non-empty matrix");
                    centroids[c] = x.row(far).to_vec();
                } else {
                    for j in 0..d {
                        centroids[c][j] = sums[c * d + j] / counts[c] as f64;
                    }
                }
            }
            // Convergence check on relative SSE improvement.
            let converged =
                sse.is_finite() && (sse - new_sse).abs() <= self.tol * sse.max(1e-12);
            sse = new_sse;
            if converged {
                break;
            }
        }

        // Final consistent assignment against the final centroids.
        let mut final_sse = 0.0;
        for (i, slot) in assignments.iter_mut().enumerate() {
            let (c, dist) = nearest_centroid(x.row(i), &centroids);
            *slot = c;
            final_sse += dist;
        }
        KMeansModel { centroids, assignments, sse: final_sse }
    }
}

/// A trained k-means model.
#[derive(Debug, Clone, serde::Serialize, serde::Deserialize)]
pub struct KMeansModel {
    /// Cluster centroids, `k × d`.
    pub centroids: Vec<Vec<f64>>,
    /// Cluster id per training row.
    pub assignments: Vec<usize>,
    /// Final sum of squared distances (inertia).
    pub sse: f64,
}

impl KMeansModel {
    /// Number of clusters.
    #[inline]
    pub fn k(&self) -> usize {
        self.centroids.len()
    }

    /// Assigns a new point to its nearest centroid. This is FALCC's entire
    /// online cluster-matching step — O(k·d).
    ///
    /// # Panics
    /// Panics if `point` has the wrong dimensionality.
    pub fn predict(&self, point: &[f64]) -> usize {
        assert_eq!(
            point.len(),
            self.centroids[0].len(),
            "point dimensionality must match centroids"
        );
        nearest_centroid(point, &self.centroids).0
    }

    /// Per-cluster row-index lists (into the training matrix).
    pub fn cluster_members(&self) -> Vec<Vec<usize>> {
        let mut members = vec![Vec::new(); self.k()];
        for (i, &c) in self.assignments.iter().enumerate() {
            members[c].push(i);
        }
        members
    }
}

fn plus_plus_init(x: &ProjectedMatrix, k: usize, rng: &mut StdRng) -> Vec<Vec<f64>> {
    let first = rng.gen_range(0..x.n_rows);
    let mut centroids = vec![x.row(first).to_vec()];
    let mut min_dist: Vec<f64> =
        (0..x.n_rows).map(|i| sq_dist(x.row(i), &centroids[0])).collect();
    while centroids.len() < k {
        let total: f64 = min_dist.iter().sum();
        let next = if total <= 0.0 {
            // All points coincide with chosen centroids; pick uniformly.
            rng.gen_range(0..x.n_rows)
        } else {
            let mut target = rng.gen_range(0.0..total);
            let mut chosen = x.n_rows - 1;
            for (i, &dd) in min_dist.iter().enumerate() {
                if target < dd {
                    chosen = i;
                    break;
                }
                target -= dd;
            }
            chosen
        };
        let c = x.row(next).to_vec();
        for (i, md) in min_dist.iter_mut().enumerate() {
            *md = md.min(sq_dist(x.row(i), &c));
        }
        centroids.push(c);
    }
    centroids
}

#[inline]
fn sq_dist(a: &[f64], b: &[f64]) -> f64 {
    a.iter().zip(b).map(|(x, y)| (x - y) * (x - y)).sum()
}

#[inline]
fn nearest_centroid(point: &[f64], centroids: &[Vec<f64>]) -> (usize, f64) {
    let mut best = (0usize, f64::INFINITY);
    for (c, centroid) in centroids.iter().enumerate() {
        let d = sq_dist(point, centroid);
        if d < best.1 {
            best = (c, d);
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;

    fn blobs(per_blob: usize, centers: &[(f64, f64)], spread: f64, seed: u64) -> ProjectedMatrix {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut data = Vec::new();
        for &(cx, cy) in centers {
            for _ in 0..per_blob {
                data.push(cx + rng.gen_range(-spread..spread));
                data.push(cy + rng.gen_range(-spread..spread));
            }
        }
        ProjectedMatrix { data, n_cols: 2, n_rows: per_blob * centers.len() }
    }

    #[test]
    fn separates_well_separated_blobs() {
        let x = blobs(50, &[(0.0, 0.0), (10.0, 10.0), (0.0, 10.0)], 0.5, 1);
        let model = KMeans::new(3, 7).fit(&x);
        assert_eq!(model.k(), 3);
        // All members of a blob share a cluster.
        for blob in 0..3 {
            let first = model.assignments[blob * 50];
            for i in 0..50 {
                assert_eq!(model.assignments[blob * 50 + i], first, "blob {blob}");
            }
        }
        // And the three blobs get three distinct clusters.
        let mut ids: Vec<usize> = (0..3).map(|b| model.assignments[b * 50]).collect();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), 3);
    }

    #[test]
    fn predict_matches_training_assignment() {
        let x = blobs(30, &[(0.0, 0.0), (8.0, 8.0)], 0.4, 2);
        let model = KMeans::new(2, 3).fit(&x);
        for i in 0..x.n_rows {
            assert_eq!(model.predict(x.row(i)), model.assignments[i]);
        }
        // A brand-new point near blob 1's centre goes to blob 1's cluster.
        let c1 = model.assignments[35];
        assert_eq!(model.predict(&[8.2, 7.9]), c1);
    }

    #[test]
    fn sse_decreases_with_more_clusters() {
        let x = blobs(40, &[(0.0, 0.0), (5.0, 5.0), (9.0, 0.0)], 1.0, 3);
        let sse: Vec<f64> =
            (1..=4).map(|k| KMeans::new(k, 11).fit(&x).sse).collect();
        for w in sse.windows(2) {
            assert!(w[1] <= w[0] + 1e-9, "SSE must be non-increasing: {sse:?}");
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let x = blobs(25, &[(0.0, 0.0), (6.0, 6.0)], 1.0, 4);
        let a = KMeans::new(2, 42).fit(&x);
        let b = KMeans::new(2, 42).fit(&x);
        assert_eq!(a.assignments, b.assignments);
        assert_eq!(a.centroids, b.centroids);
    }

    #[test]
    fn k_capped_at_row_count_and_duplicates_handled() {
        let x = ProjectedMatrix { data: vec![1.0, 1.0, 1.0, 1.0], n_cols: 1, n_rows: 4 };
        let model = KMeans::new(10, 0).fit(&x);
        assert!(model.k() <= 4);
        assert!(model.sse < 1e-9);
    }

    #[test]
    fn cluster_members_partition_rows() {
        let x = blobs(20, &[(0.0, 0.0), (7.0, 7.0)], 0.5, 5);
        let model = KMeans::new(2, 1).fit(&x);
        let members = model.cluster_members();
        let total: usize = members.iter().map(|m| m.len()).sum();
        assert_eq!(total, x.n_rows);
        for (c, m) in members.iter().enumerate() {
            for &i in m {
                assert_eq!(model.assignments[i], c);
            }
        }
    }

    #[test]
    #[should_panic(expected = "k must be positive")]
    fn zero_k_panics() {
        let x = ProjectedMatrix { data: vec![0.0], n_cols: 1, n_rows: 1 };
        KMeans::new(0, 0).fit(&x);
    }

    #[test]
    fn single_cluster_centroid_is_the_mean() {
        let x = ProjectedMatrix {
            data: vec![0.0, 2.0, 4.0, 6.0],
            n_cols: 1,
            n_rows: 4,
        };
        let model = KMeans::new(1, 9).fit(&x);
        assert!((model.centroids[0][0] - 3.0).abs() < 1e-9);
    }
}
