//! Lloyd's k-means with k-means++ initialisation.
//!
//! The clustering component of FALCC (paper §3.5) groups the validation
//! dataset into local regions by minimising the sum of squared distances.
//! This implementation is deterministic per seed, handles `k` larger than
//! the number of distinct points (empty clusters are re-seeded from the
//! farthest point), and exposes the trained centroids for the online
//! cluster-matching step.
//!
//! # Two Lloyd kernels, one output
//!
//! Each restart runs either the naive fused Lloyd loop ([`KMeans::bounds`]
//! `== false`) or a Hamerly-style bounded loop (`true`, the default). The
//! bounded loop keeps, per point, a deflated lower bound on the Euclidean
//! distance to the nearest *other* centroid; while the exact distance to
//! the assigned centroid stays below that bound, the full centroid scan is
//! skipped. Because the exact assigned distance is still computed every
//! iteration (it feeds the SSE/convergence accumulator in the same order),
//! and the bound's safety margins dwarf float rounding, both kernels
//! produce **bit-identical** assignments, centroids, and SSE — a property
//! pinned by the equivalence proptests in `tests/kernel_equivalence.rs`.
//!
//! The textbook `‖x−c‖² = ‖x‖² − 2x·c + ‖c‖²` expansion is deliberately
//! *not* used in the distance path: it changes float summation order and
//! therefore the bits. Cached norms are instead used only for *pruning*
//! (see [`KMeansModel::predict_pruned`]), which never changes the result.

use falcc_dataset::dataset::ProjectedMatrix;
use rand::rngs::StdRng;
use rand::Rng;
use rand::SeedableRng;

/// Deflation applied to cached lower bounds so float rounding (relative
/// error ~1e-14 at our dimensionalities) can never turn a pruned candidate
/// into the true winner. Margins of 1e-10 leave four orders of magnitude
/// of slack while costing essentially no pruning power.
pub(crate) const LB_DEFLATE: f64 = 1.0 - 1e-10;
/// Inflation applied to computed centroid movements (same reasoning).
const MOVE_INFLATE: f64 = 1.0 + 1e-10;
/// Absolute margin, scaled by the norm magnitudes, subtracted from the
/// norm-gap prefilter in [`KMeansModel::predict_pruned`]. The gap's float
/// error is relative to the *norms* rather than the gap itself, so a
/// purely relative deflation would not be conservative.
pub(crate) const NORM_GAP_MARGIN: f64 = 1e-10;

/// k-means trainer configuration.
#[derive(Debug, Clone, Copy)]
pub struct KMeans {
    /// Number of clusters.
    pub k: usize,
    /// Maximum Lloyd iterations.
    pub max_iter: usize,
    /// Convergence tolerance on the relative SSE improvement.
    pub tol: f64,
    /// Independent k-means++ restarts; the run with the lowest SSE wins
    /// (scikit-learn's `n_init`). Deterministic per seed.
    pub n_init: usize,
    /// RNG seed (k-means++ sampling).
    pub seed: u64,
    /// Use the Hamerly-style bounded Lloyd kernel. Bit-identical to the
    /// naive kernel (see the module docs); `false` exists for the
    /// equivalence harness and benchmarks.
    pub bounds: bool,
}

impl KMeans {
    /// A sensible default configuration for `k` clusters.
    pub fn new(k: usize, seed: u64) -> Self {
        Self { k, max_iter: 100, tol: 1e-6, n_init: 4, seed, bounds: true }
    }

    /// Fits the model to the rows of `x`, keeping the best of
    /// [`Self::n_init`] restarts.
    ///
    /// # Panics
    /// Panics if `k == 0` or `x` has no rows.
    pub fn fit(&self, x: &ProjectedMatrix) -> KMeansModel {
        let mut best: Option<KMeansModel> = None;
        for restart in 0..self.n_init.max(1) {
            let run = self.fit_once(x, self.seed ^ (restart as u64).wrapping_mul(0x9e3779b9));
            if best.as_ref().is_none_or(|b| run.sse < b.sse) {
                best = Some(run);
            }
        }
        best.expect("at least one restart")
    }

    /// Runs a single Lloyd descent from the given initial centroids — the
    /// warm-start entry point used by LOG-Means to reuse converged
    /// centroids across consecutive `k` values.
    ///
    /// # Panics
    /// Panics if `init` is empty, `x` has no rows, or dimensionalities
    /// disagree.
    pub fn fit_from(&self, x: &ProjectedMatrix, init: Vec<Vec<f64>>) -> KMeansModel {
        assert!(!init.is_empty(), "warm start needs at least one centroid");
        assert!(x.n_rows > 0, "cannot cluster an empty matrix");
        assert!(
            init.iter().all(|c| c.len() == x.n_cols),
            "centroid dimensionality must match the matrix"
        );
        self.lloyd(x, init)
    }

    fn fit_once(&self, x: &ProjectedMatrix, seed: u64) -> KMeansModel {
        assert!(self.k > 0, "k must be positive");
        assert!(x.n_rows > 0, "cannot cluster an empty matrix");
        let k = self.k.min(x.n_rows);
        let mut rng = StdRng::seed_from_u64(seed ^ 0x9e37_79b9_7f4a_7c15);
        let centroids = plus_plus_init(x, k, &mut rng);
        self.lloyd(x, centroids)
    }

    fn lloyd(&self, x: &ProjectedMatrix, centroids: Vec<Vec<f64>>) -> KMeansModel {
        if self.bounds {
            self.lloyd_bounded(x, centroids)
        } else {
            self.lloyd_naive(x, centroids)
        }
    }

    /// Reference kernel: one fused pass per iteration computes the
    /// assignment *and* accumulates the per-cluster sums/counts, instead
    /// of materialising each row twice.
    fn lloyd_naive(&self, x: &ProjectedMatrix, mut centroids: Vec<Vec<f64>>) -> KMeansModel {
        let k = centroids.len();
        let d = x.n_cols;
        let mut assignments = vec![0usize; x.n_rows];
        let mut sse = f64::INFINITY;
        let mut iterations = 0u64;

        for _ in 0..self.max_iter {
            iterations += 1;
            let mut new_sse = 0.0;
            let mut sums = vec![0.0f64; k * d];
            let mut counts = vec![0usize; k];
            for (i, slot) in assignments.iter_mut().enumerate() {
                let row = x.row(i);
                let (c, dist) = nearest_centroid(row, &centroids);
                *slot = c;
                new_sse += dist;
                counts[c] += 1;
                for (j, v) in row.iter().enumerate() {
                    sums[c * d + j] += v;
                }
            }
            apply_update(x, &assignments, &sums, &counts, &mut centroids, None);
            // Convergence check on relative SSE improvement.
            let converged =
                sse.is_finite() && (sse - new_sse).abs() <= self.tol * sse.max(1e-12);
            sse = new_sse;
            if converged {
                break;
            }
        }

        falcc_telemetry::counters::LLOYD_ITERATIONS.add(iterations);
        finalize(x, centroids, assignments)
    }

    /// Bounded kernel: per point, `lb[i]` is a (deflated) lower bound on
    /// the Euclidean distance to the nearest centroid *other than* the
    /// assigned one. The exact squared distance to the assigned centroid
    /// is recomputed each iteration — it feeds the SSE accumulator in the
    /// same order as the naive kernel — and whenever its root stays below
    /// `lb[i]` the assigned centroid is provably the unique strict argmin,
    /// so the O(k·d) scan is skipped. After each centroid update the
    /// bounds decay by the largest (inflated) centroid movement — or the
    /// second largest for points assigned to the most-moved centroid.
    fn lloyd_bounded(&self, x: &ProjectedMatrix, mut centroids: Vec<Vec<f64>>) -> KMeansModel {
        let k = centroids.len();
        let d = x.n_cols;
        let mut assignments = vec![0usize; x.n_rows];
        let mut lb = vec![0.0f64; x.n_rows]; // forces a full scan first time
        let mut movements = vec![0.0f64; k];
        let mut sse = f64::INFINITY;
        let mut iterations = 0u64;
        let mut bound_skips = 0u64;

        for _ in 0..self.max_iter {
            iterations += 1;
            let mut new_sse = 0.0;
            let mut sums = vec![0.0f64; k * d];
            let mut counts = vec![0usize; k];
            for (i, slot) in assignments.iter_mut().enumerate() {
                let row = x.row(i);
                let d_assigned = sq_dist(row, &centroids[*slot]);
                let (c, dist) = if d_assigned.sqrt() < lb[i] {
                    bound_skips += 1;
                    (*slot, d_assigned)
                } else {
                    let (c, d1, d2) = nearest_two(row, &centroids);
                    lb[i] = d2.sqrt() * LB_DEFLATE;
                    (c, d1)
                };
                *slot = c;
                new_sse += dist;
                counts[c] += 1;
                for (j, v) in row.iter().enumerate() {
                    sums[c * d + j] += v;
                }
            }
            apply_update(x, &assignments, &sums, &counts, &mut centroids, Some(&mut movements));
            // Decay the bounds: any other centroid can have approached a
            // point by at most the largest movement among centroids other
            // than the assigned one (conservatively: the global largest,
            // or the runner-up when the assigned centroid is the largest).
            let (max_c, max1, max2) = top_two_movements(&movements);
            for (i, b) in lb.iter_mut().enumerate() {
                *b -= if assignments[i] == max_c { max2 } else { max1 };
            }
            let converged =
                sse.is_finite() && (sse - new_sse).abs() <= self.tol * sse.max(1e-12);
            sse = new_sse;
            if converged {
                break;
            }
        }

        falcc_telemetry::counters::LLOYD_ITERATIONS.add(iterations);
        falcc_telemetry::counters::LLOYD_BOUND_SKIPS.add(bound_skips);
        finalize(x, centroids, assignments)
    }
}

/// Moves each centroid to the mean of its assigned points; empty clusters
/// are re-seeded from the point farthest from its centroid (the standard
/// collapse fix), intentionally observing the partially updated centroid
/// list exactly as the reference kernel always has. When `movements` is
/// given, it receives each centroid's (inflated) Euclidean displacement.
fn apply_update(
    x: &ProjectedMatrix,
    assignments: &[usize],
    sums: &[f64],
    counts: &[usize],
    centroids: &mut [Vec<f64>],
    mut movements: Option<&mut Vec<f64>>,
) {
    let k = centroids.len();
    let d = x.n_cols;
    let mut old = Vec::new();
    for c in 0..k {
        if movements.is_some() {
            old.clear();
            old.extend_from_slice(&centroids[c]);
        }
        if counts[c] == 0 {
            // Degenerate cluster: re-seed rather than divide by zero. The
            // total order keeps this deterministic even under (injected)
            // non-finite coordinates, and the counter surfaces how often
            // the data forces the collapse fix.
            falcc_telemetry::counters::KMEANS_EMPTY_RESEEDS.incr();
            let far = (0..x.n_rows)
                .max_by(|&a, &b| {
                    let da = sq_dist(x.row(a), &centroids[assignments[a]]);
                    let db = sq_dist(x.row(b), &centroids[assignments[b]]);
                    da.total_cmp(&db)
                })
                .unwrap_or(0);
            centroids[c] = x.row(far).to_vec();
        } else {
            for j in 0..d {
                centroids[c][j] = sums[c * d + j] / counts[c] as f64;
            }
        }
        if let Some(mv) = movements.as_deref_mut() {
            mv[c] = sq_dist(&old, &centroids[c]).sqrt() * MOVE_INFLATE;
        }
    }
}

/// Final consistent assignment against the final centroids.
fn finalize(
    x: &ProjectedMatrix,
    centroids: Vec<Vec<f64>>,
    mut assignments: Vec<usize>,
) -> KMeansModel {
    let mut final_sse = 0.0;
    for (i, slot) in assignments.iter_mut().enumerate() {
        let (c, dist) = nearest_centroid(x.row(i), &centroids);
        *slot = c;
        final_sse += dist;
    }
    KMeansModel { centroids, assignments, sse: final_sse }
}

/// Largest and second-largest centroid movements, with the index of the
/// largest. With a single centroid the runner-up is 0.
fn top_two_movements(movements: &[f64]) -> (usize, f64, f64) {
    let mut max_c = 0;
    let mut max1 = f64::NEG_INFINITY;
    let mut max2 = 0.0;
    for (c, &m) in movements.iter().enumerate() {
        if m > max1 {
            max2 = if max1.is_finite() { max1 } else { 0.0 };
            max1 = m;
            max_c = c;
        } else if m > max2 {
            max2 = m;
        }
    }
    (max_c, max1.max(0.0), max2)
}

/// A trained k-means model.
#[derive(Debug, Clone, serde::Serialize, serde::Deserialize)]
pub struct KMeansModel {
    /// Cluster centroids, `k × d`.
    pub centroids: Vec<Vec<f64>>,
    /// Cluster id per training row.
    pub assignments: Vec<usize>,
    /// Final sum of squared distances (inertia).
    pub sse: f64,
}

impl KMeansModel {
    /// Number of clusters.
    #[inline]
    pub fn k(&self) -> usize {
        self.centroids.len()
    }

    /// Assigns a new point to its nearest centroid. This is FALCC's entire
    /// online cluster-matching step — O(k·d).
    ///
    /// # Panics
    /// Panics if `point` has the wrong dimensionality.
    pub fn predict(&self, point: &[f64]) -> usize {
        assert_eq!(
            point.len(),
            self.centroids[0].len(),
            "point dimensionality must match centroids"
        );
        nearest_centroid(point, &self.centroids).0
    }

    /// Euclidean norms of the centroids, computed once per fitted model
    /// and fed to [`Self::predict_pruned`] by the online serving path.
    pub fn centroid_norms(&self) -> Vec<f64> {
        self.centroids
            .iter()
            .map(|c| c.iter().map(|v| v * v).sum::<f64>().sqrt())
            .collect()
    }

    /// [`Self::predict`] with two exactness-preserving prunes: a cached
    /// norm-gap prefilter (`(‖p‖−‖c‖)² ≤ ‖p−c‖²`, conservatively
    /// margined) that skips hopeless centroids without touching their
    /// coordinates, and an early-exit distance loop that abandons a
    /// candidate as soon as its partial sum reaches the incumbent (prefix
    /// sums of nonnegative rounded terms are nondecreasing, so the full
    /// sum could not have won). Returns exactly `self.predict(point)`.
    ///
    /// # Panics
    /// Panics if `point` or `centroid_norms` have the wrong length.
    pub fn predict_pruned(&self, point: &[f64], centroid_norms: &[f64]) -> usize {
        assert_eq!(
            point.len(),
            self.centroids[0].len(),
            "point dimensionality must match centroids"
        );
        assert_eq!(centroid_norms.len(), self.k(), "one cached norm per centroid");
        let p_norm = point.iter().map(|v| v * v).sum::<f64>().sqrt();
        let mut best = (0usize, f64::INFINITY);
        let mut pruned = 0u64;
        for (c, centroid) in self.centroids.iter().enumerate() {
            if best.1.is_finite() {
                let gap = (p_norm - centroid_norms[c]).abs()
                    - NORM_GAP_MARGIN * (p_norm + centroid_norms[c]);
                if gap > 0.0 && gap * gap * LB_DEFLATE >= best.1 {
                    pruned += 1;
                    continue;
                }
            }
            // Plain strict-improvement scan: at FALCC's projection widths
            // the per-chunk cutoff branch of `sq_dist_within` costs more
            // than the arithmetic it saves, and `d < best` is the same
            // test the early exit performs.
            let d = sq_dist(point, centroid);
            if d < best.1 {
                best = (c, d);
            }
        }
        falcc_telemetry::counters::ONLINE_PRUNED_CANDIDATES.add(pruned);
        best.0
    }

    /// Per-cluster row-index lists (into the training matrix).
    pub fn cluster_members(&self) -> Vec<Vec<usize>> {
        let mut members = vec![Vec::new(); self.k()];
        for (i, &c) in self.assignments.iter().enumerate() {
            members[c].push(i);
        }
        members
    }
}

fn plus_plus_init(x: &ProjectedMatrix, k: usize, rng: &mut StdRng) -> Vec<Vec<f64>> {
    let first = rng.gen_range(0..x.n_rows);
    let mut centroids = vec![x.row(first).to_vec()];
    let mut min_dist: Vec<f64> =
        (0..x.n_rows).map(|i| sq_dist(x.row(i), &centroids[0])).collect();
    while centroids.len() < k {
        let total: f64 = min_dist.iter().sum();
        let next = if total <= 0.0 {
            // All points coincide with chosen centroids; pick uniformly.
            rng.gen_range(0..x.n_rows)
        } else {
            let mut target = rng.gen_range(0.0..total);
            let mut chosen = x.n_rows - 1;
            for (i, &dd) in min_dist.iter().enumerate() {
                if target < dd {
                    chosen = i;
                    break;
                }
                target -= dd;
            }
            chosen
        };
        let c = x.row(next).to_vec();
        for (i, md) in min_dist.iter_mut().enumerate() {
            *md = md.min(sq_dist(x.row(i), &c));
        }
        centroids.push(c);
    }
    centroids
}

/// Extends a centroid set to `k` centroids by repeatedly adding the row
/// farthest from its nearest centroid (deterministic farthest-point
/// traversal) — used to adapt warm-start centroids across `k` values.
pub fn extend_centroids(x: &ProjectedMatrix, mut centroids: Vec<Vec<f64>>, k: usize) -> Vec<Vec<f64>> {
    assert!(!centroids.is_empty(), "need at least one centroid to extend");
    let mut min_dist: Vec<f64> = (0..x.n_rows)
        .map(|i| {
            centroids
                .iter()
                .map(|c| sq_dist(x.row(i), c))
                .fold(f64::INFINITY, f64::min)
        })
        .collect();
    while centroids.len() < k.min(x.n_rows.max(1)) {
        let far = (0..x.n_rows)
            .max_by(|&a, &b| min_dist[a].total_cmp(&min_dist[b]))
            .unwrap_or(0);
        let c = x.row(far).to_vec();
        for (i, md) in min_dist.iter_mut().enumerate() {
            *md = md.min(sq_dist(x.row(i), &c));
        }
        centroids.push(c);
    }
    centroids
}

#[inline]
pub(crate) fn sq_dist(a: &[f64], b: &[f64]) -> f64 {
    a.iter().zip(b).map(|(x, y)| (x - y) * (x - y)).sum()
}

/// Squared distance with an early exit: returns `None` as soon as a
/// partial prefix reaches `cutoff`. Because the summands are nonnegative
/// and round-to-nearest is monotone, prefix sums never decrease, so
/// `None` proves the fully-summed distance would satisfy `d >= cutoff` —
/// and a `Some(d)` is summed in exactly [`sq_dist`]'s order, so callers
/// that update a strict incumbent get **bit-identical** results to a
/// full-scan argmin.
#[inline]
pub(crate) fn sq_dist_within(a: &[f64], b: &[f64], cutoff: f64) -> Option<f64> {
    let mut acc = 0.0;
    for (ca, cb) in a.chunks(8).zip(b.chunks(8)) {
        for (x, y) in ca.iter().zip(cb) {
            acc += (x - y) * (x - y);
        }
        if acc >= cutoff {
            return None;
        }
    }
    Some(acc)
}

#[inline]
fn nearest_centroid(point: &[f64], centroids: &[Vec<f64>]) -> (usize, f64) {
    let mut best = (0usize, f64::INFINITY);
    for (c, centroid) in centroids.iter().enumerate() {
        let d = sq_dist(point, centroid);
        if d < best.1 {
            best = (c, d);
        }
    }
    best
}

/// Full scan returning the strict argmin (same tie-break as
/// [`nearest_centroid`]: lowest index wins) plus the runner-up distance,
/// which seeds the Hamerly lower bound.
#[inline]
fn nearest_two(point: &[f64], centroids: &[Vec<f64>]) -> (usize, f64, f64) {
    let mut best = (0usize, f64::INFINITY);
    let mut second = f64::INFINITY;
    for (c, centroid) in centroids.iter().enumerate() {
        let d = sq_dist(point, centroid);
        if d < best.1 {
            second = best.1;
            best = (c, d);
        } else if d < second {
            second = d;
        }
    }
    (best.0, best.1, second)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn blobs(per_blob: usize, centers: &[(f64, f64)], spread: f64, seed: u64) -> ProjectedMatrix {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut data = Vec::new();
        for &(cx, cy) in centers {
            for _ in 0..per_blob {
                data.push(cx + rng.gen_range(-spread..spread));
                data.push(cy + rng.gen_range(-spread..spread));
            }
        }
        ProjectedMatrix { data, n_cols: 2, n_rows: per_blob * centers.len() }
    }

    #[test]
    fn separates_well_separated_blobs() {
        let x = blobs(50, &[(0.0, 0.0), (10.0, 10.0), (0.0, 10.0)], 0.5, 1);
        let model = KMeans::new(3, 7).fit(&x);
        assert_eq!(model.k(), 3);
        // All members of a blob share a cluster.
        for blob in 0..3 {
            let first = model.assignments[blob * 50];
            for i in 0..50 {
                assert_eq!(model.assignments[blob * 50 + i], first, "blob {blob}");
            }
        }
        // And the three blobs get three distinct clusters.
        let mut ids: Vec<usize> = (0..3).map(|b| model.assignments[b * 50]).collect();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), 3);
    }

    #[test]
    fn predict_matches_training_assignment() {
        let x = blobs(30, &[(0.0, 0.0), (8.0, 8.0)], 0.4, 2);
        let model = KMeans::new(2, 3).fit(&x);
        for i in 0..x.n_rows {
            assert_eq!(model.predict(x.row(i)), model.assignments[i]);
        }
        // A brand-new point near blob 1's centre goes to blob 1's cluster.
        let c1 = model.assignments[35];
        assert_eq!(model.predict(&[8.2, 7.9]), c1);
    }

    #[test]
    fn sse_decreases_with_more_clusters() {
        let x = blobs(40, &[(0.0, 0.0), (5.0, 5.0), (9.0, 0.0)], 1.0, 3);
        let sse: Vec<f64> =
            (1..=4).map(|k| KMeans::new(k, 11).fit(&x).sse).collect();
        for w in sse.windows(2) {
            assert!(w[1] <= w[0] + 1e-9, "SSE must be non-increasing: {sse:?}");
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let x = blobs(25, &[(0.0, 0.0), (6.0, 6.0)], 1.0, 4);
        let a = KMeans::new(2, 42).fit(&x);
        let b = KMeans::new(2, 42).fit(&x);
        assert_eq!(a.assignments, b.assignments);
        assert_eq!(a.centroids, b.centroids);
    }

    #[test]
    fn bounded_kernel_is_bit_identical_to_naive() {
        for seed in 0..4u64 {
            let x = blobs(40, &[(0.0, 0.0), (4.0, 4.0), (8.0, 0.0), (4.0, -4.0)], 1.5, seed);
            for k in [1, 2, 3, 5, 8] {
                let mut cfg = KMeans::new(k, seed.wrapping_mul(31) + 1);
                cfg.bounds = true;
                let fast = cfg.fit(&x);
                cfg.bounds = false;
                let naive = cfg.fit(&x);
                assert_eq!(fast.assignments, naive.assignments, "k={k} seed={seed}");
                assert_eq!(fast.centroids, naive.centroids, "k={k} seed={seed}");
                assert_eq!(fast.sse.to_bits(), naive.sse.to_bits(), "k={k} seed={seed}");
            }
        }
    }

    #[test]
    fn predict_pruned_matches_predict() {
        let x = blobs(30, &[(0.0, 0.0), (6.0, 6.0), (0.0, 6.0)], 1.2, 6);
        let model = KMeans::new(3, 5).fit(&x);
        let norms = model.centroid_norms();
        for i in 0..x.n_rows {
            let p = x.row(i);
            assert_eq!(model.predict_pruned(p, &norms), model.predict(p));
        }
        for probe in [[0.0, 0.0], [3.0, 3.0], [6.0, 6.0], [-2.0, 8.0]] {
            assert_eq!(model.predict_pruned(&probe, &norms), model.predict(&probe));
        }
    }

    #[test]
    fn warm_start_from_converged_centroids_keeps_sse() {
        let x = blobs(30, &[(0.0, 0.0), (7.0, 7.0)], 0.8, 8);
        let cold = KMeans::new(2, 9).fit(&x);
        let warm = KMeans::new(2, 9).fit_from(&x, cold.centroids.clone());
        assert!(warm.sse <= cold.sse + 1e-9, "warm {} vs cold {}", warm.sse, cold.sse);
    }

    #[test]
    fn extend_centroids_reaches_requested_k() {
        let x = blobs(20, &[(0.0, 0.0), (5.0, 5.0), (9.0, 1.0)], 0.5, 10);
        let base = KMeans::new(2, 3).fit(&x);
        let extended = extend_centroids(&x, base.centroids.clone(), 5);
        assert_eq!(extended.len(), 5);
        // The first two are the originals, untouched.
        assert_eq!(extended[0], base.centroids[0]);
        assert_eq!(extended[1], base.centroids[1]);
    }

    #[test]
    fn k_capped_at_row_count_and_duplicates_handled() {
        let x = ProjectedMatrix { data: vec![1.0, 1.0, 1.0, 1.0], n_cols: 1, n_rows: 4 };
        let model = KMeans::new(10, 0).fit(&x);
        assert!(model.k() <= 4);
        assert!(model.sse < 1e-9);
    }

    #[test]
    fn cluster_members_partition_rows() {
        let x = blobs(20, &[(0.0, 0.0), (7.0, 7.0)], 0.5, 5);
        let model = KMeans::new(2, 1).fit(&x);
        let members = model.cluster_members();
        let total: usize = members.iter().map(|m| m.len()).sum();
        assert_eq!(total, x.n_rows);
        for (c, m) in members.iter().enumerate() {
            for &i in m {
                assert_eq!(model.assignments[i], c);
            }
        }
    }

    #[test]
    #[should_panic(expected = "k must be positive")]
    fn zero_k_panics() {
        let x = ProjectedMatrix { data: vec![0.0], n_cols: 1, n_rows: 1 };
        KMeans::new(0, 0).fit(&x);
    }

    #[test]
    fn single_cluster_centroid_is_the_mean() {
        let x = ProjectedMatrix {
            data: vec![0.0, 2.0, 4.0, 6.0],
            n_cols: 1,
            n_rows: 4,
        };
        let model = KMeans::new(1, 9).fit(&x);
        assert!((model.centroids[0][0] - 3.0).abs() < 1e-9);
    }
}
