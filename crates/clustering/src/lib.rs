//! # falcc-clustering
//!
//! Clustering and nearest-neighbour substrate for the FALCC reproduction:
//!
//! * [`kmeans`] — Lloyd's k-means with k-means++ initialisation. FALCC uses
//!   the resulting clusters as *local regions* (paper §3.5) and the
//!   centroids for online cluster matching (§3.7).
//! * [`estimate`] — automatic selection of `k`: LOG-Means (Fritz et al.,
//!   VLDB 2020), the paper's choice, plus the classic Elbow method for
//!   comparison/ablation.
//! * [`knn`] — a kd-tree k-nearest-neighbour index, used by the FALCES
//!   baselines' online phase, by FALCC's cluster gap-filling, and by the
//!   consistency metric on larger inputs.

pub mod estimate;
pub mod flat;
pub mod kmeans;
pub mod knn;

pub use estimate::{elbow_k, log_means, KEstimateConfig};
pub use flat::CentroidMatrix;
pub use kmeans::{extend_centroids, KMeans, KMeansModel};
pub use knn::{BruteKnn, KdTree};
