//! Automatic estimation of the k-means parameter `k`.
//!
//! FALCC's clustering component estimates `k` with **LOG-Means** (Fritz,
//! Behringer & Schwarz, VLDB 2020), chosen by the paper for being
//! runtime-efficient without compromising cluster quality. The classic
//! **Elbow method** is provided for comparison and for the ablation
//! experiment.
//!
//! LOG-Means, as published: evaluate the SSE at exponentially spaced values
//! of `k` within `[k_low, k_high]`; the *SSE ratio* of two neighbouring
//! probes `r = SSE(k_left) / SSE(k_right)` is largest where adding clusters
//! still pays off most; the interval with the largest ratio is bisected
//! recursively (re-using cached SSEs) until it cannot be narrowed further,
//! and the right endpoint of the winning ratio is returned.

use crate::kmeans::{extend_centroids, KMeans};
use falcc_dataset::dataset::ProjectedMatrix;
use std::collections::BTreeMap;

/// Configuration of the `k` search space.
#[derive(Debug, Clone, Copy)]
pub struct KEstimateConfig {
    /// Smallest k considered (≥ 1).
    pub k_min: usize,
    /// Largest k considered.
    pub k_max: usize,
    /// Seed forwarded to the underlying k-means runs.
    pub seed: u64,
    /// Max Lloyd iterations per probe (probes can be cheaper than the final
    /// clustering).
    pub max_iter: usize,
    /// Reuse converged centroids from the nearest already-probed `k` as an
    /// extra warm-started Lloyd run per probe (truncated or extended by
    /// deterministic farthest-point traversal); the lower-SSE candidate
    /// wins. Tightens the SSE estimates LOG-Means bisects on while the
    /// warm runs converge in a handful of iterations.
    pub warm_start: bool,
    /// Forwarded to [`KMeans::bounds`] (Hamerly-style bounded Lloyd;
    /// bit-identical to the naive kernel, so this only affects speed).
    pub bounds: bool,
}

impl KEstimateConfig {
    /// Default search space used by the FALCC pipeline: `k ∈ [2, √n]`
    /// capped to `[2, 64]`.
    pub fn for_rows(n_rows: usize, seed: u64) -> Self {
        let k_max = ((n_rows as f64).sqrt() as usize).clamp(2, 64);
        Self { k_min: 2, k_max, seed, max_iter: 30, warm_start: true, bounds: true }
    }
}

/// Memoised probe results: SSE plus the converged centroids, which seed
/// warm starts at neighbouring `k` values.
type ProbeCache = BTreeMap<usize, (f64, Vec<Vec<f64>>)>;

/// SSE at `k`, memoised across probes.
fn sse_at(cache: &mut ProbeCache, x: &ProjectedMatrix, cfg: &KEstimateConfig, k: usize) -> f64 {
    if let Some((v, _)) = cache.get(&k) {
        return *v;
    }
    falcc_telemetry::counters::LOGMEANS_PROBES.incr();
    let mut trainer = KMeans::new(k, cfg.seed);
    trainer.max_iter = cfg.max_iter;
    trainer.bounds = cfg.bounds;
    // Probes only need SSE estimates, not the best possible clustering;
    // two restarts keep the estimator robust without quadrupling its cost.
    trainer.n_init = 2;
    let mut best = trainer.fit(x);
    if cfg.warm_start {
        if let Some(init) = warm_candidate(cache, x, k) {
            falcc_telemetry::counters::LOGMEANS_WARM_STARTS.incr();
            let warm = trainer.fit_from(x, init);
            if warm.sse < best.sse {
                best = warm;
            }
        }
    }
    let v = best.sse.max(1e-12);
    cache.insert(k, (v, best.centroids));
    v
}

/// Initial centroids for a warm-started probe at `k`: the converged
/// centroids of the nearest cached probe (ties prefer the smaller `k`),
/// truncated or extended by farthest-point traversal to exactly `k`.
fn warm_candidate(cache: &ProbeCache, x: &ProjectedMatrix, k: usize) -> Option<Vec<Vec<f64>>> {
    let below = cache.range(..k).next_back();
    let above = cache.range(k + 1..).next();
    let (_, (_, centroids)) = match (below, above) {
        (None, None) => return None,
        (Some(b), None) => b,
        (None, Some(a)) => a,
        (Some(b), Some(a)) => {
            if k - b.0 <= a.0 - k {
                b
            } else {
                a
            }
        }
    };
    let mut init = centroids.clone();
    if init.len() > k {
        init.truncate(k);
        Some(init)
    } else {
        Some(extend_centroids(x, init, k))
    }
}

/// LOG-Means estimate of `k`.
///
/// # Panics
/// Panics if `k_min < 1`, `k_min > k_max`, or `x` is empty.
pub fn log_means(x: &ProjectedMatrix, cfg: &KEstimateConfig) -> usize {
    assert!(cfg.k_min >= 1 && cfg.k_min <= cfg.k_max, "invalid k range");
    assert!(x.n_rows > 0, "cannot estimate k on an empty matrix");
    let k_max = cfg.k_max.min(x.n_rows);
    let k_min = cfg.k_min.min(k_max);
    if k_min == k_max {
        return k_min;
    }

    let mut cache = BTreeMap::new();
    // Exponentially spaced probe positions k_min, 2·k_min, 4·k_min, …, k_max.
    let mut probes = vec![k_min];
    let mut k = k_min;
    while k < k_max {
        k = (k * 2).min(k_max);
        probes.push(k);
    }
    for &p in &probes {
        sse_at(&mut cache, x, cfg, p);
    }

    // Recursively bisect the interval with the highest SSE ratio, re-using
    // the cache. Each round narrows the best interval by evaluating its
    // midpoint, until the best interval has width 1.
    loop {
        let keys: Vec<usize> = cache.keys().copied().collect();
        let (mut best_ratio, mut best_pair) = (f64::MIN, (keys[0], keys[0]));
        for w in keys.windows(2) {
            let ratio = cache[&w[0]].0 / cache[&w[1]].0;
            if ratio > best_ratio {
                best_ratio = ratio;
                best_pair = (w[0], w[1]);
            }
        }
        let (lo, hi) = best_pair;
        if hi - lo <= 1 {
            return hi;
        }
        let mid = lo + (hi - lo) / 2;
        sse_at(&mut cache, x, cfg, mid);
    }
}

/// Elbow-method estimate: evaluates every `k` in the range and returns the
/// point of maximum curvature of the SSE curve (largest second difference).
///
/// O(k_max) k-means runs — provided for the ablation, not for production
/// use.
///
/// # Panics
/// Same conditions as [`log_means`].
pub fn elbow_k(x: &ProjectedMatrix, cfg: &KEstimateConfig) -> usize {
    assert!(cfg.k_min >= 1 && cfg.k_min <= cfg.k_max, "invalid k range");
    assert!(x.n_rows > 0, "cannot estimate k on an empty matrix");
    let k_max = cfg.k_max.min(x.n_rows);
    let k_min = cfg.k_min.min(k_max);
    if k_max - k_min < 2 {
        return k_min;
    }
    let mut cache = BTreeMap::new();
    let sse: Vec<f64> =
        (k_min..=k_max).map(|k| sse_at(&mut cache, x, cfg, k)).collect();
    // Second difference: SSE[i-1] − 2·SSE[i] + SSE[i+1]; the elbow is where
    // this is largest (sharpest bend).
    let mut best = (k_min + 1, f64::MIN);
    for i in 1..sse.len() - 1 {
        let curvature = sse[i - 1] - 2.0 * sse[i] + sse[i + 1];
        if curvature > best.1 {
            best = (k_min + i, curvature);
        }
    }
    best.0
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::Rng;
    use rand::SeedableRng;

    fn blobs(per_blob: usize, centers: &[(f64, f64)], spread: f64, seed: u64) -> ProjectedMatrix {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut data = Vec::new();
        for &(cx, cy) in centers {
            for _ in 0..per_blob {
                data.push(cx + rng.gen_range(-spread..spread));
                data.push(cy + rng.gen_range(-spread..spread));
            }
        }
        ProjectedMatrix { data, n_cols: 2, n_rows: per_blob * centers.len() }
    }

    #[test]
    fn log_means_finds_clear_cluster_count() {
        let centers = [(0.0, 0.0), (20.0, 0.0), (0.0, 20.0), (20.0, 20.0)];
        let x = blobs(60, &centers, 0.6, 1);
        let cfg = KEstimateConfig { k_min: 2, k_max: 16, seed: 5, max_iter: 50, warm_start: true, bounds: true };
        let k = log_means(&x, &cfg);
        assert!((3..=6).contains(&k), "expected ≈4 clusters, got {k}");
    }

    #[test]
    fn elbow_finds_clear_cluster_count() {
        let centers = [(0.0, 0.0), (25.0, 0.0), (0.0, 25.0)];
        let x = blobs(60, &centers, 0.5, 2);
        let cfg = KEstimateConfig { k_min: 2, k_max: 10, seed: 5, max_iter: 50, warm_start: true, bounds: true };
        let k = elbow_k(&x, &cfg);
        assert!((2..=4).contains(&k), "expected ≈3 clusters, got {k}");
    }

    #[test]
    fn log_means_probes_fewer_ks_than_elbow_range() {
        // Structural property, not a wall-clock claim: with k_max = 64 the
        // exponential + bisection pattern touches O(log²) values.
        let x = blobs(30, &[(0.0, 0.0), (15.0, 15.0)], 1.0, 3);
        let cfg = KEstimateConfig { k_min: 2, k_max: 32, seed: 1, max_iter: 15, warm_start: true, bounds: true };
        // Just verify it terminates and returns something in range.
        let k = log_means(&x, &cfg);
        assert!((2..=32).contains(&k));
    }

    #[test]
    fn degenerate_ranges() {
        let x = blobs(10, &[(0.0, 0.0)], 0.5, 4);
        let cfg = KEstimateConfig { k_min: 3, k_max: 3, seed: 0, max_iter: 10, warm_start: true, bounds: true };
        assert_eq!(log_means(&x, &cfg), 3);
        assert_eq!(elbow_k(&x, &cfg), 3);
    }

    #[test]
    fn for_rows_builds_sane_config() {
        let cfg = KEstimateConfig::for_rows(10_000, 7);
        assert_eq!(cfg.k_min, 2);
        assert_eq!(cfg.k_max, 64);
        let small = KEstimateConfig::for_rows(20, 7);
        assert!(small.k_max >= small.k_min);
    }

    #[test]
    fn deterministic_per_seed() {
        let x = blobs(40, &[(0.0, 0.0), (12.0, 12.0)], 1.0, 8);
        let cfg = KEstimateConfig { k_min: 2, k_max: 12, seed: 9, max_iter: 20, warm_start: true, bounds: true };
        assert_eq!(log_means(&x, &cfg), log_means(&x, &cfg));
    }
}
