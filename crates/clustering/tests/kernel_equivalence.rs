//! Proof-of-equivalence suite for the clustering fast paths: the bounded
//! Lloyd kernel, the norm-pruned nearest-centroid scan, the select-based
//! brute-force top-k, and the norm-pruned kd-tree search must all return
//! *bit-identical* results to their naive references on arbitrary data.
//!
//! These complement the unit tests inside the crate: proptest drives the
//! geometry into the regimes where a sloppy bound would flip a result —
//! duplicated points (distance ties), near-equal norms (prefilter
//! margins), and degenerate k.

use falcc_clustering::{log_means, BruteKnn, KEstimateConfig, KMeans, KdTree};
use falcc_dataset::dataset::ProjectedMatrix;
use proptest::prelude::*;

/// Matrix with values drawn from a coarse grid so exact duplicate points
/// and exact distance ties occur regularly.
fn tied_matrix() -> impl Strategy<Value = ProjectedMatrix> {
    (6usize..60, 1usize..5).prop_flat_map(|(n, d)| {
        prop::collection::vec(-8i8..=8, n * d).prop_map(move |grid| ProjectedMatrix {
            data: grid.into_iter().map(|v| f64::from(v) * 0.25).collect(),
            n_cols: d,
            n_rows: n,
        })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn bounded_lloyd_is_bit_identical(x in tied_matrix(), k in 1usize..9,
                                      seed in 0u64..500) {
        let mut trainer = KMeans::new(k, seed);
        trainer.bounds = false;
        let naive = trainer.fit(&x);
        trainer.bounds = true;
        let fast = trainer.fit(&x);
        prop_assert_eq!(&fast.assignments, &naive.assignments);
        prop_assert_eq!(&fast.centroids, &naive.centroids);
        prop_assert_eq!(fast.sse.to_bits(), naive.sse.to_bits());
    }

    #[test]
    fn predict_pruned_is_bit_identical(x in tied_matrix(), k in 1usize..9,
                                       seed in 0u64..500) {
        let model = KMeans::new(k, seed).fit(&x);
        let norms = model.centroid_norms();
        for i in 0..x.n_rows {
            prop_assert_eq!(
                model.predict_pruned(x.row(i), &norms),
                model.predict(x.row(i))
            );
        }
    }

    #[test]
    fn brute_knn_select_equals_full_sort(x in tied_matrix(), k in 1usize..12) {
        let index = BruteKnn::build(x.clone());
        for i in 0..x.n_rows {
            prop_assert_eq!(
                index.nearest(x.row(i), k),
                index.nearest_naive(x.row(i), k)
            );
        }
    }

    #[test]
    fn kdtree_pruned_equals_reference(x in tied_matrix(), k in 1usize..12) {
        let tree = KdTree::build(x.clone());
        for i in 0..x.n_rows {
            prop_assert_eq!(
                tree.nearest(x.row(i), k),
                tree.nearest_reference(x.row(i), k)
            );
        }
    }

    #[test]
    fn kdtree_filtered_matches_brute_force_filter(x in tied_matrix(),
                                                  k in 1usize..8,
                                                  modulo in 2usize..4) {
        // On exact distance ties the kd-tree keeps whichever point its
        // traversal reached first, so neighbour *identities* can differ
        // from a global index-ordered ranking — but the distance profile
        // cannot, the filter must hold, and each reported distance must be
        // the true distance to that point.
        let tree = KdTree::build(x.clone());
        let brute = BruteKnn::build(x.clone());
        for i in 0..x.n_rows.min(20) {
            let filtered = tree.nearest_filtered(x.row(i), k, |j| j % modulo == 0);
            let mut reference = brute.nearest_naive(x.row(i), x.n_rows);
            reference.retain(|&(j, _)| j % modulo == 0);
            reference.truncate(k);
            let dist_profile: Vec<f64> = filtered.iter().map(|&(_, d)| d).collect();
            let expected: Vec<f64> = reference.iter().map(|&(_, d)| d).collect();
            prop_assert_eq!(dist_profile, expected);
            for &(j, d) in &filtered {
                prop_assert!(j % modulo == 0, "filter violated for {j}");
                let truth: f64 = x.row(i).iter().zip(x.row(j))
                    .map(|(a, b)| (a - b) * (a - b)).sum();
                prop_assert_eq!(d.to_bits(), truth.to_bits());
            }
        }
    }

    #[test]
    fn warm_started_log_means_is_deterministic_and_in_range(
        x in tied_matrix(), seed in 0u64..200,
    ) {
        let cfg = KEstimateConfig::for_rows(x.n_rows, seed);
        let k = log_means(&x, &cfg);
        prop_assert_eq!(log_means(&x, &cfg), k);
        prop_assert!(k >= 1 && k <= x.n_rows);
    }
}
