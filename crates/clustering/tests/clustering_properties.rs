//! Property-based tests over the clustering substrate.

use falcc_clustering::{elbow_k, log_means, KEstimateConfig, KMeans, KdTree};
use falcc_dataset::dataset::ProjectedMatrix;
use proptest::prelude::*;

fn arbitrary_matrix() -> impl Strategy<Value = ProjectedMatrix> {
    (4usize..80, 1usize..4).prop_flat_map(|(n, d)| {
        prop::collection::vec(-100.0f64..100.0, n * d).prop_map(move |data| {
            ProjectedMatrix { data, n_cols: d, n_rows: n }
        })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn kmeans_invariants(x in arbitrary_matrix(), k in 1usize..8) {
        let model = KMeans::new(k, 1).fit(&x);
        // k capped at the number of rows.
        prop_assert!(model.k() <= k.min(x.n_rows).max(1));
        // Every assignment is in range and matches predict().
        for (i, &c) in model.assignments.iter().enumerate() {
            prop_assert!(c < model.k());
            prop_assert_eq!(model.predict(x.row(i)), c);
        }
        // Centroids are finite.
        for c in &model.centroids {
            prop_assert!(c.iter().all(|v| v.is_finite()));
        }
        // SSE is non-negative and finite.
        prop_assert!(model.sse >= 0.0 && model.sse.is_finite());
    }

    #[test]
    fn kmeans_assigns_each_point_to_its_nearest_centroid(x in arbitrary_matrix(),
                                                         k in 1usize..8) {
        // Lloyd's invariant after convergence: the stored assignment is
        // the argmin over centroid distances, computed here by brute
        // force, independent of `predict`'s implementation.
        let model = KMeans::new(k, 5).fit(&x);
        for (i, &assigned) in model.assignments.iter().enumerate() {
            let p = x.row(i);
            let dist = |c: &[f64]| -> f64 {
                c.iter().zip(p).map(|(a, b)| (a - b) * (a - b)).sum()
            };
            let d_assigned = dist(&model.centroids[assigned]);
            for (c, centroid) in model.centroids.iter().enumerate() {
                prop_assert!(
                    d_assigned <= dist(centroid) + 1e-9,
                    "point {i} assigned to {assigned} but {c} is closer"
                );
            }
        }
    }

    #[test]
    fn kmeans_produces_k_non_empty_clusters(x in arbitrary_matrix(), k in 1usize..8) {
        // Every reported cluster owns at least one point: the model never
        // reports a k with dead clusters.
        let model = KMeans::new(k, 9).fit(&x);
        let mut counts = vec![0usize; model.k()];
        for &c in &model.assignments {
            counts[c] += 1;
        }
        prop_assert!(
            counts.iter().all(|&n| n > 0),
            "empty cluster in counts {counts:?} (k = {})", model.k()
        );
    }

    #[test]
    fn kmeans_sse_non_increasing_in_k(x in arbitrary_matrix()) {
        let sse: Vec<f64> = (1..=4).map(|k| KMeans::new(k, 7).fit(&x).sse).collect();
        for w in sse.windows(2) {
            // k-means++ is randomised, so allow slack for local optima.
            prop_assert!(w[1] <= w[0] * 1.05 + 1e-9, "sse went up materially: {sse:?}");
        }
    }

    #[test]
    fn k_estimators_stay_in_range(x in arbitrary_matrix()) {
        let cfg = KEstimateConfig { k_min: 2, k_max: 8, seed: 3, max_iter: 15, warm_start: true, bounds: true };
        let k_log = log_means(&x, &cfg);
        let k_elbow = elbow_k(&x, &cfg);
        prop_assert!((2..=8).contains(&k_log), "log_means returned {k_log}");
        prop_assert!((2..=8).contains(&k_elbow), "elbow returned {k_elbow}");
    }

    #[test]
    fn kdtree_nearest_is_sorted_and_self_consistent(x in arbitrary_matrix(), k in 1usize..6) {
        let tree = KdTree::build(x.clone());
        for i in 0..x.n_rows.min(10) {
            let got = tree.nearest(x.row(i), k);
            prop_assert!(!got.is_empty());
            // Sorted ascending by distance.
            for w in got.windows(2) {
                prop_assert!(w[0].1 <= w[1].1 + 1e-12);
            }
            // Querying an indexed point returns distance 0 first.
            prop_assert!(got[0].1 < 1e-12, "self distance {}", got[0].1);
        }
    }

    #[test]
    fn kdtree_filter_is_a_subset_of_unfiltered(x in arbitrary_matrix()) {
        let tree = KdTree::build(x.clone());
        let q = vec![0.0; x.n_cols];
        let all = tree.nearest(&q, x.n_rows);
        let even = tree.nearest_filtered(&q, x.n_rows, |i| i % 2 == 0);
        prop_assert!(even.len() <= all.len());
        prop_assert!(even.iter().all(|&(i, _)| i % 2 == 0));
        // The filtered result has exactly the even-index points.
        prop_assert_eq!(even.len(), x.n_rows.div_ceil(2));
    }
}
