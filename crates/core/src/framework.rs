//! The framework-level trait every fair classifier in this workspace
//! implements.
//!
//! The paper's framework (§3.1) accommodates FALCC itself and the whole
//! family of comparison algorithms — anything that turns a full-width
//! sample row into a binary decision. The experiment harness and the
//! runnable examples program against this trait so algorithms are freely
//! interchangeable.

/// A fitted fairness-aware classifier ready for the online phase.
pub trait FairClassifier: Send + Sync {
    /// Classifies one full-width sample row (all attributes, including
    /// sensitive ones — implementations decide what they consume).
    fn predict_row(&self, row: &[f64]) -> u8;

    /// Algorithm name as used in the paper's tables.
    fn name(&self) -> &str;

    /// Classifies every row of a dataset.
    fn predict_dataset(&self, ds: &falcc_dataset::Dataset) -> Vec<u8> {
        (0..ds.len()).map(|i| self.predict_row(ds.row(i))).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use falcc_dataset::{Dataset, Schema};

    struct Always(u8);
    impl FairClassifier for Always {
        fn predict_row(&self, _row: &[f64]) -> u8 {
            self.0
        }
        fn name(&self) -> &str {
            "always"
        }
    }

    #[test]
    fn default_dataset_prediction_maps_rows() {
        let schema =
            Schema::with_binary_sensitive(vec!["s".into(), "f".into()], 0, "y").unwrap();
        let ds = Dataset::from_rows(
            schema,
            vec![vec![0.0, 1.0], vec![1.0, 2.0]],
            vec![0, 1],
        )
        .unwrap();
        assert_eq!(Always(1).predict_dataset(&ds), vec![1, 1]);
        assert_eq!(Always(0).name(), "always");
    }
}
