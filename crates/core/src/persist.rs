//! Persistence of fitted FALCC models.
//!
//! The offline phase is the expensive part of FALCC (paper §3.1); a real
//! deployment runs it once and ships the result. [`SavedFalccModel`]
//! captures everything the online phase needs — the model pool, the
//! cluster centroids, the per-cluster combinations, and the proxy
//! projection — as plain JSON.
//!
//! ```
//! use falcc::{FairClassifier, FalccConfig, FalccModel, SavedFalccModel};
//! use falcc_dataset::{synthetic, SplitRatios, ThreeWaySplit};
//!
//! let data = synthetic::social30(7).unwrap();
//! let data = data.subset(&(0..900).collect::<Vec<_>>()).unwrap();
//! let split = ThreeWaySplit::split(&data, SplitRatios::PAPER, 7).unwrap();
//! let mut config = FalccConfig::default();
//! config.scale_for_tests();
//! let model = FalccModel::fit(&split.train, &split.validation, &config).unwrap();
//!
//! let json = SavedFalccModel::capture(&model).unwrap().to_json().unwrap();
//! let revived = SavedFalccModel::from_json(&json).unwrap().restore();
//! assert_eq!(revived.predict_row(split.test.row(0)),
//!            model.predict_row(split.test.row(0)));
//! ```

use crate::error::FalccError;
use crate::offline::FalccModel;
use crate::proxy::ProxyOutcome;
use falcc_clustering::KMeansModel;
use falcc_dataset::{GroupId, GroupIndex};
use falcc_metrics::LossConfig;
use falcc_models::{ModelPool, ModelSpec, TrainedModel};
use serde::{Deserialize, Serialize};
use std::path::Path;

/// A serialisable snapshot of a fitted [`FalccModel`].
#[derive(Debug, Serialize, Deserialize)]
pub struct SavedFalccModel {
    /// Format version for forward compatibility.
    pub version: u32,
    schema: falcc_dataset::Schema,
    pool: Vec<(ModelSpec, Option<GroupId>)>,
    kmeans: KMeansModel,
    combos: Vec<Vec<usize>>,
    proxy: ProxyOutcome,
    group_index: GroupIndex,
    loss: LossConfig,
    name: String,
}

/// Current snapshot format version.
pub const FORMAT_VERSION: u32 = 1;

impl SavedFalccModel {
    /// Captures a fitted model. Fails if the pool contains a model that
    /// does not support persistence (a custom [`falcc_models::Classifier`]
    /// returning `None` from `to_spec`).
    ///
    /// # Errors
    /// [`FalccError::InvalidConfig`] naming the unsupported model.
    pub fn capture(model: &FalccModel) -> Result<Self, FalccError> {
        let mut pool = Vec::with_capacity(model.pool.models.len());
        for member in &model.pool.models {
            let spec = member.model.to_spec().ok_or_else(|| FalccError::InvalidConfig {
                detail: format!(
                    "model {:?} does not support persistence",
                    member.model.name()
                ),
            })?;
            pool.push((spec, member.group));
        }
        Ok(Self {
            version: FORMAT_VERSION,
            schema: model.schema.clone(),
            pool,
            kmeans: model.kmeans.clone(),
            combos: model.combos.clone(),
            proxy: model.proxy.clone(),
            group_index: model.group_index.clone(),
            loss: model.loss,
            name: model.name.clone(),
        })
    }

    /// Rehydrates the snapshot into a usable model.
    pub fn restore(self) -> FalccModel {
        let models: Vec<TrainedModel> = self
            .pool
            .into_iter()
            .map(|(spec, group)| TrainedModel { model: spec.into_classifier(), group })
            .collect();
        // Derived caches are rebuilt, not deserialised, so snapshots stay
        // format-stable across cache changes.
        let centroid_norms = self.kmeans.centroid_norms();
        falcc_telemetry::counters::PERSIST_NORMS_RECOMPUTED.add(centroid_norms.len() as u64);
        if falcc_telemetry::enabled() {
            falcc_telemetry::event(
                "persist.restore",
                format!(
                    "recomputed {} centroid norms for '{}' (k={}, pool={})",
                    centroid_norms.len(),
                    self.name,
                    self.kmeans.k(),
                    models.len(),
                ),
            );
        }
        debug_assert_eq!(
            centroid_norms.len(),
            self.kmeans.k(),
            "one recomputed norm per persisted centroid"
        );
        debug_assert!(
            self.kmeans.centroids.iter().zip(&centroid_norms).all(|(c, &n)| {
                n.is_finite() && n.to_bits() == c.iter().map(|v| v * v).sum::<f64>().sqrt().to_bits()
            }),
            "recomputed centroid norms must match the persisted centroids bit-for-bit"
        );
        FalccModel {
            schema: self.schema,
            pool: ModelPool::from_models(models),
            kmeans: self.kmeans,
            combos: self.combos,
            proxy: self.proxy,
            group_index: self.group_index,
            // Thread count is a runtime knob, not part of the fitted
            // model: restored models default to auto.
            threads: 0,
            loss: self.loss,
            name: self.name,
            centroid_norms,
        }
    }

    /// Serialises to a JSON string.
    ///
    /// # Errors
    /// [`FalccError::InvalidConfig`] wrapping the serde failure (cannot
    /// occur for snapshots produced by [`Self::capture`]).
    pub fn to_json(&self) -> Result<String, FalccError> {
        serde_json::to_string(self).map_err(|e| FalccError::InvalidConfig {
            detail: format!("serialisation failed: {e}"),
        })
    }

    /// Parses a snapshot from JSON, checking the format version.
    ///
    /// # Errors
    /// [`FalccError::InvalidConfig`] on parse failure or version mismatch.
    pub fn from_json(json: &str) -> Result<Self, FalccError> {
        let saved: Self =
            serde_json::from_str(json).map_err(|e| FalccError::InvalidConfig {
                detail: format!("deserialisation failed: {e}"),
            })?;
        if saved.version != FORMAT_VERSION {
            return Err(FalccError::InvalidConfig {
                detail: format!(
                    "snapshot format v{} unsupported (expected v{FORMAT_VERSION})",
                    saved.version
                ),
            });
        }
        Ok(saved)
    }

    /// Writes the snapshot to a file.
    ///
    /// # Errors
    /// Serialisation and I/O failures.
    pub fn save_file(&self, path: impl AsRef<Path>) -> Result<(), FalccError> {
        let json = self.to_json()?;
        std::fs::write(path, json)
            .map_err(|e| FalccError::Dataset(falcc_dataset::DatasetError::Io(e)))
    }

    /// Reads a snapshot from a file.
    ///
    /// # Errors
    /// I/O and parse failures.
    pub fn load_file(path: impl AsRef<Path>) -> Result<Self, FalccError> {
        let json = std::fs::read_to_string(path)
            .map_err(|e| FalccError::Dataset(falcc_dataset::DatasetError::Io(e)))?;
        Self::from_json(&json)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::FalccConfig;
    use crate::framework::FairClassifier;
    use falcc_dataset::synthetic::{generate, SyntheticConfig};
    use falcc_dataset::{SplitRatios, ThreeWaySplit};
    use falcc_models::Classifier;
    use std::sync::Arc;

    fn fitted() -> (FalccModel, ThreeWaySplit) {
        let mut dcfg = SyntheticConfig::social(0.3);
        dcfg.n = 800;
        let ds = generate(&dcfg, 11).unwrap();
        let split = ThreeWaySplit::split(&ds, SplitRatios::PAPER, 11).unwrap();
        let mut cfg = FalccConfig::default();
        cfg.scale_for_tests();
        let model = FalccModel::fit(&split.train, &split.validation, &cfg).unwrap();
        (model, split)
    }

    #[test]
    fn json_round_trip_preserves_every_prediction() {
        let (model, split) = fitted();
        let json = SavedFalccModel::capture(&model).unwrap().to_json().unwrap();
        let revived = SavedFalccModel::from_json(&json).unwrap().restore();
        assert_eq!(revived.name(), model.name());
        assert_eq!(revived.n_regions(), model.n_regions());
        assert_eq!(
            revived.predict_dataset(&split.test),
            model.predict_dataset(&split.test)
        );
        // Region assignments survive too (centroids + proxy projection).
        for i in 0..split.test.len().min(50) {
            assert_eq!(
                revived.assign_region(split.test.row(i)),
                model.assign_region(split.test.row(i))
            );
        }
    }

    #[test]
    fn file_round_trip() {
        let (model, split) = fitted();
        let path = std::env::temp_dir().join("falcc_model_test.json");
        SavedFalccModel::capture(&model).unwrap().save_file(&path).unwrap();
        let revived = SavedFalccModel::load_file(&path).unwrap().restore();
        assert_eq!(
            revived.predict_dataset(&split.test),
            model.predict_dataset(&split.test)
        );
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn version_mismatch_is_rejected() {
        let (model, _) = fitted();
        let mut saved = SavedFalccModel::capture(&model).unwrap();
        saved.version = 999;
        let json = saved.to_json().unwrap();
        assert!(matches!(
            SavedFalccModel::from_json(&json),
            Err(FalccError::InvalidConfig { .. })
        ));
        assert!(SavedFalccModel::from_json("not json").is_err());
    }

    #[test]
    fn unsupported_custom_model_fails_loudly() {
        struct Custom;
        impl Classifier for Custom {
            fn predict_proba_row(&self, _row: &[f64]) -> f64 {
                0.5
            }
            fn name(&self) -> &str {
                "custom"
            }
        }
        let (mut model, _) = fitted();
        model.pool.models[0] = falcc_models::TrainedModel {
            model: Arc::new(Custom),
            group: None,
        };
        let err = SavedFalccModel::capture(&model);
        assert!(matches!(err, Err(FalccError::InvalidConfig { .. })));
    }
}
