//! Persistence of fitted FALCC models.
//!
//! The offline phase is the expensive part of FALCC (paper §3.1); a real
//! deployment runs it once and ships the result. [`SavedFalccModel`]
//! captures everything the online phase needs — the model pool, the
//! cluster centroids, the per-cluster combinations, and the proxy
//! projection — as plain JSON.
//!
//! ## Hardened envelope
//!
//! Snapshots are wrapped in a versioned envelope `{magic, version,
//! checksum, payload}` where `checksum` is the FNV-1a 64-bit hash of the
//! payload string. Any corruption — flipped bytes, truncation, invalid
//! UTF-8 — is caught by the envelope parse or the checksum and surfaces as
//! [`FalccError::SnapshotCorrupt`]; an intact envelope from a different
//! format version surfaces as [`FalccError::SnapshotVersionSkew`]. Saving
//! is atomic (write-temp-then-rename) and round-trips the serialised bytes
//! through the loader as a self-check before publishing the file.
//!
//! ```
//! use falcc::{FairClassifier, FalccConfig, FalccModel, SavedFalccModel};
//! use falcc_dataset::{synthetic, SplitRatios, ThreeWaySplit};
//!
//! let data = synthetic::social30(7).unwrap();
//! let data = data.subset(&(0..900).collect::<Vec<_>>()).unwrap();
//! let split = ThreeWaySplit::split(&data, SplitRatios::PAPER, 7).unwrap();
//! let mut config = FalccConfig::default();
//! config.scale_for_tests();
//! let model = FalccModel::fit(&split.train, &split.validation, &config).unwrap();
//!
//! let json = SavedFalccModel::capture(&model).unwrap().to_json().unwrap();
//! let revived = SavedFalccModel::from_json(&json).unwrap().restore();
//! assert_eq!(revived.predict_row(split.test.row(0)),
//!            model.predict_row(split.test.row(0)));
//! ```

use crate::baseline::MonitorBaseline;
use crate::error::FalccError;
use crate::io::{atomic_durable_write, open_envelope, seal_envelope, EnvelopeFault};
use crate::offline::FalccModel;
use crate::proxy::ProxyOutcome;
use falcc_clustering::KMeansModel;
use falcc_dataset::{GroupId, GroupIndex};
use falcc_metrics::LossConfig;
use falcc_models::{ModelPool, ModelSpec, TrainedModel};
use serde::{Deserialize, Serialize};
use std::path::Path;

/// A serialisable snapshot of a fitted [`FalccModel`].
#[derive(Debug, Serialize, Deserialize)]
pub struct SavedFalccModel {
    schema: falcc_dataset::Schema,
    pool: Vec<(ModelSpec, Option<GroupId>)>,
    kmeans: KMeansModel,
    combos: Vec<Vec<usize>>,
    proxy: ProxyOutcome,
    group_index: GroupIndex,
    loss: LossConfig,
    name: String,
    baseline: MonitorBaseline,
}

/// Current snapshot format version (v2 introduced the checksummed
/// envelope; v1 snapshots are rejected with
/// [`FalccError::SnapshotVersionSkew`]).
pub const FORMAT_VERSION: u32 = 2;

/// Envelope magic — lets the loader distinguish "not a snapshot at all"
/// from "a damaged snapshot".
const MAGIC: &str = "falcc-model";

/// Typed rejection + telemetry on one line.
fn corrupt(detail: impl Into<String>) -> FalccError {
    falcc_telemetry::counters::SNAPSHOTS_REJECTED.incr();
    FalccError::SnapshotCorrupt { detail: detail.into() }
}

impl SavedFalccModel {
    /// Captures a fitted model. Fails if the pool contains a model that
    /// does not support persistence (a custom [`falcc_models::Classifier`]
    /// returning `None` from `to_spec`).
    ///
    /// # Errors
    /// [`FalccError::InvalidConfig`] naming the unsupported model.
    pub fn capture(model: &FalccModel) -> Result<Self, FalccError> {
        let mut pool = Vec::with_capacity(model.pool.models.len());
        for member in &model.pool.models {
            let spec = member.model.to_spec().ok_or_else(|| FalccError::InvalidConfig {
                detail: format!(
                    "model {:?} does not support persistence",
                    member.model.name()
                ),
            })?;
            pool.push((spec, member.group));
        }
        Ok(Self {
            schema: model.schema.clone(),
            pool,
            kmeans: model.kmeans.clone(),
            combos: model.combos.clone(),
            proxy: model.proxy.clone(),
            group_index: model.group_index.clone(),
            loss: model.loss,
            name: model.name.clone(),
            baseline: model.baseline.clone(),
        })
    }

    /// Rehydrates the snapshot into a usable model.
    pub fn restore(self) -> FalccModel {
        let models: Vec<TrainedModel> = self
            .pool
            .into_iter()
            .map(|(spec, group)| TrainedModel { model: spec.into_classifier(), group })
            .collect();
        // Derived caches are rebuilt, not deserialised, so snapshots stay
        // format-stable across cache changes.
        let centroid_norms = self.kmeans.centroid_norms();
        falcc_telemetry::counters::PERSIST_NORMS_RECOMPUTED.add(centroid_norms.len() as u64);
        if falcc_telemetry::enabled() {
            falcc_telemetry::event(
                "persist.restore",
                format!(
                    "recomputed {} centroid norms for '{}' (k={}, pool={})",
                    centroid_norms.len(),
                    self.name,
                    self.kmeans.k(),
                    models.len(),
                ),
            );
        }
        debug_assert_eq!(
            centroid_norms.len(),
            self.kmeans.k(),
            "one recomputed norm per persisted centroid"
        );
        debug_assert!(
            self.kmeans.centroids.iter().zip(&centroid_norms).all(|(c, &n)| {
                n.is_finite() && n.to_bits() == c.iter().map(|v| v * v).sum::<f64>().sqrt().to_bits()
            }),
            "recomputed centroid norms must match the persisted centroids bit-for-bit"
        );
        FalccModel {
            schema: self.schema,
            pool: ModelPool::from_models(models),
            kmeans: self.kmeans,
            combos: self.combos,
            proxy: self.proxy,
            group_index: self.group_index,
            // Thread count is a runtime knob, not part of the fitted
            // model: restored models default to auto.
            threads: 0,
            loss: self.loss,
            name: self.name,
            centroid_norms,
            // Fault schedules are a test-harness concern, never part of a
            // shipped model.
            faults: crate::faults::FaultPlan::default(),
            baseline: self.baseline,
        }
    }

    /// Serialises to a JSON string: the checksummed envelope wrapping the
    /// snapshot payload.
    ///
    /// # Errors
    /// [`FalccError::InvalidConfig`] wrapping the serde failure (cannot
    /// occur for snapshots produced by [`Self::capture`]).
    pub fn to_json(&self) -> Result<String, FalccError> {
        let payload = serde_json::to_string(self).map_err(|e| FalccError::InvalidConfig {
            detail: format!("serialisation failed: {e}"),
        })?;
        seal_envelope(MAGIC, FORMAT_VERSION, payload).map_err(|e| {
            FalccError::InvalidConfig { detail: format!("envelope serialisation failed: {e}") }
        })
    }

    /// Parses a snapshot from JSON, verifying the envelope magic, format
    /// version, and payload checksum before touching the payload.
    ///
    /// # Errors
    /// [`FalccError::SnapshotCorrupt`] on any integrity failure;
    /// [`FalccError::SnapshotVersionSkew`] when an intact envelope was
    /// written by a different format version.
    pub fn from_json(json: &str) -> Result<Self, FalccError> {
        let payload = match open_envelope(MAGIC, FORMAT_VERSION, json) {
            Ok(payload) => payload,
            Err(EnvelopeFault::Corrupt(detail)) => return Err(corrupt(detail)),
            Err(EnvelopeFault::VersionSkew(found)) => {
                falcc_telemetry::counters::SNAPSHOTS_REJECTED.incr();
                return Err(FalccError::SnapshotVersionSkew {
                    found,
                    expected: FORMAT_VERSION,
                });
            }
        };
        serde_json::from_str(&payload)
            .map_err(|e| corrupt(format!("unreadable payload: {e}")))
    }

    /// Writes the snapshot to a file, atomically and durably: the bytes
    /// land in a sibling temp file, are re-parsed as a round-trip
    /// self-check, then fsynced and renamed over `path` (with a parent
    /// directory fsync) — a crash mid-save can leave a stale temp file but
    /// never a half-written snapshot at the target, and a completed save
    /// survives power loss.
    ///
    /// # Errors
    /// Serialisation, self-check, and I/O failures;
    /// [`FalccError::CrossDeviceRename`] when the temp file cannot be
    /// renamed over `path` because they sit on different filesystems.
    pub fn save_file(&self, path: impl AsRef<Path>) -> Result<(), FalccError> {
        let path = path.as_ref();
        let json = self.to_json()?;
        // Self-check: the exact bytes about to be published must verify
        // and parse. Catches serialisation bugs at save time, where the
        // model is still in memory, instead of at the next load.
        Self::from_json(&json)?;
        falcc_telemetry::counters::SNAPSHOT_SELF_CHECKS.incr();
        atomic_durable_write(path, json.as_bytes())
    }

    /// Reads a snapshot from a file.
    ///
    /// # Errors
    /// I/O failures, plus everything [`Self::from_json`] rejects —
    /// including non-UTF-8 bytes, reported as
    /// [`FalccError::SnapshotCorrupt`].
    pub fn load_file(path: impl AsRef<Path>) -> Result<Self, FalccError> {
        let bytes = std::fs::read(path)
            .map_err(|e| FalccError::Dataset(falcc_dataset::DatasetError::Io(e)))?;
        let json = String::from_utf8(bytes)
            .map_err(|e| corrupt(format!("snapshot is not UTF-8: {e}")))?;
        Self::from_json(&json)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::FalccConfig;
    use crate::framework::FairClassifier;
    use falcc_dataset::synthetic::{generate, SyntheticConfig};
    use falcc_dataset::{SplitRatios, ThreeWaySplit};
    use falcc_models::Classifier;
    use std::sync::Arc;

    fn fitted() -> (FalccModel, ThreeWaySplit) {
        let mut dcfg = SyntheticConfig::social(0.3);
        dcfg.n = 800;
        let ds = generate(&dcfg, 11).unwrap();
        let split = ThreeWaySplit::split(&ds, SplitRatios::PAPER, 11).unwrap();
        let mut cfg = FalccConfig::default();
        cfg.scale_for_tests();
        let model = FalccModel::fit(&split.train, &split.validation, &cfg).unwrap();
        (model, split)
    }

    #[test]
    fn json_round_trip_preserves_every_prediction() {
        let (model, split) = fitted();
        let json = SavedFalccModel::capture(&model).unwrap().to_json().unwrap();
        let revived = SavedFalccModel::from_json(&json).unwrap().restore();
        assert_eq!(revived.name(), model.name());
        assert_eq!(revived.n_regions(), model.n_regions());
        assert_eq!(
            revived.predict_dataset(&split.test),
            model.predict_dataset(&split.test)
        );
        // Region assignments survive too (centroids + proxy projection).
        for i in 0..split.test.len().min(50) {
            assert_eq!(
                revived.assign_region(split.test.row(i)),
                model.assign_region(split.test.row(i))
            );
        }
    }

    #[test]
    fn file_round_trip() {
        let (model, split) = fitted();
        let path = std::env::temp_dir().join("falcc_model_test.json");
        SavedFalccModel::capture(&model).unwrap().save_file(&path).unwrap();
        let revived = SavedFalccModel::load_file(&path).unwrap().restore();
        assert_eq!(
            revived.predict_dataset(&split.test),
            model.predict_dataset(&split.test)
        );
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn version_skew_is_a_typed_rejection() {
        let (model, _) = fitted();
        let json = SavedFalccModel::capture(&model).unwrap().to_json().unwrap();
        // Rewrite the envelope version without breaking the payload
        // checksum: skew must be reported as skew, not generic corruption.
        let skewed = json.replace(
            &format!("\"version\":{FORMAT_VERSION}"),
            "\"version\":999",
        );
        assert_ne!(skewed, json, "envelope must carry the version field");
        assert!(matches!(
            SavedFalccModel::from_json(&skewed),
            Err(FalccError::SnapshotVersionSkew { found: 999, expected: FORMAT_VERSION })
        ));
        assert!(matches!(
            SavedFalccModel::from_json("not json"),
            Err(FalccError::SnapshotCorrupt { .. })
        ));
        assert!(matches!(
            SavedFalccModel::from_json("{\"magic\":\"other\",\"version\":2,\"checksum\":\"0\",\"payload\":\"\"}"),
            Err(FalccError::SnapshotCorrupt { .. })
        ));
    }

    #[test]
    fn corrupted_payload_bytes_fail_the_checksum() {
        let (model, _) = fitted();
        let json = SavedFalccModel::capture(&model).unwrap().to_json().unwrap();
        // Flip one digit inside the payload. The envelope still parses,
        // so only the checksum stands between the damage and the loader.
        let target = json.rfind("0.").map(|i| i + 2).unwrap_or(json.len() / 2);
        let mut bytes = json.into_bytes();
        bytes[target] = if bytes[target] == b'1' { b'2' } else { b'1' };
        let tampered = String::from_utf8(bytes).unwrap();
        assert!(matches!(
            SavedFalccModel::from_json(&tampered),
            Err(FalccError::SnapshotCorrupt { .. })
        ));
    }

    #[test]
    fn truncated_snapshots_are_rejected() {
        let (model, _) = fitted();
        let json = SavedFalccModel::capture(&model).unwrap().to_json().unwrap();
        for keep in [0, 1, json.len() / 2, json.len() - 1] {
            assert!(
                matches!(
                    SavedFalccModel::from_json(&json[..keep]),
                    Err(FalccError::SnapshotCorrupt { .. })
                ),
                "truncation to {keep} bytes must be caught"
            );
        }
    }

    #[test]
    fn save_is_atomic_and_self_checked() {
        let (model, _) = fitted();
        let path = std::env::temp_dir().join("falcc_model_atomic_test.json");
        let saved = SavedFalccModel::capture(&model).unwrap();
        saved.save_file(&path).unwrap();
        // No temp file left behind after a successful save.
        let mut tmp = path.as_os_str().to_os_string();
        tmp.push(".tmp");
        assert!(!std::path::Path::new(&tmp).exists());
        assert!(SavedFalccModel::load_file(&path).is_ok());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn unsupported_custom_model_fails_loudly() {
        struct Custom;
        impl Classifier for Custom {
            fn predict_proba_row(&self, _row: &[f64]) -> f64 {
                0.5
            }
            fn name(&self) -> &str {
                "custom"
            }
        }
        let (mut model, _) = fitted();
        model.pool.models[0] = falcc_models::TrainedModel {
            model: Arc::new(Custom),
            group: None,
        };
        let err = SavedFalccModel::capture(&model);
        assert!(matches!(err, Err(FalccError::InvalidConfig { .. })));
    }
}
