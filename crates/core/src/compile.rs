//! The compiled serving plane: flattened inference artifacts with
//! region-batched dispatch.
//!
//! [`FalccModel::compile`] lowers a fitted model into a [`CompiledModel`]
//! built for the online hot path:
//!
//! * **Flat members** — every *distinct* pool member reachable from the
//!   region→group dispatch table is compiled once into
//!   structure-of-arrays form ([`falcc_models::FlatPool`]): trees become
//!   index-linked parallel slabs traversed by a tight compare-and-jump
//!   loop, ensembles share one node arena with per-tree offsets, and
//!   linear/Bayes members get dense parameter slabs.
//! * **Flat region match** — the centroids move into one contiguous
//!   [`falcc_clustering::CentroidMatrix`] reusing the norm-pruned scan.
//! * **Deduplicated dispatch** — `dispatch[region · n_groups + group]`
//!   maps straight to a compiled-member id; a pool member referenced by
//!   many (region, group) cells is compiled exactly once
//!   (`serve.dedup_models`).
//!
//! [`CompiledModel::classify_batch`] buckets validated rows by compiled
//! member and runs each distinct member once over its whole bucket, so a
//! member's slabs stay cache-resident instead of being evicted by
//! row-order interleaving. Predictions are scattered back in input
//! order; combined with the deterministic ordered-merge parallel layer
//! this keeps the batch output equal to the row-by-row sequence for
//! every thread count.
//!
//! **Equivalence contract**: every entry point is *bit-identical* to its
//! interpreted counterpart — [`CompiledModel::try_classify`] to
//! [`FalccModel::try_classify`] (same `Result<u8, RowFault>`, including
//! injected faults), [`CompiledModel::classify_batch`] to
//! [`FalccModel::classify_batch`], and the [`FairClassifier`]
//! `predict_dataset` override to the interpreted one. The
//! `compiled_equivalence` suite and the `exp_serving --smoke` CI gate
//! pin this.

use crate::error::RowFault;
use crate::faults::{FaultPlan, FaultSite};
use crate::framework::FairClassifier;
use crate::offline::FalccModel;
use crate::online::{project_row_into, sq_dist, validate_row_against, PROJ_STACK_DIMS};
use crate::proxy::ProxyOutcome;
use falcc_clustering::CentroidMatrix;
use falcc_dataset::{Dataset, GroupId, GroupIndex, Schema};
use falcc_models::{parallel_map, parallel_map_range, FlatPool};
use std::sync::Arc;

/// Bucket slices handed to worker threads. Large buckets are cut into
/// chunks this size so parallelism survives a dispatch table dominated by
/// one member, without perturbing results (each row is pure).
const BUCKET_CHUNK: usize = 512;

/// Assignment sentinel for rows that failed validation.
const SKIP: u32 = u32::MAX;

/// Validation metadata the serving plane carries alongside its flat
/// slabs: everything a row needs before it reaches a compiled member —
/// the schema (row width), the group index (sensitive-group domain), the
/// proxy projection, and the display name.
#[derive(Clone)]
pub(crate) struct ServeMeta {
    pub(crate) schema: Schema,
    pub(crate) group_index: GroupIndex,
    pub(crate) proxy: ProxyOutcome,
    pub(crate) name: String,
}

/// A fitted FALCC model lowered into flat serving artifacts. Fully
/// self-contained: the validation metadata (schema, group index, proxy
/// projection) is owned, so a compiled model outlives its source — it
/// can be persisted as a binary artifact ([`crate::artifact`]) and
/// loaded without the source model ever existing in the process.
///
/// The thread count and fault plan are snapshotted from the source at
/// [`FalccModel::compile`] time (and default to auto / empty on artifact
/// load); [`CompiledModel::set_threads`] / [`CompiledModel::set_fault_plan`]
/// adjust them afterwards.
pub struct CompiledModel {
    pub(crate) meta: ServeMeta,
    pub(crate) centroids: CentroidMatrix,
    pub(crate) pool: FlatPool,
    /// `dispatch[region * n_groups + group.index()]` → compiled member id.
    pub(crate) dispatch: Vec<u32>,
    pub(crate) n_groups: usize,
    pub(crate) threads: usize,
    pub(crate) faults: FaultPlan,
}

impl FalccModel {
    /// Lowers the fitted model into the compiled serving plane.
    ///
    /// Compilation cost is `serve.compile_ns`; the deduplicated member
    /// count lands in `serve.dedup_models`. Every classification entry
    /// point of the result is bit-identical to the interpreted one here.
    pub fn compile(&self) -> CompiledModel {
        let _sp = falcc_telemetry::span("serve.compile");
        let t0 = std::time::Instant::now();
        let n_groups = self.group_index().len();
        let n_regions = self.n_regions();
        // Dedup: first-seen order over (region, group) cells, so compiled
        // ids are deterministic and independent of pool layout churn.
        let mut compiled_id: Vec<Option<u32>> = vec![None; self.pool().models.len()];
        let mut reachable = Vec::new();
        let mut dispatch = Vec::with_capacity(n_regions * n_groups);
        for region in 0..n_regions {
            let combo = self.combo(region);
            for &pool_idx in combo.iter().take(n_groups) {
                let id = *compiled_id[pool_idx].get_or_insert_with(|| {
                    reachable.push(Arc::clone(&self.pool().models[pool_idx].model));
                    (reachable.len() - 1) as u32
                });
                dispatch.push(id);
            }
        }
        let pool = FlatPool::compile(&reachable);
        // The fitted model already caches the centroid norms — adopt them
        // instead of recomputing the k × d sweep a second time.
        let centroids = CentroidMatrix::with_norms(self.kmeans(), self.centroid_norms().to_vec());
        falcc_telemetry::counters::SERVE_COMPILE_NS.add(t0.elapsed().as_nanos() as u64);
        falcc_telemetry::gauges::SERVE_DEDUP_MODELS.set(pool.len() as u64);
        CompiledModel {
            meta: ServeMeta {
                schema: self.schema().clone(),
                group_index: self.group_index().clone(),
                proxy: self.proxy_outcome().clone(),
                name: self.name_str().to_string(),
            },
            centroids,
            pool,
            dispatch,
            n_groups,
            threads: self.threads(),
            faults: self.fault_plan().clone(),
        }
    }
}

impl CompiledModel {
    /// Sets the worker-thread count for the batch entry points
    /// (0 = available parallelism), like [`FalccModel::set_threads`].
    pub fn set_threads(&mut self, threads: usize) {
        self.threads = threads;
    }

    /// Installs a deterministic fault-injection plan for the batch entry
    /// points, like [`FalccModel::set_fault_plan`].
    pub fn set_fault_plan(&mut self, plan: FaultPlan) {
        self.faults = plan;
    }

    /// Distinct compiled members — the deduplicated reach of the
    /// dispatch table (≤ pool size, often far below regions × groups).
    pub fn n_models(&self) -> usize {
        self.pool.len()
    }

    /// Number of local regions.
    pub fn n_regions(&self) -> usize {
        self.centroids.k()
    }

    /// Total flat tree nodes across all compiled members (diagnostics).
    pub fn n_nodes(&self) -> usize {
        self.pool.n_nodes()
    }

    /// The schema the model was fitted against (row width, sensitive
    /// columns and their domains).
    pub fn schema(&self) -> &Schema {
        &self.meta.schema
    }

    /// Compiled member id serving `(region, group)`.
    fn member_of(&self, region: usize, group: GroupId) -> u32 {
        self.dispatch[region * self.n_groups + group.index()]
    }

    /// Compiled single-row classification — bit-identical to
    /// [`FalccModel::try_classify`], allocation-free in steady state.
    ///
    /// # Errors
    /// The same first [`RowFault`] the interpreted path reports.
    pub fn try_classify(&self, row: &[f64]) -> Result<u8, RowFault> {
        let monitoring = falcc_telemetry::monitor::active();
        let t0 = monitoring.then(std::time::Instant::now);
        let group = match validate_row_against(
            self.meta.schema.n_attrs(),
            &self.meta.group_index,
            row,
        ) {
            Ok(g) => g,
            Err(fault) => {
                falcc_telemetry::counters::ONLINE_ROWS_REJECTED.incr();
                if monitoring {
                    falcc_telemetry::monitor::single(
                        None,
                        None,
                        t0.map_or(0, |t| t.elapsed().as_nanos() as u64),
                    );
                }
                return Err(fault);
            }
        };
        let proxy = &self.meta.proxy;
        let mut stack = [0.0f64; PROJ_STACK_DIMS];
        let heap;
        let projected: &[f64] = if proxy.attrs.len() <= PROJ_STACK_DIMS {
            let buf = &mut stack[..proxy.attrs.len()];
            project_row_into(row, &proxy.attrs, proxy.weights.as_deref(), buf);
            buf
        } else {
            heap = proxy.project_row(row);
            &heap
        };
        let region = self.match_region(projected);
        let pred = self.pool.predict_row(self.member_of(region, group) as usize, row);
        if monitoring {
            // `CentroidMatrix::row` returns the source centroid bits, so
            // the distance matches the interpreted plane's exactly.
            falcc_telemetry::monitor::single(
                Some((region, group.index(), sq_dist(projected, self.centroids.row(region)))),
                Some(pred),
                t0.map_or(0, |t| t.elapsed().as_nanos() as u64),
            );
        }
        Ok(pred)
    }

    /// Compiled single-row classification.
    ///
    /// # Panics
    /// Panics on malformed rows, like [`FalccModel::classify`]; use
    /// [`Self::try_classify`] for unvalidated rows.
    pub fn classify(&self, row: &[f64]) -> u8 {
        match self.try_classify(row) {
            Ok(z) => z,
            Err(fault) => panic!("cannot classify row: {fault}"),
        }
    }

    /// Nearest-centroid region match over the flat matrix, with the same
    /// telemetry the interpreted path records.
    #[inline]
    fn match_region(&self, projected: &[f64]) -> usize {
        if falcc_telemetry::enabled() {
            let t0 = std::time::Instant::now();
            let region = self.centroids.nearest(projected);
            falcc_telemetry::histograms::ONLINE_MATCH_NS.record_ns(t0.elapsed());
            falcc_telemetry::counters::ONLINE_SAMPLES.incr();
            region
        } else {
            self.centroids.nearest(projected)
        }
    }

    /// Compiled batch classification — bit-identical to
    /// [`FalccModel::classify_batch`] (same per-row `Result` sequence,
    /// same honoured fault plan) for every thread count.
    ///
    /// One fused pass per row — fault plan, validation, stack-buffer
    /// projection, flat region match, member lookup — keeps the row hot
    /// in L1 across all phases instead of re-streaming the batch once
    /// per phase. The resolved members then drive the **bucketed**
    /// prediction pass: each distinct large member runs once over its
    /// whole bucket (cache-resident slabs, zero per-row allocations),
    /// and predictions scatter back to input order. Projection uses the
    /// same arithmetic in the same order as the interpreted batch
    /// buffer, so the assignments are identical; rejected rows never
    /// reach projection and surface the same fault the interpreted
    /// plane records.
    pub fn classify_batch(&self, rows: &[Vec<f64>]) -> Vec<Result<u8, RowFault>> {
        let _sp = falcc_telemetry::span("serve.classify_batch");
        let rec = falcc_telemetry::monitor::batch(rows.len());
        let t0 = rec.as_ref().map(|_| std::time::Instant::now());
        let proxy = &self.meta.proxy;
        let plan = &self.faults;
        let threads = self.threads;
        let checked: Vec<Result<u32, RowFault>> =
            parallel_map_range(rows.len(), threads, |i| {
                if plan.fires(FaultSite::NonFiniteRow, i as u64) {
                    return Err(RowFault::NonFinite { column: 0 });
                }
                let group = validate_row_against(
                    self.meta.schema.n_attrs(),
                    &self.meta.group_index,
                    &rows[i],
                )?;
                let mut stack = [0.0f64; PROJ_STACK_DIMS];
                let heap;
                let projected: &[f64] = if proxy.attrs.len() <= PROJ_STACK_DIMS {
                    let buf = &mut stack[..proxy.attrs.len()];
                    project_row_into(&rows[i], &proxy.attrs, proxy.weights.as_deref(), buf);
                    buf
                } else {
                    heap = proxy.project_row(&rows[i]);
                    &heap
                };
                let region = self.match_region(projected);
                if let Some(rec) = &rec {
                    rec.stash(
                        i,
                        region,
                        group.index(),
                        sq_dist(projected, self.centroids.row(region)),
                    );
                }
                Ok(self.member_of(region, group))
            });
        let rejected = checked.iter().filter(|r| r.is_err()).count();
        if rejected > 0 {
            falcc_telemetry::counters::ONLINE_ROWS_REJECTED.add(rejected as u64);
            if falcc_telemetry::enabled() {
                falcc_telemetry::event(
                    "online.rows_rejected",
                    format!("{rejected} of {} batch rows rejected", rows.len()),
                );
            }
        }
        let assignment: Vec<u32> =
            checked.iter().map(|check| *check.as_ref().unwrap_or(&SKIP)).collect();
        let row_slices: Vec<&[f64]> = rows.iter().map(|r| r.as_slice()).collect();
        let preds = self.run_buckets(&row_slices, &assignment, threads);
        let out: Vec<Result<u8, RowFault>> = checked
            .into_iter()
            .enumerate()
            .map(|(i, check)| check.map(|_| preds[i]))
            .collect();
        if let (Some(rec), Some(t0)) = (rec, t0) {
            rec.commit(|i| out[i].as_ref().ok().copied(), t0.elapsed().as_nanos() as u64);
        }
        out
    }

    /// Runs every validated row through its compiled member and scatters
    /// predictions back to input order. Positions whose `assignment` is
    /// [`SKIP`] stay 0 (masked by the caller).
    ///
    /// Rows split two ways by the member that serves them
    /// ([`FlatPool::wants_bucket`]): rows of *small* members are served
    /// in input order — those members all sit in L1 together, so the
    /// winning layout is a sequential stream over the row data — while
    /// each *large* member gets a contiguous bucket evaluated
    /// stage-major, keeping one tree at a time cache-resident instead of
    /// re-streaming the whole ensemble per row. Work is cut into
    /// [`BUCKET_CHUNK`]-row chunks and fanned out through the ordered
    /// deterministic parallel layer; every row's prediction is a pure
    /// function of shared state, so the scatter is thread-count
    /// invariant.
    fn run_buckets(&self, rows: &[&[f64]], assignment: &[u32], threads: usize) -> Vec<u8> {
        let mut buckets: Vec<Vec<u32>> = vec![Vec::new(); self.pool.len()];
        let mut ordered: Vec<u32> = Vec::new();
        let mut bucketed = 0u64;
        for (i, &member) in assignment.iter().enumerate() {
            if member != SKIP {
                if self.pool.wants_bucket(member as usize) {
                    buckets[member as usize].push(i as u32);
                    bucketed += 1;
                } else {
                    ordered.push(i as u32);
                }
            }
        }
        falcc_telemetry::counters::SERVE_BUCKET_ROWS.add(bucketed);
        falcc_telemetry::counters::SERVE_ORDERED_ROWS.add(ordered.len() as u64);
        // One chunk stream covers both layouts: `Some(member)` is a
        // bucket slice of that member, `None` an input-order slice of
        // small-member rows resolved per row via `assignment`.
        let chunks: Vec<(Option<u32>, &[u32])> = buckets
            .iter()
            .enumerate()
            .flat_map(|(member, idxs)| {
                idxs.chunks(BUCKET_CHUNK).map(move |chunk| (Some(member as u32), chunk))
            })
            .chain(ordered.chunks(BUCKET_CHUNK).map(|chunk| (None, chunk)))
            .collect();
        let chunk_preds: Vec<Vec<u8>> = parallel_map(&chunks, threads, |_, (member, idxs)| {
            match member {
                Some(member) => self.pool.predict_bucket(*member as usize, rows, idxs),
                None => idxs
                    .iter()
                    .map(|&i| {
                        self.pool
                            .predict_row(assignment[i as usize] as usize, rows[i as usize])
                    })
                    .collect(),
            }
        });
        let mut out = vec![0u8; rows.len()];
        for ((_, idxs), preds) in chunks.iter().zip(&chunk_preds) {
            for (&i, &p) in idxs.iter().zip(preds) {
                out[i as usize] = p;
            }
        }
        out
    }
}

impl FairClassifier for CompiledModel {
    fn predict_row(&self, row: &[f64]) -> u8 {
        self.classify(row)
    }

    fn name(&self) -> &str {
        &self.meta.name
    }

    /// Bucketed override for schema-validated datasets — bit-identical
    /// to the interpreted [`FalccModel`] `predict_dataset`. Like
    /// [`CompiledModel::classify_batch`], group resolution, projection,
    /// and region match fuse into one pass per row (the stack-buffer
    /// projection performs the same arithmetic as the interpreted
    /// batch buffer, so the assignments are identical).
    fn predict_dataset(&self, ds: &Dataset) -> Vec<u8> {
        let _sp = falcc_telemetry::span("serve.classify_batch");
        let rec = falcc_telemetry::monitor::batch(ds.len());
        let t0 = rec.as_ref().map(|_| std::time::Instant::now());
        let proxy = &self.meta.proxy;
        let threads = self.threads;
        let assignment: Vec<u32> = parallel_map_range(ds.len(), threads, |i| {
            // Same group resolution as the interpreted dataset path (the
            // model's own index; dataset rows passed schema validation).
            let group = match self.meta.group_index.group_of(ds.row(i)) {
                Ok(g) => g,
                Err(_) => {
                    panic!("dataset row escaped validation: {}", RowFault::GroupOutOfDomain)
                }
            };
            let mut stack = [0.0f64; PROJ_STACK_DIMS];
            let heap;
            let projected: &[f64] = if proxy.attrs.len() <= PROJ_STACK_DIMS {
                let buf = &mut stack[..proxy.attrs.len()];
                project_row_into(ds.row(i), &proxy.attrs, proxy.weights.as_deref(), buf);
                buf
            } else {
                heap = proxy.project_row(ds.row(i));
                &heap
            };
            let region = self.match_region(projected);
            if let Some(rec) = &rec {
                rec.stash(
                    i,
                    region,
                    group.index(),
                    sq_dist(projected, self.centroids.row(region)),
                );
            }
            self.member_of(region, group)
        });
        let rows: Vec<&[f64]> = (0..ds.len()).map(|i| ds.row(i)).collect();
        let preds = self.run_buckets(&rows, &assignment, threads);
        if let (Some(rec), Some(t0)) = (rec, t0) {
            rec.commit(|i| Some(preds[i]), t0.elapsed().as_nanos() as u64);
        }
        preds
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::FalccConfig;
    use falcc_dataset::synthetic::{generate, SyntheticConfig};
    use falcc_dataset::{SplitRatios, ThreeWaySplit};

    fn fitted(n: usize, seed: u64) -> (FalccModel, ThreeWaySplit) {
        let mut dcfg = SyntheticConfig::social(0.3);
        dcfg.n = n;
        let ds = generate(&dcfg, seed).unwrap();
        let split = ThreeWaySplit::split(&ds, SplitRatios::PAPER, seed).unwrap();
        let mut cfg = FalccConfig::default();
        cfg.scale_for_tests();
        let model = FalccModel::fit(&split.train, &split.validation, &cfg).unwrap();
        (model, split)
    }

    #[test]
    fn dispatch_covers_every_region_group_cell_and_dedups() {
        let (model, _) = fitted(700, 21);
        let compiled = model.compile();
        assert_eq!(compiled.dispatch.len(), model.n_regions() * compiled.n_groups);
        assert!(compiled.n_models() >= 1);
        // Dedup can never exceed the pool, and every id is in range.
        assert!(compiled.n_models() <= model.pool().models.len());
        assert!(compiled
            .dispatch
            .iter()
            .all(|&id| (id as usize) < compiled.n_models()));
        assert_eq!(compiled.n_regions(), model.n_regions());
    }

    #[test]
    fn single_row_matches_interpreted_bit_for_bit() {
        let (model, split) = fitted(900, 22);
        let compiled = model.compile();
        for i in 0..split.test.len() {
            let row = split.test.row(i);
            assert_eq!(model.try_classify(row), compiled.try_classify(row), "row {i}");
        }
        // Malformed rows fault identically.
        let mut bad = split.test.row(0).to_vec();
        bad[2] = f64::NAN;
        assert_eq!(model.try_classify(&bad), compiled.try_classify(&bad));
        assert_eq!(model.try_classify(&[1.0]), compiled.try_classify(&[1.0]));
    }

    #[test]
    fn batch_and_dataset_paths_match_interpreted() {
        let (model, split) = fitted(900, 23);
        let compiled = model.compile();
        let rows: Vec<Vec<f64>> =
            (0..split.test.len()).map(|i| split.test.row(i).to_vec()).collect();
        assert_eq!(model.classify_batch(&rows), compiled.classify_batch(&rows));
        assert_eq!(model.predict_dataset(&split.test), compiled.predict_dataset(&split.test));
    }

    #[test]
    fn fault_plan_is_honoured_identically() {
        let (mut model, split) = fitted(700, 24);
        let mut plan = crate::faults::FaultPlan::default();
        plan.poison_row(2);
        model.set_fault_plan(plan);
        let compiled = model.compile();
        let rows: Vec<Vec<f64>> = (0..8).map(|i| split.test.row(i).to_vec()).collect();
        let interpreted = model.classify_batch(&rows);
        let out = compiled.classify_batch(&rows);
        assert!(out[2].is_err());
        assert_eq!(interpreted, out);
    }
}
