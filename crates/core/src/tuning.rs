//! Automatic FALCC configuration — the paper's future-work direction
//! ("investigate how to simplify the configuration of FALCC using
//! parameter estimation techniques", §5; cf. Lässig, ICDE 2023).
//!
//! [`auto_tune`] grid-searches the configuration knobs that most affect
//! quality — the clustering policy and the pool size — on a held-out slice
//! of the validation data, scoring each candidate by the local L̂ it
//! achieves *on its own regions* (the quantity FALCC optimises). The
//! winning configuration is returned ready for a final
//! [`FalccModel::fit`] on the full data.

use crate::config::{ClusterSpec, FalccConfig};
use crate::error::FalccError;
use crate::framework::FairClassifier;
use crate::offline::FalccModel;
use falcc_dataset::Dataset;
use falcc_metrics::local_l_hat;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

/// One evaluated tuning candidate.
#[derive(Debug, Clone)]
pub struct Trial {
    /// Human-readable candidate description.
    pub description: String,
    /// The candidate's clustering policy.
    pub clustering: ClusterSpec,
    /// The candidate's pool size.
    pub pool_size: usize,
    /// Local L̂ on the tuning holdout (lower is better).
    pub holdout_local_l_hat: f64,
}

/// Result of [`auto_tune`].
#[derive(Debug, Clone)]
pub struct TuningReport {
    /// The best configuration found (a copy of the base config with the
    /// tuned fields replaced).
    pub chosen: FalccConfig,
    /// Every candidate with its holdout score, sorted best-first.
    pub trials: Vec<Trial>,
}

/// Default candidate grid: clustering ∈ {LOG-Means, k=8, k=16} × pool size
/// ∈ {3, 5, 8}.
fn candidate_grid() -> Vec<(ClusterSpec, usize)> {
    let mut grid = Vec::new();
    for clustering in [ClusterSpec::LogMeans, ClusterSpec::FixedK(8), ClusterSpec::FixedK(16)] {
        for pool_size in [3usize, 5, 8] {
            grid.push((clustering, pool_size));
        }
    }
    grid
}

/// Tunes `base` on a 70/30 split of the validation data and returns the
/// best configuration. Nine offline fits — run this once per deployment,
/// not per prediction.
///
/// # Errors
/// Propagates fit failures; returns [`FalccError::Dataset`] when the
/// validation set is too small to split (< 10 rows).
pub fn auto_tune(
    train: &Dataset,
    validation: &Dataset,
    base: &FalccConfig,
) -> Result<TuningReport, FalccError> {
    base.validate()?;
    let _sp = falcc_telemetry::span("tuning.auto_tune");
    let n = validation.len();
    if n < 10 {
        return Err(FalccError::Dataset(falcc_dataset::DatasetError::Empty));
    }
    let mut idx: Vec<usize> = (0..n).collect();
    let mut rng = StdRng::seed_from_u64(base.seed ^ 0x7u64);
    idx.shuffle(&mut rng);
    let cut = (n * 7 / 10).clamp(1, n - 1);
    let assess = validation.subset(&idx[..cut])?;
    let holdout = validation.subset(&idx[cut..])?;
    let n_groups = validation.group_index().len();

    let mut trials = Vec::new();
    for (ordinal, (clustering, pool_size)) in candidate_grid().into_iter().enumerate() {
        let _trial_sp = falcc_telemetry::span_labeled(
            "tuning.trial",
            format!("clustering={clustering:?}, pool_size={pool_size}"),
        );
        falcc_telemetry::counters::TUNING_TRIALS.incr();
        // Injected trial failure: the search degrades exactly as it does
        // for an organic fit failure below — skip and keep ranking.
        if base.faults.fires(crate::faults::FaultSite::TuningTrial, ordinal as u64) {
            falcc_telemetry::counters::TUNING_TRIALS_FAILED.incr();
            continue;
        }
        let mut cfg = base.clone();
        cfg.clustering = clustering;
        cfg.pool.pool_size = pool_size;
        // A candidate can fail (e.g. a tiny assess slice missing a group);
        // skip it rather than aborting the search.
        let Ok(model) = FalccModel::fit(train, &assess, &cfg) else {
            falcc_telemetry::counters::TUNING_TRIALS_FAILED.incr();
            continue;
        };
        let preds = model.predict_dataset(&holdout);
        let regions: Vec<usize> =
            (0..holdout.len()).map(|i| model.assign_region(holdout.row(i))).collect();
        let score = local_l_hat(
            cfg.loss,
            holdout.labels(),
            &preds,
            holdout.groups(),
            n_groups,
            &regions,
            model.n_regions(),
        );
        trials.push(Trial {
            description: format!("clustering={clustering:?}, pool_size={pool_size}"),
            clustering,
            pool_size,
            holdout_local_l_hat: score,
        });
    }
    if trials.is_empty() {
        return Err(FalccError::InvalidConfig {
            detail: "no tuning candidate could be fitted".into(),
        });
    }
    trials.sort_by(|a, b| a.holdout_local_l_hat.total_cmp(&b.holdout_local_l_hat));
    let best = &trials[0];
    let mut chosen = base.clone();
    chosen.clustering = best.clustering;
    chosen.pool.pool_size = best.pool_size;
    Ok(TuningReport { chosen, trials })
}

#[cfg(test)]
mod tests {
    use super::*;
    use falcc_dataset::synthetic::{generate, SyntheticConfig};
    use falcc_dataset::{SplitRatios, ThreeWaySplit};

    fn split(n: usize, seed: u64) -> ThreeWaySplit {
        let mut cfg = SyntheticConfig::social(0.3);
        cfg.n = n;
        let ds = generate(&cfg, seed).unwrap();
        ThreeWaySplit::split(&ds, SplitRatios::PAPER, seed).unwrap()
    }

    #[test]
    fn tuning_returns_a_valid_ranked_report() {
        let s = split(1200, 1);
        let base = FalccConfig::default();
        let report = auto_tune(&s.train, &s.validation, &base).unwrap();
        assert!(!report.trials.is_empty());
        // Sorted best-first.
        for w in report.trials.windows(2) {
            assert!(w[0].holdout_local_l_hat <= w[1].holdout_local_l_hat + 1e-12);
        }
        // Chosen config matches the best trial and still validates.
        assert_eq!(report.chosen.clustering, report.trials[0].clustering);
        assert_eq!(report.chosen.pool.pool_size, report.trials[0].pool_size);
        assert!(report.chosen.validate().is_ok());
        // And it fits on the full validation data.
        let model =
            FalccModel::fit(&s.train, &s.validation, &report.chosen).unwrap();
        assert!(model.n_regions() >= 1);
    }

    #[test]
    fn tiny_validation_is_rejected() {
        let s = split(1200, 2);
        let small = s.validation.subset(&(0..5).collect::<Vec<_>>()).unwrap();
        assert!(auto_tune(&s.train, &small, &FalccConfig::default()).is_err());
    }

    #[test]
    fn injected_trial_failures_degrade_the_search() {
        let s = split(1200, 4);
        let mut base = FalccConfig::default();
        // Fail the first two grid candidates; the search must still rank
        // the remaining seven and pick a winner.
        base.faults.fail_tuning_trial(0);
        base.faults.fail_tuning_trial(1);
        let report = auto_tune(&s.train, &s.validation, &base).unwrap();
        assert!(report.trials.len() <= 7);
        assert!(!report.trials.is_empty());
        assert!(report.chosen.validate().is_ok());
    }

    #[test]
    fn all_trials_failing_is_a_typed_error() {
        let s = split(1200, 5);
        let mut base = FalccConfig::default();
        for ordinal in 0..9 {
            base.faults.fail_tuning_trial(ordinal);
        }
        assert!(matches!(
            auto_tune(&s.train, &s.validation, &base),
            Err(FalccError::InvalidConfig { .. })
        ));
    }

    #[test]
    fn base_fields_are_preserved() {
        let s = split(900, 3);
        let mut base = FalccConfig::default();
        base.loss.lambda = 0.7;
        base.gap_fill_k = 7;
        let report = auto_tune(&s.train, &s.validation, &base).unwrap();
        assert_eq!(report.chosen.loss.lambda, 0.7);
        assert_eq!(report.chosen.gap_fill_k, 7);
    }
}
