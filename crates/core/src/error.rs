//! Error type for the FALCC pipeline.

use falcc_dataset::DatasetError;
use std::fmt;

/// Errors raised while fitting or applying a FALCC model.
#[derive(Debug)]
pub enum FalccError {
    /// Underlying dataset manipulation failed.
    Dataset(DatasetError),
    /// The model pool contains no model applicable to some group, so no
    /// combination can be formed.
    NoApplicableModel {
        /// The uncovered group index.
        group: usize,
    },
    /// The validation set lacks any sample of a sensitive group entirely,
    /// so even gap-filling cannot assess that group.
    GroupAbsent {
        /// The absent group index.
        group: usize,
    },
    /// Configuration is internally inconsistent.
    InvalidConfig {
        /// Human-readable description.
        detail: String,
    },
}

impl fmt::Display for FalccError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Dataset(e) => write!(f, "dataset error: {e}"),
            Self::NoApplicableModel { group } => {
                write!(f, "no model in the pool is applicable to group {group}")
            }
            Self::GroupAbsent { group } => {
                write!(f, "validation data contains no sample of group {group}")
            }
            Self::InvalidConfig { detail } => write!(f, "invalid configuration: {detail}"),
        }
    }
}

impl std::error::Error for FalccError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Self::Dataset(e) => Some(e),
            _ => None,
        }
    }
}

impl From<DatasetError> for FalccError {
    fn from(e: DatasetError) -> Self {
        Self::Dataset(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_formats() {
        assert!(FalccError::NoApplicableModel { group: 2 }.to_string().contains("group 2"));
        assert!(FalccError::GroupAbsent { group: 1 }.to_string().contains("group 1"));
        let e: FalccError = DatasetError::Empty.into();
        assert!(e.to_string().contains("empty"));
    }
}
