//! Error type for the FALCC pipeline.

use falcc_dataset::DatasetError;
use std::fmt;

/// Errors raised while fitting or applying a FALCC model.
#[derive(Debug)]
pub enum FalccError {
    /// Underlying dataset manipulation failed.
    Dataset(DatasetError),
    /// The model pool contains no model applicable to some group, so no
    /// combination can be formed.
    NoApplicableModel {
        /// The uncovered group index.
        group: usize,
    },
    /// The validation set lacks any sample of a sensitive group entirely,
    /// so even gap-filling cannot assess that group.
    GroupAbsent {
        /// The absent group index.
        group: usize,
    },
    /// Configuration is internally inconsistent.
    InvalidConfig {
        /// Human-readable description.
        detail: String,
    },
    /// So many pool members were quarantined (training failures, non-finite
    /// predictions) that the surviving pool fell below the configured
    /// floor. Graceful degradation stops here: a pool this thin cannot
    /// honour the diversity assumption of §3.3.
    PoolDepleted {
        /// Members still usable after quarantine.
        survivors: usize,
        /// Members removed by quarantine.
        quarantined: usize,
        /// The configured [`crate::FalccConfig::min_pool_size`] floor.
        min_pool_size: usize,
    },
    /// A model snapshot failed an integrity check: bad envelope, checksum
    /// mismatch, truncation, or an unparseable payload.
    SnapshotCorrupt {
        /// What exactly failed to verify.
        detail: String,
    },
    /// A model snapshot has a valid envelope but was written by a
    /// different format version.
    SnapshotVersionSkew {
        /// Version recorded in the snapshot.
        found: u32,
        /// Version this build reads and writes.
        expected: u32,
    },
    /// An atomic save could not publish its temp file because the rename
    /// would cross filesystems (the temp file and target must share one).
    CrossDeviceRename {
        /// Target path of the failed publish.
        path: String,
    },
    /// A checkpoint journal failed an integrity check: torn record, bad
    /// manifest chain, unreadable envelope, or checksum mismatch. Resume
    /// falls back to the last valid prefix; this error surfaces only when
    /// the journal cannot be used at all.
    CheckpointCorrupt {
        /// What exactly failed to verify.
        detail: String,
    },
    /// A checkpoint journal was written by a run with a different config
    /// fingerprint (different config, seed, or input data) — resuming
    /// from it would splice incompatible generations together.
    CheckpointStale {
        /// Fingerprint recorded in the journal (hex).
        found: String,
        /// Fingerprint of the current run (hex).
        expected: String,
    },
    /// The bounded retry layer exhausted its budget on transient I/O
    /// failures while journaling a checkpoint.
    RetriesExhausted {
        /// The operation that kept failing.
        op: String,
        /// Retries attempted before giving up.
        attempts: u32,
    },
    /// A binary serving artifact failed an integrity or structural check:
    /// bad magic, checksum mismatch, truncation, misaligned or
    /// overlapping sections, or slabs that fail the serving plane's
    /// structural validation.
    ArtifactCorrupt {
        /// What exactly failed to verify.
        detail: String,
    },
    /// A binary serving artifact has an intact header but was written by
    /// a different format version.
    ArtifactVersionSkew {
        /// Version recorded in the artifact.
        found: u32,
        /// Version this build reads and writes.
        expected: u32,
    },
    /// A binary serving artifact was compiled from a different source
    /// snapshot than the one on disk — loading it would serve a stale
    /// model. Callers fall back to the JSON restore+compile path.
    ArtifactStale {
        /// Source fingerprint recorded in the artifact.
        found: u64,
        /// Fingerprint of the current source snapshot.
        expected: u64,
    },
}

impl fmt::Display for FalccError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Dataset(e) => write!(f, "dataset error: {e}"),
            Self::NoApplicableModel { group } => {
                write!(f, "no model in the pool is applicable to group {group}")
            }
            Self::GroupAbsent { group } => {
                write!(f, "validation data contains no sample of group {group}")
            }
            Self::InvalidConfig { detail } => write!(f, "invalid configuration: {detail}"),
            Self::PoolDepleted { survivors, quarantined, min_pool_size } => write!(
                f,
                "model pool depleted: {survivors} members survive after quarantining \
                 {quarantined} (minimum {min_pool_size})"
            ),
            Self::SnapshotCorrupt { detail } => {
                write!(f, "snapshot corrupt: {detail}")
            }
            Self::SnapshotVersionSkew { found, expected } => write!(
                f,
                "snapshot format v{found} unsupported (this build reads v{expected})"
            ),
            Self::CrossDeviceRename { path } => write!(
                f,
                "cannot publish {path:?} atomically: temp file and target are on \
                 different filesystems"
            ),
            Self::CheckpointCorrupt { detail } => {
                write!(f, "checkpoint journal corrupt: {detail}")
            }
            Self::CheckpointStale { found, expected } => write!(
                f,
                "checkpoint journal belongs to a different run: fingerprint {found} \
                 recorded, this run is {expected}"
            ),
            Self::RetriesExhausted { op, attempts } => write!(
                f,
                "transient I/O failure persisted through {attempts} retries during {op}"
            ),
            Self::ArtifactCorrupt { detail } => {
                write!(f, "artifact corrupt: {detail}")
            }
            Self::ArtifactVersionSkew { found, expected } => write!(
                f,
                "artifact format v{found} unsupported (this build reads v{expected})"
            ),
            Self::ArtifactStale { found, expected } => write!(
                f,
                "artifact compiled from a different snapshot: fingerprint \
                 {found:016x} recorded, current snapshot is {expected:016x}"
            ),
        }
    }
}

/// Why one row of an online batch was rejected instead of classified.
///
/// [`crate::FalccModel::classify_batch`] returns one `Result` per row so a
/// single poisoned sample degrades to one typed error instead of poisoning
/// (or panicking) the whole batch.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RowFault {
    /// The row has the wrong number of attributes for the fitted schema.
    WrongWidth {
        /// Attribute count the schema declares.
        expected: usize,
        /// Attribute count the row carries.
        found: usize,
    },
    /// The row carries a NaN or infinite feature value.
    NonFinite {
        /// First offending column.
        column: usize,
    },
    /// The row's sensitive values fall outside the declared domains, so it
    /// belongs to no known group.
    GroupOutOfDomain,
}

impl fmt::Display for RowFault {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::WrongWidth { expected, found } => {
                write!(f, "row has {found} attributes, schema expects {expected}")
            }
            Self::NonFinite { column } => {
                write!(f, "non-finite feature value in column {column}")
            }
            Self::GroupOutOfDomain => {
                write!(f, "sensitive attribute values outside the declared domains")
            }
        }
    }
}

impl std::error::Error for RowFault {}

impl std::error::Error for FalccError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Self::Dataset(e) => Some(e),
            _ => None,
        }
    }
}

impl From<DatasetError> for FalccError {
    fn from(e: DatasetError) -> Self {
        Self::Dataset(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_formats() {
        assert!(FalccError::NoApplicableModel { group: 2 }.to_string().contains("group 2"));
        assert!(FalccError::GroupAbsent { group: 1 }.to_string().contains("group 1"));
        let e: FalccError = DatasetError::Empty.into();
        assert!(e.to_string().contains("empty"));
    }

    #[test]
    fn robustness_variants_format() {
        let msg = FalccError::PoolDepleted { survivors: 1, quarantined: 4, min_pool_size: 2 }
            .to_string();
        assert!(msg.contains('1') && msg.contains('4') && msg.contains('2'), "{msg}");
        assert!(FalccError::SnapshotCorrupt { detail: "checksum".into() }
            .to_string()
            .contains("checksum"));
        let msg = FalccError::SnapshotVersionSkew { found: 9, expected: 2 }.to_string();
        assert!(msg.contains("v9") && msg.contains("v2"), "{msg}");
    }

    #[test]
    fn checkpoint_variants_format() {
        let msg = FalccError::CrossDeviceRename { path: "out/m.json".into() }.to_string();
        assert!(msg.contains("out/m.json") && msg.contains("filesystems"), "{msg}");
        assert!(FalccError::CheckpointCorrupt { detail: "torn manifest".into() }
            .to_string()
            .contains("torn manifest"));
        let msg = FalccError::CheckpointStale {
            found: "00aa".into(),
            expected: "00bb".into(),
        }
        .to_string();
        assert!(msg.contains("00aa") && msg.contains("00bb"), "{msg}");
        let msg = FalccError::RetriesExhausted { op: "manifest append".into(), attempts: 3 }
            .to_string();
        assert!(msg.contains("manifest append") && msg.contains('3'), "{msg}");
    }

    #[test]
    fn artifact_variants_format() {
        assert!(FalccError::ArtifactCorrupt { detail: "section 3 checksum".into() }
            .to_string()
            .contains("section 3 checksum"));
        let msg = FalccError::ArtifactVersionSkew { found: 9, expected: 3 }.to_string();
        assert!(msg.contains("v9") && msg.contains("v3"), "{msg}");
        let msg = FalccError::ArtifactStale { found: 0xaa, expected: 0xbb }.to_string();
        assert!(msg.contains("00000000000000aa") && msg.contains("00000000000000bb"), "{msg}");
    }

    #[test]
    fn row_fault_formats() {
        assert!(RowFault::WrongWidth { expected: 3, found: 2 }.to_string().contains("3"));
        assert!(RowFault::NonFinite { column: 5 }.to_string().contains("column 5"));
        assert!(!RowFault::GroupOutOfDomain.to_string().is_empty());
    }
}
